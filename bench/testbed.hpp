// Shared bench fixture: the paper's two-site testbed (NASA Lewis Research
// Center and The University of Arizona, joined by the 1993 Internet) with
// the machines of Tables 1 and 2, plus small table-printing helpers.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "npss/procedures.hpp"
#include "npss/remote_backend.hpp"
#include "npss/runtime.hpp"
#include "rpc/schooner.hpp"
#include "sim/cluster.hpp"

namespace npss::bench {

/// Machines named in the paper's experiments (name -> arch, site).
inline void build_paper_testbed(sim::Cluster& cluster) {
  cluster.add_machine("sparc-ua", "sun-sparc10", "uarizona");
  cluster.add_machine("sgi340-ua", "sgi-4d340", "uarizona");
  cluster.add_machine("sparc-lerc", "sun-sparc10", "lerc");
  cluster.add_machine("sgi480-lerc", "sgi-4d480", "lerc");
  cluster.add_machine("sgi420-lerc", "sgi-4d420", "lerc");
  cluster.add_machine("cray-lerc", "cray-ymp", "lerc");
  cluster.add_machine("convex-lerc", "convex-c220", "lerc");
  cluster.add_machine("rs6000-lerc", "ibm-rs6000", "lerc");
  cluster.set_site_link("lerc", "uarizona",
                        sim::link_profile("internet-wan"));
  cluster.set_intra_site_link(sim::link_profile("ethernet-lan"));
}

struct Testbed {
  Testbed() {
    build_paper_testbed(cluster);
    glue::install_tess_procedures_everywhere(cluster);
    schooner = std::make_unique<rpc::SchoonerSystem>(cluster, "sparc-ua");
  }
  ~Testbed() {
    glue::clear_npss_runtime();
  }

  sim::Cluster cluster;
  std::unique_ptr<rpc::SchoonerSystem> schooner;
};

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

}  // namespace npss::bench
