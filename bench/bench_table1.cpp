// Table 1 reproduction — "TESS and Schooner individual module tests".
//
// Each of the four adapted modules (shaft, duct, combustor, nozzle) runs
// remotely, one at a time, on the paper's machine/network combinations:
//
//   Sun Sparc 10  -> SGI 4D/480    local Ethernet
//   Sun Sparc 10  -> Convex C220   same building, multiple gateways
//   SGI 4D/480    -> Cray YMP      same building, multiple gateways
//   SGI 4D/480    -> Sun Sparc 10  via Internet (LeRC -> U. of Arizona)
//   Sun Sparc 10  -> IBM RS6000    via Internet (U. of Arizona -> LeRC)
//
// For every (module x combination) row TESS is balanced steady-state
// (Newton-Raphson) and flown through a 1 s transient (Improved Euler), and
// the result is verified against the all-local computation — the paper's
// §3.4 method. Reported: convergence, max relative deviation from local,
// remote calls issued, and the simulated network time — whose ordering
// (lan < campus < wan) is the shape the paper's testbed exhibited.
#include <cmath>
#include <vector>

#include "bench/testbed.hpp"
#include "tess/engine.hpp"

namespace npss {
namespace {

using glue::AdaptedComponent;
using glue::Placement;
using glue::RemoteBackend;

struct Combo {
  const char* avs_machine;
  const char* remote_machine;
  const char* network;
};

const Combo kCombos[] = {
    {"sparc-lerc", "sgi480-lerc", "local Ethernet"},
    {"sparc-lerc", "convex-lerc", "multi-gateway (campus)"},
    {"sgi480-lerc", "cray-lerc", "multi-gateway (campus)"},
    {"sgi480-lerc", "sparc-ua", "Internet (LeRC->UA)"},
    {"sparc-ua", "rs6000-lerc", "Internet (UA->LeRC)"},
};

struct ModuleCase {
  AdaptedComponent component;
  int instances;
  const char* name;
};

const ModuleCase kModules[] = {
    {AdaptedComponent::kShaft, 2, "shaft"},
    {AdaptedComponent::kDuct, 2, "duct"},
    {AdaptedComponent::kCombustor, 1, "combustor"},
    {AdaptedComponent::kNozzle, 1, "nozzle"},
};

int run() {
  bench::Testbed testbed;

  // Campus links inside LeRC for the "multiple gateways" rows: route
  // sparc-lerc/sgi480-lerc to convex/cray through the campus profile by
  // placing the vector machines on their own "machine room" site.
  // (The default intra-site link is Ethernet; Table 1 distinguishes the
  // building-crossing paths, so rebuild with a dedicated site.)
  sim::Cluster cluster;
  cluster.add_machine("sparc-ua", "sun-sparc10", "uarizona");
  cluster.add_machine("sparc-lerc", "sun-sparc10", "lerc");
  cluster.add_machine("sgi480-lerc", "sgi-4d480", "lerc");
  cluster.add_machine("cray-lerc", "cray-ymp", "lerc-machine-room");
  cluster.add_machine("convex-lerc", "convex-c220", "lerc-machine-room");
  cluster.add_machine("rs6000-lerc", "ibm-rs6000", "lerc");
  cluster.set_site_link("lerc", "lerc-machine-room",
                        sim::link_profile("campus-multigateway"));
  cluster.set_site_link("lerc", "uarizona",
                        sim::link_profile("internet-wan"));
  cluster.set_site_link("lerc-machine-room", "uarizona",
                        sim::link_profile("internet-wan"));
  glue::install_tess_procedures_everywhere(cluster);
  rpc::SchoonerSystem schooner(cluster, "sparc-lerc");

  // Reference local run.
  tess::F100Engine local;
  tess::FlightCondition sls;
  tess::SteadyResult local_steady = local.balance(1.0, sls);
  tess::FuelSchedule throttle = [](double t) {
    return t < 0.1 ? 1.0 : 1.27;
  };
  tess::TransientResult local_tr = local.transient(
      local_steady.performance.speeds, throttle, sls, 1.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);

  bench::print_header(
      "Table 1 — TESS and Schooner individual module tests\n"
      "(steady NR balance + 1 s Improved-Euler transient, verified vs "
      "all-local run)");
  std::printf("%-10s %-12s %-12s %-23s %6s %9s %12s %12s\n", "module",
              "AVS machine", "remote", "network", "ok", "rpc calls",
              "max dev", "net time ms");
  bench::print_rule();

  for (const ModuleCase& mod : kModules) {
    for (const Combo& combo : kCombos) {
      RemoteBackend backend(schooner, combo.avs_machine);
      for (int i = 0; i < mod.instances; ++i) {
        backend.place(mod.component, i, Placement{combo.remote_machine, ""});
      }
      tess::F100Engine engine;
      engine.set_hooks(backend.hooks());
      engine.set_solver_tolerances(5e-6, 1e-4);
      bool ok = true;
      double max_dev = 0.0;
      try {
        tess::SteadyResult steady = engine.balance(1.0, sls);
        max_dev = std::max(
            max_dev,
            std::abs(steady.performance.thrust /
                         local_steady.performance.thrust -
                     1.0));
        tess::TransientResult tr = engine.transient(
            steady.performance.speeds, throttle, sls, 1.0, 0.02,
            solvers::IntegratorKind::kModifiedEuler);
        const auto& e = tr.history.back().performance;
        const auto& le = local_tr.history.back().performance;
        max_dev = std::max(max_dev,
                           std::abs(e.speeds[0] / le.speeds[0] - 1.0));
        max_dev = std::max(max_dev,
                           std::abs(e.speeds[1] / le.speeds[1] - 1.0));
        max_dev =
            std::max(max_dev, std::abs(e.thrust / le.thrust - 1.0));
      } catch (const std::exception& e) {
        ok = false;
        std::printf("    ! %s\n", e.what());
      }
      std::printf("%-10s %-12s %-12s %-23s %6s %9d %12.2e %12.1f\n",
                  mod.name, combo.avs_machine, combo.remote_machine,
                  combo.network, ok ? "yes" : "NO",
                  backend.total_calls(), max_dev,
                  util::sim_to_ms(backend.elapsed_virtual_us()));
    }
  }
  std::printf(
      "\nShape checks: every row converges; deviations are at the UTS\n"
      "single-float precision floor (~1e-6..1e-4); network time orders\n"
      "local Ethernet < multi-gateway campus < Internet for each module.\n");
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
