// A5 — procedure migration ablation (§4.2).
//
// Measures, in deterministic simulated time: the cost of a sch_move
// (state capture + shutdown + respawn + export), the one-time stale-cache
// recovery penalty on the caller's next call (failed call + Manager lookup
// + retry), and the steady per-call cost before/after the move — plus the
// stateless vs state-transfer difference.
#include <cstdio>

#include "bench/testbed.hpp"

namespace npss {
namespace {

const char* kSpec = "export work prog(\"x\" val double, \"y\" res double)";
const char* kImport = "import work prog(\"x\" val double, \"y\" res double)";

sim::ProgramImage image_with_state(std::shared_ptr<double> state,
                                   bool stateful) {
  rpc::ProcedureImageOptions opt;
  if (stateful) {
    opt.save_state = [state] {
      util::ByteWriter w;
      w.f64(*state);
      return std::move(w).take();
    };
    opt.restore_state = [state](std::span<const std::uint8_t> bytes) {
      util::ByteReader r(bytes);
      *state = r.f64();
    };
  }
  return rpc::make_procedure_image(
      kSpec, {{"work", [state](rpc::ProcCall& c) {
                 *state += c.real("x");
                 c.set_real("y", *state);
               }}},
      opt);
}

int run() {
  bench::print_header(
      "A5 — procedure migration: move cost and stale-cache recovery");
  std::printf("%-14s %12s %12s %14s %14s %12s\n", "network", "call ms",
              "move ms", "stale call ms", "move+state ms", "state ok");
  bench::print_rule();

  for (const char* net : {"ethernet-lan", "internet-wan"}) {
    for (bool stateful : {false, true}) {
      sim::Cluster cluster;
      cluster.add_machine("avs", "sun-sparc10", "a");
      cluster.add_machine("m1", "ibm-rs6000", "b");
      cluster.add_machine("m2", "sgi-4d480", "b");
      cluster.set_site_link("a", "b", sim::link_profile(net));
      cluster.set_intra_site_link(sim::link_profile("ethernet-lan"));
      auto s1 = std::make_shared<double>(0.0);
      auto s2 = std::make_shared<double>(0.0);
      cluster.install_image("m1", "/bin/work", image_with_state(s1, stateful));
      cluster.install_image("m2", "/bin/work", image_with_state(s2, stateful));
      rpc::SchoonerSystem schooner(cluster, "avs");

      auto client = schooner.make_client("avs", "mover");
      client->contact_schx("m1", "/bin/work");
      auto work = client->import_proc("work", kImport);
      auto& clock = client->io().endpoint().clock();

      const rpc::CallOptions legacy = rpc::CallOptions::legacy();
      work->call({uts::Value::real(1), uts::Value::real(0)}, legacy)
          .values_or_raise();  // bind
      util::SimTime t0 = clock.now();
      const int reps = 20;
      for (int i = 0; i < reps; ++i) {
        work->call({uts::Value::real(1), uts::Value::real(0)}, legacy)
            .values_or_raise();
      }
      const double call_ms = util::sim_to_ms(clock.now() - t0) / reps;

      t0 = clock.now();
      client->move_proc("work", "m2", "/bin/work",
                        /*transfer_state=*/stateful);
      const double move_ms = util::sim_to_ms(clock.now() - t0);

      t0 = clock.now();
      rpc::CallResult reply =
          work->call({uts::Value::real(1), uts::Value::real(0)}, legacy);
      uts::ValueList& out = reply.values_or_raise();
      const double stale_ms = util::sim_to_ms(clock.now() - t0);
      // With state transfer the counter continues (reps+1 earlier adds);
      // stateless restarts at 1.
      const double expected = stateful ? reps + 2.0 : 1.0;
      const bool state_ok = out[1].as_real() == expected;

      if (!stateful) {
        std::printf("%-14s %12.2f %12.1f %14.2f %14s %12s\n", net, call_ms,
                    move_ms, stale_ms, "-", "n/a");
      } else {
        std::printf("%-14s %12.2f %12s %14.2f %14.1f %12s\n", net, call_ms,
                    "-", stale_ms, move_ms, state_ok ? "yes" : "NO");
      }
    }
  }
  std::printf(
      "\nShape checks: one stale call costs ~(failed send + lookup + call)\n"
      "= a small multiple of a warm call; the move itself is dominated by\n"
      "process startup; state transfer adds one extra round trip pair.\n");
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
