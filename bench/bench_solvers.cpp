// A6 — solution-method ablation (§3.2).
//
// TESS offers Newton-Raphson and RK4 pseudo-transient marching for steady
// state, and Modified Euler / RK4 / Adams / Gear for transients. This
// bench regenerates the tradeoff tables a user choosing among the system
// module's widgets faces: convergence effort for steady state, and
// accuracy-vs-RHS-cost for a throttle transient (reference: RK4 at a
// fine step).
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench/testbed.hpp"
#include "tess/engine.hpp"

namespace npss {
namespace {

int run() {
  tess::FlightCondition sls;

  bench::print_header("A6a — steady-state balance methods (F100, wf=1.0)");
  std::printf("%-18s %12s %16s %14s\n", "method", "iterations",
              "residual rpm/s", "wall ms");
  bench::print_rule();
  for (auto method :
       {tess::SteadyMethod::kNewtonRaphson, tess::SteadyMethod::kRk4March}) {
    tess::F100Engine engine;
    util::Stopwatch wall;
    tess::SteadyResult r = engine.balance(1.0, sls, method);
    std::printf("%-18s %12d %16.2e %14.1f\n",
                method == tess::SteadyMethod::kNewtonRaphson
                    ? "Newton-Raphson"
                    : "RK4 march",
                r.iterations, r.residual, wall.elapsed_ms());
  }

  bench::print_header(
      "A6b — transient integrators on a 3 s throttle step (dt sweep)");
  tess::FuelSchedule step = [](double t) {
    return 1.0 + 0.25 * std::clamp((t - 0.1) / 0.2, 0.0, 1.0);
  };

  // Reference: RK4 at dt = 4 ms.
  tess::F100Engine ref_engine;
  tess::SteadyResult steady = ref_engine.balance(1.0, sls);
  tess::TransientResult ref = ref_engine.transient(
      steady.performance.speeds, step, sls, 3.0, 0.004,
      solvers::IntegratorKind::kRungeKutta4);
  const double ref_n1 = ref.history.back().performance.speeds[0];
  const double ref_n2 = ref.history.back().performance.speeds[1];

  std::printf("%-16s %8s %14s %14s %12s\n", "integrator", "dt", "err(N1,N2)",
              "rhs evals", "wall ms");
  bench::print_rule();
  for (auto kind : solvers::all_integrators()) {
    for (double dt : {0.08, 0.04, 0.02}) {
      tess::F100Engine engine;
      engine.balance(1.0, sls);  // warm the flow solver
      util::Stopwatch wall;
      tess::TransientResult tr = engine.transient(
          steady.performance.speeds, step, sls, 3.0, dt, kind);
      const auto& end = tr.history.back().performance;
      const double err = std::max(std::abs(end.speeds[0] - ref_n1),
                                  std::abs(end.speeds[1] - ref_n2));
      std::printf("%-16s %8.3f %14.4e %14ld %12.1f\n",
                  std::string(solvers::integrator_name(kind)).c_str(), dt,
                  err, tr.rhs_evaluations, wall.elapsed_ms());
    }
  }
  bench::print_header(
      "A6c — stiff intercomponent-volume dynamics (mixer plenum state):\n"
      "the configuration Gear exists for");
  tess::F100Config vol_cfg;
  vol_cfg.mixer_volume_m3 = 0.3;
  std::printf("%-16s %8s %16s %18s\n", "integrator", "dt",
              "end |dPt/dt| Pa/s", "stable?");
  bench::print_rule();
  for (auto kind : solvers::all_integrators()) {
    for (double dt : {0.01, 0.002}) {
      tess::F100Engine engine(vol_cfg);
      tess::SteadyResult st = engine.balance(1.0, sls);
      bool stable = true;
      double end_dp = 0.0;
      try {
        tess::TransientResult tr = engine.transient(
            st.performance.states, [](double) { return 1.1; }, sls, 0.2,
            dt, kind);
        end_dp =
            std::abs(tr.history.back().performance.accelerations.back());
        const double end_pt = tr.history.back().performance.states[2];
        stable = end_dp < 1e5 && end_pt > 0.4e5 && end_pt < 1.0e6;
      } catch (const std::exception&) {
        stable = false;
        end_dp = std::numeric_limits<double>::quiet_NaN();
      }
      std::printf("%-16s %8.4f %16.3e %18s\n",
                  std::string(solvers::integrator_name(kind)).c_str(), dt,
                  end_dp, stable ? "yes" : "NO (diverged)");
    }
  }
  std::printf(
      "\nShape checks: RK4 most accurate per step but 2x the RHS cost of\n"
      "Euler/Adams; halving dt cuts 2nd-order errors ~4x; on the stiff\n"
      "plenum state only Gear is stable at engine-transient step sizes —\n"
      "the reason TESS's system module offers it (§3.2).\n");
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
