// A3 — startup-protocol ablation (§4.1).
//
// The original Schooner started everything a priori from the Manager's
// command line; AVS integration forced a dynamic protocol where a
// newly-configured module contacts the Manager and requests starts on
// demand. This bench measures, in deterministic simulated time:
//   * cost to bring up one remote module dynamically (register line +
//     start request + spawn + export + first lookup + first call);
//   * amortized cost of subsequent calls (the dynamic protocol is pure
//     startup overhead, not per-call overhead);
//   * batch (static-style) startup of N modules vs N incremental dynamic
//     startups — the crossover the old command-line model optimized for.
#include <cstdio>

#include "bench/testbed.hpp"

namespace npss {
namespace {

const char* kNopSpec = "export nop prog(\"x\" val float)";
const char* kNopImport = "import nop prog(\"x\" val float)";

int run() {
  bench::print_header("A3 — dynamic startup protocol cost (simulated time)");

  for (const char* net : {"ethernet-lan", "internet-wan"}) {
    sim::Cluster cluster;
    cluster.add_machine("avs", "sun-sparc10", "a");
    cluster.add_machine("remote", "ibm-rs6000", "b");
    cluster.set_site_link("a", "b", sim::link_profile(net));
    for (int i = 0; i < 32; ++i) {
      cluster.install_image("remote", "/bin/nop" + std::to_string(i),
                            rpc::make_procedure_image(
                                kNopSpec, {{"nop", [](rpc::ProcCall&) {}}}));
    }
    rpc::SchoonerSystem schooner(cluster, "avs");

    // Dynamic startup of one module, then call costs.
    auto client = schooner.make_client("avs", "startup-bench");
    auto& clock = client->io().endpoint().clock();
    const rpc::CallOptions legacy = rpc::CallOptions::legacy();
    util::SimTime t0 = clock.now();
    client->contact_schx("remote", "/bin/nop0");
    auto nop = client->import_proc("nop", kNopImport);
    nop->call({uts::Value::real(1)}, legacy).values_or_raise();
    util::SimTime first_call_done = clock.now();
    const int reps = 50;
    for (int i = 0; i < reps; ++i) {
      nop->call({uts::Value::real(1)}, legacy).values_or_raise();
    }
    util::SimTime warm_done = clock.now();

    const double startup_ms = util::sim_to_ms(first_call_done - t0);
    const double call_ms =
        util::sim_to_ms(warm_done - first_call_done) / reps;

    // N incremental dynamic startups (the AVS pattern: one module
    // configured at a time, each on its own line).
    util::Stopwatch wall;
    util::SimTime batch0 = 0, batchN = 0;
    {
      std::vector<std::unique_ptr<rpc::SchoonerClient>> lines;
      std::vector<std::unique_ptr<rpc::RemoteProc>> procs;
      auto probe = schooner.make_client("avs", "batch-probe");
      batch0 = probe->io().endpoint().clock().now();
      for (int i = 0; i < 16; ++i) {
        auto line = schooner.make_client("avs", "mod" + std::to_string(i));
        line->io().endpoint().clock().join(batch0);
        line->contact_schx("remote", "/bin/nop" + std::to_string(i));
        auto proc = line->import_proc("nop", kNopImport);
        proc->call({uts::Value::real(1)}, legacy).values_or_raise();
        batchN = std::max(batchN, line->io().endpoint().clock().now());
        lines.push_back(std::move(line));
        procs.push_back(std::move(proc));
      }
      for (auto& line : lines) line->quit();
    }

    std::printf(
        "%-22s  startup-to-first-call %8.1f ms   warm call %6.2f ms   "
        "16-module bring-up %8.1f ms (wall %0.1f ms)\n",
        net, startup_ms, call_ms, util::sim_to_ms(batchN - batch0),
        wall.elapsed_ms());
  }
  std::printf(
      "\nShape checks: startup >> warm call (the dynamic protocol costs\n"
      "several round trips once, none per call); WAN inflates startup by\n"
      "the same latency factor as calls.\n");
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
