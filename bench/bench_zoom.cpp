// A8 — zooming ablation (§2.3).
//
// The §2.3 goal: integrate component models at different fidelity in one
// simulation. The level-1 duct is a fixed fractional loss; the level-2
// duct solves a 2-D relaxation problem per call (encapsulated parallel
// computation, Figure 1). This bench regenerates the fidelity tradeoff:
// answer shift and computational cost for the tailpipe duct zoomed to
// level 2, as a function of the duct's wall contour — the physics the
// level-1 model cannot see at all.
#include <cmath>
#include <cstdio>

#include "bench/testbed.hpp"
#include "tess/engine.hpp"
#include "tess/hifi_duct.hpp"

namespace npss {
namespace {

int run() {
  bench::print_header(
      "A8 — zooming: level-1 vs level-2 tailpipe duct in the F100");

  tess::FlightCondition sls;
  tess::F100Engine level1;
  util::Stopwatch w1;
  tess::SteadyResult base = level1.balance(1.0, sls);
  const double l1_ms = w1.elapsed_ms();
  std::printf("level-1 (fixed 1%% loss): thrust %.2f kN, T4 %.1f K "
              "(balance in %.1f ms)\n\n",
              base.performance.thrust / 1e3, base.performance.t4, l1_ms);

  std::printf("%10s %12s %12s %12s %12s %10s\n", "contour", "dp [%]",
              "thrust kN", "d(thrust)", "T4 [K]", "wall ms");
  bench::print_rule();
  for (double contour : {-0.3, -0.15, 0.0, 0.15, 0.3}) {
    tess::HifiDuctConfig duct_cfg;
    duct_cfg.contour = contour;
    duct_cfg.design_dp = 0.01;  // calibrated to the level-1 tailpipe

    tess::F100Engine engine;
    tess::ComponentHooks hooks = tess::ComponentHooks::local();
    hooks.duct = [&duct_cfg, base_duct = hooks.duct](
                     int instance, const tess::StationArray& in, double dp) {
      if (instance != 1) return base_duct(instance, in, dp);  // bypass duct
      tess::HifiDuctResult r =
          tess::hifi_duct(tess::from_array(in), duct_cfg);
      return tess::to_array(r.out);
    };
    engine.set_hooks(hooks);

    util::Stopwatch w2;
    tess::SteadyResult zoomed = engine.balance(1.0, sls);
    const double ms = w2.elapsed_ms();

    tess::HifiDuctResult sample = tess::hifi_duct(
        tess::from_array(tess::to_array(
            zoomed.performance.stations.at("st6"))),
        duct_cfg);
    std::printf("%10.2f %12.3f %12.2f %+11.2f%% %12.1f %10.1f\n", contour,
                sample.dp_fraction * 100.0,
                zoomed.performance.thrust / 1e3,
                (zoomed.performance.thrust / base.performance.thrust - 1.0) *
                    100.0,
                zoomed.performance.t4, ms);
  }
  std::printf(
      "\nShape checks: the straight level-2 duct reproduces the level-1\n"
      "answer (calibration); contoured ducts shift thrust by up to a few\n"
      "percent — physics invisible to level 1 — at ~10-100x the\n"
      "computational cost per balance, the fidelity/cost tradeoff zooming\n"
      "manages (§2.3, §2.1's five fidelity levels).\n");
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
