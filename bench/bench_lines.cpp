// A4 — multi-tenant lines (§4.2, DESIGN.md §15).
//
// The lines extension lets several sequential threads of control share one
// persistent Manager, with duplicate procedure names across lines. This
// bench measures four shapes:
//   1. host-side throughput scaling as independent lines call same-named
//      remote procedures concurrently,
//   2. full line lifecycles (create -> start -> call -> quit) at
//      increasing concurrency — the Manager's bookkeeping contention,
//   3. steady state: N lines held open against a resident shared fleet,
//      stepped by a small worker pool — sustained calls/sec and per-step
//      p99 as the line count sweeps 1 -> 2000, and
//   4. noisy-neighbor isolation: one line behind a 100%-lossy link, with a
//      LineBudget, storms while its neighbors keep calling — their p99
//      must not move by more than 10%.
// Writes BENCH_lines.json next to the binary.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/testbed.hpp"

namespace npss {
namespace {

const char* kWorkSpec = "export work prog(\"x\" val double, \"y\" res double)";
const char* kWorkImport =
    "import work prog(\"x\" val double, \"y\" res double)";

// The shared four-machine fleet: lines spread round-robin across m0..m3.
std::string fleet_machine(int i) {
  std::string name = "m";
  name += std::to_string(i % 4);
  return name;
}

// Shared procedures share one Manager-wide name space, so each fleet host
// exports a distinct name (work0..work3); tenants import without
// contacting — the fleet-owner line started the hosts.
std::string fleet_proc(int i) {
  std::string name = "work";
  name += std::to_string(i % 4);
  return name;
}
std::string fleet_spec(int i) {
  return "export " + fleet_proc(i) +
         " prog(\"x\" val double, \"y\" res double)";
}
std::string fleet_import(int i) {
  return "import " + fleet_proc(i) +
         " prog(\"x\" val double, \"y\" res double)";
}

double percentile(std::vector<double>& sorted_into, double q) {
  std::sort(sorted_into.begin(), sorted_into.end());
  if (sorted_into.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_into.size() - 1));
  return sorted_into[idx];
}

struct SteadyPoint {
  int nlines = 0;
  long calls = 0;
  double open_ms = 0.0;
  double calls_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct NoisyResult {
  double baseline_p99_us = 0.0;
  double with_noisy_p99_us = 0.0;
  double delta_pct = 0.0;
  bool bound_met = false;
  long victim_failed_calls = 0;
  bool victim_budget_exhausted = false;
};

/// One measurement pass: `workers` threads step their share of `lines`
/// round-robin, `steps` calls per line, recording each step's wall
/// latency. Lines stay open; the Manager is out of the per-call path.
template <typename LineVec>
void step_lines(LineVec& lines,
                std::vector<std::unique_ptr<rpc::RemoteProc>>& procs,
                int steps, int workers, std::vector<double>& latencies_us) {
  using clock_type = std::chrono::steady_clock;
  std::mutex mu;
  std::vector<std::thread> pool;
  const std::size_t n = lines.size();
  const rpc::CallOptions opts = rpc::CallOptions::legacy();
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      std::vector<double> mine;
      for (int s = 0; s < steps; ++s) {
        for (std::size_t i = static_cast<std::size_t>(w); i < n;
             i += static_cast<std::size_t>(workers)) {
          const auto t0 = clock_type::now();
          rpc::CallResult r = procs[i]->call(
              {uts::Value::real(s), uts::Value::real(0)}, opts);
          if (!r.ok()) continue;  // counted by the caller via latencies size
          mine.push_back(std::chrono::duration<double, std::micro>(
                             clock_type::now() - t0)
                             .count());
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      latencies_us.insert(latencies_us.end(), mine.begin(), mine.end());
    });
  }
  for (auto& t : pool) t.join();
}

int run() {
  bench::print_header(
      "A4 — multi-tenant lines: shared fleet, fairness, fault budgets");

  sim::Cluster cluster;
  cluster.add_machine("avs", "sun-sparc10", "a");
  for (int m = 0; m < 4; ++m) {
    cluster.add_machine(fleet_machine(m), "ibm-rs6000", "a");
  }
  cluster.add_machine("far", "ibm-rs6000", "b");
  cluster.set_site_link("a", "b", sim::link_profile("internet-wan"));
  // The shared fleet serves many lines concurrently: a pooled host drains
  // per-line FIFO lanes round-robin (util::FairQueue).
  rpc::ProcedureImageOptions pooled;
  pooled.workers = 2;
  for (int m = 0; m < 4; ++m) {
    // Per-line hosts (section 1 and 2) export plain 'work'; the shared
    // fleet hosts (sections 3 and 4) export work0..work3.
    cluster.install_image(
        fleet_machine(m), "/bin/work",
        rpc::make_procedure_image(kWorkSpec,
                                  {{"work",
                                    [](rpc::ProcCall& c) {
                                      c.set_real("y", c.real("x") + 1.0);
                                    }}},
                                  pooled));
    cluster.install_image(
        fleet_machine(m), "/bin/fleet",
        rpc::make_procedure_image(fleet_spec(m),
                                  {{fleet_proc(m),
                                    [](rpc::ProcCall& c) {
                                      c.set_real("y", c.real("x") + 1.0);
                                    }}},
                                  pooled));
  }
  cluster.install_image(
      "far", "/bin/work",
      rpc::make_procedure_image(kWorkSpec, {{"work", [](rpc::ProcCall& c) {
                                   c.set_real("y", c.real("x") + 1.0);
                                 }}}));
  rpc::SchoonerSystem schooner(cluster, "avs");
  auto session = schooner.make_session("avs");
  const rpc::CallOptions legacy = rpc::CallOptions::legacy();

  // The fleet-owner line starts the four resident shared hosts that
  // sections 3 and 4 step against; it stays open for the whole run.
  auto fleet_owner =
      session->open_line(rpc::LineOptions{}.with_name("fleet-owner"));
  for (int m = 0; m < 4; ++m) {
    fleet_owner->contact_schx(fleet_machine(m), "/bin/fleet",
                              /*shared=*/true);
  }

  // --- 1. Concurrent-line throughput (per-line processes) -----------------
  const int kCalls = 400;
  std::printf("%8s %14s %16s %14s\n", "lines", "total calls", "wall ms",
              "calls/ms");
  bench::print_rule();
  for (int nlines : {1, 2, 4, 8}) {
    util::Stopwatch wall;
    std::vector<std::thread> threads;
    std::atomic<long> completed{0};
    for (int i = 0; i < nlines; ++i) {
      threads.emplace_back([&, i] {
        auto line = session->open_line(
            rpc::LineOptions{}.with_name("line" + std::to_string(i)));
        line->contact_schx(fleet_machine(i), "/bin/work");
        auto work = line->import_proc("work", kWorkImport);
        for (int c = 0; c < kCalls; ++c) {
          work->call({uts::Value::real(c), uts::Value::real(0)}, legacy)
              .values_or_raise();
          ++completed;
        }
        line->quit();
      });
    }
    for (auto& t : threads) t.join();
    const double ms = wall.elapsed_ms();
    std::printf("%8d %14ld %16.1f %14.1f\n", nlines, completed.load(), ms,
                completed.load() / ms);
  }

  // --- 2. Line-lifecycle scaling ------------------------------------------
  // Every thread runs full line cycles (create -> start -> one call ->
  // quit) and records each cycle's wall latency; the Manager serializes
  // the bookkeeping, so this is the control-plane contention curve.
  struct LinePoint {
    int nlines = 0;
    long cycles = 0;
    double lines_per_sec = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };
  std::vector<LinePoint> line_points;
  const int kCyclesPerThread = 50;
  std::printf("\n%8s %10s %14s %12s %12s\n", "lines", "cycles", "lines/sec",
              "p50 ms", "p99 ms");
  bench::print_rule();
  for (int nlines : {1, 2, 4, 8}) {
    std::vector<double> latencies;
    std::mutex mu;
    util::Stopwatch wall;
    std::vector<std::thread> threads;
    for (int i = 0; i < nlines; ++i) {
      threads.emplace_back([&, i] {
        std::vector<double> mine;
        for (int c = 0; c < kCyclesPerThread; ++c) {
          util::Stopwatch cycle;
          auto line = session->open_line(
              rpc::LineOptions{}.with_name("cycle" + std::to_string(i)));
          std::string machine = "m";
          machine += std::to_string(i % 4);
          line->contact_schx(machine, "/bin/work");
          auto work = line->import_proc("work", kWorkImport);
          work->call({uts::Value::real(c), uts::Value::real(0)}, legacy)
              .values_or_raise();
          line->quit();
          mine.push_back(cycle.elapsed_ms());
        }
        std::lock_guard<std::mutex> lock(mu);
        latencies.insert(latencies.end(), mine.begin(), mine.end());
      });
    }
    for (auto& t : threads) t.join();
    const double ms = wall.elapsed_ms();
    std::sort(latencies.begin(), latencies.end());
    LinePoint point;
    point.nlines = nlines;
    point.cycles = static_cast<long>(latencies.size());
    point.lines_per_sec = point.cycles / (ms / 1000.0);
    point.p50_ms = latencies[latencies.size() / 2];
    point.p99_ms = latencies[latencies.size() * 99 / 100];
    line_points.push_back(point);
    std::printf("%8d %10ld %14.1f %12.2f %12.2f\n", point.nlines,
                point.cycles, point.lines_per_sec, point.p50_ms,
                point.p99_ms);
  }

  // --- 3. Steady state: lines held open against the shared fleet ----------
  // N lines bind shared 'work' instances once, then a fixed worker pool
  // steps them round-robin: sustained calls/sec and per-step latency as
  // the held-open line count sweeps 1 -> 2000. The Manager sees only the
  // opens; the call path is line endpoint -> shared host.
  std::vector<SteadyPoint> steady_points;
  const int kStepWorkers = 8;
  std::printf("\n%8s %10s %12s %14s %10s %10s\n", "lines", "calls",
              "open ms", "calls/sec", "p50 us", "p99 us");
  bench::print_rule();
  for (int nlines : {1, 8, 64, 256, 1000, 2000}) {
    util::Stopwatch open_watch;
    std::vector<std::unique_ptr<rpc::Line>> lines;
    std::vector<std::unique_ptr<rpc::RemoteProc>> procs;
    lines.reserve(static_cast<std::size_t>(nlines));
    procs.reserve(static_cast<std::size_t>(nlines));
    for (int i = 0; i < nlines; ++i) {
      auto line = session->open_line(
          rpc::LineOptions{}.with_name("steady" + std::to_string(i)));
      procs.push_back(line->import_proc(fleet_proc(i), fleet_import(i)));
      lines.push_back(std::move(line));
    }
    const double open_ms = open_watch.elapsed_ms();

    const int steps = std::max(3, 6000 / nlines);
    std::vector<double> latencies;
    util::Stopwatch wall;
    step_lines(lines, procs, steps,
               std::min(kStepWorkers, nlines), latencies);
    const double sec = wall.elapsed_ms() / 1000.0;

    SteadyPoint p;
    p.nlines = nlines;
    p.calls = static_cast<long>(latencies.size());
    p.open_ms = open_ms;
    p.calls_per_sec = p.calls / sec;
    std::vector<double> sorted = latencies;
    p.p50_us = percentile(sorted, 0.50);
    p.p99_us = percentile(sorted, 0.99);
    steady_points.push_back(p);
    std::printf("%8d %10ld %12.1f %14.1f %10.1f %10.1f\n", p.nlines, p.calls,
                p.open_ms, p.calls_per_sec, p.p50_us, p.p99_us);

    procs.clear();
    for (auto& line : lines) line->quit();
    lines.clear();
  }

  // --- 4. Noisy-neighbor isolation ----------------------------------------
  // Eight neighbor lines keep stepping the LAN fleet while one victim
  // line — behind a 100%-lossy WAN link, carrying a LineBudget — storms
  // deadline-bounded retries. Per-line endpoints, per-line budgets, and
  // fair host queues keep the victim's failure mode its own: neighbor p99
  // must stay within 10% of the baseline.
  NoisyResult noisy;
  {
    const int kNeighbors = 8;
    std::vector<std::unique_ptr<rpc::Line>> lines;
    std::vector<std::unique_ptr<rpc::RemoteProc>> procs;
    for (int i = 0; i < kNeighbors; ++i) {
      auto line = session->open_line(
          rpc::LineOptions{}.with_name("neighbor" + std::to_string(i)));
      procs.push_back(line->import_proc(fleet_proc(i), fleet_import(i)));
      lines.push_back(std::move(line));
    }

    // Victim: bound while the WAN is healthy, budgeted for the storm.
    auto victim = session->open_line(
        rpc::LineOptions{}
            .with_name("victim")
            .with_budget({.virtual_us = 30'000'000, .retries = 1'000}));
    victim->contact_schx("far", "/bin/work");
    auto victim_work = victim->import_proc("work", kWorkImport);
    victim_work->call({uts::Value::real(1), uts::Value::real(0)}, legacy)
        .values_or_raise();

    std::vector<double> baseline;
    step_lines(lines, procs, 100, 4, baseline);
    noisy.baseline_p99_us = percentile(baseline, 0.99);

    sim::FaultSpec loss;
    loss.drop_rate = 1.0;
    cluster.set_fault_seed(7);
    cluster.set_link_faults("internet-wan", loss);

    std::atomic<bool> stop{false};
    std::atomic<long> victim_failures{0};
    std::atomic<bool> budget_hit{false};
    std::thread storm([&] {
      rpc::CallOptions opts;
      opts.deadline_us = 200'000;  // 200 ms of virtual time per call
      opts.max_attempts = 3;
      opts.idempotent = true;
      opts.host_grace_ms = 2;
      while (!stop.load()) {
        rpc::CallResult r = victim_work->call(
            {uts::Value::real(1), uts::Value::real(0)}, opts);
        if (r.ok()) continue;
        ++victim_failures;
        if (r.status.code() == util::ErrorCode::kBudgetExhausted) {
          // Fail-fast: the line's budget is spent; stop the storm the
          // way a budgeted tenant would be stopped.
          budget_hit.store(true);
          break;
        }
      }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<double> contended;
    step_lines(lines, procs, 100, 4, contended);
    noisy.with_noisy_p99_us = percentile(contended, 0.99);
    stop.store(true);
    storm.join();
    cluster.clear_faults();

    noisy.delta_pct = noisy.baseline_p99_us > 0
                          ? (noisy.with_noisy_p99_us - noisy.baseline_p99_us) /
                                noisy.baseline_p99_us * 100.0
                          : 0.0;
    noisy.bound_met = noisy.with_noisy_p99_us <= noisy.baseline_p99_us * 1.10;
    noisy.victim_failed_calls = victim_failures.load();
    noisy.victim_budget_exhausted = budget_hit.load();

    victim->quit();
    procs.clear();
    for (auto& line : lines) line->quit();

    std::printf(
        "\nnoisy neighbor: baseline p99 %.1f us, with storm %.1f us "
        "(%+.1f%%, bound %s)\n",
        noisy.baseline_p99_us, noisy.with_noisy_p99_us, noisy.delta_pct,
        noisy.bound_met ? "met" : "MISSED");
    std::printf(
        "victim: %ld failed call(s); budget %s\n", noisy.victim_failed_calls,
        noisy.victim_budget_exhausted ? "exhausted (failed fast)"
                                      : "not exhausted");
  }

  fleet_owner->quit();
  rpc::ManagerStats stats = schooner.stats();
  std::printf(
      "manager stats: %llu lines created, %llu shut down, %llu rejected, "
      "%llu processes, %llu lookups\n",
      static_cast<unsigned long long>(stats.lines_created),
      static_cast<unsigned long long>(stats.lines_shut_down),
      static_cast<unsigned long long>(stats.lines_rejected),
      static_cast<unsigned long long>(stats.processes_started),
      static_cast<unsigned long long>(stats.lookups));
  std::printf(
      "\nShape checks: every line resolves its own 'work' instance\n"
      "(duplicate names across lines); steady-state per-call cost does not\n"
      "grow with held-open line count (the Manager is out of the per-call\n"
      "path); the lossy line's storm stays inside its own budget.\n");

  std::FILE* f = std::fopen("BENCH_lines.json", "w");
  if (f) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"lines\",\n");
    std::fprintf(f, "  \"cycles_per_thread\": %d,\n", kCyclesPerThread);
    std::fprintf(f, "  \"lifecycle_sweep\": [\n");
    for (std::size_t i = 0; i < line_points.size(); ++i) {
      const LinePoint& p = line_points[i];
      std::fprintf(f,
                   "    {\"concurrent_lines\": %d, \"cycles\": %ld, "
                   "\"lines_per_sec\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f}%s\n",
                   p.nlines, p.cycles, p.lines_per_sec, p.p50_ms, p.p99_ms,
                   i + 1 < line_points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"steady_state\": [\n");
    for (std::size_t i = 0; i < steady_points.size(); ++i) {
      const SteadyPoint& p = steady_points[i];
      std::fprintf(f,
                   "    {\"concurrent_lines\": %d, \"calls\": %ld, "
                   "\"open_ms\": %.1f, \"calls_per_sec\": %.1f, "
                   "\"p50_us\": %.1f, \"p99_us\": %.1f}%s\n",
                   p.nlines, p.calls, p.open_ms, p.calls_per_sec, p.p50_us,
                   p.p99_us, i + 1 < steady_points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"noisy_neighbor\": {\"baseline_p99_us\": %.1f, "
                 "\"with_noisy_p99_us\": %.1f, \"delta_pct\": %.1f, "
                 "\"bound_met\": %s, \"victim_failed_calls\": %ld, "
                 "\"victim_budget_exhausted\": %s},\n",
                 noisy.baseline_p99_us, noisy.with_noisy_p99_us,
                 noisy.delta_pct, noisy.bound_met ? "true" : "false",
                 noisy.victim_failed_calls,
                 noisy.victim_budget_exhausted ? "true" : "false");
    std::fprintf(f,
                 "  \"manager\": {\"lines_created\": %llu, "
                 "\"lines_shut_down\": %llu, \"lines_rejected\": %llu, "
                 "\"processes_started\": %llu, \"lookups\": %llu}\n",
                 static_cast<unsigned long long>(stats.lines_created),
                 static_cast<unsigned long long>(stats.lines_shut_down),
                 static_cast<unsigned long long>(stats.lines_rejected),
                 static_cast<unsigned long long>(stats.processes_started),
                 static_cast<unsigned long long>(stats.lookups));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_lines.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
