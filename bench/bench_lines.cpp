// A4 — lines ablation (§4.2).
//
// The lines extension lets several sequential threads of control share one
// persistent Manager, with duplicate procedure names across lines. This
// bench measures host-side throughput scaling as independent lines call
// same-named remote procedures concurrently, plus the Manager-side cost of
// line bookkeeping (create/quit churn).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/testbed.hpp"

namespace npss {
namespace {

const char* kWorkSpec = "export work prog(\"x\" val double, \"y\" res double)";
const char* kWorkImport =
    "import work prog(\"x\" val double, \"y\" res double)";

int run() {
  bench::print_header(
      "A4 — concurrent lines: same-named procedures, isolated shutdown");

  sim::Cluster cluster;
  cluster.add_machine("avs", "sun-sparc10", "a");
  for (int m = 0; m < 4; ++m) {
    cluster.add_machine("m" + std::to_string(m), "ibm-rs6000", "a");
  }
  for (int m = 0; m < 4; ++m) {
    cluster.install_image(
        "m" + std::to_string(m), "/bin/work",
        rpc::make_procedure_image(kWorkSpec, {{"work", [](rpc::ProcCall& c) {
                                     c.set_real("y", c.real("x") + 1.0);
                                   }}}));
  }
  rpc::SchoonerSystem schooner(cluster, "avs");

  const int kCalls = 400;
  std::printf("%8s %14s %16s %14s\n", "lines", "total calls", "wall ms",
              "calls/ms");
  bench::print_rule();
  for (int nlines : {1, 2, 4, 8}) {
    util::Stopwatch wall;
    std::vector<std::thread> threads;
    std::atomic<long> completed{0};
    for (int i = 0; i < nlines; ++i) {
      threads.emplace_back([&, i] {
        auto client =
            schooner.make_client("avs", "line" + std::to_string(i));
        client->contact_schx("m" + std::to_string(i % 4), "/bin/work");
        auto work = client->import_proc("work", kWorkImport);
        for (int c = 0; c < kCalls; ++c) {
          work->call({uts::Value::real(c), uts::Value::real(0)});
          ++completed;
        }
        client->quit();
      });
    }
    for (auto& t : threads) t.join();
    const double ms = wall.elapsed_ms();
    std::printf("%8d %14ld %16.1f %14.1f\n", nlines, completed.load(), ms,
                completed.load() / ms);
  }

  // Manager bookkeeping churn: open/quit lines in a tight loop.
  util::Stopwatch churn;
  const int kChurn = 200;
  for (int i = 0; i < kChurn; ++i) {
    auto client = schooner.make_client("avs", "churn");
    client->contact_schx("m0", "/bin/work");
    client->quit();
  }
  std::printf("\nline create+start+quit churn: %.2f ms each (%d cycles)\n",
              churn.elapsed_ms() / kChurn, kChurn);
  rpc::ManagerStats stats = schooner.stats();
  std::printf(
      "manager stats: %llu lines created, %llu shut down, %llu processes, "
      "%llu lookups\n",
      static_cast<unsigned long long>(stats.lines_created),
      static_cast<unsigned long long>(stats.lines_shut_down),
      static_cast<unsigned long long>(stats.processes_started),
      static_cast<unsigned long long>(stats.lookups));
  std::printf(
      "\nShape checks: every line resolves its own 'work' instance\n"
      "(duplicate names across lines); per-call wall cost does not grow\n"
      "with line count (the Manager is out of the per-call path).\n");
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
