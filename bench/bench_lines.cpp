// A4 — lines ablation (§4.2).
//
// The lines extension lets several sequential threads of control share one
// persistent Manager, with duplicate procedure names across lines. This
// bench measures host-side throughput scaling as independent lines call
// same-named remote procedures concurrently, plus the Manager-side cost of
// line bookkeeping: full line lifecycles (create -> start -> call -> quit)
// at increasing concurrency, reported as lines/sec with the p99 lifecycle
// latency. Writes BENCH_lines.json next to the binary.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/testbed.hpp"

namespace npss {
namespace {

const char* kWorkSpec = "export work prog(\"x\" val double, \"y\" res double)";
const char* kWorkImport =
    "import work prog(\"x\" val double, \"y\" res double)";

int run() {
  bench::print_header(
      "A4 — concurrent lines: same-named procedures, isolated shutdown");

  sim::Cluster cluster;
  cluster.add_machine("avs", "sun-sparc10", "a");
  for (int m = 0; m < 4; ++m) {
    cluster.add_machine("m" + std::to_string(m), "ibm-rs6000", "a");
  }
  for (int m = 0; m < 4; ++m) {
    cluster.install_image(
        "m" + std::to_string(m), "/bin/work",
        rpc::make_procedure_image(kWorkSpec, {{"work", [](rpc::ProcCall& c) {
                                     c.set_real("y", c.real("x") + 1.0);
                                   }}}));
  }
  rpc::SchoonerSystem schooner(cluster, "avs");

  const int kCalls = 400;
  std::printf("%8s %14s %16s %14s\n", "lines", "total calls", "wall ms",
              "calls/ms");
  bench::print_rule();
  for (int nlines : {1, 2, 4, 8}) {
    util::Stopwatch wall;
    std::vector<std::thread> threads;
    std::atomic<long> completed{0};
    for (int i = 0; i < nlines; ++i) {
      threads.emplace_back([&, i] {
        auto client =
            schooner.make_client("avs", "line" + std::to_string(i));
        client->contact_schx("m" + std::to_string(i % 4), "/bin/work");
        auto work = client->import_proc("work", kWorkImport);
        for (int c = 0; c < kCalls; ++c) {
          work->call({uts::Value::real(c), uts::Value::real(0)});
          ++completed;
        }
        client->quit();
      });
    }
    for (auto& t : threads) t.join();
    const double ms = wall.elapsed_ms();
    std::printf("%8d %14ld %16.1f %14.1f\n", nlines, completed.load(), ms,
                completed.load() / ms);
  }

  // Line-lifecycle scaling: every thread runs full line cycles
  // (create -> start -> one call -> quit) and records each cycle's wall
  // latency; the Manager serializes the bookkeeping, so this is the
  // control-plane contention curve.
  struct LinePoint {
    int nlines = 0;
    long cycles = 0;
    double lines_per_sec = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };
  std::vector<LinePoint> line_points;
  const int kCyclesPerThread = 50;
  std::printf("\n%8s %10s %14s %12s %12s\n", "lines", "cycles", "lines/sec",
              "p50 ms", "p99 ms");
  bench::print_rule();
  for (int nlines : {1, 2, 4, 8}) {
    std::vector<double> latencies;
    std::mutex mu;
    util::Stopwatch wall;
    std::vector<std::thread> threads;
    for (int i = 0; i < nlines; ++i) {
      threads.emplace_back([&, i] {
        std::vector<double> mine;
        for (int c = 0; c < kCyclesPerThread; ++c) {
          util::Stopwatch cycle;
          auto client = schooner.make_client(
              "avs", "cycle" + std::to_string(i));
          client->contact_schx("m" + std::to_string(i % 4), "/bin/work");
          auto work = client->import_proc("work", kWorkImport);
          work->call({uts::Value::real(c), uts::Value::real(0)});
          client->quit();
          mine.push_back(cycle.elapsed_ms());
        }
        std::lock_guard<std::mutex> lock(mu);
        latencies.insert(latencies.end(), mine.begin(), mine.end());
      });
    }
    for (auto& t : threads) t.join();
    const double ms = wall.elapsed_ms();
    std::sort(latencies.begin(), latencies.end());
    LinePoint point;
    point.nlines = nlines;
    point.cycles = static_cast<long>(latencies.size());
    point.lines_per_sec = point.cycles / (ms / 1000.0);
    point.p50_ms = latencies[latencies.size() / 2];
    point.p99_ms = latencies[latencies.size() * 99 / 100];
    line_points.push_back(point);
    std::printf("%8d %10ld %14.1f %12.2f %12.2f\n", point.nlines,
                point.cycles, point.lines_per_sec, point.p50_ms,
                point.p99_ms);
  }
  rpc::ManagerStats stats = schooner.stats();
  std::printf(
      "manager stats: %llu lines created, %llu shut down, %llu processes, "
      "%llu lookups\n",
      static_cast<unsigned long long>(stats.lines_created),
      static_cast<unsigned long long>(stats.lines_shut_down),
      static_cast<unsigned long long>(stats.processes_started),
      static_cast<unsigned long long>(stats.lookups));
  std::printf(
      "\nShape checks: every line resolves its own 'work' instance\n"
      "(duplicate names across lines); per-call wall cost does not grow\n"
      "with line count (the Manager is out of the per-call path).\n");

  std::FILE* f = std::fopen("BENCH_lines.json", "w");
  if (f) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"lines\",\n");
    std::fprintf(f, "  \"cycles_per_thread\": %d,\n", kCyclesPerThread);
    std::fprintf(f, "  \"lifecycle_sweep\": [\n");
    for (std::size_t i = 0; i < line_points.size(); ++i) {
      const LinePoint& p = line_points[i];
      std::fprintf(f,
                   "    {\"concurrent_lines\": %d, \"cycles\": %ld, "
                   "\"lines_per_sec\": %.1f, \"p50_ms\": %.3f, "
                   "\"p99_ms\": %.3f}%s\n",
                   p.nlines, p.cycles, p.lines_per_sec, p.p50_ms, p.p99_ms,
                   i + 1 < line_points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"manager\": {\"lines_created\": %llu, "
                 "\"lines_shut_down\": %llu, \"processes_started\": %llu, "
                 "\"lookups\": %llu}\n",
                 static_cast<unsigned long long>(stats.lines_created),
                 static_cast<unsigned long long>(stats.lines_shut_down),
                 static_cast<unsigned long long>(stats.processes_started),
                 static_cast<unsigned long long>(stats.lookups));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_lines.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
