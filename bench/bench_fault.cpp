// Fault-tolerant call path under injected wan loss.
//
// Sweeps the drop rate on the internet-wan link and measures, for a
// retrying idempotent duct caller at UA against a LeRC server, the
// availability (fraction of calls that complete within the deadline) and
// the added virtual latency paid for retries — the curves the CallOptions
// defaults were tuned against. A second section crashes the server
// mid-run and records the migration-based failover. Writes
// BENCH_fault.json next to the binary.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/testbed.hpp"
#include "rpc/client.hpp"
#include "uts/value.hpp"

namespace npss::bench {
namespace {

using rpc::CallOptions;
using rpc::CallResult;
using uts::Value;

constexpr int kCallsPerPoint = 200;

CallOptions sweep_options() {
  CallOptions opts;
  opts.deadline_us = 10'000'000;  // 10 s of virtual time per call
  opts.max_attempts = 5;
  opts.idempotent = true;  // duct is pure
  opts.host_grace_ms = 25;
  return opts;
}

Value station_in() {
  return Value::real_array({102.0, 288.15, 101325.0, 20.0});
}

struct SweepPoint {
  double loss = 0.0;
  int ok = 0;
  int retried = 0;
  double mean_attempts = 0.0;
  double mean_virtual_us = 0.0;
  std::uint64_t dropped = 0;
};

SweepPoint run_point(double loss) {
  Testbed bed;
  auto client = bed.schooner->make_client("sparc-ua", "fault-sweep");
  client->contact_schx("sgi480-lerc", glue::kDuctPath);
  auto duct = client->import_proc("duct", glue::duct_import_spec());

  // Faults go live after the spawn handshake so setup cannot be dropped.
  if (loss > 0.0) {
    bed.cluster.set_fault_seed(1993);
    sim::FaultSpec spec;
    spec.drop_rate = loss;
    bed.cluster.set_link_faults("internet-wan", spec);
  }

  SweepPoint point;
  point.loss = loss;
  long attempts = 0;
  long virtual_us = 0;
  CallOptions opts = sweep_options();
  for (int i = 0; i < kCallsPerPoint; ++i) {
    CallResult r = duct->call(
        {station_in(), Value::real(0.02), station_in()}, opts);
    if (r.ok()) ++point.ok;
    if (r.attempt_count() > 1) ++point.retried;
    attempts += r.attempt_count();
    virtual_us += r.virtual_us;
  }
  point.mean_attempts = double(attempts) / kCallsPerPoint;
  point.mean_virtual_us = double(virtual_us) / kCallsPerPoint;
  point.dropped = bed.cluster.fault_stats().dropped;
  bed.cluster.clear_faults();
  client->quit();
  return point;
}

struct FailoverResult {
  bool recovered = false;
  bool failed_over = false;
  int attempts = 0;
  int post_failover_attempts = 0;
};

FailoverResult run_failover() {
  Testbed bed;
  auto client = bed.schooner->make_client("sparc-ua", "fault-failover");
  rpc::StartResult started =
      client->contact_schx("sgi480-lerc", glue::kDuctPath);
  auto duct = client->import_proc("duct", glue::duct_import_spec());

  CallOptions opts = sweep_options();
  opts.failover_machine = "sgi420-lerc";
  uts::ValueList args = {station_in(), Value::real(0.02), station_in()};
  (void)duct->call(args, opts);  // warm binding against the doomed server

  bed.cluster.crash_process(started.address);

  FailoverResult out;
  CallResult r = duct->call(args, opts);
  out.recovered = r.ok();
  out.failed_over = r.failed_over;
  out.attempts = r.attempt_count();
  CallResult again = duct->call(args, opts);
  out.post_failover_attempts = again.attempt_count();
  client->quit();
  return out;
}

}  // namespace
}  // namespace npss::bench

int main() {
  using namespace npss::bench;

  const std::vector<double> losses = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  std::vector<SweepPoint> points;
  print_header("Availability and added latency vs injected wan loss "
               "(duct @ sgi480-lerc from sparc-ua, " +
               std::to_string(kCallsPerPoint) + " calls/point)");
  std::printf("%8s %12s %10s %14s %16s %18s %10s\n", "loss", "avail",
              "retried", "mean attempts", "mean virt us", "added virt us",
              "dropped");
  for (double loss : losses) {
    SweepPoint p = run_point(loss);
    double base = points.empty() ? p.mean_virtual_us
                                 : points.front().mean_virtual_us;
    std::printf("%7.0f%% %12.4f %10d %14.3f %16.1f %18.1f %10llu\n",
                loss * 100.0, double(p.ok) / kCallsPerPoint, p.retried,
                p.mean_attempts, p.mean_virtual_us, p.mean_virtual_us - base,
                static_cast<unsigned long long>(p.dropped));
    points.push_back(p);
  }

  print_header("Migration-based failover after a server crash "
               "(failover_machine = sgi420-lerc)");
  FailoverResult fo = run_failover();
  std::printf("recovered=%s failed_over=%s attempts=%d "
              "post-failover attempts=%d\n",
              fo.recovered ? "yes" : "no", fo.failed_over ? "yes" : "no",
              fo.attempts, fo.post_failover_attempts);

  std::FILE* f = std::fopen("BENCH_fault.json", "w");
  if (f) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fault\",\n");
    std::fprintf(f, "  \"link\": \"internet-wan\",\n");
    std::fprintf(f, "  \"calls_per_point\": %d,\n", kCallsPerPoint);
    std::fprintf(f,
                 "  \"options\": {\"deadline_us\": 10000000, "
                 "\"max_attempts\": 5, \"idempotent\": true, "
                 "\"host_grace_ms\": 25},\n");
    std::fprintf(f, "  \"loss_sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(f,
                   "    {\"loss\": %.2f, \"availability\": %.4f, "
                   "\"retried_calls\": %d, \"mean_attempts\": %.3f, "
                   "\"mean_virtual_us\": %.1f, \"added_virtual_us\": %.1f, "
                   "\"frames_dropped\": %llu}%s\n",
                   p.loss, double(p.ok) / kCallsPerPoint, p.retried,
                   p.mean_attempts, p.mean_virtual_us,
                   p.mean_virtual_us - points.front().mean_virtual_us,
                   static_cast<unsigned long long>(p.dropped),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"failover\": {\"recovered\": %s, \"failed_over\": %s, "
                 "\"attempts\": %d, \"post_failover_attempts\": %d}\n",
                 fo.recovered ? "true" : "false",
                 fo.failed_over ? "true" : "false", fo.attempts,
                 fo.post_failover_attempts);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_fault.json\n");
  }
  return 0;
}
