// Fault-tolerant call path under injected wan loss.
//
// Sweeps the drop rate on the internet-wan link and measures, for a
// retrying idempotent duct caller at UA against a LeRC server, the
// availability (fraction of calls that complete within the deadline) and
// the added virtual latency paid for retries — the curves the CallOptions
// defaults were tuned against. A second section crashes the server
// mid-run and records the migration-based failover. A third section kills
// the Manager *leader* with a 3-replica control plane and records the
// election + client re-bind transcript. Writes BENCH_fault.json next to
// the binary.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/testbed.hpp"
#include "rpc/calling.hpp"
#include "rpc/client.hpp"
#include "uts/value.hpp"

namespace npss::bench {
namespace {

using rpc::CallOptions;
using rpc::CallResult;
using uts::Value;

constexpr int kCallsPerPoint = 200;

CallOptions sweep_options() {
  CallOptions opts;
  opts.deadline_us = 10'000'000;  // 10 s of virtual time per call
  opts.max_attempts = 5;
  opts.idempotent = true;  // duct is pure
  opts.host_grace_ms = 25;
  return opts;
}

Value station_in() {
  return Value::real_array({102.0, 288.15, 101325.0, 20.0});
}

struct SweepPoint {
  double loss = 0.0;
  int ok = 0;
  int retried = 0;
  double mean_attempts = 0.0;
  double mean_virtual_us = 0.0;
  std::uint64_t dropped = 0;
};

SweepPoint run_point(double loss) {
  Testbed bed;
  auto client = bed.schooner->make_client("sparc-ua", "fault-sweep");
  client->contact_schx("sgi480-lerc", glue::kDuctPath);
  auto duct = client->import_proc("duct", glue::duct_import_spec());

  // Faults go live after the spawn handshake so setup cannot be dropped.
  if (loss > 0.0) {
    bed.cluster.set_fault_seed(1993);
    sim::FaultSpec spec;
    spec.drop_rate = loss;
    bed.cluster.set_link_faults("internet-wan", spec);
  }

  SweepPoint point;
  point.loss = loss;
  long attempts = 0;
  long virtual_us = 0;
  CallOptions opts = sweep_options();
  for (int i = 0; i < kCallsPerPoint; ++i) {
    CallResult r = duct->call(
        {station_in(), Value::real(0.02), station_in()}, opts);
    if (r.ok()) ++point.ok;
    if (r.attempt_count() > 1) ++point.retried;
    attempts += r.attempt_count();
    virtual_us += r.virtual_us;
  }
  point.mean_attempts = double(attempts) / kCallsPerPoint;
  point.mean_virtual_us = double(virtual_us) / kCallsPerPoint;
  point.dropped = bed.cluster.fault_stats().dropped;
  bed.cluster.clear_faults();
  client->quit();
  return point;
}

struct FailoverResult {
  bool recovered = false;
  bool failed_over = false;
  int attempts = 0;
  int post_failover_attempts = 0;
};

FailoverResult run_failover() {
  Testbed bed;
  auto client = bed.schooner->make_client("sparc-ua", "fault-failover");
  rpc::StartResult started =
      client->contact_schx("sgi480-lerc", glue::kDuctPath);
  auto duct = client->import_proc("duct", glue::duct_import_spec());

  CallOptions opts = sweep_options();
  opts.failover_machine = "sgi420-lerc";
  uts::ValueList args = {station_in(), Value::real(0.02), station_in()};
  (void)duct->call(args, opts);  // warm binding against the doomed server

  bed.cluster.crash_process(started.address);

  FailoverResult out;
  CallResult r = duct->call(args, opts);
  out.recovered = r.ok();
  out.failed_over = r.failed_over;
  out.attempts = r.attempt_count();
  CallResult again = duct->call(args, opts);
  out.post_failover_attempts = again.attempt_count();
  client->quit();
  return out;
}

/// One call in the leader-kill transcript: deterministic under one seed
/// (same seed => same election outcome => same attempt counts).
struct TranscriptEntry {
  int call = 0;
  bool ok = false;
  int attempts = 0;
};

struct MetaFailover {
  bool elected = false;
  bool digest_intact = false;
  bool rebound = false;
  int new_leader_index = -1;
  std::uint64_t elections = 0;
  double availability = 0.0;
  std::vector<TranscriptEntry> transcript;
};

/// Kill the Manager leader mid-run with a 3-replica control plane: a
/// follower must take over, clients must re-bind, and the export table
/// (spec hashes included) must survive byte-for-byte.
MetaFailover run_meta_failover() {
  sim::Cluster cluster;
  build_paper_testbed(cluster);
  glue::install_tess_procedures_everywhere(cluster);
  rpc::SystemOptions options;
  options.manager_replicas = 3;
  options.replica_machines = {"sgi420-lerc", "rs6000-lerc"};
  options.heartbeat_ms = 10;
  options.election_base_ms = 40;
  options.election_seed = 1993;
  rpc::SchoonerSystem schooner(cluster, "sparc-ua", options);

  auto client = schooner.make_client("sparc-ua", "meta-failover");
  client->contact_schx("sgi480-lerc", glue::kDuctPath);
  auto duct = client->import_proc("duct", glue::duct_import_spec());
  uts::ValueList args = {station_in(), Value::real(0.02), station_in()};
  CallOptions opts = sweep_options();
  (void)duct->call(args, opts);  // warm the binding

  // The replicated export-table fingerprint before the crash.
  auto view = [&](const std::string& address) {
    sim::EndpointPtr ep = cluster.create_endpoint("sparc-ua", "probe");
    rpc::MessageIo io(cluster, ep);
    rpc::Message who;
    who.kind = rpc::MessageKind::kMetaWhoIsLeader;
    rpc::Message ack = io.call_within(address, std::move(who), 500);
    cluster.retire_endpoint(ep->address());
    return ack;
  };
  const auto& replicas = schooner.manager_replica_addresses();
  const std::string digest_before = view(replicas[0]).b;

  cluster.crash_process(replicas[0]);

  // Availability through the election: the data plane never depends on
  // the Manager, so bound calls keep completing while followers vote.
  MetaFailover out;
  int ok = 0;
  const int kCalls = 30;
  for (int i = 0; i < kCalls; ++i) {
    CallResult r = duct->call(args, opts);
    if (r.ok()) ++ok;
    out.transcript.push_back({i, r.ok(), r.attempt_count()});
  }
  out.availability = double(ok) / kCalls;

  // Find the elected follower and compare its rebuilt export table.
  sim::EndpointPtr ep = cluster.create_endpoint("sparc-ua", "probe");
  rpc::MessageIo io(cluster, ep);
  std::string leader = rpc::discover_manager_leader(
      io, {replicas[1], replicas[2]}, /*rounds=*/200);
  cluster.retire_endpoint(ep->address());
  out.elected = !leader.empty();
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i] == leader) out.new_leader_index = static_cast<int>(i);
  }
  if (out.elected) {
    out.digest_intact = view(leader).b == digest_before;
  }

  // A cold re-bind must find the new leader (the stale/no-route re-bind
  // path extended for leader discovery).
  duct->invalidate();
  CallResult rebound = duct->call(args, opts);
  out.rebound = rebound.ok();
  out.elections = schooner.stats().leader_elections;
  client->quit();
  return out;
}

}  // namespace
}  // namespace npss::bench

int main() {
  using namespace npss::bench;

  const std::vector<double> losses = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  std::vector<SweepPoint> points;
  print_header("Availability and added latency vs injected wan loss "
               "(duct @ sgi480-lerc from sparc-ua, " +
               std::to_string(kCallsPerPoint) + " calls/point)");
  std::printf("%8s %12s %10s %14s %16s %18s %10s\n", "loss", "avail",
              "retried", "mean attempts", "mean virt us", "added virt us",
              "dropped");
  for (double loss : losses) {
    SweepPoint p = run_point(loss);
    double base = points.empty() ? p.mean_virtual_us
                                 : points.front().mean_virtual_us;
    std::printf("%7.0f%% %12.4f %10d %14.3f %16.1f %18.1f %10llu\n",
                loss * 100.0, double(p.ok) / kCallsPerPoint, p.retried,
                p.mean_attempts, p.mean_virtual_us, p.mean_virtual_us - base,
                static_cast<unsigned long long>(p.dropped));
    points.push_back(p);
  }

  print_header("Migration-based failover after a server crash "
               "(failover_machine = sgi420-lerc)");
  FailoverResult fo = run_failover();
  std::printf("recovered=%s failed_over=%s attempts=%d "
              "post-failover attempts=%d\n",
              fo.recovered ? "yes" : "no", fo.failed_over ? "yes" : "no",
              fo.attempts, fo.post_failover_attempts);

  print_header("Manager leader kill with a 3-replica control plane "
               "(seed 1993)");
  MetaFailover mf = run_meta_failover();
  std::printf("elected=%s new_leader_index=%d elections=%llu "
              "availability=%.4f digest_intact=%s rebound=%s\n",
              mf.elected ? "yes" : "no", mf.new_leader_index,
              static_cast<unsigned long long>(mf.elections),
              mf.availability, mf.digest_intact ? "yes" : "no",
              mf.rebound ? "yes" : "no");

  std::FILE* f = std::fopen("BENCH_fault.json", "w");
  if (f) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fault\",\n");
    std::fprintf(f, "  \"link\": \"internet-wan\",\n");
    std::fprintf(f, "  \"calls_per_point\": %d,\n", kCallsPerPoint);
    std::fprintf(f,
                 "  \"options\": {\"deadline_us\": 10000000, "
                 "\"max_attempts\": 5, \"idempotent\": true, "
                 "\"host_grace_ms\": 25},\n");
    std::fprintf(f, "  \"loss_sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(f,
                   "    {\"loss\": %.2f, \"availability\": %.4f, "
                   "\"retried_calls\": %d, \"mean_attempts\": %.3f, "
                   "\"mean_virtual_us\": %.1f, \"added_virtual_us\": %.1f, "
                   "\"frames_dropped\": %llu}%s\n",
                   p.loss, double(p.ok) / kCallsPerPoint, p.retried,
                   p.mean_attempts, p.mean_virtual_us,
                   p.mean_virtual_us - points.front().mean_virtual_us,
                   static_cast<unsigned long long>(p.dropped),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"failover\": {\"recovered\": %s, \"failed_over\": %s, "
                 "\"attempts\": %d, \"post_failover_attempts\": %d},\n",
                 fo.recovered ? "true" : "false",
                 fo.failed_over ? "true" : "false", fo.attempts,
                 fo.post_failover_attempts);
    std::fprintf(f, "  \"meta_failover\": {\n");
    std::fprintf(f,
                 "    \"replicas\": 3, \"seed\": 1993, \"elected\": %s, "
                 "\"new_leader_index\": %d, \"elections\": %llu,\n",
                 mf.elected ? "true" : "false", mf.new_leader_index,
                 static_cast<unsigned long long>(mf.elections));
    std::fprintf(f,
                 "    \"availability_during_election\": %.4f, "
                 "\"export_digest_intact\": %s, \"rebound_ok\": %s,\n",
                 mf.availability, mf.digest_intact ? "true" : "false",
                 mf.rebound ? "true" : "false");
    std::fprintf(f, "    \"transcript\": [\n");
    for (std::size_t i = 0; i < mf.transcript.size(); ++i) {
      const TranscriptEntry& t = mf.transcript[i];
      std::fprintf(f, "      {\"call\": %d, \"ok\": %s, \"attempts\": %d}%s\n",
                   t.call, t.ok ? "true" : "false", t.attempts,
                   i + 1 < mf.transcript.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_fault.json\n");
  }
  return 0;
}
