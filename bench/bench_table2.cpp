// Table 2 reproduction — "TESS and Schooner combined test".
//
// The exact Table 2 configuration: TESS executes on a Sun Sparc 10 at The
// University of Arizona with six module instances computed remotely:
//
//   combustor x1 -> SGI 4D/340   U. of Arizona   (local Ethernet)
//   duct      x2 -> Cray YMP     Lewis Research Center (Internet)
//   nozzle    x1 -> SGI 4D/420   Lewis Research Center (Internet)
//   shaft     x2 -> IBM RS6000   Lewis Research Center (Internet)
//
// TESS runs a Newton-Raphson steady-state balance then a one second
// transient with the Improved Euler method (§3.4), and the results are
// compared with the local-compute-only versions of the four modules.
#include <cmath>

#include "bench/testbed.hpp"
#include "tess/engine.hpp"

namespace npss {
namespace {

using glue::AdaptedComponent;
using glue::Placement;
using glue::RemoteBackend;

int run() {
  bench::Testbed testbed;
  tess::FlightCondition sls;

  bench::print_header(
      "Table 2 — TESS and Schooner combined test\n"
      "TESS simulation executed on Sun Sparc 10 at U. of Arizona");
  std::printf("%-12s %-12s %-14s %-22s\n", "module", "# instances",
              "remote machine", "site");
  bench::print_rule();
  std::printf("%-12s %-12d %-14s %-22s\n", "combustor", 1, "sgi340-ua",
              "U. of Arizona");
  std::printf("%-12s %-12d %-14s %-22s\n", "duct", 2, "cray-lerc",
              "Lewis Research Center");
  std::printf("%-12s %-12d %-14s %-22s\n", "nozzle", 1, "sgi420-lerc",
              "Lewis Research Center");
  std::printf("%-12s %-12d %-14s %-22s\n", "shaft", 2, "rs6000-lerc",
              "Lewis Research Center");

  RemoteBackend backend(*testbed.schooner, "sparc-ua");
  backend.place(AdaptedComponent::kCombustor, 0, {"sgi340-ua", ""});
  backend.place(AdaptedComponent::kDuct, 0, {"cray-lerc", ""});
  backend.place(AdaptedComponent::kDuct, 1, {"cray-lerc", ""});
  backend.place(AdaptedComponent::kNozzle, 0, {"sgi420-lerc", ""});
  backend.place(AdaptedComponent::kShaft, 0, {"rs6000-lerc", ""});
  backend.place(AdaptedComponent::kShaft, 1, {"rs6000-lerc", ""});

  tess::F100Engine engine;
  engine.set_hooks(backend.hooks());
  engine.set_solver_tolerances(5e-6, 1e-4);

  util::Stopwatch wall;
  tess::SteadyResult steady = engine.balance(1.0, sls);
  tess::FuelSchedule throttle = [](double t) {
    return t < 0.1 ? 1.0 : 1.27;
  };
  tess::TransientResult tr = engine.transient(
      steady.performance.speeds, throttle, sls, 1.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);
  const double wall_ms = wall.elapsed_ms();

  // Local-compute-only reference (the original versions of the modules).
  tess::F100Engine local;
  tess::SteadyResult lsteady = local.balance(1.0, sls);
  tess::TransientResult ltr = local.transient(
      lsteady.performance.speeds, throttle, sls, 1.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);

  const auto& e = tr.history.back().performance;
  const auto& le = ltr.history.back().performance;

  std::printf("\nsteady state (Newton-Raphson):          remote        local"
              "        rel.dev\n");
  auto row = [](const char* label, double remote, double local) {
    std::printf("  %-34s %12.2f %12.2f %12.2e\n", label, remote, local,
                std::abs(remote / local - 1.0));
  };
  row("N1 (LP spool) [rpm]", steady.performance.speeds[0],
      lsteady.performance.speeds[0]);
  row("N2 (HP spool) [rpm]", steady.performance.speeds[1],
      lsteady.performance.speeds[1]);
  row("T4 [K]", steady.performance.t4, lsteady.performance.t4);
  row("net thrust [N]", steady.performance.thrust,
      lsteady.performance.thrust);

  std::printf("\nafter 1 s transient (Improved Euler):\n");
  row("N1 (LP spool) [rpm]", e.speeds[0], le.speeds[0]);
  row("N2 (HP spool) [rpm]", e.speeds[1], le.speeds[1]);
  row("T4 [K]", e.t4, le.t4);
  row("net thrust [N]", e.thrust, le.thrust);

  std::printf("\nremote calls per module instance:\n");
  for (const auto& [label, count] : backend.call_counts()) {
    std::printf("  %-20s %6d calls\n", label.c_str(), count);
  }
  std::printf("\nsimulated network time: %.1f ms  (host wall time %.1f ms)\n",
              util::sim_to_ms(backend.elapsed_virtual_us()), wall_ms);
  auto traffic = testbed.cluster.traffic_by_link();
  std::printf("traffic: ");
  for (const auto& [link, t] : traffic) {
    std::printf(" %s: %llu msgs / %llu bytes; ", link.c_str(),
                static_cast<unsigned long long>(t.messages),
                static_cast<unsigned long long>(t.bytes));
  }
  std::printf(
      "\n\nShape check: all six remote instances exercised; remote and\n"
      "local runs agree to the single-float wire precision, as the paper's\n"
      "verification required.\n");
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
