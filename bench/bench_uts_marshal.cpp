// A1/A2 ablations — UTS marshaling micro-benchmarks (google-benchmark).
//
// A1 (§4.1 Cray port): conversion cost through each architecture's native
// float format, and the out-of-range detection path.
// A2 (§4.1 float/double): single- vs double-precision parameter arrays —
// double costs ~2x the wire bytes of float, the tradeoff that motivated
// adding `float` to UTS when Fortran joined.
// A3 (compiled plans): the MarshalPlan fast path vs the interpreted codec
// on the same signature, for a same-representation architecture (bulk bit
// moves) and a conversion architecture (per-element quantize). A custom
// main() runs the google-benchmark suite, then a manual harness that
// writes machine-readable BENCH_marshal.json (ns/op, bytes/s, speedups).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

#include "uts/canonical.hpp"
#include "uts/marshal_plan.hpp"
#include "uts/spec.hpp"

namespace {

using namespace npss;

const uts::Signature& array_signature(bool use_double) {
  static const uts::Signature f = {
      {"data", uts::ParamMode::kVal,
       uts::Type::array(64, uts::Type::floating())}};
  static const uts::Signature d = {
      {"data", uts::ParamMode::kVal,
       uts::Type::array(64, uts::Type::real_double())}};
  return use_double ? d : f;
}

uts::ValueList array_values() {
  std::vector<double> data(64);
  for (int i = 0; i < 64; ++i) data[i] = 101325.0 * (1.0 + 0.01 * i);
  return {uts::Value::real_array(data)};
}

void BM_MarshalFloatArray(benchmark::State& state) {
  const auto& arch = arch::arch_catalog("sun-sparc10");
  const uts::Signature& sig = array_signature(false);
  uts::ValueList vals = array_values();
  std::size_t bytes = 0;
  for (auto _ : state) {
    util::Bytes out =
        uts::marshal(arch, sig, vals, uts::Direction::kRequest);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarshalFloatArray);

void BM_MarshalDoubleArray(benchmark::State& state) {
  const auto& arch = arch::arch_catalog("sun-sparc10");
  const uts::Signature& sig = array_signature(true);
  uts::ValueList vals = array_values();
  std::size_t bytes = 0;
  for (auto _ : state) {
    util::Bytes out =
        uts::marshal(arch, sig, vals, uts::Direction::kRequest);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarshalDoubleArray);

void marshal_roundtrip_for_arch(benchmark::State& state,
                                const char* arch_name) {
  const auto& arch = arch::arch_catalog(arch_name);
  const uts::Signature& sig = array_signature(true);
  uts::ValueList vals = array_values();
  for (auto _ : state) {
    util::Bytes wire =
        uts::marshal(arch, sig, vals, uts::Direction::kRequest);
    uts::ValueList back =
        uts::unmarshal(arch, sig, wire, uts::Direction::kRequest);
    benchmark::DoNotOptimize(back);
  }
}

void BM_RoundTrip_Sparc(benchmark::State& state) {
  marshal_roundtrip_for_arch(state, "sun-sparc10");
}
void BM_RoundTrip_CrayYmp(benchmark::State& state) {
  marshal_roundtrip_for_arch(state, "cray-ymp");
}
void BM_RoundTrip_Ibm370Hex(benchmark::State& state) {
  marshal_roundtrip_for_arch(state, "ibm-370");
}
void BM_RoundTrip_I860LittleEndian(benchmark::State& state) {
  marshal_roundtrip_for_arch(state, "intel-i860");
}
BENCHMARK(BM_RoundTrip_Sparc);
BENCHMARK(BM_RoundTrip_CrayYmp);
BENCHMARK(BM_RoundTrip_Ibm370Hex);
BENCHMARK(BM_RoundTrip_I860LittleEndian);

void BM_CrayOutOfRangeDetection(benchmark::State& state) {
  // The §4.1 error path: decoding a Cray word whose magnitude exceeds
  // binary64 raises RangeError rather than returning infinity.
  util::Bytes word = arch::cray_out_of_range_word();
  long errors = 0;
  for (auto _ : state) {
    try {
      double v = arch::float_decode(arch::FloatFormatKind::kCray64, word);
      benchmark::DoNotOptimize(v);
    } catch (const util::RangeError&) {
      ++errors;
    }
  }
  state.counters["errors"] =
      static_cast<double>(errors) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CrayOutOfRangeDetection);

void plan_marshal_for_arch(benchmark::State& state, const char* arch_name) {
  const auto& arch = arch::arch_catalog(arch_name);
  const uts::Signature& sig = array_signature(true);
  const uts::MarshalPlan plan(sig, uts::Direction::kRequest);
  uts::ValueList vals = array_values();
  for (auto _ : state) {
    util::Bytes out = plan.marshal(arch, vals);
    benchmark::DoNotOptimize(out);
  }
}

void BM_PlanMarshal_Sparc(benchmark::State& state) {
  plan_marshal_for_arch(state, "sun-sparc10");  // same-representation
}
void BM_PlanMarshal_CrayYmp(benchmark::State& state) {
  plan_marshal_for_arch(state, "cray-ymp");  // quantize fallback
}
BENCHMARK(BM_PlanMarshal_Sparc);
BENCHMARK(BM_PlanMarshal_CrayYmp);

void plan_roundtrip_for_arch(benchmark::State& state, const char* arch_name) {
  const auto& arch = arch::arch_catalog(arch_name);
  const uts::Signature& sig = array_signature(true);
  const uts::MarshalPlan plan(sig, uts::Direction::kRequest);
  uts::ValueList vals = array_values();
  for (auto _ : state) {
    util::Bytes wire = plan.marshal(arch, vals);
    uts::ValueList back = plan.unmarshal(arch, wire);
    benchmark::DoNotOptimize(back);
  }
}

void BM_PlanRoundTrip_Sparc(benchmark::State& state) {
  plan_roundtrip_for_arch(state, "sun-sparc10");
}
void BM_PlanRoundTrip_CrayYmp(benchmark::State& state) {
  plan_roundtrip_for_arch(state, "cray-ymp");
}
BENCHMARK(BM_PlanRoundTrip_Sparc);
BENCHMARK(BM_PlanRoundTrip_CrayYmp);

void BM_SpecParseShaft(benchmark::State& state) {
  const char* text = R"(
    export shaft prog(
        "ecom" val array[4] of float,
        "incom" val integer,
        "etur" val array[4] of float,
        "intur" val integer,
        "ecorr" val float,
        "xspool" val float,
        "xmyi" val float,
        "dxspl" res float)
  )";
  for (auto _ : state) {
    uts::SpecFile file = uts::parse_spec(text);
    benchmark::DoNotOptimize(file);
  }
}
BENCHMARK(BM_SpecParseShaft);

// --- BENCH_marshal.json ----------------------------------------------------

/// Wall-clock ns/op of `fn`, self-calibrating the iteration count.
double measure_ns_per_op(const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  for (int i = 0; i < 100; ++i) fn();  // warm up
  long iters = 100;
  for (;;) {
    const auto t0 = clock::now();
    for (long i = 0; i < iters; ++i) fn();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    if (ns >= 2e7) return ns / static_cast<double>(iters);
    iters *= 4;
  }
}

struct Case {
  const char* name;
  double ns_per_op;
  double bytes_per_s;
};

void write_marshal_json() {
  const uts::Signature& sig = array_signature(true);
  const uts::MarshalPlan plan(sig, uts::Direction::kRequest);
  uts::ValueList vals = array_values();
  const double wire_bytes = 64.0 * 8.0;

  std::vector<Case> cases;
  auto add = [&](const char* name, const std::function<void()>& fn) {
    double ns = measure_ns_per_op(fn);
    cases.push_back({name, ns, wire_bytes / (ns * 1e-9)});
    return ns;
  };

  const auto& sparc = arch::arch_catalog("sun-sparc10");
  const auto& cray = arch::arch_catalog("cray-ymp");
  double interp_sparc = add("marshal_interpreted_sparc", [&] {
    benchmark::DoNotOptimize(
        uts::marshal(sparc, sig, vals, uts::Direction::kRequest));
  });
  double plan_sparc = add("marshal_plan_sparc", [&] {
    benchmark::DoNotOptimize(plan.marshal(sparc, vals));
  });
  double interp_cray = add("marshal_interpreted_cray", [&] {
    benchmark::DoNotOptimize(
        uts::marshal(cray, sig, vals, uts::Direction::kRequest));
  });
  double plan_cray = add("marshal_plan_cray", [&] {
    benchmark::DoNotOptimize(plan.marshal(cray, vals));
  });

  util::Bytes wire = plan.marshal(sparc, vals);
  double interp_un_sparc = add("unmarshal_interpreted_sparc", [&] {
    benchmark::DoNotOptimize(
        uts::unmarshal(sparc, sig, wire, uts::Direction::kRequest));
  });
  double plan_un_sparc = add("unmarshal_plan_sparc", [&] {
    benchmark::DoNotOptimize(plan.unmarshal(sparc, wire));
  });

  const double speedup_fast = interp_sparc / plan_sparc;
  const double speedup_fast_un = interp_un_sparc / plan_un_sparc;
  const double speedup_fallback = interp_cray / plan_cray;

  std::FILE* f = std::fopen("BENCH_marshal.json", "w");
  if (!f) return;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"uts_marshal\",\n");
  std::fprintf(f, "  \"signature\": \"array[64] of double\",\n");
  std::fprintf(f, "  \"wire_bytes\": %.0f,\n", wire_bytes);
  std::fprintf(f, "  \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"bytes_per_s\": %.0f}%s\n",
                 cases[i].name, cases[i].ns_per_op, cases[i].bytes_per_s,
                 i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_same_representation_marshal\": %.2f,\n",
               speedup_fast);
  std::fprintf(f, "  \"speedup_same_representation_unmarshal\": %.2f,\n",
               speedup_fast_un);
  std::fprintf(f, "  \"speedup_fallback_marshal\": %.2f\n", speedup_fallback);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "\nBENCH_marshal.json written: plan vs interpreted speedup "
      "%.2fx marshal / %.2fx unmarshal (same-representation), "
      "%.2fx (cray fallback)\n",
      speedup_fast, speedup_fast_un, speedup_fallback);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_marshal_json();
  return 0;
}
