// A1/A2 ablations — UTS marshaling micro-benchmarks (google-benchmark).
//
// A1 (§4.1 Cray port): conversion cost through each architecture's native
// float format, and the out-of-range detection path.
// A2 (§4.1 float/double): single- vs double-precision parameter arrays —
// double costs ~2x the wire bytes of float, the tradeoff that motivated
// adding `float` to UTS when Fortran joined.
#include <benchmark/benchmark.h>

#include "uts/canonical.hpp"
#include "uts/spec.hpp"

namespace {

using namespace npss;

const uts::Signature& array_signature(bool use_double) {
  static const uts::Signature f = {
      {"data", uts::ParamMode::kVal,
       uts::Type::array(64, uts::Type::floating())}};
  static const uts::Signature d = {
      {"data", uts::ParamMode::kVal,
       uts::Type::array(64, uts::Type::real_double())}};
  return use_double ? d : f;
}

uts::ValueList array_values() {
  std::vector<double> data(64);
  for (int i = 0; i < 64; ++i) data[i] = 101325.0 * (1.0 + 0.01 * i);
  return {uts::Value::real_array(data)};
}

void BM_MarshalFloatArray(benchmark::State& state) {
  const auto& arch = arch::arch_catalog("sun-sparc10");
  const uts::Signature& sig = array_signature(false);
  uts::ValueList vals = array_values();
  std::size_t bytes = 0;
  for (auto _ : state) {
    util::Bytes out =
        uts::marshal(arch, sig, vals, uts::Direction::kRequest);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarshalFloatArray);

void BM_MarshalDoubleArray(benchmark::State& state) {
  const auto& arch = arch::arch_catalog("sun-sparc10");
  const uts::Signature& sig = array_signature(true);
  uts::ValueList vals = array_values();
  std::size_t bytes = 0;
  for (auto _ : state) {
    util::Bytes out =
        uts::marshal(arch, sig, vals, uts::Direction::kRequest);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarshalDoubleArray);

void marshal_roundtrip_for_arch(benchmark::State& state,
                                const char* arch_name) {
  const auto& arch = arch::arch_catalog(arch_name);
  const uts::Signature& sig = array_signature(true);
  uts::ValueList vals = array_values();
  for (auto _ : state) {
    util::Bytes wire =
        uts::marshal(arch, sig, vals, uts::Direction::kRequest);
    uts::ValueList back =
        uts::unmarshal(arch, sig, wire, uts::Direction::kRequest);
    benchmark::DoNotOptimize(back);
  }
}

void BM_RoundTrip_Sparc(benchmark::State& state) {
  marshal_roundtrip_for_arch(state, "sun-sparc10");
}
void BM_RoundTrip_CrayYmp(benchmark::State& state) {
  marshal_roundtrip_for_arch(state, "cray-ymp");
}
void BM_RoundTrip_Ibm370Hex(benchmark::State& state) {
  marshal_roundtrip_for_arch(state, "ibm-370");
}
void BM_RoundTrip_I860LittleEndian(benchmark::State& state) {
  marshal_roundtrip_for_arch(state, "intel-i860");
}
BENCHMARK(BM_RoundTrip_Sparc);
BENCHMARK(BM_RoundTrip_CrayYmp);
BENCHMARK(BM_RoundTrip_Ibm370Hex);
BENCHMARK(BM_RoundTrip_I860LittleEndian);

void BM_CrayOutOfRangeDetection(benchmark::State& state) {
  // The §4.1 error path: decoding a Cray word whose magnitude exceeds
  // binary64 raises RangeError rather than returning infinity.
  util::Bytes word = arch::cray_out_of_range_word();
  long errors = 0;
  for (auto _ : state) {
    try {
      double v = arch::float_decode(arch::FloatFormatKind::kCray64, word);
      benchmark::DoNotOptimize(v);
    } catch (const util::RangeError&) {
      ++errors;
    }
  }
  state.counters["errors"] =
      static_cast<double>(errors) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CrayOutOfRangeDetection);

void BM_SpecParseShaft(benchmark::State& state) {
  const char* text = R"(
    export shaft prog(
        "ecom" val array[4] of float,
        "incom" val integer,
        "etur" val array[4] of float,
        "intur" val integer,
        "ecorr" val float,
        "xspool" val float,
        "xmyi" val float,
        "dxspl" res float)
  )";
  for (auto _ : state) {
    uts::SpecFile file = uts::parse_spec(text);
    benchmark::DoNotOptimize(file);
  }
}
BENCHMARK(BM_SpecParseShaft);

}  // namespace

BENCHMARK_MAIN();
