// meta_check explorer throughput.
//
// Times bounded explorations of the replicated control plane at the CI
// gate's bounds and one size up, and measures what the two reductions
// buy: the visited-set hit rate (fraction of expansions cut because the
// state was already explored at least as deep under a subset sleep set)
// and the sleep-set reduction factor (states with reduction off /
// states with it on, same bounds). The visited set only honors a cache
// entry that *dominates* the revisit — soundness requires re-exploring
// under incomparable sleep sets — so the factor can dip below 1x at
// shallow bounds and grows with depth. A last section times how fast
// the legacy negative corpus is found and minimized. Writes
// BENCH_mc.json next to the binary.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "mc/explore.hpp"
#include "mc/model.hpp"

namespace npss::bench {
namespace {

struct Row {
  std::string name;
  mc::ExploreStats stats;
  double millis = 0.0;
  bool violation = false;
};

Row run(const std::string& name, const mc::Options& opts,
        const mc::ExploreOptions& x) {
  const auto start = std::chrono::steady_clock::now();
  const mc::ExploreResult result = mc::explore(opts, x);
  const auto end = std::chrono::steady_clock::now();
  Row row;
  row.name = name;
  row.stats = result.stats;
  row.millis =
      std::chrono::duration<double, std::milli>(end - start).count();
  row.violation = result.violation.has_value();
  return row;
}

double states_per_sec(const Row& row) {
  return row.millis > 0.0
             ? static_cast<double>(row.stats.states_explored) * 1000.0 /
                   row.millis
             : 0.0;
}

double hit_rate(const Row& row) {
  const double expansions = static_cast<double>(row.stats.states_explored +
                                                row.stats.visited_hits);
  return expansions > 0.0
             ? static_cast<double>(row.stats.visited_hits) / expansions
             : 0.0;
}

int bench_main() {
  mc::Options gate;  // the CI model-check lane's bounds
  gate.max_ops = 1;
  gate.max_crashes = 1;
  gate.max_drops = 1;
  mc::ExploreOptions gate_x;
  gate_x.depth = 7;
  gate_x.max_states = 0;  // unbounded: the bench measures the full frontier

  mc::Options deep = gate;
  mc::ExploreOptions deep_x = gate_x;
  deep_x.depth = 8;

  mc::ExploreOptions unreduced = gate_x;
  unreduced.reduce = false;

  std::printf("meta_check explorer throughput (3 replicas, quorum)\n\n");
  std::vector<Row> rows;
  rows.push_back(run("gate_depth7", gate, gate_x));
  rows.push_back(run("gate_depth7_no_reduce", gate, unreduced));
  rows.push_back(run("deep_depth8", deep, deep_x));

  for (const Row& row : rows) {
    std::printf(
        "%-22s states=%-8llu hits=%-8llu pruned=%-8llu %8.1f ms "
        "%10.0f states/s  hit_rate=%.3f\n",
        row.name.c_str(),
        static_cast<unsigned long long>(row.stats.states_explored),
        static_cast<unsigned long long>(row.stats.visited_hits),
        static_cast<unsigned long long>(row.stats.sleep_pruned), row.millis,
        states_per_sec(row), hit_rate(row));
    if (row.violation) {
      std::printf("  UNEXPECTED: quorum protocol produced a violation\n");
    }
  }
  const double reduction_factor =
      rows[0].stats.states_explored > 0
          ? static_cast<double>(rows[1].stats.states_explored) /
                static_cast<double>(rows[0].stats.states_explored)
          : 0.0;
  std::printf("\nsleep-set reduction factor at the gate bounds: %.2fx\n",
              reduction_factor);

  // The negative corpus: how fast the legacy acked-write-loss is found.
  mc::Options legacy = gate;
  legacy.quorum_commit = false;
  legacy.max_crashes = 0;
  legacy.max_drops = 0;
  mc::ExploreOptions legacy_x;
  legacy_x.depth = 6;
  const auto start = std::chrono::steady_clock::now();
  const mc::ExploreResult found = mc::explore(legacy, legacy_x);
  const double legacy_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  std::printf("legacy MC003 found+minimized in %.1f ms, schedule '%s'\n",
              legacy_ms,
              found.violation ? mc::encode_schedule(found.schedule).c_str()
                              : "NOT FOUND (bench is broken)");

  std::FILE* f = std::fopen("BENCH_mc.json", "w");
  if (f) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"mc\",\n");
    std::fprintf(f, "  \"replicas\": 3,\n");
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"states_explored\": %llu, "
          "\"visited_hits\": %llu, \"sleep_pruned\": %llu, "
          "\"transitions\": %llu, \"millis\": %.1f, "
          "\"states_per_sec\": %.0f, \"visited_hit_rate\": %.4f, "
          "\"violation\": %s}%s\n",
          row.name.c_str(),
          static_cast<unsigned long long>(row.stats.states_explored),
          static_cast<unsigned long long>(row.stats.visited_hits),
          static_cast<unsigned long long>(row.stats.sleep_pruned),
          static_cast<unsigned long long>(row.stats.transitions), row.millis,
          states_per_sec(row), hit_rate(row),
          row.violation ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"sleep_set_reduction_factor\": %.3f,\n",
                 reduction_factor);
    std::fprintf(f,
                 "  \"legacy_negative\": {\"found\": %s, \"code\": \"%s\", "
                 "\"schedule\": \"%s\", \"millis\": %.1f}\n",
                 found.violation ? "true" : "false",
                 found.violation ? found.violation->code.c_str() : "",
                 found.violation ? mc::encode_schedule(found.schedule).c_str()
                                 : "",
                 legacy_ms);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_mc.json\n");
  }
  return found.violation && !rows[0].violation && !rows[2].violation ? 0 : 1;
}

}  // namespace
}  // namespace npss::bench

int main() { return npss::bench::bench_main(); }
