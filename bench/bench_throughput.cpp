// A6 — RPC throughput on the multiplexed bus.
//
// The paper's Tables 1/2 time one call at a time; this bench measures how
// many calls per second one client core pushes through the transport, and
// what pipelining buys: the bus carries many sequence-tagged in-flight
// calls on one persistent connection, so a window of pipelined calls
// amortizes syscalls and wire round trips that a lock-step caller pays
// per call. Rows cover a small scalar signature and an array-heavy one,
// over real loopback TCP (lock-step vs pipelined window) and over the
// simulated transport (lock-step vs overlapped clients). Writes
// BENCH_throughput.json next to the binary.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/testbed.hpp"
#include "rpc/tcp_transport.hpp"
#include "util/clock.hpp"

namespace npss {
namespace {

using uts::Value;

constexpr std::size_t kWindow = 256;  ///< pipelined in-flight call budget

const char* kSmallSpec =
    "export inc prog(\"x\" val integer, \"y\" res integer)";
const char* kSmallImport =
    "import inc prog(\"x\" val integer, \"y\" res integer)";
const char* kArraySpec =
    "export sum prog(\"a\" val array[512] of double, \"s\" res double)";
const char* kArrayImport =
    "import sum prog(\"a\" val array[512] of double, \"s\" res double)";

std::vector<rpc::ProcedureDef> tcp_procs() {
  return {{"inc",
           [](rpc::ProcCall& c) {
             c.set("y", Value::integer(c.integer("x") + 1));
           }},
          {"sum", [](rpc::ProcCall& c) {
             const std::vector<double> a = c.reals("a");
             double s = 0.0;
             for (double v : a) s += v;
             c.set_real("s", s);
           }}};
}

struct Row {
  std::string signature;  ///< "small" | "array512"
  std::string transport;  ///< "tcp" | "sim"
  std::string mode;       ///< "lockstep" | "pipelined" | "overlapped"
  long calls = 0;
  double calls_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Row make_row(const std::string& signature, const std::string& transport,
             const std::string& mode, std::vector<double>& latencies,
             double wall_ms) {
  std::sort(latencies.begin(), latencies.end());
  Row row;
  row.signature = signature;
  row.transport = transport;
  row.mode = mode;
  row.calls = static_cast<long>(latencies.size());
  row.calls_per_sec = row.calls / (wall_ms / 1000.0);
  row.p50_us = latencies.empty() ? 0.0 : latencies[latencies.size() / 2];
  row.p99_us = latencies.empty() ? 0.0 : latencies[latencies.size() * 99 / 100];
  return row;
}

void print_row(const Row& row) {
  std::printf("%10s %6s %11s %10ld %14.0f %10.1f %10.1f\n",
              row.signature.c_str(), row.transport.c_str(), row.mode.c_str(),
              row.calls, row.calls_per_sec, row.p50_us, row.p99_us);
}

uts::ValueList small_args(long i) {
  return {Value::integer(i), Value::integer(0)};
}

uts::ValueList array_args() {
  std::vector<double> a(512);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<double>(i);
  return {Value::real_array(a), Value::real(0)};
}

/// One legacy (lock-step) call per turn: issue, wait, repeat.
Row tcp_lockstep(rpc::TcpRemoteProc& proc, const std::string& signature,
                 long calls, bool small) {
  using clock_type = std::chrono::steady_clock;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(calls));
  const uts::ValueList array = array_args();
  rpc::CallOptions once = rpc::CallOptions::legacy();
  once.max_attempts = 1;  // the historical single-attempt contract
  util::Stopwatch wall;
  for (long i = 0; i < calls; ++i) {
    const auto t0 = clock_type::now();
    proc.call(small ? small_args(i) : array, once).values_or_raise();
    latencies.push_back(
        std::chrono::duration<double, std::micro>(clock_type::now() - t0)
            .count());
  }
  return make_row(signature, "tcp", "lockstep", latencies, wall.elapsed_ms());
}

/// Sliding window of kWindow pipelined calls: the oldest call is reaped
/// as each new one is issued, so the connection always carries a full
/// window of in-flight seqs.
Row tcp_pipelined(rpc::TcpRemoteProc& proc, const std::string& signature,
                  long calls, bool small) {
  using clock_type = std::chrono::steady_clock;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(calls));
  const uts::ValueList array = array_args();
  std::deque<std::pair<rpc::PendingTcpCall, clock_type::time_point>> window;
  auto reap = [&](std::pair<rpc::PendingTcpCall, clock_type::time_point>& w) {
    rpc::CallResult& result = w.first.get();
    if (!result.ok()) {
      std::fprintf(stderr, "pipelined call failed: %s\n",
                   result.status.to_string().c_str());
      std::exit(1);
    }
    latencies.push_back(
        std::chrono::duration<double, std::micro>(clock_type::now() - w.second)
            .count());
  };
  util::Stopwatch wall;
  for (long i = 0; i < calls; ++i) {
    if (window.size() >= kWindow) {
      reap(window.front());
      window.pop_front();
    }
    window.emplace_back(proc.call_async(small ? small_args(i) : array),
                        clock_type::now());
  }
  while (!window.empty()) {
    reap(window.front());
    window.pop_front();
  }
  return make_row(signature, "tcp", "pipelined", latencies, wall.elapsed_ms());
}

int run() {
  bench::print_header(
      "A6 — RPC throughput: multiplexed bus, pipelined vs lock-step");
  std::printf("%10s %6s %11s %10s %14s %10s %10s\n", "signature", "wire",
              "mode", "calls", "calls/sec", "p50 us", "p99 us");
  bench::print_rule();

  std::vector<Row> rows;

  // --- Real loopback TCP over the bus --------------------------------------
  {
    rpc::TcpProcedureHost host(std::string(kSmallSpec) + "\n" + kArraySpec,
                               tcp_procs(), "sun-sparc10");
    rpc::TcpRemoteProc inc("127.0.0.1", host.port(), "inc", kSmallImport,
                           "sun-sparc10");
    rpc::TcpRemoteProc sum("127.0.0.1", host.port(), "sum", kArrayImport,
                           "sun-sparc10");
    // Warm both signature caches (host Prepared entries, client plans).
    rpc::CallOptions once = rpc::CallOptions::legacy();
    once.max_attempts = 1;
    inc.call(small_args(0), once).values_or_raise();
    sum.call(array_args(), once).values_or_raise();

    rows.push_back(tcp_lockstep(inc, "small", 10'000, true));
    print_row(rows.back());
    rows.push_back(tcp_pipelined(inc, "small", 100'000, true));
    print_row(rows.back());
    rows.push_back(tcp_lockstep(sum, "array512", 2'000, false));
    print_row(rows.back());
    rows.push_back(tcp_pipelined(sum, "array512", 20'000, false));
    print_row(rows.back());
  }

  // --- Simulated transport (virtual cluster) -------------------------------
  // The sim endpoint serves one call per turn, so "overlapped" means
  // independent clients (own lines) in flight together — the flow
  // executive's concurrency model — rather than seq pipelining.
  {
    sim::Cluster cluster;
    cluster.add_machine("avs", "sun-sparc10", "a");
    cluster.add_machine("m0", "ibm-rs6000", "a");
    cluster.install_image(
        "m0", "/bin/inc",
        rpc::make_procedure_image(kSmallSpec, {{"inc", [](rpc::ProcCall& c) {
                                    c.set("y",
                                          Value::integer(c.integer("x") + 1));
                                  }}}));
    rpc::SchoonerSystem schooner(cluster, "avs");

    {
      using clock_type = std::chrono::steady_clock;
      auto client = schooner.make_client("avs", "bench-lockstep");
      client->contact_schx("m0", "/bin/inc");
      auto inc = client->import_proc("inc", kSmallImport);
      std::vector<double> latencies;
      const long kSimCalls = 2'000;
      latencies.reserve(kSimCalls);
      const rpc::CallOptions legacy = rpc::CallOptions::legacy();
      util::Stopwatch wall;
      for (long i = 0; i < kSimCalls; ++i) {
        const auto t0 = clock_type::now();
        inc->call(small_args(i), legacy).values_or_raise();
        latencies.push_back(std::chrono::duration<double, std::micro>(
                                clock_type::now() - t0)
                                .count());
      }
      client->quit();
      rows.push_back(
          make_row("small", "sim", "lockstep", latencies, wall.elapsed_ms()));
      print_row(rows.back());
    }
    {
      using clock_type = std::chrono::steady_clock;
      const int kClients = 4;
      const long kPerClient = 500;
      std::vector<double> latencies;
      std::mutex mu;
      util::Stopwatch wall;
      std::vector<std::thread> threads;
      for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
          auto client =
              schooner.make_client("avs", "bench-ol" + std::to_string(t));
          client->contact_schx("m0", "/bin/inc");
          auto inc = client->import_proc("inc", kSmallImport);
          std::vector<double> mine;
          mine.reserve(kPerClient);
          const rpc::CallOptions legacy = rpc::CallOptions::legacy();
          for (long i = 0; i < kPerClient; ++i) {
            const auto t0 = clock_type::now();
            inc->call(small_args(i), legacy).values_or_raise();
            mine.push_back(std::chrono::duration<double, std::micro>(
                               clock_type::now() - t0)
                               .count());
          }
          client->quit();
          std::lock_guard<std::mutex> lock(mu);
          latencies.insert(latencies.end(), mine.begin(), mine.end());
        });
      }
      for (auto& t : threads) t.join();
      rows.push_back(
          make_row("small", "sim", "overlapped", latencies, wall.elapsed_ms()));
      print_row(rows.back());
    }
  }

  double lockstep_small = 0.0, pipelined_small = 0.0;
  for (const Row& row : rows) {
    if (row.transport == "tcp" && row.signature == "small") {
      if (row.mode == "lockstep") lockstep_small = row.calls_per_sec;
      if (row.mode == "pipelined") pipelined_small = row.calls_per_sec;
    }
  }
  const double ratio =
      lockstep_small > 0.0 ? pipelined_small / lockstep_small : 0.0;
  const bool target_met = pipelined_small >= 100'000.0 && ratio >= 5.0;
  std::printf(
      "\npipelined/lockstep (small over TCP): %.1fx; pipelined %.0f "
      "calls/sec — target (>=100k/s and >=5x) %s\n",
      ratio, pipelined_small, target_met ? "MET" : "NOT met");

  std::FILE* f = std::fopen("BENCH_throughput.json", "w");
  if (f) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"throughput\",\n");
    std::fprintf(f, "  \"window\": %zu,\n", kWindow);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(f,
                   "    {\"signature\": \"%s\", \"transport\": \"%s\", "
                   "\"mode\": \"%s\", \"calls\": %ld, "
                   "\"calls_per_sec\": %.0f, \"p50_us\": %.1f, "
                   "\"p99_us\": %.1f}%s\n",
                   row.signature.c_str(), row.transport.c_str(),
                   row.mode.c_str(), row.calls, row.calls_per_sec, row.p50_us,
                   row.p99_us, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"pipelined_over_lockstep_small\": %.2f,\n", ratio);
    std::fprintf(f, "  \"pipelined_small_calls_per_sec\": %.0f,\n",
                 pipelined_small);
    std::fprintf(f, "  \"target_met\": %s\n", target_met ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_throughput.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
