// A11 — observability tax on the RPC hot path.
//
// The same null-ish RPC (one integer in, one out) over real loopback TCP,
// timed with the instrumentation kill switch off and on. The shape that
// must hold: metrics + spans cost under 5% of a round trip, i.e. the run
// report is cheap enough to leave on for every simulation run.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "rpc/tcp_transport.hpp"

namespace npss {
namespace {

using uts::Value;

int run() {
  bench::print_header(
      "A11 — instrumentation overhead on a null RPC over loopback TCP\n"
      "(per-call wall time, obs disabled vs enabled; target < 5%)");

  rpc::TcpProcedureHost host(
      "export inc prog(\"x\" val integer, \"y\" res integer)",
      {{"inc",
        [](rpc::ProcCall& c) {
          c.set("y", Value::integer(c.integer("x") + 1));
        }}},
      "sun-sparc10");
  rpc::TcpRemoteProc inc("127.0.0.1", host.port(), "inc",
                         "import inc prog(\"x\" val integer,"
                         " \"y\" res integer)",
                         "sun-sparc10");
  uts::ValueList args = {Value::integer(1), Value::integer(0)};
  rpc::CallOptions once = rpc::CallOptions::legacy();
  once.max_attempts = 1;  // the historical single-attempt contract

  const int kReps = 2000;
  auto measure_us = [&]() {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) inc.call(args, once).values_or_raise();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
               .count() /
           kReps;
  };

  // Warm both sides.
  for (int i = 0; i < 200; ++i) inc.call(args, once).values_or_raise();

  // Alternate modes and keep each mode's best round so scheduler noise
  // doesn't masquerade as instrumentation cost.
  double off_us = 1e300, on_us = 1e300;
  const int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    obs::set_enabled(false);
    off_us = std::min(off_us, measure_us());
    obs::set_enabled(true);
    obs::reset_run();  // keep the bounded span collector from filling
    on_us = std::min(on_us, measure_us());
  }
  obs::set_enabled(true);

  const double overhead_pct = (on_us - off_us) / off_us * 100.0;
  std::printf("%-28s %12s\n", "mode", "us/call");
  bench::print_rule(42);
  std::printf("%-28s %12.2f\n", "obs disabled", off_us);
  std::printf("%-28s %12.2f\n", "obs enabled", on_us);
  std::printf("\noverhead: %.2f%% per call (%s 5%% target)\n", overhead_pct,
              overhead_pct < 5.0 ? "within" : "EXCEEDS");
  std::printf(
      "enabled run recorded %zu spans and these metrics:\n%s",
      obs::SpanCollector::global().size(),
      obs::Registry::global().to_text().c_str());
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
