// Scheduler overlap benchmarks: the two concurrency seams this growth step
// added, measured in wall-clock time and written to BENCH_scheduler.json.
//
//  * Wavefront half — a flow network of independent modules whose compute
//    takes real time: the wavefront scheduler runs a dependency level
//    concurrently, the sequential sweep pays the sum.
//  * Remote-overlap half — a Table-2-style placement of two independent
//    remote procedures on different machines. Each remote handler performs
//    real wall-clock work (the remote machine computes while the caller
//    waits), so issuing both calls via call_async overlaps the waits,
//    while the conventional sequential calls pay them back-to-back.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/testbed.hpp"
#include "flow/network.hpp"
#include "rpc/client.hpp"
#include "rpc/host.hpp"
#include "uts/spec.hpp"

namespace npss::bench {
namespace {

using clock_type = std::chrono::steady_clock;

double elapsed_ms(clock_type::time_point t0) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - t0)
      .count();
}

// --- wavefront half --------------------------------------------------------

/// A module whose compute costs real wall-clock time, standing in for a
/// component that waits on an external computation.
class SpinModule final : public flow::Module {
 public:
  explicit SpinModule(int ms) : ms_(ms) {}
  std::string type_name() const override { return "bench-spin"; }
  void spec(flow::ModuleSpec& spec) override {
    spec.output("out", uts::Type::real_double());
  }
  void compute() override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    out_real("out", static_cast<double>(ms_));
  }

 private:
  int ms_;
};

struct WavefrontResult {
  double sequential_ms;
  double parallel_ms;
};

WavefrontResult run_wavefront_half(int modules, int ms_per_module) {
  auto build = [&](flow::Network& net) {
    for (int i = 0; i < modules; ++i) {
      net.add("spin" + std::to_string(i),
              std::make_unique<SpinModule>(ms_per_module));
    }
  };
  WavefrontResult r{};
  {
    flow::Network net;
    build(net);
    net.set_parallel_evaluation(false);
    const auto t0 = clock_type::now();
    net.evaluate();
    r.sequential_ms = elapsed_ms(t0);
  }
  {
    flow::Network net;
    build(net);
    net.set_parallel_workers(modules);  // single-core hosts still overlap
    const auto t0 = clock_type::now();
    net.evaluate();
    r.parallel_ms = elapsed_ms(t0);
  }
  return r;
}

// --- remote-overlap half ---------------------------------------------------

const char* kSpinSpec = R"(
export spin prog(
    "ms" val integer,
    "done" res integer)
)";

constexpr const char* kSpinPath = "/npss/bin/bench-spin";

sim::ProgramImage spin_image() {
  return rpc::make_procedure_image(
      kSpinSpec, {{"spin", [](rpc::ProcCall& call) {
                     const std::int64_t ms = call.integer("ms");
                     std::this_thread::sleep_for(
                         std::chrono::milliseconds(ms));
                     call.set("done", uts::Value::integer(ms));
                   }}},
      {});
}

struct OverlapResult {
  double sequential_ms;
  double overlapped_ms;
};

OverlapResult run_overlap_half(int work_ms) {
  Testbed bed;
  const std::string spin_import =
      uts::export_to_import_text(uts::parse_spec(kSpinSpec));
  // Two independent remote components on different LeRC machines, driven
  // from the Arizona workstation — each on its own client/line, the
  // RemoteBackend arrangement.
  const char* machines[] = {"sparc-lerc", "rs6000-lerc"};
  std::vector<std::unique_ptr<rpc::SchoonerClient>> clients;
  std::vector<std::unique_ptr<rpc::RemoteProc>> procs;
  for (const char* machine : machines) {
    bed.cluster.install_image(machine, kSpinPath, spin_image());
    auto client = bed.schooner->make_client(
        "sparc-ua", std::string("bench-spin on ") + machine);
    client->contact_schx(machine, kSpinPath);
    procs.push_back(client->import_proc("spin", spin_import));
    clients.push_back(std::move(client));
  }

  const uts::ValueList args = {uts::Value::integer(work_ms),
                               uts::Value::integer(0)};
  const rpc::CallOptions legacy = rpc::CallOptions::legacy();
  // Bind + warm both lines before timing.
  for (auto& p : procs) p->call(args, legacy).values_or_raise();

  OverlapResult r{};
  {
    const auto t0 = clock_type::now();
    for (auto& p : procs) p->call(args, legacy).values_or_raise();
    r.sequential_ms = elapsed_ms(t0);
  }
  {
    const auto t0 = clock_type::now();
    std::vector<std::future<rpc::CallResult>> pending;
    for (auto& p : procs) pending.push_back(p->call_async(args, legacy));
    for (auto& f : pending) f.get().values_or_raise();
    r.overlapped_ms = elapsed_ms(t0);
  }
  for (auto& c : clients) c->quit();
  return r;
}

}  // namespace
}  // namespace npss::bench

int main() {
  using namespace npss::bench;

  print_header("Wavefront scheduler: N independent modules, real compute");
  const int kModules = 4, kModuleMs = 25;
  WavefrontResult wf = run_wavefront_half(kModules, kModuleMs);
  std::printf("%d modules x %d ms: sequential %.1f ms, wavefront %.1f ms "
              "(%.2fx)\n",
              kModules, kModuleMs, wf.sequential_ms, wf.parallel_ms,
              wf.sequential_ms / wf.parallel_ms);

  print_header("Remote overlap: 2 independent remote components");
  const int kWorkMs = 50;
  OverlapResult ov = run_overlap_half(kWorkMs);
  std::printf("2 remote spins x %d ms: sequential %.1f ms, call_async "
              "%.1f ms (%.2fx)\n",
              kWorkMs, ov.sequential_ms, ov.overlapped_ms,
              ov.sequential_ms / ov.overlapped_ms);

  std::FILE* f = std::fopen("BENCH_scheduler.json", "w");
  if (f) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"scheduler\",\n");
    std::fprintf(f, "  \"wavefront\": {\n");
    std::fprintf(f, "    \"modules\": %d,\n", kModules);
    std::fprintf(f, "    \"module_ms\": %d,\n", kModuleMs);
    std::fprintf(f, "    \"sequential_ms\": %.2f,\n", wf.sequential_ms);
    std::fprintf(f, "    \"parallel_ms\": %.2f,\n", wf.parallel_ms);
    std::fprintf(f, "    \"speedup\": %.2f\n",
                 wf.sequential_ms / wf.parallel_ms);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"remote_overlap\": {\n");
    std::fprintf(f, "    \"components\": 2,\n");
    std::fprintf(f, "    \"work_ms\": %d,\n", kWorkMs);
    std::fprintf(f, "    \"sequential_ms\": %.2f,\n", ov.sequential_ms);
    std::fprintf(f, "    \"overlapped_ms\": %.2f,\n", ov.overlapped_ms);
    std::fprintf(f, "    \"speedup\": %.2f\n",
                 ov.sequential_ms / ov.overlapped_ms);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nBENCH_scheduler.json written\n");
  }
  return 0;
}
