// A7 — RPC round-trip cost envelope (the Figure 1 structure, measured).
//
// One remote procedure echoes arrays of increasing size; the harness
// reports deterministic simulated round-trip time per call for each of the
// paper's three network classes. The shape that must hold: on the WAN,
// latency dominates for TESS-sized payloads (hundreds of bytes), which is
// exactly why Schooner's coarse-grained RPC decomposition is viable across
// the 1993 Internet while fine-grained traffic would not be (§3.1).
#include <cstdio>
#include <string>

#include "bench/testbed.hpp"

namespace npss {
namespace {

const int kSizes[] = {1, 16, 64, 256, 1024, 4096};

std::string echo_spec(int n) {
  return "export echo prog(\"data\" var array[" + std::to_string(n) +
         "] of float)";
}

int run() {
  bench::print_header(
      "A7 — RPC round trip vs payload size across network classes\n"
      "(simulated time per call, one var-array parameter, both directions)");

  std::printf("%-10s", "floats");
  for (const char* net :
       {"loopback", "ethernet-lan", "campus-multigateway", "internet-wan"}) {
    std::printf(" %22s", net);
  }
  std::printf("\n");
  bench::print_rule();

  // Raw transport round trip first (kPing/kPong, no marshaling): the
  // network share of every row below. marshal+dispatch ≈ row − rtt.
  std::printf("%-10s", "rtt");
  for (const char* net : {"loopback", "ethernet-lan", "campus-multigateway",
                          "internet-wan"}) {
    sim::Cluster cluster;
    cluster.add_machine("client", "sun-sparc10", "a");
    cluster.add_machine("server", "ibm-rs6000", "b");
    cluster.set_site_link("a", "b", sim::link_profile(net));
    cluster.install_image(
        "server", "/bin/echo",
        rpc::make_procedure_image(echo_spec(1),
                                  {{"echo", [](rpc::ProcCall&) {}}}));
    rpc::SchoonerSystem schooner(cluster, "client");
    auto client = schooner.make_client("client", "latency");
    client->contact_schx("server", "/bin/echo");
    auto echo = client->import_proc(
        "echo", "import echo prog(\"data\" var array[1] of float)");
    uts::ValueList args = {uts::Value::real_array({1.5})};
    const rpc::CallOptions legacy = rpc::CallOptions::legacy();
    echo->call(args, legacy).values_or_raise();  // bind + warm
    const int reps = 10;
    util::SimTime total = 0;
    for (int i = 0; i < reps; ++i) total += echo->ping();
    std::printf(" %22.3f", util::sim_to_ms(total) / reps);
  }
  std::printf("\n");

  for (int n : kSizes) {
    std::printf("%-10d", n);
    for (const char* net : {"loopback", "ethernet-lan",
                            "campus-multigateway", "internet-wan"}) {
      sim::Cluster cluster;
      cluster.add_machine("client", "sun-sparc10", "a");
      cluster.add_machine("server", "ibm-rs6000", "b");
      cluster.set_site_link("a", "b", sim::link_profile(net));
      cluster.install_image(
          "server", "/bin/echo",
          rpc::make_procedure_image(echo_spec(n), {{"echo", [](rpc::ProcCall&) {
                                      // echo: var params flow back as-is
                                    }}}));
      rpc::SchoonerSystem schooner(cluster, "client");
      auto client = schooner.make_client("client", "latency");
      client->contact_schx("server", "/bin/echo");
      auto echo = client->import_proc(
          "echo", "import echo prog(\"data\" var array[" +
                      std::to_string(n) + "] of float)");
      uts::ValueList args = {
          uts::Value::real_array(std::vector<double>(n, 1.5))};
      const rpc::CallOptions legacy = rpc::CallOptions::legacy();
      echo->call(args, legacy).values_or_raise();  // bind + warm
      auto& clock = client->io().endpoint().clock();
      const util::SimTime before = clock.now();
      const int reps = 10;
      for (int i = 0; i < reps; ++i) {
        echo->call(args, legacy).values_or_raise();
      }
      const double per_call_ms =
          util::sim_to_ms((clock.now() - before)) / reps;
      std::printf(" %22.3f", per_call_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape checks: rows grow with payload; for small payloads the WAN\n"
      "column is ~latency-bound (flat), so coarse-grained calls amortize\n"
      "the wire and fine-grained ones cannot. The rtt row is the pure\n"
      "network share; subtract it from any row to isolate marshal and\n"
      "dispatch cost.\n");
  return 0;
}

}  // namespace
}  // namespace npss

int main() { return npss::run(); }
