// Whole-engine tests: steady balance by both TESS methods, physical trends
// with throttle and altitude, transient behaviour under all four
// integrators, and solver bookkeeping.
#include <gtest/gtest.h>

#include <cmath>

#include "tess/engine.hpp"

namespace npss::tess {
namespace {

TEST(Turbojet, BalancesAtDesignFuelFlow) {
  TurbojetEngine engine;
  SteadyResult r = engine.balance(engine.design_fuel_flow(), {});
  EXPECT_GT(r.performance.thrust, 10e3);
  EXPECT_LT(r.performance.thrust, 100e3);
  EXPECT_GT(r.performance.t4, 900.0);
  EXPECT_LT(r.performance.t4, 1800.0);
  EXPECT_GT(r.performance.surge_margins[0], 0.0);
  EXPECT_LT(std::abs(r.performance.accelerations[0]), 1.0);
}

TEST(Turbojet, ThrottleTrendsAreMonotone) {
  TurbojetEngine engine;
  double last_thrust = 0.0, last_n = 0.0, last_t4 = 0.0;
  for (double wf : {0.55, 0.7, 0.85, 1.0}) {
    SteadyResult r = engine.balance(wf, {});
    EXPECT_GT(r.performance.thrust, last_thrust) << "wf=" << wf;
    EXPECT_GT(r.performance.speeds[0], last_n);
    EXPECT_GT(r.performance.t4, last_t4);
    last_thrust = r.performance.thrust;
    last_n = r.performance.speeds[0];
    last_t4 = r.performance.t4;
  }
}

TEST(Turbojet, EvaluateRejectsWrongStateCount) {
  TurbojetEngine engine;
  EXPECT_THROW((void)engine.evaluate({1.0, 2.0}, 0.8, {}),
               util::ModelError);
}

TEST(F100, BalancesWithPlausibleCycle) {
  F100Engine engine;
  SteadyResult r = engine.balance(engine.design_fuel_flow(), {});
  const Performance& p = r.performance;
  EXPECT_GT(p.thrust, 40e3);
  EXPECT_LT(p.thrust, 90e3);
  EXPECT_GT(p.opr, 15.0);
  EXPECT_LT(p.opr, 30.0);
  EXPECT_GT(p.t4, 1400.0);
  EXPECT_LT(p.t4, 1800.0);
  EXPECT_GT(p.airflow, 70.0);
  EXPECT_LT(p.airflow, 130.0);
  EXPECT_GT(p.surge_margins[0], 0.0);
  EXPECT_GT(p.surge_margins[1], 0.0);
  // Both spools essentially balanced.
  EXPECT_LT(std::abs(p.accelerations[0]), 1.0);
  EXPECT_LT(std::abs(p.accelerations[1]), 1.0);
  // Stations exposed for monitoring.
  EXPECT_TRUE(p.stations.contains("st4"));
  EXPECT_GT(p.stations.at("st4").Pt, p.stations.at("st2").Pt * 10);
}

TEST(F100, BothSteadyMethodsAgree) {
  F100Engine engine;
  SteadyResult newton = engine.balance(1.0, {});
  SteadyResult march = engine.balance(1.0, {}, SteadyMethod::kRk4March);
  EXPECT_NEAR(march.performance.speeds[0] / newton.performance.speeds[0],
              1.0, 2e-3);
  EXPECT_NEAR(march.performance.speeds[1] / newton.performance.speeds[1],
              1.0, 2e-3);
  EXPECT_NEAR(march.performance.thrust / newton.performance.thrust, 1.0,
              5e-3);
}

TEST(F100, AltitudeLapseReducesThrust) {
  F100Engine engine;
  SteadyResult sls = engine.balance(1.0, {});
  FlightCondition cruise{9000.0, 0.8, 0.0};
  SteadyResult alt = engine.balance(0.62, cruise);
  EXPECT_LT(alt.performance.thrust, sls.performance.thrust);
  EXPECT_LT(alt.performance.airflow, sls.performance.airflow);
}

TEST(F100, HotDayRaisesT4AtFixedFuel) {
  F100Engine engine;
  SteadyResult std_day = engine.balance(1.0, {});
  FlightCondition hot{0.0, 0.0, 20.0};
  SteadyResult hot_day = engine.balance(1.0, hot);
  EXPECT_GT(hot_day.performance.t4, std_day.performance.t4);
}

class F100Transient : public ::testing::TestWithParam<solvers::IntegratorKind> {
};

TEST_P(F100Transient, ThrottleStepSettlesAtNewSteadyState) {
  F100Engine engine;
  SteadyResult from = engine.balance(1.0, {});
  SteadyResult to = engine.balance(1.2, {});
  FuelSchedule step = [](double t) { return t < 0.05 ? 1.0 : 1.2; };
  TransientResult tr =
      engine.transient(from.performance.speeds, step, {}, 15.0, 0.02,
                       GetParam());
  const Performance& end = tr.history.back().performance;
  EXPECT_NEAR(end.speeds[0] / to.performance.speeds[0], 1.0, 2e-3)
      << solvers::integrator_name(GetParam());
  EXPECT_NEAR(end.speeds[1] / to.performance.speeds[1], 1.0, 2e-3);
  // Spool speeds rose monotonically (no overshoot oscillation at this
  // gentle step).
  for (std::size_t i = 1; i < tr.history.size(); ++i) {
    EXPECT_GE(tr.history[i].performance.speeds[1] + 1.0,
              tr.history[i - 1].performance.speeds[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllIntegrators, F100Transient,
                         ::testing::ValuesIn(solvers::all_integrators()),
                         [](const auto& info) {
                           std::string n(solvers::integrator_name(info.param));
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(F100, TransientSamplesAreUniform) {
  F100Engine engine;
  SteadyResult steady = engine.balance(1.0, {});
  FuelSchedule constant = [](double) { return 1.0; };
  TransientResult tr = engine.transient(
      steady.performance.speeds, constant, {}, 0.3, 0.05,
      solvers::IntegratorKind::kModifiedEuler);
  ASSERT_EQ(tr.history.size(), 7u);  // t=0 plus 6 steps
  for (std::size_t i = 1; i < tr.history.size(); ++i) {
    EXPECT_NEAR(tr.history[i].t - tr.history[i - 1].t, 0.05, 1e-12);
  }
  // From steady state under constant fuel, nothing moves.
  EXPECT_NEAR(tr.history.back().performance.speeds[0] /
                  steady.performance.speeds[0],
              1.0, 1e-5);
}

TEST(F100, SetshaftRunsOncePerBalance) {
  // The ecorr factors from setshaft are sampled once per steady run and
  // reused, per §3.3 ("called once at the start of a steady-state
  // computation").
  F100Engine engine;
  int setshaft_calls = 0;
  ComponentHooks hooks = ComponentHooks::local();
  auto base = hooks.setshaft;
  hooks.setshaft = [&setshaft_calls, base](int spool,
                                           const StationArray& ecom,
                                           int incom,
                                           const StationArray& etur,
                                           int intur) {
    ++setshaft_calls;
    return base(spool, ecom, incom, etur, intur);
  };
  engine.set_hooks(hooks);
  engine.balance(1.0, {});
  EXPECT_EQ(setshaft_calls, 2);  // one per spool
  engine.balance(1.0, {});
  EXPECT_EQ(setshaft_calls, 4);  // fresh run, fresh setshaft
}

TEST(F100, ConvergenceFailureIsReported) {
  F100Engine engine;
  // An absurd fuel flow drives the flow match out of map range.
  EXPECT_THROW((void)engine.balance(25.0, {}), util::ConvergenceError);
}

TEST(F100, SfcConsistency) {
  F100Engine engine;
  SteadyResult r = engine.balance(1.0, {});
  EXPECT_NEAR(r.performance.sfc,
              r.performance.fuel_flow / r.performance.thrust, 1e-12);
}

}  // namespace
}  // namespace npss::tess
