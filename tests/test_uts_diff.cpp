// uts_diff (UTS3xx) spec-evolution suite: the seeded corpus under
// tests/specs/evolution/ must classify with zero false negatives on
// breaking changes, plus manifest hash/round-trip checks and the
// val-widening compatibility rule the differ shares with the runtime.
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/diff.hpp"
#include "util/sha256.hpp"
#include "uts/spec.hpp"

namespace fs = std::filesystem;
using npss::check::DiffResult;
using npss::check::diff_spec_texts;

namespace {

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

DiffResult diff_case(const std::string& name) {
  const fs::path dir = fs::path(UTS_DIFF_EVOLUTION_DIR) / name;
  const fs::path old_spec = dir / "old.spec";
  const fs::path new_spec = dir / "new.spec";
  return diff_spec_texts(old_spec.string(), slurp(old_spec),
                         new_spec.string(), slurp(new_spec));
}

bool has_code(const DiffResult& result, const std::string& code) {
  for (const npss::check::Diagnostic& d : result.diags) {
    if (d.code == code) return true;
  }
  return false;
}

/// Expected primary diagnostic per corpus case. Every directory under
/// tests/specs/evolution/ must appear here, so adding a corpus case
/// without wiring its expectation fails the sweep below.
const std::map<std::string, std::string>& expected_codes() {
  static const std::map<std::string, std::string> table = {
      {"breaking_removed_export", "UTS301"},
      {"breaking_type_change", "UTS302"},
      {"breaking_mode_change", "UTS303"},
      {"breaking_field_reorder", "UTS302"},
      {"breaking_field_renamed", "UTS302"},
      {"breaking_narrowed_array", "UTS302"},
      {"breaking_param_removed", "UTS304"},
      {"breaking_param_reordered", "UTS304"},
      {"breaking_widened_res_array", "UTS302"},
      {"compatible_new_export", "UTS310"},
      {"compatible_added_param", "UTS311"},
      {"compatible_widened_val_array", "UTS312"},
      {"compatible_widened_nested_array", "UTS312"},
      {"compatible_comment_only", ""},  // no surface change at all
  };
  return table;
}

TEST(EvolutionCorpus, EveryCaseClassifiesAsNamed) {
  int cases = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(UTS_DIFF_EVOLUTION_DIR)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    ++cases;
    auto expect = expected_codes().find(name);
    ASSERT_NE(expect, expected_codes().end())
        << "corpus case '" << name << "' has no expectation wired";
    DiffResult result = diff_case(name);
    ASSERT_FALSE(result.old_report.parse_failed) << name;
    ASSERT_FALSE(result.new_report.parse_failed) << name;
    const bool should_break = name.rfind("breaking_", 0) == 0;
    EXPECT_EQ(result.breaking(), should_break) << name;
    if (!expect->second.empty()) {
      EXPECT_TRUE(has_code(result, expect->second))
          << name << " should report " << expect->second;
    } else {
      EXPECT_TRUE(result.diags.empty()) << name;
    }
    if (should_break) {
      EXPECT_GE(result.breaking_count(), 1) << name;
    } else {
      EXPECT_EQ(result.breaking_count(), 0) << name;
    }
  }
  EXPECT_EQ(cases, static_cast<int>(expected_codes().size()));
}

// Zero false negatives, checked against the runtime itself: for every
// breaking case, the old export used as an import must be rejected by
// uts::signature_compatibility_error against the new export — and for
// every compatible case, accepted. uts_diff's verdict must agree with
// the runtime on every corpus pair.
TEST(EvolutionCorpus, VerdictMatchesRuntimeCompatibility) {
  for (const auto& [name, code] : expected_codes()) {
    DiffResult result = diff_case(name);
    bool runtime_rejects = false;
    for (const npss::uts::ProcDecl& old_decl : result.old_report.spec.decls) {
      const npss::uts::ProcDecl* match = nullptr;
      for (const npss::uts::ProcDecl& new_decl :
           result.new_report.spec.decls) {
        if (new_decl.name == old_decl.name) match = &new_decl;
      }
      if (!match) {
        runtime_rejects = true;  // export gone: nothing to bind
        continue;
      }
      if (!npss::uts::signature_compatibility_error(old_decl.signature,
                                                    match->signature)
               .empty()) {
        runtime_rejects = true;
      }
    }
    EXPECT_EQ(result.breaking(), runtime_rejects) << name;
  }
}

TEST(UtsDiff, UnparseableSideIsBreaking) {
  DiffResult result = diff_spec_texts(
      "old.spec", "export f prog(\"x\" val double)", "new.spec",
      "export f prog(\"x\" val");
  EXPECT_TRUE(result.breaking());
  EXPECT_TRUE(result.new_report.parse_failed);
}

TEST(UtsDiff, JsonCarriesHashesAndVerdict) {
  const std::string old_text = "export f prog(\"x\" val double)\n";
  const std::string new_text =
      "export f prog(\"x\" val double)\nexport g prog(\"y\" res double)\n";
  DiffResult result =
      diff_spec_texts("old.spec", old_text, "new.spec", new_text);
  const std::string json =
      npss::check::diff_result_to_json(result, old_text, new_text);
  EXPECT_NE(json.find(npss::util::sha256_hex(old_text)), std::string::npos);
  EXPECT_NE(json.find(npss::util::sha256_hex(new_text)), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"compatible\""), std::string::npos);
  EXPECT_NE(json.find("UTS310"), std::string::npos);
}

TEST(Manifest, HashIsStableAcrossCommentChurn) {
  // Same export surface from differently-commented sources hashes equal.
  npss::check::RunResult a = npss::check::run_check(
      {{"a.spec", "# v1\nexport f prog(\"x\" val double)\n"}});
  npss::check::RunResult b = npss::check::run_check(
      {{"b.spec", "# reformatted\n\nexport f prog(\"x\" val double)\n"}});
  const std::string hash_a =
      npss::check::manifest_hash(npss::check::collect_exports(a.files));
  const std::string hash_b =
      npss::check::manifest_hash(npss::check::collect_exports(b.files));
  EXPECT_EQ(hash_a, hash_b);
  EXPECT_EQ(hash_a.size(), 64u);

  npss::check::RunResult c = npss::check::run_check(
      {{"c.spec", "export f prog(\"x\" val integer)\n"}});
  EXPECT_NE(hash_a, npss::check::manifest_hash(
                        npss::check::collect_exports(c.files)));
}

TEST(Manifest, JsonRoundTripsHashesAndVersion) {
  const std::string text =
      "export f prog(\"x\" val double)\nexport g prog(\"y\" res double)\n";
  npss::check::RunResult run = npss::check::run_check({{"a.spec", text}});
  const std::string json = npss::check::run_result_to_json(run);

  npss::check::Manifest manifest = npss::check::load_manifest(json);
  EXPECT_EQ(manifest.exports.size(), 2u);
  EXPECT_EQ(manifest.tool_version, npss::check::tool_version());
  EXPECT_EQ(manifest.manifest_sha256,
            npss::check::manifest_hash(manifest.exports));
  ASSERT_EQ(manifest.spec_hashes.size(), 1u);
  EXPECT_EQ(manifest.spec_hashes[0], npss::util::sha256_hex(text));

  // The legacy accessor still returns just the export table.
  EXPECT_EQ(npss::check::load_manifest_json(json), manifest.exports);
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(npss::util::sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(npss::util::sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // 56 bytes: exercises the two-block padding tail.
  EXPECT_EQ(npss::util::sha256_hex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(ValWidening, RuntimeRuleMatchesDiffRule) {
  using npss::uts::parse_spec;
  auto sig = [](const std::string& decl) {
    return parse_spec(decl).decls.at(0).signature;
  };
  // val array widening: import 4 <= export 8 binds; the reverse does not.
  EXPECT_EQ(npss::uts::signature_compatibility_error(
                sig("import f prog(\"a\" val array[4] of float)"),
                sig("export f prog(\"a\" val array[8] of float)")),
            "");
  EXPECT_NE(npss::uts::signature_compatibility_error(
                sig("import f prog(\"a\" val array[8] of float)"),
                sig("export f prog(\"a\" val array[4] of float)")),
            "");
  // res parameters stay exact in both directions.
  EXPECT_NE(npss::uts::signature_compatibility_error(
                sig("import f prog(\"a\" res array[4] of float)"),
                sig("export f prog(\"a\" res array[8] of float)")),
            "");
  // The widening recurses through nested arrays...
  EXPECT_EQ(npss::uts::signature_compatibility_error(
                sig("import f prog(\"a\" val array[2] of array[3] of double)"),
                sig("export f prog(\"a\" val array[5] of array[3] of double)")),
            "");
  // ...but never through records (field layout is the wire format).
  EXPECT_NE(
      npss::uts::signature_compatibility_error(
          sig("import f prog(\"a\" val record \"x\": array[2] of double end)"),
          sig("export f prog(\"a\" val record \"x\": array[4] of double "
              "end)")),
      "");
}

}  // namespace
