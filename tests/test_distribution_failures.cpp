// Distribution-level failure handling: WAN outages, remote process death,
// and Server loss — the operational hazards a widely-dispersed 1993
// deployment faced, and what the Schooner runtime reports for each.
#include <gtest/gtest.h>

#include <cmath>

#include "rpc/schooner.hpp"

namespace npss::rpc {
namespace {

using uts::Value;

const char* kSpec = "export work prog(\"x\" val double, \"y\" res double)";
const char* kImport = "import work prog(\"x\" val double, \"y\" res double)";

sim::ProgramImage work_image() {
  return make_procedure_image(kSpec, {{"work", [](ProcCall& c) {
                                c.set_real("y", c.real("x") * 2.0);
                              }}});
}

class DistributionFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.add_machine("local", "sun-sparc10", "uarizona");
    cluster_.add_machine("remote", "ibm-rs6000", "lerc");
    cluster_.set_site_link("uarizona", "lerc",
                           sim::link_profile("internet-wan"));
    cluster_.install_image("remote", "/bin/work", work_image());
    system_ = std::make_unique<SchoonerSystem>(cluster_, "local");
  }

  sim::Cluster cluster_;
  std::unique_ptr<SchoonerSystem> system_;
};

TEST_F(DistributionFailureTest, WanOutageSurfacesAsErrorThenRecovers) {
  auto client = system_->make_client("local", "outage");
  client->contact_schx("remote", "/bin/work");
  auto work = client->import_proc("work", kImport);
  EXPECT_DOUBLE_EQ(
      work->call({Value::real(3), Value::real(0)})[1].as_real(), 6.0);

  // The Internet path between the sites goes down mid-run.
  cluster_.set_link_up("uarizona", "lerc", false);
  EXPECT_THROW(work->call({Value::real(1), Value::real(0)}),
               util::Error);

  // Back up: the binding survives the outage (the process never died),
  // so after a re-bind the computation continues.
  cluster_.set_link_up("uarizona", "lerc", true);
  work->invalidate();
  EXPECT_DOUBLE_EQ(
      work->call({Value::real(4), Value::real(0)})[1].as_real(), 8.0);
}

TEST_F(DistributionFailureTest, DeadProcessYieldsCallErrorNotHang) {
  auto client = system_->make_client("local", "dead-proc");
  StartResult started = client->contact_schx("remote", "/bin/work");
  auto work = client->import_proc("work", kImport);
  work->call({Value::real(1), Value::real(0)});

  // The remote process crashes (killed at the OS level, not via the
  // Manager, so the Manager's tables still name the corpse).
  cluster_.retire_endpoint(started.address);

  // The stub retries once through the Manager, is handed the same dead
  // address, and reports a typed failure — never a hang.
  try {
    work->call({Value::real(2), Value::real(0)});
    FAIL() << "expected an error";
  } catch (const util::Error& e) {
    EXPECT_TRUE(e.code() == util::ErrorCode::kNoRoute ||
                e.code() == util::ErrorCode::kCallFailure)
        << e.what();
  }
  EXPECT_GE(work->stale_retries(), 1);

  // The line can still be shut down cleanly afterwards.
  EXPECT_NO_THROW(client->quit());
}

TEST_F(DistributionFailureTest, HandlerExceptionsBecomeTypedErrors) {
  cluster_.install_image(
      "remote", "/bin/fragile",
      make_procedure_image(
          "export fragile prog(\"x\" val double, \"y\" res double)",
          {{"fragile", [](ProcCall& c) {
              if (c.real("x") < 0) {
                throw util::ModelError("negative input not supported");
              }
              c.set_real("y", std::sqrt(c.real("x")));
            }}}));
  auto client = system_->make_client("local", "fragile");
  client->contact_schx("remote", "/bin/fragile");
  auto fragile = client->import_proc(
      "fragile", "import fragile prog(\"x\" val double, \"y\" res double)");
  EXPECT_DOUBLE_EQ(
      fragile->call({Value::real(9), Value::real(0)})[1].as_real(), 3.0);
  // The remote exception arrives typed and the process stays up.
  EXPECT_THROW(fragile->call({Value::real(-1), Value::real(0)}),
               util::ModelError);
  EXPECT_DOUBLE_EQ(
      fragile->call({Value::real(16), Value::real(0)})[1].as_real(), 4.0);
}

TEST_F(DistributionFailureTest, StartFailsCleanlyDuringOutage) {
  cluster_.set_link_up("uarizona", "lerc", false);
  auto client = system_->make_client("local", "no-start");
  EXPECT_THROW(client->contact_schx("remote", "/bin/work"), util::Error);
  // Local work is unaffected.
  cluster_.install_image("local", "/bin/work", work_image());
  EXPECT_NO_THROW(client->contact_schx("local", "/bin/work"));
}

TEST_F(DistributionFailureTest, MoveAwayFromFailingMachineRestoresService) {
  // The §4.2 motivation scenario end-to-end: the remote machine is about
  // to go down; the user moves the procedure home, then the link dies —
  // and the computation keeps running locally.
  cluster_.install_image("local", "/bin/work", work_image());
  auto client = system_->make_client("local", "evacuate");
  client->contact_schx("remote", "/bin/work");
  auto work = client->import_proc("work", kImport);
  work->call({Value::real(1), Value::real(0)});

  client->move_proc("work", "local", "/bin/work");
  cluster_.set_link_up("uarizona", "lerc", false);

  EXPECT_DOUBLE_EQ(
      work->call({Value::real(5), Value::real(0)})[1].as_real(), 10.0);
}

}  // namespace
}  // namespace npss::rpc
