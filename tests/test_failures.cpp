// Failure-injection tests (§2.4: testing engine operation in the presence
// of failures), including failures striking a simulation whose components
// run remotely over Schooner.
#include <gtest/gtest.h>

#include "npss/procedures.hpp"
#include "npss/remote_backend.hpp"
#include "tess/engine.hpp"
#include "tess/failures.hpp"

namespace npss::tess {
namespace {

TEST(Failures, CombustorDegradationLowersT4AndThrust) {
  F100Engine engine;
  FlightCondition sls;
  SteadyResult healthy = engine.balance(1.0, sls);

  FailureInjector injector(ComponentHooks::local());
  injector.set_combustor_efficiency_factor(0.8);
  engine.set_hooks(injector.hooks());
  SteadyResult degraded = engine.balance(1.0, sls);

  EXPECT_LT(degraded.performance.t4, healthy.performance.t4);
  EXPECT_LT(degraded.performance.thrust, healthy.performance.thrust);
  EXPECT_LT(degraded.performance.speeds[1], healthy.performance.speeds[1]);
}

TEST(Failures, BearingFrictionSlowsItsOwnSpool) {
  F100Engine engine;
  FlightCondition sls;
  SteadyResult healthy = engine.balance(1.0, sls);

  FailureInjector injector(ComponentHooks::local());
  injector.set_shaft_friction_power(0, 0.5e6);  // LP bearing drag
  engine.set_hooks(injector.hooks());
  SteadyResult dragged = engine.balance(1.0, sls);

  const double lp_drop =
      1.0 - dragged.performance.speeds[0] / healthy.performance.speeds[0];
  const double hp_drop =
      1.0 - dragged.performance.speeds[1] / healthy.performance.speeds[1];
  EXPECT_GT(lp_drop, 0.005);
  // The spools are thermodynamically coupled (less LP airflow rebalances
  // the HP side too), but the failed spool must take the larger hit.
  EXPECT_GT(lp_drop, std::abs(hp_drop))
      << "the failure belongs to the LP spool";
}

TEST(Failures, StuckNozzleBacksUpTheEngine) {
  F100Engine engine;
  FlightCondition sls;
  SteadyResult healthy = engine.balance(1.0, sls);

  FailureInjector injector(ComponentHooks::local());
  injector.set_nozzle_area_factor(0.85);  // nozzle stuck partially closed
  engine.set_hooks(injector.hooks());
  SteadyResult choked = engine.balance(1.0, sls);

  // Less exit area backs pressure up through the machine: airflow falls
  // and the fan moves toward surge.
  EXPECT_LT(choked.performance.airflow, healthy.performance.airflow);
  EXPECT_LT(choked.performance.surge_margins[0],
            healthy.performance.surge_margins[0]);
}

TEST(Failures, DuctBlockageCostsThrust) {
  F100Engine engine;
  FlightCondition sls;
  SteadyResult healthy = engine.balance(1.0, sls);

  FailureInjector injector(ComponentHooks::local());
  injector.set_duct_extra_loss(0, 0.10);  // bypass duct damage
  engine.set_hooks(injector.hooks());
  SteadyResult damaged = engine.balance(1.0, sls);
  EXPECT_LT(damaged.performance.thrust, 0.995 * healthy.performance.thrust);
}

TEST(Failures, MidTransientFlameoutAndRecovery) {
  F100Engine engine;
  FailureInjector injector(ComponentHooks::local());
  engine.set_hooks(injector.hooks());
  FlightCondition sls;
  SteadyResult steady = engine.balance(1.0, sls);
  FuelSchedule constant = [](double) { return 1.0; };

  // Partial flameout strikes...
  injector.set_combustor_efficiency_factor(0.6);
  TransientResult during = engine.transient(
      steady.performance.speeds, constant, sls, 2.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);
  const double n2_during = during.history.back().performance.speeds[1];
  EXPECT_LT(n2_during, steady.performance.speeds[1] - 100.0)
      << "engine must spool down under the failure";

  // ...and clears: the engine recovers toward its healthy point.
  injector.clear();
  TransientResult after = engine.transient(
      during.history.back().performance.speeds, constant, sls, 10.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);
  EXPECT_NEAR(after.history.back().performance.speeds[1] /
                  steady.performance.speeds[1],
              1.0, 5e-3);
}

TEST(Failures, ClearRestoresExactHealthyBehaviour) {
  F100Engine engine;
  FlightCondition sls;
  SteadyResult healthy = engine.balance(1.0, sls);

  FailureInjector injector(ComponentHooks::local());
  injector.set_combustor_efficiency_factor(0.5);
  injector.set_nozzle_area_factor(0.9);
  injector.set_duct_extra_loss(1, 0.05);
  injector.set_shaft_friction_power(1, 1e5);
  injector.clear();
  engine.set_hooks(injector.hooks());
  SteadyResult restored = engine.balance(1.0, sls);
  EXPECT_NEAR(restored.performance.thrust / healthy.performance.thrust, 1.0,
              1e-9);
}

TEST(Failures, ComposesWithRemoteExecution) {
  // A failure injected locally wraps hooks that call across the network:
  // the degraded efficiency parameter travels to the remote combustor.
  sim::Cluster cluster;
  cluster.add_machine("ws", "sun-sparc10", "a");
  cluster.add_machine("cray", "cray-ymp", "a");
  glue::install_tess_procedures(cluster, "cray");
  rpc::SchoonerSystem schooner(cluster, "ws");
  glue::RemoteBackend backend(schooner, "ws");
  backend.place(glue::AdaptedComponent::kCombustor, 0, {"cray", ""});

  FailureInjector injector(backend.hooks());
  injector.set_combustor_efficiency_factor(0.8);

  F100Engine engine;
  engine.set_hooks(injector.hooks());
  engine.set_solver_tolerances(5e-6, 1e-4);
  FlightCondition sls;
  SteadyResult remote_degraded = engine.balance(1.0, sls);

  F100Engine local;
  FailureInjector local_injector(ComponentHooks::local());
  local_injector.set_combustor_efficiency_factor(0.8);
  local.set_hooks(local_injector.hooks());
  SteadyResult local_degraded = local.balance(1.0, sls);

  EXPECT_NEAR(remote_degraded.performance.thrust /
                  local_degraded.performance.thrust,
              1.0, 5e-4);
  EXPECT_GT(backend.total_calls(), 0);
}

}  // namespace
}  // namespace npss::tess
