// End-to-end tests of the Schooner runtime on a small virtual cluster:
// startup protocol, calls with heterogeneous marshaling, Fortran name-case
// synonyms, type checking, per-line name spaces and shutdown, shared
// procedures, migration with stale-cache recovery, and nested (Figure 1)
// calls.
#include <gtest/gtest.h>

#include "rpc/schooner.hpp"

namespace npss {
namespace {

using rpc::ProcCall;
using rpc::ProcedureDef;
using rpc::ProcedureImageOptions;
using uts::Value;
using uts::ValueList;

const char* kAddSpec = R"(
  export add prog(
    "x" val double,
    "y" val double,
    "sum" res double)
)";

const char* kAddImport = R"(
  import add prog(
    "x" val double,
    "y" val double,
    "sum" res double)
)";

sim::ProgramImage add_image() {
  return rpc::make_procedure_image(
      kAddSpec, {{"add", [](ProcCall& call) {
                    call.set_real("sum", call.real("x") + call.real("y"));
                  }}});
}

class RpcBasicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.add_machine("sparc", "sun-sparc10", "lerc");
    cluster_.add_machine("cray", "cray-ymp", "lerc");
    cluster_.add_machine("rs6000", "ibm-rs6000", "uarizona");
    cluster_.set_site_link("lerc", "uarizona",
                           sim::link_profile("internet-wan"));
    system_ = std::make_unique<rpc::SchoonerSystem>(cluster_, "sparc");
  }

  sim::Cluster cluster_;
  std::unique_ptr<rpc::SchoonerSystem> system_;
};

TEST_F(RpcBasicTest, CallRemoteProcedureOnSameSite) {
  cluster_.install_image("cray", "/npss/add", add_image());
  auto client = system_->make_client("sparc", "test");
  client->contact_schx("cray", "/npss/add");
  auto add = client->import_proc("add", kAddImport);
  ValueList out = add->call({Value::real(2.5), Value::real(4.25),
                             Value::real(0)});
  EXPECT_DOUBLE_EQ(out[2].as_real(), 6.75);
}

TEST_F(RpcBasicTest, CallAcrossWanAdvancesVirtualClockMore) {
  cluster_.install_image("cray", "/npss/add", add_image());
  cluster_.install_image("rs6000", "/npss/add", add_image());

  auto client_lan = system_->make_client("sparc", "lan");
  client_lan->contact_schx("cray", "/npss/add");
  auto add_lan = client_lan->import_proc("add", kAddImport);

  auto client_wan = system_->make_client("sparc", "wan");
  client_wan->contact_schx("rs6000", "/npss/add");
  auto add_wan = client_wan->import_proc("add", kAddImport);

  auto lan_ep = cluster_.create_endpoint("sparc", "probe-lan");
  (void)lan_ep;

  // Warm both bindings, then compare per-call virtual time.
  add_lan->call({Value::real(1), Value::real(2), Value::real(0)});
  add_wan->call({Value::real(1), Value::real(2), Value::real(0)});

  auto& lan_clock = client_lan->io().endpoint().clock();
  auto& wan_clock = client_wan->io().endpoint().clock();
  const util::SimTime lan_before = lan_clock.now();
  const util::SimTime wan_before = wan_clock.now();
  add_lan->call({Value::real(1), Value::real(2), Value::real(0)});
  add_wan->call({Value::real(1), Value::real(2), Value::real(0)});
  const util::SimTime lan_cost = lan_clock.now() - lan_before;
  const util::SimTime wan_cost = wan_clock.now() - wan_before;
  EXPECT_GT(wan_cost, 10 * lan_cost)
      << "WAN round trip should dwarf the LAN one";
}

TEST_F(RpcBasicTest, FortranNamesResolveAcrossCaseConventions) {
  // On the Cray the Fortran compiler upper-cases external names; the
  // importer should never need to know that (§4.1).
  cluster_.install_image("cray", "/npss/add", add_image());
  auto client = system_->make_client("sparc", "case-test");
  rpc::StartResult result = client->contact_schx("cray", "/npss/add");
  ASSERT_FALSE(result.exports.empty());
  // The export list shows the upper-cased external name...
  EXPECT_EQ(result.exports[0].first, "ADD");
  // ...but the lower-case import still resolves.
  auto add = client->import_proc("add", kAddImport);
  ValueList out = add->call({Value::real(1), Value::real(1), Value::real(0)});
  EXPECT_DOUBLE_EQ(out[2].as_real(), 2.0);
}

TEST_F(RpcBasicTest, TypeCheckRejectsIncompatibleImport) {
  cluster_.install_image("cray", "/npss/add", add_image());
  auto client = system_->make_client("sparc", "type-test");
  client->contact_schx("cray", "/npss/add");
  const char* bad_import = R"(
    import add prog(
      "x" val integer,
      "y" val double,
      "sum" res double)
  )";
  auto add = client->import_proc("add", bad_import);
  EXPECT_THROW(
      add->call({Value::integer(1), Value::real(1), Value::real(0)}),
      util::TypeMismatchError);
}

TEST_F(RpcBasicTest, SubsetImportIsAccepted) {
  // Footnote 1: the import may be a subsequence of the export.
  const char* wide_spec = R"(
    export combo prog(
      "a" val double,
      "b" val double,
      "scale" val double,
      "out" res double)
  )";
  cluster_.install_image("cray", "/npss/combo",
                         rpc::make_procedure_image(
                             wide_spec, {{"combo", [](ProcCall& call) {
                                            double scale =
                                                call.real("scale") == 0.0
                                                    ? 1.0
                                                    : call.real("scale");
                                            call.set_real(
                                                "out", scale *
                                                           (call.real("a") +
                                                            call.real("b")));
                                          }}}));
  auto client = system_->make_client("sparc", "subset-test");
  client->contact_schx("cray", "/npss/combo");
  const char* narrow_import = R"(
    import combo prog(
      "a" val double,
      "b" val double,
      "out" res double)
  )";
  auto combo = client->import_proc("combo", narrow_import);
  ValueList out =
      combo->call({Value::real(3), Value::real(4), Value::real(0)});
  // Omitted "scale" arrives as the default (0 -> treated as 1 by handler).
  EXPECT_DOUBLE_EQ(out[2].as_real(), 7.0);
}

TEST_F(RpcBasicTest, LinesIsolateNamesAndShutdown) {
  cluster_.install_image("cray", "/npss/add", add_image());
  cluster_.install_image("rs6000", "/npss/add", add_image());

  auto line1 = system_->make_client("sparc", "line1");
  auto line2 = system_->make_client("sparc", "line2");
  line1->contact_schx("cray", "/npss/add");
  line2->contact_schx("rs6000", "/npss/add");

  auto add1 = line1->import_proc("add", kAddImport);
  auto add2 = line2->import_proc("add", kAddImport);
  EXPECT_DOUBLE_EQ(
      add1->call({Value::real(1), Value::real(2), Value::real(0)})[2]
          .as_real(),
      3.0);
  EXPECT_DOUBLE_EQ(
      add2->call({Value::real(3), Value::real(4), Value::real(0)})[2]
          .as_real(),
      7.0);

  // Quitting line1 must not disturb line2 (§4.2 shutdown semantics).
  line1->quit();
  EXPECT_DOUBLE_EQ(
      add2->call({Value::real(5), Value::real(6), Value::real(0)})[2]
          .as_real(),
      11.0);
  // ... but line1's import is now unusable.
  EXPECT_THROW(add1->call({Value::real(0), Value::real(0), Value::real(0)}),
               util::Error);
}

TEST_F(RpcBasicTest, DuplicateNamesAllowedAcrossLinesNotWithin) {
  cluster_.install_image("cray", "/npss/add", add_image());
  auto line1 = system_->make_client("sparc", "dup1");
  auto line2 = system_->make_client("sparc", "dup2");
  line1->contact_schx("cray", "/npss/add");
  EXPECT_NO_THROW(line2->contact_schx("cray", "/npss/add"));
  // Second instance in the *same* line collides.
  EXPECT_THROW(line1->contact_schx("cray", "/npss/add"),
               util::DuplicateNameError);
}

TEST_F(RpcBasicTest, SharedProcedureVisibleFromEveryLine) {
  cluster_.install_image("cray", "/npss/add", add_image());
  auto owner = system_->make_client("sparc", "shared-owner");
  owner->contact_schx("cray", "/npss/add", /*shared=*/true);

  auto other = system_->make_client("sparc", "shared-user");
  auto add = other->import_proc("add", kAddImport);
  ValueList out = add->call({Value::real(8), Value::real(9), Value::real(0)});
  EXPECT_DOUBLE_EQ(out[2].as_real(), 17.0);
}

TEST_F(RpcBasicTest, MigrationWithStaleCacheRecovery) {
  cluster_.install_image("cray", "/npss/add", add_image());
  cluster_.install_image("rs6000", "/npss/add", add_image());

  auto client = system_->make_client("sparc", "mover");
  client->contact_schx("cray", "/npss/add");
  auto add = client->import_proc("add", kAddImport);
  add->call({Value::real(1), Value::real(1), Value::real(0)});
  EXPECT_EQ(add->lookups(), 1);
  EXPECT_EQ(add->stale_retries(), 0);

  client->move_proc("add", "rs6000", "/npss/add");

  // The stub's cache is now stale: the next call fails over to the
  // Manager and retries (§4.2).
  ValueList out = add->call({Value::real(2), Value::real(3), Value::real(0)});
  EXPECT_DOUBLE_EQ(out[2].as_real(), 5.0);
  EXPECT_EQ(add->stale_retries(), 1);
  EXPECT_EQ(add->lookups(), 2);
}

TEST_F(RpcBasicTest, NestedCallAcrossMachines) {
  // Figure 1: sequential control flow passing through several machines —
  // the Cray procedure invokes a helper on the RS6000 within the line.
  const char* outer_spec = R"(
    export outer prog("x" val double, "y" res double)
  )";
  const char* helper_spec = R"(
    export helper prog("x" val double, "y" res double)
  )";
  cluster_.install_image(
      "cray", "/npss/outer",
      rpc::make_procedure_image(
          outer_spec, {{"outer", [](ProcCall& call) {
                          uts::ValueList nested = call.call_remote(
                              "helper",
                              "import helper prog(\"x\" val double, "
                              "\"y\" res double)",
                              {Value::real(call.real("x")), Value::real(0)});
                          call.set_real("y", nested[1].as_real() * 2.0);
                        }}}));
  cluster_.install_image(
      "rs6000", "/npss/helper",
      rpc::make_procedure_image(helper_spec,
                                {{"helper", [](ProcCall& call) {
                                    call.set_real("y", call.real("x") + 10.0);
                                  }}}));
  auto client = system_->make_client("sparc", "nested");
  client->contact_schx("cray", "/npss/outer");
  client->contact_schx("rs6000", "/npss/helper");
  auto outer = client->import_proc(
      "outer", "import outer prog(\"x\" val double, \"y\" res double)");
  ValueList out = outer->call({Value::real(5), Value::real(0)});
  EXPECT_DOUBLE_EQ(out[1].as_real(), 30.0);  // (5 + 10) * 2
}

TEST_F(RpcBasicTest, ManagerPersistsAcrossRuns) {
  cluster_.install_image("cray", "/npss/add", add_image());
  for (int run = 0; run < 3; ++run) {
    auto client = system_->make_client("sparc", "run");
    client->contact_schx("cray", "/npss/add");
    auto add = client->import_proc("add", kAddImport);
    ValueList out =
        add->call({Value::real(run), Value::real(run), Value::real(0)});
    EXPECT_DOUBLE_EQ(out[2].as_real(), 2.0 * run);
    client->quit();
  }
  EXPECT_EQ(system_->stats().lines_created, 3u);
  EXPECT_EQ(system_->stats().lines_shut_down, 3u);
}

TEST_F(RpcBasicTest, LookupFailureIsReported) {
  auto client = system_->make_client("sparc", "missing");
  auto ghost = client->import_proc(
      "ghost", "import ghost prog(\"x\" val double)");
  EXPECT_THROW(ghost->call({Value::real(1)}), util::LookupError);
}

TEST_F(RpcBasicTest, StartFailsForUnknownImage) {
  auto client = system_->make_client("sparc", "bad-path");
  EXPECT_THROW(client->contact_schx("cray", "/no/such/file"), util::Error);
}

}  // namespace
}  // namespace npss
