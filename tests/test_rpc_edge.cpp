// Edge cases of the Schooner call semantics: precedence of line-local over
// shared bindings, subset imports that drop res parameters, var arrays,
// empty signatures, and case-synonym collisions.
#include <gtest/gtest.h>

#include "rpc/schooner.hpp"

namespace npss::rpc {
namespace {

using uts::Value;

class RpcEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.add_machine("host", "sun-sparc10", "a");
    cluster_.add_machine("m1", "sgi-4d480", "a");
    cluster_.add_machine("m2", "cray-ymp", "a");
    system_ = std::make_unique<SchoonerSystem>(cluster_, "host");
  }

  sim::Cluster cluster_;
  std::unique_ptr<SchoonerSystem> system_;
};

sim::ProgramImage tagged_image(const std::string& tag) {
  return make_procedure_image(
      "export whoami prog(\"tag\" res string)",
      {{"whoami", [tag](ProcCall& c) { c.set("tag", Value::str(tag)); }}});
}

TEST_F(RpcEdgeTest, LineLocalBindingShadowsSharedOne) {
  cluster_.install_image("m1", "/bin/shared-who", tagged_image("shared"));
  cluster_.install_image("m2", "/bin/local-who", tagged_image("line-local"));

  auto owner = system_->make_client("host", "shared-owner");
  owner->contact_schx("m1", "/bin/shared-who", /*shared=*/true);

  // A line with its own 'whoami' must resolve its own (§4.2: line first,
  // then the shared database).
  auto line = system_->make_client("host", "with-local");
  line->contact_schx("m2", "/bin/local-who");
  auto who = line->import_proc("whoami",
                               "import whoami prog(\"tag\" res string)");
  EXPECT_EQ(who->call({Value::str("")})[0].as_string(), "line-local");

  // A line without one falls through to the shared database.
  auto other = system_->make_client("host", "without-local");
  auto who2 = other->import_proc("whoami",
                                 "import whoami prog(\"tag\" res string)");
  EXPECT_EQ(who2->call({Value::str("")})[0].as_string(), "shared");
}

TEST_F(RpcEdgeTest, SubsetImportMayDropResultParameters) {
  cluster_.install_image(
      "m1", "/bin/stats",
      make_procedure_image(
          "export stats prog(\"x\" val double, \"twice\" res double, "
          "\"square\" res double)",
          {{"stats", [](ProcCall& c) {
              c.set_real("twice", 2 * c.real("x"));
              c.set_real("square", c.real("x") * c.real("x"));
            }}}));
  auto client = system_->make_client("host", "narrow");
  client->contact_schx("m1", "/bin/stats");
  // The import asks only for 'square'; 'twice' never crosses the wire.
  auto stats = client->import_proc(
      "stats", "import stats prog(\"x\" val double, \"square\" res double)");
  uts::ValueList out = stats->call({Value::real(7), Value::real(0)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].as_real(), 49.0);
}

TEST_F(RpcEdgeTest, VarArraysTravelBothWaysThroughCrayWords) {
  cluster_.install_image(
      "m2", "/bin/scale",
      make_procedure_image(
          "export scale prog(\"xs\" var array[8] of double, "
          "\"k\" val double)",
          {{"scale", [](ProcCall& c) {
              std::vector<double> xs = c.reals("xs");
              for (double& x : xs) x *= c.real("k");
              c.set("xs", Value::real_array(xs));
            }}}));
  auto client = system_->make_client("host", "var-array");
  client->contact_schx("m2", "/bin/scale");
  auto scale = client->import_proc(
      "scale",
      "import scale prog(\"xs\" var array[8] of double, \"k\" val double)");
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  uts::ValueList out = scale->call({Value::real_array(xs), Value::real(3)});
  std::vector<double> back = out[0].as_real_vector();
  for (int i = 0; i < 8; ++i) {
    // Cray words carry 48-bit mantissas; these small integers are exact.
    EXPECT_DOUBLE_EQ(back[i], 3.0 * (i + 1));
  }
}

TEST_F(RpcEdgeTest, EmptySignatureProcedure) {
  static int fired = 0;
  fired = 0;
  cluster_.install_image(
      "m1", "/bin/tick",
      make_procedure_image("export tick prog()",
                           {{"tick", [](ProcCall&) { ++fired; }}}));
  auto client = system_->make_client("host", "ticker");
  client->contact_schx("m1", "/bin/tick");
  auto tick = client->import_proc("tick", "import tick prog()");
  uts::ValueList out = tick->call({});
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fired, 1);
}

TEST_F(RpcEdgeTest, CaseSynonymCollisionWithinLineRejected) {
  // Two processes exporting names that differ only in case collide in one
  // line (the Manager stores both-case synonyms, §4.1).
  cluster_.install_image("m1", "/bin/lower", tagged_image("lower"));
  cluster_.install_image(
      "m2", "/bin/upper",
      make_procedure_image(
          "export WHOAMI prog(\"tag\" res string)",
          {{"WHOAMI", [](ProcCall& c) { c.set("tag", Value::str("UP")); }}}));
  auto client = system_->make_client("host", "collide");
  client->contact_schx("m1", "/bin/lower");
  EXPECT_THROW(client->contact_schx("m2", "/bin/upper"),
               util::DuplicateNameError);
}

TEST_F(RpcEdgeTest, ByteAndStringParamsSurviveTheWire) {
  cluster_.install_image(
      "m2", "/bin/pack",
      make_procedure_image(
          "export pack prog(\"flag\" val byte, \"name\" val string, "
          "\"summary\" res string)",
          {{"pack", [](ProcCall& c) {
              c.set("summary",
                    Value::str(c.arg("name").as_string() + ":" +
                               std::to_string(c.arg("flag").as_byte())));
            }}}));
  auto client = system_->make_client("host", "packer");
  client->contact_schx("m2", "/bin/pack");
  auto pack = client->import_proc(
      "pack",
      "import pack prog(\"flag\" val byte, \"name\" val string, "
      "\"summary\" res string)");
  uts::ValueList out = pack->call(
      {Value::byte(200), Value::str("f100 engine"), Value::str("")});
  EXPECT_EQ(out[2].as_string(), "f100 engine:200");
}

}  // namespace
}  // namespace npss::rpc
