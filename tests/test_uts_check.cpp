// The uts-check static analyzer: the seeded bad-spec corpus pinned to its
// diagnostic codes, clean runs over the good specs, the JSON manifest
// round trip, portability screening, and the strict-mode Manager that
// rejects a drifted export at startup — before any call is issued.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "rpc/host.hpp"
#include "rpc/schooner.hpp"
#include "util/sha256.hpp"

#ifndef UTS_CHECK_SPEC_DIR
#error "UTS_CHECK_SPEC_DIR must point at tests/specs"
#endif

namespace npss {
namespace {

using check::Diagnostic;
using check::RunOptions;
using check::RunResult;
using check::Severity;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

RunResult check_files(const std::vector<std::string>& relative,
                      RunOptions options = {}) {
  std::vector<std::pair<std::string, std::string>> inputs;
  for (const std::string& rel : relative) {
    std::string path = std::string(UTS_CHECK_SPEC_DIR) + "/" + rel;
    inputs.emplace_back(rel, read_file(path));
  }
  return check::run_check(inputs, options);
}

bool has_code(const std::vector<Diagnostic>& diags, std::string_view code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

// --- Seeded bad corpus: every file carries its expected code ------------

struct CorpusCase {
  const char* file;
  const char* code;
};

class BadCorpus : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(BadCorpus, FlaggedWithExpectedCode) {
  RunOptions closed;
  closed.closed = true;
  RunResult result = check_files({std::string("bad/") + GetParam().file},
                                 closed);
  std::vector<Diagnostic> diags = result.all_diagnostics();
  EXPECT_TRUE(has_code(diags, GetParam().code))
      << GetParam().file << " should raise " << GetParam().code << "; got:\n"
      << check::render_human(diags);
  EXPECT_FALSE(result.ok()) << GetParam().file << " should have errors";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BadCorpus,
    ::testing::Values(CorpusCase{"dup_export.spec", "UTS001"},
                      CorpusCase{"dup_param.spec", "UTS002"},
                      CorpusCase{"bad_bound.spec", "UTS003"},
                      CorpusCase{"res_string_nested.spec", "UTS004"},
                      CorpusCase{"empty_record.spec", "UTS005"},
                      CorpusCase{"dup_field.spec", "UTS006"},
                      CorpusCase{"syntax_error.spec", "UTS010"},
                      CorpusCase{"wrong_arity.spec", "UTS102"},
                      CorpusCase{"swapped_directions.spec", "UTS102"},
                      CorpusCase{"float_vs_double.spec", "UTS102"},
                      CorpusCase{"unmatched_import.spec", "UTS101"},
                      CorpusCase{"ambiguous_export.spec", "UTS103"}),
    [](const auto& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

TEST(UtsCheckGood, ShaftConfigurationIsCleanAndClosed) {
  RunOptions closed;
  closed.closed = true;
  RunResult result = check_files({"shaft.spec", "shaft_exports.spec"}, closed);
  EXPECT_EQ(result.error_count(), 0)
      << check::render_human(result.all_diagnostics());
  EXPECT_EQ(result.warning_count(), 0)
      << check::render_human(result.all_diagnostics());
}

TEST(UtsCheckGood, ShaftSpecAloneLintsCleanWithOpenImports) {
  // Without the exporting program's spec the imports are merely open —
  // a warning, never an error (shaft.spec must keep exiting 0).
  RunResult result = check_files({"shaft.spec"});
  EXPECT_EQ(result.error_count(), 0);
  EXPECT_TRUE(has_code(result.all_diagnostics(), "UTS101"));
  for (const Diagnostic& d : result.all_diagnostics()) {
    EXPECT_EQ(d.severity, Severity::kWarning) << check::to_string(d);
  }
}

TEST(UtsCheckLint, DiagnosticsCarryFileLineColumn) {
  check::FileReport report = check::lint_spec_text(
      "probe.spec", "export f prog(\n  \"a\" val array[0] of float)");
  ASSERT_EQ(report.diags.size(), 1u);
  EXPECT_EQ(report.diags[0].code, "UTS003");
  EXPECT_EQ(report.diags[0].file, "probe.spec");
  EXPECT_EQ(report.diags[0].loc.line, 2);
  EXPECT_EQ(report.diags[0].loc.column, 17);
  EXPECT_NE(check::to_string(report.diags[0]).find("probe.spec:2:17"),
            std::string::npos);
}

TEST(UtsCheckLink, MismatchedPairRejectedStatically) {
  // The Manager would only find this when the call happens; uts_check
  // rejects the configuration before anything runs.
  RunResult result = check::run_check(
      {{"server.spec", "export f prog(\"x\" val double, \"y\" res double)"},
       {"client.spec", "import f prog(\"x\" val integer, \"y\" res double)"}});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_code(result.all_diagnostics(), "UTS102"));
}

TEST(UtsCheckPortability, CrayRangeHazardFlaggedWithTypePath) {
  RunOptions options;
  options.arch_keys = {"cray-ymp", "sun-sparc10"};
  RunResult result = check::run_check(
      {{"grid.spec",
        "export grid prog(\"mesh\" val array[2] of record \"v\": double "
        "end)"}},
      options);
  std::vector<Diagnostic> diags = result.all_diagnostics();
  ASSERT_TRUE(has_code(diags, "UTS201")) << check::render_human(diags);
  for (const Diagnostic& d : diags) {
    if (d.code != "UTS201") continue;
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.type_path, "\"mesh\"[].\"v\"");
    EXPECT_NE(d.message.find("cray-ymp->sun-sparc10"), std::string::npos)
        << d.message;
  }
  // All-IEEE machines have no hazard.
  options.arch_keys = {"sun-sparc10", "sgi-4d340"};
  RunResult ieee = check::run_check(
      {{"grid.spec",
        "export grid prog(\"mesh\" val array[2] of record \"v\": double "
        "end)"}},
      options);
  EXPECT_FALSE(has_code(ieee.all_diagnostics(), "UTS201"));
}

TEST(UtsCheckManifest, JsonRoundTripsExportTable) {
  RunResult result = check_files({"shaft.spec", "shaft_exports.spec"});
  std::string json = check::run_result_to_json(result);
  std::map<std::string, std::string> manifest =
      check::load_manifest_json(json);
  EXPECT_EQ(manifest.size(), 3u);  // setshaft, shaft, probe
  ASSERT_TRUE(manifest.contains("probe"));
  // The manifest text parses back to the original declaration.
  uts::ProcDecl decl = rpc::parse_signature_text(manifest.at("probe"));
  EXPECT_EQ(decl.name, "probe");
  EXPECT_EQ(decl.signature.size(), 4u);
}

TEST(UtsCheckManifest, LoaderRejectsMalformedJson) {
  EXPECT_THROW((void)check::load_manifest_json("{\"diagnostics\": []}"),
               util::ParseError);
  EXPECT_THROW((void)check::load_manifest_json("not json"),
               util::ParseError);
}

// --- Strict-mode Manager ------------------------------------------------

const char* kAddExport = R"(
  export add prog(
    "x" val double,
    "y" val double,
    "sum" res double)
)";

const char* kAddImport = R"(
  import add prog(
    "x" val double,
    "y" val double,
    "sum" res double)
)";

sim::ProgramImage add_image() {
  return rpc::make_procedure_image(
      kAddExport, {{"add", [](rpc::ProcCall& call) {
                      call.set_real("sum", call.real("x") + call.real("y"));
                    }}});
}

std::map<std::string, std::string> manifest_for(const char* spec_text) {
  RunResult result = check::run_check({{"config.spec", spec_text}});
  EXPECT_TRUE(result.ok());
  return check::load_manifest_json(check::run_result_to_json(result));
}

TEST(StrictManager, MatchingManifestPassesAndCallsWork) {
  obs::set_enabled(true);
  const std::uint64_t pass_before =
      obs::Registry::global().counter("rpc.manager.static_check_pass").value();

  sim::Cluster cluster;
  cluster.add_machine("sparc", "sun-sparc10", "lerc");
  cluster.add_machine("cray", "cray-ymp", "lerc");
  rpc::SystemOptions options;
  options.strict_static_check = true;
  options.static_manifest = manifest_for(kAddExport);
  rpc::SchoonerSystem system(cluster, "sparc", std::move(options));

  cluster.install_image("cray", "/npss/add", add_image());
  auto client = system.make_client("sparc", "strict-ok");
  client->contact_schx("cray", "/npss/add");
  auto add = client->import_proc("add", kAddImport);
  uts::ValueList out = add->call(
      {uts::Value::real(2), uts::Value::real(3), uts::Value::real(0)});
  EXPECT_DOUBLE_EQ(out[2].as_real(), 5.0);
  EXPECT_EQ(system.stats().static_check_failures, 0u);
  EXPECT_GT(
      obs::Registry::global().counter("rpc.manager.static_check_pass").value(),
      pass_before);
}

TEST(StrictManager, DriftedExportRejectedAtStartupBeforeAnyCall) {
  obs::set_enabled(true);
  const std::uint64_t fail_before =
      obs::Registry::global().counter("rpc.manager.static_check_fail").value();

  // The manifest was checked against a float result; the program actually
  // exports a double result — the classic silent recompile drift.
  const char* stale_spec = R"(
    export add prog(
      "x" val double,
      "y" val double,
      "sum" res float)
  )";
  sim::Cluster cluster;
  cluster.add_machine("sparc", "sun-sparc10", "lerc");
  cluster.add_machine("cray", "cray-ymp", "lerc");
  rpc::SystemOptions options;
  options.strict_static_check = true;
  options.static_manifest = manifest_for(stale_spec);
  rpc::SchoonerSystem system(cluster, "sparc", std::move(options));

  cluster.install_image("cray", "/npss/add", add_image());
  auto client = system.make_client("sparc", "strict-drift");
  EXPECT_THROW(client->contact_schx("cray", "/npss/add"),
               util::TypeMismatchError);
  EXPECT_EQ(system.stats().static_check_failures, 1u);
  EXPECT_GT(
      obs::Registry::global().counter("rpc.manager.static_check_fail").value(),
      fail_before);
}

TEST(StrictManager, UnlistedExportRejected) {
  const char* other_spec = R"(
    export mul prog("x" val double, "y" val double, "prod" res double)
  )";
  sim::Cluster cluster;
  cluster.add_machine("sparc", "sun-sparc10", "lerc");
  cluster.add_machine("cray", "cray-ymp", "lerc");
  rpc::SystemOptions options;
  options.strict_static_check = true;
  options.static_manifest = manifest_for(other_spec);
  rpc::SchoonerSystem system(cluster, "sparc", std::move(options));

  cluster.install_image("cray", "/npss/add", add_image());
  auto client = system.make_client("sparc", "strict-unlisted");
  EXPECT_THROW(client->contact_schx("cray", "/npss/add"),
               util::TypeMismatchError);
  EXPECT_EQ(system.stats().static_check_failures, 1u);
}

TEST(StrictManager, CompatibleDriftAdmittedWithStaleWarning) {
  // The program grew an appended parameter since uts_check ran. Old
  // imports still bind (footnote-1 subsequence), so the drift is
  // *compatible*: the Manager admits the export but flags the manifest as
  // stale — distinctly from an incompatible rejection.
  const char* grown_spec = R"(
    export add prog(
      "x" val double,
      "y" val double,
      "bias" val double,
      "sum" res double)
  )";
  sim::Cluster cluster;
  cluster.add_machine("sparc", "sun-sparc10", "lerc");
  cluster.add_machine("cray", "cray-ymp", "lerc");
  rpc::SystemOptions options;
  options.strict_static_check = true;
  options.static_manifest = manifest_for(kAddExport);
  rpc::SchoonerSystem system(cluster, "sparc", std::move(options));

  cluster.install_image(
      "cray", "/npss/add",
      rpc::make_procedure_image(
          grown_spec, {{"add", [](rpc::ProcCall& call) {
                          call.set_real("sum", call.real("x") +
                                                   call.real("y") +
                                                   call.real("bias"));
                        }}}));
  auto client = system.make_client("sparc", "strict-stale");
  EXPECT_NO_THROW(client->contact_schx("cray", "/npss/add"));
  auto add = client->import_proc("add", kAddImport);
  uts::ValueList out = add->call(
      {uts::Value::real(2), uts::Value::real(3), uts::Value::real(0)});
  EXPECT_DOUBLE_EQ(out[2].as_real(), 5.0);
  EXPECT_GE(system.stats().stale_manifest_warnings, 1u);
  EXPECT_EQ(system.stats().static_check_failures, 0u);
  EXPECT_EQ(system.stats().compat_rejects, 0u);
}

TEST(StrictManager, SpecHashMismatchWarnsStaleButAdmitsMatchingExport) {
  // The exporter stamps its spec text's sha256 into the registration; a
  // hash the manifest does not list means the spec file changed after
  // uts_check ran. With an unchanged export surface that is a warning
  // only — the distinction satellite: stale != incompatible.
  sim::Cluster cluster;
  cluster.add_machine("sparc", "sun-sparc10", "lerc");
  cluster.add_machine("cray", "cray-ymp", "lerc");
  rpc::SystemOptions options;
  options.strict_static_check = true;
  options.static_manifest = manifest_for(kAddExport);
  options.manifest_spec_hashes = {
      util::sha256_hex("# a different spec text entirely\n")};
  rpc::SchoonerSystem system(cluster, "sparc", std::move(options));

  cluster.install_image("cray", "/npss/add", add_image());
  auto client = system.make_client("sparc", "strict-hash");
  EXPECT_NO_THROW(client->contact_schx("cray", "/npss/add"));
  EXPECT_GE(system.stats().stale_manifest_warnings, 1u);
  EXPECT_EQ(system.stats().compat_rejects, 0u);

  // With the exporter's actual hash listed, no staleness is reported.
  sim::Cluster fresh_cluster;
  fresh_cluster.add_machine("sparc", "sun-sparc10", "lerc");
  fresh_cluster.add_machine("cray", "cray-ymp", "lerc");
  rpc::SystemOptions fresh;
  fresh.strict_static_check = true;
  fresh.static_manifest = manifest_for(kAddExport);
  fresh.manifest_spec_hashes = {util::sha256_hex(kAddExport)};
  rpc::SchoonerSystem fresh_system(fresh_cluster, "sparc", std::move(fresh));
  fresh_cluster.install_image("cray", "/npss/add", add_image());
  auto fresh_client = fresh_system.make_client("sparc", "fresh-hash");
  EXPECT_NO_THROW(fresh_client->contact_schx("cray", "/npss/add"));
  EXPECT_EQ(fresh_system.stats().stale_manifest_warnings, 0u);
}

TEST(StrictManager, OffByDefaultKeepsLegacyBehavior) {
  sim::Cluster cluster;
  cluster.add_machine("sparc", "sun-sparc10", "lerc");
  cluster.add_machine("cray", "cray-ymp", "lerc");
  rpc::SchoonerSystem system(cluster, "sparc");
  cluster.install_image("cray", "/npss/add", add_image());
  auto client = system.make_client("sparc", "lenient");
  EXPECT_NO_THROW(client->contact_schx("cray", "/npss/add"));
}

}  // namespace
}  // namespace npss
