// Mission/governor tests — §2.4: starting the engine and flying it
// through a flight profile, with closed-loop fuel control and the
// acceleration schedule protecting surge margin.
#include <gtest/gtest.h>

#include <cmath>

#include "tess/mission.hpp"

namespace npss::tess {
namespace {

TEST(Governor, HoldsTargetAtSteadyState) {
  F100Engine engine;
  FlightCondition sls;
  SteadyResult reference = engine.balance(1.0, sls);
  const double target = reference.performance.speeds[1];

  std::vector<MissionLeg> legs = {{"hold", 25.0, sls, target}};
  MissionResult r = fly_mission(engine, legs, reference.performance.speeds,
                                1.0, GovernorConfig{}, 0.05,
                                solvers::IntegratorKind::kModifiedEuler);
  const MissionSample& end = r.history.back();
  EXPECT_NEAR(end.performance.speeds[1], target, 20.0);
  // The closed-loop trim fuel matches the open-loop balance fuel.
  EXPECT_NEAR(end.wf, 1.0, 0.02);
}

TEST(Governor, SpoolUpReachesTargetWithoutSurge) {
  F100Engine engine;
  FlightCondition sls;
  SteadyResult idle = engine.balance(0.45, sls);
  SteadyResult cruise = engine.balance(1.0, sls);

  std::vector<MissionLeg> legs = {
      {"accel", 40.0, sls, cruise.performance.speeds[1]}};
  MissionResult r =
      fly_mission(engine, legs, idle.performance.speeds, 0.45,
                  GovernorConfig{}, 0.05,
                  solvers::IntegratorKind::kModifiedEuler);
  EXPECT_NEAR(r.history.back().performance.speeds[1],
              cruise.performance.speeds[1], 30.0);
  EXPECT_GT(r.min_surge_margin, 0.0)
      << "the acceleration schedule must keep the HPC off the surge line";
  EXPECT_GT(r.fuel_burned_kg, 10.0);
  EXPECT_LT(r.fuel_burned_kg, 80.0);
}

TEST(Governor, AccelScheduleLimitsFuelDuringTransient) {
  // Without the Wf/P3 ceiling, the same spool-up drives the HPC to its
  // surge clamp; the schedule is what preserves margin.
  F100Engine engine;
  FlightCondition sls;
  SteadyResult idle = engine.balance(0.45, sls);
  SteadyResult cruise = engine.balance(1.0, sls);
  std::vector<MissionLeg> legs = {
      {"accel", 40.0, sls, cruise.performance.speeds[1]}};

  GovernorConfig no_schedule;
  no_schedule.accel_wf_per_p3 = 1e9;  // effectively disabled
  no_schedule.rate_limit = 1.0;
  MissionResult raw =
      fly_mission(engine, legs, idle.performance.speeds, 0.45, no_schedule,
                  0.05, solvers::IntegratorKind::kModifiedEuler);

  MissionResult scheduled =
      fly_mission(engine, legs, idle.performance.speeds, 0.45,
                  GovernorConfig{}, 0.05,
                  solvers::IntegratorKind::kModifiedEuler);
  EXPECT_LT(raw.min_surge_margin, 0.005)
      << "unprotected acceleration should pin the surge line";
  EXPECT_GT(scheduled.min_surge_margin, raw.min_surge_margin);
}

TEST(Mission, MultiLegProfileTracksEachTarget) {
  F100Engine engine;
  SteadyResult start = engine.balance(0.55, {});
  std::vector<MissionLeg> legs = {
      {"takeoff", 30.0, FlightCondition{0, 0, 0}, 13900.0},
      {"climb", 25.0, FlightCondition{4000, 0.5, 0}, 13900.0},
      {"cruise", 25.0, FlightCondition{9000, 0.8, 0}, 13300.0},
  };
  MissionResult r =
      fly_mission(engine, legs, start.performance.speeds, 0.55,
                  GovernorConfig{}, 0.05,
                  solvers::IntegratorKind::kModifiedEuler);
  // Sample the end of each leg and check tracking.
  for (std::size_t li = 0; li < legs.size(); ++li) {
    const MissionSample* last_of_leg = nullptr;
    for (const MissionSample& s : r.history) {
      if (s.leg == li) last_of_leg = &s;
    }
    ASSERT_NE(last_of_leg, nullptr) << li;
    EXPECT_NEAR(last_of_leg->performance.speeds[1], legs[li].n2_target,
                60.0)
        << legs[li].name;
  }
  EXPECT_GT(r.fuel_burned_kg, 20.0);
}

TEST(Mission, EmptyProfileRejected) {
  F100Engine engine;
  EXPECT_THROW((void)fly_mission(engine, {}, {10000.0, 13000.0}, 1.0,
                                 GovernorConfig{}, 0.05,
                                 solvers::IntegratorKind::kModifiedEuler),
               util::ModelError);
}

TEST(PartPowerBalance, WholeThrottleRangeConverges) {
  // The continuation fallback makes deep part power balance reliable from
  // the design-point initial guess.
  F100Engine engine;
  FlightCondition sls;
  double last_n2 = 0.0;
  for (double wf : {0.35, 0.45, 0.60, 0.80, 1.0, 1.2}) {
    SteadyResult r = engine.balance(wf, sls);
    EXPECT_GT(r.performance.speeds[1], last_n2) << wf;
    EXPECT_GE(r.performance.surge_margins[1], 0.0) << wf;
    last_n2 = r.performance.speeds[1];
  }
}

TEST(PartPowerBalance, StartBleedHoldsSurgeMarginAtIdle) {
  FlightCondition sls;
  F100Config with_bleed;
  F100Config without;
  without.start_bleed_max = 0.0;
  F100Engine a(with_bleed), b(without);
  SteadyResult idle_with = a.balance(0.40, sls);
  SteadyResult idle_without = b.balance(0.40, sls);
  EXPECT_GT(idle_with.performance.surge_margins[1],
            idle_without.performance.surge_margins[1]);
}

}  // namespace
}  // namespace npss::tess
