// Integration tests of the prototype executive: the paper's Table 1
// (single adapted module remote across machine/network combinations) and
// Table 2 (six remote module instances on four machines) scenarios, run as
// steady-state balance + 1 s transient, verified against the all-local
// computation — exactly the paper's verification method (§3.4).
#include <gtest/gtest.h>

#include <cmath>
#include <future>

#include "npss/procedures.hpp"
#include "npss/remote_backend.hpp"
#include "tess/engine.hpp"

namespace npss {
namespace {

using glue::AdaptedComponent;
using glue::Placement;
using glue::RemoteBackend;
using tess::F100Engine;
using tess::FlightCondition;
using tess::SteadyMethod;

/// The paper's testbed: machines at NASA Lewis and U. Arizona joined by
/// the 1993 Internet (Tables 1 and 2).
void build_testbed(sim::Cluster& cluster) {
  cluster.add_machine("sparc-ua", "sun-sparc10", "uarizona");
  cluster.add_machine("sgi340-ua", "sgi-4d340", "uarizona");
  cluster.add_machine("sparc-lerc", "sun-sparc10", "lerc");
  cluster.add_machine("sgi480-lerc", "sgi-4d480", "lerc");
  cluster.add_machine("sgi420-lerc", "sgi-4d420", "lerc");
  cluster.add_machine("cray-lerc", "cray-ymp", "lerc");
  cluster.add_machine("convex-lerc", "convex-c220", "lerc");
  cluster.add_machine("rs6000-lerc", "ibm-rs6000", "lerc");
  cluster.set_site_link("lerc", "uarizona",
                        sim::link_profile("internet-wan"));
  cluster.set_intra_site_link(sim::link_profile("ethernet-lan"));
}

class NpssIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    build_testbed(cluster_);
    glue::install_tess_procedures_everywhere(cluster_);
    system_ = std::make_unique<rpc::SchoonerSystem>(cluster_, "sparc-ua");

    // Reference: the original local-compute-only run.
    F100Engine local;
    FlightCondition sls;
    auto steady = local.balance(1.0, sls);
    reference_speeds_ = steady.performance.speeds;
    reference_thrust_ = steady.performance.thrust;
    reference_t4_ = steady.performance.t4;
  }

  /// Run steady balance with the given backend placements and return the
  /// performance; loosened tolerances account for the single-precision
  /// UTS floats the paper's specs put on the wire.
  tess::SteadyResult run_remote(RemoteBackend& backend) {
    F100Engine engine;
    engine.set_hooks(backend.hooks());
    engine.set_solver_tolerances(5e-6, 1e-4);
    FlightCondition sls;
    return engine.balance(1.0, sls);
  }

  sim::Cluster cluster_;
  std::unique_ptr<rpc::SchoonerSystem> system_;
  std::vector<double> reference_speeds_;
  double reference_thrust_ = 0.0;
  double reference_t4_ = 0.0;
};

TEST_F(NpssIntegrationTest, Table1SingleModuleRemoteMatchesLocal) {
  // One adapted module at a time, on a WAN-remote machine (the hardest
  // Table 1 row): results must agree with the local run to single-float
  // precision.
  struct Case {
    AdaptedComponent component;
    int instances;
  };
  const Case cases[] = {
      {AdaptedComponent::kShaft, 2},
      {AdaptedComponent::kDuct, 2},
      {AdaptedComponent::kCombustor, 1},
      {AdaptedComponent::kNozzle, 1},
  };
  for (const Case& c : cases) {
    RemoteBackend backend(*system_, "sparc-ua");
    for (int i = 0; i < c.instances; ++i) {
      backend.place(c.component, i, Placement{"rs6000-lerc", ""});
    }
    tess::SteadyResult r = run_remote(backend);
    EXPECT_NEAR(r.performance.thrust / reference_thrust_, 1.0, 2e-4)
        << "component " << glue::adapted_component_name(c.component);
    EXPECT_NEAR(r.performance.t4 / reference_t4_, 1.0, 2e-4);
    EXPECT_GT(backend.total_calls(), 0);
  }
}

TEST_F(NpssIntegrationTest, Table2CombinedSixRemoteInstances) {
  // Table 2's exact placement: TESS on a Sparc 10 at U. Arizona;
  // combustor -> SGI 4D/340 (U. Arizona), ducts -> Cray Y-MP (LeRC),
  // nozzle -> SGI 4D/420 (LeRC), shafts -> IBM RS6000 (LeRC).
  RemoteBackend backend(*system_, "sparc-ua");
  backend.place(AdaptedComponent::kCombustor, 0, {"sgi340-ua", ""});
  backend.place(AdaptedComponent::kDuct, 0, {"cray-lerc", ""});
  backend.place(AdaptedComponent::kDuct, 1, {"cray-lerc", ""});
  backend.place(AdaptedComponent::kNozzle, 0, {"sgi420-lerc", ""});
  backend.place(AdaptedComponent::kShaft, 0, {"rs6000-lerc", ""});
  backend.place(AdaptedComponent::kShaft, 1, {"rs6000-lerc", ""});

  F100Engine engine;
  engine.set_hooks(backend.hooks());
  engine.set_solver_tolerances(5e-6, 1e-4);
  FlightCondition sls;

  // Newton-Raphson steady balance...
  tess::SteadyResult steady = engine.balance(1.0, sls);
  EXPECT_NEAR(steady.performance.thrust / reference_thrust_, 1.0, 5e-4);
  EXPECT_NEAR(steady.performance.speeds[0] / reference_speeds_[0], 1.0, 5e-4);
  EXPECT_NEAR(steady.performance.speeds[1] / reference_speeds_[1], 1.0, 5e-4);

  // ...then a one-second transient with the Improved Euler method (§3.4).
  tess::FuelSchedule throttle = [](double t) {
    return t < 0.1 ? 1.0 : 1.27;
  };
  tess::TransientResult remote_tr = engine.transient(
      steady.performance.speeds, throttle, sls, 1.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);

  // Reference transient, all-local, from the reference steady point.
  F100Engine local;
  tess::TransientResult local_tr = local.transient(
      reference_speeds_, throttle, sls, 1.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);

  const auto& remote_end = remote_tr.history.back().performance;
  const auto& local_end = local_tr.history.back().performance;
  EXPECT_NEAR(remote_end.speeds[0] / local_end.speeds[0], 1.0, 1e-3);
  EXPECT_NEAR(remote_end.speeds[1] / local_end.speeds[1], 1.0, 1e-3);
  EXPECT_NEAR(remote_end.thrust / local_end.thrust, 1.0, 2e-3);

  // Six remote instances were really exercised.
  auto counts = backend.call_counts();
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [label, n] : counts) {
    EXPECT_GT(n, 0) << label;
  }
}

TEST_F(NpssIntegrationTest, RemoteRunCostsVirtualTimeByNetworkDistance) {
  // The same remote component is cheaper on the LAN than across the WAN.
  auto run_with_placement = [&](const std::string& machine) {
    RemoteBackend backend(*system_, "sparc-ua");
    backend.place(AdaptedComponent::kCombustor, 0, {machine, ""});
    F100Engine engine;
    engine.set_hooks(backend.hooks());
    engine.set_solver_tolerances(5e-6, 1e-4);
    FlightCondition sls;
    backend.reset_clocks();
    engine.balance(1.0, sls);
    return backend.elapsed_virtual_us();
  };
  const util::SimTime lan = run_with_placement("sgi340-ua");
  const util::SimTime wan = run_with_placement("cray-lerc");
  EXPECT_GT(wan, 5 * lan);
}

TEST_F(NpssIntegrationTest, MigrationMidTransientKeepsResultsCorrect) {
  // §4.2: a long-running computation's procedure moves between machines
  // (scheduled downtime); the stateless shaft procedure migrates and the
  // transient completes with correct physics.
  RemoteBackend backend(*system_, "sparc-ua");
  backend.place(AdaptedComponent::kShaft, 0, {"rs6000-lerc", ""});
  F100Engine engine;
  engine.set_hooks(backend.hooks());
  engine.set_solver_tolerances(5e-6, 1e-4);
  FlightCondition sls;
  tess::SteadyResult steady = engine.balance(1.0, sls);

  tess::FuelSchedule throttle = [](double) { return 1.27; };
  // First half of the transient...
  tess::TransientResult first = engine.transient(
      steady.performance.speeds, throttle, sls, 0.5, 0.02,
      solvers::IntegratorKind::kModifiedEuler);
  // ...move the shaft computation to the Convex mid-run...
  backend.quit();  // would race a live line otherwise
  RemoteBackend backend2(*system_, "sparc-ua");
  backend2.place(AdaptedComponent::kShaft, 0, {"convex-lerc", ""});
  engine.set_hooks(backend2.hooks());
  // ...and finish.
  tess::TransientResult second = engine.transient(
      first.history.back().performance.speeds, throttle, sls, 0.5, 0.02,
      solvers::IntegratorKind::kModifiedEuler);

  F100Engine local;
  local.set_solver_tolerances(5e-6, 1e-4);
  tess::SteadyResult lsteady = local.balance(1.0, sls);
  tess::TransientResult ltr = local.transient(
      lsteady.performance.speeds, throttle, sls, 1.0, 0.02,
      solvers::IntegratorKind::kModifiedEuler);
  EXPECT_NEAR(second.history.back().performance.speeds[0] /
                  ltr.history.back().performance.speeds[0],
              1.0, 2e-3);
}

TEST_F(NpssIntegrationTest, AsyncCallsOverlapAcrossInstancesAndMatchSync) {
  // Two duct instances on two machines, each with its own client/line:
  // call_async may overlap them on the wire, and the results must equal
  // the synchronous path's exactly (same compiled plans both ways).
  RemoteBackend backend(*system_, "sparc-ua");
  backend.place(AdaptedComponent::kDuct, 0, {"sparc-lerc", ""});
  backend.place(AdaptedComponent::kDuct, 1, {"rs6000-lerc", ""});

  const uts::ValueList args0 = {
      uts::Value::real_array({102.0, 288.15, 101325.0, 20.0}),
      uts::Value::real(0.02), uts::Value::real_array({0, 0, 0, 0})};
  const uts::ValueList args1 = {
      uts::Value::real_array({95.0, 600.0, 250000.0, 20.0}),
      uts::Value::real(0.05), uts::Value::real_array({0, 0, 0, 0})};

  std::future<uts::ValueList> f0 =
      backend.call_async(AdaptedComponent::kDuct, 0, args0);
  std::future<uts::ValueList> f1 =
      backend.call_async(AdaptedComponent::kDuct, 1, args1);
  uts::ValueList r0 = f0.get();
  uts::ValueList r1 = f1.get();

  tess::ComponentHooks hooks = backend.hooks();
  tess::StationArray s0 =
      hooks.duct(0, {102.0, 288.15, 101325.0, 20.0}, 0.02);
  tess::StationArray s1 = hooks.duct(1, {95.0, 600.0, 250000.0, 20.0}, 0.05);
  std::vector<double> a0 = r0[2].as_real_vector();
  std::vector<double> a1 = r1[2].as_real_vector();
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a0[i], s0[i]) << "duct[0] station " << i;
    EXPECT_DOUBLE_EQ(a1[i], s1[i]) << "duct[1] station " << i;
  }

  // Unplaced instances have no line to fire on.
  EXPECT_THROW(
      (void)backend.call_async(AdaptedComponent::kNozzle, 0, args0),
      util::LookupError);
}

}  // namespace
}  // namespace npss
