// Tests of the UTS specification-language parser: the paper's §3.3 shaft
// specification verbatim, grammar coverage, comments, round-tripping, and
// malformed-input diagnostics.
#include <gtest/gtest.h>

#include "uts/spec.hpp"

namespace npss::uts {
namespace {

TEST(SpecParser, PaperShaftSpecificationParses) {
  // Verbatim from §3.3 of the paper.
  const char* text = R"(
    export setshaft prog(
        "ecom" val array[4] of float,
        "incom" val integer,
        "etur" val array[4] of float,
        "intur" val integer,
        "ecorr" res float)

    export shaft prog(
        "ecom" val array[4] of float,
        "incom" val integer,
        "etur" val array[4] of float,
        "intur" val integer,
        "ecorr" val float,
        "xspool" val float,
        "xmyi" val float,
        "dxspl" res float)
  )";
  SpecFile file = parse_spec(text);
  ASSERT_EQ(file.decls.size(), 2u);

  const ProcDecl& setshaft = file.find("setshaft");
  EXPECT_EQ(setshaft.kind, DeclKind::kExport);
  ASSERT_EQ(setshaft.signature.size(), 5u);
  EXPECT_EQ(setshaft.signature[0].name, "ecom");
  EXPECT_EQ(setshaft.signature[0].mode, ParamMode::kVal);
  EXPECT_EQ(setshaft.signature[0].type, Type::array(4, Type::floating()));
  EXPECT_EQ(setshaft.signature[4].mode, ParamMode::kRes);

  const ProcDecl& shaft = file.find("shaft");
  ASSERT_EQ(shaft.signature.size(), 8u);
  EXPECT_EQ(shaft.signature[7].name, "dxspl");
  EXPECT_EQ(shaft.signature[7].mode, ParamMode::kRes);
  EXPECT_EQ(shaft.signature[7].type, Type::floating());
}

TEST(SpecParser, AllSimpleTypes) {
  SpecFile file = parse_spec(R"(
    import p prog(
      "a" val float, "b" val double, "c" val integer,
      "d" val byte, "e" var string)
  )");
  const Signature& s = file.find("p").signature;
  EXPECT_EQ(s[0].type, Type::floating());
  EXPECT_EQ(s[1].type, Type::real_double());
  EXPECT_EQ(s[2].type, Type::integer());
  EXPECT_EQ(s[3].type, Type::byte());
  EXPECT_EQ(s[4].type, Type::string());
  EXPECT_EQ(s[4].mode, ParamMode::kVar);
}

TEST(SpecParser, NestedStructuredTypes) {
  SpecFile file = parse_spec(R"(
    export grid prog(
      "mesh" val array[3] of array[2] of double,
      "meta" res record "name": string;
                        "dims" : array[2] of integer end)
  )");
  const Signature& s = file.find("grid").signature;
  EXPECT_EQ(s[0].type,
            Type::array(3, Type::array(2, Type::real_double())));
  EXPECT_EQ(s[1].type,
            Type::record({{"name", Type::string()},
                          {"dims", Type::array(2, Type::integer())}}));
}

TEST(SpecParser, CommentsAndEmptyParamList) {
  SpecFile file = parse_spec(R"(
    # a procedure with no parameters
    export tick prog()   # trailing comment
  )");
  EXPECT_TRUE(file.find("tick").signature.empty());
}

TEST(SpecParser, RoundTripThroughDeclToString) {
  const char* text = R"(
    export shaft prog(
      "ecom" val array[4] of float,
      "meta" res record "n": integer; "s": string end)
  )";
  SpecFile file = parse_spec(text);
  std::string rendered = decl_to_string(file.decls[0]);
  SpecFile again = parse_spec(rendered);
  EXPECT_EQ(again.decls[0].name, file.decls[0].name);
  EXPECT_EQ(again.decls[0].kind, file.decls[0].kind);
  ASSERT_EQ(again.decls[0].signature.size(), file.decls[0].signature.size());
  for (std::size_t i = 0; i < file.decls[0].signature.size(); ++i) {
    EXPECT_EQ(again.decls[0].signature[i], file.decls[0].signature[i]);
  }
}

TEST(SpecParser, ExportToImportTextFlipsKind) {
  SpecFile exports = parse_spec(
      "export f prog(\"x\" val double)  export g prog(\"y\" res float)");
  SpecFile imports = parse_spec(export_to_import_text(exports));
  ASSERT_EQ(imports.decls.size(), 2u);
  EXPECT_EQ(imports.decls[0].kind, DeclKind::kImport);
  EXPECT_EQ(imports.decls[1].kind, DeclKind::kImport);
  EXPECT_EQ(imports.decls[0].signature, exports.decls[0].signature);
}

struct BadSpec {
  const char* text;
  const char* expect_fragment;
};

class SpecParserErrors : public ::testing::TestWithParam<BadSpec> {};

TEST_P(SpecParserErrors, MalformedInputDiagnosed) {
  try {
    (void)parse_spec(GetParam().text);
    FAIL() << "expected ParseError for: " << GetParam().text;
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().expect_fragment),
              std::string::npos)
        << "got: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpecParserErrors,
    ::testing::Values(
        BadSpec{"exprot f prog()", "expected 'export' or 'import'"},
        BadSpec{"export prog()", "expected keyword 'prog'"},
        BadSpec{"export f prog(", "expected quoted parameter name"},
        BadSpec{"export f prog(\"x\" byval float)", "expected 'val'"},
        BadSpec{"export f prog(\"x\" val floof)", "unknown type"},
        BadSpec{"export f prog(\"x\" val array[0] of float)",
                "array size must be positive"},
        BadSpec{"export f prog(\"x\" val array[4] float)",
                "expected keyword 'of'"},
        BadSpec{"export f prog(\"x\" val record \"a\": float)",
                "expected keyword 'end'"},
        BadSpec{"export f prog(\"x val float)", "unterminated string"},
        BadSpec{"export f prog(\"x\" val float", "expected ')'"},
        BadSpec{"export f prog() %", "unexpected character"}));

TEST(SpecParser, ErrorsCarryLinePositions) {
  try {
    (void)parse_spec("export f prog(\n  \"x\" val\n  floof)");
    FAIL();
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(SpecParser, LocatedParseRecordsDeclAndParamPositions) {
  ParsedSpec parsed = parse_spec_located(
      "export f prog(\n  \"a\" val float,\n  \"b\" res double)");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.file.decls.size(), 1u);
  const ProcDecl& decl = parsed.file.decls[0];
  EXPECT_EQ(decl.loc.line, 1);
  EXPECT_EQ(decl.loc.column, 1);
  ASSERT_EQ(decl.param_locs.size(), 2u);
  EXPECT_EQ(decl.param_loc(0).line, 2);
  EXPECT_EQ(decl.param_loc(0).column, 3);
  EXPECT_EQ(decl.param_loc(1).line, 3);
  EXPECT_EQ(decl.param_loc(1).column, 3);
  // Out-of-range index degrades to an unknown location, never a throw.
  EXPECT_FALSE(decl.param_loc(7).known());
}

struct BadLocatedSpec {
  const char* text;
  const char* code;
  int line;
  int column;
};

class SpecParserLocatedErrors
    : public ::testing::TestWithParam<BadLocatedSpec> {};

TEST_P(SpecParserLocatedErrors, IssueCodeAndPositionPinned) {
  ParsedSpec parsed = parse_spec_located(GetParam().text);
  ASSERT_FALSE(parsed.issues.empty()) << GetParam().text;
  bool found = false;
  for (const SpecIssue& issue : parsed.issues) {
    if (issue.code != GetParam().code) continue;
    found = true;
    EXPECT_EQ(issue.loc.line, GetParam().line) << issue.message;
    EXPECT_EQ(issue.loc.column, GetParam().column) << issue.message;
  }
  EXPECT_TRUE(found) << "no " << GetParam().code << " issue for: "
                     << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpecParserLocatedErrors,
    ::testing::Values(
        // Recoverable lint findings keep their own codes and point at the
        // offending token, not the start of the declaration.
        BadLocatedSpec{"export f prog(\n  \"x\" val array[0] of float)",
                       "UTS003", 2, 17},
        BadLocatedSpec{"export f prog(\"x\" val array[0] of float)",
                       "UTS003", 1, 29},
        BadLocatedSpec{"export f prog(\n  \"x\" val record end)", "UTS005",
                       2, 11},
        // Hard syntax errors surface as a fatal UTS010 at the failure
        // point.
        BadLocatedSpec{"export f prog(\n  \"x\" val\n  floof)", "UTS010", 3,
                       3},
        BadLocatedSpec{"export f prog(\"x val float)", "UTS010", 1, 15},
        BadLocatedSpec{"export f prog() %", "UTS010", 1, 17},
        BadLocatedSpec{
            "export f prog(\"x\" val array[99999999999999999999] of float)",
            "UTS010", 1, 29},
        // Nested structured types: the position must pin the *inner*
        // offending token, not the outer parameter or record.
        BadLocatedSpec{"export f prog(\n  \"s\" val record\n    \"inner\": "
                       "record\n      \"xs\": array[0] of float\n    end\n  "
                       "end)",
                       "UTS003", 4, 19},
        BadLocatedSpec{"export f prog(\n  \"s\" val record\n    \"inner\": "
                       "record end\n  end)",
                       "UTS005", 3, 14},
        BadLocatedSpec{"export f prog(\n  \"rows\" val array[3] of record\n  "
                       "  \"w\": floof\n  end)",
                       "UTS010", 3, 10},
        BadLocatedSpec{"export f prog(\n  \"rows\" val array[2] of record\n  "
                       "  \"xs\": array[0] of double\n  end)",
                       "UTS003", 3, 17}));

TEST(SpecParser, LocatedParseRecoversEarlierDeclsAfterSyntaxError) {
  ParsedSpec parsed = parse_spec_located(
      "export good prog(\"x\" val double)\nexport broken prog(\"y\" val "
      "floof)");
  EXPECT_FALSE(parsed.ok());
  ASSERT_EQ(parsed.file.decls.size(), 1u);
  EXPECT_EQ(parsed.file.decls[0].name, "good");
  ASSERT_EQ(parsed.issues.size(), 1u);
  EXPECT_EQ(parsed.issues[0].code, "UTS010");
  EXPECT_TRUE(parsed.issues[0].fatal);
}

TEST(SpecParser, IntegerLiteralOverflowIsParseErrorNotCrash) {
  try {
    (void)parse_spec(
        "export f prog(\"x\" val array[99999999999999999999] of float)");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
        << e.what();
  }
}

TEST(SpecFileApi, FindAndContains) {
  SpecFile file = parse_spec("export f prog()");
  EXPECT_TRUE(file.contains("f"));
  EXPECT_FALSE(file.contains("g"));
  EXPECT_THROW((void)file.find("g"), util::LookupError);
}

}  // namespace
}  // namespace npss::uts
