// Unit tests of the NPSS glue layer: station/energy value conversion, the
// TESS flow modules' widget panels and port behaviour, interactive
// re-placement (changing the machine widget mid-session re-contacts the
// Manager on a fresh line), and the runtime context guard rails.
#include <gtest/gtest.h>

#include "flow/network.hpp"
#include "npss/modules.hpp"
#include "npss/network_driver.hpp"
#include "npss/procedures.hpp"
#include "npss/runtime.hpp"

namespace npss::glue {
namespace {

TEST(StationValues, RoundTripThroughRecord) {
  tess::GasState s{102.5, 414.2, 3.1e5, 0.021};
  uts::Value v = station_to_value(s);
  EXPECT_NO_THROW(uts::check_value(station_type(), v));
  tess::GasState back = station_from_value(v);
  EXPECT_DOUBLE_EQ(back.W, s.W);
  EXPECT_DOUBLE_EQ(back.Tt, s.Tt);
  EXPECT_DOUBLE_EQ(back.Pt, s.Pt);
  EXPECT_DOUBLE_EQ(back.far, s.far);
}

TEST(StationValues, EnergyArrayRoundTrip) {
  tess::StationArray e{1.3e7, 102.0, 1.27e5, 0.86};
  uts::Value v = energy_to_value(e);
  EXPECT_NO_THROW(uts::check_value(energy_type(), v));
  tess::StationArray back = energy_from_value(v);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(back[i], e[i]);
}

TEST(TessModules, WidgetPanelsMatchThePaper) {
  register_tess_modules();
  flow::Network net;
  flow::Module& shaft = net.add("shaft", "tess-shaft");
  // Figure 2's low speed shaft control panel.
  EXPECT_TRUE(shaft.has_widget("moment-inertia"));
  EXPECT_TRUE(shaft.has_widget("spool-speed"));
  EXPECT_TRUE(shaft.has_widget("spool-speed-op"));
  // The §3.3 placement widgets on every adapted module.
  for (const char* type :
       {"tess-shaft", "tess-duct", "tess-combustor", "tess-nozzle"}) {
    flow::Module& m = net.add(std::string("m-") + type, type);
    EXPECT_TRUE(m.has_widget("machine")) << type;
    EXPECT_TRUE(m.has_widget("path")) << type;
    EXPECT_EQ(m.widget("machine").text(), kLocalMachine) << type;
  }
  // ...but not on the unadapted ones.
  flow::Module& fan = net.add("fan", "tess-compressor");
  EXPECT_FALSE(fan.has_widget("machine"));
}

TEST(TessModules, CompressorNeedsAValidShaftReference) {
  register_tess_modules();
  flow::Network net;
  flow::Module& comp = net.add("comp", "tess-compressor");
  net.add("inlet", "tess-inlet");
  net.connect("inlet", "out", "comp", "in");
  comp.widget("shaft").set_text("no-such-module");
  EXPECT_THROW(net.evaluate(), util::GraphError);
  // Pointing it at a non-shaft module is also diagnosed.
  net.add("other", "tess-inlet");
  comp.widget("shaft").set_text("other");
  EXPECT_THROW(net.evaluate(), util::GraphError);
}

TEST(TessModules, BrowserWidgetSelectsPerformanceMaps) {
  register_tess_modules();
  flow::Network net;
  net.add("sys", "tess-system");
  flow::Module& inlet = net.add("inlet", "tess-inlet");
  flow::Module& shaft = net.add("shaft", "tess-shaft");
  flow::Module& comp = net.add("comp", "tess-compressor");
  net.connect("inlet", "out", "comp", "in");
  comp.widget("shaft").set_text("shaft");
  shaft.widget("spool-speed").set_real(10400.0);
  inlet.widget("W").set_real(100.0);

  comp.widget("map").set_text("f100_fan.map");
  net.evaluate();
  double pr_fan = station_from_value(*comp.outputs()[0].value).Pt /
                  station_from_value(*inlet.outputs()[0].value).Pt;

  comp.widget("map").set_text("f100_hpc.map");
  net.evaluate();
  double pr_hpc = station_from_value(*comp.outputs()[0].value).Pt /
                  station_from_value(*inlet.outputs()[0].value).Pt;
  EXPECT_NE(pr_fan, pr_hpc) << "the browser selection changes the physics";

  comp.widget("map").set_text("missing.map");
  EXPECT_THROW(net.evaluate(), util::ModelError);
}

TEST(TessModules, RemoteComputationNeedsConfiguredRuntime) {
  clear_npss_runtime();
  register_tess_modules();
  flow::Network net;
  flow::Module& duct = net.add("duct", "tess-duct");
  net.add("inlet", "tess-inlet");
  net.connect("inlet", "out", "duct", "in");
  // With no runtime the machine widget offers only <local>...
  EXPECT_THROW(duct.widget("machine").select("cray"), util::WidgetError);
  // ...and local computation works fine.
  EXPECT_NO_THROW(net.evaluate());
}

class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.add_machine("ws", "sun-sparc10", "a");
    cluster_.add_machine("m1", "sgi-4d480", "a");
    cluster_.add_machine("m2", "ibm-rs6000", "a");
    install_tess_procedures_everywhere(cluster_);
    system_ = std::make_unique<rpc::SchoonerSystem>(cluster_, "ws");
    configure_npss_runtime(cluster_, *system_, "ws");
  }
  void TearDown() override { clear_npss_runtime(); }

  sim::Cluster cluster_;
  std::unique_ptr<rpc::SchoonerSystem> system_;
};

TEST_F(PlacementTest, ChangingTheMachineWidgetRecontacts) {
  register_tess_modules();
  flow::Network net;
  flow::Module& duct = net.add("duct", "tess-duct");
  net.add("inlet", "tess-inlet");
  net.connect("inlet", "out", "duct", "in");

  duct.widget("machine").select("m1");
  net.evaluate();
  const auto after_first = system_->stats();
  EXPECT_EQ(after_first.processes_started, 1u);

  // Interactive user placement (§4.2): pick another machine; the module
  // quits its old line and contacts a new one.
  duct.widget("machine").select("m2");
  net.evaluate();
  const auto after_second = system_->stats();
  EXPECT_EQ(after_second.processes_started, 2u);
  EXPECT_EQ(after_second.lines_shut_down,
            after_first.lines_shut_down + 1);

  // Back to local: destroy() on removal quits the remaining line.
  const auto before_removal = system_->stats().lines_shut_down;
  net.remove("duct");
  EXPECT_EQ(system_->stats().lines_shut_down, before_removal + 1);
}

TEST_F(PlacementTest, ZoomedDuctPathWorksInTheNetwork) {
  register_tess_modules();
  flow::Network net;
  F100NetworkNames names = build_f100_network(net);
  net.module(names.tailpipe).widget("machine").select("m1");
  net.module(names.tailpipe).widget("path").set_text(kHifiDuctPath);
  NetworkEngineDriver driver(net);
  driver.set_tolerances(5e-6, 1e-4);
  glue::NetworkSteadyResult zoomed = driver.balance(1.0);
  EXPECT_GT(zoomed.thrust, 0.0);

  // The level-1 network for comparison.
  flow::Network net1;
  build_f100_network(net1);
  NetworkEngineDriver driver1(net1);
  glue::NetworkSteadyResult level1 = driver1.balance(1.0);
  EXPECT_NEAR(zoomed.thrust / level1.thrust, 1.0, 0.05);
}

}  // namespace
}  // namespace npss::glue
