// Tests of the real-socket transport: Schooner wire frames over actual
// loopback TCP — the transport a present-day deployment would use where
// the paper's testbed used 1993 TCP/IP stacks. The marshaling stack is
// identical to the virtual-cluster path, including heterogeneity (the
// server can declare a Cray personality) and subset imports.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <thread>

#include "rpc/tcp_transport.hpp"
#include "tess/components.hpp"

namespace npss::rpc {
namespace {

using uts::Value;

const char* kShaftSpec = R"(
  export shaft prog(
      "ecom" val array[4] of float,
      "incom" val integer,
      "etur" val array[4] of float,
      "intur" val integer,
      "ecorr" val float,
      "xspool" val float,
      "xmyi" val float,
      "dxspl" res float)
)";

ProcedureDef shaft_def() {
  return {"shaft", [](ProcCall& call) {
            std::vector<double> ecom = call.reals("ecom");
            std::vector<double> etur = call.reals("etur");
            call.set_real(
                "dxspl",
                tess::shaft(ecom.data(),
                            static_cast<int>(call.integer("incom")),
                            etur.data(),
                            static_cast<int>(call.integer("intur")),
                            call.real("ecorr"), call.real("xspool"),
                            call.real("xmyi")));
          }};
}

TEST(TcpTransport, ShaftCallOverRealSockets) {
  TcpProcedureHost host(kShaftSpec, {shaft_def()}, "ibm-rs6000");
  ASSERT_GT(host.port(), 0);

  TcpRemoteProc shaft("127.0.0.1", host.port(), "shaft",
                      "import shaft prog("
                      "\"ecom\" val array[4] of float,"
                      "\"incom\" val integer,"
                      "\"etur\" val array[4] of float,"
                      "\"intur\" val integer,"
                      "\"ecorr\" val float,"
                      "\"xspool\" val float,"
                      "\"xmyi\" val float,"
                      "\"dxspl\" res float)",
                      "sun-sparc10");
  uts::ValueList out = shaft.call(
      {Value::real_array({1.0e6, 100.0, 1.0e4, 0.85}), Value::integer(1),
       Value::real_array({1.2e6, 100.0, 1.2e4, 0.88}), Value::integer(1),
       Value::real(1.0), Value::real(10000.0), Value::real(40.0),
       Value::real(0)});

  const double ecom[4] = {1.0e6, 100.0, 1.0e4, 0.85};
  const double etur[4] = {1.2e6, 100.0, 1.2e4, 0.88};
  const double local = tess::shaft(ecom, 1, etur, 1, 1.0, 10000.0, 40.0);
  EXPECT_NEAR(out[7].as_real() / local, 1.0, 1e-5);
  EXPECT_EQ(host.calls(), 1);
}

TEST(TcpTransport, ManySequentialCallsOnOneConnection) {
  TcpProcedureHost host(
      "export inc prog(\"x\" val integer, \"y\" res integer)",
      {{"inc", [](ProcCall& c) {
          c.set("y", Value::integer(c.integer("x") + 1));
        }}},
      "sun-sparc10");
  TcpRemoteProc inc("127.0.0.1", host.port(), "inc",
                    "import inc prog(\"x\" val integer, \"y\" res integer)",
                    "sun-sparc10");
  for (int i = 0; i < 200; ++i) {
    uts::ValueList out = inc.call({Value::integer(i), Value::integer(0)});
    ASSERT_EQ(out[1].as_integer(), i + 1);
  }
  EXPECT_EQ(host.calls(), 200);
}

TEST(TcpTransport, ConcurrentClientsAreServedIndependently) {
  TcpProcedureHost host(
      "export square prog(\"x\" val double, \"y\" res double)",
      {{"square", [](ProcCall& c) {
          c.set_real("y", c.real("x") * c.real("x"));
        }}},
      "sun-sparc10");
  std::vector<std::thread> clients;
  std::array<std::atomic<bool>, 6> ok{};
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&, t] {
      TcpRemoteProc square(
          "127.0.0.1", host.port(), "square",
          "import square prog(\"x\" val double, \"y\" res double)",
          "sun-sparc10");
      bool all = true;
      for (int i = 0; i < 50; ++i) {
        const double x = t * 100.0 + i;
        uts::ValueList out = square.call({Value::real(x), Value::real(0)});
        all = all && out[1].as_real() == x * x;
      }
      ok[t] = all;
    });
  }
  for (auto& c : clients) c.join();
  for (const std::atomic<bool>& b : ok) EXPECT_TRUE(b.load());
  EXPECT_EQ(host.calls(), 300);
}

TEST(TcpTransport, RemoteErrorsArriveTyped) {
  TcpProcedureHost host(
      "export root prog(\"x\" val double, \"y\" res double)",
      {{"root", [](ProcCall& c) {
          if (c.real("x") < 0) throw util::ModelError("negative");
          c.set_real("y", std::sqrt(c.real("x")));
        }}},
      "sun-sparc10");
  TcpRemoteProc root("127.0.0.1", host.port(), "root",
                     "import root prog(\"x\" val double, \"y\" res double)",
                     "sun-sparc10");
  EXPECT_DOUBLE_EQ(root.call({Value::real(9), Value::real(0)})[1].as_real(),
                   3.0);
  EXPECT_THROW(root.call({Value::real(-4), Value::real(0)}),
               util::ModelError);
  // The connection survives an application error.
  EXPECT_DOUBLE_EQ(root.call({Value::real(16), Value::real(0)})[1].as_real(),
                   4.0);
}

TEST(TcpTransport, UnknownProcedureAndBadSignature) {
  TcpProcedureHost host(
      "export f prog(\"x\" val double)",
      {{"f", [](ProcCall&) {}}}, "sun-sparc10");
  TcpRemoteProc ghost("127.0.0.1", host.port(), "g",
                      "import g prog(\"x\" val double)", "sun-sparc10");
  EXPECT_THROW(ghost.call({Value::real(1)}), util::LookupError);

  TcpRemoteProc wrong("127.0.0.1", host.port(), "f",
                      "import f prog(\"x\" val integer)", "sun-sparc10");
  EXPECT_THROW(wrong.call({Value::integer(1)}), util::TypeMismatchError);
}

TEST(TcpTransport, CrayPersonalityQuantizesOnTheServer) {
  // The server declares the Cray architecture: its values pass through
  // 48-bit-mantissa words, so a fine double perturbation vanishes there.
  TcpProcedureHost host(
      "export echo prog(\"x\" var double)",
      {{"echo", [](ProcCall&) {}}}, "cray-ymp");
  TcpRemoteProc echo("127.0.0.1", host.port(), "echo",
                     "import echo prog(\"x\" var double)", "sun-sparc10");
  const double fine = 1.0 + std::ldexp(1.0, -52);
  uts::ValueList out = echo.call({Value::real(fine)});
  EXPECT_EQ(out[0].as_real(), 1.0) << "Cray word cannot hold 2^-52";
}

TEST(TcpTransport, PipelinedAsyncCallsAllComplete) {
  TcpProcedureHost host(
      "export inc prog(\"x\" val integer, \"y\" res integer)",
      {{"inc", [](ProcCall& c) {
          c.set("y", Value::integer(c.integer("x") + 1));
        }}},
      "sun-sparc10");
  TcpRemoteProc inc("127.0.0.1", host.port(), "inc",
                    "import inc prog(\"x\" val integer, \"y\" res integer)",
                    "sun-sparc10");
  // Issue a window of calls before reading any reply: they pipeline over
  // the shared connection and replies are matched back by seq.
  std::vector<PendingTcpCall> pending;
  pending.reserve(64);
  for (int i = 0; i < 64; ++i) {
    pending.push_back(inc.call_async({Value::integer(i), Value::integer(0)}));
  }
  for (int i = 0; i < 64; ++i) {
    CallResult& result = pending[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    EXPECT_EQ(result.values[1].as_integer(), i + 1);
  }
  EXPECT_EQ(host.calls(), 64);
}

TEST(TcpTransport, StubsToOneHostShareThePooledConnection) {
  TcpProcedureHost host(
      "export inc prog(\"x\" val integer, \"y\" res integer)",
      {{"inc", [](ProcCall& c) {
          c.set("y", Value::integer(c.integer("x") + 1));
        }}},
      "sun-sparc10");
  TcpRemoteProc a("127.0.0.1", host.port(), "inc",
                  "import inc prog(\"x\" val integer, \"y\" res integer)",
                  "sun-sparc10");
  TcpRemoteProc b("127.0.0.1", host.port(), "inc",
                  "import inc prog(\"x\" val integer, \"y\" res integer)",
                  "sun-sparc10");
  EXPECT_EQ(a.call({Value::integer(1), Value::integer(0)})[1].as_integer(), 2);
  EXPECT_EQ(b.call({Value::integer(2), Value::integer(0)})[1].as_integer(), 3);
  // One pooled channel per host:port — both stubs rode the same socket.
  auto c1 = bus::TcpBus::instance().channel("127.0.0.1", host.port());
  auto c2 = bus::TcpBus::instance().channel("127.0.0.1", host.port());
  EXPECT_EQ(c1.get(), c2.get());
  EXPECT_EQ(host.calls(), 2);
}

TEST(TcpTransport, ConnectionToNowhereFailsFast) {
  EXPECT_THROW(TcpRemoteProc("127.0.0.1", 1, "f",
                             "import f prog(\"x\" val double)",
                             "sun-sparc10"),
               util::CallError);
}

}  // namespace
}  // namespace npss::rpc
