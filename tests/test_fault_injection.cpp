// The fault-tolerant call path end to end: seeded deterministic link
// faults (drop/duplicate/delay), crash events, CallOptions/CallResult
// deadline + retry semantics, migration-based failover, glue-level local
// fallback, and the legacy throwing shim's unchanged behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "npss/procedures.hpp"
#include "npss/remote_backend.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "rpc/schooner.hpp"
#include "sim/network.hpp"

namespace npss {
namespace {

using rpc::CallOptions;
using rpc::CallResult;
using uts::Value;

const char* kEchoSpec =
    "export echo prog(\"x\" val double, \"y\" res double)";
const char* kEchoImport =
    "import echo prog(\"x\" val double, \"y\" res double)";

sim::ProgramImage echo_image() {
  return rpc::make_procedure_image(
      kEchoSpec,
      {{"echo", [](rpc::ProcCall& c) { c.set_real("y", 2.0 * c.real("x")); }}});
}

/// Two-site fixture: client + manager at "lerc", the echo server across
/// the faulted internet-wan link at "ua".
class FaultPathTest : public ::testing::Test {
 protected:
  void SetUp() override { build(); }

  void build() {
    system_.reset();
    cluster_ = std::make_unique<sim::Cluster>();
    cluster_->add_machine("avs", "sun-sparc10", "lerc");
    cluster_->add_machine("far", "sgi-4d480", "ua");
    cluster_->add_machine("spare", "ibm-rs6000", "ua");
    cluster_->set_site_link("lerc", "ua", sim::link_profile("internet-wan"));
    cluster_->install_image("far", "/bin/echo", echo_image());
    cluster_->install_image("spare", "/bin/echo", echo_image());
    system_ = std::make_unique<rpc::SchoonerSystem>(*cluster_, "avs");
  }

  CallOptions wan_options() {
    CallOptions opts;
    opts.deadline_us = 5'000'000;  // 5 s of virtual time
    opts.max_attempts = 4;
    opts.idempotent = true;        // echo is pure
    opts.host_grace_ms = 25;       // keep dropped-frame detection fast
    return opts;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<rpc::SchoonerSystem> system_;
};

TEST(FaultInjectorTest, ScheduleIsAPureFunctionOfSeedLinkAndIndex) {
  sim::FaultSpec spec;
  spec.drop_rate = 0.2;
  spec.duplicate_rate = 0.1;
  spec.delay_rate = 0.1;
  spec.delay_us = 500;

  sim::FaultInjector a, b;
  a.set_seed(42);
  b.set_seed(42);
  a.set_link_faults("internet-wan", spec);
  b.set_link_faults("internet-wan", spec);

  // Lookahead equals the consumed schedule, and two same-seed injectors
  // agree decision by decision.
  for (int i = 0; i < 200; ++i) {
    util::SimTime delay = 0;
    sim::FaultAction lookahead = a.decision_at("internet-wan", i);
    EXPECT_EQ(lookahead, a.next("internet-wan", &delay)) << "index " << i;
    EXPECT_EQ(lookahead, b.decision_at("internet-wan", i)) << "index " << i;
  }

  // A different seed produces a different schedule (some index differs).
  sim::FaultInjector c;
  c.set_seed(43);
  c.set_link_faults("internet-wan", spec);
  bool differs = false;
  for (int i = 0; i < 200 && !differs; ++i) {
    differs = c.decision_at("internet-wan", i) !=
              a.decision_at("internet-wan", i);
  }
  EXPECT_TRUE(differs);

  // Per-link independence: another link sees its own schedule.
  sim::FaultInjector d;
  d.set_seed(42);
  d.set_link_faults("ethernet-lan", spec);
  bool link_differs = false;
  for (int i = 0; i < 200 && !link_differs; ++i) {
    link_differs = d.decision_at("ethernet-lan", i) !=
                   a.decision_at("internet-wan", i);
  }
  EXPECT_TRUE(link_differs);

  // The observed mix tracks the configured rates (hash quality check).
  sim::FaultInjector::Stats st = a.stats();
  EXPECT_GT(st.dropped, 20u);
  EXPECT_LT(st.dropped, 60u);
  EXPECT_GT(st.duplicated + st.delayed, 20u);
}

TEST_F(FaultPathTest, SameSeedReproducesDropScheduleAndAttemptCounts) {
  // Two full runs from scratch with the same fault seed must produce the
  // identical per-call attempt trace and identical fault tallies.
  auto run_once = [this]() {
    build();
    auto client = system_->make_client("avs", "det");
    client->contact_schx("far", "/bin/echo");
    auto echo = client->import_proc("echo", kEchoImport);

    // Faults go live only after setup so the spawn handshake cannot be
    // dropped; the two runs share the same send order from here on.
    cluster_->set_fault_seed(2026);
    sim::FaultSpec spec;
    spec.drop_rate = 0.10;
    cluster_->set_link_faults("internet-wan", spec);

    std::vector<int> attempts;
    CallOptions opts = wan_options();
    for (int i = 0; i < 40; ++i) {
      CallResult r = echo->call({Value::real(i), Value::real(0)}, opts);
      EXPECT_TRUE(r.ok()) << "call " << i << ": " << r.status.to_string();
      if (r.ok()) {
        EXPECT_DOUBLE_EQ(r.values[1].as_real(), 2.0 * i);
      }
      attempts.push_back(r.attempt_count());
    }
    auto stats = cluster_->fault_stats();
    client->quit();
    return std::make_pair(attempts, stats.dropped);
  };

  auto [attempts1, dropped1] = run_once();
  auto [attempts2, dropped2] = run_once();
  EXPECT_EQ(attempts1, attempts2);
  EXPECT_EQ(dropped1, dropped2);
  EXPECT_GT(dropped1, 0u);  // the seed actually exercised the drop path
}

TEST_F(FaultPathTest, DeadlineExceededComesBackAsStatusNotHang) {
  // 100% loss: every attempt times out at the transport wait; the call
  // returns kDeadlineExceeded with the full attempt trace, and each
  // timed-out attempt charged its virtual budget to the caller's clock.
  cluster_->set_fault_seed(7);
  sim::FaultSpec spec;
  spec.drop_rate = 1.0;

  auto client = system_->make_client("avs", "dead");
  client->contact_schx("far", "/bin/echo");
  auto echo = client->import_proc("echo", kEchoImport);
  // Bind + marshal once while the link is clean, then break the link.
  CallResult warm = echo->call({Value::real(1), Value::real(0)},
                               wan_options());
  ASSERT_TRUE(warm.ok());
  cluster_->set_link_faults("internet-wan", spec);

  CallOptions opts = wan_options();
  opts.max_attempts = 3;
  CallResult r = echo->call({Value::real(2), Value::real(0)}, opts);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), util::ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(r.attempt_count(), 3);
  EXPECT_GT(r.virtual_us, 0);
  cluster_->clear_faults();
  client->quit();
}

TEST_F(FaultPathTest, FivePercentWanLossCompletesEveryIdempotentCall) {
  // The availability claim: under 5% injected frame loss on the wan, a
  // retrying idempotent caller completes every call — no hangs, no
  // surfaced failures — and at least one call needed a retry.
  auto client = system_->make_client("avs", "wan");
  client->contact_schx("far", "/bin/echo");
  auto echo = client->import_proc("echo", kEchoImport);

  cluster_->set_fault_seed(11);
  sim::FaultSpec spec;
  spec.drop_rate = 0.05;
  cluster_->set_link_faults("internet-wan", spec);

  int retried = 0;
  CallOptions opts = wan_options();
  for (int i = 0; i < 60; ++i) {
    CallResult r = echo->call({Value::real(i), Value::real(0)}, opts);
    ASSERT_TRUE(r.ok()) << "call " << i << ": " << r.status.to_string();
    EXPECT_DOUBLE_EQ(r.values[1].as_real(), 2.0 * i);
    if (r.attempt_count() > 1) ++retried;
  }
  EXPECT_GT(cluster_->fault_stats().dropped, 0u);
  EXPECT_GT(retried, 0);
  client->quit();
}

TEST_F(FaultPathTest, DuplicateAndDelayFaultsNeverCorruptReplies) {
  // Duplicated reply frames must be discarded by the abandoned-seq
  // filter, and delayed frames only shift virtual time — every call still
  // returns the right value through the legacy throwing surface.
  auto client = system_->make_client("avs", "dup");
  client->contact_schx("far", "/bin/echo");
  auto echo = client->import_proc("echo", kEchoImport);

  cluster_->set_fault_seed(5);
  sim::FaultSpec spec;
  spec.duplicate_rate = 0.25;
  spec.delay_rate = 0.25;
  spec.delay_us = 40'000;
  cluster_->set_link_faults("internet-wan", spec);

  for (int i = 0; i < 50; ++i) {
    uts::ValueList out = echo->call({Value::real(i), Value::real(0)});
    EXPECT_DOUBLE_EQ(out[1].as_real(), 2.0 * i);
  }
  auto stats = cluster_->fault_stats();
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.delayed, 0u);
  client->quit();
}

TEST_F(FaultPathTest, CrashedServerFailsOverByMigration) {
  auto client = system_->make_client("avs", "failover");
  rpc::StartResult started = client->contact_schx("far", "/bin/echo");
  auto echo = client->import_proc("echo", kEchoImport);
  ASSERT_TRUE(echo->call({Value::real(3), Value::real(0)},
                         wan_options()).ok());

  // Kill the server process mid-run (no protocol goodbye).
  cluster_->crash_process(started.address);
  EXPECT_EQ(cluster_->crashes(), 1u);

  CallOptions opts = wan_options();
  opts.failover_machine = "spare";
  CallResult r = echo->call({Value::real(4), Value::real(0)}, opts);
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_TRUE(r.failed_over);
  EXPECT_DOUBLE_EQ(r.values[1].as_real(), 8.0);
  // Attempts against the dead address precede the post-failover success.
  EXPECT_GE(r.attempt_count(), 2);

  // The migrated placement serves subsequent calls without failover.
  CallResult again = echo->call({Value::real(5), Value::real(0)}, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.failed_over);
  EXPECT_EQ(again.attempt_count(), 1);
  client->quit();
}

TEST_F(FaultPathTest, FailoverToIncompatibleReplicaIsRefusedByCompatGate) {
  // The spare machine carries a *drifted* echo build whose export surface
  // is incompatible with the signature the surviving clients bound ("x"
  // became integer). The Manager's move-compat gate must refuse the
  // migration, dismiss the replica, and return a clean error — never let
  // a call be mis-marshaled into the wrong layout.
  cluster_->install_image(
      "spare", "/bin/echo",
      rpc::make_procedure_image(
          "export echo prog(\"x\" val integer, \"y\" res double)",
          {{"echo", [](rpc::ProcCall& c) {
              c.set_real("y", static_cast<double>(2 * c.integer("x")));
            }}}));

  auto client = system_->make_client("avs", "compat-reject");
  rpc::StartResult started = client->contact_schx("far", "/bin/echo");
  auto echo = client->import_proc("echo", kEchoImport);
  ASSERT_TRUE(
      echo->call({Value::real(3), Value::real(0)}, wan_options()).ok());

  cluster_->crash_process(started.address);

  CallOptions opts = wan_options();
  opts.failover_machine = "spare";
  CallResult r = echo->call({Value::real(4), Value::real(0)}, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), util::ErrorCode::kUnavailable);
  EXPECT_NE(r.status.message().find("failover"), std::string::npos)
      << r.status.to_string();

  // The refused sch_move shows up in the attempt trace...
  ASSERT_GE(r.attempt_count(), 2);
  const rpc::CallAttempt& last = r.attempts.back();
  EXPECT_NE(last.address.find("sch_move -> spare"), std::string::npos);
  EXPECT_FALSE(last.status.is_ok());

  // ...and the Manager counted the rejection.
  EXPECT_GE(system_->stats().compat_rejects, 1u);
  client->quit();
}

TEST_F(FaultPathTest, GlueDegradesToLocalComputeWhenServerDies) {
  // RemoteBackend: a placed duct whose process crashes falls back to the
  // local physics hook and records the degradation.
  glue::install_tess_procedures_everywhere(*cluster_);
  glue::RemoteBackend backend(*system_, "avs");
  backend.place(glue::AdaptedComponent::kDuct, 0,
                glue::Placement{"far", ""});
  tess::ComponentHooks hooks = backend.hooks();
  tess::ComponentHooks local = tess::ComponentHooks::local();

  tess::StationArray in{102.0, 288.15, 101325.0, 20.0};
  tess::StationArray before = hooks.duct(0, in, 0.02);
  ASSERT_EQ(backend.degraded_calls(), 0);

  ASSERT_GT(cluster_->crash_machine("far"), 0);

  tess::StationArray after = hooks.duct(0, in, 0.02);
  EXPECT_EQ(backend.degraded_calls(), 1);
  ASSERT_EQ(backend.degraded_instances().size(), 1u);
  EXPECT_EQ(backend.degraded_instances()[0], "duct[0]");
  tess::StationArray reference = local.duct(0, in, 0.02);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(after[i], reference[i]) << "station " << i;
    // The pre-crash remote answer agrees too (single-float wire rounding).
    EXPECT_NEAR(before[i], reference[i],
                std::abs(reference[i]) * 1e-6 + 1e-6);
  }
}

TEST_F(FaultPathTest, RetryAttemptsShareOneTraceAsChildSpans) {
  // Trace context survives retries: the call records one parent span and
  // one child span per attempt, all on the same trace.
  auto client = system_->make_client("avs", "trace");
  client->contact_schx("far", "/bin/echo");
  auto echo = client->import_proc("echo", kEchoImport);
  CallOptions opts = wan_options();
  ASSERT_TRUE(echo->call({Value::real(1), Value::real(0)}, opts).ok());

  sim::FaultSpec spec;
  spec.drop_rate = 1.0;
  cluster_->set_fault_seed(3);
  cluster_->set_link_faults("internet-wan", spec);

  obs::reset_run();
  opts.max_attempts = 2;
  CallResult r = echo->call({Value::real(2), Value::real(0)}, opts);
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.attempt_count(), 2);

  std::vector<obs::SpanRecord> spans = obs::SpanCollector::global().snapshot();
  const obs::SpanRecord* call_span = nullptr;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "call echo") call_span = &s;
  }
  ASSERT_NE(call_span, nullptr);
  int attempt_children = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.name.starts_with("attempt ")) {
      EXPECT_EQ(s.trace_id, call_span->trace_id);
      EXPECT_EQ(s.parent_span_id, call_span->span_id);
      ++attempt_children;
    }
  }
  EXPECT_EQ(attempt_children, 2);
  cluster_->clear_faults();
  client->quit();
}

TEST_F(FaultPathTest, LegacyThrowingShimKeepsItsContract) {
  auto client = system_->make_client("avs", "legacy");
  client->contact_schx("far", "/bin/echo");

  // An import of an undeclared name still raises LookupError.
  EXPECT_THROW(
      (void)client->import_proc("nope", kEchoImport), util::LookupError);

  // A working call returns values, and a post-move call recovers through
  // the historical one-rebind stale path — transparently, exactly once.
  auto echo = client->import_proc("echo", kEchoImport);
  EXPECT_DOUBLE_EQ(echo->call({Value::real(6), Value::real(0)})[1].as_real(),
                   12.0);
  client->move_proc("echo", "spare");
  EXPECT_DOUBLE_EQ(echo->call({Value::real(7), Value::real(0)})[1].as_real(),
                   14.0);
  EXPECT_EQ(echo->stale_retries(), 1);
  client->quit();
}

}  // namespace
}  // namespace npss
