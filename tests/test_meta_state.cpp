// The replicated control plane (src/meta/ + the Manager replica group):
// changelog/snapshot/state-machine units, deterministic elections, and the
// full failover story — kill the leader mid-run, a follower takes over
// with the export table (spec hashes included) rebuilt from the log, and
// clients re-bind without losing a call.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mc/explore.hpp"
#include "mc/model.hpp"
#include "meta/changelog.hpp"
#include "meta/election.hpp"
#include "meta/record.hpp"
#include "meta/snapshot.hpp"
#include "meta/state.hpp"
#include "npss/procedures.hpp"
#include "rpc/schooner.hpp"

namespace npss {
namespace {

using meta::ChangeRecord;
using meta::RecordKind;

// --- Pure-unit half ---------------------------------------------------------

ChangeRecord line_create(std::int64_t line, const std::string& note) {
  ChangeRecord rec;
  rec.kind = RecordKind::kLineCreate;
  rec.line = line;
  rec.note = note;
  return rec;
}

ChangeRecord export_rec(std::int64_t line, const std::string& address,
                        const std::string& hash) {
  ChangeRecord rec;
  rec.kind = RecordKind::kExport;
  rec.line = line;
  rec.address = address;
  rec.machine = "far";
  rec.path = "/bin/echo";
  rec.spec_hash = hash;
  rec.procs = {{"echo", "export echo prog(\"x\" val double)"}};
  return rec;
}

TEST(MetaChangelog, AppendTailTruncateAndGapDetection) {
  meta::Changelog log;
  EXPECT_EQ(log.last_index(), 0u);
  EXPECT_EQ(log.append(line_create(1, "a")), 1u);
  EXPECT_EQ(log.append(line_create(2, "b")), 2u);
  EXPECT_EQ(log.append(export_rec(1, "far/p#1", "h1")), 3u);
  EXPECT_EQ(log.first_index(), 1u);
  EXPECT_EQ(log.tail(2).size(), 2u);
  EXPECT_EQ(log.at(2).note, "b");

  // Duplicate delivery is a no-op, a gap is refused.
  EXPECT_TRUE(log.append_at(3, export_rec(1, "far/p#1", "h1")));
  EXPECT_FALSE(log.append_at(5, line_create(9, "gap")));
  EXPECT_EQ(log.last_index(), 3u);

  // Compaction retains the tail and keeps indices stable.
  log.truncate_prefix(2);
  EXPECT_EQ(log.first_index(), 3u);
  EXPECT_EQ(log.last_index(), 3u);
  EXPECT_THROW(log.at(2), util::ProtocolError);
  EXPECT_EQ(log.at(3).spec_hash, "h1");
}

TEST(MetaReplicatedState, AppliesRecordsAndSnapshotsRoundTrip) {
  meta::ReplicatedState st;
  EXPECT_TRUE(st.apply(line_create(1, "avs line"), 1));
  EXPECT_TRUE(st.apply(export_rec(1, "far/p#1", "deadbeef"), 2));
  EXPECT_EQ(st.next_line(), 2);
  ASSERT_TRUE(st.exports().contains("far/p#1"));
  EXPECT_EQ(st.exports().at("far/p#1").spec_hash, "deadbeef");

  // The image round-trips exactly; equal states share a digest.
  meta::ReplicatedState copy =
      meta::ReplicatedState::deserialize(st.serialize());
  EXPECT_EQ(copy, st);
  EXPECT_EQ(copy.digest(), st.digest());

  // A retire removes the export group; a line quit removes its exports.
  ChangeRecord retire;
  retire.kind = RecordKind::kRetire;
  retire.address = "far/p#1";
  EXPECT_TRUE(st.apply(retire, 3));
  EXPECT_FALSE(st.exports().contains("far/p#1"));
}

TEST(MetaSnapshotStore, KeepsOnlyTheNewestImage) {
  meta::ReplicatedState st;
  st.apply(line_create(1, "a"), 1);
  meta::SnapshotStore store;
  EXPECT_TRUE(store.capture(st));
  EXPECT_EQ(store.latest().index, 1u);
  st.apply(export_rec(1, "far/p#1", "h"), 2);
  EXPECT_TRUE(store.capture(st));
  EXPECT_EQ(store.latest().index, 2u);
  // An older image never replaces a newer one (stale, not an error).
  EXPECT_EQ(store.install(1, store.latest().image).code(),
            util::ErrorCode::kUnavailable);
  EXPECT_EQ(store.latest().index, 2u);
  EXPECT_EQ(store.installs(), 2u);
}

TEST(MetaSnapshotStore, RejectsCorruptImagesBeforeInstalling) {
  meta::ReplicatedState st;
  st.apply(line_create(1, "a"), 1);
  meta::SnapshotStore store;
  ASSERT_TRUE(store.capture(st));
  const std::string good_digest = store.latest().digest;
  EXPECT_EQ(good_digest, st.digest());

  st.apply(export_rec(1, "far/p#1", "h"), 2);
  util::Bytes image = st.serialize();

  // A single flipped bit in the image must be rejected — either the
  // decode detects the tear, or the digest cross-check does — and the
  // held snapshot must survive untouched.
  for (const std::size_t at : {std::size_t{0}, image.size() / 2}) {
    util::Bytes torn = image;
    torn[at] ^= 0x20;
    const util::Status s = store.install(2, std::move(torn), st.digest());
    EXPECT_FALSE(s.is_ok());
    EXPECT_TRUE(s.code() == util::ErrorCode::kEncodingError ||
                s.code() == util::ErrorCode::kProtocolError)
        << s.to_string();
    EXPECT_EQ(store.latest().index, 1u);
    EXPECT_EQ(store.latest().digest, good_digest);
    EXPECT_EQ(store.installs(), 1u);
  }

  // Truncated bytes are torn too.
  util::Bytes half(image.begin(),
                   image.begin() + static_cast<std::ptrdiff_t>(image.size() / 2));
  EXPECT_EQ(store.install(2, std::move(half)).code(),
            util::ErrorCode::kEncodingError);

  // An image whose embedded applied-index lies about `index` is refused
  // even when its bytes are internally consistent.
  EXPECT_EQ(store.install(7, st.serialize()).code(),
            util::ErrorCode::kProtocolError);

  // The intact image with the right digest installs.
  EXPECT_TRUE(store.install(2, std::move(image), st.digest()).is_ok());
  EXPECT_EQ(store.latest().index, 2u);
  EXPECT_EQ(store.latest().digest, st.digest());
  EXPECT_EQ(store.installs(), 2u);
}

TEST(MetaChangelog, AppendAtTheCompactionBoundaryStaysConsistent) {
  // Regression: a catch-up append landing exactly at, one before, or one
  // after the compaction boundary must neither throw nor corrupt the
  // retained tail (the snapshot covers everything at or below base).
  meta::Changelog log;
  for (std::int64_t i = 1; i <= 5; ++i) {
    ChangeRecord rec = line_create(i, "e" + std::to_string(i));
    rec.term = static_cast<std::uint64_t>(i <= 3 ? 1 : 2);
    log.append(rec);
  }
  log.truncate_prefix(3);  // snapshot covers 1..3; boundary base = 3
  ASSERT_EQ(log.first_index(), 4u);
  ASSERT_EQ(log.last_index(), 5u);
  EXPECT_EQ(log.term_at(3), 1u);  // the base term survives compaction

  ChangeRecord dup = line_create(3, "e3");
  dup.term = 1;
  // One before, at, and one after the boundary, in turn.
  EXPECT_TRUE(log.append_at(2, dup));  // covered by the snapshot: no-op
  EXPECT_TRUE(log.append_at(3, dup));  // exactly at the base: no-op
  ChangeRecord same4 = line_create(4, "e4");
  same4.term = 2;
  EXPECT_TRUE(log.append_at(4, same4));  // duplicate of a retained entry
  EXPECT_EQ(log.last_index(), 5u);       // nothing was truncated
  EXPECT_EQ(log.at(5).note, "e5");

  // A *conflicting* entry one after the boundary truncates the stale
  // suffix and takes its place.
  ChangeRecord newer4 = line_create(40, "e4'");
  newer4.term = 3;
  EXPECT_TRUE(log.append_at(4, newer4));
  EXPECT_EQ(log.last_index(), 4u);
  EXPECT_EQ(log.at(4).line, 40);
  EXPECT_EQ(log.term_at(4), 3u);

  // Beyond the tail is still a gap, and the compacted prefix can never
  // be truncated back into.
  EXPECT_FALSE(log.append_at(6, dup));
  EXPECT_THROW(log.truncate_suffix(3), util::ProtocolError);

  // reset() (snapshot install) re-bases both index and term.
  log.reset(10, 4);
  EXPECT_EQ(log.last_index(), 10u);
  EXPECT_EQ(log.last_term(), 4u);
  EXPECT_EQ(log.first_index(), 0u);  // nothing retained
  ChangeRecord next = line_create(11, "post-install");
  next.term = 5;
  EXPECT_TRUE(log.append_at(11, next));
  EXPECT_EQ(log.term_at(11), 5u);
}

TEST(MetaElection, LogUpToDateOrderingGatesVotes) {
  // (last term, last index) lexicographic: a longer log from an older
  // term never outranks a shorter log from a newer term.
  EXPECT_TRUE(meta::log_up_to_date(3, 1, 2, 9));    // newer term wins
  EXPECT_FALSE(meta::log_up_to_date(2, 9, 3, 1));
  EXPECT_TRUE(meta::log_up_to_date(2, 5, 2, 5));    // equal is up to date
  EXPECT_TRUE(meta::log_up_to_date(2, 6, 2, 5));
  EXPECT_FALSE(meta::log_up_to_date(2, 4, 2, 5));
  // Candidate ordering prefers term, then index, then rank.
  EXPECT_TRUE(meta::candidate_better(3, 1, 9, 2, 9, 0));
  EXPECT_TRUE(meta::candidate_better(2, 9, 9, 2, 8, 0));
  EXPECT_TRUE(meta::candidate_better(2, 9, 0, 2, 9, 1));
  EXPECT_FALSE(meta::candidate_better(2, 9, 1, 2, 9, 0));
}

TEST(MetaElection, ScheduleIsAPureFunctionOfSeedTermAndReplica) {
  // Same inputs, same rank/timeout; the schedule is host-timing-free.
  for (std::uint64_t term = 1; term <= 5; ++term) {
    for (int replica = 0; replica < 5; ++replica) {
      EXPECT_EQ(meta::candidate_rank(42, term, replica),
                meta::candidate_rank(42, term, replica));
      EXPECT_EQ(meta::election_timeout_ms(42, term, replica, 5, 60),
                meta::election_timeout_ms(42, term, replica, 5, 60));
    }
  }
  // Timeouts within one term are staggered by at least 2 * base: the
  // earliest candidate finishes before the next would stand.
  std::set<int> timeouts;
  for (int replica = 0; replica < 5; ++replica) {
    timeouts.insert(meta::election_timeout_ms(42, 3, replica, 5, 60));
  }
  EXPECT_EQ(timeouts.size(), 5u);
  int prev = -1;
  for (int t : timeouts) {
    if (prev >= 0) {
      EXPECT_GE(t - prev, 2 * 60);
    }
    prev = t;
  }
  // The ordering prefers the longer log, then the lower rank.
  EXPECT_TRUE(meta::candidate_better(10, 7, 9, 3));
  EXPECT_TRUE(meta::candidate_better(10, 3, 10, 7));
  EXPECT_FALSE(meta::candidate_better(10, 7, 10, 3));
}

TEST(MetaQuorumRegression, MinimizedLegacyScheduleLosesAnAckedWrite) {
  // The schedule meta_check minimized for the PR 6 protocol, re-executed
  // verbatim: propose on the bootstrap leader (acked immediately — the
  // bug), then replica 1 stands with an index-only vote and wins a term
  // it has no log for. The acked write is gone (MC003).
  const std::vector<mc::Action> schedule =
      mc::decode_schedule("p0,t1,d1>2,d2>1");
  mc::Options legacy;
  legacy.quorum_commit = false;
  mc::ExploreResult bad = mc::replay(legacy, schedule);
  ASSERT_TRUE(bad.violation.has_value());
  EXPECT_EQ(bad.violation->code, "MC003");

  // The same schedule against the quorum protocol is harmless: the write
  // is never acknowledged before a majority holds it, so nothing acked
  // is lost and every invariant holds.
  mc::Options quorum;
  quorum.quorum_commit = true;
  mc::ExploreResult good = mc::replay(quorum, schedule);
  EXPECT_FALSE(good.violation.has_value()) << good.violation->code;
}

TEST(MetaQuorumRegression, StaleFetchAckCannotDropQuorumCountedEntries) {
  // A fetch reply is information about a *prefix* of the leader's log,
  // not its present tail. This schedule duplicates a fetch-ack so the
  // stale copy reaches r1 only after r1 has appended and acked entry #2
  // — an entry the leader then quorum-counted and acked to the client.
  // The protocol once truncated r1's log past the stale reply's tail
  // (entry #2 included); after the leader crashed, r1 won term 2 and
  // the acked op-2 existed nowhere: MC003, on the *quorum* protocol.
  // The fix treats fetch replies as prefix-only (no truncation past the
  // tail, ack clamped to the verified prefix), so the same 18 actions
  // must now satisfy every invariant.
  const std::vector<mc::Action> schedule = mc::decode_schedule(
      "p0,x0>1,t0,d0>1,d1>0,d0>2,d2>0,p0,u0>1,d0>1,d0>1,d1>0,d1>0,d0>1,"
      "c0,t1,d1>2,d2>1");
  mc::Options opts;
  opts.quorum_commit = true;
  opts.max_ops = 2;
  opts.max_duplicates = 1;
  opts.max_drops = 1;
  opts.max_crashes = 1;
  mc::ExploreResult result = mc::replay(opts, schedule);
  EXPECT_FALSE(result.violation.has_value())
      << result.violation->code << ": " << result.violation->message;
  // The epilogue must still show op-2 *acked* — otherwise the schedule
  // stopped reaching quorum and MC003 had nothing to defend — and the
  // new leader is r1, the replica that held the once-truncated entry.
  EXPECT_NE(result.transcript.find("op-2@#2(t1)"), std::string::npos)
      << result.transcript;
  EXPECT_NE(result.transcript.find("r1: leader, term 2"), std::string::npos)
      << result.transcript;
}

// --- System half: a three-replica Manager group -----------------------------

const char* kEchoSpec =
    "export echo prog(\"x\" val double, \"y\" res double)";
const char* kEchoImport =
    "import echo prog(\"x\" val double, \"y\" res double)";

sim::ProgramImage echo_image() {
  return rpc::make_procedure_image(
      kEchoSpec,
      {{"echo", [](rpc::ProcCall& c) { c.set_real("y", 2.0 * c.real("x")); }}});
}

struct GroupOptions {
  std::uint64_t seed = 1;
  std::uint64_t snapshot_interval = 32;
};

/// One site, three Manager replica machines plus a worker and a client
/// machine, with a 3-replica control plane.
class MetaGroupTest : public ::testing::Test {
 protected:
  void build(const GroupOptions& group) {
    system_.reset();
    cluster_ = std::make_unique<sim::Cluster>();
    cluster_->add_machine("m0", "sun-sparc10", "lerc");
    cluster_->add_machine("m1", "ibm-rs6000", "lerc");
    cluster_->add_machine("m2", "sgi-4d480", "lerc");
    cluster_->add_machine("far", "sgi-4d480", "lerc");
    cluster_->add_machine("avs", "sun-sparc10", "lerc");
    cluster_->install_image("far", "/bin/echo", echo_image());
    cluster_->install_image("m2", "/bin/echo", echo_image());
    rpc::SystemOptions options;
    options.manager_replicas = 3;
    options.replica_machines = {"m1", "m2"};
    options.heartbeat_ms = 10;
    options.election_base_ms = 40;
    options.election_seed = group.seed;
    options.snapshot_interval = group.snapshot_interval;
    system_ = std::make_unique<rpc::SchoonerSystem>(*cluster_, "m0", options);
  }

  /// Ask one replica (any role) for its view: (leader, digest, applied).
  struct ReplicaView {
    std::string leader;
    std::string digest;
    std::string applied;
  };
  ReplicaView view_of(const std::string& address) {
    sim::EndpointPtr ep = cluster_->create_endpoint("avs", "probe");
    rpc::MessageIo io(*cluster_, ep);
    rpc::Message who;
    who.kind = rpc::MessageKind::kMetaWhoIsLeader;
    rpc::Message ack = io.call_within(address, std::move(who), 500);
    cluster_->retire_endpoint(ep->address());
    return ReplicaView{ack.a, ack.b, ack.c};
  }

  /// Poll until every live replica applied the same log prefix as the
  /// leader (replication is async) and return the common digest.
  std::string converged_digest() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      std::set<std::string> digests;
      for (const std::string& address :
           system_->manager_replica_addresses()) {
        if (!cluster_->endpoint_alive(address)) continue;
        digests.insert(view_of(address).digest);
      }
      if (digests.size() == 1) return *digests.begin();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "replicas never converged on one digest";
    return {};
  }

  /// The current leader as the (live) replicas report it.
  std::string wait_for_leader() {
    sim::EndpointPtr ep = cluster_->create_endpoint("avs", "probe");
    rpc::MessageIo io(*cluster_, ep);
    std::vector<std::string> live;
    for (const std::string& address : system_->manager_replica_addresses()) {
      if (cluster_->endpoint_alive(address)) live.push_back(address);
    }
    std::string leader = rpc::discover_manager_leader(io, live);
    cluster_->retire_endpoint(ep->address());
    return leader;
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<rpc::SchoonerSystem> system_;
};

TEST_F(MetaGroupTest, GroupBootsReplicatesAndAgreesOnDigest) {
  build({});
  ASSERT_EQ(system_->manager_replica_addresses().size(), 3u);
  auto client = system_->make_client("avs", "boot test");
  client->contact_schx("far", "/bin/echo");
  auto proc = client->import_proc("echo", kEchoImport);
  uts::ValueList out = proc->call({uts::Value::real(21.0), uts::Value::real(0.0)});
  EXPECT_DOUBLE_EQ(out[1].as_real(), 42.0);

  // Followers mirror the leader's state machine, byte for byte.
  EXPECT_FALSE(converged_digest().empty());
  rpc::ManagerStats stats = system_->stats();
  EXPECT_GT(stats.log_appends, 0u);
  EXPECT_EQ(stats.leader_elections, 0u);  // replica 0 leads term 1 as booted
  client->quit();
}

TEST_F(MetaGroupTest, LeaderKillFailsOverWithExportTableIntact) {
  build({});
  auto client = system_->make_client("avs", "failover test");
  client->contact_schx("far", "/bin/echo");
  auto proc = client->import_proc("echo", kEchoImport);
  EXPECT_DOUBLE_EQ(
      proc->call({uts::Value::real(1.0), uts::Value::real(0.0)})[1].as_real(),
      2.0);

  const std::string before = converged_digest();
  const std::string old_leader = system_->manager_replica_addresses()[0];
  cluster_->crash_process(old_leader);

  // A follower takes over; the data plane never blinked, so in-flight
  // calls on the already-bound stub keep succeeding during the election.
  for (int i = 0; i < 20; ++i) {
    uts::ValueList out =
        proc->call({uts::Value::real(i), uts::Value::real(0.0)});
    EXPECT_DOUBLE_EQ(out[1].as_real(), 2.0 * i);
  }
  std::string new_leader = wait_for_leader();
  ASSERT_FALSE(new_leader.empty());
  EXPECT_NE(new_leader, old_leader);

  // The new leader rebuilt the export table from the replicated log: its
  // digest matches the pre-crash fingerprint exactly.
  EXPECT_EQ(view_of(new_leader).digest, before);

  // A cold re-bind (cache dropped) walks the kNotLeader/no-route path and
  // lands on the new leader.
  proc->invalidate();
  EXPECT_DOUBLE_EQ(
      proc->call({uts::Value::real(5.0), uts::Value::real(0.0)})[1].as_real(),
      10.0);

  // The move-compat gate still holds after failover because the bound
  // signatures (and spec hashes) were replicated: a legal sch_move through
  // the *new* leader works.
  std::string moved = client->move_proc("echo", "m2");
  EXPECT_FALSE(moved.empty());
  proc->invalidate();
  EXPECT_DOUBLE_EQ(
      proc->call({uts::Value::real(7.0), uts::Value::real(0.0)})[1].as_real(),
      14.0);

  rpc::ManagerStats stats = system_->stats();
  EXPECT_GE(stats.leader_elections, 1u);
  client->quit();
}

TEST_F(MetaGroupTest, SameSeedElectsTheSameLeader) {
  // The fault-suite contract extends to elections: with one seed, the
  // post-crash winner is a function of the configuration, not of host
  // scheduling. Run the same crash twice per seed.
  auto winner_index = [&](std::uint64_t seed) {
    build({.seed = seed});
    auto client = system_->make_client("avs", "election determinism");
    client->contact_schx("far", "/bin/echo");
    cluster_->crash_process(system_->manager_replica_addresses()[0]);
    std::string leader = wait_for_leader();
    const auto& replicas = system_->manager_replica_addresses();
    int index = -1;
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      if (replicas[i] == leader) index = static_cast<int>(i);
    }
    EXPECT_GE(index, 1) << "no (or unknown) leader after crash";
    client->quit();
    return index;
  };
  const int first = winner_index(1234);
  const int second = winner_index(1234);
  EXPECT_EQ(first, second);
}

TEST_F(MetaGroupTest, SnapshotCompactionCoversFollowerCatchUp) {
  // A tiny snapshot interval forces compaction quickly; a partitioned
  // follower that missed the compacted records can only recover through
  // the snapshot + log-tail path.
  build({.snapshot_interval = 4});
  auto client = system_->make_client("avs", "snapshot test");

  // Isolate replica 2 from the rest of the control plane (the client and
  // worker machines stay fully connected).
  cluster_->partition({"m2"}, {"m0", "m1"});
  for (int i = 0; i < 3; ++i) {
    auto extra = system_->make_client("avs", "filler " + std::to_string(i));
    extra->contact_schx("far", "/bin/echo");
    extra->quit();
  }
  EXPECT_GT(cluster_->partition_drops(), 0u);

  cluster_->heal();
  // After healing, the follower pulls the snapshot and tail; all three
  // replicas converge on one digest again.
  EXPECT_FALSE(converged_digest().empty());
  rpc::ManagerStats stats = system_->stats();
  EXPECT_GE(stats.snapshot_installs, 1u);
  client->quit();
}

TEST_F(MetaGroupTest, PartitionedLeaderStepsDownAfterHeal) {
  build({});
  auto client = system_->make_client("avs", "partition test");
  client->contact_schx("far", "/bin/echo");

  // Cut the leader off from both followers; they elect a successor.
  cluster_->partition({"m0"}, {"m1", "m2"});
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::string new_leader;
  while (std::chrono::steady_clock::now() < deadline) {
    auto v = view_of(system_->manager_replica_addresses()[1]);
    if (!v.leader.empty() &&
        v.leader != system_->manager_replica_addresses()[0]) {
      new_leader = v.leader;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_FALSE(new_leader.empty()) << "no new leader during partition";

  // Heal: the deposed leader sees the higher term, steps down, discards
  // its (possibly divergent) log, and re-converges with the group.
  cluster_->heal();
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool stepped_down = false;
  while (std::chrono::steady_clock::now() < heal_deadline) {
    if (view_of(system_->manager_replica_addresses()[0]).leader ==
        new_leader) {
      stepped_down = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(stepped_down) << "old leader never adopted the new term";
  EXPECT_FALSE(converged_digest().empty());
  EXPECT_EQ(wait_for_leader(), new_leader);
  client->quit();
}

}  // namespace
}  // namespace npss
