// flow_lint (UTS4xx) suite: every seeded bad network under
// tests/networks/bad/ must be flagged with its expected code, the clean
// networks (including the serialized F100 engine) must lint clean, and
// the predicted wavefront widths must match the live scheduler's levels.
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/flowlint.hpp"
#include "flow/basic_modules.hpp"
#include "flow/network.hpp"
#include "npss/modules.hpp"
#include "npss/network_driver.hpp"
#include "util/status.hpp"

namespace fs = std::filesystem;
using npss::check::FlowLintResult;
using npss::check::ModuleCatalog;

namespace {

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

const ModuleCatalog& catalog() {
  static const ModuleCatalog instance = [] {
    npss::flow::register_basic_modules();
    npss::glue::register_tess_modules();
    return ModuleCatalog::from_factory();
  }();
  return instance;
}

FlowLintResult lint_file(const fs::path& path) {
  return npss::check::lint_network_text(path.string(), slurp(path),
                                        catalog());
}

bool has_code(const FlowLintResult& result, const std::string& code) {
  for (const npss::check::Diagnostic& d : result.diags) {
    if (d.code == code) return true;
  }
  return false;
}

/// Expected code per seeded bad network; a directory entry without a row
/// here fails the sweep, so the corpus and its expectations stay in sync.
const std::map<std::string, std::string>& expected_codes() {
  static const std::map<std::string, std::string> table = {
      {"dangling_port.net", "UTS402"},
      {"unknown_port.net", "UTS402"},
      {"unknown_type.net", "UTS401"},
      {"duplicate_instance.net", "UTS401"},
      {"type_mismatch.net", "UTS403"},
      {"ambiguous_input.net", "UTS404"},
      {"undeclared_cycle.net", "UTS405"},
      {"bad_widget.net", "UTS400"},
      {"bad_verb.net", "UTS400"},
      {"serial_hazard.net", "UTS407"},
  };
  return table;
}

TEST(BadNetworks, EveryCaseFlaggedWithExpectedCode) {
  int cases = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(FLOW_LINT_NETWORK_DIR) / "bad")) {
    const std::string name = entry.path().filename().string();
    ++cases;
    auto expect = expected_codes().find(name);
    ASSERT_NE(expect, expected_codes().end())
        << "bad network '" << name << "' has no expectation wired";
    FlowLintResult result = lint_file(entry.path());
    EXPECT_TRUE(has_code(result, expect->second))
        << name << " should report " << expect->second;
    EXPECT_TRUE(result.error_count() > 0 || result.warning_count() > 0)
        << name;
  }
  EXPECT_EQ(cases, static_cast<int>(expected_codes().size()));
}

TEST(CleanNetworks, QuickstartLintsClean) {
  FlowLintResult result =
      lint_file(fs::path(FLOW_LINT_NETWORK_DIR) / "quickstart.net");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.warning_count(), 0);
  // src feeds two sinks: levels {src} then {mon, chart}.
  ASSERT_EQ(result.wavefront_widths.size(), 2u);
  EXPECT_EQ(result.wavefront_widths[0], 1u);
  EXPECT_EQ(result.wavefront_widths[1], 2u);
  EXPECT_TRUE(has_code(result, "UTS408"));
}

// The serialized form of the live F100 network must lint clean, and the
// predicted wavefront widths must agree with the levels the scheduler
// actually builds — the lint is a faithful static model of evaluate().
TEST(CleanNetworks, F100EngineMatchesLiveWavefronts) {
  npss::flow::Network net;
  npss::glue::build_f100_network(net);
  FlowLintResult result =
      npss::check::lint_network_text("f100", net.save_to_text(), catalog());
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.warning_count(), 0);

  const std::vector<std::vector<std::string>> live = net.wavefronts();
  ASSERT_EQ(result.wavefront_widths.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(result.wavefront_widths[i], live[i].size()) << "level " << i;
  }
}

TEST(DeclaredLoop, LegalizesCycleAndRuntimeLoaderIgnoresIt) {
  const std::string text =
      "module intake tess-inlet\n"
      "module mix tess-mixer\n"
      "module pipe tess-duct\n"
      "connect intake out mix core\n"
      "connect mix out pipe in\n"
      "connect pipe out mix bypass\n"
      "loop mixer-balance mix pipe\n";
  FlowLintResult result =
      npss::check::lint_network_text("looped", text, catalog());
  EXPECT_FALSE(has_code(result, "UTS405"));
  EXPECT_TRUE(result.ok());

  // Without the declaration the same cycle is UTS405.
  const std::string undeclared = text.substr(0, text.find("loop "));
  FlowLintResult bad =
      npss::check::lint_network_text("undeclared", undeclared, catalog());
  EXPECT_TRUE(has_code(bad, "UTS405"));

  // The runtime loader skips `loop` lines (flow_lint metadata only) —
  // everything else must load; the cycle itself is the executive's error.
  npss::flow::Network net;
  EXPECT_THROW(net.load_from_text(text), npss::util::GraphError);
  npss::flow::Network ok;
  ok.load_from_text(
      "module src constant\nmodule mon monitor\nconnect src out mon in\n"
      "loop solo src\n");
  EXPECT_EQ(ok.module_names().size(), 2u);
}

/// A module type nothing ever registered with the ModuleFactory — the
/// static pass cannot vet a network containing one (UTS401).
class UnregisteredModule final : public npss::flow::Module {
 public:
  std::string type_name() const override { return "bespoke-unregistered"; }
  void spec(npss::flow::ModuleSpec& spec) override {
    spec.input("in", npss::uts::Type::real_double());
  }
  void compute() override {}
};

TEST(DriverLint, RejectsBrokenEngineNetworkAtStartup) {
  // A driver over a valid F100 network starts fine (lint runs in the
  // constructor)...
  npss::flow::Network good;
  npss::glue::F100NetworkNames names = npss::glue::build_f100_network(good);
  EXPECT_NO_THROW({ npss::glue::NetworkEngineDriver driver(good, names); });

  // ...but a network whose serialized form the static pass cannot vet —
  // here a module type absent from the factory — is refused before any
  // evaluate.
  npss::flow::Network bad;
  npss::glue::build_f100_network(bad);
  bad.add("rogue", std::make_unique<UnregisteredModule>());
  EXPECT_THROW({ npss::glue::NetworkEngineDriver driver(bad, {}); },
               npss::util::GraphError);
}

TEST(FlowLintJson, CarriesCodesAndWidths) {
  FlowLintResult result =
      lint_file(fs::path(FLOW_LINT_NETWORK_DIR) / "quickstart.net");
  const std::string json = npss::check::flow_lint_to_json(
      {{"quickstart.net", std::move(result)}});
  EXPECT_NE(json.find("UTS408"), std::string::npos);
  EXPECT_NE(json.find("wavefront_widths"), std::string::npos);
  EXPECT_NE(json.find("quickstart.net"), std::string::npos);
}

}  // namespace
