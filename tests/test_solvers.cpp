// Tests of the numerical substrate: dense LU, damped Newton-Raphson, and
// the four TESS transient integrators — including empirical order-of-
// accuracy verification and a stiff problem separating Gear from the
// explicit methods.
#include <gtest/gtest.h>

#include <cmath>

#include "solvers/linalg.hpp"
#include "solvers/newton.hpp"
#include "solvers/ode.hpp"

namespace npss::solvers {
namespace {

// --- Linear algebra --------------------------------------------------------------

TEST(Linalg, LuSolvesDenseSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2;  a(0, 1) = 1;  a(0, 2) = -1;
  a(1, 0) = -3; a(1, 1) = -1; a(1, 2) = 2;
  a(2, 0) = -2; a(2, 1) = 1;  a(2, 2) = 2;
  LuFactorization lu(a);
  std::vector<double> x = lu.solve({8, -11, -3});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Linalg, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  std::vector<double> x = LuFactorization(a).solve({3, 7});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, SingularMatrixDetected) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, util::ConvergenceError);
}

TEST(Linalg, IdentityAndMultiply) {
  Matrix eye = Matrix::identity(4);
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_EQ(eye.multiply(v), v);
  EXPECT_NEAR(LuFactorization(eye).abs_determinant(), 1.0, 1e-15);
}

TEST(Linalg, RandomishSystemResidualSmall) {
  const std::size_t n = 12;
  Matrix a(n, n);
  std::vector<double> truth(n);
  // Deterministic pseudo-random fill.
  std::uint64_t s = 12345;
  auto next = [&s] {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(s >> 33) / (1ull << 31) - 0.5;
  };
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = next();
    for (std::size_t j = 0; j < n; ++j) a(i, j) = next();
    a(i, i) += 4.0;  // diagonal dominance
  }
  std::vector<double> b = a.multiply(truth);
  std::vector<double> x = LuFactorization(a).solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-10);
}

// --- Newton-Raphson ---------------------------------------------------------------

TEST(Newton, SolvesCoupledNonlinearSystem) {
  // x^2 + y^2 = 4, x y = 1.
  ResidualFn f = [](const std::vector<double>& v) {
    return std::vector<double>{v[0] * v[0] + v[1] * v[1] - 4.0,
                               v[0] * v[1] - 1.0};
  };
  NewtonResult r = newton_solve(f, {2.0, 0.3});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.solution[0] * r.solution[1], 1.0, 1e-8);
  EXPECT_NEAR(r.solution[0] * r.solution[0] + r.solution[1] * r.solution[1],
              4.0, 1e-8);
}

TEST(Newton, DampingRescuesOvershoot) {
  // atan has a famously divergent undamped Newton from |x| > ~1.39.
  ResidualFn f = [](const std::vector<double>& v) {
    return std::vector<double>{std::atan(v[0])};
  };
  NewtonResult r = newton_solve(f, {5.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.solution[0], 0.0, 1e-8);
}

TEST(Newton, ReportsFailureWithBestIterate) {
  // No root: x^2 + 1 = 0.
  ResidualFn f = [](const std::vector<double>& v) {
    return std::vector<double>{v[0] * v[0] + 1.0};
  };
  NewtonOptions opt;
  opt.max_iterations = 10;
  EXPECT_THROW((void)newton_solve(f, {3.0}, opt), util::ConvergenceError);
  NewtonResult r = newton_try_solve(f, {3.0}, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.residual_norm, 1.0);
}

TEST(Newton, DimensionMismatchIsModelError) {
  ResidualFn f = [](const std::vector<double>&) {
    return std::vector<double>{0.0, 0.0};
  };
  EXPECT_THROW((void)newton_solve(f, {1.0}), util::ModelError);
}

TEST(Newton, CountsFunctionEvaluations) {
  ResidualFn f = [](const std::vector<double>& v) {
    return std::vector<double>{v[0] - 2.0};
  };
  NewtonResult r = newton_solve(f, {0.0});
  EXPECT_GT(r.function_evaluations, 1);
  EXPECT_LE(r.function_evaluations, 10);
}

// --- ODE integrators: exact-solution accuracy -----------------------------------------

/// y' = -y + sin(t), y(0)=1; exact: y = 0.5(sin t - cos t) + 1.5 e^-t.
double exact(double t) {
  return 0.5 * (std::sin(t) - std::cos(t)) + 1.5 * std::exp(-t);
}

OdeFn test_rhs() {
  return [](double t, const std::vector<double>& y) {
    return std::vector<double>{-y[0] + std::sin(t)};
  };
}

class IntegratorAccuracy : public ::testing::TestWithParam<IntegratorKind> {};

TEST_P(IntegratorAccuracy, ConvergesToExactSolution) {
  auto integ = make_integrator(GetParam());
  std::vector<double> y =
      integrate(*integ, test_rhs(), 0.0, 2.0, 0.01, {1.0});
  EXPECT_NEAR(y[0], exact(2.0), 5e-5)
      << integrator_name(GetParam());
}

TEST_P(IntegratorAccuracy, ObservedOrderAtLeastNominal) {
  auto run = [&](double h) {
    auto integ = make_integrator(GetParam());
    std::vector<double> y = integrate(*integ, test_rhs(), 0.0, 1.0, h, {1.0});
    return std::abs(y[0] - exact(1.0));
  };
  const double e1 = run(0.05);
  const double e2 = run(0.025);
  const double observed = std::log2(e1 / e2);
  const int nominal = make_integrator(GetParam())->order();
  EXPECT_GT(observed, nominal - 0.35)
      << integrator_name(GetParam()) << ": errors " << e1 << " -> " << e2;
}

TEST_P(IntegratorAccuracy, ResetClearsHistory) {
  auto integ = make_integrator(GetParam());
  std::vector<double> first =
      integrate(*integ, test_rhs(), 0.0, 1.0, 0.1, {1.0});
  integ->reset();
  std::vector<double> second =
      integrate(*integ, test_rhs(), 0.0, 1.0, 0.1, {1.0});
  EXPECT_DOUBLE_EQ(first[0], second[0]);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IntegratorAccuracy,
                         ::testing::ValuesIn(all_integrators()),
                         [](const auto& info) {
                           std::string name(integrator_name(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Integrators, GearStableOnStiffProblemWhereExplicitBlowsUp) {
  // y' = -1000 (y - cos t); explicit methods need h < ~0.002.
  OdeFn stiff = [](double t, const std::vector<double>& y) {
    return std::vector<double>{-1000.0 * (y[0] - std::cos(t))};
  };
  const double h = 0.02;
  auto gear = make_integrator(IntegratorKind::kGear);
  std::vector<double> yg = integrate(*gear, stiff, 0.0, 1.0, h, {0.0});
  EXPECT_NEAR(yg[0], std::cos(1.0), 0.05);

  auto euler = make_integrator(IntegratorKind::kModifiedEuler);
  std::vector<double> ye = integrate(*euler, stiff, 0.0, 1.0, h, {0.0});
  EXPECT_GT(std::abs(ye[0]), 100.0) << "explicit method should be unstable";
}

TEST(Integrators, RhsEvaluationCostsOrdered) {
  // Per step: ModifiedEuler 2, RK4 4, Adams 2, Gear (iterative) > 4.
  auto count = [&](IntegratorKind kind) {
    auto integ = make_integrator(kind);
    integrate(*integ, test_rhs(), 0.0, 1.0, 0.1, {1.0});
    return integ->evaluations();
  };
  EXPECT_EQ(count(IntegratorKind::kModifiedEuler), 20);
  EXPECT_EQ(count(IntegratorKind::kRungeKutta4), 40);
  EXPECT_EQ(count(IntegratorKind::kAdams), 20);
  // Gear's Newton corrector costs extra evaluations per step (Jacobian
  // columns + iterations), more than the fixed-stage explicit methods.
  EXPECT_GT(count(IntegratorKind::kGear), count(IntegratorKind::kAdams));
}

TEST(Integrators, FinalStepClipsToInterval) {
  auto integ = make_integrator(IntegratorKind::kRungeKutta4);
  // 0.3 does not divide 1.0; the last step must land exactly on t=1.
  std::vector<double> y = integrate(*integ, test_rhs(), 0.0, 1.0, 0.3, {1.0});
  EXPECT_NEAR(y[0], exact(1.0), 1e-4);
}

TEST(Integrators, BadStepRejected) {
  auto integ = make_integrator(IntegratorKind::kRungeKutta4);
  EXPECT_THROW(
      (void)integrate(*integ, test_rhs(), 0.0, 1.0, 0.0, {1.0}),
      util::ModelError);
}

TEST(Integrators, MultiDimensionalSystem) {
  // Harmonic oscillator: x'' = -x as a 2-state system; energy conserved.
  OdeFn osc = [](double, const std::vector<double>& y) {
    return std::vector<double>{y[1], -y[0]};
  };
  auto integ = make_integrator(IntegratorKind::kRungeKutta4);
  std::vector<double> y = integrate(*integ, osc, 0.0, 2.0 * M_PI, 0.01,
                                    {1.0, 0.0});
  EXPECT_NEAR(y[0], 1.0, 1e-6);
  EXPECT_NEAR(y[1], 0.0, 1e-6);
}

}  // namespace
}  // namespace npss::solvers
