// Unit and property tests for UTS: the type model, values, signature
// compatibility (including the footnote-1 subset rule), and the canonical
// interchange format routed through every pair of simulated architectures.
#include <gtest/gtest.h>

#include <cmath>

#include "uts/canonical.hpp"
#include "uts/spec.hpp"
#include "uts/types.hpp"
#include "uts/value.hpp"

namespace npss::uts {
namespace {

using arch::arch_catalog;
using util::ByteReader;
using util::ByteWriter;

// --- Type model -------------------------------------------------------------------

TEST(Types, StructuralEquality) {
  Type a = Type::array(4, Type::floating());
  Type b = Type::array(4, Type::floating());
  Type c = Type::array(5, Type::floating());
  Type d = Type::array(4, Type::real_double());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);

  Type r1 = Type::record({{"x", Type::floating()}, {"n", Type::integer()}});
  Type r2 = Type::record({{"x", Type::floating()}, {"n", Type::integer()}});
  Type r3 = Type::record({{"y", Type::floating()}, {"n", Type::integer()}});
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, r3);
}

TEST(Types, RenderingMatchesSpecSyntax) {
  EXPECT_EQ(Type::array(4, Type::floating()).to_string(),
            "array[4] of float");
  EXPECT_EQ(
      Type::record({{"a", Type::byte()}, {"b", Type::string()}}).to_string(),
      "record \"a\": byte; \"b\": string end");
}

TEST(Types, FixedWireSizes) {
  std::size_t size = 0;
  EXPECT_TRUE(Type::array(4, Type::floating()).fixed_wire_size(size));
  EXPECT_EQ(size, 16u);
  EXPECT_TRUE(Type::record({{"x", Type::real_double()},
                            {"n", Type::integer()},
                            {"b", Type::byte()}})
                  .fixed_wire_size(size));
  EXPECT_EQ(size, 13u);
  EXPECT_FALSE(Type::string().fixed_wire_size(size));
  EXPECT_FALSE(Type::array(2, Type::string()).fixed_wire_size(size));
}

TEST(Types, AccessorsThrowOnWrongKind) {
  EXPECT_THROW((void)Type::floating().array_size(), util::TypeMismatchError);
  EXPECT_THROW((void)Type::integer().fields(), util::TypeMismatchError);
}

// --- Values -----------------------------------------------------------------------

TEST(Values, NumericCoercion) {
  EXPECT_DOUBLE_EQ(Value::integer(3).as_real(), 3.0);
  EXPECT_EQ(Value::real(3.9).as_integer(), 3);
  EXPECT_EQ(Value::byte(200).as_integer(), 200);
  EXPECT_THROW((void)Value::str("x").as_real(), util::TypeMismatchError);
  EXPECT_THROW((void)Value::integer(300).as_byte(), util::TypeMismatchError);
}

TEST(Values, DefaultValuesMatchTypes) {
  Value v = default_value(
      Type::record({{"a", Type::array(3, Type::integer())},
                    {"s", Type::string()}}));
  EXPECT_EQ(v.items().size(), 2u);
  EXPECT_EQ(v.items()[0].items().size(), 3u);
  EXPECT_EQ(v.items()[1].as_string(), "");
  EXPECT_NO_THROW(check_value(
      Type::record(
          {{"a", Type::array(3, Type::integer())}, {"s", Type::string()}}),
      v));
}

TEST(Values, CheckValueReportsPath) {
  Type t = Type::record({{"inner", Type::array(2, Type::floating())}});
  Value bad = Value::record({Value::array({Value::real(1), Value::str("x")})});
  try {
    check_value(t, bad, "arg");
    FAIL() << "expected mismatch";
  } catch (const util::TypeMismatchError& e) {
    EXPECT_NE(std::string(e.what()).find("arg.inner[1]"), std::string::npos);
  }
}

TEST(Values, ArraySizeMismatchDetected) {
  Type t = Type::array(4, Type::floating());
  EXPECT_THROW(check_value(t, Value::real_array({1.0, 2.0})),
               util::TypeMismatchError);
}

// --- Signature compatibility ---------------------------------------------------------

Signature sig(std::initializer_list<Param> params) { return params; }

TEST(Signatures, IdenticalIsCompatible) {
  Signature s = sig({{"x", ParamMode::kVal, Type::floating()},
                     {"y", ParamMode::kRes, Type::floating()}});
  EXPECT_TRUE(signatures_compatible(s, s));
}

TEST(Signatures, SubsetImportIsCompatible) {
  Signature exp = sig({{"a", ParamMode::kVal, Type::floating()},
                       {"b", ParamMode::kVal, Type::integer()},
                       {"c", ParamMode::kRes, Type::floating()}});
  Signature imp = sig({{"a", ParamMode::kVal, Type::floating()},
                       {"c", ParamMode::kRes, Type::floating()}});
  EXPECT_TRUE(signatures_compatible(imp, exp));
  // ...but the superset direction is not.
  EXPECT_FALSE(signatures_compatible(exp, imp));
}

TEST(Signatures, OrderMatters) {
  Signature exp = sig({{"a", ParamMode::kVal, Type::floating()},
                       {"b", ParamMode::kVal, Type::floating()}});
  Signature imp = sig({{"b", ParamMode::kVal, Type::floating()},
                       {"a", ParamMode::kVal, Type::floating()}});
  EXPECT_FALSE(signatures_compatible(imp, exp));
}

TEST(Signatures, ModeAndTypeMismatchesExplained) {
  Signature exp = sig({{"x", ParamMode::kVal, Type::floating()}});
  std::string why = signature_compatibility_error(
      sig({{"x", ParamMode::kRes, Type::floating()}}), exp);
  EXPECT_NE(why.find("mode"), std::string::npos);
  why = signature_compatibility_error(
      sig({{"x", ParamMode::kVal, Type::real_double()}}), exp);
  EXPECT_NE(why.find("type"), std::string::npos);
}

// --- Canonical encoding across architecture pairs --------------------------------------

class CrossArchCodec
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
 protected:
  const arch::ArchDescriptor& source() {
    return arch_catalog(std::get<0>(GetParam()));
  }
  const arch::ArchDescriptor& target() {
    return arch_catalog(std::get<1>(GetParam()));
  }
};

const char* kArchNames[] = {"sun-sparc10", "cray-ymp", "intel-i860",
                            "ibm-370", "ibm-rs6000"};

TEST_P(CrossArchCodec, DoubleSurvivesWithinConversionEpsilon) {
  const Type t = Type::real_double();
  for (double v : {1.0, -288.15, 101325.0, 1.27e7, 3.3e-7}) {
    ByteWriter out;
    encode_canonical(source(), t, Value::real(v), out);
    ByteReader in(out.bytes());
    Value back = decode_canonical(target(), t, in);
    const double eps = conversion_epsilon(source(), target(), t);
    EXPECT_LE(std::abs(back.as_real() - v) / std::abs(v), eps)
        << source().name << " -> " << target().name << " value " << v;
  }
}

TEST_P(CrossArchCodec, IntegerAndStringAreExact) {
  ByteWriter out;
  encode_canonical(source(), Type::integer(), Value::integer(-123456), out);
  encode_canonical(source(), Type::string(), Value::str("engine"), out);
  ByteReader in(out.bytes());
  EXPECT_EQ(decode_canonical(target(), Type::integer(), in).as_integer(),
            -123456);
  EXPECT_EQ(decode_canonical(target(), Type::string(), in).as_string(),
            "engine");
}

TEST_P(CrossArchCodec, StructuredValueRoundTrips) {
  const Type t = Type::record({
      {"st", Type::array(4, Type::floating())},
      {"n", Type::integer()},
      {"name", Type::string()},
  });
  Value v = Value::record({Value::real_array({102.0, 288.15, 101325.0, 0.02}),
                           Value::integer(7), Value::str("fan")});
  ByteWriter out;
  encode_canonical(source(), t, v, out);
  ByteReader in(out.bytes());
  Value back = decode_canonical(target(), t, in);
  EXPECT_EQ(back.items()[1].as_integer(), 7);
  EXPECT_EQ(back.items()[2].as_string(), "fan");
  const double eps = conversion_epsilon(source(), target(), t);
  for (int i = 0; i < 4; ++i) {
    double orig = v.items()[0].items()[i].as_real();
    double got = back.items()[0].items()[i].as_real();
    EXPECT_LE(std::abs(got - orig), std::abs(orig) * eps + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CrossArchCodec,
    ::testing::Combine(::testing::ValuesIn(kArchNames),
                       ::testing::ValuesIn(kArchNames)));

// --- Heterogeneity edge cases (§4.1 behaviours) ----------------------------------------

TEST(CanonicalEdge, CrayWideIntegerRejectedByCanonicalForm) {
  const arch::ArchDescriptor& cray = arch_catalog("cray-ymp");
  ByteWriter out;
  EXPECT_THROW(encode_canonical(cray, Type::integer(),
                                Value::integer(1ll << 40), out),
               util::RangeError);
}

TEST(CanonicalEdge, SingleVsDoubleWireWidth) {
  // The §4.1 addition of float alongside double: 4 vs 8 canonical bytes.
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  ByteWriter fw, dw;
  encode_canonical(sparc, Type::floating(), Value::real(3.14), fw);
  encode_canonical(sparc, Type::real_double(), Value::real(3.14), dw);
  EXPECT_EQ(fw.size(), 4u);
  EXPECT_EQ(dw.size(), 8u);
}

TEST(CanonicalEdge, FloatParamOverflowingBinary32IsError) {
  const arch::ArchDescriptor& cray = arch_catalog("cray-ymp");
  // 1e39 fits the Cray word and binary64, but not the canonical binary32
  // of a `float` parameter.
  ByteWriter out;
  EXPECT_THROW(
      encode_canonical(cray, Type::floating(), Value::real(1e39), out),
      util::RangeError);
  // As a `double` parameter it is fine.
  EXPECT_NO_THROW(
      encode_canonical(cray, Type::real_double(), Value::real(1e39), out));
}

TEST(CanonicalEdge, TargetFormatOverflowDetectedOnDecode) {
  // 1e80 encodes fine from the Sparc, but an IBM/370 target cannot hold it.
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  const arch::ArchDescriptor& ibm370 = arch_catalog("ibm-370");
  ByteWriter out;
  encode_canonical(sparc, Type::real_double(), Value::real(1e80), out);
  ByteReader in(out.bytes());
  EXPECT_THROW((void)decode_canonical(ibm370, Type::real_double(), in),
               util::RangeError);
}

// --- Marshal / unmarshal direction handling --------------------------------------------

TEST(Marshal, DirectionsCarryTheRightParams) {
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  Signature s = {{"in", ParamMode::kVal, Type::real_double()},
                 {"io", ParamMode::kVar, Type::real_double()},
                 {"out", ParamMode::kRes, Type::real_double()}};
  ValueList vals = {Value::real(1), Value::real(2), Value::real(3)};

  util::Bytes req = marshal(sparc, s, vals, Direction::kRequest);
  EXPECT_EQ(req.size(), 16u);  // val + var
  util::Bytes rep = marshal(sparc, s, vals, Direction::kReply);
  EXPECT_EQ(rep.size(), 16u);  // var + res

  ValueList got = unmarshal(sparc, s, req, Direction::kRequest);
  EXPECT_DOUBLE_EQ(got[0].as_real(), 1.0);
  EXPECT_DOUBLE_EQ(got[1].as_real(), 2.0);
  EXPECT_DOUBLE_EQ(got[2].as_real(), 0.0);  // res defaulted on request

  got = unmarshal(sparc, s, rep, Direction::kReply);
  EXPECT_DOUBLE_EQ(got[0].as_real(), 0.0);  // val defaulted on reply
  EXPECT_DOUBLE_EQ(got[1].as_real(), 2.0);
  EXPECT_DOUBLE_EQ(got[2].as_real(), 3.0);
}

TEST(Marshal, TrailingBytesRejected) {
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  Signature s = {{"x", ParamMode::kVal, Type::real_double()}};
  util::Bytes bytes =
      marshal(sparc, s, {Value::real(1)}, Direction::kRequest);
  bytes.push_back(0);
  EXPECT_THROW((void)unmarshal(sparc, s, bytes, Direction::kRequest),
               util::EncodingError);
}

TEST(Marshal, WrongValueCountRejected) {
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  Signature s = {{"x", ParamMode::kVal, Type::real_double()}};
  EXPECT_THROW(
      (void)marshal(sparc, s, {Value::real(1), Value::real(2)},
                    Direction::kRequest),
      util::TypeMismatchError);
}

TEST(Marshal, ErrorsNameTheParameter) {
  const arch::ArchDescriptor& cray = arch_catalog("cray-ymp");
  Signature s = {{"bigint", ParamMode::kVal, Type::integer()}};
  try {
    (void)marshal(cray, s, {Value::integer(1ll << 40)}, Direction::kRequest);
    FAIL();
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("bigint"), std::string::npos);
    EXPECT_EQ(e.code(), util::ErrorCode::kRangeError);
  }
}

TEST(Marshal, BatchSizeMatchesEncoding) {
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  Signature s = {{"a", ParamMode::kVal, Type::array(4, Type::floating())},
                 {"s", ParamMode::kVal, Type::string()},
                 {"r", ParamMode::kRes, Type::real_double()}};
  ValueList vals = {Value::real_array({1, 2, 3, 4}), Value::str("hello"),
                    Value::real(0)};
  util::Bytes req = marshal(sparc, s, vals, Direction::kRequest);
  EXPECT_EQ(req.size(), batch_size(s, vals, Direction::kRequest));
  EXPECT_EQ(batch_size(s, vals, Direction::kReply), 8u);
}

}  // namespace
}  // namespace npss::uts
