// Regression tests for the concurrency contracts the thread-safety
// audit tightened (DESIGN.md §16). Each test reproduces a access
// pattern that used to be a data race — counters read as plain uint64s
// while replica threads bumped them, a close status handed out by
// reference while the loop thread was writing it, a routing-table
// reference read after the lock was dropped — and exercises it under
// real concurrency. They pass trivially under the fixed code and light
// up under TSan (the CI tsan lane) if any of the fixes regress.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "rpc/bus/channel.hpp"
#include "rpc/bus/dispatcher.hpp"
#include "rpc/manager.hpp"
#include "sim/cluster.hpp"
#include "sim/network.hpp"

namespace npss {
namespace {

using namespace std::chrono_literals;

// ManagerStats used to be a struct of plain uint64 fields shared between
// every replica thread and SchoonerSystem::stats(); the aggregation read
// them off-lock. ManagerCounters makes each tally atomic and snapshot()
// the sanctioned read path. Hammer both sides concurrently: under TSan a
// regression to plain fields is a reported race, and in any build the
// final snapshot must equal the exact increment counts.
TEST(ConcurrencyContracts, ManagerCountersSnapshotRacesWithIncrements) {
  rpc::ManagerCounters counters;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const rpc::ManagerStats s = counters.snapshot();
      // Each tally is monotone; a torn read would show it going back.
      EXPECT_GE(s.lookups, last);
      last = s.lookups;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&counters] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        ++counters.lookups;
        ++counters.lines_created;
        ++counters.log_appends;
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const rpc::ManagerStats s = counters.snapshot();
  EXPECT_EQ(s.lookups, kWriters * kPerWriter);
  EXPECT_EQ(s.lines_created, kWriters * kPerWriter);
  EXPECT_EQ(s.log_appends, kWriters * kPerWriter);
  EXPECT_EQ(s.moves, 0u);
}

// BusChannel::close_status() used to return a const reference into the
// channel while the dispatcher loop's on_close was writing that very
// field. Open a real channel, kill the server side, and read the status
// continuously while the close lands: the by-value, under-lock accessor
// must never yield a torn Status.
TEST(ConcurrencyContracts, BusChannelCloseStatusReadableWhileCloseLands) {
  // A bare listener that accepts one connection and never speaks.
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len), 0);
  const int port = ntohs(addr.sin_port);

  rpc::bus::BusDispatcher dispatcher("close-status-test");
  auto channel =
      rpc::bus::BusChannel::open(dispatcher, "127.0.0.1", port);
  int server_fd = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(server_fd, 0);
  ASSERT_TRUE(channel->alive());

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // Worth nothing individually; the point is that these reads
      // overlap the on_close write on the loop thread.
      const util::Status s = channel->close_status();
      if (!s.is_ok()) {
        EXPECT_FALSE(s.message().empty());
      }
    }
  });

  ::close(server_fd);  // peer disappears; loop thread fires on_close
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (channel->alive() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_FALSE(channel->alive());
  EXPECT_FALSE(channel->close_status().is_ok());
  dispatcher.stop();
  ::close(listen_fd);
}

// Cluster::route() used to return a reference into the routing table
// that send() then read after dropping the cluster lock — a use-after-
// free the moment set_site_link replaced the entry. route() now returns
// by value; reconfiguring links while senders are in flight must be
// safe and lose nothing.
TEST(ConcurrencyContracts, RoutingTableReconfiguresUnderLiveTraffic) {
  sim::Cluster cluster;
  cluster.add_machine("a", "sun-sparc10", "east");
  cluster.add_machine("b", "cray-ymp", "west");
  cluster.set_site_link("east", "west", sim::link_profile("internet-wan"));

  auto from = cluster.create_endpoint("a", "sender");
  auto to = cluster.create_endpoint("b", "receiver");

  constexpr int kMessages = 4000;
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      cluster.send(*from, to->address(), util::Bytes(64));
    }
  });
  std::thread reconfig([&] {
    const sim::LinkProfile& wan = sim::link_profile("internet-wan");
    const sim::LinkProfile& campus =
        sim::link_profile("campus-multigateway");
    for (int i = 0; i < 2000; ++i) {
      cluster.set_site_link("east", "west", (i & 1) ? wan : campus);
    }
  });
  sender.join();
  reconfig.join();

  int received = 0;
  while (to->try_receive()) ++received;
  EXPECT_EQ(received, kMessages);
  EXPECT_EQ(cluster.traffic().messages,
            static_cast<std::uint64_t>(kMessages));
}

// The SpanCollector is the observability layer's shared sink: every
// instrumented thread records into it while reporters snapshot. Bounded
// capacity plus concurrent record/snapshot/size must stay consistent:
// records either land or are counted dropped, never lost.
TEST(ConcurrencyContracts, SpanCollectorRecordsWhileSnapshotting) {
  obs::SpanCollector collector(512);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto spans = collector.snapshot();
      EXPECT_LE(spans.size(), collector.capacity());
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&collector, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        obs::SpanRecord rec;
        rec.trace_id = static_cast<std::uint64_t>(w) + 1;
        rec.span_id = i + 1;
        rec.layer = "test";
        rec.name = "contract";
        collector.record(std::move(rec));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(collector.size() + collector.dropped(), kWriters * kPerWriter);
  EXPECT_EQ(collector.size(), collector.capacity());
}

}  // namespace
}  // namespace npss
