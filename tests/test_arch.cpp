// Unit and property tests for the simulated architecture layer: byte-exact
// float formats (IEEE, Cray, IBM hexadecimal), integer images, byte order,
// and the Fortran name-case conventions behind §4.1.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "arch/arch.hpp"
#include "arch/float_format.hpp"

namespace npss::arch {
namespace {

using util::RangeError;

// --- Round-trip properties over a value grid ------------------------------------

struct FormatCase {
  FloatFormatKind kind;
  double max_rel_error;
};

class FloatFormatRoundTrip
    : public ::testing::TestWithParam<std::tuple<FormatCase, double>> {};

const FormatCase kFormats[] = {
    {FloatFormatKind::kIeee32, 1.2e-7},
    {FloatFormatKind::kIeee64, 0.0},
    {FloatFormatKind::kCray64, 7.2e-15},
    {FloatFormatKind::kIbmHex32, 9.6e-7},
    {FloatFormatKind::kIbmHex64, 4.5e-16},
};

const double kValues[] = {
    0.0,       1.0,         -1.0,       3.14159265358979,
    -2.5e-3,   6.62607e-34, 1.0e20,     -9.81,
    288.15,    101325.0,    1.27e7,     0.3048,
    1.0e-30,   -4.448e4,    65536.0,    1.0 / 3.0,
};

TEST_P(FloatFormatRoundTrip, EncodeDecodeWithinFormatPrecision) {
  const auto& [format, value] = GetParam();
  util::Bytes word = float_encode(format.kind, value);
  EXPECT_EQ(word.size(), float_format_width(format.kind));
  double back = float_decode(format.kind, word);
  if (value == 0.0) {
    EXPECT_EQ(back, 0.0);
  } else {
    EXPECT_LE(std::abs(back - value) / std::abs(value),
              format.max_rel_error)
        << float_format_name(format.kind) << " value " << value;
  }
}

TEST_P(FloatFormatRoundTrip, EncodingIsDeterministic) {
  const auto& [format, value] = GetParam();
  EXPECT_EQ(float_encode(format.kind, value), float_encode(format.kind, value));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FloatFormatRoundTrip,
    ::testing::Combine(::testing::ValuesIn(kFormats),
                       ::testing::ValuesIn(kValues)));

// --- Format-specific bit-level checks ------------------------------------------

TEST(FloatFormats, Ieee64IsExactRoundTrip) {
  for (double v : {1.0e-300, 1.7e308, -0.1, 1234.5678e-12}) {
    EXPECT_EQ(float_decode(FloatFormatKind::kIeee64,
                           float_encode(FloatFormatKind::kIeee64, v)),
              v);
  }
}

TEST(FloatFormats, Ieee32KnownBitPattern) {
  // 1.0f is 0x3f800000 big-endian.
  util::Bytes w = float_encode(FloatFormatKind::kIeee32, 1.0);
  EXPECT_EQ(w, (util::Bytes{0x3f, 0x80, 0x00, 0x00}));
}

TEST(FloatFormats, CrayOneHasDocumentedLayout) {
  // 1.0 = 0.5 * 2^1: biased exponent 16385, mantissa 2^47.
  util::Bytes w = float_encode(FloatFormatKind::kCray64, 1.0);
  std::uint64_t word = 0;
  for (std::uint8_t b : w) word = (word << 8) | b;
  EXPECT_EQ(word >> 63, 0u);                       // sign
  EXPECT_EQ((word >> 48) & 0x7fff, 16385u);        // exponent
  EXPECT_EQ(word & ((1ull << 48) - 1), 1ull << 47);  // mantissa
}

TEST(FloatFormats, CrayRepresentsMagnitudesBeyondIeee) {
  // A value near 2^2000 is fine on the Cray...
  util::Bytes word = cray_word_from_parts(false, 16384 + 2000, 1ull << 47);
  // ...and decoding it into binary64 must raise the §4.1 error — never a
  // quiet infinity (the rejected design alternative).
  try {
    (void)float_decode(FloatFormatKind::kCray64, word);
    FAIL() << "expected RangeError";
  } catch (const RangeError& e) {
    EXPECT_NE(std::string(e.what()).find("range"), std::string::npos);
  }
}

TEST(FloatFormats, CrayOutOfRangeHelperThrows) {
  EXPECT_THROW(
      (void)float_decode(FloatFormatKind::kCray64, cray_out_of_range_word()),
      RangeError);
}

TEST(FloatFormats, CrayHasNoInfOrNan) {
  EXPECT_THROW((void)float_encode(FloatFormatKind::kCray64,
                                  std::numeric_limits<double>::infinity()),
               RangeError);
  EXPECT_THROW((void)float_encode(FloatFormatKind::kCray64,
                                  std::numeric_limits<double>::quiet_NaN()),
               RangeError);
}

TEST(FloatFormats, IbmHexOverflowsBelowIeeeMax) {
  // IBM hex tops out near 7.2e75; 1e100 fits binary64 but not HFP.
  EXPECT_THROW((void)float_encode(FloatFormatKind::kIbmHex64, 1e100),
               RangeError);
  EXPECT_NO_THROW((void)float_encode(FloatFormatKind::kIbmHex64, 7.0e75));
}

TEST(FloatFormats, IbmHexUnderflowFlushesToZero) {
  util::Bytes w = float_encode(FloatFormatKind::kIbmHex32, 1e-100);
  EXPECT_EQ(float_decode(FloatFormatKind::kIbmHex32, w), 0.0);
}

TEST(FloatFormats, Ieee32OverflowIsAnError) {
  EXPECT_THROW((void)float_encode(FloatFormatKind::kIeee32, 1e39),
               RangeError);
}

TEST(FloatFormats, RangeSubsumptionMatrix) {
  using F = FloatFormatKind;
  EXPECT_TRUE(float_range_subsumes(F::kCray64, F::kIeee64));
  EXPECT_FALSE(float_range_subsumes(F::kIeee64, F::kCray64));
  EXPECT_TRUE(float_range_subsumes(F::kIeee64, F::kIbmHex64));
  EXPECT_FALSE(float_range_subsumes(F::kIbmHex64, F::kIeee64));
  EXPECT_TRUE(float_range_subsumes(F::kIbmHex32, F::kIeee32));
  EXPECT_TRUE(float_range_subsumes(F::kIeee64, F::kIeee64));
}

TEST(FloatFormats, WrongWidthIsEncodingError) {
  util::Bytes three(3, 0);
  EXPECT_THROW((void)float_decode(FloatFormatKind::kIeee32, three),
               util::EncodingError);
  EXPECT_THROW((void)float_decode(FloatFormatKind::kCray64, three),
               util::EncodingError);
}

// --- Architecture descriptors ----------------------------------------------------

TEST(ArchCatalog, ContainsThePapersTestbed) {
  for (const char* name :
       {"sun-sparc10", "sgi-4d340", "sgi-4d420", "sgi-4d480", "cray-ymp",
        "convex-c220", "ibm-rs6000", "intel-i860"}) {
    EXPECT_NO_THROW((void)arch_catalog(name)) << name;
  }
  EXPECT_THROW((void)arch_catalog("vax-11"), util::NoSuchMachineError);
}

TEST(ArchCatalog, CrayUsesWideFloatsAndUppercaseNames) {
  const ArchDescriptor& cray = arch_catalog("cray-ymp");
  EXPECT_EQ(cray.float_single, FloatFormatKind::kCray64);
  EXPECT_EQ(cray.float_double, FloatFormatKind::kCray64);
  EXPECT_EQ(cray.int_width, 8u);
  EXPECT_EQ(cray.fortran_case, NameCase::kUpper);
  EXPECT_EQ(fortran_external_name(cray, "setshaft"), "SETSHAFT");
}

TEST(ArchCatalog, WorkstationsUseLowercaseIeee) {
  const ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  EXPECT_TRUE(sparc.ieee());
  EXPECT_EQ(fortran_external_name(sparc, "SetShaft"), "setshaft");
}

TEST(ArchNative, LittleEndianReversesBytes) {
  const ArchDescriptor& i860 = arch_catalog("intel-i860");
  const ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  util::Bytes le = native_double(i860, 1.0);
  util::Bytes be = native_double(sparc, 1.0);
  ASSERT_EQ(le.size(), be.size());
  for (std::size_t i = 0; i < le.size(); ++i) {
    EXPECT_EQ(le[i], be[be.size() - 1 - i]);
  }
  EXPECT_DOUBLE_EQ(read_native_double(i860, le), 1.0);
}

TEST(ArchNative, IntegerRoundTripsWithSignExtension) {
  for (const char* name : {"sun-sparc10", "intel-i860", "cray-ymp"}) {
    const ArchDescriptor& a = arch_catalog(name);
    for (std::int64_t v : {0ll, 1ll, -1ll, 123456789ll, -2147483648ll}) {
      EXPECT_EQ(read_native_integer(a, native_integer(a, v)), v)
          << name << " " << v;
    }
  }
}

TEST(ArchNative, CrayHolds64BitIntegers) {
  const ArchDescriptor& cray = arch_catalog("cray-ymp");
  const std::int64_t big = 1ll << 40;
  EXPECT_EQ(read_native_integer(cray, native_integer(cray, big)), big);
  // A 32-bit machine cannot.
  const ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  EXPECT_THROW((void)native_integer(sparc, big), RangeError);
}

TEST(ArchNative, CrayDoubleKeeps48BitPrecision) {
  const ArchDescriptor& cray = arch_catalog("cray-ymp");
  const double value = 1.0 + std::ldexp(1.0, -40);
  double back = read_native_double(cray, native_double(cray, value));
  EXPECT_NEAR(back, value, std::ldexp(std::abs(value), -47));
  // ...but not full binary64 precision:
  const double fine = 1.0 + std::ldexp(1.0, -52);
  EXPECT_EQ(read_native_double(cray, native_double(cray, fine)), 1.0);
}

}  // namespace
}  // namespace npss::arch
