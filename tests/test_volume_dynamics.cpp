// Tests of the intercomponent mixing-volume extension: with a finite
// plenum volume the F100 gains a pressure state with a millisecond time
// constant — a stiff system where TESS's Gear method earns its place on
// the system module's widget (§3.2).
#include <gtest/gtest.h>

#include <cmath>

#include "tess/engine.hpp"

namespace npss::tess {
namespace {

F100Engine volume_engine() {
  F100Config cfg;
  cfg.mixer_volume_m3 = 0.3;
  return F100Engine(cfg);
}

TEST(VolumeDynamics, SteadyStateMatchesQuasiSteadyModel) {
  F100Engine vol = volume_engine();
  F100Engine qs;
  FlightCondition sls;
  SteadyResult v = vol.balance(1.0, sls);
  SteadyResult q = qs.balance(1.0, sls);
  // At equilibrium the plenum neither fills nor empties, so the cycle
  // must coincide with the quasi-steady model.
  EXPECT_NEAR(v.performance.speeds[0] / q.performance.speeds[0], 1.0, 1e-5);
  EXPECT_NEAR(v.performance.speeds[1] / q.performance.speeds[1], 1.0, 1e-5);
  EXPECT_NEAR(v.performance.thrust / q.performance.thrust, 1.0, 1e-4);
  ASSERT_EQ(v.performance.states.size(), 3u);
  EXPECT_GT(v.performance.states[2], 1.5e5);  // a physical plenum pressure
  EXPECT_LT(v.performance.states[2], 5.0e5);
  // The pressure derivative is balanced too.
  ASSERT_EQ(v.performance.accelerations.size(), 3u);
  EXPECT_LT(std::abs(v.performance.accelerations[2]), 100.0);  // Pa/s
}

TEST(VolumeDynamics, StateVectorShapes) {
  F100Engine vol = volume_engine();
  EXPECT_EQ(vol.num_states(), 3);
  EXPECT_EQ(vol.num_spools(), 2);
  EXPECT_EQ(vol.design_states().size(), 3u);
  EXPECT_EQ(vol.balance_scales().size(), 3u);
  EXPECT_THROW((void)vol.evaluate({10000.0, 13000.0}, 1.0, {}),
               util::ModelError);

  F100Engine qs;
  EXPECT_EQ(qs.num_states(), 2);
}

TEST(VolumeDynamics, GearIntegratesTheStiffSystem) {
  F100Engine vol = volume_engine();
  FlightCondition sls;
  SteadyResult steady = vol.balance(1.0, sls);
  FuelSchedule throttle = [](double) { return 1.1; };
  TransientResult tr = vol.transient(steady.performance.states, throttle,
                                     sls, 0.3, 0.01,
                                     solvers::IntegratorKind::kGear);
  const Performance& end = tr.history.back().performance;
  EXPECT_TRUE(std::isfinite(end.states[2]));
  EXPECT_GT(end.speeds[1], steady.performance.speeds[1]);  // spooling up
  // The plenum pressure tracks its quasi-steady value closely (its time
  // constant is far below the spool's).
  EXPECT_GT(end.states[2], 2.0e5);
  EXPECT_LT(end.states[2], 4.0e5);
}

TEST(VolumeDynamics, ExplicitEulerUnstableAtEngineStepSizes) {
  // dt = 10 ms is several times the plenum time constant: the explicit
  // method's pressure state oscillates divergently (ending far outside
  // the physical envelope) while Gear stays settled at the same step.
  F100Engine vol = volume_engine();
  FlightCondition sls;
  SteadyResult steady = vol.balance(1.0, sls);
  FuelSchedule throttle = [](double) { return 1.1; };
  TransientResult euler = vol.transient(
      steady.performance.states, throttle, sls, 0.3, 0.01,
      solvers::IntegratorKind::kModifiedEuler);
  TransientResult gear = vol.transient(
      steady.performance.states, throttle, sls, 0.3, 0.01,
      solvers::IntegratorKind::kGear);
  const double euler_dp =
      std::abs(euler.history.back().performance.accelerations[2]);
  const double gear_dp =
      std::abs(gear.history.back().performance.accelerations[2]);
  EXPECT_GT(euler_dp, 1e6) << "explicit method should be oscillating hard";
  EXPECT_LT(gear_dp, 1e5) << "Gear should be near-settled";
  // The explicit pressure state has left the physical envelope entirely.
  const double euler_pt = euler.history.back().performance.states[2];
  EXPECT_TRUE(euler_pt < 0.4e5 || euler_pt > 1.0e6) << euler_pt;
}

TEST(VolumeDynamics, ExplicitEulerRecoversAtTinySteps) {
  // Shrinking dt below the stability bound rescues the explicit method —
  // at ~20x the step count Gear needed.
  F100Engine vol = volume_engine();
  FlightCondition sls;
  SteadyResult steady = vol.balance(1.0, sls);
  FuelSchedule throttle = [](double) { return 1.1; };
  TransientResult tr = vol.transient(steady.performance.states, throttle,
                                     sls, 0.05, 0.0005,
                                     solvers::IntegratorKind::kModifiedEuler);
  EXPECT_TRUE(std::isfinite(tr.history.back().performance.states[2]));
}

TEST(VolumeDynamics, MarchSteadyUsesGearAndConverges) {
  F100Engine vol = volume_engine();
  FlightCondition sls;
  SteadyResult march = vol.balance(1.0, sls, SteadyMethod::kRk4March);
  SteadyResult newton = vol.balance(1.0, sls);
  EXPECT_NEAR(march.performance.speeds[0] / newton.performance.speeds[0],
              1.0, 2e-3);
  EXPECT_NEAR(march.performance.speeds[1] / newton.performance.speeds[1],
              1.0, 2e-3);
}

TEST(VolumeDynamics, LargerVolumeSlowsThePressureTransient) {
  FlightCondition sls;
  auto settle_rate = [&](double volume) {
    F100Config cfg;
    cfg.mixer_volume_m3 = volume;
    F100Engine engine(cfg);
    SteadyResult steady = engine.balance(1.0, sls);
    // Perturb the plenum pressure 2% and measure the restoring rate.
    std::vector<double> states = steady.performance.states;
    states[2] *= 1.02;
    Performance p = engine.evaluate(states, 1.0, sls);
    return std::abs(p.accelerations[2]) / (0.02 * states[2]);  // 1/s
  };
  const double fast = settle_rate(0.15);
  const double slow = settle_rate(0.6);
  EXPECT_NEAR(fast / slow, 4.0, 0.8)
      << "restoring rate should scale inversely with volume";
}

}  // namespace
}  // namespace npss::tess
