// End-to-end test of the static stub compiler: the build runs
// schooner-stubgen over tests/specs/shaft.spec, this file #includes the
// generated header, and the typed stubs must round-trip real calls through
// the Schooner runtime — proving generated and dynamic stubs are
// equivalent.
#include <gtest/gtest.h>

#include "npss/procedures.hpp"
#include "tess/components.hpp"
#include "rpc/schooner.hpp"

#include "shaft_stubs.hpp"  // generated at build time

namespace npss {
namespace {

class StubgenGeneratedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.add_machine("sparc", "sun-sparc10", "lerc");
    cluster_.add_machine("cray", "cray-ymp", "lerc");
    glue::install_tess_procedures(cluster_, "cray");
    system_ = std::make_unique<rpc::SchoonerSystem>(cluster_, "sparc");
  }

  sim::Cluster cluster_;
  std::unique_ptr<rpc::SchoonerSystem> system_;
};

TEST_F(StubgenGeneratedTest, GeneratedClientStubCallsShaft) {
  auto client = system_->make_client("sparc", "stubgen-test");
  client->contact_schx("cray", glue::kShaftPath);

  SetshaftStub setshaft(*client);
  auto sr = setshaft.call({1.0e6f, 100.0f, 1.0e4f, 0.85f}, 1,
                          {1.05e6f, 100.0f, 1.05e4f, 0.88f}, 1);
  EXPECT_NEAR(sr.ecorr, 0.99, 1e-6);

  ShaftStub shaft(*client);
  // Turbine delivers more than the compressor absorbs: positive accel.
  auto r = shaft.call({1.0e6f, 100.0f, 1.0e4f, 0.85f}, 1,
                      {1.2e6f, 100.0f, 1.2e4f, 0.88f}, 1, sr.ecorr, 10000.0f,
                      40.0f);
  EXPECT_GT(r.dxspl, 0.0);

  // And the generated result must agree with the local computation.
  const double ecom[4] = {1.0e6, 100.0, 1.0e4, 0.85};
  const double etur[4] = {1.2e6, 100.0, 1.2e4, 0.88};
  const double local =
      tess::shaft(ecom, 1, etur, 1, sr.ecorr, 10000.0, 40.0);
  EXPECT_NEAR(r.dxspl / local, 1.0, 1e-5);
}

TEST_F(StubgenGeneratedTest, GeneratedServerStubDispatches) {
  // The export declaration in the spec produced make_probe_def; host a
  // procedure with it and call it dynamically.
  static int call_count = 0;
  call_count = 0;
  cluster_.install_image(
      "cray", "/test/probe",
      rpc::make_procedure_image(
          "export probe prog(\"x\" val double, \"tag\" val string, "
          "\"y\" res double, \"stats\" res record \"calls\": integer; "
          "\"sum\": double end)",
          {make_probe_def([](double x, const std::string& tag, double& y,
                             std::tuple<std::int32_t, double>& stats) {
            ++call_count;
            y = x * 2.0 + static_cast<double>(tag.size());
            stats = {call_count, x};
          })}));

  auto client = system_->make_client("sparc", "server-stub-test");
  client->contact_schx("cray", "/test/probe");
  auto probe = client->import_proc(
      "probe",
      "import probe prog(\"x\" val double, \"tag\" val string, "
      "\"y\" res double, \"stats\" res record \"calls\": integer; "
      "\"sum\": double end)");
  uts::ValueList out = probe->call(
      {uts::Value::real(21.0), uts::Value::str("abc"), uts::Value::real(0),
       uts::Value::record({uts::Value::integer(0), uts::Value::real(0)})});
  EXPECT_DOUBLE_EQ(out[2].as_real(), 45.0);
  EXPECT_EQ(out[3].items()[0].as_integer(), 1);
  EXPECT_DOUBLE_EQ(out[3].items()[1].as_real(), 21.0);
}

}  // namespace
}  // namespace npss
