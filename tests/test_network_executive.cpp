// Tests of the prototype executive's network layer: building the Figure 2
// F100 network, balancing and flying it through the dataflow scheduler,
// interactive remote placement via the §3.3 widgets, module removal
// triggering sch_i_quit, and save/reload of the engine model (the Network
// Editor's save capability plus the persistent Manager of §4.2).
#include <gtest/gtest.h>

#include "flow/network.hpp"
#include "npss/network_driver.hpp"
#include "npss/procedures.hpp"
#include "npss/runtime.hpp"
#include "tess/engine.hpp"

namespace npss {
namespace {

using glue::F100NetworkNames;
using glue::NetworkEngineDriver;
using glue::build_f100_network;

class NetworkExecutiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.add_machine("sparc-ua", "sun-sparc10", "uarizona");
    cluster_.add_machine("cray-lerc", "cray-ymp", "lerc");
    cluster_.add_machine("rs6000-lerc", "ibm-rs6000", "lerc");
    cluster_.set_site_link("lerc", "uarizona",
                           sim::link_profile("internet-wan"));
    glue::install_tess_procedures_everywhere(cluster_);
    system_ = std::make_unique<rpc::SchoonerSystem>(cluster_, "sparc-ua");
    glue::configure_npss_runtime(cluster_, *system_, "sparc-ua");
  }

  void TearDown() override { glue::clear_npss_runtime(); }

  sim::Cluster cluster_;
  std::unique_ptr<rpc::SchoonerSystem> system_;
};

TEST_F(NetworkExecutiveTest, NetworkBalanceMatchesDirectEngine) {
  flow::Network net;
  build_f100_network(net);
  NetworkEngineDriver driver(net);
  glue::NetworkSteadyResult via_network = driver.balance(1.0);

  tess::F100Engine direct;
  tess::SteadyResult reference = direct.balance(1.0, tess::FlightCondition{});

  EXPECT_NEAR(via_network.speeds[0] / reference.performance.speeds[0], 1.0,
              1e-6);
  EXPECT_NEAR(via_network.speeds[1] / reference.performance.speeds[1], 1.0,
              1e-6);
  EXPECT_NEAR(via_network.thrust / reference.performance.thrust, 1.0, 1e-6);
  EXPECT_NEAR(via_network.t4 / reference.performance.t4, 1.0, 1e-6);
}

TEST_F(NetworkExecutiveTest, TransientThroughNetworkMatchesDirectEngine) {
  flow::Network net;
  build_f100_network(net);
  NetworkEngineDriver driver(net);
  driver.balance(1.0);
  tess::FuelSchedule throttle = [](double t) { return t < 0.1 ? 1.0 : 1.2; };
  auto history = driver.run_transient(throttle, 0.5, 0.02);

  tess::F100Engine direct;
  tess::SteadyResult steady = direct.balance(1.0, tess::FlightCondition{});
  tess::TransientResult reference =
      direct.transient(steady.performance.speeds, throttle,
                       tess::FlightCondition{}, 0.5, 0.02,
                       solvers::IntegratorKind::kModifiedEuler);

  ASSERT_EQ(history.size(), reference.history.size());
  const auto& net_end = history.back();
  const auto& ref_end = reference.history.back().performance;
  EXPECT_NEAR(net_end.speeds[0] / ref_end.speeds[0], 1.0, 1e-6);
  EXPECT_NEAR(net_end.speeds[1] / ref_end.speeds[1], 1.0, 1e-6);
  EXPECT_NEAR(net_end.thrust / ref_end.thrust, 1.0, 1e-6);
}

TEST_F(NetworkExecutiveTest, WidgetPlacementRunsModuleRemotely) {
  flow::Network net;
  F100NetworkNames names = build_f100_network(net);

  // The §3.3 interaction: pick the remote machine on the radio buttons
  // and type the executable's pathname.
  flow::Module& burner = net.module(names.burner);
  burner.widget("machine").select("cray-lerc");
  burner.widget("path").set_text(glue::kCombustorPath);

  NetworkEngineDriver driver(net);
  driver.set_tolerances(5e-6, 1e-4);
  glue::NetworkSteadyResult remote = driver.balance(1.0);

  tess::F100Engine direct;
  tess::SteadyResult reference = direct.balance(1.0, tess::FlightCondition{});
  EXPECT_NEAR(remote.thrust / reference.performance.thrust, 1.0, 5e-4);

  // The Manager saw exactly one line with one started process.
  EXPECT_GE(system_->stats().processes_started, 1u);
}

TEST_F(NetworkExecutiveTest, ModuleRemovalShutsDownOnlyItsLine) {
  flow::Network net;
  F100NetworkNames names = build_f100_network(net);
  net.module(names.burner).widget("machine").select("cray-lerc");
  net.module(names.tailpipe).widget("machine").select("rs6000-lerc");

  NetworkEngineDriver driver(net);
  driver.set_tolerances(5e-6, 1e-4);
  driver.balance(1.0);
  const auto lines_before = system_->stats().lines_shut_down;

  // Deleting one module from the network must terminate only its remote
  // computation (§4.2's shutdown semantics) — the tailpipe's line lives.
  net.remove(names.burner);
  EXPECT_EQ(system_->stats().lines_shut_down, lines_before + 1);

  // Rebuild the burner locally and keep computing.
  net.add(names.burner, "tess-combustor");
  net.module(names.burner).widget("dp").set_real(0.05);
  net.connect(names.hpc, "out", names.burner, "in");
  net.connect(names.burner, "out", names.hpt, "in");
  glue::NetworkSteadyResult again = driver.balance(1.0);
  EXPECT_GT(again.thrust, 0.0);
}

TEST_F(NetworkExecutiveTest, SaveAndReloadEngineModel) {
  flow::Network net;
  F100NetworkNames names = build_f100_network(net);
  net.module(names.burner).widget("wfuel").set_real(1.1);
  std::string saved = net.save_to_text();

  flow::Network reloaded;
  reloaded.load_from_text(saved);
  EXPECT_DOUBLE_EQ(
      reloaded.module(names.burner).widget("wfuel").real(), 1.1);
  EXPECT_EQ(reloaded.connections().size(), net.connections().size());

  NetworkEngineDriver driver(reloaded);
  glue::NetworkSteadyResult r = driver.balance(1.0);
  EXPECT_GT(r.thrust, 0.0);
}

TEST_F(NetworkExecutiveTest, SystemModuleMethodWidgetsSelectSolvers) {
  flow::Network net;
  F100NetworkNames names = build_f100_network(net);
  NetworkEngineDriver driver(net);

  glue::NetworkSteadyResult newton = driver.balance(1.0);

  net.module(names.system).widget("steady-method").select("Runge-Kutta 4");
  glue::NetworkSteadyResult march = driver.balance(1.0);

  EXPECT_NEAR(march.speeds[0] / newton.speeds[0], 1.0, 1e-3);
  EXPECT_NEAR(march.speeds[1] / newton.speeds[1], 1.0, 1e-3);
  EXPECT_GT(march.iterations, newton.iterations)
      << "the pseudo-transient march takes more steps than Newton";
}

}  // namespace
}  // namespace npss
