// Tests of the virtual cluster: topology and routing, link-profile cost
// ordering, deterministic virtual time, program images, endpoint lifecycle,
// and traffic accounting.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/cluster.hpp"
#include "sim/network.hpp"

namespace npss::sim {
namespace {

TEST(LinkProfiles, CatalogOrderingMatchesThePaperNetworkClasses) {
  const LinkProfile& loop = link_profile("loopback");
  const LinkProfile& lan = link_profile("ethernet-lan");
  const LinkProfile& campus = link_profile("campus-multigateway");
  const LinkProfile& wan = link_profile("internet-wan");
  const std::size_t payload = 200;  // a TESS-call-sized message
  EXPECT_LT(loop.transfer_time(payload), lan.transfer_time(payload));
  EXPECT_LT(lan.transfer_time(payload), campus.transfer_time(payload));
  EXPECT_LT(campus.transfer_time(payload), wan.transfer_time(payload));
}

TEST(LinkProfiles, WanCostIsLatencyDominatedForSmallPayloads) {
  const LinkProfile& wan = link_profile("internet-wan");
  const util::SimTime base = wan.transfer_time(0);
  const util::SimTime with_payload = wan.transfer_time(200);
  // Serialization of a 200-byte call adds well under half the total.
  EXPECT_LT(with_payload - base, base / 2);
}

TEST(LinkProfiles, BandwidthMattersForBulkPayloads) {
  const LinkProfile& wan = link_profile("internet-wan");
  EXPECT_GT(wan.transfer_time(1 << 20), 10 * wan.transfer_time(200));
}

TEST(LinkProfiles, UnknownProfileThrows) {
  EXPECT_THROW((void)link_profile("fddi"), util::NoRouteError);
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.add_machine("a", "sun-sparc10", "site1");
    cluster_.add_machine("b", "cray-ymp", "site1");
    cluster_.add_machine("c", "ibm-rs6000", "site2");
    cluster_.set_site_link("site1", "site2", link_profile("internet-wan"));
  }
  Cluster cluster_;
};

TEST_F(ClusterTest, RoutingPicksTheRightLink) {
  const Machine& a = cluster_.machine("a");
  const Machine& b = cluster_.machine("b");
  const Machine& c = cluster_.machine("c");
  EXPECT_EQ(cluster_.route(a, a).name, "loopback");
  EXPECT_EQ(cluster_.route(a, b).name, "ethernet-lan");
  EXPECT_EQ(cluster_.route(a, c).name, "internet-wan");
  EXPECT_EQ(cluster_.route(c, a).name, "internet-wan");
}

TEST_F(ClusterTest, MissingRouteAndMachineAreErrors) {
  cluster_.add_machine("d", "sgi-4d340", "site3");
  EXPECT_THROW((void)cluster_.route(cluster_.machine("a"),
                                    cluster_.machine("d")),
               util::NoRouteError);
  EXPECT_THROW((void)cluster_.machine("zz"), util::NoSuchMachineError);
  EXPECT_THROW((void)cluster_.add_machine("a", "sun-sparc10", "x"),
               util::NoSuchMachineError);
}

TEST_F(ClusterTest, MessageDeliveryAdvancesVirtualTimeDeterministically) {
  EndpointPtr tx = cluster_.create_endpoint("a", "tx");
  EndpointPtr rx = cluster_.create_endpoint("c", "rx");
  const util::Bytes payload(100, 0x55);
  cluster_.send(*tx, rx->address(), payload);
  auto env = rx->receive();
  ASSERT_TRUE(env.has_value());
  const LinkProfile& wan = link_profile("internet-wan");
  EXPECT_EQ(rx->clock().now(), wan.transfer_time(100));
  EXPECT_EQ(env->payload, payload);
  // Sending again from the (still zero-clock) sender keeps the receiver
  // at max(own, stamp) — virtual time is monotone.
  cluster_.send(*tx, rx->address(), payload);
  rx->receive();
  EXPECT_EQ(rx->clock().now(), wan.transfer_time(100));
}

TEST_F(ClusterTest, ClockJoinTakesMaximum) {
  EndpointPtr tx = cluster_.create_endpoint("a", "tx");
  EndpointPtr rx = cluster_.create_endpoint("b", "rx");
  rx->clock().advance(1'000'000);
  cluster_.send(*tx, rx->address(), util::Bytes{1});
  rx->receive();
  EXPECT_EQ(rx->clock().now(), 1'000'000);
}

TEST_F(ClusterTest, SendToRetiredEndpointFails) {
  EndpointPtr tx = cluster_.create_endpoint("a", "tx");
  EndpointPtr rx = cluster_.create_endpoint("b", "rx");
  const std::string addr = rx->address();
  EXPECT_TRUE(cluster_.endpoint_alive(addr));
  cluster_.retire_endpoint(addr);
  EXPECT_FALSE(cluster_.endpoint_alive(addr));
  EXPECT_THROW(cluster_.send(*tx, addr, util::Bytes{1}),
               util::NoRouteError);
  cluster_.retire_endpoint(addr);  // idempotent
}

TEST_F(ClusterTest, SpawnRunsImageWithArgsAndRetiresOnExit) {
  std::atomic<int> observed{0};
  EndpointPtr ep = cluster_.spawn(
      "b", "worker",
      [&](ProcessContext& ctx) {
        observed = static_cast<int>(ctx.args().size());
        // Process exits immediately.
      },
      {"x", "y", "z"});
  // Wait for the thread to retire the endpoint.
  for (int i = 0; i < 1000 && cluster_.endpoint_alive(ep->address()); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(cluster_.endpoint_alive(ep->address()));
  EXPECT_EQ(observed.load(), 3);
}

TEST_F(ClusterTest, InstalledImagesSpawnByPath) {
  std::atomic<bool> ran{false};
  cluster_.install_image("b", "/bin/job",
                         [&](ProcessContext&) { ran = true; });
  EXPECT_TRUE(cluster_.has_image("b", "/bin/job"));
  EXPECT_FALSE(cluster_.has_image("a", "/bin/job"));
  cluster_.spawn_image("b", "/bin/job", "job");
  for (int i = 0; i < 1000 && !ran; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
  EXPECT_THROW((void)cluster_.spawn_image("a", "/bin/job", "job"),
               util::NoSuchImageError);
}

TEST_F(ClusterTest, ComputeScalesWithCpuSpeed) {
  EndpointPtr slow = cluster_.create_endpoint("a", "slow");  // speed 1.0
  EndpointPtr fast = cluster_.create_endpoint("b", "fast");  // Cray, 6.0
  ProcessContext slow_ctx(cluster_, slow, {});
  ProcessContext fast_ctx(cluster_, fast, {});
  slow_ctx.compute(6000.0);
  fast_ctx.compute(6000.0);
  EXPECT_EQ(slow->clock().now(), 6000);
  EXPECT_EQ(fast->clock().now(), 1000);
}

TEST_F(ClusterTest, TrafficAccountingPerLink) {
  EndpointPtr tx = cluster_.create_endpoint("a", "tx");
  EndpointPtr lan_rx = cluster_.create_endpoint("b", "rx1");
  EndpointPtr wan_rx = cluster_.create_endpoint("c", "rx2");
  cluster_.send(*tx, lan_rx->address(), util::Bytes(10, 0));
  cluster_.send(*tx, wan_rx->address(), util::Bytes(20, 0));
  cluster_.send(*tx, wan_rx->address(), util::Bytes(30, 0));

  Cluster::Traffic total = cluster_.traffic();
  EXPECT_EQ(total.messages, 3u);
  EXPECT_EQ(total.bytes, 60u);
  auto by_link = cluster_.traffic_by_link();
  EXPECT_EQ(by_link["ethernet-lan"].messages, 1u);
  EXPECT_EQ(by_link["internet-wan"].messages, 2u);
  EXPECT_EQ(by_link["internet-wan"].bytes, 50u);

  cluster_.reset_traffic();
  EXPECT_EQ(cluster_.traffic().messages, 0u);
}

TEST_F(ClusterTest, ShutdownClosesEverything) {
  EndpointPtr ep = cluster_.spawn("a", "sleeper", [](ProcessContext& ctx) {
    // Blocks until the endpoint closes.
    while (ctx.self().receive()) {
    }
  });
  cluster_.shutdown();
  EXPECT_FALSE(cluster_.endpoint_alive(ep->address()));
}

}  // namespace
}  // namespace npss::sim
