// Property tests with deterministic pseudo-random generation: UTS type
// trees round-trip through the spec language; random canonical payloads
// round-trip across architectures; mutated wire frames never crash the
// message codec (they parse or throw EncodingError); and the Manager
// answers garbage with errors instead of dying.
#include <gtest/gtest.h>

#include <cstdint>

#include "meta/record.hpp"
#include "meta/state.hpp"
#include "rpc/schooner.hpp"
#include "uts/canonical.hpp"
#include "uts/spec.hpp"

namespace npss {
namespace {

/// Deterministic splitmix64 for reproducible "random" cases.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  int below(int n) { return static_cast<int>(next() % n); }
  double real() {
    return static_cast<double>(next() >> 11) / (1ull << 53);
  }

 private:
  std::uint64_t state_;
};

uts::Type random_type(Rng& rng, int depth) {
  const int kind = rng.below(depth > 0 ? 7 : 5);
  switch (kind) {
    case 0: return uts::Type::floating();
    case 1: return uts::Type::real_double();
    case 2: return uts::Type::integer();
    case 3: return uts::Type::byte();
    case 4: return uts::Type::string();
    case 5:
      return uts::Type::array(1 + rng.below(6), random_type(rng, depth - 1));
    default: {
      std::vector<std::pair<std::string, uts::Type>> fields;
      const int n = 1 + rng.below(3);
      for (int i = 0; i < n; ++i) {
        fields.emplace_back("f" + std::to_string(i),
                            random_type(rng, depth - 1));
      }
      return uts::Type::record(std::move(fields));
    }
  }
}

uts::Value random_value(Rng& rng, const uts::Type& type) {
  switch (type.kind()) {
    case uts::TypeKind::kFloat:
      return uts::Value::real(
          static_cast<float>((rng.real() - 0.5) * 2e6));
    case uts::TypeKind::kDouble:
      return uts::Value::real((rng.real() - 0.5) * 2e12);
    case uts::TypeKind::kInteger:
      return uts::Value::integer(rng.below(2'000'000) - 1'000'000);
    case uts::TypeKind::kByte:
      return uts::Value::byte(static_cast<std::uint8_t>(rng.below(256)));
    case uts::TypeKind::kString: {
      std::string s;
      const int n = rng.below(20);
      for (int i = 0; i < n; ++i) {
        s.push_back(static_cast<char>('a' + rng.below(26)));
      }
      return uts::Value::str(std::move(s));
    }
    case uts::TypeKind::kArray: {
      uts::ValueList items;
      for (std::size_t i = 0; i < type.array_size(); ++i) {
        items.push_back(random_value(rng, type.element()));
      }
      return uts::Value::array(std::move(items));
    }
    case uts::TypeKind::kRecord: {
      uts::ValueList fields;
      for (const uts::Field& f : type.fields()) {
        fields.push_back(random_value(rng, *f.type));
      }
      return uts::Value::record(std::move(fields));
    }
  }
  return uts::Value::real(0);
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededProperty, RandomDeclRoundTripsThroughSpecLanguage) {
  Rng rng(GetParam());
  uts::Signature sig;
  const int params = 1 + rng.below(6);
  for (int i = 0; i < params; ++i) {
    sig.push_back(uts::Param{
        "p" + std::to_string(i),
        static_cast<uts::ParamMode>(rng.below(3)), random_type(rng, 3)});
  }
  uts::ProcDecl decl{uts::DeclKind::kExport, "proc", sig};
  std::string text = uts::decl_to_string(decl);
  uts::SpecFile reparsed = uts::parse_spec(text);
  ASSERT_EQ(reparsed.decls.size(), 1u);
  EXPECT_EQ(reparsed.decls[0].name, "proc");
  ASSERT_EQ(reparsed.decls[0].signature.size(), sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_EQ(reparsed.decls[0].signature[i], sig[i]) << i;
  }
}

TEST_P(SeededProperty, RandomValueSurvivesCanonicalRoundTrip) {
  Rng rng(GetParam() ^ 0xabcdef);
  const uts::Type type = random_type(rng, 3);
  const uts::Value value = random_value(rng, type);
  const auto& sparc = arch::arch_catalog("sun-sparc10");
  const auto& rs6000 = arch::arch_catalog("ibm-rs6000");
  util::ByteWriter out;
  uts::encode_canonical(sparc, type, value, out);
  EXPECT_EQ(out.size(), uts::canonical_size(type, value));
  util::ByteReader in(out.bytes());
  uts::Value back = uts::decode_canonical(rs6000, type, in);
  EXPECT_TRUE(in.exhausted());
  // Both machines are IEEE; only `float` fields quantize, and the source
  // values were generated pre-quantized, so equality is exact.
  EXPECT_EQ(back, value);
}

TEST_P(SeededProperty, MutatedWireFramesNeverCrashTheCodec) {
  Rng rng(GetParam() ^ 0x5eed);
  rpc::Message msg;
  msg.kind = rpc::MessageKind::kCall;
  msg.seq = rng.next();
  msg.line = rng.below(100);
  msg.a = "shaft";
  msg.b = "import shaft prog(\"x\" val float)";
  msg.blob = {1, 2, 3, 4};
  msg.table = {{"k", "v"}};
  util::Bytes wire = rpc::encode_message(msg);
  for (int trial = 0; trial < 200; ++trial) {
    util::Bytes mutated = wire;
    const int mutations = 1 + rng.below(4);
    for (int m = 0; m < mutations; ++m) {
      switch (rng.below(3)) {
        case 0:
          mutated[rng.below(static_cast<int>(mutated.size()))] =
              static_cast<std::uint8_t>(rng.below(256));
          break;
        case 1:
          if (mutated.size() > 1) {
            mutated.resize(mutated.size() - 1 - rng.below(
                static_cast<int>(mutated.size() - 1)));
          }
          break;
        default:
          mutated.push_back(static_cast<std::uint8_t>(rng.below(256)));
      }
    }
    if (mutated.empty()) continue;
    try {
      rpc::Message decoded = rpc::decode_message(mutated);
      (void)decoded;  // structurally valid mutation — fine
    } catch (const util::EncodingError&) {
      // malformed — also fine; anything else would crash the Manager
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull, 55ull,
                                           89ull));

TEST(ManagerRobustness, GarbageAndWrongProtocolGetErrorsNotCrashes) {
  sim::Cluster cluster;
  cluster.add_machine("host", "sun-sparc10", "a");
  rpc::SchoonerSystem schooner(cluster, "host");
  auto probe = cluster.create_endpoint("host", "prober");
  rpc::MessageIo io(cluster, probe);

  // A reply-kind message the Manager never asked for.
  rpc::Message bogus;
  bogus.kind = rpc::MessageKind::kSpawnAck;
  bogus.seq = 7;
  io.send(schooner.manager_address(), bogus);

  // An operation on a line that does not exist.
  rpc::Message ghost;
  ghost.kind = rpc::MessageKind::kStartRequest;
  ghost.line = 424242;
  ghost.a = "host";
  ghost.b = "/bin/none";
  rpc::Message reply =
      io.call(schooner.manager_address(), ghost, /*raise_errors=*/false);
  EXPECT_TRUE(reply.is_error());

  // A lookup with an unparseable import signature.
  rpc::Message bad_sig;
  bad_sig.kind = rpc::MessageKind::kLookup;
  bad_sig.line = 1;
  bad_sig.a = "shaft";
  bad_sig.b = "this is not a specification";
  reply = io.call(schooner.manager_address(), bad_sig,
                  /*raise_errors=*/false);
  EXPECT_TRUE(reply.is_error());

  // The Manager is still alive and serving.
  rpc::Message ping;
  ping.kind = rpc::MessageKind::kPing;
  EXPECT_EQ(io.call(schooner.manager_address(), ping).kind,
            rpc::MessageKind::kPong);
}

meta::ChangeRecord random_record(Rng& rng) {
  meta::ChangeRecord rec;
  rec.kind = static_cast<meta::RecordKind>(1 + rng.below(5));
  rec.line = rng.below(2) ? -1 : rng.below(1000);
  rec.shared = rng.below(2) == 1;
  rec.quota = rng.below(2) ? 0 : rng.below(64);
  rec.term = rng.next() % 16;  // v3 field: per-entry election term
  auto random_text = [&rng]() {
    std::string s;
    const int len = rng.below(24);
    for (int i = 0; i < len; ++i) {
      // Arbitrary bytes, including NUL and high bit: the codec is
      // length-prefixed, not delimiter-based.
      s.push_back(static_cast<char>(rng.next() & 0xff));
    }
    return s;
  };
  rec.address = random_text();
  rec.machine = random_text();
  rec.path = random_text();
  rec.spec_hash = random_text();
  rec.note = random_text();
  const int procs = rng.below(4);
  for (int i = 0; i < procs; ++i) {
    rec.procs.emplace_back(random_text(), random_text());
  }
  return rec;
}

TEST(MetaRecordProperties, RandomRecordsRoundTripExactly) {
  Rng rng(0x5eedf00d);
  for (int i = 0; i < 200; ++i) {
    meta::ChangeRecord rec = random_record(rng);
    meta::ChangeRecord back = meta::decode_record(meta::encode_record(rec));
    EXPECT_EQ(back, rec) << "record " << i;
  }
  // Batch framing round-trips too, indices included.
  std::vector<std::pair<std::uint64_t, meta::ChangeRecord>> batch;
  for (int i = 0; i < 16; ++i) {
    batch.emplace_back(rng.next(), random_record(rng));
  }
  EXPECT_EQ(meta::decode_record_batch(meta::encode_record_batch(batch)),
            batch);
}

TEST(MetaRecordProperties, ReplayIsIdempotentByIndex) {
  // Applying a record sequence once, or with every record duplicated
  // (the overlapping snapshot + log-tail delivery a follower can see),
  // converges to the same state and digest.
  Rng rng(0xfadedcab);
  std::vector<meta::ChangeRecord> records;
  for (int i = 0; i < 64; ++i) records.push_back(random_record(rng));

  meta::ReplicatedState once;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(once.apply(records[i], i + 1));
  }
  meta::ReplicatedState twice;
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(twice.apply(records[i], i + 1));
    EXPECT_FALSE(twice.apply(records[i], i + 1));  // duplicate is a no-op
  }
  EXPECT_EQ(once, twice);
  EXPECT_EQ(once.digest(), twice.digest());

  // And the state image itself round-trips through serialization.
  EXPECT_EQ(meta::ReplicatedState::deserialize(once.serialize()), once);
}

// --- Adversarial decoding: torn, bit-flipped, and length-lying frames -------
//
// The catch-up path feeds wire bytes straight into decode_record /
// decode_record_batch / ReplicatedState::deserialize. None of them may
// crash, over-read, or allocate unbounded memory on hostile input — they
// parse, or they throw EncodingError.

template <typename Decode>
void expect_parse_or_throw(const util::Bytes& frame, Decode&& decode,
                           const char* what) {
  try {
    decode(frame);
  } catch (const util::EncodingError&) {
    // rejected cleanly — the acceptable outcome for a damaged frame
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": unexpected exception type: " << e.what();
  }
}

TEST(MetaRecordAdversarial, MutatedRecordBytesParseOrThrowNeverCrash) {
  Rng rng(0xbadc0de5);
  const auto decode = [](const util::Bytes& b) {
    (void)meta::decode_record(b);
  };
  for (int i = 0; i < 150; ++i) {
    const util::Bytes frame = meta::encode_record(random_record(rng));
    // Single-byte corruption anywhere in the frame.
    util::Bytes flipped = frame;
    flipped[static_cast<std::size_t>(rng.below(
        static_cast<int>(frame.size())))] ^= 1u << rng.below(8);
    expect_parse_or_throw(flipped, decode, "bit flip");
    // Truncation at every prefix length would be O(n^2); a random cut
    // per frame covers the same decoder states across 150 frames.
    util::Bytes cut(frame.begin(),
                    frame.begin() + rng.below(static_cast<int>(frame.size())));
    expect_parse_or_throw(cut, decode, "truncation");
    // Appended garbage must be flagged, not silently ignored.
    util::Bytes padded = frame;
    padded.push_back(static_cast<std::uint8_t>(rng.next()));
    EXPECT_THROW((void)meta::decode_record(padded), util::EncodingError);
  }
}

TEST(MetaRecordAdversarial, MutatedBatchAndSnapshotFramesNeverCrash) {
  Rng rng(0x7e55e11a);
  std::vector<std::pair<std::uint64_t, meta::ChangeRecord>> batch;
  meta::ReplicatedState state;
  for (int i = 0; i < 12; ++i) {
    batch.emplace_back(static_cast<std::uint64_t>(i + 1), random_record(rng));
    meta::ChangeRecord rec = random_record(rng);
    state.apply(rec, static_cast<std::uint64_t>(i + 1));
  }
  const util::Bytes batch_frame = meta::encode_record_batch(batch);
  const util::Bytes image = state.serialize();
  const auto decode_batch = [](const util::Bytes& b) {
    (void)meta::decode_record_batch(b);
  };
  const auto decode_image = [](const util::Bytes& b) {
    (void)meta::ReplicatedState::deserialize(b);
  };
  for (int i = 0; i < 300; ++i) {
    const bool is_batch = rng.below(2) != 0;
    util::Bytes frame = is_batch ? batch_frame : image;
    switch (rng.below(3)) {
      case 0:
        frame[static_cast<std::size_t>(
            rng.below(static_cast<int>(frame.size())))] ^= 1u << rng.below(8);
        break;
      case 1:
        frame.resize(static_cast<std::size_t>(
            rng.below(static_cast<int>(frame.size()))));
        break;
      default:
        frame.push_back(static_cast<std::uint8_t>(rng.next()));
        break;
    }
    if (is_batch) {
      expect_parse_or_throw(frame, decode_batch, "mutated batch frame");
    } else {
      expect_parse_or_throw(frame, decode_image, "mutated snapshot image");
    }
  }
}

TEST(MetaRecordAdversarial, LengthLyingCountsAreRejectedNotAllocated) {
  // A frame that *claims* four billion procs/records/lines must be
  // rejected by the count-versus-remaining-bytes guard before any
  // allocation happens — not after an out-of-memory attempt.
  {
    util::ByteWriter out;  // record with procs count = 0xffffffff
    out.u8(meta::kRecordVersion);
    out.u8(1);   // kLineCreate
    out.i64(7);
    out.u8(0);
    for (int i = 0; i < 5; ++i) out.str("");
    out.u32(0xffffffffu);
    EXPECT_THROW((void)meta::decode_record(std::move(out).take()),
                 util::EncodingError);
  }
  {
    util::ByteWriter out;  // batch with record count = 0xffffffff
    out.u8(meta::kRecordVersion);
    out.u32(0xffffffffu);
    EXPECT_THROW((void)meta::decode_record_batch(std::move(out).take()),
                 util::EncodingError);
  }
  {
    util::ByteWriter out;  // snapshot image with line count = 0xffffffff
    out.u8(meta::kStateVersion);
    out.u64(3);   // last_applied
    out.i64(4);   // next_line
    out.u32(0xffffffffu);
    EXPECT_THROW(
        (void)meta::ReplicatedState::deserialize(std::move(out).take()),
        util::EncodingError);
  }
  {
    util::ByteWriter out;  // batch whose nested blob length lies
    out.u8(meta::kRecordVersion);
    out.u32(1);
    out.u64(1);           // index
    out.u32(0x7fffffffu); // blob claims 2 GiB follow; 2 bytes do
    out.u8(0);
    out.u8(0);
    EXPECT_THROW((void)meta::decode_record_batch(std::move(out).take()),
                 util::EncodingError);
  }
}

}  // namespace
}  // namespace npss
