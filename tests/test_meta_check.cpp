// meta_check internals: the World model, the schedule codec, and the
// explorer — including the negative corpus (the legacy PR 6 protocol
// MUST lose an acked write) and the determinism contracts the visited
// set depends on. `ctest -L mc` runs this suite alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mc/explore.hpp"
#include "mc/model.hpp"
#include "util/status.hpp"

namespace npss {
namespace {

mc::Options small_opts(bool quorum) {
  mc::Options opts;
  opts.replicas = 3;
  opts.quorum_commit = quorum;
  opts.max_ops = 1;
  opts.max_crashes = 0;
  opts.max_restarts = 0;
  opts.max_drops = 0;
  opts.max_duplicates = 0;
  return opts;
}

bool contains(const std::vector<mc::Action>& acts, const mc::Action& a) {
  return std::find(acts.begin(), acts.end(), a) != acts.end();
}

TEST(McWorld, BootstrapEnablesTheLeaderAndNothingIsInFlight) {
  const mc::World world(small_opts(true));
  const std::vector<mc::Action> acts = world.enabled();
  // Replica 0 bootstraps as leader: the client may propose there, every
  // replica's timer may fire, and no link carries a frame yet.
  EXPECT_TRUE(contains(acts, {mc::ActionKind::kPropose, 0, -1}));
  EXPECT_FALSE(contains(acts, {mc::ActionKind::kPropose, 1, -1}));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(contains(acts, {mc::ActionKind::kTimer, i, -1}));
    EXPECT_TRUE(world.up(i));
  }
  for (const mc::Action& a : acts) {
    EXPECT_NE(a.kind, mc::ActionKind::kDeliver);
    EXPECT_NE(a.kind, mc::ActionKind::kCrash);  // max_crashes = 0
  }
  EXPECT_TRUE(world.acked().empty());
}

TEST(McWorld, FingerprintsAreDeterministicAcrossIdenticalRuns) {
  mc::Options opts = small_opts(true);
  opts.max_crashes = 1;
  mc::World a(opts);
  mc::World b(opts);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // The same schedule applied to both worlds keeps them identical.
  for (const mc::Action& act : mc::decode_schedule("p0,t0,c1,d0>2")) {
    ASSERT_TRUE(a.is_enabled(act)) << a.describe(act);
    a.step(act);
    b.step(act);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
  }
  // And a world that took a different branch is distinguishable.
  mc::World c(opts);
  c.step({mc::ActionKind::kTimer, 1, -1});
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(McWorld, CrashSilencesAReplicaUntilRestart) {
  mc::Options opts = small_opts(true);
  opts.max_crashes = 1;
  opts.max_restarts = 1;
  mc::World world(opts);
  world.step({mc::ActionKind::kPropose, 0, -1});  // puts appends in flight
  world.step({mc::ActionKind::kCrash, 1, -1});
  EXPECT_FALSE(world.up(1));
  const std::vector<mc::Action> acts = world.enabled();
  for (const mc::Action& a : acts) {
    // A dead replica neither acts nor receives; its only move is rejoin.
    if (a.kind == mc::ActionKind::kRestart) {
      EXPECT_EQ(a.a, 1);
      continue;
    }
    if (a.kind == mc::ActionKind::kTimer ||
        a.kind == mc::ActionKind::kPropose) {
      EXPECT_NE(a.a, 1);
    }
    if (a.kind == mc::ActionKind::kDeliver) {
      EXPECT_NE(a.b, 1);
    }
  }
  EXPECT_TRUE(contains(acts, {mc::ActionKind::kRestart, 1, -1}));
  world.step({mc::ActionKind::kRestart, 1, -1});
  EXPECT_TRUE(world.up(1));
}

TEST(McWorld, FootprintsSeparateIndependentActions) {
  mc::Options opts = small_opts(true);
  opts.max_crashes = 1;
  const mc::World world(opts);
  const auto timer0 = world.footprint({mc::ActionKind::kTimer, 0, -1});
  const auto timer1 = world.footprint({mc::ActionKind::kTimer, 1, -1});
  const auto crash0 = world.footprint({mc::ActionKind::kCrash, 0, -1});
  // Timers on distinct replicas touch disjoint resources (they may both
  // send, but only on their own outgoing links); a crash of replica 0
  // conflicts with replica 0's own timer.
  EXPECT_EQ(timer0 & timer1, 0u);
  EXPECT_NE(timer0 & crash0, 0u);
}

TEST(McSchedule, CodecRoundTripsEveryActionKind) {
  const std::string text = "p0,t1,c2,r2,d1>2,x0>1,u2>0";
  const std::vector<mc::Action> schedule = mc::decode_schedule(text);
  ASSERT_EQ(schedule.size(), 7u);
  EXPECT_EQ(schedule[0], (mc::Action{mc::ActionKind::kPropose, 0, -1}));
  EXPECT_EQ(schedule[4], (mc::Action{mc::ActionKind::kDeliver, 1, 2}));
  EXPECT_EQ(schedule[5], (mc::Action{mc::ActionKind::kDrop, 0, 1}));
  EXPECT_EQ(schedule[6], (mc::Action{mc::ActionKind::kDuplicate, 2, 0}));
  EXPECT_EQ(mc::encode_schedule(schedule), text);

  EXPECT_THROW(mc::decode_schedule("z9"), util::ParseError);
  EXPECT_THROW(mc::decode_schedule("d1"), util::ParseError);   // missing >b
  EXPECT_THROW(mc::decode_schedule("p"), util::ParseError);    // missing index
  EXPECT_THROW(mc::decode_schedule("t1>2"), util::ParseError); // stray link
}

TEST(McExplore, QuorumProtocolIsCleanAtSmallBounds) {
  mc::ExploreOptions x;
  x.depth = 6;
  const mc::ExploreResult result = mc::explore(small_opts(true), x);
  EXPECT_FALSE(result.violation) << result.transcript;
  EXPECT_GT(result.stats.states_explored, 0u);
  EXPECT_FALSE(result.stats.budget_exhausted);
}

TEST(McExplore, LegacyProtocolLosesAnAckedWrite) {
  // The negative corpus: under the PR 6 fire-and-forget protocol the
  // checker MUST find an acked-then-lost schedule (MC003) — a new
  // leader elected on index-only votes abandons the acked write. The
  // minimized schedule needs no crash and no drop: four actions.
  mc::ExploreOptions x;
  x.depth = 6;
  const mc::ExploreResult result = mc::explore(small_opts(false), x);
  ASSERT_TRUE(result.violation);
  EXPECT_EQ(result.violation->code, "MC003");
  EXPECT_LE(result.schedule.size(), 6u);
  // The minimized schedule replays to the same verdict, bit for bit.
  const mc::ExploreResult again = mc::replay(small_opts(false), result.schedule);
  ASSERT_TRUE(again.violation);
  EXPECT_EQ(again.violation->code, "MC003");
  EXPECT_NE(result.transcript.find("MC003"), std::string::npos);
}

TEST(McExplore, ReductionDoesNotChangeTheVerdict) {
  mc::ExploreOptions full;
  full.depth = 5;
  full.reduce = false;
  mc::ExploreOptions reduced = full;
  reduced.reduce = true;

  const mc::ExploreResult a = mc::explore(small_opts(true), full);
  const mc::ExploreResult b = mc::explore(small_opts(true), reduced);
  EXPECT_FALSE(a.violation);
  EXPECT_FALSE(b.violation);
  EXPECT_GT(b.stats.sleep_pruned, 0u);

  const mc::ExploreResult c = mc::explore(small_opts(false), full);
  const mc::ExploreResult d = mc::explore(small_opts(false), reduced);
  ASSERT_TRUE(c.violation);
  ASSERT_TRUE(d.violation);
  EXPECT_EQ(c.violation->code, d.violation->code);
}

TEST(McExplore, ReductionAgreesWithFullSearchUnderFaults) {
  // The visited set caches (remaining depth, sleep set) per state and
  // only skips a revisit the cached exploration dominates; skipping on
  // hash+depth alone would let a first visit under a larger sleep set
  // permanently hide the subtrees it pruned. Cross-check reduced vs
  // full search at bounds where sleep sets actually form (duplicates +
  // crashes give commuting link/node actions): the verdict must match.
  mc::Options opts = small_opts(false);  // legacy: a violation exists
  opts.max_duplicates = 1;
  opts.max_crashes = 1;
  mc::ExploreOptions full;
  full.depth = 5;
  full.reduce = false;
  mc::ExploreOptions reduced = full;
  reduced.reduce = true;
  const mc::ExploreResult a = mc::explore(opts, full);
  const mc::ExploreResult b = mc::explore(opts, reduced);
  ASSERT_TRUE(a.violation);
  ASSERT_TRUE(b.violation);
  EXPECT_EQ(a.violation->code, b.violation->code);

  mc::Options clean = small_opts(true);
  clean.max_duplicates = 1;
  clean.max_crashes = 1;
  const mc::ExploreResult c = mc::explore(clean, full);
  const mc::ExploreResult d = mc::explore(clean, reduced);
  EXPECT_FALSE(c.violation) << c.transcript;
  EXPECT_FALSE(d.violation) << d.transcript;
}

TEST(McExplore, ReplayRejectsSchedulesTheWorldCannotRun) {
  // Proposing on a follower is never enabled; replay must say so rather
  // than silently diverging from the transcript it claims to reproduce.
  EXPECT_THROW(mc::replay(small_opts(true), mc::decode_schedule("p1")),
               util::ProtocolError);
  // Exceeding the ops budget is equally invalid.
  EXPECT_THROW(mc::replay(small_opts(true), mc::decode_schedule("p0,p0")),
               util::ProtocolError);
}

TEST(McExplore, DuplicatedFramesAreHarmlessUnderQuorum) {
  mc::Options opts = small_opts(true);
  opts.max_duplicates = 1;
  mc::ExploreOptions x;
  x.depth = 6;
  const mc::ExploreResult result = mc::explore(opts, x);
  EXPECT_FALSE(result.violation) << result.transcript;
}

TEST(McExplore, MultiOpWithDuplicatesAndFaultsStaysClean) {
  // The stale-fetch-ack regression class (see test_meta_state.cpp's
  // StaleFetchAckCannotDropQuorumCountedEntries) needs two client ops
  // and a duplicated frame to even be expressible; the shallow single-op
  // dup-free bounds above cannot reach it. Explore with every fault
  // class enabled at once — ops 2, dups 1, drops 1, crashes 1 — so the
  // dup/fetch/append interleavings are systematically covered.
  mc::Options opts = small_opts(true);
  opts.max_ops = 2;
  opts.max_duplicates = 1;
  opts.max_drops = 1;
  opts.max_crashes = 1;
  mc::ExploreOptions x;
  x.depth = 6;
  x.max_states = 1000000;
  const mc::ExploreResult result = mc::explore(opts, x);
  EXPECT_FALSE(result.violation) << result.transcript;
  EXPECT_FALSE(result.stats.budget_exhausted);
}

}  // namespace
}  // namespace npss
