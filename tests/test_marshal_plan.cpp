// Differential tests for the compiled MarshalPlan: the plan path must be
// byte-identical to the interpreted uts::marshal/unmarshal across every
// simulated architecture, both directions, all type shapes — including
// which errors are raised and with what text (§4.1's out-of-range policy
// must survive the fast path).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"
#include "uts/canonical.hpp"
#include "uts/marshal_plan.hpp"
#include "uts/types.hpp"
#include "uts/value.hpp"

namespace npss::uts {
namespace {

using arch::arch_catalog;

const char* kArchNames[] = {"sun-sparc10", "cray-ymp", "intel-i860",
                            "ibm-370", "ibm-rs6000"};

// --- outcome capture -------------------------------------------------------

struct MarshalOutcome {
  bool ok = false;
  util::Bytes bytes;
  util::ErrorCode code = util::ErrorCode::kUnknown;
  std::string what;
};

struct UnmarshalOutcome {
  bool ok = false;
  ValueList values;
  util::ErrorCode code = util::ErrorCode::kUnknown;
  std::string what;
};

template <typename Fn>
MarshalOutcome try_marshal(Fn&& fn) {
  MarshalOutcome out;
  try {
    out.bytes = fn();
    out.ok = true;
  } catch (const util::Error& e) {
    out.code = e.code();
    out.what = e.what();
  }
  return out;
}

template <typename Fn>
UnmarshalOutcome try_unmarshal(Fn&& fn) {
  UnmarshalOutcome out;
  try {
    out.values = fn();
    out.ok = true;
  } catch (const util::Error& e) {
    out.code = e.code();
    out.what = e.what();
  }
  return out;
}

/// Assert the plan path and the interpreted path agree in full: success or
/// failure, wire bytes, decoded values, error code and error text.
void expect_parity(const arch::ArchDescriptor& source, const Signature& sig,
                   const ValueList& values, Direction dir,
                   const std::string& context) {
  const MarshalPlan plan(sig, dir);
  MarshalOutcome ref =
      try_marshal([&] { return marshal(source, sig, values, dir); });
  MarshalOutcome got =
      try_marshal([&] { return plan.marshal(source, values); });
  ASSERT_EQ(ref.ok, got.ok) << context << " marshal on " << source.name
                            << ": interpreted said '" << ref.what
                            << "', plan said '" << got.what << "'";
  if (!ref.ok) {
    EXPECT_EQ(ref.code, got.code) << context;
    EXPECT_EQ(ref.what, got.what) << context;
    return;
  }
  EXPECT_EQ(ref.bytes, got.bytes)
      << context << " wire bytes differ on " << source.name;

  for (const char* target_name : kArchNames) {
    const arch::ArchDescriptor& target = arch_catalog(target_name);
    UnmarshalOutcome uref = try_unmarshal(
        [&] { return unmarshal(target, sig, ref.bytes, dir); });
    UnmarshalOutcome ugot =
        try_unmarshal([&] { return plan.unmarshal(target, ref.bytes); });
    ASSERT_EQ(uref.ok, ugot.ok)
        << context << " unmarshal on " << target.name << ": interpreted '"
        << uref.what << "', plan '" << ugot.what << "'";
    if (!uref.ok) {
      EXPECT_EQ(uref.code, ugot.code) << context << " on " << target.name;
      EXPECT_EQ(uref.what, ugot.what) << context << " on " << target.name;
      continue;
    }
    ASSERT_EQ(uref.values.size(), ugot.values.size()) << context;
    for (std::size_t i = 0; i < uref.values.size(); ++i) {
      EXPECT_TRUE(uref.values[i] == ugot.values[i])
          << context << " param " << i << " decoded differently on "
          << target.name;
    }
  }
}

// --- signature shapes ------------------------------------------------------

Type station_record() {
  return Type::record({{"x", Type::real_double()},
                       {"f", Type::floating()},
                       {"n", Type::integer()},
                       {"b", Type::byte()},
                       {"s", Type::string()}});
}

std::vector<Signature> shape_catalog() {
  return {
      // All scalar kinds across all three modes.
      {{"d", ParamMode::kVal, Type::real_double()},
       {"f", ParamMode::kVar, Type::floating()},
       {"n", ParamMode::kVal, Type::integer()},
       {"b", ParamMode::kVar, Type::byte()},
       {"r", ParamMode::kRes, Type::real_double()},
       {"s", ParamMode::kVal, Type::string()}},
      // Arrays of every scalar kind.
      {{"ad", ParamMode::kVal, Type::array(8, Type::real_double())},
       {"af", ParamMode::kVar, Type::array(5, Type::floating())},
       {"an", ParamMode::kRes, Type::array(4, Type::integer())},
       {"ab", ParamMode::kVal, Type::array(6, Type::byte())},
       {"as", ParamMode::kVal, Type::array(3, Type::string())}},
      // Records, including strings inside.
      {{"rec", ParamMode::kVar, station_record()},
       {"tail", ParamMode::kVal, Type::real_double()}},
      // Nesting both ways: array of record, record holding an array.
      {{"aor", ParamMode::kVal, Type::array(3, station_record())},
       {"roa",
        ParamMode::kRes,
        Type::record({{"st", Type::array(4, Type::real_double())},
                      {"tag", Type::string()}})}},
      // The shape the engine actually ships (shaft/duct style).
      {{"st", ParamMode::kVal, Type::array(4, Type::real_double())},
       {"dp", ParamMode::kVal, Type::real_double()},
       {"out", ParamMode::kRes, Type::array(4, Type::real_double())}},
  };
}

// --- random values ---------------------------------------------------------

/// Draw a value of `type` whose magnitudes fit every architecture's native
/// range, so the fuzz mostly exercises the success path. (NaN is excluded:
/// Value equality is variant equality, and NaN breaks it. NaN wire parity
/// is covered byte-wise in FastPathPreservesDoubleBits.)
Value random_value(std::mt19937& rng, const Type& type) {
  switch (type.kind()) {
    case TypeKind::kDouble:
    case TypeKind::kFloat: {
      std::uniform_real_distribution<double> mant(-1.0, 1.0);
      std::uniform_int_distribution<int> exp(-8, 8);
      return Value::real(mant(rng) * std::pow(10.0, exp(rng)));
    }
    case TypeKind::kInteger: {
      std::uniform_int_distribution<std::int64_t> d(-2000000000, 2000000000);
      return Value::integer(d(rng));
    }
    case TypeKind::kByte: {
      std::uniform_int_distribution<int> d(0, 255);
      return Value::byte(static_cast<std::uint8_t>(d(rng)));
    }
    case TypeKind::kString: {
      std::uniform_int_distribution<int> len(0, 12);
      std::uniform_int_distribution<int> ch('a', 'z');
      std::string s;
      int n = len(rng);
      for (int i = 0; i < n; ++i) s.push_back(static_cast<char>(ch(rng)));
      return Value::str(std::move(s));
    }
    case TypeKind::kArray: {
      ValueList items;
      items.reserve(type.array_size());
      for (std::size_t i = 0; i < type.array_size(); ++i) {
        items.push_back(random_value(rng, type.element()));
      }
      return Value::array(std::move(items));
    }
    case TypeKind::kRecord: {
      ValueList fields;
      for (const Field& f : type.fields()) {
        fields.push_back(random_value(rng, *f.type));
      }
      return Value::record(std::move(fields));
    }
  }
  return Value();
}

ValueList random_values(std::mt19937& rng, const Signature& sig) {
  ValueList values;
  values.reserve(sig.size());
  for (const Param& p : sig) values.push_back(random_value(rng, p.type));
  return values;
}

// --- the differential fuzz -------------------------------------------------

TEST(MarshalPlanParity, FuzzAllArchsShapesDirections) {
  std::mt19937 rng(0x5eed2u);
  const std::vector<Signature> shapes = shape_catalog();
  for (int iter = 0; iter < 200; ++iter) {
    const Signature& sig = shapes[iter % shapes.size()];
    const arch::ArchDescriptor& source =
        arch_catalog(kArchNames[iter % std::size(kArchNames)]);
    ValueList values = random_values(rng, sig);
    for (Direction dir : {Direction::kRequest, Direction::kReply}) {
      expect_parity(source, sig, values, dir,
                    "iter " + std::to_string(iter));
    }
  }
}

// --- error parity ----------------------------------------------------------

TEST(MarshalPlanParity, Binary32OverflowMatchesOnEveryArch) {
  // 1e39 fits binary64 (and the Cray word) but not a canonical binary32 —
  // the fast path must raise the identical RangeError the interpreted
  // encoder does, on IEEE and non-IEEE architectures alike.
  Signature sig = {{"x", ParamMode::kVal, Type::floating()}};
  for (const char* name : kArchNames) {
    expect_parity(arch_catalog(name), sig, {Value::real(1e39)},
                  Direction::kRequest, std::string("f32 overflow on ") + name);
  }
}

TEST(MarshalPlanParity, WideIntegerOverflowMatches) {
  Signature sig = {{"bigint", ParamMode::kVal, Type::integer()}};
  for (const char* name : {"cray-ymp", "sun-sparc10"}) {
    expect_parity(arch_catalog(name), sig, {Value::integer(1ll << 40)},
                  Direction::kRequest, std::string("i64 overflow on ") + name);
  }
}

TEST(MarshalPlanParity, TargetFormatOverflowOnDecodeMatches) {
  // 1e80 marshals fine from the Sparc; an IBM/370 target cannot hold it.
  // expect_parity decodes on every catalog arch, ibm-370 included, so this
  // covers the decode-side RangeError parity.
  Signature sig = {{"x", ParamMode::kVal, Type::real_double()}};
  expect_parity(arch_catalog("sun-sparc10"), sig, {Value::real(1e80)},
                Direction::kRequest, "1e80 to ibm-370");
}

TEST(MarshalPlanParity, TypeMismatchAndCountErrorsMatch) {
  Signature sig = {{"a", ParamMode::kVal, Type::array(4, Type::floating())}};
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  // Wrong arity.
  expect_parity(sparc, sig, {Value::real(1), Value::real(2)},
                Direction::kRequest, "wrong value count");
  // Wrong element count inside a composite.
  expect_parity(sparc, sig, {Value::real_array({1.0, 2.0})},
                Direction::kRequest, "short array");
  // Wrong leaf kind inside a composite (path-qualified message).
  expect_parity(
      sparc, sig,
      {Value::array({Value::real(1), Value::str("x"), Value::real(3),
                     Value::real(4)})},
      Direction::kRequest, "string in float array");
}

TEST(MarshalPlanParity, TruncatedAndTrailingBytesMatch) {
  Signature sig = {{"x", ParamMode::kVal, Type::real_double()},
                   {"s", ParamMode::kVal, Type::string()}};
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  const MarshalPlan plan(sig, Direction::kRequest);
  util::Bytes wire = plan.marshal(
      sparc, {Value::real(2.5), Value::str("engine")});

  for (std::size_t cut : {0u, 3u, 8u, 11u}) {
    std::span<const std::uint8_t> part(wire.data(), cut);
    UnmarshalOutcome ref = try_unmarshal(
        [&] { return unmarshal(sparc, sig, part, Direction::kRequest); });
    UnmarshalOutcome got =
        try_unmarshal([&] { return plan.unmarshal(sparc, part); });
    ASSERT_FALSE(ref.ok) << "cut " << cut;
    ASSERT_FALSE(got.ok) << "cut " << cut;
    EXPECT_EQ(ref.code, got.code) << "cut " << cut;
    EXPECT_EQ(ref.what, got.what) << "cut " << cut;
  }

  util::Bytes padded = wire;
  padded.push_back(0);
  UnmarshalOutcome ref = try_unmarshal(
      [&] { return unmarshal(sparc, sig, padded, Direction::kRequest); });
  UnmarshalOutcome got =
      try_unmarshal([&] { return plan.unmarshal(sparc, padded); });
  ASSERT_FALSE(ref.ok);
  ASSERT_FALSE(got.ok);
  EXPECT_EQ(ref.code, got.code);
  EXPECT_EQ(ref.what, got.what);
}

// --- fast-path specifics ---------------------------------------------------

TEST(MarshalPlan, SameRepresentationPredicate) {
  EXPECT_TRUE(MarshalPlan::same_representation(arch_catalog("sun-sparc10")));
  EXPECT_TRUE(MarshalPlan::same_representation(arch_catalog("intel-i860")));
  EXPECT_TRUE(MarshalPlan::same_representation(arch_catalog("ibm-rs6000")));
  EXPECT_FALSE(MarshalPlan::same_representation(arch_catalog("cray-ymp")));
  EXPECT_FALSE(MarshalPlan::same_representation(arch_catalog("ibm-370")));
}

TEST(MarshalPlan, FastPathPreservesDoubleBits) {
  // The binary64 fast path is a raw bit move: NaN payloads, signed zero
  // and denormals must cross the wire bit-exactly — compare wire bytes
  // against the interpreted encoder (Value equality can't express NaN).
  Signature sig = {{"x", ParamMode::kVal, Type::real_double()}};
  const arch::ArchDescriptor& sparc = arch_catalog("sun-sparc10");
  const MarshalPlan plan(sig, Direction::kRequest);
  for (double v : {std::nan("1"), -0.0, 5e-324,
                   std::numeric_limits<double>::infinity(), 1.0 / 3.0}) {
    util::Bytes ref = marshal(sparc, sig, {Value::real(v)},
                              Direction::kRequest);
    util::Bytes got = plan.marshal(sparc, {Value::real(v)});
    EXPECT_EQ(ref, got) << "value " << v;
  }
}

TEST(MarshalPlan, PlanShapeAndCache) {
  Signature sig = {{"st", ParamMode::kVal, Type::array(4, Type::real_double())},
                   {"dp", ParamMode::kVal, Type::real_double()},
                   {"out", ParamMode::kRes, Type::array(4, Type::real_double())}};
  MarshalPlan req(sig, Direction::kRequest);
  EXPECT_TRUE(req.fixed_size());
  EXPECT_EQ(req.fixed_wire_bytes(), 40u);  // 4 doubles + 1 double
  EXPECT_FALSE(req.describe().empty());

  // Strings break fixed sizing.
  MarshalPlan var({{"s", ParamMode::kVal, Type::string()}},
                  Direction::kRequest);
  EXPECT_FALSE(var.fixed_size());

  // compile_plan caches per (signature, direction).
  auto a = compile_plan(sig, Direction::kRequest);
  auto b = compile_plan(sig, Direction::kRequest);
  auto c = compile_plan(sig, Direction::kReply);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

TEST(MarshalPlan, ObsCountersTrackPathChoice) {
  Signature sig = {{"st", ParamMode::kVal, Type::array(4, Type::real_double())}};
  ValueList values = {Value::real_array({1, 2, 3, 4})};
  const MarshalPlan plan(sig, Direction::kRequest);
  obs::Registry& reg = obs::Registry::global();
  obs::set_enabled(true);

  std::uint64_t fast0 = reg.counter("uts.marshal.fast_path_hits").value();
  std::uint64_t slow0 = reg.counter("uts.marshal.fallback_hits").value();

  util::Bytes wire = plan.marshal(arch_catalog("sun-sparc10"), values);
  (void)plan.unmarshal(arch_catalog("sun-sparc10"), wire);
  EXPECT_EQ(reg.counter("uts.marshal.fast_path_hits").value(), fast0 + 2);
  EXPECT_EQ(reg.counter("uts.marshal.fallback_hits").value(), slow0);

  (void)plan.marshal(arch_catalog("cray-ymp"), values);
  EXPECT_EQ(reg.counter("uts.marshal.fallback_hits").value(), slow0 + 1);
  EXPECT_EQ(reg.counter("uts.marshal.fast_path_hits").value(), fast0 + 2);
}

}  // namespace
}  // namespace npss::uts
