// Negative-test corpus for the thread-safety gate: this file contains a
// *seeded* GUARDED_BY violation and must NOT compile under
// clang -Wthread-safety -Werror. The build-and-expect-failure ctest
// case in tests/CMakeLists.txt (negative.thread_safety_violation_rejected,
// WILL_FAIL) proves the analysis is actually wired in — if the macros
// ever degrade to no-ops under clang, or the CI lane drops the flags,
// this file starts compiling and the suite goes red.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(long amount) {
    // SEEDED BUG: balance_ is GUARDED_BY(mu_) but mu_ is not held here.
    // -Wthread-safety must reject this line.
    balance_ += amount;
  }

  long balance() const {
    npss::util::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable npss::util::Mutex mu_{"negative.Account"};
  long balance_ SCHOONER_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  return account.balance() == 1 ? 0 : 1;
}
