// Tests of the multiplexed RPC bus: the incremental wire decoder
// (fragmented, coalesced, and oversized frames), raw-socket behavior of
// the dispatcher-based TcpProcedureHost, reply/seq matching for
// out-of-order completions, and the abandon-on-timeout contract (a
// deadline gives up on one seq, never on the shared connection).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "rpc/bus/channel.hpp"
#include "rpc/bus/frame.hpp"
#include "rpc/tcp_transport.hpp"
#include "uts/canonical.hpp"

namespace npss::rpc {
namespace {

using uts::Value;

Message make_msg(std::uint64_t seq, const std::string& a) {
  Message msg;
  msg.kind = MessageKind::kCall;
  msg.seq = seq;
  msg.a = a;
  return msg;
}

TEST(FrameDecoder, ReassemblesFramesFedOneByteAtATime) {
  util::ByteWriter out;
  bus::append_frame(out, make_msg(1, "first"), 64u << 20);
  bus::append_frame(out, make_msg(2, "second"), 64u << 20);
  util::Bytes bytes = std::move(out).take();

  bus::FrameDecoder decoder;
  std::vector<Message> seen;
  for (std::uint8_t byte : bytes) {
    decoder.feed(std::span(&byte, 1));
    while (auto frame = decoder.next()) seen.push_back(decode_message(*frame));
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].seq, 1u);
  EXPECT_EQ(seen[0].a, "first");
  EXPECT_EQ(seen[1].seq, 2u);
  EXPECT_EQ(seen[1].a, "second");
  EXPECT_FALSE(decoder.partial());
}

TEST(FrameDecoder, YieldsCoalescedBackToBackFramesFromOneFeed) {
  util::ByteWriter out;
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    bus::append_frame(out, make_msg(seq, "m" + std::to_string(seq)),
                      64u << 20);
  }
  util::Bytes bytes = std::move(out).take();

  bus::FrameDecoder decoder;
  decoder.feed(bytes);
  std::uint64_t expect = 1;
  while (auto frame = decoder.next()) {
    EXPECT_EQ(decode_message(*frame).seq, expect++);
  }
  EXPECT_EQ(expect, 6u);
  EXPECT_FALSE(decoder.partial());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoder, TracksPartialFrameAcrossFeeds) {
  util::ByteWriter out;
  bus::append_frame(out, make_msg(9, "split"), 64u << 20);
  util::Bytes bytes = std::move(out).take();

  bus::FrameDecoder decoder;
  const std::size_t cut = bytes.size() / 2;
  decoder.feed(std::span(bytes.data(), cut));
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_TRUE(decoder.partial());
  EXPECT_EQ(decoder.buffered(), cut);
  decoder.feed(std::span(bytes.data() + cut, bytes.size() - cut));
  auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(decode_message(*frame).seq, 9u);
  EXPECT_FALSE(decoder.partial());
}

TEST(FrameDecoder, RejectsOversizedLengthPrefixBeforeBuffering) {
  bus::FrameDecoder decoder(1024);
  const std::uint8_t prefix[4] = {0x00, 0x01, 0x00, 0x00};  // 65536 bytes
  decoder.feed(prefix);
  EXPECT_THROW(decoder.next(), util::EncodingError);
}

TEST(BusFrame, InPlaceCallFrameMatchesEncodeMessage) {
  // The zero-copy builder must be byte-identical to prefix+encode_message
  // over the equivalent Message, or the two transport generations would
  // disagree on the wire.
  const uts::SpecFile spec =
      uts::parse_spec("import inc prog(\"x\" val integer, \"y\" res integer)");
  const uts::ProcDecl& decl = spec.find("inc");
  const std::string import_text = uts::decl_to_string(decl);
  const uts::Signature& sig = decl.signature;
  const arch::ArchDescriptor& arch = arch::arch_catalog("sun-sparc10");
  auto plan = uts::compile_plan(sig, uts::Direction::kRequest);
  const uts::ValueList args = {Value::integer(41), Value::integer(0)};

  util::ByteWriter in_place;
  bus::append_call_frame(in_place, 7, "inc", import_text, *plan, arch, args,
                         obs::TraceContext{}, 64u << 20);

  Message msg;
  msg.kind = MessageKind::kCall;
  msg.seq = 7;
  msg.a = "inc";
  msg.b = import_text;
  msg.blob = uts::marshal(arch, sig, args, uts::Direction::kRequest);
  util::Bytes body = encode_message(msg);
  util::ByteWriter reference;
  reference.u32(static_cast<std::uint32_t>(body.size()));
  reference.raw(body);

  EXPECT_EQ(std::move(in_place).take(), std::move(reference).take());
}

// --- Raw-socket behavior of the dispatcher host ----------------------------

struct RawClient {
  explicit RawClient(int port)
      : fd(bus::tcp_connect_fd("127.0.0.1", port)) {}
  ~RawClient() { ::close(fd); }

  void send_all(const std::uint8_t* data, std::size_t size) {
    std::size_t sent = 0;
    while (sent < size) {
      ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  int fd;
};

util::Bytes framed_inc_call(std::uint64_t seq, std::int64_t x) {
  const std::string spec =
      "import inc prog(\"x\" val integer, \"y\" res integer)";
  uts::ProcDecl decl = uts::parse_spec(spec).find("inc");
  Message msg;
  msg.kind = MessageKind::kCall;
  msg.seq = seq;
  msg.a = "inc";
  msg.b = uts::decl_to_string(decl);
  msg.blob = uts::marshal(arch::arch_catalog("sun-sparc10"), decl.signature,
                          {Value::integer(x), Value::integer(0)},
                          uts::Direction::kRequest);
  util::ByteWriter out;
  bus::append_frame(out, msg, 64u << 20);
  return std::move(out).take();
}

std::unique_ptr<TcpProcedureHost> make_inc_host() {
  return std::make_unique<TcpProcedureHost>(
      "export inc prog(\"x\" val integer, \"y\" res integer)",
      std::vector<ProcedureDef>{{"inc", [](ProcCall& c) {
                                   c.set("y",
                                         Value::integer(c.integer("x") + 1));
                                 }}},
      "sun-sparc10");
}

Message read_reply(int fd) {
  auto read_all = [fd](std::uint8_t* data, std::size_t size) {
    std::size_t got = 0;
    while (got < size) {
      ssize_t n = ::recv(fd, data + got, size - got, 0);
      if (n <= 0) return false;
      got += static_cast<std::size_t>(n);
    }
    return true;
  };
  std::uint8_t prefix[4];
  EXPECT_TRUE(read_all(prefix, 4));
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len = (len << 8) | prefix[i];
  util::Bytes body(len);
  EXPECT_TRUE(read_all(body.data(), len));
  return decode_message(body);
}

TEST(BusHost, ServesCallArrivingOneByteAtATime) {
  auto host_ptr = make_inc_host();
  TcpProcedureHost& host = *host_ptr;
  RawClient client(host.port());
  util::Bytes frame = framed_inc_call(3, 41);
  for (std::uint8_t byte : frame) {
    client.send_all(&byte, 1);
  }
  Message reply = read_reply(client.fd);
  EXPECT_EQ(reply.kind, MessageKind::kReply);
  EXPECT_EQ(reply.seq, 3u);
  uts::ValueList out =
      uts::unmarshal(arch::arch_catalog("sun-sparc10"),
                     uts::parse_spec("import inc prog(\"x\" val integer,"
                                     " \"y\" res integer)")
                         .find("inc")
                         .signature,
                     reply.blob, uts::Direction::kReply);
  EXPECT_EQ(out[1].as_integer(), 42);
}

TEST(BusHost, ServesTwoFramesCoalescedIntoOneSend) {
  auto host_ptr = make_inc_host();
  TcpProcedureHost& host = *host_ptr;
  RawClient client(host.port());
  util::Bytes one = framed_inc_call(1, 10);
  util::Bytes two = framed_inc_call(2, 20);
  util::Bytes both = one;
  both.insert(both.end(), two.begin(), two.end());
  client.send_all(both.data(), both.size());
  Message r1 = read_reply(client.fd);
  Message r2 = read_reply(client.fd);
  EXPECT_EQ(r1.seq, 1u);
  EXPECT_EQ(r2.seq, 2u);
  EXPECT_EQ(host.calls(), 2);
}

TEST(BusHost, DropsConnectionOnOversizedFramePrefix) {
  auto host_ptr = make_inc_host();
  TcpProcedureHost& host = *host_ptr;
  RawClient client(host.port());
  // 128 MiB length prefix: over the 64 MiB cap — protocol violation.
  const std::uint8_t prefix[4] = {0x08, 0x00, 0x00, 0x00};
  client.send_all(prefix, 4);
  std::uint8_t byte;
  EXPECT_LE(::recv(client.fd, &byte, 1, 0), 0) << "connection must drop";
  EXPECT_EQ(host.calls(), 0);
}

// --- Multiplexing semantics ------------------------------------------------

TEST(BusChannel, RepliesMatchBySeqWhenCompletionsAreOutOfOrder) {
  TcpProcedureHost host(
      "export work prog(\"delay_ms\" val integer, \"x\" val integer,"
      " \"y\" res integer)",
      {{"work", [](ProcCall& c) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(c.integer("delay_ms")));
          c.set("y", Value::integer(c.integer("x") * 2));
        }}},
      "sun-sparc10");
  TcpRemoteProc work("127.0.0.1", host.port(), "work",
                     "import work prog(\"delay_ms\" val integer,"
                     " \"x\" val integer, \"y\" res integer)",
                     "sun-sparc10");
  // Slow call first, fast call second: both pipeline over one socket and
  // the fast reply overtakes the slow one on the wire.
  PendingTcpCall slow = work.call_async(
      {Value::integer(500), Value::integer(1), Value::integer(0)});
  PendingTcpCall fast = work.call_async(
      {Value::integer(0), Value::integer(2), Value::integer(0)});

  const auto t0 = std::chrono::steady_clock::now();
  CallResult& fast_result = fast.get();
  const auto fast_wait = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(fast_result.ok()) << fast_result.status.to_string();
  EXPECT_EQ(fast_result.values[2].as_integer(), 4);
  EXPECT_LT(fast_wait, std::chrono::milliseconds(300))
      << "fast reply must not queue behind the slow in-flight call";

  CallResult& slow_result = slow.get();
  ASSERT_TRUE(slow_result.ok()) << slow_result.status.to_string();
  EXPECT_EQ(slow_result.values[2].as_integer(), 2);
  EXPECT_EQ(host.calls(), 2);
}

TEST(BusChannel, TimeoutAbandonsSeqButKeepsTheConnection) {
  TcpProcedureHost host(
      "export nap prog(\"ms\" val integer, \"y\" res integer)",
      {{"nap", [](ProcCall& c) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(c.integer("ms")));
          c.set("y", Value::integer(c.integer("ms")));
        }}},
      "sun-sparc10");
  TcpRemoteProc nap("127.0.0.1", host.port(), "nap",
                    "import nap prog(\"ms\" val integer, \"y\" res integer)",
                    "sun-sparc10");
  auto channel = bus::TcpBus::instance().channel("127.0.0.1", host.port());
  const bus::BusConnection* before = channel->connection().get();
  const std::uint64_t abandoned_before =
      obs::Registry::global().counter("rpc.bus.abandoned_replies").value();

  CallOptions opts;
  opts.deadline_us = 50'000;
  opts.max_attempts = 1;
  CallResult timed_out =
      nap.call({Value::integer(400), Value::integer(0)}, opts);
  EXPECT_EQ(timed_out.status.code(), util::ErrorCode::kDeadlineExceeded);

  // The same connection keeps serving: no teardown, no reconnect.
  uts::ValueList out = nap.call({Value::integer(0), Value::integer(0)});
  EXPECT_EQ(out[1].as_integer(), 0);
  auto channel_after =
      bus::TcpBus::instance().channel("127.0.0.1", host.port());
  EXPECT_EQ(channel_after->connection().get(), before)
      << "a timeout must not tear down the pooled connection";

  // The straggler reply lands eventually and is discarded by seq.
  std::uint64_t abandoned_after = abandoned_before;
  for (int i = 0; i < 200 && abandoned_after <= abandoned_before; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    abandoned_after =
        obs::Registry::global().counter("rpc.bus.abandoned_replies").value();
  }
  EXPECT_GT(abandoned_after, abandoned_before);
  EXPECT_EQ(host.calls(), 2);
}

}  // namespace
}  // namespace npss::rpc
