// The multi-tenant session layer (DESIGN.md §15): Session/Line handles,
// Manager admission control (max_lines, per-line call quota), per-line
// fault budgets charged by CallCore::invoke, fair per-line queueing in
// the host worker pools, and noisy-neighbor isolation — one line behind a
// 100%-lossy link must not move its neighbors' deterministic virtual-time
// p99 by more than 10%.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rpc/schooner.hpp"
#include "sim/network.hpp"
#include "util/fair_queue.hpp"

namespace npss {
namespace {

using rpc::CallOptions;
using rpc::CallResult;
using rpc::LineBudget;
using rpc::LineOptions;
using uts::Value;

const char* kWorkSpec = "export work prog(\"x\" val double, \"y\" res double)";
const char* kWorkImport =
    "import work prog(\"x\" val double, \"y\" res double)";

sim::ProgramImage work_image(int workers = 0) {
  rpc::ProcedureImageOptions options;
  options.workers = workers;
  return rpc::make_procedure_image(
      kWorkSpec,
      {{"work",
        [](rpc::ProcCall& c) { c.set_real("y", c.real("x") + 1.0); }}},
      options);
}

// Shared procedures live in the Manager's one shared name space, so each
// shared fleet host exports a distinct name; tenant lines import without
// contacting (the owner line started the host).
std::string named_work_spec(const std::string& name) {
  return "export " + name + " prog(\"x\" val double, \"y\" res double)";
}
std::string named_work_import(const std::string& name) {
  return "import " + name + " prog(\"x\" val double, \"y\" res double)";
}
sim::ProgramImage named_work_image(const std::string& name, int workers = 0) {
  rpc::ProcedureImageOptions options;
  options.workers = workers;
  return rpc::make_procedure_image(
      named_work_spec(name),
      {{name,
        [](rpc::ProcCall& c) { c.set_real("y", c.real("x") + 1.0); }}},
      options);
}

// --- util::FairQueue ----------------------------------------------------

TEST(FairQueue, DrainsLanesRoundRobinNotArrival) {
  util::FairQueue<int> q;
  // Line 7 floods first; lines 8 and 9 each enqueue one item afterward.
  for (int i = 0; i < 4; ++i) q.push(7, 700 + i);
  q.push(8, 800);
  q.push(9, 900);
  // Round-robin over lanes: 7, 8, 9, 7, 7, 7 — the flood waits behind
  // itself, not in front of its neighbors.
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) order.push_back(*q.pop());
  EXPECT_EQ(order, (std::vector<int>{700, 800, 900, 701, 702, 703}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(FairQueue, CloseDrainsThenReturnsNullopt) {
  util::FairQueue<std::string> q;
  q.push(1, "a");
  q.push(2, "b");
  q.close();
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.push(3, "late"));  // rejected after close
}

// --- LineBudget ---------------------------------------------------------

TEST(LineBudgetTest, OutstandingCapAndRetryBudget) {
  LineBudget budget({.virtual_us = 0, .retries = 2, .outstanding = 2});
  EXPECT_TRUE(budget.try_begin_call());
  EXPECT_TRUE(budget.try_begin_call());
  EXPECT_FALSE(budget.try_begin_call());  // cap reached
  budget.end_call();
  EXPECT_TRUE(budget.try_begin_call());

  EXPECT_TRUE(budget.charge_retry());
  EXPECT_TRUE(budget.charge_retry());
  EXPECT_FALSE(budget.charge_retry());  // retry budget spent
  EXPECT_EQ(budget.retries_spent(), 2);
}

TEST(LineBudgetTest, ManagerQuotaFoldsInSmallerWins) {
  LineBudget unlimited(LineBudget::Limits{});
  unlimited.restrict_outstanding(3);
  EXPECT_TRUE(unlimited.try_begin_call());
  EXPECT_TRUE(unlimited.try_begin_call());
  EXPECT_TRUE(unlimited.try_begin_call());
  EXPECT_FALSE(unlimited.try_begin_call());

  LineBudget tight({.virtual_us = 0, .retries = 0, .outstanding = 1});
  tight.restrict_outstanding(5);  // the line's own cap stays
  EXPECT_TRUE(tight.try_begin_call());
  EXPECT_FALSE(tight.try_begin_call());
}

// --- Session / Line fixture --------------------------------------------

class LinesTest : public ::testing::Test {
 protected:
  void build(rpc::SystemOptions options = {}, int host_workers = 0) {
    system_.reset();
    cluster_ = std::make_unique<sim::Cluster>();
    cluster_->add_machine("avs", "sun-sparc10", "lerc");
    cluster_->add_machine("m0", "ibm-rs6000", "lerc");
    cluster_->add_machine("m1", "ibm-rs6000", "lerc");
    cluster_->add_machine("far", "sgi-4d480", "ua");
    cluster_->set_site_link("lerc", "ua", sim::link_profile("internet-wan"));
    cluster_->install_image("m0", "/bin/work", work_image(host_workers));
    cluster_->install_image("m1", "/bin/work", work_image(host_workers));
    cluster_->install_image("m0", "/bin/work0",
                            named_work_image("work0", host_workers));
    cluster_->install_image("m1", "/bin/work1",
                            named_work_image("work1", host_workers));
    cluster_->install_image("far", "/bin/work", work_image());
    system_ =
        std::make_unique<rpc::SchoonerSystem>(*cluster_, "avs", options);
  }

  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<rpc::SchoonerSystem> system_;
};

TEST_F(LinesTest, DuplicateNamesResolvePerLine) {
  build();
  auto session = system_->make_session("avs");
  auto a = session->open_line(LineOptions{}.with_name("tenant-a"));
  auto b = session->open_line(LineOptions{}.with_name("tenant-b"));
  ASSERT_NE(a->id(), b->id());

  // Both lines import 'work' — same name, different processes, separate
  // per-line name spaces.
  a->contact_schx("m0", "/bin/work");
  b->contact_schx("m1", "/bin/work");
  auto wa = a->import_proc("work", kWorkImport);
  auto wb = b->import_proc("work", kWorkImport);
  const CallOptions legacy = CallOptions::legacy();
  EXPECT_DOUBLE_EQ(
      wa->call({Value::real(1), Value::real(0)}, legacy).values_or_raise()[1]
          .as_real(),
      2.0);
  EXPECT_DOUBLE_EQ(
      wb->call({Value::real(5), Value::real(0)}, legacy).values_or_raise()[1]
          .as_real(),
      6.0);

  // Tearing down line A shuts down A's process only; B keeps calling.
  a->quit();
  EXPECT_FALSE(a->active());
  EXPECT_DOUBLE_EQ(
      wb->call({Value::real(7), Value::real(0)}, legacy).values_or_raise()[1]
          .as_real(),
      8.0);
  b->quit();
  EXPECT_EQ(session->lines_opened(), 2);
}

TEST_F(LinesTest, AdmissionGateRejectsPastMaxLines) {
  rpc::SystemOptions options;
  options.max_lines = 2;
  build(options);
  auto session = system_->make_session("avs");
  auto a = session->open_line();
  auto b = session->open_line();

  // The third registration is refused with kLineRejected, not an export
  // or protocol error.
  EXPECT_THROW((void)session->open_line(), util::LineRejectedError);
  EXPECT_EQ(system_->stats().lines_rejected, 1u);

  // Freeing a slot makes the next registration admissible.
  a->quit();
  auto c = session->open_line();
  EXPECT_TRUE(c->active());
  c->quit();
  b->quit();
}

TEST_F(LinesTest, RejectedClientBacksOffThenAdmits) {
  rpc::SystemOptions options;
  options.max_lines = 1;
  build(options);
  auto session = system_->make_session("avs");
  auto holder = session->open_line();

  // A competing open with admission backoff keeps retrying; once the
  // holder quits, an attempt lands inside the window and is admitted.
  std::thread release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    holder->quit();
  });
  auto late = session->open_line(
      LineOptions{}.with_name("late").with_admission(/*attempts=*/20,
                                                     /*backoff_ms=*/10));
  release.join();
  EXPECT_TRUE(late->active());
  EXPECT_GE(system_->stats().lines_rejected, 1u);
  late->quit();
}

TEST_F(LinesTest, ManagerQuotaFoldsIntoLineBudget) {
  rpc::SystemOptions options;
  options.line_call_quota = 2;
  build(options);
  auto session = system_->make_session("avs");
  auto line = session->open_line();
  ASSERT_TRUE(line->budget() != nullptr);
  // The kLineAck quota (2) became the budget's outstanding cap.
  EXPECT_TRUE(line->budget()->try_begin_call());
  EXPECT_TRUE(line->budget()->try_begin_call());
  EXPECT_FALSE(line->budget()->try_begin_call());
  line->budget()->end_call();
  line->budget()->end_call();
  line->quit();
}

TEST_F(LinesTest, VirtualBudgetExhaustionFailsFast) {
  build();
  auto session = system_->make_session("avs");
  // A budget of 1 us of virtual time: the first call (which costs real
  // virtual microseconds of marshal + transport) spends it entirely.
  auto line = session->open_line(
      LineOptions{}.with_name("broke").with_budget({.virtual_us = 1}));
  line->contact_schx("m0", "/bin/work");
  auto work = line->import_proc("work", kWorkImport);
  const CallOptions legacy = CallOptions::legacy();
  CallResult first = work->call({Value::real(1), Value::real(0)}, legacy);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.virtual_us, 0);
  EXPECT_GE(line->budget()->virtual_spent(), 1);

  CallResult second = work->call({Value::real(2), Value::real(0)}, legacy);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status.code(), util::ErrorCode::kBudgetExhausted);
  EXPECT_EQ(second.attempt_count(), 0);  // refused before any attempt
  line->quit();
}

TEST_F(LinesTest, FiveHundredLinesShareOneFleet) {
  build({}, /*host_workers=*/2);
  auto session = system_->make_session("avs");

  // One owner line starts the shared fleet (two pooled hosts); the
  // tenants never contact — they import straight out of the shared
  // name space and share the resident processes.
  auto owner = session->open_line(LineOptions{}.with_name("fleet-owner"));
  owner->contact_schx("m0", "/bin/work0", /*shared=*/true);
  owner->contact_schx("m1", "/bin/work1", /*shared=*/true);

  const int kLines = 500;
  std::vector<std::unique_ptr<rpc::Line>> lines;
  std::vector<std::unique_ptr<rpc::RemoteProc>> procs;
  lines.reserve(kLines);
  procs.reserve(kLines);
  for (int i = 0; i < kLines; ++i) {
    auto line = session->open_line(
        LineOptions{}.with_name("tenant" + std::to_string(i)));
    const std::string proc = i % 2 == 0 ? "work0" : "work1";
    procs.push_back(line->import_proc(proc, named_work_import(proc)));
    lines.push_back(std::move(line));
  }
  EXPECT_EQ(session->lines_opened(), kLines + 1);

  // Step every line twice from a small worker pool; every call must land
  // on the shared fleet and come back correct.
  const int kWorkers = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int w = 0; w < kWorkers; ++w) {
    pool.emplace_back([&, w] {
      const CallOptions legacy = CallOptions::legacy();
      for (int step = 0; step < 2; ++step) {
        for (int i = w; i < kLines; i += kWorkers) {
          CallResult r =
              procs[i]->call({Value::real(i), Value::real(0)}, legacy);
          if (!r.ok() || r.values[1].as_real() != i + 1.0) ++failures;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(failures.load(), 0);

  procs.clear();
  for (auto& line : lines) line->quit();
  owner->quit();
  rpc::ManagerStats stats = system_->stats();
  EXPECT_GE(stats.lines_created, static_cast<std::uint64_t>(kLines));
  EXPECT_GE(stats.lines_shut_down, static_cast<std::uint64_t>(kLines));
}

TEST_F(LinesTest, LossyLineDoesNotMoveNeighborP99) {
  build({}, /*host_workers=*/2);
  auto session = system_->make_session("avs");

  auto owner = session->open_line(LineOptions{}.with_name("fleet-owner"));
  owner->contact_schx("m0", "/bin/work0", /*shared=*/true);
  owner->contact_schx("m1", "/bin/work1", /*shared=*/true);

  const int kNeighbors = 4;
  std::vector<std::unique_ptr<rpc::Line>> lines;
  std::vector<std::unique_ptr<rpc::RemoteProc>> procs;
  for (int i = 0; i < kNeighbors; ++i) {
    auto line = session->open_line(
        LineOptions{}.with_name("neighbor" + std::to_string(i)));
    const std::string proc = i % 2 == 0 ? "work0" : "work1";
    procs.push_back(line->import_proc(proc, named_work_import(proc)));
    lines.push_back(std::move(line));
  }
  auto victim = session->open_line(
      LineOptions{}
          .with_name("victim")
          .with_budget({.virtual_us = 10'000'000, .retries = 100}));
  victim->contact_schx("far", "/bin/work");
  auto victim_work = victim->import_proc("work", kWorkImport);
  const CallOptions legacy = CallOptions::legacy();
  ASSERT_TRUE(
      victim_work->call({Value::real(1), Value::real(0)}, legacy).ok());

  // Deterministic per-step cost: each call's virtual_us comes from the
  // line's own virtual clock and seeded link model, not wall time.
  auto measure_p99 = [&]() {
    std::vector<double> virtual_us;
    for (int step = 0; step < 25; ++step) {
      for (int i = 0; i < kNeighbors; ++i) {
        CallResult r =
            procs[i]->call({Value::real(step), Value::real(0)}, legacy);
        EXPECT_TRUE(r.ok());
        virtual_us.push_back(static_cast<double>(r.virtual_us));
      }
    }
    std::sort(virtual_us.begin(), virtual_us.end());
    return virtual_us[virtual_us.size() * 99 / 100];
  };
  const double baseline_p99 = measure_p99();
  ASSERT_GT(baseline_p99, 0.0);

  // 100% loss on the victim's WAN; it storms deadline-bounded retries
  // from another thread while the neighbors re-measure.
  sim::FaultSpec loss;
  loss.drop_rate = 1.0;
  cluster_->set_fault_seed(11);
  cluster_->set_link_faults("internet-wan", loss);
  std::atomic<bool> stop{false};
  std::atomic<long> victim_failures{0};
  std::atomic<bool> budget_hit{false};
  std::thread storm([&] {
    CallOptions opts;
    opts.deadline_us = 100'000;
    opts.max_attempts = 3;
    opts.idempotent = true;
    opts.host_grace_ms = 2;
    while (!stop.load()) {
      CallResult r =
          victim_work->call({Value::real(1), Value::real(0)}, opts);
      if (r.ok()) continue;
      ++victim_failures;
      if (r.status.code() == util::ErrorCode::kBudgetExhausted) {
        budget_hit.store(true);
        break;
      }
    }
  });

  const double contended_p99 = measure_p99();
  stop.store(true);
  storm.join();
  cluster_->clear_faults();

  // The isolation bound: the lossy line moved its neighbors' p99 by at
  // most 10%. (Virtual time is per-line, so the expected delta is zero;
  // the bound leaves room for scheduling-order effects in shared hosts.)
  EXPECT_LE(contended_p99, baseline_p99 * 1.10)
      << "baseline " << baseline_p99 << " vs contended " << contended_p99;
  EXPECT_GT(victim_failures.load(), 0);

  victim->quit();
  procs.clear();
  for (auto& line : lines) line->quit();
  owner->quit();
  (void)budget_hit;
}

TEST_F(LinesTest, SchoonerClientWrapsSessionAndLine) {
  build();
  auto client = system_->make_client("avs", "compat");
  client->contact_schx("m0", "/bin/work");
  auto work = client->import_proc("work", kWorkImport);
  const CallOptions legacy = CallOptions::legacy();
  EXPECT_DOUBLE_EQ(
      work->call({Value::real(3), Value::real(0)}, legacy).values_or_raise()[1]
          .as_real(),
      4.0);
  // The wrapped handles are reachable for code mid-migration.
  EXPECT_EQ(client->line(), client->as_line().id());
  EXPECT_EQ(client->session().lines_opened(), 1);
  client->quit();
}

}  // namespace
}  // namespace npss
