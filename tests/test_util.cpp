// Tests of the utility substrate: byte reader/writer framing, the
// closable blocking queue, virtual clocks, error taxonomy, and the
// parallel_for helper's chunking.
#include <gtest/gtest.h>

#include <thread>

#include <atomic>

#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/parallel.hpp"
#include "util/queue.hpp"
#include "util/status.hpp"

namespace npss::util {
namespace {

TEST(Bytes, WriterReaderRoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1ll << 40);
  w.f32(3.5f);
  w.f64(-2.25);
  w.str("schooner");
  w.blob({{1, 2, 3}});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1ll << 40);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "schooner");
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.bytes(), (Bytes{1, 2, 3, 4}));
}

TEST(Bytes, UnderflowThrowsEncodingError) {
  Bytes two{1, 2};
  ByteReader r(two);
  EXPECT_THROW((void)r.u32(), EncodingError);
  ByteReader r2(two);
  r2.u16();
  EXPECT_THROW((void)r2.u8(), EncodingError);
}

TEST(Bytes, StringLengthValidatedBeforeRead) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.str(), EncodingError);
}

TEST(Bytes, HexDump) {
  EXPECT_EQ(hex_dump(Bytes{0x00, 0xff, 0x3f}), "00 ff 3f");
  EXPECT_EQ(hex_dump(Bytes{}), "");
}

TEST(Queue, FifoOrderAndTryPop) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.try_pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
}

TEST(Queue, CloseDrainsThenStops) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));  // dropped after close
  EXPECT_EQ(*q.pop(), 7);   // existing items drain
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.closed());
}

TEST(Queue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread consumer([&] {
    auto item = q.pop();
    EXPECT_FALSE(item.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(Queue, CrossThreadHandoff) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  while (auto item = q.pop()) {
    EXPECT_EQ(*item, expected++);
  }
  EXPECT_EQ(expected, 1000);
  producer.join();
}

TEST(Clock, AdvanceAndJoinAreMonotone) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.join(50);  // earlier stamp never rewinds
  EXPECT_EQ(clock.now(), 100);
  clock.join(250);
  EXPECT_EQ(clock.now(), 250);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(Clock, SimTimeConversions) {
  EXPECT_EQ(sim_ms(1.5), 1500);
  EXPECT_DOUBLE_EQ(sim_to_ms(2500), 2.5);
}

TEST(Status, ErrorsCarryCodeAndCategory) {
  RangeError e("too big");
  EXPECT_EQ(e.code(), ErrorCode::kRangeError);
  EXPECT_NE(std::string(e.what()).find("range-error"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("too big"), std::string::npos);
}

TEST(Parallel, CoversEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Parallel, WorkerExceptionRethrownOnCaller) {
  // Regression: an exception escaping a worker used to unwind out of the
  // std::jthread body and std::terminate the process. It must instead be
  // rethrown on the joining thread.
  EXPECT_THROW(
      parallel_for(
          0, 64,
          [](std::size_t i) {
            if (i == 17) throw RangeError("boom at 17");
          },
          4),
      RangeError);
}

TEST(Parallel, ExceptionStopsRemainingWork) {
  std::atomic<int> ran{0};
  try {
    parallel_for(
        0, 100000,
        [&](std::size_t) {
          ++ran;
          throw ModelError("fail fast");
        },
        4);
    FAIL() << "expected ModelError";
  } catch (const ModelError&) {
  }
  // Each worker stops at its next iteration once a failure is flagged, so
  // only a small fraction of the range runs.
  EXPECT_LT(ran.load(), 100000);
}

TEST(Status, RaiseErrorRestoresConcreteType) {
  for (ErrorCode code :
       {ErrorCode::kTypeMismatch, ErrorCode::kLookupFailure,
        ErrorCode::kStaleBinding, ErrorCode::kConvergenceFailure}) {
    try {
      raise_error(code, "x");
      FAIL();
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), code);
    }
  }
  EXPECT_THROW(raise_error(ErrorCode::kShutdown, "x"), ShutdownError);
  EXPECT_THROW(raise_error(ErrorCode::kUnknown, "x"), Error);
}

}  // namespace
}  // namespace npss::util
