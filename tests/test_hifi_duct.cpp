// Tests of the higher-fidelity duct (zooming substrate): relaxation-solver
// behaviour, physical calibration against the level-1 model, the parallel
// sweeps' determinism, and the end-to-end zooming experiment — swapping
// the duct fidelity by pointing the pathname at the level-2 executable.
#include <gtest/gtest.h>

#include <cmath>

#include "npss/procedures.hpp"
#include "npss/remote_backend.hpp"
#include "tess/engine.hpp"
#include "tess/hifi_duct.hpp"
#include "util/parallel.hpp"

namespace npss::tess {
namespace {

GasState design_inflow() { return GasState{100.0, 700.0, 3.0e5, 0.0}; }

TEST(ParallelFor, CoversEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  util::parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
  for (int h : hits) EXPECT_EQ(h, 1);
  // Degenerate ranges are fine.
  util::parallel_for(5, 5, [&](std::size_t) { FAIL(); });
  util::parallel_for(7, 3, [&](std::size_t) { FAIL(); });
}

TEST(HifiDuct, StraightDuctReproducesLevel1Calibration) {
  HifiDuctConfig cfg;
  cfg.design_dp = 0.02;
  cfg.design_flow = 100.0;
  HifiDuctResult r = hifi_duct(design_inflow(), cfg);
  EXPECT_NEAR(r.dp_fraction, 0.02, 2e-3);
  // Level-1 equivalence at the calibration point.
  GasState level1 = duct(design_inflow(), 0.02);
  EXPECT_NEAR(r.out.Pt / level1.Pt, 1.0, 3e-3);
  EXPECT_DOUBLE_EQ(r.out.W, level1.W);
  EXPECT_DOUBLE_EQ(r.out.Tt, level1.Tt);
}

TEST(HifiDuct, LossScalesWithDynamicHead) {
  HifiDuctConfig cfg;
  GasState lo = design_inflow();
  lo.W = 50.0;
  GasState hi = design_inflow();
  hi.W = 100.0;
  const double dp_lo = hifi_duct(lo, cfg).dp_fraction;
  const double dp_hi = hifi_duct(hi, cfg).dp_fraction;
  EXPECT_NEAR(dp_hi / dp_lo, 4.0, 0.1);  // ~W^2
}

TEST(HifiDuct, DiffuserLosesMoreThanContraction) {
  HifiDuctConfig straight, diffuser, contraction;
  diffuser.contour = 0.3;
  contraction.contour = -0.3;
  const double dp_straight = hifi_duct(design_inflow(), straight).dp_fraction;
  const double dp_diff = hifi_duct(design_inflow(), diffuser).dp_fraction;
  const double dp_con = hifi_duct(design_inflow(), contraction).dp_fraction;
  EXPECT_GT(dp_diff, dp_straight);
  EXPECT_GT(dp_con, dp_straight);  // acceleration raises wall friction
  EXPECT_GT(dp_diff, dp_con);      // but separation dominates diffusion
}

TEST(HifiDuct, ContractionRaisesWallVelocity) {
  HifiDuctConfig straight, contraction;
  contraction.contour = -0.3;
  const double v_straight =
      hifi_duct(design_inflow(), straight).max_wall_velocity;
  const double v_con =
      hifi_duct(design_inflow(), contraction).max_wall_velocity;
  EXPECT_NEAR(v_straight, 1.0, 0.05);
  EXPECT_GT(v_con, 1.3);  // h drops to 0.7 -> v ~ 1/0.7
}

TEST(HifiDuct, RelaxationConvergesAndIsDeterministicAcrossThreadCounts) {
  HifiDuctConfig serial;
  serial.contour = 0.25;
  serial.threads = 1;
  HifiDuctConfig parallel = serial;
  parallel.threads = 4;
  // Double-buffered Jacobi: bit-identical regardless of worker count.
  std::vector<double> a = hifi_duct_streamfunction(serial);
  std::vector<double> b = hifi_duct_streamfunction(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_LT(hifi_duct(design_inflow(), serial).residual, 1e-5);
}

TEST(HifiDuct, StreamfunctionMonotoneAcrossTheDuct) {
  HifiDuctConfig cfg;
  cfg.contour = 0.2;
  std::vector<double> psi = hifi_duct_streamfunction(cfg);
  for (int i = 0; i <= cfg.nx; ++i) {
    for (int j = 0; j < cfg.ny; ++j) {
      EXPECT_LE(psi[j * (cfg.nx + 1) + i],
                psi[(j + 1) * (cfg.nx + 1) + i] + 1e-12);
    }
  }
}

TEST(HifiDuct, TinyGridRejected) {
  HifiDuctConfig cfg;
  cfg.nx = 2;
  EXPECT_THROW((void)hifi_duct(design_inflow(), cfg), util::ModelError);
}

TEST(HifiDuct, ZoomingViaPathnameWidget) {
  // §2.3 zooming, end to end: the same F100 model runs with its tailpipe
  // duct at level 1, then at level 2, by changing nothing but the
  // executable path the duct instance is contacted at.
  sim::Cluster cluster;
  cluster.add_machine("ws", "sun-sparc10", "a");
  cluster.add_machine("i860", "intel-i860", "a");  // the parallel machine
  glue::install_tess_procedures(cluster, "i860");
  rpc::SchoonerSystem schooner(cluster, "ws");
  FlightCondition sls;

  auto run_with_path = [&](const std::string& path) {
    glue::RemoteBackend backend(schooner, "ws");
    backend.place(glue::AdaptedComponent::kDuct, 1, {"i860", path});
    F100Engine engine;
    engine.set_hooks(backend.hooks());
    engine.set_solver_tolerances(5e-6, 1e-4);
    return engine.balance(1.0, sls);
  };

  SteadyResult level1 = run_with_path(glue::kDuctPath);
  SteadyResult level2 = run_with_path(glue::kHifiDuctPath);

  // Same engine, same interface; the level-2 physics computes its own
  // loss from the actual flow, so the answers are close but not equal.
  EXPECT_NEAR(level2.performance.thrust / level1.performance.thrust, 1.0,
              0.05);
  EXPECT_GT(std::abs(level2.performance.thrust -
                     level1.performance.thrust),
            1.0)
      << "the fidelity levels should be distinguishable";
}

}  // namespace
}  // namespace npss::tess
