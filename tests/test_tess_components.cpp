// Tests of the TESS physics substrate: gas model thermodynamics, the
// standard atmosphere, performance maps, and each engine component's
// conservation and monotonicity properties.
#include <gtest/gtest.h>

#include <cmath>

#include "tess/components.hpp"
#include "tess/gas.hpp"
#include "tess/maps.hpp"

namespace npss::tess {
namespace {

// --- Gas model -------------------------------------------------------------------

TEST(Gas, CpRisesWithTemperatureAndFuel) {
  EXPECT_GT(cp(800.0), cp(288.15));
  EXPECT_GT(cp(1600.0, 0.02), cp(1600.0, 0.0));
  EXPECT_NEAR(cp(288.15), 1004.7, 0.1);
}

TEST(Gas, GammaInPhysicalRange) {
  for (double t : {220.0, 288.15, 800.0, 1600.0, 2000.0}) {
    EXPECT_GT(gamma(t), 1.25);
    EXPECT_LT(gamma(t), 1.42);
  }
  EXPECT_LT(gamma(1600.0), gamma(288.15));  // hot gas has lower gamma
}

TEST(Gas, EnthalpyInvertsExactly) {
  for (double t : {250.0, 288.15, 500.0, 1000.0, 1800.0}) {
    for (double far : {0.0, 0.01, 0.025}) {
      EXPECT_NEAR(temperature_from_enthalpy(enthalpy(t, far), far), t, 1e-8)
          << t << " " << far;
    }
  }
}

TEST(Gas, EnthalpyIsIntegralOfCp) {
  // dh/dT ~ cp by central difference.
  const double t = 700.0, dt = 0.01;
  const double dh = (enthalpy(t + dt) - enthalpy(t - dt)) / (2 * dt);
  EXPECT_NEAR(dh, cp(t), 1e-6 * cp(t));
}

TEST(Gas, StandardAtmosphere) {
  EXPECT_NEAR(isa_temperature(0.0), 288.15, 1e-9);
  EXPECT_NEAR(isa_pressure(0.0), 101325.0, 1e-6);
  EXPECT_NEAR(isa_temperature(11000.0), 216.65, 0.01);
  EXPECT_NEAR(isa_pressure(11000.0), 22632.0, 100.0);
  EXPECT_NEAR(isa_temperature(15000.0), 216.65, 1e-9);
  EXPECT_LT(isa_pressure(15000.0), isa_pressure(11000.0));
}

TEST(Gas, FlightConditionTotalsExceedStatics) {
  FlightCondition cruise{10668.0, 0.8, 0.0};
  EXPECT_GT(cruise.total_temperature(), cruise.ambient_temperature());
  EXPECT_GT(cruise.total_pressure(), cruise.ambient_pressure());
  FlightCondition sls{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(sls.total_pressure(), sls.ambient_pressure());
}

TEST(Gas, CorrectedFlowAtReferenceConditionsIsPhysical) {
  GasState ref{100.0, kTref, kPref, 0.0};
  EXPECT_DOUBLE_EQ(ref.corrected_flow(), 100.0);
  GasState hot = ref;
  hot.Tt = 4 * kTref;
  EXPECT_DOUBLE_EQ(hot.corrected_flow(), 200.0);
}

// --- Maps -------------------------------------------------------------------------

TEST(Maps, CatalogResolvesAndRejects) {
  EXPECT_NO_THROW((void)compressor_map("f100_fan.map"));
  EXPECT_NO_THROW((void)turbine_map("f100_hpt.map"));
  EXPECT_THROW((void)compressor_map("nope.map"), util::ModelError);
  EXPECT_THROW((void)turbine_map("nope.map"), util::ModelError);
  EXPECT_FALSE(compressor_map_names().empty());
  EXPECT_FALSE(turbine_map_names().empty());
}

TEST(Maps, CompressorSpeedLinesBehave) {
  const CompressorMap& map = compressor_map("f100_fan.map");
  // Along a speed line, moving toward surge raises PR and lowers flow.
  CompressorPoint choke = map.at(1.0, 1.0);
  CompressorPoint surge = map.at(1.0, 2.0);
  EXPECT_GT(surge.pr, choke.pr);
  EXPECT_LT(surge.wc, choke.wc);
  // Higher speed passes more flow at higher PR.
  EXPECT_GT(map.at(1.1, 1.5).wc, map.at(0.9, 1.5).wc);
  EXPECT_GT(map.at(1.1, 1.5).pr, map.at(0.9, 1.5).pr);
  // Efficiency peaks near design.
  EXPECT_GT(map.at(1.0, 1.5).eff, map.at(0.7, 1.5).eff);
  EXPECT_GT(map.at(1.0, 1.5).eff, map.at(1.0, 2.2).eff);
}

TEST(Maps, CompressorFlowInversionIsConsistent) {
  const CompressorMap& map = compressor_map("f100_hpc.map");
  for (double nc : {0.8, 0.95, 1.05}) {
    for (double r : {1.1, 1.5, 1.9}) {
      CompressorPoint fwd = map.at(nc, r);
      CompressorPoint inv = map.at_flow(nc, fwd.wc);
      EXPECT_NEAR(inv.r, r, 1e-9);
      EXPECT_NEAR(inv.pr, fwd.pr, 1e-9);
    }
  }
}

TEST(Maps, SurgeMarginPositiveBelowSurgeLine) {
  const CompressorMap& map = compressor_map("f100_fan.map");
  CompressorPoint mid = map.at(1.0, 1.5);
  EXPECT_GT(map.surge_margin(mid, 1.0), 0.0);
  CompressorPoint at_surge = map.at(1.0, 2.2);
  EXPECT_NEAR(map.surge_margin(at_surge, 1.0), 0.0, 1e-12);
}

TEST(Maps, TurbineFlowChokes) {
  const TurbineMap& map = turbine_map("f100_hpt.map");
  // Flow parameter rises with PR then saturates (choking).
  double fp_low = map.at(1.0, 1.5).flow_parameter;
  double fp_mid = map.at(1.0, 3.0).flow_parameter;
  double fp_high = map.at(1.0, 6.0).flow_parameter;
  EXPECT_LT(fp_low, fp_mid);
  EXPECT_LT(fp_mid, fp_high);
  EXPECT_LT((fp_high - fp_mid) / fp_mid, 0.1) << "should be near choke";
}

// --- Components ---------------------------------------------------------------------

TEST(Components, InletRecoversSubsonicTotalsExactly) {
  FlightCondition sls{0.0, 0.0, 0.0};
  InletResult r = inlet(sls, 100.0);
  EXPECT_DOUBLE_EQ(r.out.Pt, sls.total_pressure());
  EXPECT_DOUBLE_EQ(r.out.W, 100.0);
  EXPECT_DOUBLE_EQ(r.ram_drag, 0.0);

  FlightCondition supersonic{0.0, 1.6, 0.0};
  InletResult s = inlet(supersonic, 100.0);
  EXPECT_LT(s.out.Pt, supersonic.total_pressure());  // MIL-spec loss
  EXPECT_GT(s.ram_drag, 0.0);
}

TEST(Components, DuctLosesOnlyPressure) {
  GasState in{100.0, 500.0, 2e5, 0.01};
  GasState out = duct(in, 0.03);
  EXPECT_DOUBLE_EQ(out.W, in.W);
  EXPECT_DOUBLE_EQ(out.Tt, in.Tt);
  EXPECT_DOUBLE_EQ(out.far, in.far);
  EXPECT_DOUBLE_EQ(out.Pt, in.Pt * 0.97);
}

TEST(Components, BleedConservesMass) {
  GasState in{100.0, 500.0, 2e5, 0.0};
  BleedResult r = bleed(in, 0.07);
  EXPECT_DOUBLE_EQ(r.out.W + r.bleed.W, in.W);
  EXPECT_DOUBLE_EQ(r.out.Tt, in.Tt);
  EXPECT_THROW((void)bleed(in, 1.0), util::ModelError);
  EXPECT_THROW((void)bleed(in, -0.1), util::ModelError);
}

TEST(Components, CompressorEnergyBookkeepingConsistent) {
  GasState in{100.0, 288.15, 101325.0, 0.0};
  const CompressorMap& map = compressor_map("f100_fan.map");
  CompressorResult r = compressor(in, map, 10400.0, 10400.0);
  EXPECT_GT(r.out.Pt, in.Pt);
  EXPECT_GT(r.out.Tt, in.Tt);
  // power = W dh exactly.
  const double dh = enthalpy(r.out.Tt) - enthalpy(in.Tt);
  EXPECT_NEAR(r.power, in.W * dh, 1e-6 * r.power);
  // torque * omega = power.
  EXPECT_NEAR(r.torque * 10400.0 * kRpmToRad, r.power, 1e-6 * r.power);
}

TEST(Components, CompressorLessEfficientCostsMoreTemperature) {
  GasState in{100.0, 288.15, 101325.0, 0.0};
  const CompressorMap& map = compressor_map("f100_fan.map");
  // Same speed, flow closer to surge -> different eff; compare ideal dT.
  CompressorResult r = compressor(in, map, 10400.0, 10400.0);
  const double g = gamma(in.Tt);
  const double dT_ideal =
      in.Tt * (std::pow(r.out.Pt / in.Pt, (g - 1.0) / g) - 1.0);
  EXPECT_GT(r.out.Tt - in.Tt, dT_ideal);  // efficiency < 1
}

TEST(Components, CombustorEnergyBalanceCloses) {
  GasState in{60.0, 800.0, 2.4e6, 0.0};
  CombustorResult r = combustor(in, 1.2, 0.985, 0.05);
  EXPECT_NEAR(r.out.W, 61.2, 1e-12);
  EXPECT_GT(r.out.Tt, 1400.0);
  EXPECT_LT(r.out.Tt, 2100.0);
  // Energy: W4 h4 - W3 h3 = eff Wf LHV.
  const double lhs = r.out.W * enthalpy(r.out.Tt, r.out.far) -
                     in.W * enthalpy(in.Tt, in.far);
  EXPECT_NEAR(lhs, 0.985 * 1.2 * kFuelLhv, 1e-6 * lhs);
}

TEST(Components, CombustorInverseModeHitsTemperature) {
  GasState in{60.0, 800.0, 2.4e6, 0.0};
  CombustorResult r = combustor_to_temperature(in, 1600.0, 0.985, 0.05);
  EXPECT_NEAR(r.out.Tt, 1600.0, 0.01);
  EXPECT_GT(r.fuel_flow, 0.5);
  EXPECT_LT(r.fuel_flow, 3.0);
}

TEST(Components, TurbineExtractsWorkAndDropsPressure) {
  GasState in{61.0, 1600.0, 2.3e6, 0.021};
  const TurbineMap& map = turbine_map("f100_hpt.map");
  TurbineResult r = turbine(in, map, 3.1, 13450.0, 13450.0);
  EXPECT_LT(r.out.Tt, in.Tt);
  EXPECT_NEAR(r.out.Pt, in.Pt / 3.1, 1.0);
  EXPECT_GT(r.power, 0.0);
  const double dh = enthalpy(in.Tt, in.far) - enthalpy(r.out.Tt, in.far);
  EXPECT_NEAR(r.power, in.W * dh, 1e-6 * r.power);
  // Deeper expansion extracts more work.
  TurbineResult deeper = turbine(in, map, 4.0, 13450.0, 13450.0);
  EXPECT_GT(deeper.power, r.power);
}

TEST(Components, MixerConservesMassAndEnthalpy) {
  GasState core{60.0, 1050.0, 3.3e5, 0.02};
  GasState bypass{40.0, 410.0, 3.3e5, 0.0};
  MixerResult r = mix(core, bypass, 0.0);
  EXPECT_DOUBLE_EQ(r.out.W, 100.0);
  // Enthalpy balance.
  const double h_in = core.W * enthalpy(core.Tt, core.far) +
                      bypass.W * enthalpy(bypass.Tt, bypass.far);
  EXPECT_NEAR(r.out.W * enthalpy(r.out.Tt, r.out.far), h_in,
              1e-9 * std::abs(h_in));
  EXPECT_NEAR(r.pressure_imbalance, 0.0, 1e-12);
  // Mismatched pressures show up in the residual.
  bypass.Pt = 3.0e5;
  EXPECT_GT(mix(core, bypass, 0.0).pressure_imbalance, 0.05);
}

TEST(Components, NozzleChokesAtCriticalPressureRatio) {
  GasState in{100.0, 850.0, 101325.0 * 3.0, 0.02};
  NozzleResult choked = nozzle(in, 0.23, 101325.0);
  EXPECT_TRUE(choked.choked);
  EXPECT_GT(choked.thrust, 0.0);

  GasState gentle = in;
  gentle.Pt = 101325.0 * 1.3;
  NozzleResult sub = nozzle(gentle, 0.23, 101325.0);
  EXPECT_FALSE(sub.choked);
  EXPECT_LT(sub.w_required, choked.w_required);
}

TEST(Components, ChokedNozzleFlowScalesWithPressureNotBackpressure) {
  GasState in{100.0, 850.0, 5e5, 0.02};
  NozzleResult a = nozzle(in, 0.23, 101325.0);
  NozzleResult b = nozzle(in, 0.23, 90000.0);
  EXPECT_DOUBLE_EQ(a.w_required, b.w_required);  // choked: pamb irrelevant
  GasState higher = in;
  higher.Pt = 6e5;
  EXPECT_NEAR(nozzle(higher, 0.23, 101325.0).w_required / a.w_required,
              6.0 / 5.0, 1e-9);
}

TEST(Components, ShaftAcceleratesWithSurplusPower) {
  const double ecom[4] = {10.0e6, 100.0, 1.0e5, 0.85};
  const double etur_surplus[4] = {11.0e6, 100.0, 1.1e5, 0.9};
  const double etur_deficit[4] = {9.0e6, 100.0, 0.9e5, 0.9};
  const double ecorr = 1.0;
  EXPECT_GT(shaft(ecom, 1, etur_surplus, 1, ecorr, 10000.0, 40.0), 0.0);
  EXPECT_LT(shaft(ecom, 1, etur_deficit, 1, ecorr, 10000.0, 40.0), 0.0);
  // Balanced power, zero acceleration.
  EXPECT_NEAR(shaft(ecom, 1, ecom, 1, 1.0, 10000.0, 40.0), 0.0, 1e-12);
  // Heavier spool accelerates more slowly.
  const double light = shaft(ecom, 1, etur_surplus, 1, ecorr, 10000.0, 20.0);
  const double heavy = shaft(ecom, 1, etur_surplus, 1, ecorr, 10000.0, 80.0);
  EXPECT_NEAR(light / heavy, 4.0, 1e-9);
}

TEST(Components, SetshaftChargesPerComponentLoss) {
  const double e[4] = {1e6, 100.0, 1e4, 0.85};
  const double one = setshaft(e, 1, e, 1);
  const double many = setshaft(e, 3, e, 3);
  EXPECT_LT(many, one);
  EXPECT_GT(many, 0.94);
  EXPECT_LT(one, 1.0);
}

TEST(Components, VolumeDynamicsSignConvention) {
  GasState st{100.0, 800.0, 4e5, 0.0};
  EXPECT_GT(volume_dpdt(st, 0.5, 101.0, 100.0), 0.0);  // filling
  EXPECT_LT(volume_dpdt(st, 0.5, 100.0, 101.0), 0.0);  // emptying
  EXPECT_DOUBLE_EQ(volume_dpdt(st, 0.5, 100.0, 100.0), 0.0);
}

}  // namespace
}  // namespace npss::tess
