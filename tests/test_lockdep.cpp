// Lockdep (util::lockdep, DESIGN.md §16): the runtime lock-order
// checker must record ordering edges as they are observed and report an
// A->B / B->A inversion *deterministically at acquisition time* — with
// both conflicting chains — whether the two orderings come from one
// thread or two. The engine itself compiles in every build, so most of
// this suite drives it through the public hook API; the last test
// exercises the real util::Mutex integration, which only exists when
// SCHOONER_LOCKDEP is on (Debug / sanitizer builds).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/lockdep.hpp"
#include "util/mutex.hpp"

namespace npss::util {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool any_line_contains(const std::vector<std::string>& lines,
                       const std::string& needle) {
  for (const std::string& line : lines) {
    if (contains(line, needle)) return true;
  }
  return false;
}

// Every case starts from an empty graph and captures reports instead of
// aborting; the default handler is restored afterwards so ordinary
// suites running in the same binary keep the abort-on-inversion
// behavior.
class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::reset();
    lockdep::set_handler(
        [this](const lockdep::Report& r) { reports_.push_back(r); });
  }
  void TearDown() override {
    lockdep::set_handler(nullptr);
    lockdep::reset();
  }

  std::vector<lockdep::Report> reports_;
};

TEST_F(LockdepTest, InternsClassesByNameAndKeepsPointersStable) {
  const auto* a = lockdep::lock_class("lockdep-test.intern.A");
  const auto* b = lockdep::lock_class("lockdep-test.intern.B");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, lockdep::lock_class("lockdep-test.intern.A"));
  EXPECT_EQ(lockdep::class_name(a), "lockdep-test.intern.A");
  // reset() drops edges but interned classes survive.
  lockdep::reset();
  EXPECT_EQ(a, lockdep::lock_class("lockdep-test.intern.A"));
}

TEST_F(LockdepTest, RecordsOrderingEdgesWithoutFalsePositives) {
  const auto* a = lockdep::lock_class("lockdep-test.edges.A");
  const auto* b = lockdep::lock_class("lockdep-test.edges.B");
  int ia = 0, ib = 0;

  lockdep::on_acquire(a, &ia);
  EXPECT_EQ(lockdep::held_count(), 1u);
  lockdep::on_acquire(b, &ib);
  EXPECT_EQ(lockdep::held_count(), 2u);
  lockdep::on_release(b, &ib);
  lockdep::on_release(a, &ia);
  EXPECT_EQ(lockdep::held_count(), 0u);

  EXPECT_EQ(lockdep::edge_count(), 1u);
  EXPECT_TRUE(reports_.empty());
  // Same order again: no new edge, still no report.
  lockdep::on_acquire(a, &ia);
  lockdep::on_acquire(b, &ib);
  lockdep::on_release(b, &ib);
  lockdep::on_release(a, &ia);
  EXPECT_EQ(lockdep::edge_count(), 1u);
  EXPECT_TRUE(reports_.empty());

  EXPECT_TRUE(contains(
      lockdep::graph_text(),
      "lockdep-test.edges.A -> lockdep-test.edges.B"));
}

TEST_F(LockdepTest, DetectsAbBaInversionAndReportsBothChains) {
  const auto* a = lockdep::lock_class("lockdep-test.abba.A");
  const auto* b = lockdep::lock_class("lockdep-test.abba.B");
  int ia = 0, ib = 0;

  // Establish A -> B...
  lockdep::on_acquire(a, &ia);
  lockdep::on_acquire(b, &ib);
  lockdep::on_release(b, &ib);
  lockdep::on_release(a, &ia);

  // ...then attempt B -> A. Detection happens at on_acquire(A) — before
  // any real blocking would occur — so the test cannot deadlock.
  lockdep::on_acquire(b, &ib);
  lockdep::on_acquire(a, &ia);
  lockdep::on_release(a, &ia);
  lockdep::on_release(b, &ib);

  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_EQ(lockdep::inversions_detected(), 1u);
  const lockdep::Report& r = reports_.front();
  EXPECT_TRUE(contains(r.summary, "inversion"));
  EXPECT_TRUE(contains(r.summary, "lockdep-test.abba.A"));
  EXPECT_TRUE(contains(r.summary, "lockdep-test.abba.B"));
  // The acquiring chain: holds B, wants A — both present, with sites.
  EXPECT_TRUE(any_line_contains(r.acquiring_chain, "lockdep-test.abba.B"));
  EXPECT_TRUE(any_line_contains(r.acquiring_chain, "lockdep-test.abba.A"));
  EXPECT_TRUE(any_line_contains(r.acquiring_chain, "test_lockdep.cpp"));
  // The prior chain: the recorded A -> B ordering it contradicts.
  EXPECT_TRUE(any_line_contains(r.prior_chain, "lockdep-test.abba.A"));
  EXPECT_TRUE(any_line_contains(r.prior_chain, "lockdep-test.abba.B"));
  // to_string stitches both chains into one report.
  EXPECT_TRUE(contains(r.to_string(), "lockdep-test.abba.B"));
}

TEST_F(LockdepTest, DetectsTransitiveCycleThroughIntermediateClass) {
  const auto* a = lockdep::lock_class("lockdep-test.chain.A");
  const auto* b = lockdep::lock_class("lockdep-test.chain.B");
  const auto* c = lockdep::lock_class("lockdep-test.chain.C");
  int ia = 0, ib = 0, ic = 0;

  lockdep::on_acquire(a, &ia);   // A -> B
  lockdep::on_acquire(b, &ib);
  lockdep::on_release(b, &ib);
  lockdep::on_release(a, &ia);
  lockdep::on_acquire(b, &ib);   // B -> C
  lockdep::on_acquire(c, &ic);
  lockdep::on_release(c, &ic);
  lockdep::on_release(b, &ib);
  EXPECT_EQ(lockdep::edge_count(), 2u);

  lockdep::on_acquire(c, &ic);   // C -> A closes A -> B -> C
  lockdep::on_acquire(a, &ia);
  lockdep::on_release(a, &ia);
  lockdep::on_release(c, &ic);

  ASSERT_EQ(reports_.size(), 1u);
  // The prior chain walks A -> B -> C, two edges.
  EXPECT_GE(reports_.front().prior_chain.size(), 2u);
  EXPECT_TRUE(any_line_contains(reports_.front().prior_chain,
                                "lockdep-test.chain.B"));
}

TEST_F(LockdepTest, CrossThreadOrderConflictIsCaughtFromGraphNotTiming) {
  // Thread 1 runs A -> B and exits; thread 2 then runs B -> A. The
  // threads never overlap, so no real deadlock was possible in this
  // run — lockdep must still flag the inversion, because some other
  // schedule of the same code can deadlock.
  const auto* a = lockdep::lock_class("lockdep-test.xthread.A");
  const auto* b = lockdep::lock_class("lockdep-test.xthread.B");
  int ia = 0, ib = 0;

  std::thread t1([&] {
    lockdep::on_acquire(a, &ia);
    lockdep::on_acquire(b, &ib);
    lockdep::on_release(b, &ib);
    lockdep::on_release(a, &ia);
  });
  t1.join();

  std::thread t2([&] {
    lockdep::on_acquire(b, &ib);
    lockdep::on_acquire(a, &ia);
    lockdep::on_release(a, &ia);
    lockdep::on_release(b, &ib);
  });
  t2.join();

  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_TRUE(contains(reports_.front().summary, "lockdep-test.xthread"));
}

TEST_F(LockdepTest, SameClassNestingDoesNotSelfReport) {
  // Two *instances* of one class (e.g. two BusChannels) taken nested:
  // no self-edge, no report. Ordering within a class is the class
  // owner's business (address order, never-nest, ...), not the graph's.
  const auto* cls = lockdep::lock_class("lockdep-test.selfnest");
  int i1 = 0, i2 = 0;
  lockdep::on_acquire(cls, &i1);
  lockdep::on_acquire(cls, &i2);
  lockdep::on_release(cls, &i2);
  lockdep::on_release(cls, &i1);
  EXPECT_EQ(lockdep::edge_count(), 0u);
  EXPECT_TRUE(reports_.empty());
}

TEST_F(LockdepTest, TryAcquireRecordsHeldButConstrainsNothing) {
  const auto* a = lockdep::lock_class("lockdep-test.try.A");
  const auto* b = lockdep::lock_class("lockdep-test.try.B");
  int ia = 0, ib = 0;

  lockdep::on_acquire(a, &ia);
  lockdep::on_acquire(b, &ib);      // A -> B recorded
  lockdep::on_release(b, &ib);
  lockdep::on_release(a, &ia);

  // try_lock(A) while holding B: can't deadlock, must not report.
  lockdep::on_acquire(b, &ib);
  lockdep::on_try_acquire(a, &ia);
  EXPECT_EQ(lockdep::held_count(), 2u);
  lockdep::on_release(a, &ia);
  lockdep::on_release(b, &ib);

  EXPECT_TRUE(reports_.empty());
  EXPECT_EQ(lockdep::edge_count(), 1u);
}

TEST_F(LockdepTest, NonLifoReleaseIsSupported) {
  const auto* a = lockdep::lock_class("lockdep-test.nonlifo.A");
  const auto* b = lockdep::lock_class("lockdep-test.nonlifo.B");
  int ia = 0, ib = 0;
  lockdep::on_acquire(a, &ia);
  lockdep::on_acquire(b, &ib);
  lockdep::on_release(a, &ia);      // release out of order
  EXPECT_EQ(lockdep::held_count(), 1u);
  lockdep::on_release(b, &ib);
  EXPECT_EQ(lockdep::held_count(), 0u);
  EXPECT_TRUE(reports_.empty());
}

#if defined(SCHOONER_LOCKDEP) && SCHOONER_LOCKDEP
TEST_F(LockdepTest, MutexIntegrationCatchesSeededInversion) {
  // The real wrapper path: two util::Mutex instances in distinct
  // classes, locked A-then-B and then B-then-A on one thread. Single-
  // threaded, so the second pair cannot actually deadlock — the report
  // (captured by the fixture's handler instead of aborting) proves the
  // hooks fire inside Mutex::lock.
  Mutex a{"lockdep-test.mutex.A"};
  Mutex b{"lockdep-test.mutex.B"};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_TRUE(contains(reports_.front().summary, "lockdep-test.mutex.A"));
  EXPECT_TRUE(any_line_contains(reports_.front().prior_chain,
                                "lockdep-test.mutex.A"));
}
#else
TEST_F(LockdepTest, MutexIntegrationCatchesSeededInversion) {
  GTEST_SKIP() << "SCHOONER_LOCKDEP is off in this build; the Mutex "
                  "hooks are compiled out (engine-level coverage above "
                  "still ran).";
}
#endif

}  // namespace
}  // namespace npss::util
