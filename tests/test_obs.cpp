// Tests of the observability subsystem: histogram bucket edge cases,
// registry exports, span nesting, trace-context propagation on the wire
// (both the byte format and a live kCall over real TCP), and the
// end-to-end run report for an F100 transient with a remote module —
// the software replacement for the paper's hand-timed Tables 1 and 2.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "flow/network.hpp"
#include "npss/network_driver.hpp"
#include "npss/procedures.hpp"
#include "npss/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "rpc/message.hpp"
#include "rpc/schooner.hpp"
#include "rpc/tcp_transport.hpp"
#include "util/status.hpp"

namespace npss {
namespace {

using uts::Value;

TEST(ObsHistogram, BucketEdgesMinMaxAndOverflow) {
  obs::Histogram h({0.0, 10.0, 100.0});
  // Empty histogram reads as zeros, not the +/-infinity seeds.
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);

  h.record(0.0);      // exactly the first bound -> bucket 0
  h.record(-5.0);     // below every bound -> bucket 0
  h.record(10.0);     // exactly a middle bound -> bucket 1
  h.record(100.0);    // exactly the last bound -> last bucket
  h.record(100.001);  // above the last bound -> overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.001);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);

  EXPECT_THROW(obs::Histogram(std::vector<double>{}), util::ModelError);
  EXPECT_THROW(obs::Histogram(std::vector<double>{5.0, 1.0}),
               util::ModelError);
}

TEST(ObsRegistry, ExportsAndKindMismatch) {
  obs::Registry reg;
  reg.counter("a.calls").add(3);
  reg.gauge("a.level").set(2.5);
  reg.histogram("a.lat", {1.0, 10.0}).record(5.0);
  reg.counter("b.idle");  // registered but never incremented

  EXPECT_THROW(reg.gauge("a.calls"), util::ModelError);
  EXPECT_THROW(reg.counter("a.lat"), util::ModelError);
  EXPECT_THROW(reg.histogram("a.level"), util::ModelError);
  EXPECT_THROW(reg.find_counter("missing"), util::ModelError);

  const std::string text = reg.to_text();
  EXPECT_NE(text.find("a.calls counter 3"), std::string::npos);
  EXPECT_NE(text.find("a.level gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("a.lat histogram count=1"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"a.calls\":3"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[[1,0],[10,1]]"), std::string::npos);

  auto active = reg.active_names();
  EXPECT_NE(std::find(active.begin(), active.end(), "a.calls"),
            active.end());
  EXPECT_EQ(std::find(active.begin(), active.end(), "b.idle"), active.end());

  reg.reset();
  EXPECT_EQ(reg.find_counter("a.calls").value(), 0u);
  EXPECT_TRUE(reg.active_names().empty());
}

TEST(ObsTrace, SpansNestAndRecord) {
  obs::reset_run();
  obs::TraceContext root_ctx;
  {
    obs::Span root("test.layer", "root");
    ASSERT_TRUE(root.active());
    root_ctx = root.context();
    EXPECT_TRUE(root_ctx.active());
    EXPECT_EQ(obs::current_trace().span_id, root_ctx.span_id);
    {
      obs::Span child("test.layer", "child");
      EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
      EXPECT_EQ(child.context().parent_span_id, root_ctx.span_id);
    }
    EXPECT_EQ(obs::current_trace().span_id, root_ctx.span_id);
  }
  EXPECT_FALSE(obs::current_trace().active());
  auto spans = obs::SpanCollector::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);  // child closes (and records) first
  EXPECT_EQ(spans[0].name, "child");
  EXPECT_EQ(spans[1].name, "root");
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
}

TEST(ObsTrace, DisabledSwitchMakesSpansNoOps) {
  obs::reset_run();
  obs::set_enabled(false);
  {
    obs::Span s("test.layer", "ghost");
    EXPECT_FALSE(s.active());
    EXPECT_FALSE(s.context().active());
    EXPECT_FALSE(obs::current_trace().active());
  }
  obs::set_enabled(true);
  EXPECT_EQ(obs::SpanCollector::global().size(), 0u);
}

TEST(ObsWire, UntracedFrameMatchesLegacyFormat) {
  rpc::Message msg;
  msg.kind = rpc::MessageKind::kCall;
  msg.seq = 9;
  msg.a = "shaft";
  msg.b = "import shaft prog(\"x\" val float)";
  msg.table = {{"k", "v"}};

  // No trace -> byte-identical to the pre-extension format, and a frame
  // from a pre-trace peer (same bytes) decodes with an inactive context.
  util::Bytes legacy = rpc::encode_message(msg);
  rpc::Message back = rpc::decode_message(legacy);
  EXPECT_FALSE(back.trace.active());
  EXPECT_EQ(back.a, msg.a);

  // Active trace -> marker byte + three u64 ids appended.
  msg.trace = obs::TraceContext{42, 7, 3};
  util::Bytes traced = rpc::encode_message(msg);
  EXPECT_EQ(traced.size(), legacy.size() + 1 + 3 * 8);
  back = rpc::decode_message(traced);
  EXPECT_EQ(back.trace.trace_id, 42u);
  EXPECT_EQ(back.trace.span_id, 7u);
  EXPECT_EQ(back.trace.parent_span_id, 3u);

  // An unknown extension marker is rejected, not silently skipped.
  legacy.push_back(0x99);
  EXPECT_THROW(rpc::decode_message(legacy), util::EncodingError);
}

TEST(ObsWire, TraceIdPropagatesAcrossRealTcpCall) {
  obs::reset_run();
  rpc::TcpProcedureHost host(
      "export inc prog(\"x\" val integer, \"y\" res integer)",
      {{"inc",
        [](rpc::ProcCall& c) {
          c.set("y", Value::integer(c.integer("x") + 1));
        }}},
      "sun-sparc10");
  rpc::TcpRemoteProc inc("127.0.0.1", host.port(), "inc",
                         "import inc prog(\"x\" val integer,"
                         " \"y\" res integer)",
                         "sun-sparc10");
  uts::ValueList out = inc.call({Value::integer(41), Value::integer(0)});
  EXPECT_EQ(out[1].as_integer(), 42);

  // The server-side span closes just after the reply is sent; poll
  // briefly for it. The wire frame carries the per-attempt child span,
  // so the hierarchy is call -> attempt -> server, one trace end to end.
  obs::SpanRecord call_span{}, attempt{}, server{};
  for (int i = 0; i < 400 && server.trace_id == 0; ++i) {
    for (const obs::SpanRecord& s : obs::SpanCollector::global().snapshot()) {
      if (s.layer == "rpc.client" && s.name.starts_with("attempt ")) {
        attempt = s;
      } else if (s.layer == "rpc.client") {
        call_span = s;
      }
      if (s.layer == "rpc.host") server = s;
    }
    if (server.trace_id == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_NE(call_span.trace_id, 0u);
  ASSERT_NE(attempt.trace_id, 0u);
  ASSERT_NE(server.trace_id, 0u);
  EXPECT_EQ(attempt.trace_id, call_span.trace_id);
  EXPECT_EQ(attempt.parent_span_id, call_span.span_id);
  EXPECT_EQ(server.trace_id, call_span.trace_id);
  EXPECT_EQ(server.parent_span_id, attempt.span_id);

  // kPing round trips record transport RTT separately from call latency.
  EXPECT_GT(inc.ping_us(), 0.0);
  obs::Registry& reg = obs::Registry::global();
  EXPECT_GE(reg.find_histogram("rpc.transport.rtt_us").count(), 1u);
  EXPECT_GE(reg.find_counter("rpc.transport.frames_sent").value(), 2u);
  EXPECT_GE(reg.find_counter("rpc.client.calls").value(), 1u);
  EXPECT_GT(reg.find_histogram("rpc.client.latency_us").count(), 0u);
}

TEST(ObsReport, F100RemoteTransientShowsInstrumentedLayers) {
  // The acceptance scenario: one F100 transient with a remote module must
  // produce a run report covering at least the RPC client, the transport,
  // and the flow scheduler, with non-empty latency histograms, and the
  // client/host spans of a kCall must share a trace id.
  sim::Cluster cluster;
  cluster.add_machine("sparc-ua", "sun-sparc10", "uarizona");
  cluster.add_machine("cray-lerc", "cray-ymp", "lerc");
  cluster.set_site_link("lerc", "uarizona",
                        sim::link_profile("internet-wan"));
  glue::install_tess_procedures_everywhere(cluster);
  rpc::SchoonerSystem system(cluster, "sparc-ua");
  glue::configure_npss_runtime(cluster, system, "sparc-ua");

  flow::Network net;
  glue::F100NetworkNames names = glue::build_f100_network(net);
  net.module(names.burner).widget("machine").select("cray-lerc");
  net.module(names.burner).widget("path").set_text(glue::kCombustorPath);

  glue::NetworkEngineDriver driver(net);
  driver.set_tolerances(5e-6, 1e-4);

  obs::reset_run();
  driver.balance(1.0);
  driver.run_transient([](double t) { return t < 0.05 ? 1.0 : 1.2; }, 0.2,
                       0.05);

  std::vector<std::string> layers =
      obs::active_layers(obs::Registry::global());
  auto has_layer = [&](const char* l) {
    return std::find(layers.begin(), layers.end(), l) != layers.end();
  };
  EXPECT_GE(layers.size(), 3u);
  EXPECT_TRUE(has_layer("rpc.client"));
  EXPECT_TRUE(has_layer("rpc.transport"));
  EXPECT_TRUE(has_layer("flow.scheduler"));

  obs::Registry& reg = obs::Registry::global();
  EXPECT_GT(reg.find_histogram("rpc.client.latency_us").count(), 0u);
  EXPECT_GT(reg.find_histogram("flow.scheduler.module_evaluate_us").count(),
            0u);
  EXPECT_GT(reg.find_counter("rpc.transport.frames_sent").value(), 0u);
  EXPECT_GT(reg.find_counter("npss.driver.transient_steps").value(), 0u);

  // One kCall, both sides: a procedure-host span whose parent is a client
  // span of the same trace.
  auto spans = obs::SpanCollector::global().snapshot();
  bool matched = false;
  for (const obs::SpanRecord& h : spans) {
    if (h.layer != "rpc.host" || h.parent_span_id == 0) continue;
    for (const obs::SpanRecord& c : spans) {
      if (c.layer == "rpc.client" && c.trace_id == h.trace_id &&
          c.span_id == h.parent_span_id) {
        matched = true;
        break;
      }
    }
    if (matched) break;
  }
  EXPECT_TRUE(matched);

  const std::string report = obs::run_report();
  EXPECT_NE(report.find("run report"), std::string::npos);
  EXPECT_NE(report.find("rpc.client"), std::string::npos);
  EXPECT_NE(report.find("flow.scheduler"), std::string::npos);

  glue::clear_npss_runtime();
}

}  // namespace
}  // namespace npss
