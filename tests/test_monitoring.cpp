// Monitoring tests — §2.3: "monitor the simulation through selectively
// viewing graphical results or monitoring particular values from selected
// component codes". Monitor and strip-chart sinks attach to engine-module
// outputs in the F100 network and record a transient.
#include <gtest/gtest.h>

#include "flow/basic_modules.hpp"
#include "npss/network_driver.hpp"
#include "npss/runtime.hpp"

namespace npss {
namespace {

TEST(StripChart, RendersRampWithExtremes) {
  flow::Network net;
  auto& chart = static_cast<flow::StripChartModule&>(
      net.add("chart", std::make_unique<flow::StripChartModule>()));
  flow::register_basic_modules();
  net.add("src", "constant");
  net.connect("src", "out", "chart", "in");
  for (int i = 0; i <= 20; ++i) {
    net.module("src").widget("value").set_real(100.0 + 5.0 * i);
    net.evaluate();
  }
  EXPECT_EQ(chart.samples().size(), 21u);
  std::string rendered = chart.render();
  EXPECT_NE(rendered.find("200"), std::string::npos);  // max label
  EXPECT_NE(rendered.find("100"), std::string::npos);  // min label
  EXPECT_NE(rendered.find('#'), std::string::npos);
  chart.reset();
  EXPECT_NE(chart.render().find("no samples"), std::string::npos);
}

TEST(StripChart, FlatSignalDoesNotDivideByZero) {
  flow::Network net;
  auto& chart = static_cast<flow::StripChartModule&>(
      net.add("chart", std::make_unique<flow::StripChartModule>()));
  flow::register_basic_modules();
  net.add("src", "constant");
  net.connect("src", "out", "chart", "in");
  net.module("src").widget("value").set_real(42.0);
  net.evaluate();
  net.evaluate();
  EXPECT_NE(chart.render().find('#'), std::string::npos);
}

TEST(Monitoring, SinksAttachToEngineModuleOutputs) {
  sim::Cluster cluster;
  cluster.add_machine("ws", "sun-sparc10", "a");
  rpc::SchoonerSystem schooner(cluster, "ws");
  glue::configure_npss_runtime(cluster, schooner, "ws");

  flow::Network net;
  glue::F100NetworkNames names = glue::build_f100_network(net);

  // The user drags viewer modules in and wires them to the values of
  // interest: HPC surge margin and nozzle thrust.
  flow::register_basic_modules();
  net.add("sm-view", "monitor");
  net.add("thrust-chart", "strip-chart");
  net.connect(names.hpc, "surge-margin", "sm-view", "in");
  net.connect(names.nozzle, "thrust", "thrust-chart", "in");

  glue::NetworkEngineDriver driver(net);
  driver.balance(1.0);
  auto history = driver.run_transient(
      [](double t) { return t < 0.05 ? 1.0 : 1.2; }, 0.5, 0.05);

  auto& monitor = static_cast<flow::MonitorModule&>(net.module("sm-view"));
  auto& chart =
      static_cast<flow::StripChartModule&>(net.module("thrust-chart"));
  // The sinks saw every scheduler execution (solver iterations included).
  EXPECT_GT(monitor.history().size(), history.size());
  EXPECT_GT(chart.samples().size(), history.size());
  // The monitored surge margin stayed physical throughout.
  for (double sm : monitor.history()) {
    EXPECT_GE(sm, 0.0);
    EXPECT_LE(sm, 1.0);
  }
  glue::clear_npss_runtime();
}

}  // namespace
}  // namespace npss
