// Tests of the flow executive (the AVS stand-in): widget semantics, module
// lifecycle, network editing (type checks, cycles, removal), scheduling
// (full and incremental), and the saved-network text format.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "flow/basic_modules.hpp"
#include "flow/network.hpp"

namespace npss::flow {
namespace {

// --- Widgets ----------------------------------------------------------------------

TEST(Widgets, DialEnforcesBounds) {
  Widget dial("power", WidgetKind::kDial, uts::Value::real(0.5), {}, 0.0,
              1.0);
  dial.set_real(0.75);
  EXPECT_DOUBLE_EQ(dial.real(), 0.75);
  EXPECT_THROW(dial.set_real(1.5), util::WidgetError);
  EXPECT_THROW(dial.set_real(-0.1), util::WidgetError);
  EXPECT_THROW(dial.set_text("x"), util::WidgetError);
}

TEST(Widgets, RadioButtonsRestrictToChoices) {
  Widget radio("machine", WidgetKind::kRadioButtons,
               uts::Value::str("local"), {"local", "cray", "rs6000"});
  radio.select("cray");
  EXPECT_EQ(radio.text(), "cray");
  EXPECT_THROW(radio.select("vax"), util::WidgetError);
  EXPECT_THROW(radio.set_real(1.0), util::WidgetError);
}

TEST(Widgets, ChangeTrackingAndClear) {
  Widget t("path", WidgetKind::kTypeinString, uts::Value::str("/npss"));
  EXPECT_TRUE(t.changed());  // initial value counts
  t.clear_changed();
  EXPECT_FALSE(t.changed());
  t.set_text("/other");
  EXPECT_TRUE(t.changed());
}

TEST(Widgets, SetFromTextParsesPerKind) {
  Widget d("d", WidgetKind::kTypeinReal, uts::Value::real(0));
  d.set_from_text("3.25");
  EXPECT_DOUBLE_EQ(d.real(), 3.25);
  Widget i("i", WidgetKind::kTypeinInteger, uts::Value::integer(0));
  i.set_from_text("-7");
  EXPECT_EQ(i.integer(), -7);
  Widget g("g", WidgetKind::kToggle, uts::Value::integer(0));
  g.set_from_text("on");
  EXPECT_TRUE(g.on());
}

// --- Modules and networks --------------------------------------------------------------

class DoublerModule final : public Module {
 public:
  std::string type_name() const override { return "doubler"; }
  void spec(ModuleSpec& spec) override {
    spec.input("in", uts::Type::real_double());
    spec.output("out", uts::Type::real_double());
  }
  void compute() override {
    ++computes;
    out_real("out", has_in("in") ? 2.0 * in_real("in") : 0.0);
  }
  int computes = 0;
};

class StringerModule final : public Module {
 public:
  std::string type_name() const override { return "stringer"; }
  void spec(ModuleSpec& spec) override {
    spec.output("out", uts::Type::string());
  }
  void compute() override { out("out", uts::Value::str("s")); }
};

TEST(Network, EvaluatePropagatesInTopologicalOrder) {
  register_basic_modules();
  Network net;
  net.add("src", "constant");
  auto& d1 = static_cast<DoublerModule&>(
      net.add("d1", std::make_unique<DoublerModule>()));
  auto& d2 = static_cast<DoublerModule&>(
      net.add("d2", std::make_unique<DoublerModule>()));
  net.add("sink", "monitor");
  net.connect("src", "out", "d1", "in");
  net.connect("d1", "out", "d2", "in");
  net.connect("d2", "out", "sink", "in");

  net.module("src").widget("value").set_real(5.0);
  net.evaluate();
  auto& monitor = static_cast<MonitorModule&>(net.module("sink"));
  EXPECT_DOUBLE_EQ(monitor.last(), 20.0);
  EXPECT_EQ(d1.computes, 1);
  EXPECT_EQ(d2.computes, 1);
}

TEST(Network, RunChangedSkipsQuietModules) {
  register_basic_modules();
  Network net;
  net.add("a", "constant");
  net.add("b", "constant");
  auto& da = static_cast<DoublerModule&>(
      net.add("da", std::make_unique<DoublerModule>()));
  auto& db = static_cast<DoublerModule&>(
      net.add("db", std::make_unique<DoublerModule>()));
  net.connect("a", "out", "da", "in");
  net.connect("b", "out", "db", "in");
  net.evaluate();
  da.computes = db.computes = 0;

  // Touch only branch a: branch b must stay quiet.
  net.module("a").widget("value").set_real(1.0);
  int executed = net.run_changed();
  EXPECT_EQ(executed, 2);  // a + da
  EXPECT_EQ(da.computes, 1);
  EXPECT_EQ(db.computes, 0);

  // Nothing changed: nothing runs.
  EXPECT_EQ(net.run_changed(), 0);
}

TEST(Network, ConnectTypeChecks) {
  Network net;
  net.add("s", std::make_unique<StringerModule>());
  net.add("d", std::make_unique<DoublerModule>());
  EXPECT_THROW(net.connect("s", "out", "d", "in"), util::GraphError);
}

TEST(Network, CycleRejected) {
  Network net;
  net.add("d1", std::make_unique<DoublerModule>());
  net.add("d2", std::make_unique<DoublerModule>());
  net.connect("d1", "out", "d2", "in");
  EXPECT_THROW(net.connect("d2", "out", "d1", "in"), util::GraphError);
  EXPECT_THROW(net.connect("d1", "out", "d1", "in"), util::GraphError);
}

TEST(Network, SingleSourcePerInput) {
  Network net;
  net.add("a", std::make_unique<DoublerModule>());
  net.add("b", std::make_unique<DoublerModule>());
  net.add("c", std::make_unique<DoublerModule>());
  net.connect("a", "out", "c", "in");
  EXPECT_THROW(net.connect("b", "out", "c", "in"), util::GraphError);
  net.disconnect("c", "in");
  EXPECT_NO_THROW(net.connect("b", "out", "c", "in"));
}

// Regression: disconnect() must invalidate the cached wavefront levels —
// an edge removal changes longest-path depths, so an evaluate() after a
// disconnect has to run against the rebuilt schedule, not the stale one.
TEST(Network, DisconnectRebuildsWavefrontsBeforeNextEvaluate) {
  register_basic_modules();
  Network net;
  net.add("src", "constant");
  auto& d1 = static_cast<DoublerModule&>(
      net.add("d1", std::make_unique<DoublerModule>()));
  auto& d2 = static_cast<DoublerModule&>(
      net.add("d2", std::make_unique<DoublerModule>()));
  net.connect("src", "out", "d1", "in");
  net.connect("d1", "out", "d2", "in");

  const auto out_of = [&](const char* name) {
    const OutputPort& port = net.module(name).outputs().front();
    return port.value ? port.value->as_real() : 0.0;
  };

  net.module("src").widget("value").set_real(3.0);
  net.evaluate();  // builds the level cache: {src} {d1} {d2}
  ASSERT_EQ(net.wavefronts().size(), 3u);
  EXPECT_DOUBLE_EQ(out_of("d2"), 12.0);

  // Cut the chain and rewire d2 directly to the source: d2's depth drops
  // from 2 to 1, so the level structure must change shape.
  net.disconnect("d2", "in");
  net.connect("src", "out", "d2", "in");
  const auto& levels = net.wavefronts();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[1].size(), 2u);  // d1 and d2 now peers

  d1.computes = d2.computes = 0;
  net.evaluate();
  EXPECT_EQ(d1.computes, 1);
  EXPECT_EQ(d2.computes, 1);
  EXPECT_DOUBLE_EQ(out_of("d2"), 6.0);  // src*2, no longer src*4

  // Fully orphaning an input also reschedules; the input port keeps its
  // last delivered value, so the doubler recomputes from that.
  net.disconnect("d2", "in");
  EXPECT_EQ(net.wavefronts().size(), 2u);
  net.evaluate();
  EXPECT_DOUBLE_EQ(out_of("d2"), 6.0);
}

TEST(Network, BadNamesDiagnosed) {
  Network net;
  net.add("a", std::make_unique<DoublerModule>());
  EXPECT_THROW(net.connect("a", "nope", "a", "in"), util::GraphError);
  EXPECT_THROW(net.connect("zz", "out", "a", "in"), util::GraphError);
  EXPECT_THROW((void)net.module("zz"), util::GraphError);
  EXPECT_THROW(net.add("a", std::make_unique<DoublerModule>()),
               util::GraphError);
  EXPECT_THROW(net.remove("zz"), util::GraphError);
}

class DestroyProbe final : public Module {
 public:
  explicit DestroyProbe(int& counter) : counter_(&counter) {}
  std::string type_name() const override { return "destroy-probe"; }
  void spec(ModuleSpec&) override {}
  void compute() override {}
  void destroy() override { ++*counter_; }

 private:
  int* counter_;
};

TEST(Network, RemoveAndClearRunDestroy) {
  int destroyed = 0;
  Network net;
  net.add("p1", std::make_unique<DestroyProbe>(destroyed));
  net.add("p2", std::make_unique<DestroyProbe>(destroyed));
  net.remove("p1");
  EXPECT_EQ(destroyed, 1);
  net.clear();
  EXPECT_EQ(destroyed, 2);
  EXPECT_FALSE(net.has("p2"));
}

TEST(Network, RemovingUpstreamDropsDownstreamSources) {
  register_basic_modules();
  Network net;
  net.add("src", "constant");
  net.add("d", std::make_unique<DoublerModule>());
  net.connect("src", "out", "d", "in");
  net.remove("src");
  EXPECT_TRUE(net.connections().empty());
  // The downstream input is free to be rewired.
  net.add("src2", "constant");
  EXPECT_NO_THROW(net.connect("src2", "out", "d", "in"));
}

TEST(Network, SaveLoadRoundTrip) {
  register_basic_modules();
  Network net;
  net.add("src", "constant");
  net.add("sink", "monitor");
  net.connect("src", "out", "sink", "in");
  net.module("src").widget("value").set_real(6.5);
  std::string text = net.save_to_text();

  Network again;
  again.load_from_text(text);
  EXPECT_TRUE(again.has("src"));
  EXPECT_TRUE(again.has("sink"));
  EXPECT_DOUBLE_EQ(again.module("src").widget("value").real(), 6.5);
  again.evaluate();
  EXPECT_DOUBLE_EQ(
      static_cast<MonitorModule&>(again.module("sink")).last(), 6.5);
}

TEST(Network, LoadRejectsGarbageAndNonEmpty) {
  register_basic_modules();
  Network net;
  EXPECT_THROW(net.load_from_text("frobnicate x y"), util::GraphError);
  Network full;
  full.add("src", "constant");
  EXPECT_THROW(full.load_from_text("module a constant"), util::GraphError);
}

TEST(Network, FactoryKnowsRegisteredTypes) {
  register_basic_modules();
  ModuleFactory& f = ModuleFactory::instance();
  EXPECT_TRUE(f.knows("constant"));
  EXPECT_TRUE(f.knows("monitor"));
  EXPECT_FALSE(f.knows("frobnicator"));
  EXPECT_THROW((void)f.make("frobnicator"), util::GraphError);
}

TEST(Network, CsvTraceCollectsRows) {
  Network net;
  auto& trace = static_cast<CsvTraceModule&>(net.add(
      "trace", std::make_unique<CsvTraceModule>(
                   std::vector<std::string>{"thrust", "t4"})));
  register_basic_modules();
  net.add("c1", "constant");
  net.add("c2", "constant");
  net.connect("c1", "out", "trace", "thrust");
  net.connect("c2", "out", "trace", "t4");
  net.module("c1").widget("value").set_real(100.0);
  net.module("c2").widget("value").set_real(1600.0);
  net.evaluate();
  net.evaluate();
  EXPECT_EQ(trace.row_count(), 2u);
  EXPECT_NE(trace.csv().find("thrust,t4"), std::string::npos);
  EXPECT_NE(trace.csv().find("100,1600"), std::string::npos);
}

// --- Wavefront scheduler ---------------------------------------------------------

/// Doubler that records how many computes overlap in time, so tests can
/// assert whether the scheduler ran it concurrently with its peers.
class OverlapProbe final : public Module {
 public:
  OverlapProbe(std::atomic<int>& live, std::atomic<int>& peak, bool safe)
      : live_(&live), peak_(&peak), safe_(safe) {}
  std::string type_name() const override { return "overlap-probe"; }
  bool thread_safe() const override { return safe_; }
  void spec(ModuleSpec& spec) override {
    spec.input("in", uts::Type::real_double());
    spec.output("out", uts::Type::real_double());
  }
  void compute() override {
    int now = ++*live_;
    int prev = peak_->load();
    while (now > prev && !peak_->compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --*live_;
    out_real("out", has_in("in") ? in_real("in") + 1.0 : 1.0);
  }

 private:
  std::atomic<int>* live_;
  std::atomic<int>* peak_;
  bool safe_;
};

TEST(Wavefront, LevelsGroupIndependentModules) {
  register_basic_modules();
  Network net;
  net.add("src", "constant");
  net.add("d1", std::make_unique<DoublerModule>());
  net.add("d2", std::make_unique<DoublerModule>());
  net.add("join", std::make_unique<DoublerModule>());
  net.connect("src", "out", "d1", "in");
  net.connect("src", "out", "d2", "in");
  net.connect("d1", "out", "join", "in");

  const auto& levels = net.wavefronts();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], std::vector<std::string>{"src"});
  EXPECT_EQ(levels[1], (std::vector<std::string>{"d1", "d2"}));
  EXPECT_EQ(levels[2], std::vector<std::string>{"join"});

  // Editing invalidates the cached topology.
  net.add("late", std::make_unique<DoublerModule>());
  net.connect("d2", "out", "late", "in");
  EXPECT_EQ(net.wavefronts()[2],
            (std::vector<std::string>{"join", "late"}));
}

TEST(Wavefront, ParallelAndSequentialAgree) {
  register_basic_modules();
  auto build = [](Network& net) {
    net.add("src", "constant");
    for (int i = 0; i < 4; ++i) {
      std::string name = "d" + std::to_string(i);
      net.add(name, std::make_unique<DoublerModule>());
      net.connect("src", "out", name, "in");
      net.add(name + "s", std::make_unique<MonitorModule>());
      net.connect(name, "out", name + "s", "in");
    }
    net.module("src").widget("value").set_real(21.0);
  };
  Network par, seq;
  build(par);
  build(seq);
  seq.set_parallel_evaluation(false);
  EXPECT_EQ(par.evaluate(), seq.evaluate());
  for (int i = 0; i < 4; ++i) {
    std::string sink = "d" + std::to_string(i) + "s";
    EXPECT_DOUBLE_EQ(
        static_cast<MonitorModule&>(par.module(sink)).last(),
        static_cast<MonitorModule&>(seq.module(sink)).last());
  }
}

TEST(Wavefront, SameLevelModulesRunConcurrently) {
  std::atomic<int> live{0}, peak{0};
  Network net;
  // Pin the worker count: on a single-core host hardware_concurrency()
  // is 1 and the level would legitimately run sequentially.
  net.set_parallel_workers(4);
  for (int i = 0; i < 4; ++i) {
    net.add("p" + std::to_string(i),
            std::make_unique<OverlapProbe>(live, peak, /*safe=*/true));
  }
  net.evaluate();
  EXPECT_GE(peak.load(), 2) << "independent modules never overlapped";
}

TEST(Wavefront, ThreadSafeOptOutForcesSequential) {
  std::atomic<int> live{0}, peak{0};
  Network net;
  for (int i = 0; i < 4; ++i) {
    net.add("p" + std::to_string(i),
            std::make_unique<OverlapProbe>(live, peak, /*safe=*/false));
  }
  EXPECT_EQ(net.evaluate(), 4);
  EXPECT_EQ(peak.load(), 1) << "opted-out modules ran concurrently";
}

TEST(Wavefront, ParallelSwitchOffForcesSequential) {
  std::atomic<int> live{0}, peak{0};
  Network net;
  net.set_parallel_evaluation(false);
  EXPECT_FALSE(net.parallel_evaluation());
  for (int i = 0; i < 4; ++i) {
    net.add("p" + std::to_string(i),
            std::make_unique<OverlapProbe>(live, peak, /*safe=*/true));
  }
  EXPECT_EQ(net.evaluate(), 4);
  EXPECT_EQ(peak.load(), 1);
}

TEST(Wavefront, RunChangedStillSkipsQuietBranches) {
  register_basic_modules();
  Network net;
  net.add("a", "constant");
  net.add("b", "constant");
  auto& da = static_cast<DoublerModule&>(
      net.add("da", std::make_unique<DoublerModule>()));
  auto& db = static_cast<DoublerModule&>(
      net.add("db", std::make_unique<DoublerModule>()));
  net.connect("a", "out", "da", "in");
  net.connect("b", "out", "db", "in");
  net.evaluate();
  da.computes = db.computes = 0;
  net.module("a").widget("value").set_real(2.0);
  EXPECT_EQ(net.run_changed(), 2);
  EXPECT_EQ(da.computes, 1);
  EXPECT_EQ(db.computes, 0);
}

TEST(Module, PortAccessErrors) {
  Network net;
  auto& d = static_cast<DoublerModule&>(
      net.add("d", std::make_unique<DoublerModule>()));
  EXPECT_THROW((void)d.in("in"), util::GraphError);     // no value yet
  EXPECT_THROW((void)d.in("nope"), util::GraphError);   // no such port
  EXPECT_THROW(d.out("nope", uts::Value::real(1)), util::GraphError);
  EXPECT_THROW(d.out("out", uts::Value::str("x")),
               util::TypeMismatchError);  // type-checked output
  EXPECT_THROW((void)d.widget("w"), util::WidgetError);
}

}  // namespace
}  // namespace npss::flow
