// Protocol-level tests: wire-message codec, MessageIo reply matching and
// stashing, state-transfer migration, shared-procedure migration, and
// genuinely concurrent lines (the §4.2 "concurrency is possible, but
// controlled" property).
#include <gtest/gtest.h>

#include <thread>

#include "rpc/schooner.hpp"

namespace npss::rpc {
namespace {

using uts::Value;
using uts::ValueList;

// --- Message codec ---------------------------------------------------------------

TEST(MessageCodec, RoundTripsAllFields) {
  Message msg;
  msg.kind = MessageKind::kExport;
  msg.seq = 0xdeadbeefcafe;
  msg.line = 42;
  msg.a = "alpha";
  msg.b = "beta";
  msg.c = "gamma";
  msg.n = -7;
  msg.blob = {1, 2, 3, 254, 255};
  msg.table = {{"shaft", "export shaft prog()"}, {"k2", "v2"}};
  Message back = decode_message(encode_message(msg));
  EXPECT_EQ(back.kind, msg.kind);
  EXPECT_EQ(back.seq, msg.seq);
  EXPECT_EQ(back.line, msg.line);
  EXPECT_EQ(back.a, msg.a);
  EXPECT_EQ(back.b, msg.b);
  EXPECT_EQ(back.c, msg.c);
  EXPECT_EQ(back.n, msg.n);
  EXPECT_EQ(back.blob, msg.blob);
  EXPECT_EQ(back.table, msg.table);
}

TEST(MessageCodec, TruncatedFrameRejected) {
  Message msg;
  msg.kind = MessageKind::kPing;
  util::Bytes bytes = encode_message(msg);
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW((void)decode_message(bytes), util::EncodingError);
  bytes = encode_message(msg);
  bytes.push_back(0);
  EXPECT_THROW((void)decode_message(bytes), util::EncodingError);
}

TEST(MessageCodec, ErrorReplyEchoesSeqAndRaisesTyped) {
  Message request;
  request.kind = MessageKind::kLookup;
  request.seq = 99;
  Message err = Message::error_reply(request, util::ErrorCode::kLookupFailure,
                                     "nope");
  EXPECT_EQ(err.seq, 99u);
  EXPECT_TRUE(err.is_error());
  EXPECT_THROW(err.raise_if_error(), util::LookupError);
  Message ok;
  ok.kind = MessageKind::kPong;
  EXPECT_NO_THROW(ok.raise_if_error());
}

// --- Runtime fixtures ---------------------------------------------------------------

const char* kCounterSpec = R"(
  export bump prog("delta" val integer, "total" res integer)
)";
const char* kCounterImport = R"(
  import bump prog("delta" val integer, "total" res integer)
)";

/// A *stateful* counter image with the §4.2 state-transfer hooks.
sim::ProgramImage counter_image(std::shared_ptr<std::int64_t> state) {
  ProcedureImageOptions opt;
  opt.save_state = [state] {
    util::ByteWriter w;
    w.i64(*state);
    return std::move(w).take();
  };
  opt.restore_state = [state](std::span<const std::uint8_t> bytes) {
    util::ByteReader r(bytes);
    *state = r.i64();
  };
  return make_procedure_image(
      kCounterSpec, {{"bump", [state](ProcCall& call) {
                        *state += call.integer("delta");
                        call.set("total", Value::integer(*state));
                      }}},
      opt);
}

class RpcProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_.add_machine("host", "sun-sparc10", "lerc");
    cluster_.add_machine("m1", "sgi-4d480", "lerc");
    cluster_.add_machine("m2", "ibm-rs6000", "lerc");
    system_ = std::make_unique<SchoonerSystem>(cluster_, "host");
  }

  sim::Cluster cluster_;
  std::unique_ptr<SchoonerSystem> system_;
};

TEST_F(RpcProtocolTest, StateTransferMigrationPreservesCounter) {
  // Each machine's copy of the executable shares the process-local state
  // cell *only through the Manager's state transfer*.
  auto state1 = std::make_shared<std::int64_t>(0);
  auto state2 = std::make_shared<std::int64_t>(0);
  cluster_.install_image("m1", "/bin/counter", counter_image(state1));
  cluster_.install_image("m2", "/bin/counter", counter_image(state2));

  auto client = system_->make_client("host", "counter");
  client->contact_schx("m1", "/bin/counter");
  auto bump = client->import_proc("bump", kCounterImport);
  EXPECT_EQ(bump->call({Value::integer(5), Value::integer(0)})[1]
                .as_integer(),
            5);
  EXPECT_EQ(bump->call({Value::integer(2), Value::integer(0)})[1]
                .as_integer(),
            7);

  // Move *with* state transfer: the counter continues from 7 on m2.
  client->move_proc("bump", "m2", "/bin/counter", /*transfer_state=*/true);
  EXPECT_EQ(bump->call({Value::integer(1), Value::integer(0)})[1]
                .as_integer(),
            8);
  EXPECT_EQ(*state2, 8);
}

TEST_F(RpcProtocolTest, StatelessMigrationRestartsFresh) {
  auto state1 = std::make_shared<std::int64_t>(0);
  auto state2 = std::make_shared<std::int64_t>(0);
  cluster_.install_image("m1", "/bin/counter", counter_image(state1));
  cluster_.install_image("m2", "/bin/counter", counter_image(state2));

  auto client = system_->make_client("host", "counter");
  client->contact_schx("m1", "/bin/counter");
  auto bump = client->import_proc("bump", kCounterImport);
  bump->call({Value::integer(5), Value::integer(0)});

  client->move_proc("bump", "m2", "/bin/counter", /*transfer_state=*/false);
  EXPECT_EQ(bump->call({Value::integer(1), Value::integer(0)})[1]
                .as_integer(),
            1)
      << "without state transfer the procedure restarts from scratch";
}

TEST_F(RpcProtocolTest, SharedProcedureMoveUpdatesAllLines) {
  auto state = std::make_shared<std::int64_t>(0);
  cluster_.install_image("m1", "/bin/counter", counter_image(state));
  auto state_b = std::make_shared<std::int64_t>(100);
  cluster_.install_image("m2", "/bin/counter", counter_image(state_b));

  auto owner = system_->make_client("host", "owner");
  owner->contact_schx("m1", "/bin/counter", /*shared=*/true);

  auto user1 = system_->make_client("host", "user1");
  auto user2 = system_->make_client("host", "user2");
  auto b1 = user1->import_proc("bump", kCounterImport);
  auto b2 = user2->import_proc("bump", kCounterImport);
  b1->call({Value::integer(1), Value::integer(0)});
  b2->call({Value::integer(1), Value::integer(0)});
  EXPECT_EQ(*state, 2);

  // Owner moves the shared procedure; both users' caches recover.
  owner->move_proc("bump", "m2", "/bin/counter", /*transfer_state=*/true);
  EXPECT_EQ(b1->call({Value::integer(1), Value::integer(0)})[1]
                .as_integer(),
            3);
  EXPECT_EQ(b2->call({Value::integer(1), Value::integer(0)})[1]
                .as_integer(),
            4);
  EXPECT_EQ(b1->stale_retries(), 1);
  EXPECT_EQ(b2->stale_retries(), 1);
}

TEST_F(RpcProtocolTest, ConcurrentLinesRunIndependently) {
  // Several lines calling same-named procedures from distinct host
  // threads: each line is sequential, lines interleave freely, and no
  // cross-talk occurs (§4.2).
  const int kLines = 6;
  const int kCallsPerLine = 25;
  std::vector<std::shared_ptr<std::int64_t>> states;
  for (int i = 0; i < kLines; ++i) {
    auto state = std::make_shared<std::int64_t>(0);
    states.push_back(state);
    cluster_.install_image(i % 2 ? "m1" : "m2",
                           "/bin/counter" + std::to_string(i),
                           counter_image(state));
  }
  std::vector<std::thread> threads;
  std::vector<std::int64_t> totals(kLines, 0);
  for (int i = 0; i < kLines; ++i) {
    threads.emplace_back([&, i] {
      auto client =
          system_->make_client("host", "line" + std::to_string(i));
      client->contact_schx(i % 2 ? "m1" : "m2",
                           "/bin/counter" + std::to_string(i));
      auto bump = client->import_proc("bump", kCounterImport);
      for (int c = 0; c < kCallsPerLine; ++c) {
        totals[i] = bump->call({Value::integer(i + 1), Value::integer(0)})[1]
                        .as_integer();
      }
      client->quit();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kLines; ++i) {
    EXPECT_EQ(totals[i], static_cast<std::int64_t>(kCallsPerLine) * (i + 1));
    EXPECT_EQ(*states[i], totals[i]);
  }
  EXPECT_EQ(system_->stats().lines_created, static_cast<std::uint64_t>(kLines));
}

TEST_F(RpcProtocolTest, VarParametersTravelBothWays) {
  const char* spec = R"(
    export scale prog("x" var double, "k" val double)
  )";
  cluster_.install_image(
      "m1", "/bin/scale",
      make_procedure_image(spec, {{"scale", [](ProcCall& call) {
                                     call.set_real("x", call.real("x") *
                                                            call.real("k"));
                                   }}}));
  auto client = system_->make_client("host", "var-test");
  client->contact_schx("m1", "/bin/scale");
  auto scale = client->import_proc(
      "scale", "import scale prog(\"x\" var double, \"k\" val double)");
  ValueList out = scale->call({Value::real(3.0), Value::real(4.0)});
  EXPECT_DOUBLE_EQ(out[0].as_real(), 12.0);
}

TEST_F(RpcProtocolTest, ManagerAnswersPing) {
  auto client = system_->make_client("host", "pinger");
  Message pong = client->io().call(system_->manager_address(),
                                   Message{.kind = MessageKind::kPing});
  EXPECT_EQ(pong.kind, MessageKind::kPong);
}

TEST_F(RpcProtocolTest, RuntimeTypeCheckHappensAtBindTime) {
  cluster_.install_image(
      "m1", "/bin/one",
      make_procedure_image("export one prog(\"x\" val double)",
                           {{"one", [](ProcCall&) {}}}));
  auto client = system_->make_client("host", "bind-check");
  client->contact_schx("m1", "/bin/one");
  auto bad = client->import_proc("one",
                                 "import one prog(\"x\" val integer)");
  EXPECT_THROW(bad->call({Value::integer(1)}), util::TypeMismatchError);
  EXPECT_EQ(system_->stats().type_check_failures, 1u);
}

}  // namespace
}  // namespace npss::rpc
