// Deterministic leader-election primitives for the Manager replica group.
//
// Elections must be reproducible: the fault suite's contract (PR 3) is
// that the same seed produces the same recovery, and a timing race between
// two candidates would break it. Two mechanisms make the outcome a pure
// function of (seed, term, who is alive, log lengths) instead of host
// scheduling:
//
//  1. *Staggered candidacy.* Each replica's election timeout for term t is
//     base * (1 + 2 * position), where position orders the replicas by a
//     seeded per-term rank — so would-be candidates wake far enough apart
//     (>= 2 * base) that the first one finishes before the next wakes.
//  2. *Total candidate order.* Votes (and candidate yields) prefer the
//     longer log, tie-broken by the lower rank. Even if scheduling ever
//     produced simultaneous candidates, both orderings agree on one
//     winner, so the election result is deterministic regardless.
//
// Threading: pure functions of their arguments — no shared state, no
// locks; callable from any replica thread (lock_hierarchy.md).
#pragma once

#include <cstdint>
#include <string_view>

namespace npss::meta {

enum class Role : std::uint8_t { kFollower = 0, kCandidate, kLeader };

std::string_view role_name(Role role);

/// Seeded per-term rank of a replica; lower rank wins ties.
std::uint64_t candidate_rank(std::uint64_t seed, std::uint64_t term,
                             int replica_index);

/// Election timeout (ms of host time without a heartbeat) before
/// `replica_index` stands for election in `term`. Staggered by the
/// replica's rank position among `n_replicas` so candidacies are serialized.
int election_timeout_ms(std::uint64_t seed, std::uint64_t term,
                        int replica_index, int n_replicas, int base_ms);

/// The vote/yield ordering: true when candidate a (log length, rank)
/// should win over candidate b.
bool candidate_better(std::uint64_t last_index_a, std::uint64_t rank_a,
                      std::uint64_t last_index_b, std::uint64_t rank_b);

/// Term-aware vote/yield ordering for the quorum-commit protocol:
/// (last log term, last index) lexicographically, rank as tie-break.
bool candidate_better(std::uint64_t last_term_a, std::uint64_t last_index_a,
                      std::uint64_t rank_a, std::uint64_t last_term_b,
                      std::uint64_t last_index_b, std::uint64_t rank_b);

/// The election restriction: a voter grants only when the candidate's
/// log is at least as up to date as its own — (last term, last index)
/// compared lexicographically. This is what makes the commit rule sound:
/// a majority-committed entry lives on a majority, so any electable
/// candidate carries it.
bool log_up_to_date(std::uint64_t their_last_term,
                    std::uint64_t their_last_index,
                    std::uint64_t our_last_term,
                    std::uint64_t our_last_index);

}  // namespace npss::meta
