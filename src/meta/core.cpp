#include "meta/core.hpp"

#include <algorithm>

namespace npss::meta {

std::string_view msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kHeartbeat: return "heartbeat";
    case MsgKind::kAppend: return "append";
    case MsgKind::kAppendAck: return "append-ack";
    case MsgKind::kVoteReq: return "vote-req";
    case MsgKind::kVoteAck: return "vote-ack";
    case MsgKind::kFetch: return "fetch";
    case MsgKind::kFetchAck: return "fetch-ack";
  }
  return "?";
}

ReplicaCore::ReplicaCore(CoreConfig config) : config_(config) {
  match_.assign(static_cast<std::size_t>(config_.replicas), 0);
}

void ReplicaCore::start(Role role, std::uint64_t term, int leader_index) {
  role_ = role;
  term_ = term;
  leader_ = leader_index;
  if (role == Role::kLeader) {
    leader_ = config_.index;
    // Holds the "vote" for its bootstrap term, so it cannot also grant
    // one — the same one-ballot-per-term rule elections use.
    voted_term_ = term;
    std::fill(match_.begin(), match_.end(), 0);
  }
  bump_gen();
}

void ReplicaCore::start_recovered() {
  role_ = Role::kFollower;
  term_ = 0;
  leader_ = -1;
  never_vote_ = true;  // no persistent ballot: re-voting could elect two
                       // leaders in one term, so a reborn replica never votes
  bump_gen();
}

void ReplicaCore::send(int to, Msg m) {
  m.from = config_.index;
  outbound_.push_back(Outbound{to, std::move(m)});
}

void ReplicaCore::broadcast(const Msg& m) {
  for (int i = 0; i < config_.replicas; ++i) {
    if (i == config_.index) continue;
    send(i, m);
  }
}

Msg ReplicaCore::make_heartbeat() const {
  Msg hb;
  hb.kind = MsgKind::kHeartbeat;
  hb.term = term_;
  hb.last_index = changelog_.last_index();
  hb.last_term = changelog_.last_term();
  hb.commit = commit_;
  hb.commit_term = commit_ == 0 ? 0 : changelog_.term_at(commit_);
  return hb;
}

void ReplicaCore::broadcast_heartbeat() { broadcast(make_heartbeat()); }

void ReplicaCore::send_fetch(int to) {
  Msg req;
  req.kind = MsgKind::kFetch;
  req.term = term_;
  // Everything at or below our commit index provably matches the
  // leader's log, so that is the safe resume point; the legacy protocol
  // trusted its whole log and resumed past entries that might conflict.
  req.index =
      (config_.quorum_commit ? commit_ : changelog_.last_index()) + 1;
  send(to, std::move(req));
}

/// Leader side of catch-up, identical in both modes: serve the tail when
/// we still retain the requested index, else latest snapshot + the
/// records past it.
void ReplicaCore::serve_fetch(const Msg& m) {
  if (role_ != Role::kLeader) return;
  Msg ack;
  ack.kind = MsgKind::kFetchAck;
  ack.term = term_;
  ack.commit = commit_;
  std::uint64_t from = std::max<std::uint64_t>(m.index, 1);
  if (from > changelog_.last_index()) {
    // Requester already has everything; empty reply re-anchors it.
  } else if (changelog_.first_index() != 0 &&
             from >= changelog_.first_index()) {
    ack.batch = changelog_.tail(from);
  } else {
    const Snapshot& snap = snapshots_.latest();
    ack.snap_index = snap.index;
    ack.snap_term = changelog_.term_at(snap.index);
    ack.snap_digest = snap.digest;
    ack.snapshot = snap.image;
    ack.batch = changelog_.tail(snap.index + 1);
  }
  send(m.from, std::move(ack));
}

void ReplicaCore::apply_to(std::uint64_t k) {
  for (std::uint64_t i = state_.last_applied() + 1; i <= k; ++i) {
    state_.apply(changelog_.at(i), i);
  }
}

/// Advance the commit index to k, apply the newly durable entries, and
/// surface one kCommitted per index (the driver acks clients off these).
void ReplicaCore::commit_to(std::uint64_t k) {
  for (std::uint64_t i = commit_ + 1; i <= k; ++i) {
    events_.push_back(
        CoreEvent{CoreEventKind::kCommitted, i, changelog_.term_at(i)});
  }
  commit_ = k;
  apply_to(k);
  maybe_compact();
}

void ReplicaCore::maybe_compact() {
  if (config_.snapshot_interval == 0) return;
  if (state_.last_applied() <
      snapshots_.latest().index + config_.snapshot_interval) {
    return;
  }
  if (snapshots_.capture(state_)) {
    changelog_.truncate_prefix(snapshots_.latest().index);
    ++counters_.snapshot_installs;
  }
}

std::uint64_t ReplicaCore::propose(ChangeRecord rec) {
  if (role_ != Role::kLeader) return 0;
  rec.term = term_;
  const std::uint64_t prev_term = changelog_.last_term();
  const std::uint64_t index = changelog_.append(rec);
  ++counters_.log_appends;
  Msg append;
  append.kind = MsgKind::kAppend;
  append.term = term_;
  append.index = index;
  append.prev_term = prev_term;
  append.commit = commit_;
  append.record = std::move(rec);
  broadcast(append);
  if (config_.quorum_commit) {
    match_[static_cast<std::size_t>(config_.index)] = index;
    advance_commit_leader();
  } else {
    // The PR 6 hole, verbatim: commit == append. The kCommitted event —
    // and with it the client's kLineAck — fires before any follower has
    // the entry. meta_check's MC003 exists to catch exactly this.
    apply_to(index);
    commit_ = index;
    events_.push_back(CoreEvent{CoreEventKind::kCommitted, index, term_});
    maybe_compact();
  }
  return index;
}

void ReplicaCore::fire_timer() {
  switch (role_) {
    case Role::kLeader:
      broadcast_heartbeat();
      return;
    case Role::kCandidate:
      // The round timed out without a majority; revert and let the
      // staggered timeout for the next term pick the next candidate.
      role_ = Role::kFollower;
      votes_ = 0;
      bump_gen();
      return;
    case Role::kFollower:
      if (never_vote_) {
        if (leader_ >= 0) send_fetch(leader_);
        bump_gen();
        return;
      }
      start_election();
      return;
  }
}

void ReplicaCore::start_election() {
  ++term_;
  role_ = Role::kCandidate;
  leader_ = -1;
  voted_term_ = term_;  // vote for ourselves
  votes_ = 1;
  bump_gen();
  if (votes_ >= majority()) {
    become_leader();
    return;
  }
  Msg req;
  req.kind = MsgKind::kVoteReq;
  req.term = term_;
  req.last_index = changelog_.last_index();
  req.last_term = changelog_.last_term();
  broadcast(req);
}

void ReplicaCore::become_leader() {
  role_ = Role::kLeader;
  leader_ = config_.index;
  votes_ = 0;
  ++counters_.leader_elections;
  events_.push_back(CoreEvent{CoreEventKind::kBecameLeader, 0, term_});
  bump_gen();
  std::fill(match_.begin(), match_.end(), 0);
  if (config_.quorum_commit) {
    // The no-op barrier: the commit rule only counts current-term
    // entries toward the majority, so the new term needs an entry of its
    // own before the inherited tail can commit underneath it.
    ChangeRecord noop;
    noop.kind = RecordKind::kNoop;
    propose(std::move(noop));
  }
  broadcast_heartbeat();
}

void ReplicaCore::handle(const Msg& m) {
  if (config_.quorum_commit) {
    handle_quorum(m);
  } else {
    handle_legacy(m);
  }
}

// ---------------------------------------------------------------------------
// Quorum-commit protocol (the fix meta_check forced).
// ---------------------------------------------------------------------------

void ReplicaCore::step_down_if_higher(const Msg& m) {
  if (m.term <= term_) return;
  const bool was_leader = role_ == Role::kLeader;
  term_ = m.term;
  role_ = Role::kFollower;
  votes_ = 0;
  leader_ = -1;
  if (was_leader) {
    // Keep the log: any uncommitted suffix is truncated entry-by-entry
    // when the new leader's appends conflict — committed entries survive,
    // which is the whole point versus the legacy full reset.
    events_.push_back(CoreEvent{CoreEventKind::kSteppedDown, 0, term_});
  }
  bump_gen();
}

void ReplicaCore::handle_quorum(const Msg& m) {
  step_down_if_higher(m);
  switch (m.kind) {
    case MsgKind::kHeartbeat: on_heartbeat_quorum(m); return;
    case MsgKind::kAppend: on_append_quorum(m); return;
    case MsgKind::kAppendAck: on_append_ack(m); return;
    case MsgKind::kVoteReq: on_vote_req_quorum(m); return;
    case MsgKind::kVoteAck:
      if (role_ == Role::kCandidate && m.term == term_ && m.granted) {
        if (++votes_ >= majority()) become_leader();
      }
      return;
    case MsgKind::kFetch: serve_fetch(m); return;
    case MsgKind::kFetchAck: on_fetch_ack_quorum(m); return;
  }
}

void ReplicaCore::on_heartbeat_quorum(const Msg& m) {
  if (m.term < term_) return;  // stale leader
  if (role_ != Role::kFollower) {
    // Same-term heartbeat while candidate: the election already resolved.
    // (A same-term second *leader* cannot exist — election safety.)
    if (role_ == Role::kLeader) return;
    role_ = Role::kFollower;
    votes_ = 0;
  }
  leader_ = m.from;
  bump_gen();
  if (m.last_index > changelog_.last_index()) {
    send_fetch(m.from);
  }
  // Commit piggyback. Only sound when our entry at the leader's commit
  // index *is* the leader's entry — same index and same term implies the
  // whole prefix matches (the log-matching property the append prev-term
  // check maintains). Lagging or divergent: fetch first, commit later.
  if (m.commit > commit_) {
    if (m.commit <= changelog_.last_index() &&
        changelog_.term_at(m.commit) == m.commit_term) {
      commit_to(m.commit);
    } else {
      send_fetch(m.from);
    }
  }
}

void ReplicaCore::on_append_quorum(const Msg& m) {
  if (m.term < term_) return;  // stale leader's entry; let it step down
  if (role_ == Role::kLeader) return;  // impossible same-term; defensive
  if (role_ == Role::kCandidate) {
    role_ = Role::kFollower;
    votes_ = 0;
  }
  leader_ = m.from;
  bump_gen();
  const std::uint64_t index = m.index;
  if (index <= commit_) {
    // Already committed here, which implies it matches the leader's
    // entry (Leader Completeness) — pure duplicate, just re-ack.
    Msg ack;
    ack.kind = MsgKind::kAppendAck;
    ack.term = term_;
    ack.index = index;
    send(m.from, std::move(ack));
    return;
  }
  const std::uint64_t prev = index - 1;
  if (prev > changelog_.last_index()) {
    send_fetch(m.from);  // gap: we are missing the prefix
    return;
  }
  if (prev > commit_ && changelog_.term_at(prev) != m.prev_term) {
    // Our entry before the append point is not the leader's: a deposed
    // leader wrote it. Drop the divergent suffix and refetch.
    changelog_.truncate_suffix(prev);
    send_fetch(m.from);
    return;
  }
  const std::uint64_t before = changelog_.last_index();
  const bool fresh =
      index > before || changelog_.term_at(index) != m.record.term;
  if (!changelog_.append_at(index, m.record)) {
    send_fetch(m.from);
    return;
  }
  if (fresh) ++counters_.log_appends;
  Msg ack;
  ack.kind = MsgKind::kAppendAck;
  ack.term = term_;
  ack.index = index;  // matched through here; beyond may still diverge
  send(m.from, std::move(ack));
  // Everything up to the appended entry now provably matches the leader,
  // so the piggybacked commit is safe up to that point.
  const std::uint64_t c = std::min(m.commit, index);
  if (c > commit_) commit_to(c);
}

void ReplicaCore::on_append_ack(const Msg& m) {
  if (role_ != Role::kLeader || m.term != term_) return;
  if (m.from < 0 || static_cast<std::size_t>(m.from) >= match_.size()) return;
  auto& slot = match_[static_cast<std::size_t>(m.from)];
  slot = std::max(slot, m.index);
  advance_commit_leader();
}

void ReplicaCore::advance_commit_leader() {
  // Largest k with a majority holding entries through k *and* k written
  // in the current term (committing a prior-term entry by counting alone
  // is the classic Raft §5.4.2 unsoundness; the noop barrier makes the
  // tail commit instead).
  for (std::uint64_t k = changelog_.last_index(); k > commit_; --k) {
    if (changelog_.term_at(k) != term_) break;
    std::size_t holders = 0;
    for (std::uint64_t matched : match_) {
      if (matched >= k) ++holders;
    }
    if (holders >= majority()) {
      commit_to(k);
      return;
    }
  }
}

void ReplicaCore::on_vote_req_quorum(const Msg& m) {
  // step_down_if_higher already adopted a higher term (without granting).
  bool grant = false;
  if (!never_vote_ && m.term == term_ && m.term > voted_term_ &&
      log_up_to_date(m.last_term, m.last_index, changelog_.last_term(),
                     changelog_.last_index())) {
    grant = true;
    voted_term_ = m.term;
    leader_ = -1;  // the old leader is presumed dead
    bump_gen();
  }
  Msg ack;
  ack.kind = MsgKind::kVoteAck;
  ack.term = m.term;
  ack.granted = grant;
  send(m.from, std::move(ack));
}

void ReplicaCore::on_fetch_ack_quorum(const Msg& m) {
  if (m.term < term_ || role_ == Role::kLeader) return;
  leader_ = m.from;
  bump_gen();
  if (!m.snapshot.empty() && m.snap_index > state_.last_applied()) {
    util::Status installed =
        snapshots_.install(m.snap_index, m.snapshot, m.snap_digest);
    if (!installed.is_ok()) {
      // Torn or corrupted image: refuse it and retry catch-up later
      // rather than deserializing garbage into the state machine.
      return;
    }
    ++counters_.snapshot_installs;
    state_ = ReplicatedState::deserialize(m.snapshot);
    changelog_.reset(m.snap_index, m.snap_term);
    if (m.snap_index > commit_) commit_ = m.snap_index;
  }
  bool complete = true;
  for (const auto& [index, rec] : m.batch) {
    const std::uint64_t before = changelog_.last_index();
    if (!changelog_.append_at(index, rec)) {
      complete = false;  // gap: refetch later
      break;
    }
    if (changelog_.last_index() > before) ++counters_.log_appends;
  }
  if (!complete || (m.snapshot.empty() && m.batch.empty())) {
    return;  // gap or empty reply: no new matched prefix, retry later
  }
  // A fetch reply describes a *prefix* of the leader's log as of when it
  // was served — never the leader's present tail. A delayed or
  // duplicated reply can arrive after we appended (and the leader
  // quorum-counted) newer current-term entries past its end, so nothing
  // here may truncate beyond the reply's tail: a genuinely divergent
  // suffix is removed by the append path's prev-term conflict check and
  // append_at's term comparison instead.
  const std::uint64_t leader_last =
      std::max(m.snap_index,
               m.batch.empty() ? std::uint64_t{0} : m.batch.back().first);
  // Ack only the prefix this reply verified: its tail, or our commit
  // index if that is further (committed entries are shared with any
  // current-term leader by Leader Completeness). Acking the raw
  // last_index would let the leader count us for entries past the
  // reply that we may not actually share.
  const std::uint64_t verified =
      std::min(changelog_.last_index(), std::max(commit_, leader_last));
  Msg ack;
  ack.kind = MsgKind::kAppendAck;
  ack.term = term_;
  ack.index = verified;
  send(m.from, std::move(ack));
  const std::uint64_t c = std::min(m.commit, verified);
  if (c > commit_) commit_to(c);
}

// ---------------------------------------------------------------------------
// Legacy protocol (PR 6, fire-and-forget) — the checker's negative corpus.
// Faithful port of the old ReplicaDriver logic, including its bugs.
// ---------------------------------------------------------------------------

void ReplicaCore::legacy_depose(const Msg& m) {
  term_ = m.term;
  role_ = Role::kFollower;
  votes_ = 0;
  leader_ = m.kind == MsgKind::kHeartbeat ? m.from : -1;
  // The legacy data-loss amplifier: the deposed leader throws away its
  // entire log — acked entries included — and refetches from scratch.
  changelog_.reset(0);
  state_ = ReplicatedState{};
  snapshots_ = SnapshotStore{};
  commit_ = 0;
  events_.push_back(CoreEvent{CoreEventKind::kSteppedDown, 0, term_});
  bump_gen();
  if (leader_ >= 0) send_fetch(leader_);
}

void ReplicaCore::handle_legacy(const Msg& m) {
  switch (m.kind) {
    case MsgKind::kHeartbeat:
      if (role_ == Role::kLeader) {
        if (m.term > term_) legacy_depose(m);
        return;
      }
      if (m.term >= term_) {
        term_ = m.term;
        if (role_ == Role::kCandidate) role_ = Role::kFollower;
        leader_ = m.from;
        bump_gen();
        if (m.last_index > changelog_.last_index()) send_fetch(m.from);
      }
      return;
    case MsgKind::kAppend: {
      if (role_ == Role::kLeader) return;  // stale traffic
      if (m.term < term_) return;
      term_ = m.term;
      if (role_ == Role::kCandidate) role_ = Role::kFollower;
      leader_ = m.from;
      bump_gen();
      // Legacy append: duplicate indices are trusted blindly (no term
      // comparison), a gap triggers a fetch, commit == applied.
      if (m.index <= changelog_.last_index()) return;
      if (m.index != changelog_.last_index() + 1) {
        send_fetch(m.from);
        return;
      }
      changelog_.append_at(m.index, m.record);
      if (state_.apply(changelog_.at(m.index), m.index)) {
        ++counters_.log_appends;
      }
      commit_ = changelog_.last_index();
      maybe_compact();
      return;
    }
    case MsgKind::kVoteReq: {
      if (role_ == Role::kLeader) {
        if (m.term > term_) legacy_depose(m);
        return;
      }
      if (role_ == Role::kCandidate) {
        const std::uint64_t my_rank =
            candidate_rank(config_.seed, term_, config_.index);
        const std::uint64_t their_rank =
            candidate_rank(config_.seed, m.term, m.from);
        if (m.term > term_ ||
            (m.term == term_ &&
             candidate_better(m.last_index, their_rank,
                              changelog_.last_index(), my_rank))) {
          term_ = m.term;
          role_ = Role::kFollower;
          voted_term_ = m.term;
          votes_ = 0;
          bump_gen();
          Msg ack;
          ack.kind = MsgKind::kVoteAck;
          ack.term = m.term;
          ack.granted = !never_vote_;
          send(m.from, std::move(ack));
          return;
        }
        Msg ack;
        ack.kind = MsgKind::kVoteAck;
        ack.term = m.term;
        ack.granted = false;
        send(m.from, std::move(ack));
        return;
      }
      // Follower: first candidate per term whose log is at least as
      // *long* as ours — the index-only rule that ignores entry terms.
      bool grant = false;
      if (m.term > term_) term_ = m.term;
      if (!never_vote_ && m.term >= term_ && m.term > voted_term_ &&
          m.last_index >= changelog_.last_index()) {
        voted_term_ = m.term;
        grant = true;
        leader_ = -1;
        bump_gen();
      }
      Msg ack;
      ack.kind = MsgKind::kVoteAck;
      ack.term = m.term;
      ack.granted = grant;
      send(m.from, std::move(ack));
      return;
    }
    case MsgKind::kVoteAck:
      if (role_ == Role::kCandidate && m.term == term_ && m.granted) {
        if (++votes_ >= majority()) become_leader();
      }
      return;
    case MsgKind::kFetch:
      serve_fetch(m);
      return;
    case MsgKind::kFetchAck: {
      if (role_ == Role::kLeader) return;
      if (!m.snapshot.empty() && m.snap_index > state_.last_applied()) {
        util::Status installed =
            snapshots_.install(m.snap_index, m.snapshot, m.snap_digest);
        if (!installed.is_ok()) return;
        ++counters_.snapshot_installs;
        state_ = ReplicatedState::deserialize(m.snapshot);
        changelog_.reset(state_.last_applied(), m.snap_term);
      }
      for (const auto& [index, rec] : m.batch) {
        if (index != changelog_.last_index() + 1) {
          if (index <= changelog_.last_index()) continue;
          break;
        }
        changelog_.append_at(index, rec);
        if (state_.apply(changelog_.at(index), index)) {
          ++counters_.log_appends;
        }
      }
      commit_ = changelog_.last_index();
      return;
    }
    case MsgKind::kAppendAck:
      return;  // the legacy protocol never acks
  }
}

// ---------------------------------------------------------------------------

ReplicatedState ReplicaCore::projected_state() const {
  ReplicatedState projected = state_;
  for (std::uint64_t i = projected.last_applied() + 1;
       i <= changelog_.last_index(); ++i) {
    projected.apply(changelog_.at(i), i);
  }
  return projected;
}

int ReplicaCore::timer_ms() const {
  switch (role_) {
    case Role::kLeader:
      return config_.heartbeat_ms;
    case Role::kCandidate:
      return config_.election_base_ms;
    case Role::kFollower:
      return election_timeout_ms(config_.seed, term_ + 1, config_.index,
                                 config_.replicas, config_.election_base_ms);
  }
  return config_.election_base_ms;
}

util::Bytes ReplicaCore::fingerprint() const {
  util::ByteWriter out;
  out.u8(static_cast<std::uint8_t>(role_));
  out.u8(never_vote_ ? 1 : 0);
  out.u64(term_);
  out.u64(voted_term_);
  out.i64(leader_);
  out.u64(static_cast<std::uint64_t>(votes_));
  out.u64(commit_);
  for (std::uint64_t matched : match_) out.u64(matched);
  out.u64(snapshots_.latest().index);
  out.blob(snapshots_.latest().image);
  out.u64(changelog_.last_index());
  for (const auto& [index, rec] : changelog_.tail(changelog_.first_index())) {
    out.u64(index);
    out.blob(encode_record(rec));
  }
  out.blob(state_.serialize());
  return std::move(out).take();
}

}  // namespace npss::meta
