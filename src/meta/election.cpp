#include "meta/election.hpp"

#include <string_view>

namespace npss::meta {

namespace {

// SplitMix64, the same generator family as sim::FaultInjector and the
// call-path backoff jitter: good dispersion, and deterministic.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string_view role_name(Role role) {
  switch (role) {
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
    case Role::kLeader: return "leader";
  }
  return "?";
}

std::uint64_t candidate_rank(std::uint64_t seed, std::uint64_t term,
                             int replica_index) {
  return mix64(mix64(seed ^ 0x6d657461ULL) ^ mix64(term) ^
               static_cast<std::uint64_t>(replica_index));
}

int election_timeout_ms(std::uint64_t seed, std::uint64_t term,
                        int replica_index, int n_replicas, int base_ms) {
  // Position of this replica in the term's rank order (0 = first to wake).
  const std::uint64_t mine = candidate_rank(seed, term, replica_index);
  int position = 0;
  for (int i = 0; i < n_replicas; ++i) {
    if (i == replica_index) continue;
    const std::uint64_t other = candidate_rank(seed, term, i);
    if (other < mine || (other == mine && i < replica_index)) ++position;
  }
  return base_ms * (1 + 2 * position);
}

bool candidate_better(std::uint64_t last_index_a, std::uint64_t rank_a,
                      std::uint64_t last_index_b, std::uint64_t rank_b) {
  if (last_index_a != last_index_b) return last_index_a > last_index_b;
  return rank_a < rank_b;
}

bool candidate_better(std::uint64_t last_term_a, std::uint64_t last_index_a,
                      std::uint64_t rank_a, std::uint64_t last_term_b,
                      std::uint64_t last_index_b, std::uint64_t rank_b) {
  if (last_term_a != last_term_b) return last_term_a > last_term_b;
  if (last_index_a != last_index_b) return last_index_a > last_index_b;
  return rank_a < rank_b;
}

bool log_up_to_date(std::uint64_t their_last_term,
                    std::uint64_t their_last_index,
                    std::uint64_t our_last_term,
                    std::uint64_t our_last_index) {
  if (their_last_term != our_last_term) {
    return their_last_term > our_last_term;
  }
  return their_last_index >= our_last_index;
}

}  // namespace npss::meta
