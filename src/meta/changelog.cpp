#include "meta/changelog.hpp"

#include <string>

namespace npss::meta {

std::uint64_t Changelog::append(ChangeRecord record) {
  records_.push_back(std::move(record));
  return last_index();
}

bool Changelog::append_at(std::uint64_t index, ChangeRecord record) {
  if (index <= base_) return true;  // compacted away: snapshot covers it
  if (index <= last_index()) {
    if (at(index).term == record.term) return true;  // duplicate delivery
    // Conflict: a deposed leader wrote this suffix. Truncate and replace.
    truncate_suffix(index);
  }
  if (index != last_index() + 1) return false;  // gap: caller must fetch
  records_.push_back(std::move(record));
  return true;
}

const ChangeRecord& Changelog::at(std::uint64_t index) const {
  if (index <= base_ || index > last_index()) {
    throw util::ProtocolError("changelog index " + std::to_string(index) +
                              " not retained (have " +
                              std::to_string(first_index()) + ".." +
                              std::to_string(last_index()) + ")");
  }
  return records_[index - base_ - 1];
}

std::uint64_t Changelog::term_at(std::uint64_t index) const {
  if (index == 0) return 0;
  if (index == base_) return base_term_;
  return at(index).term;
}

void Changelog::truncate_suffix(std::uint64_t from) {
  if (from > last_index()) return;
  if (from <= base_) {
    throw util::ProtocolError("truncate_suffix(" + std::to_string(from) +
                              ") would cut into the compacted prefix (base " +
                              std::to_string(base_) + ")");
  }
  records_.resize(static_cast<std::size_t>(from - base_ - 1));
}

std::vector<std::pair<std::uint64_t, ChangeRecord>> Changelog::tail(
    std::uint64_t from) const {
  std::vector<std::pair<std::uint64_t, ChangeRecord>> out;
  for (std::uint64_t i = std::max(from, base_ + 1); i <= last_index(); ++i) {
    out.emplace_back(i, records_[i - base_ - 1]);
  }
  return out;
}

void Changelog::truncate_prefix(std::uint64_t upto) {
  while (!records_.empty() && base_ < upto) {
    base_term_ = records_.front().term;
    records_.pop_front();
    ++base_;
  }
  if (records_.empty() && base_ < upto) base_ = upto;
}

void Changelog::reset(std::uint64_t base_index, std::uint64_t base_term) {
  records_.clear();
  base_ = base_index;
  base_term_ = base_term;
}

}  // namespace npss::meta
