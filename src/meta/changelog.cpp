#include "meta/changelog.hpp"

#include <string>

namespace npss::meta {

std::uint64_t Changelog::append(ChangeRecord record) {
  records_.push_back(std::move(record));
  return last_index();
}

bool Changelog::append_at(std::uint64_t index, ChangeRecord record) {
  if (index <= last_index()) return true;  // already held (duplicate)
  if (index != last_index() + 1) return false;  // gap: caller must fetch
  records_.push_back(std::move(record));
  return true;
}

const ChangeRecord& Changelog::at(std::uint64_t index) const {
  if (index <= base_ || index > last_index()) {
    throw util::ProtocolError("changelog index " + std::to_string(index) +
                              " not retained (have " +
                              std::to_string(first_index()) + ".." +
                              std::to_string(last_index()) + ")");
  }
  return records_[index - base_ - 1];
}

std::vector<std::pair<std::uint64_t, ChangeRecord>> Changelog::tail(
    std::uint64_t from) const {
  std::vector<std::pair<std::uint64_t, ChangeRecord>> out;
  for (std::uint64_t i = std::max(from, base_ + 1); i <= last_index(); ++i) {
    out.emplace_back(i, records_[i - base_ - 1]);
  }
  return out;
}

void Changelog::truncate_prefix(std::uint64_t upto) {
  while (!records_.empty() && base_ < upto) {
    records_.pop_front();
    ++base_;
  }
  if (records_.empty() && base_ < upto) base_ = upto;
}

void Changelog::reset(std::uint64_t base_index) {
  records_.clear();
  base_ = base_index;
}

}  // namespace npss::meta
