// The replicated half of the Manager's state.
//
// ReplicatedState is the pure, deterministic state machine the changelog
// drives: lines, the export table (per-process export groups keyed by
// process address, spec hashes included), and the line-id counter. It is
// what a follower mirrors, what a snapshot serializes, and what a freshly
// elected leader rebuilds its full Manager bookkeeping from.
//
// apply() is *idempotent by index*: every record carries its changelog
// index and a record at or below last_applied() is a no-op, so replaying
// an overlapping snapshot + log tail (or the same log twice) converges to
// the same table. Serialization is canonical — all containers are ordered
// — so two replicas with equal state produce byte-identical images and
// equal digest() values, which is how the fault suite proves the export
// table survived a failover intact.
//
// Threading: replica-thread confined (lock_hierarchy.md). Each replica
// owns one ReplicatedState, mutated only from its own manager_main
// thread; replication happens by shipping records/snapshots, not by
// sharing this object, so it is deliberately lock-free and carries no
// thread-safety annotations.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "meta/record.hpp"
#include "util/bytes.hpp"

namespace npss::meta {

/// Every procedure one process registered in one kExport handshake.
struct ExportGroup {
  std::int64_t line = -1;  ///< -1 (kNoLine) for shared procedures
  bool shared = false;
  std::string machine;
  std::string path;
  std::string spec_hash;  ///< the PR 5 spec sha256 the exporter stamped
  std::vector<std::pair<std::string, std::string>> procs;

  bool operator==(const ExportGroup&) const = default;
};

struct LineInfo {
  std::string description;
  /// Outstanding-call quota the leader granted at admission (0 =
  /// unlimited); replicated so a new leader re-states the same policy.
  std::int64_t quota = 0;

  bool operator==(const LineInfo&) const = default;
};

class ReplicatedState {
 public:
  /// Apply `record` as changelog entry `index`. Returns false (and changes
  /// nothing) when index <= last_applied() — the replay-idempotence rule.
  bool apply(const ChangeRecord& record, std::uint64_t index);

  std::uint64_t last_applied() const { return last_applied_; }
  std::int64_t next_line() const { return next_line_; }

  const std::map<std::int64_t, LineInfo>& lines() const { return lines_; }
  /// Export table: process address -> its export group.
  const std::map<std::string, ExportGroup>& exports() const {
    return exports_;
  }

  /// Canonical snapshot image (versioned; see kStateVersion).
  util::Bytes serialize() const;
  static ReplicatedState deserialize(std::span<const std::uint8_t> bytes);

  /// sha256 of the canonical image — the export-table fingerprint the
  /// failover transcript compares across a leader change.
  std::string digest() const;

  bool operator==(const ReplicatedState&) const = default;

 private:
  std::uint64_t last_applied_ = 0;
  std::int64_t next_line_ = 1;
  std::map<std::int64_t, LineInfo> lines_;
  std::map<std::string, ExportGroup> exports_;
};

/// v2: + LineInfo::quota (admission-control grant).
constexpr std::uint8_t kStateVersion = 2;

}  // namespace npss::meta
