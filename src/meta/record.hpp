// Changelog records — the unit of Manager state replication.
//
// Every transition the Manager applies to its durable state (line
// create/quit, an export registration, a process retirement from a move or
// shutdown) is captured as one ChangeRecord and appended to the replica
// group's changelog. Records are *versioned* and round-trippable: a
// leading version byte lets a newer replica decode logs written by an
// older one, and the encoder is deterministic so two replicas holding the
// same log hold the same bytes. The PR 5 spec SHA-256 travels with every
// export record, making the hashes the replicated statement of what each
// exporter can serve (the move-compat gate keeps holding after failover).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.hpp"

namespace npss::meta {

enum class RecordKind : std::uint8_t {
  kLineCreate = 1,  ///< a client registered a new line
  kLineQuit,        ///< a line quit; its bindings are gone
  kExport,          ///< a process registered its export table
  kRetire,          ///< a process's bindings were removed (move/shutdown)
  kNoop,            ///< leader barrier entry: advances the log, no state
};

std::string_view record_kind_name(RecordKind kind);

/// One Manager state transition. Field usage per kind:
///   kLineCreate  line, note=description, quota=outstanding-call quota
///   kLineQuit    line
///   kExport      line, shared, address, machine, path, spec_hash,
///                procs=(name, export signature text)
///   kRetire      address, note=reason (e.g. "moved to <machine>")
///   kNoop        (no fields) — appended by a freshly elected leader so
///                the new term has an entry to commit, which in turn
///                commits every prior-term entry beneath it
struct ChangeRecord {
  RecordKind kind = RecordKind::kLineCreate;
  std::int64_t line = -1;
  bool shared = false;
  std::string address;
  std::string machine;
  std::string path;
  std::string spec_hash;  ///< exporter's spec sha256 (kExport only)
  std::string note;
  std::vector<std::pair<std::string, std::string>> procs;
  /// Per-line outstanding-call quota granted at admission (kLineCreate
  /// only; 0 = unlimited). Version-2 field: decoding a v1 record leaves 0.
  std::int64_t quota = 0;
  /// Election term the entry was appended under. The commit rule and the
  /// conflict-truncation rule both compare entry terms, so the term is
  /// part of the replicated record, not driver bookkeeping. Version-3
  /// field: decoding a v1/v2 record leaves 0.
  std::uint64_t term = 0;

  bool operator==(const ChangeRecord&) const = default;
};

/// Current serialization version. Decoders accept any version <= this;
/// new fields must only ever be appended behind a version bump.
/// v2: + quota (the admission-control grant on kLineCreate).
/// v3: + term (the quorum-commit protocol's per-entry election term).
constexpr std::uint8_t kRecordVersion = 3;

util::Bytes encode_record(const ChangeRecord& record);
ChangeRecord decode_record(std::span<const std::uint8_t> bytes);

/// Batch framing used by catch-up transfers: (index, record) pairs.
util::Bytes encode_record_batch(
    const std::vector<std::pair<std::uint64_t, ChangeRecord>>& records);
std::vector<std::pair<std::uint64_t, ChangeRecord>> decode_record_batch(
    std::span<const std::uint8_t> bytes);

}  // namespace npss::meta
