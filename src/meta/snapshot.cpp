#include "meta/snapshot.hpp"

namespace npss::meta {

bool SnapshotStore::install(std::uint64_t index, util::Bytes image) {
  if (index <= latest_.index) return false;
  latest_.index = index;
  latest_.image = std::move(image);
  ++installs_;
  return true;
}

bool SnapshotStore::capture(const ReplicatedState& state) {
  if (state.last_applied() == 0) return false;
  return install(state.last_applied(), state.serialize());
}

}  // namespace npss::meta
