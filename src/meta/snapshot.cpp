#include "meta/snapshot.hpp"

#include <string>
#include <utility>

namespace npss::meta {

util::Status SnapshotStore::install(std::uint64_t index, util::Bytes image,
                                    const std::string& expected_digest) {
  if (index <= latest_.index) {
    return util::Status(util::ErrorCode::kUnavailable,
                        "snapshot at index " + std::to_string(index) +
                            " is stale (holding " +
                            std::to_string(latest_.index) + ")");
  }
  ReplicatedState state;
  try {
    state = ReplicatedState::deserialize(image);
  } catch (const util::Error& err) {
    return util::Status(util::ErrorCode::kEncodingError,
                        std::string("snapshot image rejected: ") +
                            err.what());
  }
  if (state.last_applied() != index) {
    return util::Status(
        util::ErrorCode::kProtocolError,
        "snapshot image covers index " +
            std::to_string(state.last_applied()) + ", not " +
            std::to_string(index));
  }
  std::string digest = state.digest();
  if (!expected_digest.empty() && digest != expected_digest) {
    return util::Status(util::ErrorCode::kEncodingError,
                        "snapshot digest mismatch: image decodes but its "
                        "table fingerprint is not the sender's");
  }
  latest_.index = index;
  latest_.image = std::move(image);
  latest_.digest = std::move(digest);
  ++installs_;
  return util::Status::ok();
}

bool SnapshotStore::capture(const ReplicatedState& state) {
  if (state.last_applied() == 0) return false;
  if (state.last_applied() <= latest_.index) return false;
  latest_.index = state.last_applied();
  latest_.image = state.serialize();
  latest_.digest = state.digest();
  ++installs_;
  return true;
}

}  // namespace npss::meta
