// Snapshot store: periodic compactions of the changelog into a full
// ReplicatedState image. Only the newest snapshot matters (it subsumes
// every older one), so the store keeps exactly one, plus counters for the
// benches. install() is how both a leader compaction and a follower
// catch-up transfer land.
//
// Threading: replica-thread confined, like the Changelog it compacts
// (lock_hierarchy.md) — owned by one manager_main loop, no lock, no
// cross-thread access.
#pragma once

#include <cstdint>
#include <string>

#include "meta/state.hpp"
#include "util/bytes.hpp"
#include "util/status.hpp"

namespace npss::meta {

struct Snapshot {
  std::uint64_t index = 0;  ///< changelog index the image covers, 0 = none
  util::Bytes image;        ///< ReplicatedState::serialize output
  std::string digest;       ///< ReplicatedState::digest() of the image
};

class SnapshotStore {
 public:
  /// Keep `image` as the newest snapshot if it advances the covered
  /// index. The image is validated before anything is overwritten: it
  /// must deserialize cleanly, its embedded last_applied must equal
  /// `index`, and — when `expected_digest` is non-empty — its
  /// ReplicatedState::digest() must match (the catch-up transfer ships
  /// the sender's digest alongside the bytes, so a torn or bit-flipped
  /// image is rejected instead of installed). Returns kOk when
  /// installed, kUnavailable when `index` is stale (not an error: the
  /// held snapshot already subsumes it), kEncodingError /
  /// kProtocolError when the image fails validation.
  util::Status install(std::uint64_t index, util::Bytes image,
                       const std::string& expected_digest = "");

  /// Convenience: serialize `state` at its last_applied index. Trusted
  /// path (the image comes from our own state) — no validation pass.
  bool capture(const ReplicatedState& state);

  bool empty() const { return latest_.index == 0; }
  const Snapshot& latest() const { return latest_; }
  std::uint64_t installs() const { return installs_; }

 private:
  Snapshot latest_;
  std::uint64_t installs_ = 0;
};

}  // namespace npss::meta
