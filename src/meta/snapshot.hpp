// Snapshot store: periodic compactions of the changelog into a full
// ReplicatedState image. Only the newest snapshot matters (it subsumes
// every older one), so the store keeps exactly one, plus counters for the
// benches. install() is how both a leader compaction and a follower
// catch-up transfer land.
//
// Threading: replica-thread confined, like the Changelog it compacts
// (lock_hierarchy.md) — owned by one manager_main loop, no lock, no
// cross-thread access.
#pragma once

#include <cstdint>

#include "meta/state.hpp"
#include "util/bytes.hpp"

namespace npss::meta {

struct Snapshot {
  std::uint64_t index = 0;  ///< changelog index the image covers, 0 = none
  util::Bytes image;        ///< ReplicatedState::serialize output
};

class SnapshotStore {
 public:
  /// Keep `image` as the newest snapshot if it advances the covered
  /// index. Returns true when installed.
  bool install(std::uint64_t index, util::Bytes image);

  /// Convenience: serialize `state` at its last_applied index.
  bool capture(const ReplicatedState& state);

  bool empty() const { return latest_.index == 0; }
  const Snapshot& latest() const { return latest_; }
  std::uint64_t installs() const { return installs_; }

 private:
  Snapshot latest_;
  std::uint64_t installs_ = 0;
};

}  // namespace npss::meta
