#include "meta/state.hpp"

#include <algorithm>

#include "util/sha256.hpp"

namespace npss::meta {

using util::ByteReader;
using util::ByteWriter;

bool ReplicatedState::apply(const ChangeRecord& record, std::uint64_t index) {
  if (index <= last_applied_) return false;
  switch (record.kind) {
    case RecordKind::kLineCreate:
      lines_[record.line] = LineInfo{record.note, record.quota};
      next_line_ = std::max(next_line_, record.line + 1);
      break;
    case RecordKind::kLineQuit: {
      lines_.erase(record.line);
      // The line's processes are shut down with it; shared exports stay.
      for (auto it = exports_.begin(); it != exports_.end();) {
        if (!it->second.shared && it->second.line == record.line) {
          it = exports_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    case RecordKind::kExport: {
      ExportGroup group;
      group.line = record.line;
      group.shared = record.shared;
      group.machine = record.machine;
      group.path = record.path;
      group.spec_hash = record.spec_hash;
      group.procs = record.procs;
      exports_[record.address] = std::move(group);
      break;
    }
    case RecordKind::kRetire:
      exports_.erase(record.address);
      break;
    case RecordKind::kNoop:
      break;  // advances last_applied_ only — the new-leader barrier
  }
  last_applied_ = index;
  return true;
}

util::Bytes ReplicatedState::serialize() const {
  ByteWriter out;
  out.u8(kStateVersion);
  out.u64(last_applied_);
  out.i64(next_line_);
  out.u32(static_cast<std::uint32_t>(lines_.size()));
  for (const auto& [id, info] : lines_) {
    out.i64(id);
    out.str(info.description);
    out.i64(info.quota);  // v2 field
  }
  out.u32(static_cast<std::uint32_t>(exports_.size()));
  for (const auto& [address, group] : exports_) {
    out.str(address);
    out.i64(group.line);
    out.u8(group.shared ? 1 : 0);
    out.str(group.machine);
    out.str(group.path);
    out.str(group.spec_hash);
    out.u32(static_cast<std::uint32_t>(group.procs.size()));
    for (const auto& [name, sig] : group.procs) {
      out.str(name);
      out.str(sig);
    }
  }
  return std::move(out).take();
}

ReplicatedState ReplicatedState::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const std::uint8_t version = in.u8();
  if (version == 0 || version > kStateVersion) {
    throw util::EncodingError("unsupported snapshot image version " +
                              std::to_string(version));
  }
  ReplicatedState state;
  state.last_applied_ = in.u64();
  state.next_line_ = in.i64();
  const std::uint32_t nlines = in.u32();
  if (static_cast<std::size_t>(nlines) * 12 > in.remaining()) {
    throw util::EncodingError("snapshot line count exceeds image size");
  }
  for (std::uint32_t i = 0; i < nlines; ++i) {
    const std::int64_t id = in.i64();
    LineInfo info;
    info.description = in.str();
    if (version >= 2) info.quota = in.i64();  // absent (0) in v1 images
    state.lines_[id] = std::move(info);
  }
  const std::uint32_t ngroups = in.u32();
  if (static_cast<std::size_t>(ngroups) * 8 > in.remaining()) {
    throw util::EncodingError("snapshot export count exceeds image size");
  }
  for (std::uint32_t i = 0; i < ngroups; ++i) {
    std::string address = in.str();
    ExportGroup group;
    group.line = in.i64();
    group.shared = in.u8() != 0;
    group.machine = in.str();
    group.path = in.str();
    group.spec_hash = in.str();
    const std::uint32_t nprocs = in.u32();
    if (static_cast<std::size_t>(nprocs) * 8 > in.remaining()) {
      throw util::EncodingError("snapshot proc count exceeds image size");
    }
    group.procs.reserve(nprocs);
    for (std::uint32_t p = 0; p < nprocs; ++p) {
      std::string name = in.str();
      std::string sig = in.str();
      group.procs.emplace_back(std::move(name), std::move(sig));
    }
    state.exports_[std::move(address)] = std::move(group);
  }
  if (!in.exhausted()) {
    throw util::EncodingError("trailing bytes in snapshot image");
  }
  return state;
}

std::string ReplicatedState::digest() const {
  // Fingerprint the *table* (lines + exports), not the log position: a
  // replica that applied more records but holds the same table must
  // compare equal, or the failover transcript could never match.
  ReplicatedState table = *this;
  table.last_applied_ = 0;
  util::Bytes image = table.serialize();
  return util::sha256_hex(std::string_view(
      reinterpret_cast<const char*>(image.data()), image.size()));
}

}  // namespace npss::meta
