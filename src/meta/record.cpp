#include "meta/record.hpp"

namespace npss::meta {

using util::ByteReader;
using util::ByteWriter;

std::string_view record_kind_name(RecordKind kind) {
  switch (kind) {
    case RecordKind::kLineCreate: return "line-create";
    case RecordKind::kLineQuit: return "line-quit";
    case RecordKind::kExport: return "export";
    case RecordKind::kRetire: return "retire";
    case RecordKind::kNoop: return "noop";
  }
  return "?";
}

util::Bytes encode_record(const ChangeRecord& record) {
  ByteWriter out;
  out.u8(kRecordVersion);
  out.u8(static_cast<std::uint8_t>(record.kind));
  out.i64(record.line);
  out.u8(record.shared ? 1 : 0);
  out.str(record.address);
  out.str(record.machine);
  out.str(record.path);
  out.str(record.spec_hash);
  out.str(record.note);
  out.u32(static_cast<std::uint32_t>(record.procs.size()));
  for (const auto& [name, sig] : record.procs) {
    out.str(name);
    out.str(sig);
  }
  out.i64(record.quota);  // v2 field, appended behind the version bump
  out.u64(record.term);   // v3 field
  return std::move(out).take();
}

ChangeRecord decode_record(std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const std::uint8_t version = in.u8();
  if (version == 0 || version > kRecordVersion) {
    throw util::EncodingError("unsupported changelog record version " +
                              std::to_string(version));
  }
  ChangeRecord record;
  const std::uint8_t kind = in.u8();
  if (kind < static_cast<std::uint8_t>(RecordKind::kLineCreate) ||
      kind > static_cast<std::uint8_t>(RecordKind::kNoop)) {
    throw util::EncodingError("unknown changelog record kind " +
                              std::to_string(kind));
  }
  record.kind = static_cast<RecordKind>(kind);
  record.line = in.i64();
  record.shared = in.u8() != 0;
  record.address = in.str();
  record.machine = in.str();
  record.path = in.str();
  record.spec_hash = in.str();
  record.note = in.str();
  const std::uint32_t rows = in.u32();
  if (static_cast<std::size_t>(rows) * 8 > in.remaining()) {
    throw util::EncodingError("record proc count " + std::to_string(rows) +
                              " exceeds frame size");
  }
  record.procs.reserve(rows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    std::string name = in.str();
    std::string sig = in.str();
    record.procs.emplace_back(std::move(name), std::move(sig));
  }
  if (version >= 2) record.quota = in.i64();  // absent (0) in v1 logs
  if (version >= 3) record.term = in.u64();   // absent (0) in v1/v2 logs
  if (!in.exhausted()) {
    throw util::EncodingError("trailing bytes in changelog record");
  }
  return record;
}

util::Bytes encode_record_batch(
    const std::vector<std::pair<std::uint64_t, ChangeRecord>>& records) {
  ByteWriter out;
  out.u8(kRecordVersion);
  out.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& [index, record] : records) {
    out.u64(index);
    out.blob(encode_record(record));
  }
  return std::move(out).take();
}

std::vector<std::pair<std::uint64_t, ChangeRecord>> decode_record_batch(
    std::span<const std::uint8_t> bytes) {
  ByteReader in(bytes);
  const std::uint8_t version = in.u8();
  if (version == 0 || version > kRecordVersion) {
    throw util::EncodingError("unsupported record batch version " +
                              std::to_string(version));
  }
  const std::uint32_t count = in.u32();
  if (static_cast<std::size_t>(count) * 12 > in.remaining()) {
    throw util::EncodingError("batch record count " + std::to_string(count) +
                              " exceeds frame size");
  }
  std::vector<std::pair<std::uint64_t, ChangeRecord>> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t index = in.u64();
    util::Bytes body = in.blob();
    records.emplace_back(index, decode_record(body));
  }
  if (!in.exhausted()) {
    throw util::EncodingError("trailing bytes in record batch");
  }
  return records;
}

}  // namespace npss::meta
