// The append-only changelog of Manager state transitions.
//
// Indices are 1-based and never reused. The log may be compacted from the
// front once a snapshot covers a prefix (truncate_prefix); first_index()
// then names the oldest retained record. A follower that needs records
// older than first_index() is served the snapshot instead — the
// snapshot + log-tail catch-up path.
//
// Threading: replica-thread confined (lock_hierarchy.md). A Changelog
// is owned by one replica's manager_main loop and is never shared, so
// it carries no lock; cross-replica effects travel as messages. Counter
// visibility to the bench thread goes through the replica's
// ManagerCounters, never through this object.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "meta/record.hpp"
#include "util/status.hpp"

namespace npss::meta {

class Changelog {
 public:
  /// Leader append: assigns and returns the next index.
  std::uint64_t append(ChangeRecord record);

  /// Follower append at an explicit index. Returns false on a gap (the
  /// caller must fetch the missing tail); an index already held is a
  /// no-op returning true (duplicate delivery is harmless).
  bool append_at(std::uint64_t index, ChangeRecord record);

  std::uint64_t last_index() const {
    return base_ + static_cast<std::uint64_t>(records_.size());
  }
  /// Oldest retained index; 0 when the log is empty.
  std::uint64_t first_index() const {
    return records_.empty() ? 0 : base_ + 1;
  }
  std::size_t size() const { return records_.size(); }

  /// Throws ProtocolError when `index` is not retained.
  const ChangeRecord& at(std::uint64_t index) const;

  /// All retained records with index >= from, as (index, record) pairs.
  std::vector<std::pair<std::uint64_t, ChangeRecord>> tail(
      std::uint64_t from) const;

  /// Drop every record with index <= upto (snapshot compaction).
  void truncate_prefix(std::uint64_t upto);

  /// Discard everything and restart after `base_index` (snapshot install:
  /// the next append_at must be base_index + 1).
  void reset(std::uint64_t base_index);

 private:
  std::uint64_t base_ = 0;  ///< index of the record before records_[0]
  std::deque<ChangeRecord> records_;
};

}  // namespace npss::meta
