// The append-only changelog of Manager state transitions.
//
// Indices are 1-based and never reused. The log may be compacted from the
// front once a snapshot covers a prefix (truncate_prefix); first_index()
// then names the oldest retained record. A follower that needs records
// older than first_index() is served the snapshot instead — the
// snapshot + log-tail catch-up path.
//
// Threading: replica-thread confined (lock_hierarchy.md). A Changelog
// is owned by one replica's manager_main loop and is never shared, so
// it carries no lock; cross-replica effects travel as messages. Counter
// visibility to the bench thread goes through the replica's
// ManagerCounters, never through this object.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "meta/record.hpp"
#include "util/status.hpp"

namespace npss::meta {

class Changelog {
 public:
  /// Leader append: assigns and returns the next index.
  std::uint64_t append(ChangeRecord record);

  /// Follower append at an explicit index. Returns false on a gap (the
  /// caller must fetch the missing tail); an index already held with the
  /// same term is a no-op returning true (duplicate delivery is
  /// harmless); an index already held with a *different* term is a
  /// conflict — the held suffix from that index on was written by a
  /// deposed leader and is discarded, then `record` is appended in its
  /// place. An index at or below the compacted prefix is a no-op
  /// returning true (the snapshot already covers it).
  bool append_at(std::uint64_t index, ChangeRecord record);

  std::uint64_t last_index() const {
    return base_ + static_cast<std::uint64_t>(records_.size());
  }
  /// Oldest retained index; 0 when the log is empty.
  std::uint64_t first_index() const {
    return records_.empty() ? 0 : base_ + 1;
  }
  std::size_t size() const { return records_.size(); }

  /// Throws ProtocolError when `index` is not retained.
  const ChangeRecord& at(std::uint64_t index) const;

  /// Election term of the entry at `index`. Defined for every index the
  /// log still knows about: retained entries answer their record's term,
  /// and the compaction/reset base answers the base term recorded when
  /// the prefix was dropped. Index 0 is term 0. Throws ProtocolError for
  /// an index below the base or beyond the last entry.
  std::uint64_t term_at(std::uint64_t index) const;

  /// Term of the newest entry (the base term when the log is fully
  /// compacted; 0 when nothing was ever appended).
  std::uint64_t last_term() const {
    return records_.empty() ? base_term_ : records_.back().term;
  }

  /// Drop every record with index >= from (conflict with a newer
  /// leader's log). No-op when `from` is past the end; throws
  /// ProtocolError when `from` would cut into the compacted prefix.
  void truncate_suffix(std::uint64_t from);

  /// All retained records with index >= from, as (index, record) pairs.
  std::vector<std::pair<std::uint64_t, ChangeRecord>> tail(
      std::uint64_t from) const;

  /// Drop every record with index <= upto (snapshot compaction).
  void truncate_prefix(std::uint64_t upto);

  /// Discard everything and restart after `base_index` (snapshot install:
  /// the next append_at must be base_index + 1). `base_term` is the term
  /// of entry `base_index` so prev-term consistency checks keep working
  /// across the compaction boundary.
  void reset(std::uint64_t base_index, std::uint64_t base_term = 0);

 private:
  std::uint64_t base_ = 0;  ///< index of the record before records_[0]
  std::uint64_t base_term_ = 0;  ///< term of entry base_ (0 = log start)
  std::deque<ChangeRecord> records_;
};

}  // namespace npss::meta
