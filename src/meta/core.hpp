// ReplicaCore: one Manager replica's consensus protocol as a pure,
// steppable state machine.
//
// PR 6's ReplicaDriver fused the protocol with its transport: blocking
// receive loops, host-clock timeouts, and rpc::Message framing, which is
// exactly the shape a model checker cannot drive. This class is the
// refactor the checker forced — every input is an explicit call
// (handle / fire_timer / propose), every output is a queued value
// (take_outbound / take_events), and nothing in here reads a clock,
// a random source, or a socket. The live ReplicaDriver in rpc/manager.cpp
// owns one core and translates rpc::Message frames and host time into
// core calls; src/mc/ owns N cores over a virtual network and enumerates
// every delivery order. Both see the identical protocol.
//
// Two protocol modes, selected by CoreConfig::quorum_commit:
//
//  * true (the shipped protocol): real quorum commit. Entries carry their
//    leader's term; an entry is committed when a majority of replicas
//    hold it *and* its term is the leader's current term; followers ack
//    appends; elections require the candidate's (last term, last index)
//    to be at least as up to date as the voter's; a freshly elected
//    leader appends a kNoop barrier to commit the prior term's tail;
//    conflicting suffixes are truncated, never whole logs. Client acks
//    ride the kCommitted events, so nothing is acknowledged until it is
//    durable on a majority.
//
//  * false (the PR 6 legacy protocol, kept as the checker's negative
//    corpus): fire-and-forget appends, commit == append, immediate acks,
//    index-only votes, deposed leaders discard their whole log. meta_check
//    --legacy runs this mode and MUST find the acked-then-lost violation;
//    the transcript is the regression proof that the checker can see the
//    bug the fault suite sampled past.
//
// Restart rule: replicas are memory-only (no persistent ballot), so a
// restarted replica rejoins as a non-voting *learner* (start_recovered).
// It mirrors the log and its appends count toward the commit quorum
// (safe: it never votes, so a candidate still needs a majority of
// never-restarted voters, and any voter that acked a committed entry
// still holds it — the Leader Completeness argument survives).
//
// Threading: none. Plain value type, copyable on purpose — the model
// checker forks World states by copying cores.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "meta/changelog.hpp"
#include "meta/election.hpp"
#include "meta/record.hpp"
#include "meta/snapshot.hpp"
#include "meta/state.hpp"
#include "util/bytes.hpp"

namespace npss::meta {

enum class MsgKind : std::uint8_t {
  kHeartbeat = 1,  ///< leader liveness + commit-index piggyback
  kAppend,         ///< replicate one entry (prev-term consistency checked)
  kAppendAck,      ///< follower: my log matches the leader's through .index
  kVoteReq,        ///< candidate stands for .term
  kVoteAck,        ///< voter's grant/deny for .term
  kFetch,          ///< follower is behind: send snapshot + tail from .index
  kFetchAck,       ///< snapshot image + record batch + commit index
};

std::string_view msg_kind_name(MsgKind kind);

/// One protocol message between replicas. Field usage varies by kind —
/// unused fields stay zero so messages compare/serialize canonically.
struct Msg {
  MsgKind kind = MsgKind::kHeartbeat;
  int from = -1;                 ///< sender's replica index
  std::uint64_t term = 0;        ///< sender's election term
  std::uint64_t index = 0;       ///< append: entry index; appendack:
                                 ///< matched-through; fetch: first wanted
  std::uint64_t prev_term = 0;   ///< append: term of entry index-1
  std::uint64_t last_index = 0;  ///< heartbeat/votereq: sender's last index
  std::uint64_t last_term = 0;   ///< heartbeat/votereq: sender's last term
  std::uint64_t commit = 0;      ///< sender's commit index
  std::uint64_t commit_term = 0; ///< heartbeat: term of entry `commit`
  bool granted = false;          ///< voteack verdict
  ChangeRecord record;           ///< append payload
  std::uint64_t snap_index = 0;  ///< fetchack: snapshot covers 1..snap_index
  std::uint64_t snap_term = 0;   ///< fetchack: term of entry snap_index
  std::string snap_digest;       ///< fetchack: sender's state digest
  util::Bytes snapshot;          ///< fetchack: serialized ReplicatedState
  std::vector<std::pair<std::uint64_t, ChangeRecord>> batch;  ///< log tail
};

struct Outbound {
  int to = -1;
  Msg msg;
};

enum class CoreEventKind : std::uint8_t {
  kCommitted,     ///< entry .index (term .term) is durable: ack the client
  kBecameLeader,  ///< rebuild ManagerState and start serving
  kSteppedDown,   ///< drop pending client completions; they retry elsewhere
};

struct CoreEvent {
  CoreEventKind kind = CoreEventKind::kCommitted;
  std::uint64_t index = 0;
  std::uint64_t term = 0;
};

/// Monotonic protocol counters; the driver diffs successive snapshots
/// into the shared atomic ManagerCounters.
struct CoreCounters {
  std::uint64_t log_appends = 0;
  std::uint64_t snapshot_installs = 0;
  std::uint64_t leader_elections = 0;
};

struct CoreConfig {
  int index = 0;
  int replicas = 1;
  std::uint64_t seed = 0;
  std::uint64_t snapshot_interval = 0;  ///< 0 = never compact
  int heartbeat_ms = 15;
  int election_base_ms = 60;
  bool quorum_commit = true;  ///< false = PR 6 legacy (negative corpus)
};

class ReplicaCore {
 public:
  ReplicaCore() = default;
  explicit ReplicaCore(CoreConfig config);

  /// Bootstrap entry: the kMetaConfig handshake names replica
  /// `leader_index` the term-`term` leader by convention — not an
  /// election, so leader_elections stays 0.
  void start(Role role, std::uint64_t term, int leader_index);

  /// Rejoin after a crash with no persistent ballot: a non-voting
  /// learner. Mirrors the log, acks appends, never votes or stands.
  void start_recovered();

  void handle(const Msg& m);

  /// The role's one timer fired: leader → heartbeat broadcast,
  /// follower → stand for election (learner: re-fetch), candidate →
  /// the round is over, revert to follower.
  void fire_timer();

  /// Leader-only client write. Returns the assigned changelog index, or
  /// 0 when this replica is not the leader. In quorum mode the
  /// kCommitted event for that index is the ack signal; in legacy mode
  /// the event fires immediately (the bug under test).
  std::uint64_t propose(ChangeRecord rec);

  std::vector<Outbound> take_outbound() { return std::move(outbound_); }
  std::vector<CoreEvent> take_events() { return std::move(events_); }

  // --- inspection (the driver's answer_who_is_leader, the checker's
  // invariants, and the tests all read through these) ---
  Role role() const { return role_; }
  bool learner() const { return never_vote_; }
  std::uint64_t term() const { return term_; }
  int index() const { return config_.index; }
  int leader_index() const { return leader_; }  ///< -1 = unknown
  std::uint64_t commit_index() const { return commit_; }
  const Changelog& log() const { return changelog_; }
  const ReplicatedState& state() const { return state_; }
  const SnapshotStore& snapshots() const { return snapshots_; }
  const CoreCounters& counters() const { return counters_; }

  /// state() plus the uncommitted log tail applied — what a freshly
  /// elected leader rebuilds its Manager bookkeeping from (its own
  /// entries cannot be truncated while it stays leader, so the
  /// projection is what the noop barrier is about to make durable).
  ReplicatedState projected_state() const;

  /// Milliseconds of quiet before fire_timer() should be invoked, for
  /// the current role/term. A pure function of core state — the driver
  /// anchors a host clock to it, the checker ignores it entirely.
  int timer_ms() const;

  /// Bumped whenever the quiet-period countdown must restart (role or
  /// term change, heartbeat/append accepted, vote granted). The driver
  /// re-anchors its clock when the generation moves.
  std::uint64_t timer_generation() const { return timer_gen_; }

  /// Canonical image of the whole core for the checker's visited set:
  /// role, term, vote, commit, log, state, snapshot index.
  util::Bytes fingerprint() const;

 private:
  std::size_t majority() const {
    return static_cast<std::size_t>(config_.replicas) / 2 + 1;
  }
  void send(int to, Msg m);
  void broadcast(const Msg& m);
  Msg make_heartbeat() const;
  void broadcast_heartbeat();
  void send_fetch(int to);
  void serve_fetch(const Msg& m);
  void bump_gen() { ++timer_gen_; }
  void apply_to(std::uint64_t k);
  void commit_to(std::uint64_t k);
  void maybe_compact();
  void become_leader();
  void start_election();
  void step_down_if_higher(const Msg& m);

  void handle_quorum(const Msg& m);
  void on_heartbeat_quorum(const Msg& m);
  void on_append_quorum(const Msg& m);
  void on_append_ack(const Msg& m);
  void on_vote_req_quorum(const Msg& m);
  void on_fetch_ack_quorum(const Msg& m);
  void advance_commit_leader();

  void handle_legacy(const Msg& m);
  void legacy_depose(const Msg& m);

  CoreConfig config_;
  Role role_ = Role::kFollower;
  std::uint64_t term_ = 0;
  std::uint64_t voted_term_ = 0;  ///< newest term we granted a vote in
  int leader_ = -1;               ///< best known leader's replica index
  bool never_vote_ = false;       ///< learner: restarted without a ballot
  std::size_t votes_ = 0;         ///< grants collected as candidate
  std::uint64_t commit_ = 0;
  std::vector<std::uint64_t> match_;  ///< leader: matched-through per peer

  Changelog changelog_;
  ReplicatedState state_;
  SnapshotStore snapshots_;

  std::vector<Outbound> outbound_;
  std::vector<CoreEvent> events_;
  CoreCounters counters_;
  std::uint64_t timer_gen_ = 0;
};

}  // namespace npss::meta
