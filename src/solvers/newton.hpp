// Damped Newton-Raphson with finite-difference Jacobian — the steady-state
// balance method TESS offers (§3.2). The residual callback is deliberately a
// std::function over plain vectors so the same solver drives both the
// in-process engine model and the Schooner-remote one (where each residual
// evaluation fans out RPCs).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "solvers/linalg.hpp"

namespace npss::solvers {

struct NewtonOptions {
  double tolerance = 1e-9;        ///< convergence: ||F||_inf below this
  int max_iterations = 50;
  double fd_step = 1e-6;          ///< relative finite-difference step
  double min_damping = 1.0 / 64;  ///< smallest backtracking factor tried
  bool require_reduction = true;  ///< backtrack until ||F|| decreases
};

struct NewtonResult {
  std::vector<double> solution;
  double residual_norm = 0.0;
  int iterations = 0;
  int function_evaluations = 0;
  bool converged = false;
};

using ResidualFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// Solve F(x) = 0 starting from `initial`. Throws util::ConvergenceError if
/// the iteration limit is reached without meeting the tolerance, with the
/// best iterate recorded in the message.
NewtonResult newton_solve(const ResidualFn& residual,
                          std::vector<double> initial,
                          const NewtonOptions& options = {});

/// Same, but returns the (non-converged) result instead of throwing; used
/// by benches that record failure modes.
NewtonResult newton_try_solve(const ResidualFn& residual,
                              std::vector<double> initial,
                              const NewtonOptions& options = {});

}  // namespace npss::solvers
