// ODE integrators for TESS transients (§3.2): Modified (Improved) Euler,
// classic fourth-order Runge-Kutta, an Adams-Bashforth-Moulton
// predictor-corrector, and a Gear (BDF) method for stiff volume dynamics.
// Multistep methods keep history, so an Integrator instance is stateful and
// must be reset() between independent transients.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace npss::solvers {

/// Right-hand side of y' = f(t, y).
using OdeFn = std::function<std::vector<double>(double, const std::vector<double>&)>;

enum class IntegratorKind : std::uint8_t {
  kModifiedEuler = 0,  ///< Heun's method (TESS "Modified/Improved Euler")
  kRungeKutta4,
  kAdams,              ///< AB2 predictor / AM2 corrector, RK4 start
  kGear,               ///< BDF2, Newton-corrected, BDF1 start
};

std::string_view integrator_name(IntegratorKind kind);

/// All kinds in the order the TESS system-module widget lists them.
const std::vector<IntegratorKind>& all_integrators();

class Integrator {
 public:
  virtual ~Integrator() = default;

  virtual IntegratorKind kind() const = 0;

  /// Nominal order of accuracy (observed order is tested against this).
  virtual int order() const = 0;

  /// Advance one step from (t, y) with step h; returns y(t + h).
  virtual std::vector<double> step(const OdeFn& f, double t,
                                   const std::vector<double>& y,
                                   double h) = 0;

  /// Drop multistep history (call when state jumps discontinuously).
  virtual void reset() {}

  /// RHS evaluations consumed so far (the cost metric for A6).
  long evaluations() const { return evaluations_; }

 protected:
  std::vector<double> eval(const OdeFn& f, double t,
                           const std::vector<double>& y) {
    ++evaluations_;
    return f(t, y);
  }

 private:
  long evaluations_ = 0;
};

std::unique_ptr<Integrator> make_integrator(IntegratorKind kind);

/// Fixed-step integration from t0 to t1 (h is clipped on the final step).
/// `observer`, if provided, is called after every accepted step.
std::vector<double> integrate(
    Integrator& integrator, const OdeFn& f, double t0, double t1, double h,
    std::vector<double> y0,
    const std::function<void(double, const std::vector<double>&)>& observer =
        nullptr);

}  // namespace npss::solvers
