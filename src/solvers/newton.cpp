#include "solvers/newton.hpp"

#include <cmath>
#include <optional>

#include "util/status.hpp"

namespace npss::solvers {

namespace {

NewtonResult run(const ResidualFn& residual, std::vector<double> x,
                 const NewtonOptions& opt) {
  NewtonResult result;
  const std::size_t n = x.size();
  std::vector<double> fx = residual(x);
  ++result.function_evaluations;
  if (fx.size() != n) {
    throw util::ModelError("newton: residual dimension " +
                           std::to_string(fx.size()) + " != unknowns " +
                           std::to_string(n));
  }
  double norm = inf_norm(fx);

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    if (norm <= opt.tolerance) {
      result.solution = std::move(x);
      result.residual_norm = norm;
      result.iterations = iter;
      result.converged = true;
      return result;
    }
    // Finite-difference Jacobian, one column per unknown.
    Matrix jac(n, n);
    for (std::size_t j = 0; j < n; ++j) {
      const double h = opt.fd_step * std::max(1.0, std::abs(x[j]));
      std::vector<double> xp = x;
      xp[j] += h;
      std::vector<double> fp = residual(xp);
      ++result.function_evaluations;
      for (std::size_t i = 0; i < n; ++i) {
        jac(i, j) = (fp[i] - fx[i]) / h;
      }
    }
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -fx[i];
    // Factor once per iteration and reuse the factorization for the solve
    // (and for any damped re-solves the line search below performs on the
    // same step direction).
    std::optional<LuFactorization> lu;
    try {
      lu.emplace(jac);
    } catch (const util::ConvergenceError&) {
      // Singular Jacobian — typically an unknown pinned at a model clamp
      // so its finite-difference column vanished. Regularize the diagonal
      // (Levenberg-style) and move in the remaining directions.
      double scale = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          scale = std::max(scale, std::abs(jac(i, j)));
        }
      }
      for (std::size_t k = 0; k < n; ++k) {
        jac(k, k) += 1e-4 * scale + 1e-10;
      }
      lu.emplace(jac);
    }
    std::vector<double> step = lu->solve(rhs);

    // Backtracking line search on ||F||_inf.
    double lambda = 1.0;
    std::vector<double> x_new(n);
    std::vector<double> f_new;
    double norm_new = norm;
    while (true) {
      for (std::size_t i = 0; i < n; ++i) x_new[i] = x[i] + lambda * step[i];
      f_new = residual(x_new);
      ++result.function_evaluations;
      norm_new = inf_norm(f_new);
      if (!opt.require_reduction || norm_new < norm ||
          lambda <= opt.min_damping) {
        break;
      }
      lambda *= 0.5;
    }
    x = std::move(x_new);
    fx = std::move(f_new);
    norm = norm_new;
  }

  result.solution = std::move(x);
  result.residual_norm = norm;
  result.iterations = opt.max_iterations;
  result.converged = norm <= opt.tolerance;
  return result;
}

}  // namespace

NewtonResult newton_solve(const ResidualFn& residual,
                          std::vector<double> initial,
                          const NewtonOptions& options) {
  NewtonResult result = run(residual, std::move(initial), options);
  if (!result.converged) {
    throw util::ConvergenceError(
        "Newton-Raphson failed: residual " +
        std::to_string(result.residual_norm) + " after " +
        std::to_string(result.iterations) + " iterations");
  }
  return result;
}

NewtonResult newton_try_solve(const ResidualFn& residual,
                              std::vector<double> initial,
                              const NewtonOptions& options) {
  return run(residual, std::move(initial), options);
}

}  // namespace npss::solvers
