#include "solvers/linalg.hpp"

#include <algorithm>
#include <cmath>

namespace npss::solvers {

using util::ConvergenceError;

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) {
    throw util::ModelError("matrix-vector size mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      y[r] += (*this)(r, c) * x[c];
    }
  }
  return y;
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  const std::size_t n = lu_.rows();
  if (lu_.cols() != n) {
    throw util::ModelError("LU requires a square matrix");
  }
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(lu_(r, k)) > best) {
        best = std::abs(lu_(r, k));
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw ConvergenceError("singular matrix in LU at column " +
                             std::to_string(k));
    }
    if (pivot != k) {
      std::swap(perm_[pivot], perm_[k]);
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(pivot, c), lu_(k, c));
      }
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      lu_(r, k) /= lu_(k, k);
      const double factor = lu_(r, k);
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) {
    throw util::ModelError("LU solve: rhs size mismatch");
  }
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower triangle).
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) x[ii] -= lu_(ii, j) * x[j];
    x[ii] /= lu_(ii, ii);
  }
  return x;
}

double LuFactorization::abs_determinant() const {
  double det = 1.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= std::abs(lu_(i, i));
  return det;
}

double inf_norm(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::abs(x));
  return best;
}

}  // namespace npss::solvers
