#include "solvers/ode.hpp"

#include <cmath>

#include "solvers/linalg.hpp"
#include "util/status.hpp"

namespace npss::solvers {

namespace {

using Vec = std::vector<double>;

Vec axpy(const Vec& y, double a, const Vec& x) {
  Vec out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i] + a * x[i];
  return out;
}

class ModifiedEuler final : public Integrator {
 public:
  IntegratorKind kind() const override {
    return IntegratorKind::kModifiedEuler;
  }
  int order() const override { return 2; }

  Vec step(const OdeFn& f, double t, const Vec& y, double h) override {
    // Heun: predictor full Euler step, corrector trapezoidal average.
    Vec k1 = eval(f, t, y);
    Vec predict = axpy(y, h, k1);
    Vec k2 = eval(f, t + h, predict);
    Vec out(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      out[i] = y[i] + 0.5 * h * (k1[i] + k2[i]);
    }
    return out;
  }
};

class RungeKutta4 final : public Integrator {
 public:
  IntegratorKind kind() const override { return IntegratorKind::kRungeKutta4; }
  int order() const override { return 4; }

  Vec step(const OdeFn& f, double t, const Vec& y, double h) override {
    Vec k1 = eval(f, t, y);
    Vec k2 = eval(f, t + 0.5 * h, axpy(y, 0.5 * h, k1));
    Vec k3 = eval(f, t + 0.5 * h, axpy(y, 0.5 * h, k2));
    Vec k4 = eval(f, t + h, axpy(y, h, k3));
    Vec out(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      out[i] = y[i] + h / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
    }
    return out;
  }
};

class AdamsPc final : public Integrator {
 public:
  IntegratorKind kind() const override { return IntegratorKind::kAdams; }
  int order() const override { return 2; }

  Vec step(const OdeFn& f, double t, const Vec& y, double h) override {
    Vec fn = eval(f, t, y);
    Vec predicted;
    if (!have_history_ || std::abs(h - last_h_) > 1e-14 * std::abs(h)) {
      // No usable history (first step or step-size change): RK2 start.
      predicted = axpy(y, h, fn);
    } else {
      // AB2 predictor: y + h/2 (3 f_n - f_{n-1}).
      predicted.resize(y.size());
      for (std::size_t i = 0; i < y.size(); ++i) {
        predicted[i] = y[i] + 0.5 * h * (3.0 * fn[i] - f_prev_[i]);
      }
    }
    // AM2 (trapezoid) corrector.
    Vec f_pred = eval(f, t + h, predicted);
    Vec out(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) {
      out[i] = y[i] + 0.5 * h * (fn[i] + f_pred[i]);
    }
    f_prev_ = std::move(fn);
    have_history_ = true;
    last_h_ = h;
    return out;
  }

  void reset() override {
    have_history_ = false;
    f_prev_.clear();
  }

 private:
  bool have_history_ = false;
  double last_h_ = 0.0;
  Vec f_prev_;
};

class GearBdf final : public Integrator {
 public:
  IntegratorKind kind() const override { return IntegratorKind::kGear; }
  int order() const override { return 2; }

  Vec step(const OdeFn& f, double t, const Vec& y, double h) override {
    const bool bdf2 =
        have_history_ && std::abs(h - last_h_) <= 1e-14 * std::abs(h);
    // Implicit equation G(x) = x - base - gain f(t+h, x) = 0 where
    //   startup: implicit trapezoid (A-stable, 2nd order, so the first
    //            step does not degrade the method's observed order)
    //   BDF2:    x = (4 y - y_prev)/3 + (2h/3) f(t+h, x)
    Vec base(y.size());
    double gain;
    if (bdf2) {
      for (std::size_t i = 0; i < y.size(); ++i) {
        base[i] = (4.0 * y[i] - y_prev_[i]) / 3.0;
      }
      gain = 2.0 * h / 3.0;
    } else {
      Vec f0 = eval(f, t, y);
      for (std::size_t i = 0; i < y.size(); ++i) {
        base[i] = y[i] + 0.5 * h * f0[i];
      }
      gain = 0.5 * h;
    }
    // Newton-correct the implicit equation with a full finite-difference
    // Jacobian (I - gain dF/dx); the spool dynamics couple the states, so
    // a diagonal approximation can diverge at large steps.
    const std::size_t n = y.size();
    // Predictor by state extrapolation (never by an explicit f step — on
    // a stiff system h*f can overshoot into unphysical states).
    Vec x = y;
    if (bdf2) {
      for (std::size_t i = 0; i < n; ++i) x[i] = 2.0 * y[i] - y_prev_[i];
    }
    double prev_norm = std::numeric_limits<double>::infinity();
    for (int it = 0; it < 25; ++it) {
      Vec fx = eval(f, t + h, x);
      Vec g(n);
      double norm = 0.0, xscale = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        g[i] = x[i] - base[i] - gain * fx[i];
        norm = std::max(norm, std::abs(g[i]));
        xscale = std::max(xscale, std::abs(x[i]));
      }
      // Converged, or stalled at the RHS evaluation noise floor (the RHS
      // may itself come from an inner iterative solve).
      if (norm < 1e-10 * xscale || (it > 2 && norm > 0.5 * prev_norm)) {
        break;
      }
      prev_norm = norm;
      Matrix jac(n, n);
      for (std::size_t j = 0; j < n; ++j) {
        const double eps = 1e-6 * std::max(1.0, std::abs(x[j]));
        Vec xp = x;
        xp[j] += eps;
        Vec fp = eval(f, t + h, xp);
        for (std::size_t i = 0; i < n; ++i) {
          jac(i, j) = (i == j ? 1.0 : 0.0) - gain * (fp[i] - fx[i]) / eps;
        }
      }
      Vec rhs(n);
      for (std::size_t i = 0; i < n; ++i) rhs[i] = -g[i];
      Vec dx = LuFactorization(jac).solve(rhs);
      for (std::size_t i = 0; i < n; ++i) {
        // Trust region: never move a component more than 20% (+1 abs) per
        // corrector iteration — wild probes can leave the model's domain.
        const double limit = 0.2 * std::abs(x[i]) + 1.0;
        x[i] += std::clamp(dx[i], -limit, limit);
      }
    }
    y_prev_ = y;
    have_history_ = true;
    last_h_ = h;
    return x;
  }

  void reset() override {
    have_history_ = false;
    y_prev_.clear();
  }

 private:
  bool have_history_ = false;
  double last_h_ = 0.0;
  Vec y_prev_;
};

}  // namespace

std::string_view integrator_name(IntegratorKind kind) {
  switch (kind) {
    case IntegratorKind::kModifiedEuler: return "modified-euler";
    case IntegratorKind::kRungeKutta4: return "runge-kutta-4";
    case IntegratorKind::kAdams: return "adams";
    case IntegratorKind::kGear: return "gear";
  }
  return "?";
}

const std::vector<IntegratorKind>& all_integrators() {
  static const std::vector<IntegratorKind> kinds = {
      IntegratorKind::kModifiedEuler, IntegratorKind::kRungeKutta4,
      IntegratorKind::kAdams, IntegratorKind::kGear};
  return kinds;
}

std::unique_ptr<Integrator> make_integrator(IntegratorKind kind) {
  switch (kind) {
    case IntegratorKind::kModifiedEuler:
      return std::make_unique<ModifiedEuler>();
    case IntegratorKind::kRungeKutta4: return std::make_unique<RungeKutta4>();
    case IntegratorKind::kAdams: return std::make_unique<AdamsPc>();
    case IntegratorKind::kGear: return std::make_unique<GearBdf>();
  }
  throw util::ModelError("unknown integrator kind");
}

std::vector<double> integrate(
    Integrator& integrator, const OdeFn& f, double t0, double t1, double h,
    std::vector<double> y0,
    const std::function<void(double, const std::vector<double>&)>& observer) {
  if (h <= 0.0) throw util::ModelError("integrate: step must be positive");
  double t = t0;
  std::vector<double> y = std::move(y0);
  while (t < t1 - 1e-12) {
    const double step = std::min(h, t1 - t);
    y = integrator.step(f, t, y, step);
    t += step;
    if (observer) observer(t, y);
  }
  return y;
}

}  // namespace npss::solvers
