// Small dense linear algebra for the TESS balance solvers: a column-major
// matrix, LU factorization with partial pivoting, and solve. Sizes are tiny
// (the F100 balance is < 10 unknowns) so simplicity beats blocking.
#pragma once

#include <cstddef>
#include <vector>

#include "util/status.hpp"

namespace npss::solvers {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[c * rows_ + r];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[c * rows_ + r];
  }

  std::vector<double> multiply(const std::vector<double>& x) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting. Throws util::ConvergenceError on
/// a (numerically) singular matrix.
class LuFactorization {
 public:
  explicit LuFactorization(Matrix a);

  /// Solve A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// |det A| estimate from the pivots (used for conditioning diagnostics).
  double abs_determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

/// Infinity norm of a vector.
double inf_norm(const std::vector<double>& v);

}  // namespace npss::solvers
