// The virtual heterogeneous cluster.
//
// A Cluster owns named Machines (each with an arch::ArchDescriptor and a
// site), a routing table of LinkProfiles keyed by site pair, a registry of
// installed "program images" (the simulated executables the user's pathname
// widget points at, §3.3), and the live processes. A process is a host
// thread bound to an Endpoint: a mailbox plus a virtual clock on some
// machine. Message delivery stamps envelopes with
//   sender_clock + link.transfer_time(bytes)
// and receivers join their clock with the stamp on receipt, so elapsed
// virtual time along any sequential call chain is deterministic regardless
// of host scheduling.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "arch/arch.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"
#include "util/clock.hpp"
#include "util/mutex.hpp"
#include "util/queue.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace npss::sim {

struct Machine {
  std::string name;
  const arch::ArchDescriptor* arch = nullptr;
  std::string site;
};

struct Envelope {
  std::string from;
  std::string to;
  util::SimTime stamp = 0;
  util::Bytes payload;
};

class Cluster;

/// A process's communication end: mailbox + virtual clock on a machine.
class Endpoint {
 public:
  Endpoint(const Machine& machine, std::string address)
      : machine_(&machine), address_(std::move(address)) {}

  const std::string& address() const { return address_; }
  const Machine& machine() const { return *machine_; }
  const arch::ArchDescriptor& arch() const { return *machine_->arch; }
  util::VirtualClock& clock() { return clock_; }

  /// Blocking receive; joins the clock with the envelope stamp.
  /// Returns nullopt once the endpoint is closed and drained.
  std::optional<Envelope> receive() {
    auto env = inbox_.pop();
    if (env) clock_.join(env->stamp);
    return env;
  }

  std::optional<Envelope> try_receive() {
    auto env = inbox_.try_pop();
    if (env) clock_.join(env->stamp);
    return env;
  }

  /// Receive bounded by *host* time — the detection mechanism behind call
  /// deadlines: a dropped frame means the matching reply will never
  /// arrive, and the host-side wait is how the caller notices. Returns
  /// nullopt on timeout or once closed and drained (check closed()).
  std::optional<Envelope> receive_for(std::chrono::milliseconds timeout) {
    auto env = inbox_.pop_for(timeout);
    if (env) clock_.join(env->stamp);
    return env;
  }

  void close() { inbox_.close(); }
  bool closed() const { return inbox_.closed(); }

 private:
  friend class Cluster;
  const Machine* machine_;
  std::string address_;
  util::VirtualClock clock_;
  util::BlockingQueue<Envelope> inbox_;
};

using EndpointPtr = std::shared_ptr<Endpoint>;

/// Execution context handed to a spawned program image.
class ProcessContext {
 public:
  ProcessContext(Cluster& cluster, EndpointPtr self,
                 std::vector<std::string> args)
      : cluster_(&cluster), self_(std::move(self)), args_(std::move(args)) {}

  Cluster& cluster() { return *cluster_; }
  Endpoint& self() { return *self_; }
  EndpointPtr self_ptr() { return self_; }
  const std::vector<std::string>& args() const { return args_; }

  /// Account `microseconds` of work at a reference machine's speed; the
  /// clock advances scaled by this machine's relative CPU speed.
  void compute(double microseconds);

  void send(const std::string& to, util::Bytes payload);

 private:
  Cluster* cluster_;
  EndpointPtr self_;
  std::vector<std::string> args_;
};

using ProgramImage = std::function<void(ProcessContext&)>;

class Cluster {
 public:
  Cluster();
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Topology ---------------------------------------------------------
  Machine& add_machine(const std::string& name, const std::string& arch_key,
                       const std::string& site);
  const Machine& machine(const std::string& name) const;
  bool has_machine(const std::string& name) const;
  std::vector<std::string> machine_names() const;

  /// Route between two sites (both directions).
  void set_site_link(const std::string& site_a, const std::string& site_b,
                     const LinkProfile& profile);

  /// Take a site pair's link down (sends fail with NoRouteError) or bring
  /// it back up — WAN outages were a fact of life on the 1993 Internet.
  void set_link_up(const std::string& site_a, const std::string& site_b,
                   bool up);
  /// Link used between distinct machines of the same site.
  void set_intra_site_link(const LinkProfile& profile);
  /// Link used between processes on the same machine.
  void set_intra_machine_link(const LinkProfile& profile);

  /// The link profile a frame between these machines would ride. By
  /// value: the routing table may be reconfigured (set_link,
  /// set_link_up) while senders are in flight, so a reference into it
  /// would be read off-lock.
  LinkProfile route(const Machine& from, const Machine& to) const;

  // --- Program images (simulated executables) ----------------------------
  void install_image(const std::string& machine, const std::string& path,
                     ProgramImage image);
  bool has_image(const std::string& machine, const std::string& path) const;

  // --- Processes ----------------------------------------------------------
  /// A mailbox for a caller-driven participant (no thread is spawned); the
  /// caller runs its own logic and receives on the returned endpoint.
  EndpointPtr create_endpoint(const std::string& machine,
                              const std::string& label);

  /// Spawn `image` as a process (host thread) on `machine`.
  EndpointPtr spawn(const std::string& machine, const std::string& label,
                    ProgramImage image, std::vector<std::string> args = {});

  /// Spawn an installed image by path. Throws util::NoSuchImageError if the
  /// path is not installed on that machine.
  EndpointPtr spawn_image(const std::string& machine, const std::string& path,
                          const std::string& label,
                          std::vector<std::string> args = {});

  /// Remove an endpoint from the address space (its queue is closed; late
  /// sends to the address fail). Idempotent.
  void retire_endpoint(const std::string& address);

  /// Kill a process without any protocol goodbye: the mailbox closes,
  /// queued traffic is lost, in-flight callers see NoRouteError on their
  /// next send and silence on their current wait — the Server-crash event
  /// the fault-tolerant call path must survive. Idempotent.
  void crash_process(const std::string& address);

  /// Crash every process whose endpoint lives on `machine` (a whole-host
  /// failure). Returns the number of processes killed.
  int crash_machine(const std::string& machine);

  bool endpoint_alive(const std::string& address) const;

  // --- Messaging ----------------------------------------------------------
  /// Deliver `payload` from `from` to the endpoint at `to`. Throws
  /// util::NoRouteError if the destination does not exist (any more) —
  /// the signal the Schooner client runtime turns into stale-binding
  /// recovery. Also advances the sender's clock by the send overhead.
  void send(Endpoint& from, const std::string& to, util::Bytes payload);

  /// Close every endpoint and join all process threads.
  void shutdown();

  // --- Accounting ---------------------------------------------------------
  struct Traffic {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
  };
  /// Total traffic, and per link-profile-name traffic.
  Traffic traffic() const;
  std::map<std::string, Traffic> traffic_by_link() const;
  void reset_traffic();

  // --- Fault injection ----------------------------------------------------
  /// Network partition: frames between any machine in `group_a` and any
  /// machine in `group_b` are *silently dropped* — exactly what a real
  /// partition looks like to the endpoints (no error, just silence), so
  /// peers only notice through missing heartbeats and timed-out waits.
  /// Partitions stack; machines absent from both groups keep full
  /// connectivity. Throws NoSuchMachineError on unknown names.
  void partition(const std::vector<std::string>& group_a,
                 const std::vector<std::string>& group_b);
  /// Remove every partition (links resume instantly).
  void heal();
  /// Frames swallowed by partitions so far.
  std::uint64_t partition_drops() const;

  /// Seed the deterministic fault schedule (resets schedule positions).
  void set_fault_seed(std::uint64_t seed);
  /// Inject faults on every frame carried by the named link profile.
  void set_link_faults(const std::string& link_name, const FaultSpec& spec);
  void clear_faults();
  FaultInjector::Stats fault_stats() const;
  /// Crashes delivered through crash_process()/crash_machine() so far.
  std::uint64_t crashes() const;

 private:
  /// One coarse lock over all cluster state. Standalone in the lock
  /// hierarchy except for the util.Logger / obs.Registry leaves taken by
  /// logging and drop accounting; critically, send() never holds it
  /// while pushing into an endpoint's inbox (a BlockingQueue with its
  /// own lock), so delivery cannot order sim.Cluster against mailbox
  /// waits (lock_hierarchy.md).
  mutable util::Mutex mu_{"sim.Cluster"};
  std::map<std::string, Machine> machines_ SCHOONER_GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, LinkProfile> site_links_
      SCHOONER_GUARDED_BY(mu_);
  std::set<std::pair<std::string, std::string>> links_down_
      SCHOONER_GUARDED_BY(mu_);
  LinkProfile intra_site_ SCHOONER_GUARDED_BY(mu_);
  LinkProfile intra_machine_ SCHOONER_GUARDED_BY(mu_);
  std::unordered_map<std::string, EndpointPtr> endpoints_
      SCHOONER_GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, ProgramImage> images_
      SCHOONER_GUARDED_BY(mu_);
  std::vector<std::jthread> threads_ SCHOONER_GUARDED_BY(mu_);
  std::uint64_t next_pid_ SCHOONER_GUARDED_BY(mu_) = 1;
  Traffic traffic_ SCHOONER_GUARDED_BY(mu_);
  std::map<std::string, Traffic> traffic_by_link_ SCHOONER_GUARDED_BY(mu_);
  FaultInjector faults_ SCHOONER_GUARDED_BY(mu_);
  std::uint64_t crashes_ SCHOONER_GUARDED_BY(mu_) = 0;
  /// Active partitions as (group_a, group_b) machine-name sets.
  std::vector<std::pair<std::set<std::string>, std::set<std::string>>>
      partitions_ SCHOONER_GUARDED_BY(mu_);
  std::uint64_t partition_drops_ SCHOONER_GUARDED_BY(mu_) = 0;
};

}  // namespace npss::sim
