#include "sim/cluster.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace npss::sim {

using util::NoRouteError;
using util::NoSuchImageError;
using util::NoSuchMachineError;

void ProcessContext::compute(double microseconds) {
  const double speed = self_->arch().cpu_speed;
  self_->clock().advance(
      static_cast<util::SimTime>(microseconds / std::max(speed, 1e-6)));
}

void ProcessContext::send(const std::string& to, util::Bytes payload) {
  cluster_->send(*self_, to, std::move(payload));
}

Cluster::Cluster()
    : intra_site_(link_profile("ethernet-lan")),
      intra_machine_(link_profile("loopback")) {}

Cluster::~Cluster() { shutdown(); }

Machine& Cluster::add_machine(const std::string& name,
                              const std::string& arch_key,
                              const std::string& site) {
  util::MutexLock lock(mu_);
  auto [it, inserted] = machines_.try_emplace(
      name, Machine{name, &arch::arch_catalog(arch_key), site});
  if (!inserted) {
    throw NoSuchMachineError("machine '" + name + "' already exists");
  }
  return it->second;
}

const Machine& Cluster::machine(const std::string& name) const {
  util::MutexLock lock(mu_);
  auto it = machines_.find(name);
  if (it == machines_.end()) {
    throw NoSuchMachineError("unknown machine '" + name + "'");
  }
  return it->second;
}

bool Cluster::has_machine(const std::string& name) const {
  util::MutexLock lock(mu_);
  return machines_.contains(name);
}

std::vector<std::string> Cluster::machine_names() const {
  util::MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(machines_.size());
  for (const auto& [name, m] : machines_) names.push_back(name);
  return names;
}

void Cluster::set_site_link(const std::string& site_a,
                            const std::string& site_b,
                            const LinkProfile& profile) {
  util::MutexLock lock(mu_);
  site_links_[{std::min(site_a, site_b), std::max(site_a, site_b)}] = profile;
}

void Cluster::set_link_up(const std::string& site_a,
                          const std::string& site_b, bool up) {
  util::MutexLock lock(mu_);
  auto key = std::make_pair(std::min(site_a, site_b),
                            std::max(site_a, site_b));
  if (up) {
    links_down_.erase(key);
  } else {
    links_down_.insert(key);
  }
}

void Cluster::set_intra_site_link(const LinkProfile& profile) {
  util::MutexLock lock(mu_);
  intra_site_ = profile;
}

void Cluster::set_intra_machine_link(const LinkProfile& profile) {
  util::MutexLock lock(mu_);
  intra_machine_ = profile;
}

LinkProfile Cluster::route(const Machine& from, const Machine& to) const {
  util::MutexLock lock(mu_);
  if (from.name == to.name) return intra_machine_;
  if (from.site == to.site) return intra_site_;
  auto key = std::make_pair(std::min(from.site, to.site),
                            std::max(from.site, to.site));
  if (links_down_.contains(key)) {
    throw NoRouteError("link between sites '" + from.site + "' and '" +
                       to.site + "' is down");
  }
  auto it = site_links_.find(key);
  if (it == site_links_.end()) {
    throw NoRouteError("no link configured between sites '" + from.site +
                       "' and '" + to.site + "'");
  }
  return it->second;
}

void Cluster::install_image(const std::string& machine,
                            const std::string& path, ProgramImage image) {
  util::MutexLock lock(mu_);
  if (!machines_.contains(machine)) {
    throw NoSuchMachineError("install_image: unknown machine '" + machine +
                             "'");
  }
  images_[{machine, path}] = std::move(image);
}

bool Cluster::has_image(const std::string& machine,
                        const std::string& path) const {
  util::MutexLock lock(mu_);
  return images_.contains({machine, path});
}

EndpointPtr Cluster::create_endpoint(const std::string& machine,
                                     const std::string& label) {
  util::MutexLock lock(mu_);
  auto it = machines_.find(machine);
  if (it == machines_.end()) {
    throw NoSuchMachineError("create_endpoint: unknown machine '" + machine +
                             "'");
  }
  std::string address =
      machine + "/" + label + "#" + std::to_string(next_pid_++);
  auto ep = std::make_shared<Endpoint>(it->second, address);
  endpoints_[address] = ep;
  return ep;
}

EndpointPtr Cluster::spawn(const std::string& machine,
                           const std::string& label, ProgramImage image,
                           std::vector<std::string> args) {
  EndpointPtr ep = create_endpoint(machine, label);
  {
    util::MutexLock lock(mu_);
    threads_.emplace_back([this, ep, image = std::move(image),
                           args = std::move(args)]() mutable {
      ProcessContext ctx(*this, ep, std::move(args));
      try {
        image(ctx);
      } catch (const std::exception& e) {
        NPSS_LOG_ERROR("sim", "process ", ep->address(),
                       " died with exception: ", e.what());
      }
      retire_endpoint(ep->address());
    });
  }
  return ep;
}

EndpointPtr Cluster::spawn_image(const std::string& machine,
                                 const std::string& path,
                                 const std::string& label,
                                 std::vector<std::string> args) {
  ProgramImage image;
  {
    util::MutexLock lock(mu_);
    auto it = images_.find({machine, path});
    if (it == images_.end()) {
      throw NoSuchImageError("no executable '" + path + "' on machine '" +
                             machine + "'");
    }
    image = it->second;
  }
  return spawn(machine, label, std::move(image), std::move(args));
}

void Cluster::retire_endpoint(const std::string& address) {
  EndpointPtr ep;
  {
    util::MutexLock lock(mu_);
    auto it = endpoints_.find(address);
    if (it == endpoints_.end()) return;
    ep = it->second;
    endpoints_.erase(it);
  }
  ep->close();
}

void Cluster::crash_process(const std::string& address) {
  {
    util::MutexLock lock(mu_);
    if (!endpoints_.contains(address)) return;
    ++crashes_;
  }
  NPSS_LOG_WARN("sim", "crash injected: process ", address, " killed");
  if (obs::enabled()) {
    obs::Registry::global().counter("sim.fault.crashes").add();
  }
  retire_endpoint(address);
}

int Cluster::crash_machine(const std::string& machine) {
  std::vector<std::string> victims;
  {
    util::MutexLock lock(mu_);
    for (const auto& [addr, ep] : endpoints_) {
      if (ep->machine().name == machine) victims.push_back(addr);
    }
  }
  for (const std::string& addr : victims) crash_process(addr);
  return static_cast<int>(victims.size());
}

bool Cluster::endpoint_alive(const std::string& address) const {
  util::MutexLock lock(mu_);
  return endpoints_.contains(address);
}

void Cluster::send(Endpoint& from, const std::string& to,
                   util::Bytes payload) {
  EndpointPtr dest;
  {
    util::MutexLock lock(mu_);
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      throw NoRouteError("no endpoint at address '" + to + "'");
    }
    dest = it->second;
  }
  // By value: the profile is read outside the lock below, and the
  // routing table may be reconfigured concurrently.
  const LinkProfile link = route(from.machine(), dest->machine());
  const std::size_t size = payload.size();
  util::SimTime stamp = from.clock().now() + link.transfer_time(size);
  FaultAction action = FaultAction::kDeliver;
  {
    util::MutexLock lock(mu_);
    // A partition swallows the frame silently: the sender gets no error
    // (unlike a link taken down), the receiver gets nothing — peers can
    // only notice through heartbeat/reply timeouts.
    for (const auto& [group_a, group_b] : partitions_) {
      const std::string& fm = from.machine().name;
      const std::string& tm = dest->machine().name;
      if ((group_a.contains(fm) && group_b.contains(tm)) ||
          (group_b.contains(fm) && group_a.contains(tm))) {
        ++partition_drops_;
        NPSS_LOG_DEBUG("sim", from.address(), " -> ", to,
                       " DROPPED by partition");
        if (obs::enabled()) {
          obs::Registry::global().counter("sim.fault.partition_drop").add();
        }
        return;
      }
    }
    ++traffic_.messages;
    traffic_.bytes += size;
    Traffic& per_link = traffic_by_link_[link.name];
    ++per_link.messages;
    per_link.bytes += size;
    if (faults_.active()) {
      util::SimTime extra = 0;
      action = faults_.next(link.name, &extra);
      if (action == FaultAction::kDelay) stamp += extra;
    }
  }
  if (action != FaultAction::kDeliver && obs::enabled()) {
    obs::Registry::global()
        .counter(std::string("sim.fault.") +
                 std::string(fault_action_name(action)))
        .add();
  }
  if (action == FaultAction::kDrop) {
    // The frame vanishes on the wire: the sender paid the send, the
    // receiver never hears about it. Callers recover via deadlines.
    NPSS_LOG_DEBUG("sim", from.address(), " -> ", to, " DROPPED on ",
                   link.name);
    return;
  }
  NPSS_LOG_TRACE("sim", from.address(), " -> ", to, " (", size, " bytes via ",
                 link.name, ")");
  if (action == FaultAction::kDuplicate) {
    dest->inbox_.push(Envelope{from.address(), to, stamp, payload});
  }
  if (!dest->inbox_.push(
          Envelope{from.address(), to, stamp, std::move(payload)})) {
    throw NoRouteError("endpoint '" + to + "' is closed");
  }
}

void Cluster::shutdown() {
  std::unordered_map<std::string, EndpointPtr> eps;
  std::vector<std::jthread> threads;
  {
    util::MutexLock lock(mu_);
    eps.swap(endpoints_);
    threads.swap(threads_);
  }
  for (auto& [addr, ep] : eps) ep->close();
  threads.clear();  // jthread joins on destruction
}

Cluster::Traffic Cluster::traffic() const {
  util::MutexLock lock(mu_);
  return traffic_;
}

std::map<std::string, Cluster::Traffic> Cluster::traffic_by_link() const {
  util::MutexLock lock(mu_);
  return traffic_by_link_;
}

void Cluster::reset_traffic() {
  util::MutexLock lock(mu_);
  traffic_ = {};
  traffic_by_link_.clear();
}

void Cluster::partition(const std::vector<std::string>& group_a,
                        const std::vector<std::string>& group_b) {
  util::MutexLock lock(mu_);
  std::set<std::string> a, b;
  for (const std::string& name : group_a) {
    if (!machines_.contains(name)) {
      throw NoSuchMachineError("partition: unknown machine '" + name + "'");
    }
    a.insert(name);
  }
  for (const std::string& name : group_b) {
    if (!machines_.contains(name)) {
      throw NoSuchMachineError("partition: unknown machine '" + name + "'");
    }
    b.insert(name);
  }
  NPSS_LOG_WARN("sim", "partition injected: ", a.size(), " machine(s) | ",
                b.size(), " machine(s)");
  partitions_.emplace_back(std::move(a), std::move(b));
}

void Cluster::heal() {
  util::MutexLock lock(mu_);
  if (!partitions_.empty()) {
    NPSS_LOG_WARN("sim", "partitions healed (", partitions_.size(),
                  " removed)");
  }
  partitions_.clear();
}

std::uint64_t Cluster::partition_drops() const {
  util::MutexLock lock(mu_);
  return partition_drops_;
}

void Cluster::set_fault_seed(std::uint64_t seed) {
  util::MutexLock lock(mu_);
  faults_.set_seed(seed);
}

void Cluster::set_link_faults(const std::string& link_name,
                              const FaultSpec& spec) {
  util::MutexLock lock(mu_);
  faults_.set_link_faults(link_name, spec);
}

void Cluster::clear_faults() {
  util::MutexLock lock(mu_);
  faults_.clear();
  faults_.reset_stats();
}

FaultInjector::Stats Cluster::fault_stats() const {
  util::MutexLock lock(mu_);
  return faults_.stats();
}

std::uint64_t Cluster::crashes() const {
  util::MutexLock lock(mu_);
  return crashes_;
}

}  // namespace npss::sim
