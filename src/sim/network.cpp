#include "sim/network.hpp"

#include <array>

namespace npss::sim {

namespace {

const std::array<LinkProfile, 4>& catalog() {
  static const std::array<LinkProfile, 4> profiles = {{
      // Same machine: kernel loopback.
      {"loopback", 50, 40.0, 0, 0},
      // Shared 10 Mbit Ethernet segment, early-90s UDP/TCP stacks.
      {"ethernet-lan", 700, 1.25, 0, 0},
      // "Same building, multiple gateways" (Table 1): campus backbone
      // crossing several routers at 4 Mbit effective.
      {"campus-multigateway", 2500, 0.5, 3, 400},
      // NSFNET-era WAN path, LeRC (Cleveland) <-> U. Arizona (Tucson):
      // tens of ms propagation, sub-T1 effective throughput, many hops.
      {"internet-wan", 35000, 0.04, 8, 1000},
  }};
  return profiles;
}

}  // namespace

const LinkProfile& link_profile(std::string_view key) {
  for (const LinkProfile& p : catalog()) {
    if (p.name == key) return p;
  }
  throw util::NoRouteError("unknown link profile '" + std::string(key) + "'");
}

std::vector<std::string> link_profile_keys() {
  std::vector<std::string> keys;
  for (const LinkProfile& p : catalog()) keys.push_back(p.name);
  return keys;
}

}  // namespace npss::sim
