#include "sim/network.hpp"

#include <array>

namespace npss::sim {

namespace {

const std::array<LinkProfile, 4>& catalog() {
  static const std::array<LinkProfile, 4> profiles = {{
      // Same machine: kernel loopback.
      {"loopback", 50, 40.0, 0, 0},
      // Shared 10 Mbit Ethernet segment, early-90s UDP/TCP stacks.
      {"ethernet-lan", 700, 1.25, 0, 0},
      // "Same building, multiple gateways" (Table 1): campus backbone
      // crossing several routers at 4 Mbit effective.
      {"campus-multigateway", 2500, 0.5, 3, 400},
      // NSFNET-era WAN path, LeRC (Cleveland) <-> U. Arizona (Tucson):
      // tens of ms propagation, sub-T1 effective throughput, many hops.
      {"internet-wan", 35000, 0.04, 8, 1000},
  }};
  return profiles;
}

}  // namespace

const LinkProfile& link_profile(std::string_view key) {
  for (const LinkProfile& p : catalog()) {
    if (p.name == key) return p;
  }
  throw util::NoRouteError("unknown link profile '" + std::string(key) + "'");
}

std::vector<std::string> link_profile_keys() {
  std::vector<std::string> keys;
  for (const LinkProfile& p : catalog()) keys.push_back(p.name);
  return keys;
}

std::string_view fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kDeliver: return "deliver";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kDuplicate: return "duplicate";
    case FaultAction::kDelay: return "delay";
  }
  return "?";
}

namespace {

// SplitMix64: decision i on link L is hash(seed, L, i) — no stored RNG
// state, so lookahead and replay are trivially consistent.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

double uniform01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

FaultAction classify(const FaultSpec& spec, double u) {
  if (u < spec.drop_rate) return FaultAction::kDrop;
  u -= spec.drop_rate;
  if (u < spec.duplicate_rate) return FaultAction::kDuplicate;
  u -= spec.duplicate_rate;
  if (u < spec.delay_rate) return FaultAction::kDelay;
  return FaultAction::kDeliver;
}

}  // namespace

void FaultInjector::set_seed(std::uint64_t seed) {
  seed_ = seed;
  position_.clear();
}

void FaultInjector::set_link_faults(const std::string& link_name,
                                    const FaultSpec& spec) {
  if (spec.active()) {
    specs_[link_name] = spec;
  } else {
    specs_.erase(link_name);
  }
}

void FaultInjector::clear() {
  specs_.clear();
  position_.clear();
}

FaultAction FaultInjector::decision_at(const std::string& link_name,
                                       std::uint64_t index) const {
  auto it = specs_.find(link_name);
  if (it == specs_.end()) return FaultAction::kDeliver;
  const std::uint64_t bits = mix64(seed_ ^ hash_name(link_name) ^
                                   mix64(index));
  return classify(it->second, uniform01(bits));
}

FaultAction FaultInjector::next(const std::string& link_name,
                                util::SimTime* delay_us) {
  auto it = specs_.find(link_name);
  if (it == specs_.end()) {
    ++stats_.delivered;
    return FaultAction::kDeliver;
  }
  const std::uint64_t index = position_[link_name]++;
  const FaultAction action = decision_at(link_name, index);
  switch (action) {
    case FaultAction::kDeliver: ++stats_.delivered; break;
    case FaultAction::kDrop: ++stats_.dropped; break;
    case FaultAction::kDuplicate: ++stats_.duplicated; break;
    case FaultAction::kDelay:
      ++stats_.delayed;
      if (delay_us) *delay_us = it->second.delay_us;
      break;
  }
  return action;
}

}  // namespace npss::sim
