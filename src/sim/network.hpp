// Network link models for the virtual cluster.
//
// Table 1's three connectivity classes are modeled as link profiles with
// one-way latency, bandwidth, and gateway hop cost. The absolute numbers
// are calibrated to early-1990s practice (10 Mbit shared Ethernet; campus
// backbones crossing several routers; NSFNET-era WAN paths between Ohio and
// Arizona); the *ordering* — lan << campus << wan, with WAN cost dominated
// by latency for TESS-sized payloads — is what the T1/A7 benches must
// reproduce.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace npss::sim {

struct LinkProfile {
  std::string name;
  util::SimTime latency_us = 0;     ///< one-way propagation + stack latency
  double bytes_per_us = 1.0;        ///< effective bandwidth
  int gateways = 0;                 ///< store-and-forward hops
  util::SimTime per_gateway_us = 0; ///< added per hop

  /// One-way transfer time for a payload of `bytes`.
  util::SimTime transfer_time(std::size_t bytes) const {
    return latency_us +
           static_cast<util::SimTime>(gateways) * per_gateway_us +
           static_cast<util::SimTime>(static_cast<double>(bytes) /
                                      bytes_per_us);
  }
};

/// Profile catalog. Keys: "loopback", "ethernet-lan",
/// "campus-multigateway", "internet-wan". Throws util::NoRouteError on
/// unknown keys.
const LinkProfile& link_profile(std::string_view key);

std::vector<std::string> link_profile_keys();

// --- Fault injection ---------------------------------------------------------
//
// The paper's testbed ran over a 1993 campus backbone and the NSFNET —
// links that dropped, duplicated, and delayed frames as a matter of
// course. A FaultSpec attaches those behaviours to a LinkProfile (keyed
// by profile name); the FaultInjector turns them into a *deterministic*
// schedule: decision i for link L under seed S is a pure function of
// (S, L, i), so two runs with the same seed and the same per-link send
// order face the identical fault sequence.

/// What can happen to one frame on a faulty link.
enum class FaultAction : std::uint8_t {
  kDeliver = 0,  ///< frame passes untouched
  kDrop,         ///< frame vanishes (sender keeps waiting)
  kDuplicate,    ///< frame arrives twice
  kDelay,        ///< frame arrives late by FaultSpec::delay_us
};

std::string_view fault_action_name(FaultAction action);

/// Per-link fault rates. Rates are probabilities in [0,1] evaluated in
/// order drop -> duplicate -> delay over one uniform draw, so their sum
/// should stay <= 1.
struct FaultSpec {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  util::SimTime delay_us = 0;  ///< added to the stamp when delayed

  bool active() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0;
  }
};

/// Deterministic, seeded per-link fault schedule. Thread-compatible but
/// not thread-safe: the Cluster consults it under its own lock.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0) : seed_(seed) {}

  void set_seed(std::uint64_t seed);
  std::uint64_t seed() const { return seed_; }

  /// Attach `spec` to every frame carried by the named link profile.
  void set_link_faults(const std::string& link_name, const FaultSpec& spec);
  void clear();
  bool active() const { return !specs_.empty(); }

  /// Decide the fate of the next frame on `link_name`, advancing that
  /// link's schedule position. `delay_us` receives the extra stamp delay
  /// for kDelay decisions.
  FaultAction next(const std::string& link_name, util::SimTime* delay_us);

  /// Pure lookahead used by determinism tests: the decision the injector
  /// would make at schedule position `index` of `link_name`, without
  /// advancing anything.
  FaultAction decision_at(const std::string& link_name,
                          std::uint64_t index) const;

  struct Stats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  std::uint64_t seed_ = 0;
  std::map<std::string, FaultSpec> specs_;
  std::map<std::string, std::uint64_t> position_;
  Stats stats_;
};

}  // namespace npss::sim
