// Network link models for the virtual cluster.
//
// Table 1's three connectivity classes are modeled as link profiles with
// one-way latency, bandwidth, and gateway hop cost. The absolute numbers
// are calibrated to early-1990s practice (10 Mbit shared Ethernet; campus
// backbones crossing several routers; NSFNET-era WAN paths between Ohio and
// Arizona); the *ordering* — lan << campus << wan, with WAN cost dominated
// by latency for TESS-sized payloads — is what the T1/A7 benches must
// reproduce.
#pragma once

#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace npss::sim {

struct LinkProfile {
  std::string name;
  util::SimTime latency_us = 0;     ///< one-way propagation + stack latency
  double bytes_per_us = 1.0;        ///< effective bandwidth
  int gateways = 0;                 ///< store-and-forward hops
  util::SimTime per_gateway_us = 0; ///< added per hop

  /// One-way transfer time for a payload of `bytes`.
  util::SimTime transfer_time(std::size_t bytes) const {
    return latency_us +
           static_cast<util::SimTime>(gateways) * per_gateway_us +
           static_cast<util::SimTime>(static_cast<double>(bytes) /
                                      bytes_per_us);
  }
};

/// Profile catalog. Keys: "loopback", "ethernet-lan",
/// "campus-multigateway", "internet-wan". Throws util::NoRouteError on
/// unknown keys.
const LinkProfile& link_profile(std::string_view key);

std::vector<std::string> link_profile_keys();

}  // namespace npss::sim
