// Byte-accurate floating point formats of the machines in the paper's
// testbed (Table 1/2). These are real encodings, not tags: values round-trip
// through the actual bit layouts, so the heterogeneity problems the paper
// reports — notably Cray magnitudes exceeding the IEEE range used by UTS —
// arise here for the same structural reasons they arose at NASA Lewis.
//
// Formats:
//   IEEE-754 binary32 / binary64       (Sun, SGI, IBM RS6000, Convex native
//                                       IEEE mode, Intel i860)
//   Cray-1/YMP 64-bit single           1 sign, 15-bit exponent biased
//                                      040000(8)=16384, 48-bit mantissa with
//                                      explicit leading bit; value =
//                                      (-1)^s * 0.m * 2^(e-16384). Exponent
//                                      range ±8192 vastly exceeds binary64.
//   IBM System/370 hexadecimal (HFP)   1 sign, 7-bit exponent biased 64,
//                                      base-16; 24-bit (short) or 56-bit
//                                      (long) fraction; value =
//                                      (-1)^s * 0.f * 16^(e-64). Max ≈
//                                      7.2e75, far below binary64 max.
//
// Encoding a double that does not fit the target format, or decoding a
// stored value that does not fit binary64, throws util::RangeError — the
// policy the paper chose over silently mapping to IEEE infinity (§4.1).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace npss::arch {

enum class FloatFormatKind : std::uint8_t {
  kIeee32 = 0,
  kIeee64,
  kCray64,
  kIbmHex32,
  kIbmHex64,
};

std::string_view float_format_name(FloatFormatKind kind);

/// Storage width in bytes of a format.
std::size_t float_format_width(FloatFormatKind kind);

/// Encode a binary64 host value into the format's canonical big-endian word.
/// Throws util::RangeError if |value| overflows the target format; values
/// below the target's smallest normal magnitude flush to zero (the behaviour
/// of the original hardware for Cray, and of the UTS conversion library).
util::Bytes float_encode(FloatFormatKind kind, double value);

/// Decode a big-endian word in the given format back to binary64.
/// Throws util::RangeError if the stored magnitude exceeds binary64 range
/// (possible for Cray64) and util::EncodingError on malformed input size.
double float_decode(FloatFormatKind kind, std::span<const std::uint8_t> word);

/// True if every finite value of `from` is representable (to within
/// rounding) as a finite value of `to`.
bool float_range_subsumes(FloatFormatKind to, FloatFormatKind from);

/// Relative rounding error bound (units in the last place expressed as an
/// absolute relative epsilon) when a binary64 value passes through `kind`.
double float_format_epsilon(FloatFormatKind kind);

// --- Cray-specific helpers used by tests and the Table A1 ablation -------

/// Assemble a raw Cray64 word from parts. `exponent` is the biased 15-bit
/// exponent, `mantissa` the 48-bit mantissa (normalized iff bit 47 set).
util::Bytes cray_word_from_parts(bool negative, std::uint32_t exponent,
                                 std::uint64_t mantissa);

/// A Cray word whose magnitude exceeds binary64 range; decoding it must
/// throw util::RangeError per the paper's chosen policy.
util::Bytes cray_out_of_range_word();

}  // namespace npss::arch
