// Simulated machine architectures.
//
// An ArchDescriptor captures everything that made the paper's testbed
// heterogeneous at the data level: native float formats for the Fortran/C
// REAL and DOUBLE PRECISION types, native integer width, byte order, the
// Fortran compiler's external-name case convention (upper on the Cray,
// lower elsewhere — the source of the §4.1 naming problem), and a relative
// CPU speed used to scale simulated compute time in the benches.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "arch/float_format.hpp"
#include "util/bytes.hpp"

namespace npss::arch {

enum class Endianness : std::uint8_t { kBig = 0, kLittle };

enum class NameCase : std::uint8_t { kLower = 0, kUpper };

struct ArchDescriptor {
  std::string name;                 ///< catalog key, e.g. "cray-ymp"
  std::string description;          ///< human-readable model name
  FloatFormatKind float_single;     ///< native single-precision format
  FloatFormatKind float_double;     ///< native double-precision format
  std::size_t int_width;            ///< native INTEGER width in bytes (4/8)
  Endianness endianness;            ///< native byte order
  NameCase fortran_case;            ///< Fortran external-name convention
  double cpu_speed;                 ///< throughput relative to a Sparc 10

  bool ieee() const {
    return float_double == FloatFormatKind::kIeee64 &&
           float_single != FloatFormatKind::kCray64;
  }
};

/// Apply the architecture's Fortran external-name convention to a symbol.
std::string fortran_external_name(const ArchDescriptor& arch,
                                  std::string_view name);

/// Reorder a big-endian word image into the architecture's native byte
/// order (and back — the operation is an involution).
util::Bytes to_native_order(const ArchDescriptor& arch,
                            std::span<const std::uint8_t> big_endian_word);

// --- Native value images --------------------------------------------------
// These produce / consume the bytes exactly as they would sit in the
// simulated machine's memory, i.e. in its own float format and byte order.

util::Bytes native_single(const ArchDescriptor& arch, double value);
util::Bytes native_double(const ArchDescriptor& arch, double value);
util::Bytes native_integer(const ArchDescriptor& arch, std::int64_t value);

double read_native_single(const ArchDescriptor& arch,
                          std::span<const std::uint8_t> image);
double read_native_double(const ArchDescriptor& arch,
                          std::span<const std::uint8_t> image);
std::int64_t read_native_integer(const ArchDescriptor& arch,
                                 std::span<const std::uint8_t> image);

// --- Catalog ---------------------------------------------------------------
// The machines named in the paper's Tables 1 and 2, plus the parallel
// machines its §2.2 mentions.

/// Look up a machine architecture by catalog key. Throws
/// util::NoSuchMachineError for unknown keys.
const ArchDescriptor& arch_catalog(std::string_view key);

/// All catalog keys (stable order).
std::vector<std::string> arch_catalog_keys();

}  // namespace npss::arch
