#include "arch/float_format.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace npss::arch {

namespace {

using util::Bytes;
using util::EncodingError;
using util::RangeError;

constexpr int kCrayBias = 16384;
constexpr int kCrayMantissaBits = 48;
constexpr int kIbmBias = 64;

void check_width(std::span<const std::uint8_t> word, std::size_t expected,
                 const char* what) {
  if (word.size() != expected) {
    throw EncodingError(std::string(what) + ": expected " +
                        std::to_string(expected) + " bytes, got " +
                        std::to_string(word.size()));
  }
}

Bytes be_bytes(std::uint64_t word, std::size_t width) {
  Bytes out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[i] = static_cast<std::uint8_t>(word >> (8 * (width - 1 - i)));
  }
  return out;
}

std::uint64_t be_word(std::span<const std::uint8_t> bytes) {
  std::uint64_t word = 0;
  for (std::uint8_t b : bytes) word = (word << 8) | b;
  return word;
}

Bytes encode_ieee64(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return be_bytes(bits, 8);
}

double decode_ieee64(std::span<const std::uint8_t> word) {
  check_width(word, 8, "ieee64");
  std::uint64_t bits = be_word(word);
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

Bytes encode_ieee32(double value) {
  if (std::isfinite(value) &&
      std::abs(value) > static_cast<double>(std::numeric_limits<float>::max())) {
    throw RangeError("value " + std::to_string(value) +
                     " overflows IEEE binary32");
  }
  float f = static_cast<float>(value);
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof bits);
  return be_bytes(bits, 4);
}

double decode_ieee32(std::span<const std::uint8_t> word) {
  check_width(word, 4, "ieee32");
  std::uint32_t bits = static_cast<std::uint32_t>(be_word(word));
  float value;
  std::memcpy(&value, &bits, sizeof value);
  return static_cast<double>(value);
}

Bytes encode_cray64(double value) {
  if (!std::isfinite(value)) {
    throw RangeError("Cray format has no representation for inf/nan");
  }
  if (value == 0.0) return Bytes(8, 0);
  bool negative = std::signbit(value);
  int exp2 = 0;
  double mant = std::frexp(std::abs(value), &exp2);  // mant in [0.5, 1)
  // Cray value = 0.m * 2^(e - bias) with the mantissa's top bit explicit,
  // so m in [0.5, 1) maps directly: mantissa = round(mant * 2^48).
  std::uint64_t mantissa = static_cast<std::uint64_t>(
      std::llround(std::ldexp(mant, kCrayMantissaBits)));
  if (mantissa >= (1ull << kCrayMantissaBits)) {
    mantissa >>= 1;
    ++exp2;
  }
  long biased = exp2 + kCrayBias;
  if (biased < 0) return Bytes(8, 0);  // underflow flushes to zero
  if (biased > 0x7fff) {
    throw RangeError("value overflows Cray 64-bit float");
  }
  std::uint64_t word = (static_cast<std::uint64_t>(negative) << 63) |
                       (static_cast<std::uint64_t>(biased) << 48) | mantissa;
  return be_bytes(word, 8);
}

double decode_cray64(std::span<const std::uint8_t> bytes) {
  check_width(bytes, 8, "cray64");
  std::uint64_t word = be_word(bytes);
  bool negative = (word >> 63) != 0;
  int biased = static_cast<int>((word >> 48) & 0x7fff);
  std::uint64_t mantissa = word & ((1ull << kCrayMantissaBits) - 1);
  if (mantissa == 0) return negative ? -0.0 : 0.0;
  // value = mantissa * 2^(biased - bias - 48); the 48-bit mantissa converts
  // to binary64 exactly (48 <= 53 significand bits).
  double value =
      std::ldexp(static_cast<double>(mantissa),
                 biased - kCrayBias - kCrayMantissaBits);
  if (std::isinf(value)) {
    // The magnitude fits Cray's 15-bit exponent but not binary64's 11-bit
    // one. Per the paper's policy this is an error, never a quiet infinity.
    throw RangeError(
        "Cray value magnitude exceeds IEEE binary64 range (biased exponent " +
        std::to_string(biased) + ")");
  }
  return negative ? -value : value;
}

Bytes encode_ibm_hex(double value, int frac_bits) {
  const std::size_t width = static_cast<std::size_t>(frac_bits) / 8 + 1;
  if (!std::isfinite(value)) {
    throw RangeError("IBM hexadecimal format has no representation for "
                     "inf/nan");
  }
  if (value == 0.0) return Bytes(width, 0);
  bool negative = std::signbit(value);
  int exp2 = 0;
  std::frexp(std::abs(value), &exp2);
  // Choose E with |v| = f * 16^E, f in [1/16, 1): E = ceil(exp2 / 4).
  int exp16 = (exp2 >= 0) ? (exp2 + 3) / 4 : -((-exp2) / 4);
  double fraction = std::abs(value) / std::ldexp(1.0, 4 * exp16);
  std::uint64_t frac_int = static_cast<std::uint64_t>(
      std::llround(std::ldexp(fraction, frac_bits)));
  if (frac_int >= (1ull << frac_bits)) {
    frac_int >>= 4;
    ++exp16;
  }
  int biased = exp16 + kIbmBias;
  if (biased < 0) return Bytes(width, 0);  // underflow flushes to zero
  if (biased > 0x7f) {
    throw RangeError("value overflows IBM hexadecimal float (16^" +
                     std::to_string(exp16) + ")");
  }
  std::uint64_t word = (static_cast<std::uint64_t>(negative) << (width * 8 - 1)) |
                       (static_cast<std::uint64_t>(biased) << frac_bits) |
                       frac_int;
  return be_bytes(word, width);
}

double decode_ibm_hex(std::span<const std::uint8_t> bytes, int frac_bits) {
  const std::size_t width = static_cast<std::size_t>(frac_bits) / 8 + 1;
  check_width(bytes, width, "ibm-hex");
  std::uint64_t word = be_word(bytes);
  bool negative = (word >> (width * 8 - 1)) != 0;
  int biased = static_cast<int>((word >> frac_bits) & 0x7f);
  std::uint64_t frac_int = word & ((1ull << frac_bits) - 1);
  if (frac_int == 0) return 0.0;
  // 56-bit long fractions exceed binary64's 53 significand bits; the
  // conversion rounds, which float_format_epsilon accounts for.
  double value = std::ldexp(static_cast<double>(frac_int),
                            4 * (biased - kIbmBias) - frac_bits);
  return negative ? -value : value;
}

/// Largest finite binary2 exponent of a format (2^N bound on magnitude).
int max_exp2(FloatFormatKind kind) {
  switch (kind) {
    case FloatFormatKind::kIeee32: return 128;
    case FloatFormatKind::kIeee64: return 1024;
    case FloatFormatKind::kCray64: return 8191;
    case FloatFormatKind::kIbmHex32:
    case FloatFormatKind::kIbmHex64: return 4 * 63;
  }
  return 0;
}

}  // namespace

std::string_view float_format_name(FloatFormatKind kind) {
  switch (kind) {
    case FloatFormatKind::kIeee32: return "ieee32";
    case FloatFormatKind::kIeee64: return "ieee64";
    case FloatFormatKind::kCray64: return "cray64";
    case FloatFormatKind::kIbmHex32: return "ibm-hex32";
    case FloatFormatKind::kIbmHex64: return "ibm-hex64";
  }
  return "?";
}

std::size_t float_format_width(FloatFormatKind kind) {
  switch (kind) {
    case FloatFormatKind::kIeee32: return 4;
    case FloatFormatKind::kIeee64: return 8;
    case FloatFormatKind::kCray64: return 8;
    case FloatFormatKind::kIbmHex32: return 4;
    case FloatFormatKind::kIbmHex64: return 8;
  }
  return 0;
}

util::Bytes float_encode(FloatFormatKind kind, double value) {
  switch (kind) {
    case FloatFormatKind::kIeee32: return encode_ieee32(value);
    case FloatFormatKind::kIeee64: return encode_ieee64(value);
    case FloatFormatKind::kCray64: return encode_cray64(value);
    case FloatFormatKind::kIbmHex32: return encode_ibm_hex(value, 24);
    case FloatFormatKind::kIbmHex64: return encode_ibm_hex(value, 56);
  }
  throw EncodingError("unknown float format");
}

double float_decode(FloatFormatKind kind,
                    std::span<const std::uint8_t> word) {
  switch (kind) {
    case FloatFormatKind::kIeee32: return decode_ieee32(word);
    case FloatFormatKind::kIeee64: return decode_ieee64(word);
    case FloatFormatKind::kCray64: return decode_cray64(word);
    case FloatFormatKind::kIbmHex32: return decode_ibm_hex(word, 24);
    case FloatFormatKind::kIbmHex64: return decode_ibm_hex(word, 56);
  }
  throw EncodingError("unknown float format");
}

bool float_range_subsumes(FloatFormatKind to, FloatFormatKind from) {
  return max_exp2(to) >= max_exp2(from);
}

double float_format_epsilon(FloatFormatKind kind) {
  switch (kind) {
    case FloatFormatKind::kIeee32: return std::ldexp(1.0, -23);
    case FloatFormatKind::kIeee64: return std::ldexp(1.0, -52);
    case FloatFormatKind::kCray64: return std::ldexp(1.0, -47);
    // Hex normalization can leave up to three leading zero bits.
    case FloatFormatKind::kIbmHex32: return std::ldexp(1.0, -20);
    case FloatFormatKind::kIbmHex64: return std::ldexp(1.0, -51);
  }
  return 1.0;
}

util::Bytes cray_word_from_parts(bool negative, std::uint32_t exponent,
                                 std::uint64_t mantissa) {
  std::uint64_t word = (static_cast<std::uint64_t>(negative) << 63) |
                       (static_cast<std::uint64_t>(exponent & 0x7fff) << 48) |
                       (mantissa & ((1ull << kCrayMantissaBits) - 1));
  return be_bytes(word, 8);
}

util::Bytes cray_out_of_range_word() {
  // Biased exponent 16384 + 2000 => magnitude ~2^2000, representable on the
  // Cray, far outside binary64.
  return cray_word_from_parts(false, kCrayBias + 2000,
                              1ull << (kCrayMantissaBits - 1));
}

}  // namespace npss::arch
