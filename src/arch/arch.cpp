#include "arch/arch.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <limits>

#include "util/status.hpp"

namespace npss::arch {

namespace {

using util::Bytes;
using util::RangeError;

const std::array<ArchDescriptor, 9>& catalog() {
  static const std::array<ArchDescriptor, 9> machines = {{
      // Workstations and servers from Table 1 / Table 2.
      {"sun-sparc10", "Sun SPARCstation 10", FloatFormatKind::kIeee32,
       FloatFormatKind::kIeee64, 4, Endianness::kBig, NameCase::kLower, 1.0},
      {"sgi-4d340", "SGI 4D/340", FloatFormatKind::kIeee32,
       FloatFormatKind::kIeee64, 4, Endianness::kBig, NameCase::kLower, 0.9},
      {"sgi-4d420", "SGI 4D/420", FloatFormatKind::kIeee32,
       FloatFormatKind::kIeee64, 4, Endianness::kBig, NameCase::kLower, 1.1},
      {"sgi-4d480", "SGI 4D/480", FloatFormatKind::kIeee32,
       FloatFormatKind::kIeee64, 4, Endianness::kBig, NameCase::kLower, 1.3},
      {"ibm-rs6000", "IBM RS/6000-550", FloatFormatKind::kIeee32,
       FloatFormatKind::kIeee64, 4, Endianness::kBig, NameCase::kLower, 1.5},
      // Vector machines. The Cray's single- and double-precision REAL are
      // both the 64-bit Cray word; its Fortran compiler upper-cases
      // external names (the §4.1 problem). The Convex C220 is modeled in
      // its IEEE compatibility mode.
      {"cray-ymp", "Cray Y-MP", FloatFormatKind::kCray64,
       FloatFormatKind::kCray64, 8, Endianness::kBig, NameCase::kUpper, 6.0},
      {"convex-c220", "Convex C220", FloatFormatKind::kIeee32,
       FloatFormatKind::kIeee64, 4, Endianness::kBig, NameCase::kLower, 2.5},
      // Parallel machines from §2.2; the i860 is little-endian-capable and
      // ran little-endian in the Intel iPSC/Delta systems.
      {"intel-i860", "Intel i860 node", FloatFormatKind::kIeee32,
       FloatFormatKind::kIeee64, 4, Endianness::kLittle, NameCase::kLower,
       0.8},
      // An IBM System/370-class host with hexadecimal floating point, kept
      // in the catalog to exercise a narrower-range target than IEEE.
      {"ibm-370", "IBM System/370", FloatFormatKind::kIbmHex32,
       FloatFormatKind::kIbmHex64, 4, Endianness::kBig, NameCase::kUpper,
       0.7},
  }};
  return machines;
}

}  // namespace

std::string fortran_external_name(const ArchDescriptor& arch,
                                  std::string_view name) {
  std::string out(name);
  if (arch.fortran_case == NameCase::kUpper) {
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::toupper(c); });
  } else {
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
  }
  return out;
}

util::Bytes to_native_order(const ArchDescriptor& arch,
                            std::span<const std::uint8_t> big_endian_word) {
  Bytes out(big_endian_word.begin(), big_endian_word.end());
  if (arch.endianness == Endianness::kLittle) {
    std::reverse(out.begin(), out.end());
  }
  return out;
}

util::Bytes native_single(const ArchDescriptor& arch, double value) {
  return to_native_order(arch, float_encode(arch.float_single, value));
}

util::Bytes native_double(const ArchDescriptor& arch, double value) {
  return to_native_order(arch, float_encode(arch.float_double, value));
}

util::Bytes native_integer(const ArchDescriptor& arch, std::int64_t value) {
  const std::size_t width = arch.int_width;
  if (width < 8) {
    const std::int64_t max = (std::int64_t{1} << (8 * width - 1)) - 1;
    const std::int64_t min = -max - 1;
    if (value < min || value > max) {
      throw RangeError("integer " + std::to_string(value) +
                       " overflows native " + std::to_string(width * 8) +
                       "-bit integer on " + arch.name);
    }
  }
  Bytes big(width);
  for (std::size_t i = 0; i < width; ++i) {
    big[i] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(value) >> (8 * (width - 1 - i)));
  }
  return to_native_order(arch, big);
}

double read_native_single(const ArchDescriptor& arch,
                          std::span<const std::uint8_t> image) {
  return float_decode(arch.float_single, to_native_order(arch, image));
}

double read_native_double(const ArchDescriptor& arch,
                          std::span<const std::uint8_t> image) {
  return float_decode(arch.float_double, to_native_order(arch, image));
}

std::int64_t read_native_integer(const ArchDescriptor& arch,
                                 std::span<const std::uint8_t> image) {
  Bytes big = to_native_order(arch, image);
  std::uint64_t raw = 0;
  for (std::uint8_t b : big) raw = (raw << 8) | b;
  const std::size_t bits = 8 * big.size();
  if (bits < 64 && (raw & (std::uint64_t{1} << (bits - 1)))) {
    raw |= ~std::uint64_t{0} << bits;  // sign-extend
  }
  return static_cast<std::int64_t>(raw);
}

const ArchDescriptor& arch_catalog(std::string_view key) {
  for (const ArchDescriptor& arch : catalog()) {
    if (arch.name == key) return arch;
  }
  throw util::NoSuchMachineError("unknown architecture '" + std::string(key) +
                                 "'");
}

std::vector<std::string> arch_catalog_keys() {
  std::vector<std::string> keys;
  keys.reserve(catalog().size());
  for (const ArchDescriptor& arch : catalog()) keys.push_back(arch.name);
  return keys;
}

}  // namespace npss::arch
