// uts-check — static interface analysis for Schooner configurations.
//
// The Manager type-checks every import against the export table *at call
// time* (§3.1); a wiring mistake in a multi-program configuration is only
// caught when the mismatched call finally happens, possibly hours into a
// run. This library hoists that check to static time, in the spirit of the
// type systems for distributed dataflow programs (Delaval et al.) and
// parallel components (Carvalho-Junior & Lins):
//
//   1. per-file *lint* of parsed UTS specs (UTS0xx codes);
//   2. a configuration *link check* — every `import X prog(...)` must be
//      matched by exactly one compatible `export X prog(...)` across all
//      spec files of the configuration (UTS1xx codes), the Manager's
//      runtime check made static;
//   3. *portability* analysis — float/double leaves that cannot round-trip
//      source-native -> canonical -> target-native for a given set of
//      architectures (UTS2xx warnings naming the offending type path).
//
// The same library backs the `uts_check` CLI, the stub compiler's
// refuse-on-error gate, and (through the JSON manifest) the Manager's
// strict startup mode.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/diag.hpp"
#include "uts/spec.hpp"

namespace npss::check {

/// Analyzer version stamped into every --json document, so a manifest
/// records which rule set produced it.
std::string_view tool_version();

/// One spec file after parse + per-file lint.
struct FileReport {
  std::string file;               ///< path as given (diagnostic prefix)
  uts::SpecFile spec;             ///< declarations (partial on syntax error)
  std::vector<Diagnostic> diags;  ///< parse + lint findings, source order
  bool parse_failed = false;      ///< a fatal UTS010 stopped the parse
  std::string sha256;             ///< content hash of the spec text
};

/// Parse `text` (recovering) and run the per-file lint.
FileReport lint_spec_text(const std::string& file, std::string_view text);

/// Per-file lint over an already-parsed spec. Emits UTS001/002/004/006 and
/// converts the parser's recovered issues (UTS003/005/010) to diagnostics.
std::vector<Diagnostic> lint_spec(const uts::ParsedSpec& parsed,
                                  const std::string& file);

/// Configuration link check across every file: unmatched imports (UTS101 —
/// warning, or error when `closed`), incompatible import/export pairs
/// (UTS102), ambiguous export names (UTS103). Matching uses the Manager's
/// case-folding synonym rule and the paper's footnote-1 subsequence
/// compatibility (uts::signature_compatibility_error).
std::vector<Diagnostic> link_check(const std::vector<FileReport>& files,
                                   bool closed = false);

/// Portability hazards: for every float/double leaf of every declaration
/// and every ordered pair of the given catalog architectures, warn
/// (UTS201) when the leaf's value may fail to round-trip source native ->
/// canonical IEEE -> target native (e.g. Cray-1 range exceeds binary64;
/// IBM hex range is below binary64 max). One warning per leaf, listing the
/// hazardous pairs. Throws util::NoSuchMachineError on an unknown key.
std::vector<Diagnostic> portability_check(
    const std::vector<FileReport>& files,
    const std::vector<std::string>& arch_keys);

/// Export manifest of a configuration: canonical procedure name -> export
/// declaration text. This is what `uts_check --json` embeds and what the
/// strict-mode Manager cross-checks its export table against.
std::map<std::string, std::string> collect_exports(
    const std::vector<FileReport>& files);

struct RunOptions {
  bool lint_only = false;  ///< skip the configuration link check
  bool closed = false;     ///< UTS101 unmatched imports become errors
  std::vector<std::string> arch_keys;  ///< portability matrix (empty = skip)
};

/// A full analyzer run over one configuration.
struct RunResult {
  std::vector<FileReport> files;
  std::vector<Diagnostic> config_diags;  ///< link check + portability

  std::vector<Diagnostic> all_diagnostics() const;
  int error_count() const;
  int warning_count() const;
  bool ok() const { return error_count() == 0; }
};

/// Analyze in-memory (file name, text) pairs as one configuration.
RunResult run_check(
    const std::vector<std::pair<std::string, std::string>>& inputs,
    const RunOptions& options = {});

/// The --json document: diagnostics, counts, the export manifest, and the
/// compiled-plan wire sizes per export (from uts::compile_plan).
std::string run_result_to_json(const RunResult& result);

/// Extract the export manifest from a run_result_to_json document (the
/// strict-mode Manager's startup input). Throws util::ParseError on
/// malformed JSON or a missing "exports" object.
std::map<std::string, std::string> load_manifest_json(std::string_view json);

/// Content hash over the export table alone (name=declaration lines), the
/// value run_result_to_json writes as "manifest_sha256". Two manifests
/// with the same export surface hash identically even when produced from
/// differently-commented spec files.
std::string manifest_hash(const std::map<std::string, std::string>& exports);

/// Everything the strict-mode Manager needs from a --json document: the
/// export table, the per-spec-file content hashes (stale-manifest
/// detection), the manifest content hash, and the producing tool version.
struct Manifest {
  std::map<std::string, std::string> exports;
  std::vector<std::string> spec_hashes;  ///< per input file, document order
  std::string manifest_sha256;
  std::string tool_version;
};

/// Parse the full manifest (superset of load_manifest_json; the hash and
/// version fields are empty when absent, for pre-hash documents).
Manifest load_manifest(std::string_view json);

}  // namespace npss::check
