#include "check/diag.hpp"

#include <sstream>

namespace npss::check {

std::string_view severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "error";
}

std::string to_string(const Diagnostic& diag) {
  std::ostringstream os;
  if (!diag.file.empty()) {
    os << diag.file << ':';
    if (diag.loc.known()) os << diag.loc.line << ':' << diag.loc.column << ':';
    os << ' ';
  }
  os << severity_name(diag.severity) << ": " << diag.code << ": "
     << diag.message;
  if (!diag.type_path.empty()) os << " [" << diag.type_path << "]";
  return os.str();
}

std::string render_human(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += to_string(d);
    out += '\n';
  }
  return out;
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

const std::vector<CodeInfo>& diagnostic_code_table() {
  static const std::vector<CodeInfo> table = {
      {"UTS001", Severity::kError,
       "duplicate declaration name in one spec file (after Fortran case "
       "folding, the Manager's §4.1 synonym rule)"},
      {"UTS002", Severity::kError, "duplicate parameter name in a signature"},
      {"UTS003", Severity::kError, "zero or negative array bound"},
      {"UTS004", Severity::kError,
       "res/var parameter of unsupported shape: a string nested inside an "
       "array or record cannot be returned into caller-allocated storage"},
      {"UTS005", Severity::kError, "empty record"},
      {"UTS006", Severity::kError, "duplicate field name in a record"},
      {"UTS010", Severity::kError, "specification syntax error"},
      {"UTS101", Severity::kWarning,
       "import has no matching export in the configuration (error with "
       "--closed)"},
      {"UTS102", Severity::kError,
       "import incompatible with its export (arity, parameter types, or "
       "val/res/var directions)"},
      {"UTS103", Severity::kError,
       "procedure name exported more than once in the configuration"},
      {"UTS201", Severity::kWarning,
       "float/double leaf cannot round-trip between the given architectures "
       "without risking a range error"},
      {"UTS301", Severity::kError,
       "export removed or renamed between spec versions: existing importers "
       "can no longer bind"},
      {"UTS302", Severity::kError,
       "parameter type changed incompatibly between spec versions (shape, "
       "record field order, or narrowed array bound)"},
      {"UTS303", Severity::kError,
       "parameter val/res/var mode changed between spec versions"},
      {"UTS304", Severity::kError,
       "parameter removed or reordered between spec versions: old imports "
       "are no longer a subsequence of the export"},
      {"UTS310", Severity::kNote,
       "new export added (wire-compatible: no existing importer binds it)"},
      {"UTS311", Severity::kNote,
       "parameter added to an export (wire-compatible: old imports remain a "
       "subsequence, footnote-1 rule)"},
      {"UTS312", Severity::kNote,
       "array bound widened on a val parameter (wire-compatible: the wire "
       "layout follows the caller's import signature)"},
      {"UTS400", Severity::kError,
       "network description syntax error (malformed line, unknown verb, or "
       "unknown widget)"},
      {"UTS401", Severity::kError,
       "invalid module declaration: unknown module type or duplicate "
       "instance name"},
      {"UTS402", Severity::kError,
       "dangling connection: unknown module instance or port name"},
      {"UTS403", Severity::kError,
       "port type mismatch on a connection (source output type != "
       "destination input type)"},
      {"UTS404", Severity::kError,
       "ambiguous input: more than one source drives the same input port"},
      {"UTS405", Severity::kError,
       "cycle outside a declared solver loop (the wavefront scheduler "
       "requires a DAG)"},
      {"UTS406", Severity::kWarning,
       "isolated module: it has ports but none are connected, so the "
       "scheduler runs it for nothing"},
      {"UTS407", Severity::kWarning,
       "parallel-unsafety hazard: a thread_safe()==false module sits on a "
       "wavefront level the scheduler would parallelize"},
      {"UTS408", Severity::kNote,
       "predicted wavefront width for a dependency level (bench_scheduler "
       "expectation)"},
      {"MC001", Severity::kError,
       "election safety violated: two replicas both led the same term"},
      {"MC002", Severity::kError,
       "log consistency violated: two replicas committed different records "
       "at the same index"},
      {"MC003", Severity::kError,
       "durability violated: a client-acknowledged change is missing from "
       "the current leader's log and state"},
      {"MC004", Severity::kError,
       "convergence violated: two replicas applied the same index but their "
       "state digests differ"},
      {"MC005", Severity::kError,
       "replay idempotence violated: re-applying a replica's own log to its "
       "snapshot does not reproduce its state"},
  };
  return table;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace npss::check
