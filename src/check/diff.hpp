// uts_diff — spec-evolution compatibility analysis (UTS3xx).
//
// Given two versions of a spec file's export surface, classify every
// change as *wire-compatible* or *breaking* for clients compiled against
// the old version. The rule is exactly the runtime one: a client built
// from old export E binds the new export E' iff E-as-import is compatible
// with E' under uts::signature_compatibility_error — the paper's
// footnote-1 subsequence rule plus val-parameter array widening. What the
// Manager would discover at rebind time, this pass reports before deploy.
//
//   breaking    UTS301 export removed/renamed
//               UTS302 parameter type changed (shape, record field order,
//                      narrowed array bound) — with the offending type path
//               UTS303 parameter mode (val/res/var) changed
//               UTS304 parameter removed or reordered
//   compatible  UTS310 new export          (note)
//               UTS311 parameter added     (note)
//               UTS312 val array widened   (note)
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "check/check.hpp"
#include "check/diag.hpp"

namespace npss::check {

/// Outcome of one old-vs-new comparison.
struct DiffResult {
  FileReport old_report;          ///< parse + lint of the old version
  FileReport new_report;          ///< parse + lint of the new version
  std::vector<Diagnostic> diags;  ///< UTS3xx findings (notes included)

  /// True when any breaking (error) change was found, or either version
  /// failed to parse (an unparseable side cannot be certified compatible).
  bool breaking() const;
  int breaking_count() const;
  int compatible_count() const;  ///< UTS31x notes

  std::vector<Diagnostic> all_diagnostics() const;
};

/// Compare the export surfaces of two spec versions. Both sides are parsed
/// with the recovering parser and per-file linted first; UTS3xx findings
/// carry the new file's locations for changes, the old file's for removals.
DiffResult diff_spec_texts(const std::string& old_file,
                           std::string_view old_text,
                           const std::string& new_file,
                           std::string_view new_text);

/// The `uts_diff --json` document: diagnostics, counts, verdict, and the
/// sha256 of each version's text.
std::string diff_result_to_json(const DiffResult& result,
                                std::string_view old_text,
                                std::string_view new_text);

}  // namespace npss::check
