#include "check/diff.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/sha256.hpp"
#include "uts/types.hpp"

namespace npss::check {

namespace {

using uts::DeclKind;
using uts::ParamMode;
using uts::ProcDecl;
using uts::SourceLoc;
using uts::Type;
using uts::TypeKind;

std::string fold(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// First structural difference below `path`: (type path, description).
std::pair<std::string, std::string> first_diff(const Type& oldt,
                                               const Type& newt,
                                               const std::string& path) {
  if (oldt.kind() != newt.kind()) {
    return {path, "type changed from " + oldt.to_string() + " to " +
                      newt.to_string()};
  }
  if (oldt.kind() == TypeKind::kArray) {
    if (oldt.array_size() != newt.array_size()) {
      return {path, "array bound changed from " +
                        std::to_string(oldt.array_size()) + " to " +
                        std::to_string(newt.array_size())};
    }
    return first_diff(oldt.element(), newt.element(), path + "[]");
  }
  if (oldt.kind() == TypeKind::kRecord) {
    const auto& of = oldt.fields();
    const auto& nf = newt.fields();
    const std::size_t common = std::min(of.size(), nf.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (of[i].name != nf[i].name) {
        return {path, "record field \"" + of[i].name + "\" became \"" +
                          nf[i].name +
                          "\" (removed, renamed, or reordered — field order "
                          "is wire layout)"};
      }
      if (*of[i].type != *nf[i].type) {
        return first_diff(*of[i].type, *nf[i].type,
                          path + ".\"" + of[i].name + "\"");
      }
    }
    return {path, "record field count changed from " +
                      std::to_string(of.size()) + " to " +
                      std::to_string(nf.size())};
  }
  return {path, "type changed from " + oldt.to_string() + " to " +
                    newt.to_string()};
}

/// Classified difference between one parameter's old and new types.
struct TypeDelta {
  bool fatal = false;    ///< non-widening structural change
  bool widened = false;  ///< at least one array bound grew
  std::string path;      ///< where (first fatal site, else first widening)
  std::string what;
};

/// Mirror of uts::signature_compatibility_error's widening rule: arrays
/// may widen (recursively); everything else must be identical.
void type_delta(const Type& oldt, const Type& newt, const std::string& path,
                TypeDelta& delta) {
  if (delta.fatal) return;
  if (oldt == newt) return;
  if (oldt.kind() == TypeKind::kArray && newt.kind() == TypeKind::kArray) {
    if (newt.array_size() < oldt.array_size()) {
      delta.fatal = true;
      delta.path = path;
      delta.what = "array bound narrowed from " +
                   std::to_string(oldt.array_size()) + " to " +
                   std::to_string(newt.array_size());
      return;
    }
    if (newt.array_size() > oldt.array_size() && !delta.widened) {
      delta.widened = true;
      delta.path = path;
      delta.what = "array bound widened from " +
                   std::to_string(oldt.array_size()) + " to " +
                   std::to_string(newt.array_size());
    }
    type_delta(oldt.element(), newt.element(), path + "[]", delta);
    return;
  }
  auto [where, what] = first_diff(oldt, newt, path);
  delta.fatal = true;
  delta.path = where;
  delta.what = what;
}

std::map<std::string, const ProcDecl*> export_table(const FileReport& report) {
  std::map<std::string, const ProcDecl*> out;
  for (const ProcDecl& d : report.spec.decls) {
    if (d.kind == DeclKind::kExport) out.emplace(fold(d.name), &d);
  }
  return out;
}

}  // namespace

bool DiffResult::breaking() const {
  if (old_report.parse_failed || new_report.parse_failed) return true;
  return has_errors(diags);
}

int DiffResult::breaking_count() const {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int DiffResult::compatible_count() const {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kNote) ++n;
  }
  return n;
}

std::vector<Diagnostic> DiffResult::all_diagnostics() const {
  std::vector<Diagnostic> out;
  out.insert(out.end(), old_report.diags.begin(), old_report.diags.end());
  out.insert(out.end(), new_report.diags.begin(), new_report.diags.end());
  out.insert(out.end(), diags.begin(), diags.end());
  return out;
}

DiffResult diff_spec_texts(const std::string& old_file,
                           std::string_view old_text,
                           const std::string& new_file,
                           std::string_view new_text) {
  DiffResult result;
  result.old_report = lint_spec_text(old_file, old_text);
  result.new_report = lint_spec_text(new_file, new_text);

  const auto old_exports = export_table(result.old_report);
  const auto new_exports = export_table(result.new_report);

  // UTS301: exports the new version lost (or renamed, which looks the
  // same from a binder's point of view).
  for (const auto& [name, old_decl] : old_exports) {
    if (!new_exports.contains(name)) {
      result.diags.push_back(Diagnostic{
          "UTS301", Severity::kError, old_file, old_decl->loc,
          "export '" + old_decl->name +
              "' removed or renamed: clients compiled against " + old_file +
              " can no longer bind it",
          ""});
    }
  }
  // UTS310: brand-new exports — nobody imports them yet, so compatible.
  for (const auto& [name, new_decl] : new_exports) {
    if (!old_exports.contains(name)) {
      result.diags.push_back(Diagnostic{
          "UTS310", Severity::kNote, new_file, new_decl->loc,
          "new export '" + new_decl->name + "' (wire-compatible)", ""});
    }
  }

  // Common exports: walk the old signature through the new one with the
  // same forward name scan the runtime compatibility check uses.
  for (const auto& [name, old_decl] : old_exports) {
    auto it = new_exports.find(name);
    if (it == new_exports.end()) continue;
    const ProcDecl& new_decl = *it->second;
    const uts::Signature& old_sig = old_decl->signature;
    const uts::Signature& new_sig = new_decl.signature;

    bool found_error = false;
    std::vector<bool> matched(new_sig.size(), false);
    std::size_t npos = 0;
    for (std::size_t i = 0; i < old_sig.size(); ++i) {
      const uts::Param& wanted = old_sig[i];
      std::size_t hit = new_sig.size();
      for (std::size_t j = npos; j < new_sig.size(); ++j) {
        if (new_sig[j].name == wanted.name) {
          hit = j;
          break;
        }
      }
      if (hit == new_sig.size()) {
        result.diags.push_back(Diagnostic{
            "UTS304", Severity::kError, new_file, new_decl.loc,
            "export '" + new_decl.name + "': parameter \"" + wanted.name +
                "\" removed or reordered — old imports are no longer a "
                "subsequence",
            "\"" + wanted.name + "\""});
        found_error = true;
        continue;
      }
      matched[hit] = true;
      npos = hit + 1;
      const uts::Param& offered = new_sig[hit];
      const SourceLoc loc = new_decl.param_loc(hit);
      if (offered.mode != wanted.mode) {
        result.diags.push_back(Diagnostic{
            "UTS303", Severity::kError, new_file, loc,
            "export '" + new_decl.name + "': parameter \"" + wanted.name +
                "\" mode changed from " +
                std::string(uts::param_mode_name(wanted.mode)) + " to " +
                std::string(uts::param_mode_name(offered.mode)),
            "\"" + wanted.name + "\""});
        found_error = true;
        continue;
      }
      TypeDelta delta;
      type_delta(wanted.type, offered.type, "\"" + wanted.name + "\"", delta);
      if (delta.fatal) {
        result.diags.push_back(Diagnostic{
            "UTS302", Severity::kError, new_file, loc,
            "export '" + new_decl.name + "': parameter \"" + wanted.name +
                "\" " + delta.what,
            delta.path});
        found_error = true;
      } else if (delta.widened) {
        if (wanted.mode == ParamMode::kVal) {
          result.diags.push_back(Diagnostic{
              "UTS312", Severity::kNote, new_file, loc,
              "export '" + new_decl.name + "': val parameter \"" +
                  wanted.name + "\" " + delta.what + " (wire-compatible)",
              delta.path});
        } else {
          // res/var data travels in the reply, whose layout the caller
          // preallocated from the old bound — widening breaks it.
          result.diags.push_back(Diagnostic{
              "UTS302", Severity::kError, new_file, loc,
              "export '" + new_decl.name + "': " +
                  std::string(uts::param_mode_name(wanted.mode)) +
                  " parameter \"" + wanted.name + "\" " + delta.what +
                  " — only val parameters may widen",
              delta.path});
          found_error = true;
        }
      }
    }
    for (std::size_t j = 0; j < new_sig.size(); ++j) {
      if (!matched[j]) {
        result.diags.push_back(Diagnostic{
            "UTS311", Severity::kNote, new_file, new_decl.param_loc(j),
            "export '" + new_decl.name + "': parameter \"" +
                new_sig[j].name + "\" added (wire-compatible)",
            "\"" + new_sig[j].name + "\""});
      }
    }

    // Safety net against false negatives: the classification above must
    // agree with the runtime predicate the Manager enforces. If it missed
    // something the Manager would reject, report it anyway.
    if (!found_error) {
      std::string why = uts::signature_compatibility_error(old_sig, new_sig);
      if (!why.empty()) {
        result.diags.push_back(Diagnostic{
            "UTS302", Severity::kError, new_file, new_decl.loc,
            "export '" + new_decl.name +
                "' incompatible with its old version: " + why,
            ""});
      }
    }
  }
  return result;
}

std::string diff_result_to_json(const DiffResult& result,
                                std::string_view old_text,
                                std::string_view new_text) {
  std::ostringstream os;
  os << "{\n  \"tool_version\": \"" << json_escape(tool_version()) << "\",\n";
  os << "  \"old\": {\"file\": \"" << json_escape(result.old_report.file)
     << "\", \"sha256\": \"" << util::sha256_hex(old_text)
     << "\", \"parse_failed\": "
     << (result.old_report.parse_failed ? "true" : "false") << "},\n";
  os << "  \"new\": {\"file\": \"" << json_escape(result.new_report.file)
     << "\", \"sha256\": \"" << util::sha256_hex(new_text)
     << "\", \"parse_failed\": "
     << (result.new_report.parse_failed ? "true" : "false") << "},\n";
  os << "  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : result.all_diagnostics()) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"code\": \"" << json_escape(d.code) << "\", \"severity\": \""
       << severity_name(d.severity) << "\", \"file\": \""
       << json_escape(d.file) << "\", \"line\": " << d.loc.line
       << ", \"column\": " << d.loc.column << ", \"message\": \""
       << json_escape(d.message) << "\"";
    if (!d.type_path.empty()) {
      os << ", \"type_path\": \"" << json_escape(d.type_path) << "\"";
    }
    os << "}";
  }
  os << "\n  ],\n  \"breaking\": " << result.breaking_count()
     << ",\n  \"compatible\": " << result.compatible_count()
     << ",\n  \"verdict\": \""
     << (result.breaking() ? "breaking" : "compatible") << "\"\n}\n";
  return os.str();
}

}  // namespace npss::check
