// Diagnostics for the uts-check static analyzer.
//
// Every problem the analyzer can report carries a stable UTSxxx code so
// tests, CI greps, and editors can pin the *kind* of problem rather than
// its message text. The code space is partitioned:
//
//   UTS0xx  per-file spec lint (duplicate names, bad bounds, bad shapes)
//   UTS1xx  configuration link check (import/export matching)
//   UTS2xx  portability hazards across architecture pairs
//   UTS3xx  spec evolution (uts_diff: old export surface vs new)
//   UTS4xx  flow-network lint (flow_lint: the AVS-style module graph)
//   MC0xx   replicated control-plane model checking (meta_check: safety
//           invariants over every explored schedule, DESIGN.md §17)
//
// The full table lives in diagnostic_code_table() and is rendered by
// `uts_check --list-codes` / `meta_check --list-codes` (and reproduced in
// DESIGN.md §11–12 and §17).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "uts/spec.hpp"

namespace npss::check {

/// kNote marks informational findings (wire-compatible evolution changes,
/// predicted wavefront widths) that never affect the exit status.
enum class Severity : std::uint8_t { kNote = 0, kWarning, kError };

std::string_view severity_name(Severity severity);

struct Diagnostic {
  std::string code;              ///< stable UTSxxx identifier
  Severity severity = Severity::kError;
  std::string file;              ///< empty for configuration-level findings
  uts::SourceLoc loc{};          ///< {0,0} when no position applies
  std::string message;
  std::string type_path;         ///< offending type path (portability), or ""
};

/// "file:line:col: error: UTS001: message" (omitting parts that are
/// unknown); the format editors parse as a compiler diagnostic.
std::string to_string(const Diagnostic& diag);

/// One to_string() line per diagnostic.
std::string render_human(const std::vector<Diagnostic>& diags);

bool has_errors(const std::vector<Diagnostic>& diags);

/// Catalog row for --list-codes and the DESIGN.md table.
struct CodeInfo {
  std::string_view code;
  Severity default_severity;
  std::string_view summary;
};

/// Every diagnostic code the analyzer can emit, in code order.
const std::vector<CodeInfo>& diagnostic_code_table();

/// JSON string escaping shared by the --json renderers.
std::string json_escape(std::string_view text);

}  // namespace npss::check
