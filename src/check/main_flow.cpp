// flow_lint — static analysis of serialized flow networks.
//
//   flow_lint [--json] <network-file>...
//
// Lints each saved network description (the Network::save_to_text form)
// against the registered module catalog: dangling connections, port type
// mismatches, ambiguous inputs, undeclared cycles, unreachable modules,
// and parallel-unsafety hazards, plus the predicted wavefront width per
// dependency level. Exit status: 0 when clean (notes allowed), 1 when any
// error or warning was reported, 2 on usage or I/O problems.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/flowlint.hpp"
#include "flow/basic_modules.hpp"
#include "npss/modules.hpp"
#include "util/status.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: flow_lint [--json] <network-file>...\n"
        "\n"
        "Static lint of serialized flow networks (the save_to_text form)\n"
        "against the basic + TESS module catalog. Exit 0 = clean (notes\n"
        "allowed), 1 = findings (errors or warnings), 2 = usage.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "flow_lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "flow_lint: no network files given\n";
    usage(std::cerr);
    return 2;
  }

  npss::flow::register_basic_modules();
  npss::glue::register_tess_modules();
  const npss::check::ModuleCatalog catalog =
      npss::check::ModuleCatalog::from_factory();

  bool any_errors = false;
  std::vector<std::pair<std::string, npss::check::FlowLintResult>> results;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "flow_lint: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      npss::check::FlowLintResult result =
          npss::check::lint_network_text(path, text.str(), catalog);
      any_errors =
          any_errors || !result.ok() || result.warning_count() > 0;
      if (!json) {
        std::cout << npss::check::render_human(result.diags);
        std::cout << path << ": " << result.error_count() << " error(s), "
                  << result.warning_count() << " warning(s)\n";
      }
      results.emplace_back(path, std::move(result));
    } catch (const npss::util::Error& e) {
      std::cerr << "flow_lint: " << e.what() << "\n";
      return 2;
    }
  }
  if (json) std::cout << npss::check::flow_lint_to_json(results);
  return any_errors ? 1 : 0;
}
