// flow-lint — whole-configuration static analysis of a flow network
// description (UTS4xx).
//
// The flow executive validates a network incrementally while it is being
// built: Network::connect throws on the first bad edge, and scheduling
// hazards (a thread-unsafe module on a parallel wavefront) surface only
// while running. This pass lints the *serialized* network form — the text
// Network::save_to_text emits and load_from_text replays — in one sweep,
// reporting every problem with file:line positions and without
// instantiating live module state beyond a port/widget catalog:
//
//   UTS400 syntax error (bad verb, malformed line, unknown widget)
//   UTS401 unknown module type / duplicate instance
//   UTS402 dangling connection (unknown module or port)
//   UTS403 port type mismatch
//   UTS404 input with more than one source
//   UTS405 cycle outside a declared solver loop (`loop` verb)
//   UTS406 isolated module (warning)
//   UTS407 thread-unsafe module on a parallelizable level (warning)
//   UTS408 predicted wavefront width per level (note)
//
// A `loop <name> <module>...` line declares a solver loop: a cycle whose
// modules all belong to one declared loop is legal (the executive's solver
// iterates it); any other cycle is UTS405. The runtime loader ignores
// `loop` lines.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "check/diag.hpp"
#include "uts/types.hpp"

namespace npss::check {

/// Static port/widget surface of one module type.
struct ModuleTypeInfo {
  std::string type_name;
  std::vector<std::pair<std::string, uts::Type>> inputs;
  std::vector<std::pair<std::string, uts::Type>> outputs;
  std::vector<std::string> widgets;
  bool thread_safe = true;
};

/// The module types a network description may reference. Build one from
/// the live ModuleFactory (from_factory) or assemble synthetic entries in
/// tests.
class ModuleCatalog {
 public:
  void add(ModuleTypeInfo info);
  bool knows(const std::string& type_name) const;
  const ModuleTypeInfo& info(const std::string& type_name) const;
  std::vector<std::string> type_names() const;

  /// Snapshot every registered ModuleFactory type by instantiating it and
  /// running its spec() (no network involved).
  static ModuleCatalog from_factory();

 private:
  std::map<std::string, ModuleTypeInfo> types_;
};

struct FlowLintResult {
  std::vector<Diagnostic> diags;
  /// Predicted wavefront width per dependency level (empty when the graph
  /// had cycles or did not parse).
  std::vector<std::size_t> wavefront_widths;

  bool ok() const { return !has_errors(diags); }
  int error_count() const;
  int warning_count() const;
};

/// Lint one serialized network against the catalog.
FlowLintResult lint_network_text(const std::string& file,
                                 std::string_view text,
                                 const ModuleCatalog& catalog);

/// The `flow_lint --json` document for one or more lint results.
std::string flow_lint_to_json(
    const std::vector<std::pair<std::string, FlowLintResult>>& results);

}  // namespace npss::check
