#include "check/check.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>

#include "arch/arch.hpp"
#include "arch/float_format.hpp"
#include "util/sha256.hpp"
#include "uts/marshal_plan.hpp"

namespace npss::check {

std::string_view tool_version() { return "npss-uts-check 0.5.0"; }

namespace {

using uts::DeclKind;
using uts::ParamMode;
using uts::ProcDecl;
using uts::SourceLoc;
using uts::Type;
using uts::TypeKind;

std::string fold(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string_view decl_kind_name(DeclKind kind) {
  return kind == DeclKind::kExport ? "export" : "import";
}

std::string at(const std::string& file, SourceLoc loc) {
  std::string out = file;
  if (loc.known()) {
    out += ':' + std::to_string(loc.line) + ':' + std::to_string(loc.column);
  }
  return out;
}

/// Path of the first string leaf strictly below the top of `type`, or ""
/// when none ("" also when the whole type IS a string — a scalar string
/// result is returnable, a string buried in fixed-layout storage is not).
std::string nested_string_path(const Type& type, const std::string& path,
                               bool top) {
  switch (type.kind()) {
    case TypeKind::kString:
      return top ? "" : path;
    case TypeKind::kArray:
      return nested_string_path(type.element(), path + "[]", false);
    case TypeKind::kRecord:
      for (const uts::Field& f : type.fields()) {
        std::string hit = nested_string_path(
            *f.type, path + ".\"" + f.name + "\"", false);
        if (!hit.empty()) return hit;
      }
      return "";
    default:
      return "";
  }
}

/// UTS006: duplicate field names in any record reachable from `type`.
void lint_record_fields(const Type& type, const std::string& path,
                        const std::string& file, SourceLoc loc,
                        std::vector<Diagnostic>& out) {
  if (type.kind() == TypeKind::kArray) {
    lint_record_fields(type.element(), path + "[]", file, loc, out);
    return;
  }
  if (type.kind() != TypeKind::kRecord) return;
  std::set<std::string> seen;
  for (const uts::Field& f : type.fields()) {
    if (!seen.insert(f.name).second) {
      out.push_back(Diagnostic{
          "UTS006", Severity::kError, file, loc,
          "duplicate field \"" + f.name + "\" in record", path});
    }
    lint_record_fields(*f.type, path + ".\"" + f.name + "\"", file, loc, out);
  }
}

Severity default_severity(const std::string& code) {
  for (const CodeInfo& info : diagnostic_code_table()) {
    if (info.code == code) return info.default_severity;
  }
  return Severity::kError;
}

/// The canonical IEEE format a leaf travels the wire in.
arch::FloatFormatKind canonical_format(TypeKind kind) {
  return kind == TypeKind::kFloat ? arch::FloatFormatKind::kIeee32
                                  : arch::FloatFormatKind::kIeee64;
}

arch::FloatFormatKind native_format(const arch::ArchDescriptor& arch,
                                    TypeKind kind) {
  return kind == TypeKind::kFloat ? arch.float_single : arch.float_double;
}

struct LeafVisitor {
  /// Invoke fn(path, kind) for every float/double leaf of `type`.
  template <typename Fn>
  static void walk(const Type& type, const std::string& path, Fn&& fn) {
    switch (type.kind()) {
      case TypeKind::kFloat:
      case TypeKind::kDouble:
        fn(path, type.kind());
        return;
      case TypeKind::kArray:
        walk(type.element(), path + "[]", fn);
        return;
      case TypeKind::kRecord:
        for (const uts::Field& f : type.fields()) {
          walk(*f.type, path + ".\"" + f.name + "\"", fn);
        }
        return;
      default:
        return;
    }
  }
};

}  // namespace

std::vector<Diagnostic> lint_spec(const uts::ParsedSpec& parsed,
                                  const std::string& file) {
  std::vector<Diagnostic> out;
  for (const uts::SpecIssue& issue : parsed.issues) {
    out.push_back(Diagnostic{issue.code, default_severity(issue.code), file,
                             issue.loc, issue.message, ""});
  }

  // UTS001: duplicate declaration names per kind, case-folded the way the
  // Manager's NameDb folds them (§4.1 Fortran synonyms).
  std::map<std::string, const ProcDecl*> seen[2];
  for (const ProcDecl& decl : parsed.file.decls) {
    auto& kind_seen = seen[static_cast<int>(decl.kind)];
    auto [it, fresh] = kind_seen.emplace(fold(decl.name), &decl);
    if (!fresh) {
      out.push_back(Diagnostic{
          "UTS001", Severity::kError, file, decl.loc,
          std::string(decl_kind_name(decl.kind)) + " '" + decl.name +
              "' duplicates '" + it->second->name + "' declared at " +
              at(file, it->second->loc) +
              " (names collide after Fortran case folding)",
          ""});
    }

    // UTS002: duplicate parameter names within the signature.
    std::set<std::string> params;
    for (std::size_t i = 0; i < decl.signature.size(); ++i) {
      const uts::Param& p = decl.signature[i];
      if (!params.insert(p.name).second) {
        out.push_back(Diagnostic{
            "UTS002", Severity::kError, file, decl.param_loc(i),
            "duplicate parameter \"" + p.name + "\" in " +
                std::string(decl_kind_name(decl.kind)) + " '" + decl.name +
                "'",
            ""});
      }

      // UTS004: a res/var parameter must be returnable into caller-owned
      // storage; a string nested inside an array or record makes the
      // layout variable below the top level, which no stub can preallocate.
      if (p.mode != ParamMode::kVal) {
        std::string hit =
            nested_string_path(p.type, "\"" + p.name + "\"", true);
        if (!hit.empty()) {
          out.push_back(Diagnostic{
              "UTS004", Severity::kError, file, decl.param_loc(i),
              std::string(uts::param_mode_name(p.mode)) + " parameter \"" +
                  p.name + "\" of '" + decl.name +
                  "' has unsupported shape: string nested in fixed-layout "
                  "storage",
              hit});
        }
      }

      // UTS006: duplicate record field names anywhere in the type.
      lint_record_fields(p.type, "\"" + p.name + "\"", file,
                         decl.param_loc(i), out);
    }
  }
  return out;
}

FileReport lint_spec_text(const std::string& file, std::string_view text) {
  FileReport report;
  report.file = file;
  report.sha256 = util::sha256_hex(text);
  uts::ParsedSpec parsed = uts::parse_spec_located(text);
  report.diags = lint_spec(parsed, file);
  report.spec = std::move(parsed.file);
  for (const uts::SpecIssue& issue : parsed.issues) {
    if (issue.fatal) report.parse_failed = true;
  }
  return report;
}

std::vector<Diagnostic> link_check(const std::vector<FileReport>& files,
                                   bool closed) {
  std::vector<Diagnostic> out;

  struct ExportSite {
    const FileReport* file;
    const ProcDecl* decl;
  };
  std::map<std::string, std::vector<ExportSite>> exports;
  for (const FileReport& f : files) {
    for (const ProcDecl& d : f.spec.decls) {
      if (d.kind == DeclKind::kExport) {
        exports[fold(d.name)].push_back(ExportSite{&f, &d});
      }
    }
  }

  // UTS103: a configuration (one line's worth of programs) must export each
  // name at most once — the Manager's NameDb would reject the second
  // registration at runtime.
  for (const auto& [name, sites] : exports) {
    for (std::size_t i = 1; i < sites.size(); ++i) {
      out.push_back(Diagnostic{
          "UTS103", Severity::kError, sites[i].file->file,
          sites[i].decl->loc,
          "procedure '" + sites[i].decl->name + "' already exported at " +
              at(sites[0].file->file, sites[0].decl->loc),
          ""});
    }
  }

  // UTS101/UTS102: every import must find exactly one compatible export.
  for (const FileReport& f : files) {
    for (const ProcDecl& d : f.spec.decls) {
      if (d.kind != DeclKind::kImport) continue;
      auto it = exports.find(fold(d.name));
      if (it == exports.end()) {
        out.push_back(Diagnostic{
            "UTS101", closed ? Severity::kError : Severity::kWarning, f.file,
            d.loc,
            "import '" + d.name + "' has no matching export in the "
            "configuration",
            ""});
        continue;
      }
      const ExportSite& site = it->second.front();
      std::string why = uts::signature_compatibility_error(
          d.signature, site.decl->signature);
      if (!why.empty()) {
        out.push_back(Diagnostic{
            "UTS102", Severity::kError, f.file, d.loc,
            "import '" + d.name + "' incompatible with export at " +
                at(site.file->file, site.decl->loc) + ": " + why,
            ""});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> portability_check(
    const std::vector<FileReport>& files,
    const std::vector<std::string>& arch_keys) {
  std::vector<Diagnostic> out;
  if (arch_keys.size() < 2) return out;
  std::vector<const arch::ArchDescriptor*> archs;
  archs.reserve(arch_keys.size());
  for (const std::string& key : arch_keys) {
    archs.push_back(&arch::arch_catalog(key));  // throws on unknown key
  }

  // An import and its matching export carry the same leaves; report each
  // (procedure, leaf) once for the whole configuration.
  std::set<std::string> reported;
  for (const FileReport& f : files) {
    for (const ProcDecl& d : f.spec.decls) {
      for (std::size_t i = 0; i < d.signature.size(); ++i) {
        const uts::Param& p = d.signature[i];
        LeafVisitor::walk(
            p.type, "\"" + p.name + "\"",
            [&](const std::string& path, TypeKind kind) {
              if (!reported.insert(fold(d.name) + "\x1f" + path).second) {
                return;
              }
              const arch::FloatFormatKind canon = canonical_format(kind);
              std::vector<std::string> hazards;
              for (const arch::ArchDescriptor* src : archs) {
                for (const arch::ArchDescriptor* dst : archs) {
                  if (src == dst) continue;
                  // Wire path: src native -> canonical IEEE -> dst native;
                  // a range that any hop cannot subsume may raise the
                  // paper's §4.1 out-of-range error mid-run.
                  const bool encode_hazard = !arch::float_range_subsumes(
                      canon, native_format(*src, kind));
                  const bool decode_hazard = !arch::float_range_subsumes(
                      native_format(*dst, kind), canon);
                  if (encode_hazard || decode_hazard) {
                    hazards.push_back(src->name + "->" + dst->name);
                  }
                }
              }
              if (hazards.empty()) return;
              std::ostringstream msg;
              msg << (kind == TypeKind::kFloat ? "float" : "double")
                  << " leaf of '" << d.name
                  << "' cannot round-trip without range risk for: ";
              for (std::size_t h = 0; h < hazards.size(); ++h) {
                if (h) msg << ", ";
                msg << hazards[h];
              }
              out.push_back(Diagnostic{"UTS201", Severity::kWarning, f.file,
                                       d.param_loc(i), msg.str(), path});
            });
      }
    }
  }
  return out;
}

std::map<std::string, std::string> collect_exports(
    const std::vector<FileReport>& files) {
  std::map<std::string, std::string> out;
  for (const FileReport& f : files) {
    for (const ProcDecl& d : f.spec.decls) {
      if (d.kind != DeclKind::kExport) continue;
      out.emplace(d.name, uts::decl_to_string(d));
    }
  }
  return out;
}

std::vector<Diagnostic> RunResult::all_diagnostics() const {
  std::vector<Diagnostic> out;
  for (const FileReport& f : files) {
    out.insert(out.end(), f.diags.begin(), f.diags.end());
  }
  out.insert(out.end(), config_diags.begin(), config_diags.end());
  return out;
}

int RunResult::error_count() const {
  int n = 0;
  for (const Diagnostic& d : all_diagnostics()) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int RunResult::warning_count() const {
  int n = 0;
  for (const Diagnostic& d : all_diagnostics()) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

RunResult run_check(
    const std::vector<std::pair<std::string, std::string>>& inputs,
    const RunOptions& options) {
  RunResult result;
  result.files.reserve(inputs.size());
  for (const auto& [file, text] : inputs) {
    result.files.push_back(lint_spec_text(file, text));
  }
  if (!options.lint_only) {
    result.config_diags = link_check(result.files, options.closed);
  }
  if (!options.arch_keys.empty()) {
    std::vector<Diagnostic> hazards =
        portability_check(result.files, options.arch_keys);
    result.config_diags.insert(result.config_diags.end(), hazards.begin(),
                               hazards.end());
  }
  return result;
}

std::string manifest_hash(const std::map<std::string, std::string>& exports) {
  std::string surface;
  for (const auto& [name, text] : exports) {
    surface += name;
    surface += '=';
    surface += text;
    surface += '\n';
  }
  return util::sha256_hex(surface);
}

std::string run_result_to_json(const RunResult& result) {
  std::ostringstream os;
  os << "{\n  \"tool_version\": \"" << json_escape(tool_version())
     << "\",\n  \"files\": [";
  for (std::size_t i = 0; i < result.files.size(); ++i) {
    if (i) os << ", ";
    os << "{\"file\": \"" << json_escape(result.files[i].file)
       << "\", \"sha256\": \"" << json_escape(result.files[i].sha256)
       << "\", \"parse_failed\": "
       << (result.files[i].parse_failed ? "true" : "false") << "}";
  }
  os << "],\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : result.all_diagnostics()) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"code\": \"" << json_escape(d.code) << "\", \"severity\": \""
       << severity_name(d.severity) << "\", \"file\": \""
       << json_escape(d.file) << "\", \"line\": " << d.loc.line
       << ", \"column\": " << d.loc.column << ", \"message\": \""
       << json_escape(d.message) << "\"";
    if (!d.type_path.empty()) {
      os << ", \"type_path\": \"" << json_escape(d.type_path) << "\"";
    }
    os << "}";
  }
  os << "\n  ],\n  \"errors\": " << result.error_count()
     << ",\n  \"warnings\": " << result.warning_count() << ",\n  \"ok\": "
     << (result.ok() ? "true" : "false");

  std::map<std::string, std::string> exports = collect_exports(result.files);
  os << ",\n  \"manifest_sha256\": \"" << manifest_hash(exports) << "\"";
  os << ",\n  \"exports\": {";
  first = true;
  for (const auto& [name, text] : exports) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(name) << "\": \"" << json_escape(text)
       << "\"";
  }
  os << "\n  },\n  \"plans\": {";
  first = true;
  for (const FileReport& f : result.files) {
    for (const ProcDecl& d : f.spec.decls) {
      if (d.kind != DeclKind::kExport) continue;
      auto request = uts::compile_plan(d.signature, uts::Direction::kRequest);
      auto reply = uts::compile_plan(d.signature, uts::Direction::kReply);
      if (!first) os << ",";
      first = false;
      os << "\n    \"" << json_escape(d.name) << "\": {\"request_fixed_bytes\": "
         << (request->fixed_size()
                 ? static_cast<long>(request->fixed_wire_bytes())
                 : -1)
         << ", \"reply_fixed_bytes\": "
         << (reply->fixed_size() ? static_cast<long>(reply->fixed_wire_bytes())
                                 : -1)
         << "}";
    }
  }
  os << "\n  }\n}\n";
  return os.str();
}

namespace {

/// Just enough JSON to read back run_result_to_json documents.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of JSON");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "' in JSON");
    }
    ++pos_;
  }

  bool consume(char c) {
    if (!at_end() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("bad escape in JSON string");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape in JSON string");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape in JSON string");
          }
          // Our own writer only emits \u00xx control escapes.
          out += static_cast<char>(value & 0xff);
          break;
        }
        default:
          fail("bad escape in JSON string");
      }
    }
    if (pos_ >= text_.size()) fail("unterminated JSON string");
    ++pos_;  // closing quote
    return out;
  }

  void skip_value() {
    char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '{') {
      ++pos_;
      if (!consume('}')) {
        do {
          (void)parse_string();
          expect(':');
          skip_value();
        } while (consume(','));
        expect('}');
      }
    } else if (c == '[') {
      ++pos_;
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else {
      // number / true / false / null
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-' || text_[pos_] == '+' ||
              text_[pos_] == '.' || text_[pos_] == 'e' ||
              text_[pos_] == 'E')) {
        ++pos_;
      }
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw util::ParseError(what + " (offset " + std::to_string(pos_) + ")");
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Manifest load_manifest(std::string_view json) {
  JsonCursor cur(json);
  cur.expect('{');
  Manifest manifest;
  bool found = false;
  if (!cur.consume('}')) {
    do {
      std::string key = cur.parse_string();
      cur.expect(':');
      if (key == "exports") {
        found = true;
        cur.expect('{');
        if (!cur.consume('}')) {
          do {
            std::string name = cur.parse_string();
            cur.expect(':');
            manifest.exports[name] = cur.parse_string();
          } while (cur.consume(','));
          cur.expect('}');
        }
      } else if (key == "manifest_sha256") {
        manifest.manifest_sha256 = cur.parse_string();
      } else if (key == "tool_version") {
        manifest.tool_version = cur.parse_string();
      } else if (key == "files") {
        // [{"file": ..., "sha256": ..., "parse_failed": ...}, ...]
        cur.expect('[');
        if (!cur.consume(']')) {
          do {
            cur.expect('{');
            if (!cur.consume('}')) {
              do {
                std::string field = cur.parse_string();
                cur.expect(':');
                if (field == "sha256") {
                  manifest.spec_hashes.push_back(cur.parse_string());
                } else {
                  cur.skip_value();
                }
              } while (cur.consume(','));
              cur.expect('}');
            }
          } while (cur.consume(','));
          cur.expect(']');
        }
      } else {
        cur.skip_value();
      }
    } while (cur.consume(','));
    cur.expect('}');
  }
  if (!found) {
    throw util::ParseError("manifest JSON has no \"exports\" object");
  }
  return manifest;
}

std::map<std::string, std::string> load_manifest_json(std::string_view json) {
  return load_manifest(json).exports;
}

}  // namespace npss::check
