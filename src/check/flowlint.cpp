#include "check/flowlint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "check/check.hpp"
#include "flow/module.hpp"
#include "util/status.hpp"

namespace npss::check {

namespace {

using uts::SourceLoc;

struct Instance {
  const ModuleTypeInfo* info = nullptr;
  int line = 0;
};

struct Edge {
  std::string src, src_port, dst, dst_port;
  int line = 0;
};

const uts::Type* port_type(
    const std::vector<std::pair<std::string, uts::Type>>& ports,
    const std::string& name) {
  for (const auto& [pname, type] : ports) {
    if (pname == name) return &type;
  }
  return nullptr;
}

}  // namespace

void ModuleCatalog::add(ModuleTypeInfo info) {
  std::string key = info.type_name;
  types_[std::move(key)] = std::move(info);
}

bool ModuleCatalog::knows(const std::string& type_name) const {
  return types_.contains(type_name);
}

const ModuleTypeInfo& ModuleCatalog::info(const std::string& type_name) const {
  auto it = types_.find(type_name);
  if (it == types_.end()) {
    throw util::LookupError("no module type '" + type_name + "' in catalog");
  }
  return it->second;
}

std::vector<std::string> ModuleCatalog::type_names() const {
  std::vector<std::string> out;
  out.reserve(types_.size());
  for (const auto& [name, info] : types_) out.push_back(name);
  return out;
}

ModuleCatalog ModuleCatalog::from_factory() {
  ModuleCatalog catalog;
  for (const std::string& type : flow::ModuleFactory::instance().type_names()) {
    std::unique_ptr<flow::Module> module =
        flow::ModuleFactory::instance().make(type);
    flow::ModuleSpec spec(*module);
    module->spec(spec);
    ModuleTypeInfo info;
    info.type_name = type;
    for (const flow::InputPort& p : module->inputs()) {
      info.inputs.emplace_back(p.name, p.type);
    }
    for (const flow::OutputPort& p : module->outputs()) {
      info.outputs.emplace_back(p.name, p.type);
    }
    info.widgets = module->widget_names();
    info.thread_safe = module->thread_safe();
    catalog.add(std::move(info));
  }
  return catalog;
}

int FlowLintResult::error_count() const {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

int FlowLintResult::warning_count() const {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

FlowLintResult lint_network_text(const std::string& file,
                                 std::string_view text,
                                 const ModuleCatalog& catalog) {
  FlowLintResult result;
  auto diag = [&](const char* code, Severity severity, int line,
                  std::string message, std::string type_path = "") {
    result.diags.push_back(Diagnostic{code, severity, file,
                                      SourceLoc{line, 1}, std::move(message),
                                      std::move(type_path)});
  };

  std::map<std::string, Instance> instances;
  std::vector<std::string> order;
  std::vector<Edge> edges;              ///< edges with both ports resolved
  std::map<std::string, int> input_src; ///< "mod.port" -> line of its source
  std::map<std::string, std::set<std::string>> loops_of;  ///< module -> loops

  std::istringstream is{std::string(text)};
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    if (raw.empty() || raw[0] == '#') continue;
    std::istringstream ls(raw);
    std::string verb;
    ls >> verb;
    if (verb.empty()) continue;

    if (verb == "module") {
      std::string instance, type;
      ls >> instance >> type;
      if (instance.empty() || type.empty()) {
        diag("UTS400", Severity::kError, lineno,
             "malformed module line: expected 'module <instance> <type>'");
        continue;
      }
      if (instances.contains(instance)) {
        diag("UTS401", Severity::kError, lineno,
             "duplicate module instance '" + instance + "' (first declared "
             "at line " + std::to_string(instances[instance].line) + ")");
        continue;
      }
      if (!catalog.knows(type)) {
        diag("UTS401", Severity::kError, lineno,
             "unknown module type '" + type + "' for instance '" + instance +
                 "'");
        // Track the instance anyway (typeless) so later references don't
        // cascade into spurious UTS402s.
        instances[instance] = Instance{nullptr, lineno};
        order.push_back(instance);
        continue;
      }
      instances[instance] = Instance{&catalog.info(type), lineno};
      order.push_back(instance);
    } else if (verb == "widget") {
      std::string instance, widget_name;
      ls >> instance >> widget_name;
      if (instance.empty() || widget_name.empty()) {
        diag("UTS400", Severity::kError, lineno,
             "malformed widget line: expected 'widget <instance> <name> "
             "<value>'");
        continue;
      }
      auto it = instances.find(instance);
      if (it == instances.end()) {
        diag("UTS402", Severity::kError, lineno,
             "widget for unknown module instance '" + instance + "'");
        continue;
      }
      const ModuleTypeInfo* info = it->second.info;
      if (info && std::find(info->widgets.begin(), info->widgets.end(),
                            widget_name) == info->widgets.end()) {
        diag("UTS400", Severity::kError, lineno,
             "module '" + instance + "' (type " + info->type_name +
                 ") has no widget '" + widget_name + "'");
      }
    } else if (verb == "connect") {
      std::string src, src_port, dst, dst_port;
      ls >> src >> src_port >> dst >> dst_port;
      if (src.empty() || src_port.empty() || dst.empty() || dst_port.empty()) {
        diag("UTS400", Severity::kError, lineno,
             "malformed connect line: expected 'connect <src> <out-port> "
             "<dst> <in-port>'");
        continue;
      }
      auto src_it = instances.find(src);
      auto dst_it = instances.find(dst);
      bool resolved = true;
      if (src_it == instances.end()) {
        diag("UTS402", Severity::kError, lineno,
             "connection from unknown module instance '" + src + "'");
        resolved = false;
      }
      if (dst_it == instances.end()) {
        diag("UTS402", Severity::kError, lineno,
             "connection to unknown module instance '" + dst + "'");
        resolved = false;
      }
      const uts::Type* out_type = nullptr;
      const uts::Type* in_type = nullptr;
      if (resolved && src_it->second.info) {
        out_type = port_type(src_it->second.info->outputs, src_port);
        if (!out_type) {
          diag("UTS402", Severity::kError, lineno,
               "module '" + src + "' (type " +
                   src_it->second.info->type_name + ") has no output port '" +
                   src_port + "'");
          resolved = false;
        }
      }
      if (resolved && dst_it != instances.end() && dst_it->second.info) {
        in_type = port_type(dst_it->second.info->inputs, dst_port);
        if (!in_type) {
          diag("UTS402", Severity::kError, lineno,
               "module '" + dst + "' (type " +
                   dst_it->second.info->type_name + ") has no input port '" +
                   dst_port + "'");
          resolved = false;
        }
      }
      if (!resolved) continue;
      if (out_type && in_type && *out_type != *in_type) {
        diag("UTS403", Severity::kError, lineno,
             "type mismatch connecting " + src + "." + src_port + " (" +
                 out_type->to_string() + ") to " + dst + "." + dst_port +
                 " (" + in_type->to_string() + ")",
             dst + "." + dst_port);
      }
      const std::string slot = dst + "." + dst_port;
      auto [slot_it, fresh] = input_src.emplace(slot, lineno);
      if (!fresh) {
        diag("UTS404", Severity::kError, lineno,
             "input '" + slot + "' already has a source (connected at line " +
                 std::to_string(slot_it->second) + ")");
        continue;
      }
      edges.push_back(Edge{src, src_port, dst, dst_port, lineno});
    } else if (verb == "loop") {
      std::string loop_name;
      ls >> loop_name;
      if (loop_name.empty()) {
        diag("UTS400", Severity::kError, lineno,
             "malformed loop line: expected 'loop <name> <module>...'");
        continue;
      }
      std::string member;
      int members = 0;
      while (ls >> member) {
        ++members;
        if (!instances.contains(member)) {
          diag("UTS402", Severity::kError, lineno,
               "solver loop '" + loop_name + "' references unknown module "
               "instance '" + member + "'");
          continue;
        }
        loops_of[member].insert(loop_name);
      }
      if (members == 0) {
        diag("UTS400", Severity::kError, lineno,
             "solver loop '" + loop_name + "' declares no members");
      }
    } else {
      diag("UTS400", Severity::kError, lineno,
           "unknown verb '" + verb + "'");
    }
  }

  // --- Graph analysis over the resolved edges ---------------------------
  // Kahn's algorithm; whatever cannot be ordered sits on a cycle.
  std::map<std::string, int> indegree;
  for (const std::string& name : order) indegree[name] = 0;
  for (const Edge& e : edges) ++indegree[e.dst];
  std::vector<std::string> ready;
  for (const std::string& name : order) {
    if (indegree[name] == 0) ready.push_back(name);
  }
  std::size_t next = 0;
  std::set<std::string> sorted;
  std::vector<std::string> topo;
  while (next < ready.size()) {
    const std::string cur = ready[next++];
    sorted.insert(cur);
    topo.push_back(cur);
    for (const Edge& e : edges) {
      if (e.src == cur && --indegree[e.dst] == 0) ready.push_back(e.dst);
    }
  }

  std::vector<std::string> cyclic;
  for (const std::string& name : order) {
    if (!sorted.contains(name)) cyclic.push_back(name);
  }
  if (!cyclic.empty()) {
    // Cyclic modules not covered by any declared solver loop, and cyclic
    // edges whose endpoints do not share a loop, are undeclared cycles.
    std::vector<std::string> undeclared;
    for (const std::string& name : cyclic) {
      if (!loops_of.contains(name)) undeclared.push_back(name);
    }
    if (!undeclared.empty()) {
      std::string names;
      for (std::size_t i = 0; i < undeclared.size(); ++i) {
        if (i) names += ", ";
        names += undeclared[i];
      }
      diag("UTS405", Severity::kError, 0,
           "cycle outside a declared solver loop involving: " + names);
    } else {
      for (const Edge& e : edges) {
        if (sorted.contains(e.src) || sorted.contains(e.dst)) continue;
        const std::set<std::string>& src_loops = loops_of[e.src];
        const std::set<std::string>& dst_loops = loops_of[e.dst];
        const bool shared = std::any_of(
            src_loops.begin(), src_loops.end(),
            [&](const std::string& l) { return dst_loops.contains(l); });
        if (!shared) {
          diag("UTS405", Severity::kError, e.line,
               "cyclic edge " + e.src + " -> " + e.dst +
                   " crosses solver loops: its modules share no declared "
                   "loop");
        }
      }
    }
  }

  // UTS406: a module with ports, none of them wired, in a network that
  // does have connections, will be scheduled but can neither feed nor
  // observe the rest of the graph.
  if (!edges.empty()) {
    std::set<std::string> wired;
    for (const Edge& e : edges) {
      wired.insert(e.src);
      wired.insert(e.dst);
    }
    for (const std::string& name : order) {
      const Instance& inst = instances[name];
      if (!inst.info) continue;
      const bool has_ports =
          !inst.info->inputs.empty() || !inst.info->outputs.empty();
      if (has_ports && !wired.contains(name)) {
        diag("UTS406", Severity::kWarning, inst.line,
             "module '" + name + "' (type " + inst.info->type_name +
                 ") has ports but no connections: it is unreachable from "
                 "the dataflow");
      }
    }
  }

  // Wavefront prediction + parallel-unsafety screen — only meaningful on
  // a DAG (the executive refuses cyclic networks outright).
  if (cyclic.empty() && !order.empty()) {
    std::map<std::string, std::size_t> depth;
    std::size_t max_depth = 0;
    for (const std::string& name : topo) {
      std::size_t d = 0;
      for (const Edge& e : edges) {
        if (e.dst == name) d = std::max(d, depth[e.src] + 1);
      }
      depth[name] = d;
      max_depth = std::max(max_depth, d);
    }
    std::vector<std::vector<std::string>> levels(max_depth + 1);
    for (const std::string& name : topo) levels[depth[name]].push_back(name);
    result.wavefront_widths.reserve(levels.size());
    for (std::size_t l = 0; l < levels.size(); ++l) {
      result.wavefront_widths.push_back(levels[l].size());
      diag("UTS408", Severity::kNote, 0,
           "level " + std::to_string(l) + ": predicted wavefront width " +
               std::to_string(levels[l].size()));
      if (levels[l].size() < 2) continue;
      for (const std::string& name : levels[l]) {
        const Instance& inst = instances[name];
        if (inst.info && !inst.info->thread_safe) {
          diag("UTS407", Severity::kWarning, inst.line,
               "module '" + name + "' (type " + inst.info->type_name +
                   ") is not thread-safe but sits on wavefront level " +
                   std::to_string(l) + " with " +
                   std::to_string(levels[l].size() - 1) +
                   " parallelizable peer(s): the scheduler will serialize "
                   "it");
        }
      }
    }
  }

  return result;
}

std::string flow_lint_to_json(
    const std::vector<std::pair<std::string, FlowLintResult>>& results) {
  std::ostringstream os;
  os << "{\n  \"tool_version\": \"" << json_escape(tool_version())
     << "\",\n  \"files\": [";
  bool first_file = true;
  for (const auto& [file, result] : results) {
    if (!first_file) os << ",";
    first_file = false;
    os << "\n    {\"file\": \"" << json_escape(file)
       << "\", \"errors\": " << result.error_count()
       << ", \"warnings\": " << result.warning_count() << ", \"ok\": "
       << (result.ok() ? "true" : "false") << ",\n     \"wavefront_widths\": [";
    for (std::size_t i = 0; i < result.wavefront_widths.size(); ++i) {
      if (i) os << ", ";
      os << result.wavefront_widths[i];
    }
    os << "],\n     \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic& d : result.diags) {
      if (!first) os << ",";
      first = false;
      os << "\n      {\"code\": \"" << json_escape(d.code)
         << "\", \"severity\": \"" << severity_name(d.severity)
         << "\", \"line\": " << d.loc.line << ", \"message\": \""
         << json_escape(d.message) << "\"";
      if (!d.type_path.empty()) {
        os << ", \"type_path\": \"" << json_escape(d.type_path) << "\"";
      }
      os << "}";
    }
    os << "\n     ]}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace npss::check
