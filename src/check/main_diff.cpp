// uts_diff — spec-evolution compatibility checker.
//
//   uts_diff [--json] <old-spec> <new-spec>
//
// Compares the export surface of two versions of a UTS specification and
// classifies every change as wire-compatible (UTS31x notes) or breaking
// (UTS30x errors) for clients compiled against the old version. Exit
// status: 0 when the new version is compatible, 1 when any breaking
// change was found (or either version fails to parse), 2 on usage or I/O
// problems.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/diff.hpp"
#include "util/status.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: uts_diff [--json] <old-spec> <new-spec>\n"
        "\n"
        "Spec-evolution compatibility check: classifies every change to the\n"
        "export surface as wire-compatible or breaking for clients compiled\n"
        "against the old version. Exit 0 = compatible, 1 = breaking, 2 =\n"
        "usage.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "uts_diff: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "uts_diff: expected exactly one old and one new spec file\n";
    usage(std::cerr);
    return 2;
  }

  std::vector<std::string> texts;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "uts_diff: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    texts.push_back(text.str());
  }

  try {
    npss::check::DiffResult result =
        npss::check::diff_spec_texts(paths[0], texts[0], paths[1], texts[1]);
    if (json) {
      std::cout << npss::check::diff_result_to_json(result, texts[0],
                                                    texts[1]);
    } else {
      std::cout << npss::check::render_human(result.all_diagnostics());
      std::cout << paths[0] << " -> " << paths[1] << ": "
                << result.breaking_count() << " breaking, "
                << result.compatible_count() << " compatible change(s): "
                << (result.breaking() ? "BREAKING" : "compatible") << "\n";
    }
    return result.breaking() ? 1 : 0;
  } catch (const npss::util::Error& e) {
    std::cerr << "uts_diff: " << e.what() << "\n";
    return 2;
  }
}
