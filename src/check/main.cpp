// uts_check — static interface analysis for Schooner configurations.
//
//   uts_check [options] <spec-file>...
//
// Lints every spec file (UTS0xx), link-checks the whole set as one
// multi-program configuration (UTS1xx), and optionally screens float
// portability for a set of architectures (UTS2xx). Exit status: 0 when no
// errors (warnings allowed), 1 when any error was reported, 2 on usage or
// I/O problems.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "util/status.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: uts_check [options] <spec-file>...\n"
        "\n"
        "Static analysis of UTS specification files: per-file lint, whole-\n"
        "configuration import/export link check, and float portability\n"
        "screening. Exit 0 = clean (warnings allowed), 1 = errors, 2 = usage.\n"
        "\n"
        "options:\n"
        "  --json           machine-readable report (diagnostics + export\n"
        "                   manifest for the strict-mode Manager) on stdout\n"
        "  --lint-only      per-file lint only; skip the configuration link\n"
        "                   check\n"
        "  --closed         treat unmatched imports (UTS101) as errors: the\n"
        "                   file set is the complete configuration\n"
        "  --arch <key>     add a machine architecture to the portability\n"
        "                   matrix (repeatable; also accepts a,b,c)\n"
        "  --list-codes     print the diagnostic code table and exit\n"
        "  -h, --help       this text\n";
}

void split_archs(const std::string& arg, std::vector<std::string>& out) {
  std::stringstream ss(arg);
  std::string key;
  while (std::getline(ss, key, ',')) {
    if (!key.empty()) out.push_back(key);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  npss::check::RunOptions options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--lint-only") {
      options.lint_only = true;
    } else if (arg == "--closed") {
      options.closed = true;
    } else if (arg == "--arch") {
      if (i + 1 >= argc) {
        std::cerr << "uts_check: --arch needs a catalog key\n";
        return 2;
      }
      split_archs(argv[++i], options.arch_keys);
    } else if (arg == "--list-codes") {
      for (const npss::check::CodeInfo& info :
           npss::check::diagnostic_code_table()) {
        std::cout << info.code << "  "
                  << npss::check::severity_name(info.default_severity) << "  "
                  << info.summary << "\n";
      }
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "uts_check: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "uts_check: no specification files given\n";
    usage(std::cerr);
    return 2;
  }

  std::vector<std::pair<std::string, std::string>> inputs;
  inputs.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "uts_check: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    inputs.emplace_back(path, text.str());
  }

  try {
    npss::check::RunResult result = npss::check::run_check(inputs, options);
    if (json) {
      std::cout << npss::check::run_result_to_json(result);
    } else {
      std::cout << npss::check::render_human(result.all_diagnostics());
      std::cout << paths.size() << " file(s): " << result.error_count()
                << " error(s), " << result.warning_count() << " warning(s)\n";
    }
    return result.ok() ? 0 : 1;
  } catch (const npss::util::Error& e) {
    std::cerr << "uts_check: " << e.what() << "\n";
    return 2;
  }
}
