// The UTS (Universal Type System) type model.
//
// UTS describes procedure parameters with a small Pascal-like type language:
// simple types float, double, integer, byte and string, plus structured
// arrays and records (§3.1). `double` was the only floating type in the
// original system; `float` was added when Fortran joined and the K&R
// promote-to-double convention stopped being adequate (§4.1) — the A2
// ablation bench measures exactly that difference.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace npss::uts {

enum class TypeKind : std::uint8_t {
  kFloat = 0,   ///< single-precision (canonical IEEE binary32)
  kDouble,      ///< double-precision (canonical IEEE binary64)
  kInteger,     ///< canonical 32-bit two's complement
  kByte,        ///< canonical unsigned 8-bit
  kString,      ///< length-prefixed byte string
  kArray,       ///< fixed-size homogeneous array
  kRecord,      ///< named heterogeneous fields
};

class Type;

struct Field {
  std::string name;
  // Defined out-of-line via pointer to keep Field usable before Type is
  // complete.
  std::shared_ptr<const Type> type;
};

/// Immutable structural type. Value-semantic handle over a shared node so
/// signatures can be copied freely between Manager tables and stubs.
class Type {
 public:
  // Factories for the simple types.
  static Type floating();
  static Type real_double();
  static Type integer();
  static Type byte();
  static Type string();
  static Type array(std::size_t size, Type element);
  static Type record(std::vector<std::pair<std::string, Type>> fields);

  TypeKind kind() const { return kind_; }
  bool simple() const { return kind_ < TypeKind::kArray; }

  /// Array accessors; throw TypeMismatchError if not an array.
  std::size_t array_size() const;
  const Type& element() const;

  /// Record accessors; throw TypeMismatchError if not a record.
  const std::vector<Field>& fields() const;

  /// Structural equality.
  bool operator==(const Type& other) const;
  bool operator!=(const Type& other) const { return !(*this == other); }

  /// UTS-syntax rendering, e.g. "array[4] of float".
  std::string to_string() const;

  /// Size in bytes of the canonical encoding; strings and any type
  /// containing one are variable-length and report nullopt via has value
  /// fixed_wire_size() < 0 sentinel avoided: returns true + size via out.
  bool fixed_wire_size(std::size_t& size) const;

 private:
  Type(TypeKind kind, std::size_t array_size, std::shared_ptr<const Type> elem,
       std::vector<Field> fields)
      : kind_(kind),
        array_size_(array_size),
        element_(std::move(elem)),
        fields_(std::make_shared<const std::vector<Field>>(std::move(fields))) {}

  explicit Type(TypeKind kind) : Type(kind, 0, nullptr, {}) {}

  TypeKind kind_;
  std::size_t array_size_;
  std::shared_ptr<const Type> element_;
  std::shared_ptr<const std::vector<Field>> fields_;
};

/// Parameter passing modes (§3.1: value, result, and var = value/result).
enum class ParamMode : std::uint8_t { kVal = 0, kRes, kVar };

std::string_view param_mode_name(ParamMode mode);

struct Param {
  std::string name;
  ParamMode mode;
  Type type;

  bool operator==(const Param& other) const {
    return name == other.name && mode == other.mode && type == other.type;
  }
};

/// An ordered parameter list; the unit the Manager type-checks.
using Signature = std::vector<Param>;

std::string signature_to_string(const Signature& sig);

/// Import/export compatibility per the paper's footnote 1: the import may be
/// a subsequence of the export — every import parameter must appear in the
/// export, in order, with identical name, mode, and type. Returns an empty
/// string when compatible, else a human-readable reason.
std::string signature_compatibility_error(const Signature& import_sig,
                                          const Signature& export_sig);

inline bool signatures_compatible(const Signature& import_sig,
                                  const Signature& export_sig) {
  return signature_compatibility_error(import_sig, export_sig).empty();
}

}  // namespace npss::uts
