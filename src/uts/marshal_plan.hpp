// Compiled marshal plans — the steady-state fast path of the UTS codec.
//
// The paper's stub compilers existed so data conversion could be
// specialized per architecture pair instead of interpreted per call (§4.1
// shows conversion dominating Schooner call cost). A MarshalPlan is that
// idea applied here: at bind/import time a Signature + Direction is
// compiled into a flat instruction list — contiguous scalar runs, string
// slots, record/array structure flattened with precomputed wire offsets —
// and steady-state calls execute the plan instead of recursing over Type.
//
// Two execution modes per scalar run:
//  * same-representation fast path — when the architecture's native float
//    formats ARE the canonical formats (IEEE binary32/binary64), the
//    quantize round trip through float_encode/float_decode is the identity,
//    so runs reduce to bulk big-endian bit moves (no per-element heap
//    allocation). binary32 keeps the finite-overflow RangeError with text
//    identical to arch::encode_ieee32.
//  * fallback — Cray / IBM-hex architectures go through exactly the same
//    detail::quantize / float_encode calls as the interpreted codec, so
//    wire bytes, precision loss, flush-to-zero and RangeError text are
//    bit-for-bit unchanged (test_marshal_plan fuzzes this equivalence).
//
// Plans are architecture-independent: one plan serves every arch, choosing
// fast or fallback per marshal()/unmarshal() call.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "uts/canonical.hpp"

namespace npss::uts {

/// One step of a compiled plan. Scalar runs cover `count` contiguous
/// leaves that are direct children of the current composite frame (the
/// compiler never merges runs across a composite boundary, so decode can
/// rebuild structure without re-consulting the Type).
enum class PlanOp : std::uint8_t {
  kFloatRun = 0,  ///< `count` canonical binary32 scalars
  kDoubleRun,     ///< `count` canonical binary64 scalars
  kIntegerRun,    ///< `count` canonical 32-bit integers
  kByteRun,       ///< `count` canonical octets
  kStringRun,     ///< `count` length-prefixed strings
  kOpenArray,     ///< descend into an array of `count` elements
  kOpenRecord,    ///< descend into a record of `count` fields
};

std::string_view plan_op_name(PlanOp op);

struct PlanStep {
  PlanOp op;
  std::uint32_t count;
  std::uint32_t offset;  ///< wire offset within the parameter batch;
                         ///< meaningful only when the plan is fixed_size()
};

/// A Signature + Direction compiled for repeated marshal/unmarshal.
/// Immutable after construction; safe to share across threads.
class MarshalPlan {
 public:
  MarshalPlan(Signature signature, Direction direction);

  /// Drop-in replacements for uts::marshal / uts::unmarshal with the same
  /// signature/direction baked in: identical bytes, identical errors.
  util::Bytes marshal(const arch::ArchDescriptor& source,
                      const ValueList& values) const;
  /// Append the marshaled batch to `out` — identical bytes and errors,
  /// but no intermediate buffer: the RPC bus marshals call arguments
  /// directly into a connection's pending frame buffer. On error, bytes
  /// may have been appended; callers that need atomicity record
  /// out.size() first and truncate back.
  void marshal_into(const arch::ArchDescriptor& source,
                    const ValueList& values, util::ByteWriter& out) const;
  ValueList unmarshal(const arch::ArchDescriptor& target,
                      std::span<const std::uint8_t> bytes) const;

  /// True when `arch`'s native formats are already the canonical IEEE
  /// formats, so scalar runs take the bulk fast path.
  static bool same_representation(const arch::ArchDescriptor& arch);

  Direction direction() const { return direction_; }
  const Signature& signature() const { return signature_; }

  /// No strings anywhere in the travelling batch: the wire size is a
  /// compile-time constant (used to pre-size buffers).
  bool fixed_size() const { return fixed_; }
  std::size_t fixed_wire_bytes() const { return fixed_bytes_; }
  std::size_t step_count() const { return steps_.size(); }

  /// Human-readable instruction listing (stubgen embeds this in generated
  /// headers so a stub documents its own wire program).
  std::string describe() const;

 private:
  struct ParamProgram {
    std::uint32_t param;       ///< signature index
    std::uint32_t first_step;  ///< range into steps_
    std::uint32_t step_span;
    bool composite;            ///< needs check_value before encoding
    Value default_slot;        ///< fill for non-travelling unmarshal slots
  };

  void compile_param(std::uint32_t index);
  void compile_type(const Type& type, std::uint32_t repeat);
  void emit_leaf(PlanOp op, std::uint32_t repeat);

  void encode_param(const ParamProgram& p,
                    const arch::ArchDescriptor& source, const Value& value,
                    util::ByteWriter& out, bool fast) const;
  Value decode_param(const ParamProgram& p,
                     const arch::ArchDescriptor& target, util::ByteReader& in,
                     bool fast) const;

  Signature signature_;
  Direction direction_;
  std::vector<PlanStep> steps_;
  std::vector<ParamProgram> params_;  ///< travelling AND non-travelling
  bool fixed_ = true;
  std::size_t fixed_bytes_ = 0;
  // Compile-time state (dead after construction).
  long mergeable_ = -1;  ///< index of the run the next same-kind leaf may
                         ///< join, -1 across composite boundaries
  std::uint32_t wire_cursor_ = 0;
};

/// Compile (or copy a cached) plan for a signature/direction pair.
std::shared_ptr<const MarshalPlan> compile_plan(const Signature& signature,
                                                Direction direction);

}  // namespace npss::uts
