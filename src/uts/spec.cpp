#include "uts/spec.hpp"

#include <cctype>
#include <optional>
#include <sstream>

namespace npss::uts {

using util::LookupError;
using util::ParseError;

namespace {

enum class TokKind : std::uint8_t {
  kIdent,
  kString,
  kInt,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  long number = 0;
  int line = 0;
  int column = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_space_and_comments();
    const int line = line_, col = col_;
    if (pos_ >= text_.size()) return {TokKind::kEnd, "", 0, line, col};
    char c = text_[pos_];
    if (c == '(') return punct(TokKind::kLParen, line, col);
    if (c == ')') return punct(TokKind::kRParen, line, col);
    if (c == '[') return punct(TokKind::kLBracket, line, col);
    if (c == ']') return punct(TokKind::kRBracket, line, col);
    if (c == ',') return punct(TokKind::kComma, line, col);
    if (c == ';') return punct(TokKind::kSemicolon, line, col);
    if (c == ':') return punct(TokKind::kColon, line, col);
    if (c == '"') return string_token(line, col);
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return number_token(line, col);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ident_token(line, col);
    }
    throw ParseError("unexpected character '" + std::string(1, c) +
                     "' at line " + std::to_string(line) + ":" +
                     std::to_string(col));
  }

 private:
  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  Token punct(TokKind kind, int line, int col) {
    std::string text(1, text_[pos_]);
    advance();
    return {kind, text, 0, line, col};
  }

  Token string_token(int line, int col) {
    advance();  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') {
        throw ParseError("unterminated string at line " +
                         std::to_string(line));
      }
      out.push_back(text_[pos_]);
      advance();
    }
    if (pos_ >= text_.size()) {
      throw ParseError("unterminated string at line " + std::to_string(line));
    }
    advance();  // closing quote
    return {TokKind::kString, out, 0, line, col};
  }

  Token number_token(int line, int col) {
    std::string out;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      out.push_back(text_[pos_]);
      advance();
    }
    return {TokKind::kInt, out, std::stol(out), line, col};
  }

  Token ident_token(int line, int col) {
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      out.push_back(text_[pos_]);
      advance();
    }
    return {TokKind::kIdent, out, 0, line, col};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { shift(); }

  SpecFile parse() {
    SpecFile file;
    while (tok_.kind != TokKind::kEnd) {
      file.decls.push_back(decl());
    }
    return file;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what + " at line " + std::to_string(tok_.line) + ":" +
                     std::to_string(tok_.column) + " (near '" + tok_.text +
                     "')");
  }

  void shift() { tok_ = lexer_.next(); }

  Token expect(TokKind kind, const char* what) {
    if (tok_.kind != kind) fail(std::string("expected ") + what);
    Token t = tok_;
    shift();
    return t;
  }

  void expect_keyword(const char* kw) {
    if (tok_.kind != TokKind::kIdent || tok_.text != kw) {
      fail(std::string("expected keyword '") + kw + "'");
    }
    shift();
  }

  ProcDecl decl() {
    if (tok_.kind != TokKind::kIdent ||
        (tok_.text != "export" && tok_.text != "import")) {
      fail("expected 'export' or 'import'");
    }
    DeclKind kind =
        tok_.text == "export" ? DeclKind::kExport : DeclKind::kImport;
    shift();
    Token name = expect(TokKind::kIdent, "procedure name");
    expect_keyword("prog");
    expect(TokKind::kLParen, "'('");
    Signature sig;
    if (tok_.kind != TokKind::kRParen) {
      sig.push_back(param());
      while (tok_.kind == TokKind::kComma) {
        shift();
        sig.push_back(param());
      }
    }
    expect(TokKind::kRParen, "')'");
    return ProcDecl{kind, name.text, std::move(sig)};
  }

  Param param() {
    Token name = expect(TokKind::kString, "quoted parameter name");
    ParamMode mode = param_mode();
    Type t = type();
    return Param{name.text, mode, std::move(t)};
  }

  ParamMode param_mode() {
    if (tok_.kind != TokKind::kIdent) fail("expected parameter mode");
    std::optional<ParamMode> mode;
    if (tok_.text == "val") mode = ParamMode::kVal;
    if (tok_.text == "res") mode = ParamMode::kRes;
    if (tok_.text == "var") mode = ParamMode::kVar;
    if (!mode) fail("expected 'val', 'res' or 'var'");
    shift();
    return *mode;
  }

  Type type() {
    if (tok_.kind != TokKind::kIdent) fail("expected a type");
    std::string head = tok_.text;
    shift();
    if (head == "float") return Type::floating();
    if (head == "double") return Type::real_double();
    if (head == "integer") return Type::integer();
    if (head == "byte") return Type::byte();
    if (head == "string") return Type::string();
    if (head == "array") {
      expect(TokKind::kLBracket, "'['");
      Token size = expect(TokKind::kInt, "array size");
      expect(TokKind::kRBracket, "']'");
      expect_keyword("of");
      if (size.number <= 0) fail("array size must be positive");
      return Type::array(static_cast<std::size_t>(size.number), type());
    }
    if (head == "record") {
      std::vector<std::pair<std::string, Type>> fields;
      fields.push_back(field());
      while (tok_.kind == TokKind::kSemicolon) {
        shift();
        fields.push_back(field());
      }
      expect_keyword("end");
      return Type::record(std::move(fields));
    }
    fail("unknown type '" + head + "'");
  }

  std::pair<std::string, Type> field() {
    Token name = expect(TokKind::kString, "quoted field name");
    expect(TokKind::kColon, "':'");
    return {name.text, type()};
  }

  Lexer lexer_;
  Token tok_{TokKind::kEnd, "", 0, 0, 0};
};

}  // namespace

const ProcDecl& SpecFile::find(std::string_view name) const {
  for (const ProcDecl& d : decls) {
    if (d.name == name) return d;
  }
  throw LookupError("no declaration named '" + std::string(name) +
                    "' in spec file");
}

bool SpecFile::contains(std::string_view name) const {
  for (const ProcDecl& d : decls) {
    if (d.name == name) return true;
  }
  return false;
}

SpecFile parse_spec(std::string_view text) { return Parser(text).parse(); }

std::string decl_to_string(const ProcDecl& decl) {
  std::ostringstream os;
  os << (decl.kind == DeclKind::kExport ? "export" : "import") << ' '
     << decl.name << ' ';
  os << "prog(";
  bool first = true;
  for (const Param& p : decl.signature) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << p.name << "\" " << param_mode_name(p.mode) << ' '
       << p.type.to_string();
  }
  os << ")";
  return os.str();
}

std::string export_to_import_text(const SpecFile& exports) {
  std::ostringstream os;
  for (const ProcDecl& d : exports.decls) {
    if (d.kind != DeclKind::kExport) continue;
    ProcDecl imported = d;
    imported.kind = DeclKind::kImport;
    os << decl_to_string(imported) << "\n";
  }
  return os.str();
}

}  // namespace npss::uts
