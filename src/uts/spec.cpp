#include "uts/spec.hpp"

#include <cctype>
#include <optional>
#include <sstream>

namespace npss::uts {

using util::LookupError;
using util::ParseError;

namespace {

/// Internal signal for malformed input, carrying both the legacy message
/// text (what parse_spec has always thrown) and a structured location +
/// brief message for parse_spec_located diagnostics.
struct SyntaxError {
  std::string legacy;  ///< full text for util::ParseError
  std::string brief;   ///< bare message for SpecIssue
  SourceLoc loc;
};

enum class TokKind : std::uint8_t {
  kIdent,
  kString,
  kInt,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  long number = 0;
  int line = 0;
  int column = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_space_and_comments();
    const int line = line_, col = col_;
    if (pos_ >= text_.size()) return {TokKind::kEnd, "", 0, line, col};
    char c = text_[pos_];
    if (c == '(') return punct(TokKind::kLParen, line, col);
    if (c == ')') return punct(TokKind::kRParen, line, col);
    if (c == '[') return punct(TokKind::kLBracket, line, col);
    if (c == ']') return punct(TokKind::kRBracket, line, col);
    if (c == ',') return punct(TokKind::kComma, line, col);
    if (c == ';') return punct(TokKind::kSemicolon, line, col);
    if (c == ':') return punct(TokKind::kColon, line, col);
    if (c == '"') return string_token(line, col);
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return number_token(line, col);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ident_token(line, col);
    }
    std::string brief = "unexpected character '" + std::string(1, c) + "'";
    throw SyntaxError{brief + " at line " + std::to_string(line) + ":" +
                          std::to_string(col),
                      brief, SourceLoc{line, col}};
  }

 private:
  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  Token punct(TokKind kind, int line, int col) {
    std::string text(1, text_[pos_]);
    advance();
    return {kind, text, 0, line, col};
  }

  [[noreturn]] void unterminated_string(int line, int col) const {
    throw SyntaxError{"unterminated string at line " + std::to_string(line) +
                          ":" + std::to_string(col),
                      "unterminated string", SourceLoc{line, col}};
  }

  Token string_token(int line, int col) {
    advance();  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') unterminated_string(line, col);
      out.push_back(text_[pos_]);
      advance();
    }
    if (pos_ >= text_.size()) unterminated_string(line, col);
    advance();  // closing quote
    return {TokKind::kString, out, 0, line, col};
  }

  Token number_token(int line, int col) {
    std::string out;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      out.push_back(text_[pos_]);
      advance();
    }
    long value = 0;
    try {
      value = std::stol(out);
    } catch (const std::out_of_range&) {
      // Previously escaped as a bare std::out_of_range with no position.
      throw SyntaxError{"integer literal '" + out + "' out of range at line " +
                            std::to_string(line) + ":" + std::to_string(col),
                        "integer literal '" + out + "' out of range",
                        SourceLoc{line, col}};
    }
    return {TokKind::kInt, out, value, line, col};
  }

  Token ident_token(int line, int col) {
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      out.push_back(text_[pos_]);
      advance();
    }
    return {TokKind::kIdent, out, 0, line, col};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Parser {
 public:
  /// With a non-null `issues`, the parser recovers from non-positive array
  /// bounds (UTS003) and empty records (UTS005), recording them instead of
  /// failing; all other malformed input still throws SyntaxError.
  explicit Parser(std::string_view text, std::vector<SpecIssue>* issues = nullptr)
      : lexer_(text), issues_(issues) {
    shift();
  }

  SpecFile parse() {
    while (tok_.kind != TokKind::kEnd) {
      file_.decls.push_back(decl());
    }
    return std::move(file_);
  }

  /// Declarations completed before a SyntaxError stopped the parse.
  SpecFile take_partial() { return std::move(file_); }

 private:
  bool recovering() const { return issues_ != nullptr; }

  void record(std::string code, std::string message, SourceLoc loc) {
    issues_->push_back(
        SpecIssue{std::move(code), std::move(message), loc, false});
  }

  [[noreturn]] void fail_at(const Token& t, const std::string& what) const {
    throw SyntaxError{what + " at line " + std::to_string(t.line) + ":" +
                          std::to_string(t.column) + " (near '" + t.text +
                          "')",
                      what + " (near '" + t.text + "')",
                      SourceLoc{t.line, t.column}};
  }

  [[noreturn]] void fail(const std::string& what) const {
    fail_at(tok_, what);
  }

  void shift() { tok_ = lexer_.next(); }

  Token expect(TokKind kind, const char* what) {
    if (tok_.kind != kind) fail(std::string("expected ") + what);
    Token t = tok_;
    shift();
    return t;
  }

  void expect_keyword(const char* kw) {
    if (tok_.kind != TokKind::kIdent || tok_.text != kw) {
      fail(std::string("expected keyword '") + kw + "'");
    }
    shift();
  }

  ProcDecl decl() {
    if (tok_.kind != TokKind::kIdent ||
        (tok_.text != "export" && tok_.text != "import")) {
      fail("expected 'export' or 'import'");
    }
    const SourceLoc decl_loc{tok_.line, tok_.column};
    DeclKind kind =
        tok_.text == "export" ? DeclKind::kExport : DeclKind::kImport;
    shift();
    Token name = expect(TokKind::kIdent, "procedure name");
    expect_keyword("prog");
    expect(TokKind::kLParen, "'('");
    Signature sig;
    std::vector<SourceLoc> param_locs;
    if (tok_.kind != TokKind::kRParen) {
      sig.push_back(param(param_locs));
      while (tok_.kind == TokKind::kComma) {
        shift();
        sig.push_back(param(param_locs));
      }
    }
    expect(TokKind::kRParen, "')'");
    return ProcDecl{kind, name.text, std::move(sig), decl_loc,
                    std::move(param_locs)};
  }

  Param param(std::vector<SourceLoc>& locs) {
    Token name = expect(TokKind::kString, "quoted parameter name");
    locs.push_back(SourceLoc{name.line, name.column});
    ParamMode mode = param_mode();
    Type t = type();
    return Param{name.text, mode, std::move(t)};
  }

  ParamMode param_mode() {
    if (tok_.kind != TokKind::kIdent) fail("expected parameter mode");
    std::optional<ParamMode> mode;
    if (tok_.text == "val") mode = ParamMode::kVal;
    if (tok_.text == "res") mode = ParamMode::kRes;
    if (tok_.text == "var") mode = ParamMode::kVar;
    if (!mode) fail("expected 'val', 'res' or 'var'");
    shift();
    return *mode;
  }

  Type type() {
    if (tok_.kind != TokKind::kIdent) fail("expected a type");
    const Token head_tok = tok_;
    const std::string& head = head_tok.text;
    shift();
    if (head == "float") return Type::floating();
    if (head == "double") return Type::real_double();
    if (head == "integer") return Type::integer();
    if (head == "byte") return Type::byte();
    if (head == "string") return Type::string();
    if (head == "array") {
      expect(TokKind::kLBracket, "'['");
      Token size = expect(TokKind::kInt, "array size");
      expect(TokKind::kRBracket, "']'");
      expect_keyword("of");
      if (size.number <= 0) {
        if (recovering()) {
          record("UTS003",
                 "array size must be positive (got " + size.text + ")",
                 SourceLoc{size.line, size.column});
          size.number = 1;
        } else {
          throw SyntaxError{"array size must be positive at line " +
                                std::to_string(size.line) + ":" +
                                std::to_string(size.column),
                            "array size must be positive",
                            SourceLoc{size.line, size.column}};
        }
      }
      return Type::array(static_cast<std::size_t>(size.number), type());
    }
    if (head == "record") {
      std::vector<std::pair<std::string, Type>> fields;
      if (recovering() && tok_.kind == TokKind::kIdent && tok_.text == "end") {
        record("UTS005", "empty record",
               SourceLoc{head_tok.line, head_tok.column});
        shift();
        return Type::record(std::move(fields));
      }
      fields.push_back(field());
      while (tok_.kind == TokKind::kSemicolon) {
        shift();
        fields.push_back(field());
      }
      expect_keyword("end");
      return Type::record(std::move(fields));
    }
    fail_at(head_tok, "unknown type '" + head + "'");
  }

  std::pair<std::string, Type> field() {
    Token name = expect(TokKind::kString, "quoted field name");
    expect(TokKind::kColon, "':'");
    return {name.text, type()};
  }

  Lexer lexer_;
  Token tok_{TokKind::kEnd, "", 0, 0, 0};
  SpecFile file_;
  std::vector<SpecIssue>* issues_;
};

}  // namespace

const ProcDecl& SpecFile::find(std::string_view name) const {
  for (const ProcDecl& d : decls) {
    if (d.name == name) return d;
  }
  throw LookupError("no declaration named '" + std::string(name) +
                    "' in spec file");
}

bool SpecFile::contains(std::string_view name) const {
  for (const ProcDecl& d : decls) {
    if (d.name == name) return true;
  }
  return false;
}

SpecFile parse_spec(std::string_view text) {
  try {
    return Parser(text).parse();
  } catch (const SyntaxError& e) {
    throw ParseError(e.legacy);
  }
}

ParsedSpec parse_spec_located(std::string_view text) {
  ParsedSpec out;
  Parser parser(text, &out.issues);
  try {
    out.file = parser.parse();
  } catch (const SyntaxError& e) {
    out.issues.push_back(SpecIssue{"UTS010", e.brief, e.loc, true});
    out.file = parser.take_partial();
  }
  return out;
}

std::string decl_to_string(const ProcDecl& decl) {
  std::ostringstream os;
  os << (decl.kind == DeclKind::kExport ? "export" : "import") << ' '
     << decl.name << ' ';
  os << "prog(";
  bool first = true;
  for (const Param& p : decl.signature) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << p.name << "\" " << param_mode_name(p.mode) << ' '
       << p.type.to_string();
  }
  os << ")";
  return os.str();
}

std::string export_to_import_text(const SpecFile& exports) {
  std::ostringstream os;
  for (const ProcDecl& d : exports.decls) {
    if (d.kind != DeclKind::kExport) continue;
    ProcDecl imported = d;
    imported.kind = DeclKind::kImport;
    os << decl_to_string(imported) << "\n";
  }
  return os.str();
}

}  // namespace npss::uts
