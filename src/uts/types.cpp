#include "uts/types.hpp"

#include <sstream>

namespace npss::uts {

using util::TypeMismatchError;

Type Type::floating() { return Type(TypeKind::kFloat); }
Type Type::real_double() { return Type(TypeKind::kDouble); }
Type Type::integer() { return Type(TypeKind::kInteger); }
Type Type::byte() { return Type(TypeKind::kByte); }
Type Type::string() { return Type(TypeKind::kString); }

Type Type::array(std::size_t size, Type element) {
  return Type(TypeKind::kArray, size,
              std::make_shared<const Type>(std::move(element)), {});
}

Type Type::record(std::vector<std::pair<std::string, Type>> fields) {
  std::vector<Field> out;
  out.reserve(fields.size());
  for (auto& [name, type] : fields) {
    out.push_back(Field{name, std::make_shared<const Type>(std::move(type))});
  }
  return Type(TypeKind::kRecord, 0, nullptr, std::move(out));
}

std::size_t Type::array_size() const {
  if (kind_ != TypeKind::kArray) {
    throw TypeMismatchError("array_size() on non-array type " + to_string());
  }
  return array_size_;
}

const Type& Type::element() const {
  if (kind_ != TypeKind::kArray) {
    throw TypeMismatchError("element() on non-array type " + to_string());
  }
  return *element_;
}

const std::vector<Field>& Type::fields() const {
  if (kind_ != TypeKind::kRecord) {
    throw TypeMismatchError("fields() on non-record type " + to_string());
  }
  return *fields_;
}

bool Type::operator==(const Type& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::kArray:
      return array_size_ == other.array_size_ && *element_ == *other.element_;
    case TypeKind::kRecord: {
      const auto& a = *fields_;
      const auto& b = *other.fields_;
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name || !(*a[i].type == *b[i].type)) {
          return false;
        }
      }
      return true;
    }
    default:
      return true;
  }
}

std::string Type::to_string() const {
  switch (kind_) {
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kInteger: return "integer";
    case TypeKind::kByte: return "byte";
    case TypeKind::kString: return "string";
    case TypeKind::kArray:
      return "array[" + std::to_string(array_size_) + "] of " +
             element_->to_string();
    case TypeKind::kRecord: {
      std::ostringstream os;
      os << "record ";
      bool first = true;
      for (const Field& f : *fields_) {
        if (!first) os << "; ";
        first = false;
        os << '"' << f.name << "\": " << f.type->to_string();
      }
      os << " end";
      return os.str();
    }
  }
  return "?";
}

bool Type::fixed_wire_size(std::size_t& size) const {
  switch (kind_) {
    case TypeKind::kFloat: size = 4; return true;
    case TypeKind::kDouble: size = 8; return true;
    case TypeKind::kInteger: size = 4; return true;
    case TypeKind::kByte: size = 1; return true;
    case TypeKind::kString: return false;
    case TypeKind::kArray: {
      std::size_t elem = 0;
      if (!element_->fixed_wire_size(elem)) return false;
      size = elem * array_size_;
      return true;
    }
    case TypeKind::kRecord: {
      std::size_t total = 0;
      for (const Field& f : *fields_) {
        std::size_t field_size = 0;
        if (!f.type->fixed_wire_size(field_size)) return false;
        total += field_size;
      }
      size = total;
      return true;
    }
  }
  return false;
}

std::string_view param_mode_name(ParamMode mode) {
  switch (mode) {
    case ParamMode::kVal: return "val";
    case ParamMode::kRes: return "res";
    case ParamMode::kVar: return "var";
  }
  return "?";
}

std::string signature_to_string(const Signature& sig) {
  std::ostringstream os;
  os << "prog(";
  bool first = true;
  for (const Param& p : sig) {
    if (!first) os << ", ";
    first = false;
    os << '"' << p.name << "\" " << param_mode_name(p.mode) << ' '
       << p.type.to_string();
  }
  os << ')';
  return os.str();
}

namespace {

/// val-parameter widening: an import `array[n] of T` may bind an export
/// `array[m] of T` when n <= m. The wire layout follows the *import*
/// signature and a val parameter travels only in the request, so the
/// exporter simply receives the narrower prefix the caller declared —
/// nothing in the reply depends on the export's wider bound. Every other
/// shape (records included: field order is wire layout) must be identical.
bool val_widening_ok(const Type& wanted, const Type& offered) {
  if (wanted == offered) return true;
  if (wanted.kind() != TypeKind::kArray || offered.kind() != TypeKind::kArray) {
    return false;
  }
  return wanted.array_size() <= offered.array_size() &&
         val_widening_ok(wanted.element(), offered.element());
}

}  // namespace

std::string signature_compatibility_error(const Signature& import_sig,
                                          const Signature& export_sig) {
  std::size_t export_pos = 0;
  for (const Param& wanted : import_sig) {
    // Scan forward in the export for the next parameter with this name;
    // skipping is what makes the import a *subsequence* of the export.
    bool found = false;
    while (export_pos < export_sig.size()) {
      const Param& offered = export_sig[export_pos];
      ++export_pos;
      if (offered.name != wanted.name) continue;
      if (offered.mode != wanted.mode) {
        return "parameter \"" + wanted.name + "\": import mode " +
               std::string(param_mode_name(wanted.mode)) +
               " != export mode " +
               std::string(param_mode_name(offered.mode));
      }
      const bool type_ok =
          wanted.mode == ParamMode::kVal
              ? val_widening_ok(wanted.type, offered.type)
              : wanted.type == offered.type;
      if (!type_ok) {
        return "parameter \"" + wanted.name + "\": import type " +
               wanted.type.to_string() + " != export type " +
               offered.type.to_string();
      }
      found = true;
      break;
    }
    if (!found) {
      return "import parameter \"" + wanted.name +
             "\" not found in export (or out of order)";
    }
  }
  return {};
}

}  // namespace npss::uts
