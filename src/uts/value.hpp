// Runtime values flowing through UTS marshaling.
//
// A Value is a dynamically-typed tree mirroring the UTS type language. The
// host program manipulates Values (or uses the typed convenience accessors);
// the codecs in canonical.hpp validate them against a Type when encoding.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <variant>
#include <vector>

#include "uts/types.hpp"
#include "util/status.hpp"

namespace npss::uts {

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  Value() : data_(0.0) {}

  static Value real(double v) { return Value(Data(v)); }
  static Value integer(std::int64_t v) { return Value(Data(v)); }
  static Value byte(std::uint8_t v) { return Value(Data(v)); }
  static Value str(std::string v) { return Value(Data(std::move(v))); }
  static Value array(ValueList items) { return Value(Data(std::move(items))); }
  static Value record(ValueList fields) {
    return Value(Data(std::move(fields)));
  }

  /// Convenience: a real-valued array from doubles.
  static Value real_array(std::initializer_list<double> items) {
    ValueList out;
    out.reserve(items.size());
    for (double v : items) out.push_back(real(v));
    return array(std::move(out));
  }
  static Value real_array(const std::vector<double>& items) {
    ValueList out;
    out.reserve(items.size());
    for (double v : items) out.push_back(real(v));
    return array(std::move(out));
  }

  bool is_real() const { return std::holds_alternative<double>(data_); }
  bool is_integer() const {
    return std::holds_alternative<std::int64_t>(data_);
  }
  bool is_byte() const { return std::holds_alternative<std::uint8_t>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_composite() const {
    return std::holds_alternative<ValueList>(data_);
  }

  /// Checked accessors. Numeric accessors coerce between real/integer/byte
  /// (a Fortran REAL argument fed from an integer widget, say); composite
  /// and string access is strict.
  double as_real() const;
  std::int64_t as_integer() const;
  std::uint8_t as_byte() const;
  const std::string& as_string() const;
  const ValueList& items() const;
  ValueList& items();

  /// Flatten a real-valued array into a vector<double>.
  std::vector<double> as_real_vector() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

  /// Diagnostic rendering.
  std::string to_string() const;

 private:
  using Data =
      std::variant<double, std::int64_t, std::uint8_t, std::string, ValueList>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

/// A zero/empty value of the given type (used for omitted subset-import
/// parameters and for initializing res slots).
Value default_value(const Type& type);

/// Validate a value structurally against a type; throws TypeMismatchError
/// with a path-qualified message on the first mismatch.
void check_value(const Type& type, const Value& value,
                 const std::string& path = "");

}  // namespace npss::uts
