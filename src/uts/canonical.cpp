#include "uts/canonical.hpp"

#include <algorithm>
#include <limits>

namespace npss::uts {

using arch::ArchDescriptor;
using arch::FloatFormatKind;
using util::ByteReader;
using util::ByteWriter;
using util::Bytes;
using util::RangeError;

namespace detail {

double quantize(const ArchDescriptor& arch, FloatFormatKind format,
                double value) {
  Bytes native = arch::float_encode(format, value);
  (void)arch;
  return arch::float_decode(format, native);
}

std::int32_t to_canonical_integer(const ArchDescriptor& arch,
                                  std::int64_t value) {
  // The UTS canonical integer is 32-bit; a Cray 64-bit INTEGER whose
  // magnitude exceeds it is an error (§4.1: larger magnitudes than the
  // standard used by UTS).
  if (value < std::numeric_limits<std::int32_t>::min() ||
      value > std::numeric_limits<std::int32_t>::max()) {
    throw RangeError("integer " + std::to_string(value) + " on " + arch.name +
                     " exceeds the UTS 32-bit canonical integer range");
  }
  return static_cast<std::int32_t>(value);
}

}  // namespace detail

namespace {

using detail::quantize;
using detail::to_canonical_integer;

double quantize_single(const ArchDescriptor& arch, double value) {
  return quantize(arch, arch.float_single, value);
}

double quantize_double(const ArchDescriptor& arch, double value) {
  return quantize(arch, arch.float_double, value);
}

}  // namespace

bool param_travels(ParamMode mode, Direction direction) {
  switch (mode) {
    case ParamMode::kVal: return direction == Direction::kRequest;
    case ParamMode::kRes: return direction == Direction::kReply;
    case ParamMode::kVar: return true;
  }
  return false;
}

void encode_canonical(const ArchDescriptor& source, const Type& type,
                      const Value& value, ByteWriter& out) {
  switch (type.kind()) {
    case TypeKind::kFloat: {
      double q = quantize_single(source, value.as_real());
      // Canonical binary32; a value whose magnitude fits the source format
      // (e.g. Cray) but not binary32 is rejected here.
      Bytes canon = arch::float_encode(FloatFormatKind::kIeee32, q);
      out.raw(canon);
      return;
    }
    case TypeKind::kDouble: {
      double q = quantize_double(source, value.as_real());
      Bytes canon = arch::float_encode(FloatFormatKind::kIeee64, q);
      out.raw(canon);
      return;
    }
    case TypeKind::kInteger:
      out.i32(to_canonical_integer(source, value.as_integer()));
      return;
    case TypeKind::kByte:
      out.u8(value.as_byte());
      return;
    case TypeKind::kString:
      out.str(value.as_string());
      return;
    case TypeKind::kArray: {
      check_value(type, value);
      for (const Value& item : value.items()) {
        encode_canonical(source, type.element(), item, out);
      }
      return;
    }
    case TypeKind::kRecord: {
      check_value(type, value);
      const auto& fields = type.fields();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        encode_canonical(source, *fields[i].type, value.items()[i], out);
      }
      return;
    }
  }
}

Value decode_canonical(const ArchDescriptor& target, const Type& type,
                       ByteReader& in) {
  switch (type.kind()) {
    case TypeKind::kFloat: {
      double canon =
          arch::float_decode(FloatFormatKind::kIeee32, in.raw(4));
      return Value::real(quantize_single(target, canon));
    }
    case TypeKind::kDouble: {
      double canon =
          arch::float_decode(FloatFormatKind::kIeee64, in.raw(8));
      return Value::real(quantize_double(target, canon));
    }
    case TypeKind::kInteger: {
      std::int32_t v = in.i32();
      // Every catalog architecture's INTEGER is at least 32 bits, so the
      // canonical value always fits on the target.
      return Value::integer(v);
    }
    case TypeKind::kByte:
      return Value::byte(in.u8());
    case TypeKind::kString:
      return Value::str(in.str());
    case TypeKind::kArray: {
      ValueList items;
      items.reserve(type.array_size());
      for (std::size_t i = 0; i < type.array_size(); ++i) {
        items.push_back(decode_canonical(target, type.element(), in));
      }
      return Value::array(std::move(items));
    }
    case TypeKind::kRecord: {
      ValueList fields;
      fields.reserve(type.fields().size());
      for (const Field& f : type.fields()) {
        fields.push_back(decode_canonical(target, *f.type, in));
      }
      return Value::record(std::move(fields));
    }
  }
  throw util::EncodingError("unknown type kind");
}

util::Bytes marshal(const ArchDescriptor& source, const Signature& signature,
                    const ValueList& values, Direction direction) {
  if (values.size() != signature.size()) {
    throw util::TypeMismatchError(
        "marshal: " + std::to_string(values.size()) + " values for " +
        std::to_string(signature.size()) + " parameters");
  }
  ByteWriter out;
  for (std::size_t i = 0; i < signature.size(); ++i) {
    if (!param_travels(signature[i].mode, direction)) continue;
    try {
      encode_canonical(source, signature[i].type, values[i], out);
    } catch (const util::Error& e) {
      throw util::Error(e.code(), "parameter \"" + signature[i].name +
                                      "\": " + e.what());
    }
  }
  return std::move(out).take();
}

ValueList unmarshal(const ArchDescriptor& target, const Signature& signature,
                    std::span<const std::uint8_t> bytes, Direction direction) {
  ByteReader in(bytes);
  ValueList values;
  values.reserve(signature.size());
  for (const Param& p : signature) {
    if (param_travels(p.mode, direction)) {
      try {
        values.push_back(decode_canonical(target, p.type, in));
      } catch (const util::Error& e) {
        throw util::Error(e.code(),
                          "parameter \"" + p.name + "\": " + e.what());
      }
    } else {
      values.push_back(default_value(p.type));
    }
  }
  if (!in.exhausted()) {
    throw util::EncodingError("unmarshal: " + std::to_string(in.remaining()) +
                              " trailing bytes");
  }
  return values;
}

std::size_t canonical_size(const Type& type, const Value& value) {
  switch (type.kind()) {
    case TypeKind::kFloat: return 4;
    case TypeKind::kDouble: return 8;
    case TypeKind::kInteger: return 4;
    case TypeKind::kByte: return 1;
    case TypeKind::kString: return 4 + value.as_string().size();
    case TypeKind::kArray: {
      std::size_t fixed = 0;
      if (type.element().fixed_wire_size(fixed)) {
        return fixed * type.array_size();
      }
      std::size_t total = 0;
      for (const Value& item : value.items()) {
        total += canonical_size(type.element(), item);
      }
      return total;
    }
    case TypeKind::kRecord: {
      std::size_t total = 0;
      const auto& fields = type.fields();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        total += canonical_size(*fields[i].type, value.items()[i]);
      }
      return total;
    }
  }
  return 0;
}

std::size_t batch_size(const Signature& signature, const ValueList& values,
                       Direction direction) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < signature.size(); ++i) {
    if (param_travels(signature[i].mode, direction)) {
      total += canonical_size(signature[i].type, values[i]);
    }
  }
  return total;
}

double conversion_epsilon(const ArchDescriptor& source,
                          const ArchDescriptor& target, const Type& type) {
  switch (type.kind()) {
    case TypeKind::kFloat:
      return arch::float_format_epsilon(source.float_single) +
             arch::float_format_epsilon(FloatFormatKind::kIeee32) +
             arch::float_format_epsilon(target.float_single);
    case TypeKind::kDouble:
      return arch::float_format_epsilon(source.float_double) +
             arch::float_format_epsilon(FloatFormatKind::kIeee64) +
             arch::float_format_epsilon(target.float_double);
    case TypeKind::kInteger:
    case TypeKind::kByte:
    case TypeKind::kString:
      return 0.0;
    case TypeKind::kArray:
      return conversion_epsilon(source, target, type.element());
    case TypeKind::kRecord: {
      double worst = 0.0;
      for (const Field& f : type.fields()) {
        worst = std::max(worst, conversion_epsilon(source, target, *f.type));
      }
      return worst;
    }
  }
  return 0.0;
}

}  // namespace npss::uts
