#include "uts/value.hpp"

#include <sstream>

namespace npss::uts {

using util::TypeMismatchError;

double Value::as_real() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  if (const std::uint8_t* b = std::get_if<std::uint8_t>(&data_)) {
    return static_cast<double>(*b);
  }
  throw TypeMismatchError("value " + to_string() + " is not numeric");
}

std::int64_t Value::as_integer() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const std::uint8_t* b = std::get_if<std::uint8_t>(&data_)) return *b;
  if (const double* d = std::get_if<double>(&data_)) {
    return static_cast<std::int64_t>(*d);
  }
  throw TypeMismatchError("value " + to_string() + " is not numeric");
}

std::uint8_t Value::as_byte() const {
  std::int64_t v = as_integer();
  if (v < 0 || v > 255) {
    throw TypeMismatchError("value " + std::to_string(v) +
                            " out of byte range");
  }
  return static_cast<std::uint8_t>(v);
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  throw TypeMismatchError("value " + to_string() + " is not a string");
}

const ValueList& Value::items() const {
  if (const ValueList* v = std::get_if<ValueList>(&data_)) return *v;
  throw TypeMismatchError("value " + to_string() + " is not composite");
}

ValueList& Value::items() {
  if (ValueList* v = std::get_if<ValueList>(&data_)) return *v;
  throw TypeMismatchError("value " + to_string() + " is not composite");
}

std::vector<double> Value::as_real_vector() const {
  const ValueList& list = items();
  std::vector<double> out;
  out.reserve(list.size());
  for (const Value& v : list) out.push_back(v.as_real());
  return out;
}

std::string Value::to_string() const {
  std::ostringstream os;
  if (const double* d = std::get_if<double>(&data_)) {
    os << *d;
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&data_)) {
    os << *i;
  } else if (const std::uint8_t* b = std::get_if<std::uint8_t>(&data_)) {
    os << "0x" << std::hex << static_cast<int>(*b);
  } else if (const std::string* s = std::get_if<std::string>(&data_)) {
    os << '"' << *s << '"';
  } else {
    os << '[';
    bool first = true;
    for (const Value& v : std::get<ValueList>(data_)) {
      if (!first) os << ", ";
      first = false;
      os << v.to_string();
    }
    os << ']';
  }
  return os.str();
}

Value default_value(const Type& type) {
  switch (type.kind()) {
    case TypeKind::kFloat:
    case TypeKind::kDouble: return Value::real(0.0);
    case TypeKind::kInteger: return Value::integer(0);
    case TypeKind::kByte: return Value::byte(0);
    case TypeKind::kString: return Value::str("");
    case TypeKind::kArray: {
      ValueList items(type.array_size(), default_value(type.element()));
      return Value::array(std::move(items));
    }
    case TypeKind::kRecord: {
      ValueList fields;
      fields.reserve(type.fields().size());
      for (const Field& f : type.fields()) {
        fields.push_back(default_value(*f.type));
      }
      return Value::record(std::move(fields));
    }
  }
  return Value::real(0.0);
}

void check_value(const Type& type, const Value& value,
                 const std::string& path) {
  const std::string where = path.empty() ? "<value>" : path;
  switch (type.kind()) {
    case TypeKind::kFloat:
    case TypeKind::kDouble:
    case TypeKind::kInteger:
    case TypeKind::kByte:
      if (!value.is_real() && !value.is_integer() && !value.is_byte()) {
        throw TypeMismatchError(where + ": expected numeric for " +
                                type.to_string() + ", got " +
                                value.to_string());
      }
      return;
    case TypeKind::kString:
      if (!value.is_string()) {
        throw TypeMismatchError(where + ": expected string, got " +
                                value.to_string());
      }
      return;
    case TypeKind::kArray: {
      if (!value.is_composite()) {
        throw TypeMismatchError(where + ": expected array, got " +
                                value.to_string());
      }
      if (value.items().size() != type.array_size()) {
        throw TypeMismatchError(
            where + ": array size " + std::to_string(value.items().size()) +
            " != declared " + std::to_string(type.array_size()));
      }
      for (std::size_t i = 0; i < value.items().size(); ++i) {
        check_value(type.element(), value.items()[i],
                    where + "[" + std::to_string(i) + "]");
      }
      return;
    }
    case TypeKind::kRecord: {
      if (!value.is_composite()) {
        throw TypeMismatchError(where + ": expected record, got " +
                                value.to_string());
      }
      const auto& fields = type.fields();
      if (value.items().size() != fields.size()) {
        throw TypeMismatchError(
            where + ": record has " + std::to_string(value.items().size()) +
            " fields, declared " + std::to_string(fields.size()));
      }
      for (std::size_t i = 0; i < fields.size(); ++i) {
        check_value(*fields[i].type, value.items()[i],
                    where + "." + fields[i].name);
      }
      return;
    }
  }
}

}  // namespace npss::uts
