// The UTS specification language.
//
// Export specifications are co-located with remote procedure sources and
// import specifications with the invoking code (§3.3). Grammar, matching
// the paper's examples plus records and comments:
//
//   specfile  := { decl }
//   decl      := ("export" | "import") IDENT "prog" "(" [params] ")"
//   params    := param { "," param }
//   param     := STRING mode type
//   mode      := "val" | "res" | "var"
//   type      := "float" | "double" | "integer" | "byte" | "string"
//              | "array" "[" INT "]" "of" type
//              | "record" field { ";" field } "end"
//   field     := STRING ":" type
//
// Comments run from '#' to end of line. Identifiers are case-preserved here;
// case folding for Fortran names happens in the Manager (§4.1).
#pragma once

#include <string>
#include <vector>

#include "uts/types.hpp"

namespace npss::uts {

enum class DeclKind : std::uint8_t { kExport = 0, kImport };

struct ProcDecl {
  DeclKind kind;
  std::string name;
  Signature signature;
};

struct SpecFile {
  std::vector<ProcDecl> decls;

  /// First declaration with the given name; throws LookupError if absent.
  const ProcDecl& find(std::string_view name) const;
  bool contains(std::string_view name) const;
};

/// Parse specification text. Throws util::ParseError with line/column
/// positions on malformed input.
SpecFile parse_spec(std::string_view text);

/// Render a declaration back to specification syntax (stable round-trip
/// format used by the stub compiler and tests).
std::string decl_to_string(const ProcDecl& decl);

/// Derive the matching import spec text from an export spec (the "nearly
/// identical" counterpart file of §3.3).
std::string export_to_import_text(const SpecFile& exports);

}  // namespace npss::uts
