// The UTS specification language.
//
// Export specifications are co-located with remote procedure sources and
// import specifications with the invoking code (§3.3). Grammar, matching
// the paper's examples plus records and comments:
//
//   specfile  := { decl }
//   decl      := ("export" | "import") IDENT "prog" "(" [params] ")"
//   params    := param { "," param }
//   param     := STRING mode type
//   mode      := "val" | "res" | "var"
//   type      := "float" | "double" | "integer" | "byte" | "string"
//              | "array" "[" INT "]" "of" type
//              | "record" field { ";" field } "end"
//   field     := STRING ":" type
//
// Comments run from '#' to end of line. Identifiers are case-preserved here;
// case folding for Fortran names happens in the Manager (§4.1).
#pragma once

#include <string>
#include <vector>

#include "uts/types.hpp"

namespace npss::uts {

enum class DeclKind : std::uint8_t { kExport = 0, kImport };

/// A 1-based position in the specification text. {0, 0} means "unknown"
/// (declarations built programmatically rather than parsed).
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool known() const { return line > 0; }
  bool operator==(const SourceLoc& other) const {
    return line == other.line && column == other.column;
  }
};

struct ProcDecl {
  DeclKind kind;
  std::string name;
  Signature signature;
  /// Position of the export/import keyword; unknown for synthetic decls.
  SourceLoc loc{};
  /// Position of each parameter's quoted name, parallel to `signature`.
  /// Empty for synthetic decls — consumers must treat a missing entry as
  /// SourceLoc{}.
  std::vector<SourceLoc> param_locs{};

  SourceLoc param_loc(std::size_t i) const {
    return i < param_locs.size() ? param_locs[i] : SourceLoc{};
  }
};

struct SpecFile {
  std::vector<ProcDecl> decls;

  /// First declaration with the given name; throws LookupError if absent.
  const ProcDecl& find(std::string_view name) const;
  bool contains(std::string_view name) const;
};

/// One problem found while parsing in located (recovering) mode. `code` is
/// a stable UTSxxx diagnostic code (see src/check/diag.hpp for the table);
/// the parser itself only emits UTS003 (non-positive array bound), UTS005
/// (empty record) — both recovered — and UTS010 (syntax error, fatal).
struct SpecIssue {
  std::string code;
  std::string message;  ///< bare text, no file/line prefix
  SourceLoc loc;
  bool fatal = false;   ///< parsing stopped at this issue
};

/// Result of parse_spec_located: every declaration completed before the
/// first fatal issue, plus all issues in source order.
struct ParsedSpec {
  SpecFile file;
  std::vector<SpecIssue> issues;

  bool ok() const { return issues.empty(); }
};

/// Parse specification text. Throws util::ParseError with line/column
/// positions on malformed input.
SpecFile parse_spec(std::string_view text);

/// Recovering parse for static analysis: instead of throwing, collects
/// issues with precise source locations. Non-positive array bounds and
/// empty records are recovered (the declaration is still produced, with
/// the bound clamped to 1 / the record left empty); any other malformed
/// construct ends the parse with a fatal UTS010 issue. Never throws on
/// malformed input.
ParsedSpec parse_spec_located(std::string_view text);

/// Render a declaration back to specification syntax (stable round-trip
/// format used by the stub compiler and tests).
std::string decl_to_string(const ProcDecl& decl);

/// Derive the matching import spec text from an export spec (the "nearly
/// identical" counterpart file of §3.3).
std::string export_to_import_text(const SpecFile& exports);

}  // namespace npss::uts
