// The UTS common data interchange format (canonical / intermediate form).
//
// Canonical encoding is big-endian IEEE: `double` -> binary64, `float` ->
// binary32, `integer` -> 32-bit two's complement, `byte` -> one octet,
// `string` -> u32 length + octets; arrays and records encode their elements
// in order with no padding (sizes are known from the Type, as in the
// original UTS where the specification drove both ends).
//
// Conversion is routed *through the source/target machine's native formats*:
// marshaling a double on the Cray first materializes the 64-bit Cray word
// (48-bit mantissa — real precision loss) and converting that word into
// IEEE canonical form raises util::RangeError if its magnitude exceeds
// binary64 (§4.1's out-of-range policy). Likewise unmarshaling re-quantizes
// into the destination's native format, so a value received on an IBM
// hexadecimal-float machine may overflow there even though it was fine in
// canonical form.
#pragma once

#include <span>

#include "arch/arch.hpp"
#include "uts/types.hpp"
#include "uts/value.hpp"
#include "util/bytes.hpp"

namespace npss::uts {

/// Which half of a call a parameter batch belongs to: a request carries
/// val and var parameters, a reply carries var and res parameters (§3.1).
enum class Direction : std::uint8_t { kRequest = 0, kReply };

/// True if a parameter travels in the given direction.
bool param_travels(ParamMode mode, Direction direction);

/// Encode one value of one type into canonical bytes, quantizing through
/// `source`'s native formats. Throws RangeError / TypeMismatchError.
void encode_canonical(const arch::ArchDescriptor& source, const Type& type,
                      const Value& value, util::ByteWriter& out);

/// Decode one canonical value, re-quantizing through `target`'s native
/// formats. Throws RangeError / EncodingError.
Value decode_canonical(const arch::ArchDescriptor& target, const Type& type,
                       util::ByteReader& in);

/// Marshal the parameters of `signature` that travel in `direction`.
/// `values` must be parallel to the *full* signature (one entry per
/// parameter); non-travelling entries are ignored.
util::Bytes marshal(const arch::ArchDescriptor& source,
                    const Signature& signature, const ValueList& values,
                    Direction direction);

/// Unmarshal a batch produced by `marshal` with the same signature and
/// direction. Non-travelling slots are filled with default_value().
ValueList unmarshal(const arch::ArchDescriptor& target,
                    const Signature& signature,
                    std::span<const std::uint8_t> bytes, Direction direction);

/// Wire size of one value in canonical form (for the network cost model).
std::size_t canonical_size(const Type& type, const Value& value);

/// Wire size of a travelling batch.
std::size_t batch_size(const Signature& signature, const ValueList& values,
                       Direction direction);

/// Relative quantization error bound for a value that passes host -> source
/// native -> canonical -> target native (the end-to-end epsilon tests use).
double conversion_epsilon(const arch::ArchDescriptor& source,
                          const arch::ArchDescriptor& target, const Type& type);

namespace detail {

// Shared between the interpreted codec above and the compiled MarshalPlan
// slow path (marshal_plan.hpp), so both produce bit-identical wire bytes
// and identical RangeError text on non-IEEE architectures.

/// Pass a host double through an architecture's native float format: the
/// value the wire sees is the value the machine actually held.
double quantize(const arch::ArchDescriptor& arch, arch::FloatFormatKind format,
                double value);

/// Narrow to the UTS 32-bit canonical integer; RangeError (naming the arch)
/// when the native value exceeds it.
std::int32_t to_canonical_integer(const arch::ArchDescriptor& arch,
                                  std::int64_t value);

}  // namespace detail

}  // namespace npss::uts
