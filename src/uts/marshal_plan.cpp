#include "uts/marshal_plan.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include "util/mutex.hpp"

#include "obs/metrics.hpp"

namespace npss::uts {

using arch::ArchDescriptor;
using arch::FloatFormatKind;
using util::ByteReader;
using util::ByteWriter;
using util::Bytes;

std::string_view plan_op_name(PlanOp op) {
  switch (op) {
    case PlanOp::kFloatRun: return "float run";
    case PlanOp::kDoubleRun: return "double run";
    case PlanOp::kIntegerRun: return "integer run";
    case PlanOp::kByteRun: return "byte run";
    case PlanOp::kStringRun: return "string run";
    case PlanOp::kOpenArray: return "open array";
    case PlanOp::kOpenRecord: return "open record";
  }
  return "?";
}

namespace {

/// Fixed wire width of one scalar of a run op; 0 for variable (string).
std::uint32_t scalar_width(PlanOp op) {
  switch (op) {
    case PlanOp::kFloatRun: return 4;
    case PlanOp::kDoubleRun: return 8;
    case PlanOp::kIntegerRun: return 4;
    case PlanOp::kByteRun: return 1;
    default: return 0;
  }
}

void count_hit(bool fast) {
  if (!obs::enabled()) return;
  obs::Registry::global()
      .counter(fast ? "uts.marshal.fast_path_hits"
                    : "uts.marshal.fallback_hits")
      .add();
}

// --- scalar leaf codecs ----------------------------------------------------
// The fast variants are only reached when the arch's native formats are the
// canonical IEEE formats, where the interpreted quantize round trip is the
// identity (binary64) or exactly the overflow-check + float cast that
// encode_ieee32 performs (binary32) — so bytes and error text match the
// interpreted codec bit for bit. The slow variants call the *same*
// detail::quantize / float_encode / float_decode the interpreted codec
// uses, which makes equivalence trivial for Cray / IBM-hex formats.

void encode_double_leaf(const ArchDescriptor& source, bool fast,
                        const Value& v, ByteWriter& out) {
  const double d = v.as_real();
  if (fast) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    out.u64(bits);
    return;
  }
  const double q = detail::quantize(source, source.float_double, d);
  out.raw(arch::float_encode(FloatFormatKind::kIeee64, q));
}

void encode_float_leaf(const ArchDescriptor& source, bool fast,
                       const Value& v, ByteWriter& out) {
  const double d = v.as_real();
  if (fast) {
    if (std::isfinite(d) &&
        std::abs(d) >
            static_cast<double>(std::numeric_limits<float>::max())) {
      // Same text as arch::encode_ieee32, which the interpreted path
      // throws from.
      throw util::RangeError("value " + std::to_string(d) +
                             " overflows IEEE binary32");
    }
    const float f = static_cast<float>(d);
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof bits);
    out.u32(bits);
    return;
  }
  const double q = detail::quantize(source, source.float_single, d);
  out.raw(arch::float_encode(FloatFormatKind::kIeee32, q));
}

Value decode_double_leaf(const ArchDescriptor& target, bool fast,
                         ByteReader& in) {
  if (fast) return Value::real(in.f64());
  const double canon = arch::float_decode(FloatFormatKind::kIeee64, in.raw(8));
  return Value::real(detail::quantize(target, target.float_double, canon));
}

Value decode_float_leaf(const ArchDescriptor& target, bool fast,
                        ByteReader& in) {
  if (fast) return Value::real(static_cast<double>(in.f32()));
  const double canon = arch::float_decode(FloatFormatKind::kIeee32, in.raw(4));
  return Value::real(detail::quantize(target, target.float_single, canon));
}

/// Encode-side traversal frame: a cursor over one composite's children.
struct EncodeFrame {
  const ValueList* list;
  std::uint32_t next;
};

/// Decode-side reconstruction frame: a composite being filled.
struct BuildFrame {
  ValueList items;
  std::uint32_t want;
  bool is_array;
};

}  // namespace

bool MarshalPlan::same_representation(const ArchDescriptor& arch) {
  return arch.float_single == FloatFormatKind::kIeee32 &&
         arch.float_double == FloatFormatKind::kIeee64;
}

MarshalPlan::MarshalPlan(Signature signature, Direction direction)
    : signature_(std::move(signature)), direction_(direction) {
  params_.reserve(signature_.size());
  for (std::uint32_t i = 0; i < signature_.size(); ++i) compile_param(i);
  fixed_bytes_ = fixed_ ? wire_cursor_ : 0;
}

void MarshalPlan::compile_param(std::uint32_t index) {
  ParamProgram prog;
  prog.param = index;
  prog.first_step = static_cast<std::uint32_t>(steps_.size());
  prog.composite = !signature_[index].type.simple();
  if (param_travels(signature_[index].mode, direction_)) {
    mergeable_ = -1;  // runs never merge across parameters
    compile_type(signature_[index].type, 1);
  } else {
    prog.default_slot = default_value(signature_[index].type);
  }
  prog.step_span =
      static_cast<std::uint32_t>(steps_.size()) - prog.first_step;
  params_.push_back(std::move(prog));
}

void MarshalPlan::emit_leaf(PlanOp op, std::uint32_t repeat) {
  if (repeat == 0) return;
  if (mergeable_ >= 0 && steps_[static_cast<std::size_t>(mergeable_)].op == op) {
    steps_[static_cast<std::size_t>(mergeable_)].count += repeat;
  } else {
    steps_.push_back(PlanStep{op, repeat, wire_cursor_});
    mergeable_ = static_cast<long>(steps_.size()) - 1;
  }
  if (op == PlanOp::kStringRun) {
    fixed_ = false;  // length-prefixed payload: offsets end here
    wire_cursor_ += 4 * repeat;
  } else {
    wire_cursor_ += scalar_width(op) * repeat;
  }
}

void MarshalPlan::compile_type(const Type& type, std::uint32_t repeat) {
  for (std::uint32_t r = 0; r < repeat; ++r) {
    switch (type.kind()) {
      case TypeKind::kFloat: emit_leaf(PlanOp::kFloatRun, 1); break;
      case TypeKind::kDouble: emit_leaf(PlanOp::kDoubleRun, 1); break;
      case TypeKind::kInteger: emit_leaf(PlanOp::kIntegerRun, 1); break;
      case TypeKind::kByte: emit_leaf(PlanOp::kByteRun, 1); break;
      case TypeKind::kString: emit_leaf(PlanOp::kStringRun, 1); break;
      case TypeKind::kArray: {
        const auto n = static_cast<std::uint32_t>(type.array_size());
        steps_.push_back(PlanStep{PlanOp::kOpenArray, n, wire_cursor_});
        mergeable_ = -1;  // runs inside belong to the array's frame
        compile_type(type.element(), n);
        mergeable_ = -1;  // the frame closed; siblings cannot merge in
        break;
      }
      case TypeKind::kRecord: {
        const auto& fields = type.fields();
        steps_.push_back(PlanStep{
            PlanOp::kOpenRecord, static_cast<std::uint32_t>(fields.size()),
            wire_cursor_});
        mergeable_ = -1;
        for (const Field& f : fields) compile_type(*f.type, 1);
        mergeable_ = -1;
        break;
      }
    }
  }
}

void MarshalPlan::encode_param(const ParamProgram& p,
                               const ArchDescriptor& source,
                               const Value& value, ByteWriter& out,
                               bool fast) const {
  if (!p.composite) {
    // One run of one leaf, applied to the parameter value itself (the
    // accessor raises the interpreted codec's TypeMismatchError when the
    // value has the wrong shape).
    const PlanStep& step = steps_[p.first_step];
    switch (step.op) {
      case PlanOp::kFloatRun: encode_float_leaf(source, fast, value, out); break;
      case PlanOp::kDoubleRun: encode_double_leaf(source, fast, value, out); break;
      case PlanOp::kIntegerRun:
        out.i32(detail::to_canonical_integer(source, value.as_integer()));
        break;
      case PlanOp::kByteRun: out.u8(value.as_byte()); break;
      case PlanOp::kStringRun: out.str(value.as_string()); break;
      default: break;
    }
    return;
  }

  // Structural validation rides along with the flat run walk instead of a
  // separate check_value pass (whose per-node path strings dominate the
  // cost of a bulk-bit-move marshal): composite opens verify arity against
  // the compiled count, and the leaf accessors reject mis-typed nodes at
  // exactly the nodes check_value inspects. On any failure, re-run
  // check_value over the whole parameter — it walks the same
  // depth-first order, so a malformed shape reproduces the interpreted
  // codec's path-qualified message, and it also restores the interpreted
  // ordering in which a structural mismatch anywhere outranks an earlier
  // encode-range error. A structurally sound value rethrows the original
  // error, which is what the interpreted codec throws after its check
  // pass (out-of-byte-range, binary32 overflow, wide integer).
  try {
    std::vector<EncodeFrame> frames;
    frames.reserve(8);
    auto settle = [&frames] {
      while (!frames.empty() &&
             frames.back().next == frames.back().list->size()) {
        frames.pop_back();
      }
    };
    const std::uint32_t end = p.first_step + p.step_span;
    for (std::uint32_t s = p.first_step; s < end; ++s) {
      const PlanStep& step = steps_[s];
      switch (step.op) {
        case PlanOp::kOpenArray:
        case PlanOp::kOpenRecord: {
          const Value* child = &value;
          if (!frames.empty()) {
            settle();
            EncodeFrame& f = frames.back();
            child = &(*f.list)[f.next++];
          }
          const ValueList& kids = child->items();
          if (kids.size() != step.count) {
            // The handler below turns this into check_value's size message.
            throw util::TypeMismatchError("composite arity mismatch");
          }
          frames.push_back(EncodeFrame{&kids, 0});
          break;
        }
        default: {
          settle();
          EncodeFrame& f = frames.back();
          const ValueList& list = *f.list;
          const std::uint32_t base = f.next;
          switch (step.op) {
            case PlanOp::kDoubleRun:
              if (fast) {
                for (std::uint32_t i = 0; i < step.count; ++i) {
                  const double d = list[base + i].as_real();
                  std::uint64_t bits;
                  std::memcpy(&bits, &d, sizeof bits);
                  out.u64(bits);
                }
              } else {
                for (std::uint32_t i = 0; i < step.count; ++i) {
                  encode_double_leaf(source, false, list[base + i], out);
                }
              }
              break;
            case PlanOp::kFloatRun:
              for (std::uint32_t i = 0; i < step.count; ++i) {
                encode_float_leaf(source, fast, list[base + i], out);
              }
              break;
            case PlanOp::kIntegerRun:
              for (std::uint32_t i = 0; i < step.count; ++i) {
                out.i32(detail::to_canonical_integer(
                    source, list[base + i].as_integer()));
              }
              break;
            case PlanOp::kByteRun:
              for (std::uint32_t i = 0; i < step.count; ++i) {
                out.u8(list[base + i].as_byte());
              }
              break;
            case PlanOp::kStringRun:
              for (std::uint32_t i = 0; i < step.count; ++i) {
                out.str(list[base + i].as_string());
              }
              break;
            default: break;
          }
          f.next = base + step.count;
          break;
        }
      }
    }
  } catch (...) {
    check_value(signature_[p.param].type, value);
    throw;
  }
}

Value MarshalPlan::decode_param(const ParamProgram& p,
                                const ArchDescriptor& target, ByteReader& in,
                                bool fast) const {
  if (!p.composite) {
    const PlanStep& step = steps_[p.first_step];
    switch (step.op) {
      case PlanOp::kFloatRun: return decode_float_leaf(target, fast, in);
      case PlanOp::kDoubleRun: return decode_double_leaf(target, fast, in);
      case PlanOp::kIntegerRun: return Value::integer(in.i32());
      case PlanOp::kByteRun: return Value::byte(in.u8());
      case PlanOp::kStringRun: return Value::str(in.str());
      default: break;
    }
    throw util::EncodingError("unknown plan op");
  }

  std::vector<BuildFrame> frames;
  frames.reserve(8);
  Value result;
  // Append a finished value into the innermost open frame, cascading
  // closures: a frame that reaches its declared arity wraps into its
  // composite Value and is itself appended one level up.
  auto append = [&frames, &result](Value v) {
    while (true) {
      if (frames.empty()) {
        result = std::move(v);
        return;
      }
      BuildFrame& f = frames.back();
      f.items.push_back(std::move(v));
      if (f.items.size() < f.want) return;
      Value closed = f.is_array ? Value::array(std::move(f.items))
                                : Value::record(std::move(f.items));
      frames.pop_back();
      v = std::move(closed);
    }
  };
  const std::uint32_t end = p.first_step + p.step_span;
  for (std::uint32_t s = p.first_step; s < end; ++s) {
    const PlanStep& step = steps_[s];
    switch (step.op) {
      case PlanOp::kOpenArray:
      case PlanOp::kOpenRecord: {
        const bool is_array = step.op == PlanOp::kOpenArray;
        if (step.count == 0) {
          append(is_array ? Value::array({}) : Value::record({}));
        } else {
          BuildFrame f;
          f.items.reserve(step.count);
          f.want = step.count;
          f.is_array = is_array;
          frames.push_back(std::move(f));
        }
        break;
      }
      case PlanOp::kDoubleRun:
        for (std::uint32_t i = 0; i < step.count; ++i) {
          append(decode_double_leaf(target, fast, in));
        }
        break;
      case PlanOp::kFloatRun:
        for (std::uint32_t i = 0; i < step.count; ++i) {
          append(decode_float_leaf(target, fast, in));
        }
        break;
      case PlanOp::kIntegerRun:
        for (std::uint32_t i = 0; i < step.count; ++i) {
          append(Value::integer(in.i32()));
        }
        break;
      case PlanOp::kByteRun:
        for (std::uint32_t i = 0; i < step.count; ++i) {
          append(Value::byte(in.u8()));
        }
        break;
      case PlanOp::kStringRun:
        for (std::uint32_t i = 0; i < step.count; ++i) {
          append(Value::str(in.str()));
        }
        break;
    }
  }
  return result;
}

Bytes MarshalPlan::marshal(const ArchDescriptor& source,
                           const ValueList& values) const {
  ByteWriter out;
  if (fixed_) out.reserve(fixed_bytes_);
  marshal_into(source, values, out);
  return std::move(out).take();
}

void MarshalPlan::marshal_into(const ArchDescriptor& source,
                               const ValueList& values,
                               ByteWriter& out) const {
  if (values.size() != signature_.size()) {
    throw util::TypeMismatchError(
        "marshal: " + std::to_string(values.size()) + " values for " +
        std::to_string(signature_.size()) + " parameters");
  }
  const bool fast = same_representation(source);
  for (const ParamProgram& p : params_) {
    if (!param_travels(signature_[p.param].mode, direction_)) continue;
    try {
      encode_param(p, source, values[p.param], out, fast);
    } catch (const util::Error& e) {
      throw util::Error(e.code(), "parameter \"" + signature_[p.param].name +
                                      "\": " + e.what());
    }
  }
  count_hit(fast);
}

ValueList MarshalPlan::unmarshal(const ArchDescriptor& target,
                                 std::span<const std::uint8_t> bytes) const {
  const bool fast = same_representation(target);
  ByteReader in(bytes);
  ValueList values;
  values.reserve(signature_.size());
  for (const ParamProgram& p : params_) {
    if (param_travels(signature_[p.param].mode, direction_)) {
      try {
        values.push_back(decode_param(p, target, in, fast));
      } catch (const util::Error& e) {
        throw util::Error(e.code(), "parameter \"" +
                                        signature_[p.param].name +
                                        "\": " + e.what());
      }
    } else {
      values.push_back(p.default_slot);
    }
  }
  if (!in.exhausted()) {
    throw util::EncodingError("unmarshal: " + std::to_string(in.remaining()) +
                              " trailing bytes");
  }
  count_hit(fast);
  return values;
}

std::string MarshalPlan::describe() const {
  std::string out = "plan(";
  out += direction_ == Direction::kRequest ? "request" : "reply";
  out += "): " + std::to_string(steps_.size()) + " step(s)";
  if (fixed_) {
    out += ", fixed " + std::to_string(fixed_bytes_) + " wire byte(s)";
  } else {
    out += ", variable size";
  }
  for (const ParamProgram& p : params_) {
    const Param& param = signature_[p.param];
    out += "\n  " + std::string(param_mode_name(param.mode)) + " \"" +
           param.name + "\": ";
    if (p.step_span == 0) {
      out += "does not travel";
      continue;
    }
    for (std::uint32_t s = 0; s < p.step_span; ++s) {
      const PlanStep& step = steps_[p.first_step + s];
      if (s) out += ", ";
      out += std::string(plan_op_name(step.op)) + " x" +
             std::to_string(step.count);
      if (fixed_) out += " @" + std::to_string(step.offset);
    }
  }
  return out;
}

std::shared_ptr<const MarshalPlan> compile_plan(const Signature& signature,
                                                Direction direction) {
  // Keyed on the signature's canonical text: imports of the same
  // declaration (every stub of a shared procedure, every host serving the
  // same import text) share one compiled plan.
  static util::Mutex mu{"uts.PlanCache"};
  static std::map<std::string, std::shared_ptr<const MarshalPlan>> cache;
  std::string key = signature_to_string(signature);
  key.push_back(direction == Direction::kRequest ? 'Q' : 'R');
  util::MutexLock lock(mu);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  auto plan = std::make_shared<const MarshalPlan>(signature, direction);
  cache.emplace(std::move(key), plan);
  return plan;
}

}  // namespace npss::uts
