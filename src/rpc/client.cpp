#include "rpc/client.hpp"

#include "rpc/manager.hpp"
#include "util/log.hpp"

namespace npss::rpc {

SchoonerClient::SchoonerClient(sim::Cluster& cluster, sim::EndpointPtr endpoint,
                               std::string manager_address,
                               std::string description,
                               std::vector<std::string> manager_replicas)
    : cluster_(&cluster),
      endpoint_(std::move(endpoint)),
      io_(cluster, endpoint_),
      manager_(std::move(manager_address)),
      replicas_(std::move(manager_replicas)) {
  Message msg;
  msg.kind = MessageKind::kRegisterLine;
  msg.a = std::move(description);
  Message ack = manager_call(std::move(msg));
  line_ = ack.line;
}

Message SchoonerClient::manager_call(Message msg) {
  for (int attempt = 0;; ++attempt) {
    Message copy = msg;
    Message ack;
    try {
      // With a replica group a hung leader (e.g. partitioned away) must
      // not block the client forever; standalone keeps the legacy
      // block-until-reply semantics.
      ack = replicas_.empty()
                ? io_.call(manager_, std::move(copy), /*raise_errors=*/false)
                : io_.call_within(manager_, std::move(copy),
                                  /*host_grace_ms=*/500,
                                  /*raise_errors=*/false);
    } catch (const util::NoRouteError&) {
      if (replicas_.empty() || attempt >= 3) throw;
      rebind_to_leader();
      continue;
    } catch (const util::DeadlineError&) {
      if (replicas_.empty() || attempt >= 3) throw;
      rebind_to_leader();
      continue;
    }
    if (ack.is_error() &&
        static_cast<util::ErrorCode>(ack.n) == util::ErrorCode::kNotLeader &&
        !replicas_.empty() && attempt < 3) {
      // The follower's leader hint rides in .b; empty means an election
      // is still running, so fall back to polling the group.
      if (!ack.b.empty() && ack.b != manager_) {
        manager_ = ack.b;
        if (obs::enabled()) {
          obs::Registry::global()
              .counter("rpc.meta.rebinds_after_failover")
              .add();
        }
      } else {
        rebind_to_leader();
      }
      continue;
    }
    ack.raise_if_error();
    return ack;
  }
}

void SchoonerClient::rebind_to_leader() {
  std::string leader = discover_manager_leader(io_, replicas_);
  if (leader.empty()) {
    throw util::UnavailableError(
        "no Manager replica reports a leader; the control plane is down");
  }
  if (leader != manager_) {
    NPSS_LOG_INFO("client", "line ", line_, ": manager leader moved ",
                  manager_, " -> ", leader);
    if (obs::enabled()) {
      obs::Registry::global()
          .counter("rpc.meta.rebinds_after_failover")
          .add();
    }
  }
  manager_ = leader;
}

SchoonerClient::~SchoonerClient() {
  try {
    quit();
  } catch (...) {
    // Destructor teardown is best-effort (the Manager may already be gone).
  }
}

const arch::ArchDescriptor& SchoonerClient::arch() const {
  return endpoint_->arch();
}

StartResult SchoonerClient::contact_schx(const std::string& machine,
                                         const std::string& path,
                                         bool shared) {
  Message msg;
  msg.kind = MessageKind::kStartRequest;
  msg.line = line_;
  msg.a = machine;
  msg.b = path;
  msg.n = shared ? 1 : 0;
  Message ack = manager_call(std::move(msg));
  StartResult result;
  result.address = ack.a;
  result.exports = ack.table;
  NPSS_LOG_DEBUG("client", "line ", line_, ": started ", path, " on ",
                 machine, " -> ", ack.a);
  return result;
}

std::unique_ptr<RemoteProc> SchoonerClient::import_proc(
    const std::string& name, const std::string& import_spec_text) {
  uts::SpecFile file = uts::parse_spec(import_spec_text);
  const uts::ProcDecl& decl = file.find(name);
  if (decl.kind != uts::DeclKind::kImport) {
    throw util::ModelError("declaration for '" + name +
                           "' is not an import");
  }
  std::string text = uts::decl_to_string(decl);
  return std::unique_ptr<RemoteProc>(
      new RemoteProc(*this, name, decl, std::move(text)));
}

std::string SchoonerClient::move_proc(const std::string& name,
                                      const std::string& machine,
                                      const std::string& path,
                                      bool transfer_state) {
  Message msg;
  msg.kind = MessageKind::kMove;
  msg.line = line_;
  msg.a = name;
  msg.b = machine;
  msg.c = path;
  msg.n = transfer_state ? 1 : 0;
  Message ack = manager_call(std::move(msg));
  return ack.a;
}

void SchoonerClient::quit() {
  if (line_ == kNoLine) return;
  Message msg;
  msg.kind = MessageKind::kQuit;
  msg.line = line_;
  manager_call(std::move(msg));
  line_ = kNoLine;
}

CallCore SchoonerClient::call_core() {
  CallCore core;
  core.io = &io_;
  core.manager = manager_;
  core.manager_replicas = replicas_;
  core.line = line_;
  core.arch = &endpoint_->arch();
  core.compute = [this](double us) {
    endpoint_->clock().advance(static_cast<util::SimTime>(
        us / std::max(endpoint_->arch().cpu_speed, 1e-6)));
  };
  core.clock = &endpoint_->clock();
  core.sleep = [this](util::SimTime us) { endpoint_->clock().advance(us); };
  return core;
}

CallResult SchoonerClient::invoke(RemoteProc& proc, uts::ValueList args,
                                  const CallOptions& opts) {
  if (line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  return call_core().invoke(proc.name_, proc.decl_, proc.import_text_,
                            std::move(args), proc.cache_, opts);
}

CallResult RemoteProc::call(uts::ValueList args, const CallOptions& opts) {
  calls_.add();
  return owner_->invoke(*this, std::move(args), opts);
}

std::future<CallResult> RemoteProc::call_async(uts::ValueList args,
                                               const CallOptions& opts) {
  if (owner_->line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  calls_.add();
  return owner_->call_core().invoke_async(name_, decl_, import_text_,
                                          std::move(args), cache_, opts);
}

uts::ValueList RemoteProc::call(uts::ValueList args) {
  return call(std::move(args), options_).values_or_raise();
}

std::future<uts::ValueList> RemoteProc::call_async(uts::ValueList args) {
  std::future<CallResult> inner = call_async(std::move(args), options_);
  return std::async(std::launch::deferred,
                    [inner = std::move(inner)]() mutable {
                      CallResult result = inner.get();
                      return std::move(result.values_or_raise());
                    });
}

util::SimTime RemoteProc::ping() {
  if (owner_->line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  if (cache_.address.empty()) {
    CallCore core;
    core.io = &owner_->io_;
    core.manager = owner_->manager_;
    core.line = owner_->line_;
    core.bind(name_, import_text_, cache_);
  }
  return owner_->io_.ping(cache_.address);
}

}  // namespace npss::rpc
