#include "rpc/client.hpp"

#include <chrono>
#include <thread>

#include "rpc/manager.hpp"
#include "util/log.hpp"

namespace npss::rpc {

namespace {

void count(const char* name) {
  if (obs::enabled()) obs::Registry::global().counter(name).add();
}

}  // namespace

// --- Session ---------------------------------------------------------------

Session::Session(sim::Cluster& cluster, std::string machine,
                 std::string manager_address,
                 std::vector<std::string> manager_replicas)
    : cluster_(&cluster),
      machine_(std::move(machine)),
      manager_(std::move(manager_address)),
      replicas_(std::move(manager_replicas)) {}

std::string Session::manager_address() const { return leader(); }

std::string Session::leader() const {
  util::MutexLock lock(mu_);
  return manager_;
}

void Session::note_leader(const std::string& leader) {
  util::MutexLock lock(mu_);
  if (leader == manager_) return;
  NPSS_LOG_INFO("client", "manager leader moved: ", manager_, " -> ", leader);
  count("rpc.meta.rebinds_after_failover");
  manager_ = leader;
}

void Session::rebind_to_leader(MessageIo& io) {
  std::string found = discover_manager_leader(io, replicas_);
  if (found.empty()) {
    throw util::UnavailableError(
        "no Manager replica reports a leader; the control plane is down");
  }
  note_leader(found);
}

Message Session::manager_call(MessageIo& io, Message msg) {
  for (int attempt = 0;; ++attempt) {
    const std::string target = leader();
    Message copy = msg;
    Message ack;
    try {
      // With a replica group a hung leader (e.g. partitioned away) must
      // not block the client forever; standalone keeps the legacy
      // block-until-reply semantics.
      ack = replicas_.empty()
                ? io.call(target, std::move(copy), /*raise_errors=*/false)
                : io.call_within(target, std::move(copy),
                                 /*host_grace_ms=*/500,
                                 /*raise_errors=*/false);
    } catch (const util::NoRouteError&) {
      if (replicas_.empty() || attempt >= 3) throw;
      rebind_to_leader(io);
      continue;
    } catch (const util::DeadlineError&) {
      if (replicas_.empty() || attempt >= 3) throw;
      rebind_to_leader(io);
      continue;
    }
    if (ack.is_error() &&
        static_cast<util::ErrorCode>(ack.n) == util::ErrorCode::kNotLeader &&
        !replicas_.empty() && attempt < 3) {
      // The follower's leader hint rides in .b; empty means an election
      // is still running, so fall back to polling the group.
      if (!ack.b.empty() && ack.b != target) {
        note_leader(ack.b);
      } else {
        rebind_to_leader(io);
      }
      continue;
    }
    ack.raise_if_error();
    return ack;
  }
}

std::unique_ptr<Line> Session::open_line(LineOptions opts) {
  sim::EndpointPtr endpoint = cluster_->create_endpoint(
      machine_, "schx-line-" + std::to_string(line_seq_.fetch_add(
                    1, std::memory_order_relaxed)));
  auto line = std::unique_ptr<Line>(new Line(
      *this, std::move(endpoint), std::move(opts), /*owns_endpoint=*/true));
  lines_opened_.fetch_add(1, std::memory_order_relaxed);
  return line;
}

std::unique_ptr<Line> Session::adopt_line(sim::EndpointPtr endpoint,
                                          LineOptions opts) {
  auto line = std::unique_ptr<Line>(new Line(
      *this, std::move(endpoint), std::move(opts), /*owns_endpoint=*/false));
  lines_opened_.fetch_add(1, std::memory_order_relaxed);
  return line;
}

// --- Line ------------------------------------------------------------------

Line::Line(Session& session, sim::EndpointPtr endpoint, LineOptions opts,
           bool owns_endpoint)
    : session_(&session),
      endpoint_(std::move(endpoint)),
      io_(*session.cluster_, endpoint_),
      name_(std::move(opts.name)),
      owns_endpoint_(owns_endpoint),
      budget_(std::make_shared<LineBudget>(opts.budget)) {
  const int attempts = std::max(opts.admission_attempts, 1);
  try {
    for (int attempt = 1;; ++attempt) {
      Message msg;
      msg.kind = MessageKind::kRegisterLine;
      msg.a = name_;
      try {
        Message ack = session_->manager_call(io_, std::move(msg));
        line_ = ack.line;
        // The Manager grants a per-line outstanding-call quota in ack.n
        // (0 = unlimited); the smaller of it and the caller's cap wins.
        budget_->restrict_outstanding(static_cast<int>(ack.n));
        return;
      } catch (const util::LineRejectedError&) {
        // Admission gate (SystemOptions::max_lines). Back off gracefully:
        // capacity frees when some other line quits, and a thundering
        // herd of instant re-registrations would keep the Manager busy
        // saying no. Virtual time advances in step so seeded runs stay
        // deterministic.
        if (attempt >= attempts) throw;
        count("rpc.line.admission_backoffs");
        if (opts.admission_backoff_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(opts.admission_backoff_ms));
          endpoint_->clock().advance(
              static_cast<util::SimTime>(opts.admission_backoff_ms) * 1000);
        }
      }
    }
  } catch (...) {
    // The line never existed as far as the Manager is concerned; a
    // Session-created endpoint would otherwise leak in the cluster.
    if (owns_endpoint_) {
      try {
        session_->cluster_->retire_endpoint(endpoint_->address());
      } catch (...) {
      }
    }
    throw;
  }
}

Line::~Line() {
  try {
    quit();
  } catch (...) {
    // Destructor teardown is best-effort (the Manager may already be gone).
  }
  if (owns_endpoint_) {
    try {
      session_->cluster_->retire_endpoint(endpoint_->address());
    } catch (...) {
    }
  }
}

const arch::ArchDescriptor& Line::arch() const { return endpoint_->arch(); }

StartResult Line::contact_schx(const std::string& machine,
                               const std::string& path, bool shared) {
  Message msg;
  msg.kind = MessageKind::kStartRequest;
  msg.line = line_;
  msg.a = machine;
  msg.b = path;
  msg.n = shared ? 1 : 0;
  Message ack = session_->manager_call(io_, std::move(msg));
  StartResult result;
  result.address = ack.a;
  result.exports = ack.table;
  NPSS_LOG_DEBUG("client", "line ", line_, ": started ", path, " on ",
                 machine, " -> ", ack.a);
  return result;
}

BindingCache& Line::cache_for(const std::string& name,
                              const uts::Signature& signature,
                              const std::string& import_text) {
  BindingCache& cache = caches_[name + "\n" + import_text];
  if (!cache.request_plan) {
    cache.request_plan = uts::compile_plan(signature, uts::Direction::kRequest);
    cache.reply_plan = uts::compile_plan(signature, uts::Direction::kReply);
  }
  return cache;
}

std::unique_ptr<RemoteProc> Line::import_proc(
    const std::string& name, const std::string& import_spec_text) {
  uts::SpecFile file = uts::parse_spec(import_spec_text);
  const uts::ProcDecl& decl = file.find(name);
  if (decl.kind != uts::DeclKind::kImport) {
    throw util::ModelError("declaration for '" + name +
                           "' is not an import");
  }
  std::string text = uts::decl_to_string(decl);
  BindingCache& cache = cache_for(name, decl.signature, text);
  return std::unique_ptr<RemoteProc>(
      new RemoteProc(*this, name, decl, std::move(text), cache));
}

std::string Line::move_proc(const std::string& name,
                            const std::string& machine,
                            const std::string& path, bool transfer_state) {
  Message msg;
  msg.kind = MessageKind::kMove;
  msg.line = line_;
  msg.a = name;
  msg.b = machine;
  msg.c = path;
  msg.n = transfer_state ? 1 : 0;
  Message ack = session_->manager_call(io_, std::move(msg));
  return ack.a;
}

void Line::quit() {
  if (line_ == kNoLine) return;
  Message msg;
  msg.kind = MessageKind::kQuit;
  msg.line = line_;
  session_->manager_call(io_, std::move(msg));
  line_ = kNoLine;
}

CallCore Line::call_core() {
  CallCore core;
  core.io = &io_;
  core.manager = session_->leader();
  core.manager_replicas = session_->replicas_;
  core.line = line_;
  core.arch = &endpoint_->arch();
  core.compute = [this](double us) {
    endpoint_->clock().advance(static_cast<util::SimTime>(
        us / std::max(endpoint_->arch().cpu_speed, 1e-6)));
  };
  core.clock = &endpoint_->clock();
  core.sleep = [this](util::SimTime us) { endpoint_->clock().advance(us); };
  return core;
}

CallOptions Line::with_budget(const CallOptions& opts) const {
  if (opts.line_budget) return opts;
  CallOptions stamped = opts;
  stamped.line_budget = budget_;
  return stamped;
}

CallResult Line::invoke(RemoteProc& proc, uts::ValueList args,
                        const CallOptions& opts) {
  if (line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  return call_core().invoke(proc.name_, proc.decl_, proc.import_text_,
                            std::move(args), proc.cache_, with_budget(opts));
}

// --- RemoteProc ------------------------------------------------------------

RemoteProc::RemoteProc(Line& owner, std::string name, uts::ProcDecl decl,
                       std::string import_text, BindingCache& cache)
    : owner_(&owner),
      name_(std::move(name)),
      decl_(std::move(decl)),
      import_text_(std::move(import_text)),
      cache_(cache) {}

CallResult RemoteProc::call(uts::ValueList args, const CallOptions& opts) {
  calls_.add();
  return owner_->invoke(*this, std::move(args), opts);
}

std::future<CallResult> RemoteProc::call_async(uts::ValueList args,
                                               const CallOptions& opts) {
  if (owner_->line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  calls_.add();
  return owner_->call_core().invoke_async(name_, decl_, import_text_,
                                          std::move(args), cache_,
                                          owner_->with_budget(opts));
}

// The deprecated throwing surface keeps compiling warning-free here (the
// shim itself is the one sanctioned caller of the legacy contract).
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

uts::ValueList RemoteProc::call(uts::ValueList args) {
  return call(std::move(args), options_).values_or_raise();
}

std::future<uts::ValueList> RemoteProc::call_async(uts::ValueList args) {
  std::future<CallResult> inner = call_async(std::move(args), options_);
  return std::async(std::launch::deferred,
                    [inner = std::move(inner)]() mutable {
                      CallResult result = inner.get();
                      return std::move(result.values_or_raise());
                    });
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

util::SimTime RemoteProc::ping() {
  if (owner_->line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  if (cache_.address.empty()) {
    owner_->call_core().bind(name_, import_text_, cache_);
  }
  return owner_->io_.ping(cache_.address);
}

// --- SchoonerClient (compatibility wrapper) --------------------------------

SchoonerClient::SchoonerClient(sim::Cluster& cluster, sim::EndpointPtr endpoint,
                               std::string manager_address,
                               std::string description,
                               std::vector<std::string> manager_replicas)
    : session_(std::make_unique<Session>(cluster, endpoint->machine().name,
                                         std::move(manager_address),
                                         std::move(manager_replicas))) {
  line_ = session_->adopt_line(std::move(endpoint),
                               LineOptions{}.with_name(std::move(description)));
}

}  // namespace npss::rpc
