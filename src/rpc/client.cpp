#include "rpc/client.hpp"

#include "rpc/manager.hpp"
#include "util/log.hpp"

namespace npss::rpc {

SchoonerClient::SchoonerClient(sim::Cluster& cluster, sim::EndpointPtr endpoint,
                               std::string manager_address,
                               std::string description)
    : cluster_(&cluster),
      endpoint_(std::move(endpoint)),
      io_(cluster, endpoint_),
      manager_(std::move(manager_address)) {
  Message msg;
  msg.kind = MessageKind::kRegisterLine;
  msg.a = std::move(description);
  Message ack = io_.call(manager_, std::move(msg));
  line_ = ack.line;
}

SchoonerClient::~SchoonerClient() {
  try {
    quit();
  } catch (...) {
    // Destructor teardown is best-effort (the Manager may already be gone).
  }
}

const arch::ArchDescriptor& SchoonerClient::arch() const {
  return endpoint_->arch();
}

StartResult SchoonerClient::contact_schx(const std::string& machine,
                                         const std::string& path,
                                         bool shared) {
  Message msg;
  msg.kind = MessageKind::kStartRequest;
  msg.line = line_;
  msg.a = machine;
  msg.b = path;
  msg.n = shared ? 1 : 0;
  Message ack = io_.call(manager_, std::move(msg));
  StartResult result;
  result.address = ack.a;
  result.exports = ack.table;
  NPSS_LOG_DEBUG("client", "line ", line_, ": started ", path, " on ",
                 machine, " -> ", ack.a);
  return result;
}

std::unique_ptr<RemoteProc> SchoonerClient::import_proc(
    const std::string& name, const std::string& import_spec_text) {
  uts::SpecFile file = uts::parse_spec(import_spec_text);
  const uts::ProcDecl& decl = file.find(name);
  if (decl.kind != uts::DeclKind::kImport) {
    throw util::ModelError("declaration for '" + name +
                           "' is not an import");
  }
  std::string text = uts::decl_to_string(decl);
  return std::unique_ptr<RemoteProc>(
      new RemoteProc(*this, name, decl, std::move(text)));
}

std::string SchoonerClient::move_proc(const std::string& name,
                                      const std::string& machine,
                                      const std::string& path,
                                      bool transfer_state) {
  Message msg;
  msg.kind = MessageKind::kMove;
  msg.line = line_;
  msg.a = name;
  msg.b = machine;
  msg.c = path;
  msg.n = transfer_state ? 1 : 0;
  Message ack = io_.call(manager_, std::move(msg));
  return ack.a;
}

void SchoonerClient::quit() {
  if (line_ == kNoLine) return;
  Message msg;
  msg.kind = MessageKind::kQuit;
  msg.line = line_;
  io_.call(manager_, std::move(msg));
  line_ = kNoLine;
}

CallCore SchoonerClient::call_core() {
  CallCore core;
  core.io = &io_;
  core.manager = manager_;
  core.line = line_;
  core.arch = &endpoint_->arch();
  core.compute = [this](double us) {
    endpoint_->clock().advance(static_cast<util::SimTime>(
        us / std::max(endpoint_->arch().cpu_speed, 1e-6)));
  };
  core.clock = &endpoint_->clock();
  core.sleep = [this](util::SimTime us) { endpoint_->clock().advance(us); };
  return core;
}

CallResult SchoonerClient::invoke(RemoteProc& proc, uts::ValueList args,
                                  const CallOptions& opts) {
  if (line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  return call_core().invoke(proc.name_, proc.decl_, proc.import_text_,
                            std::move(args), proc.cache_, opts);
}

CallResult RemoteProc::call(uts::ValueList args, const CallOptions& opts) {
  calls_.add();
  return owner_->invoke(*this, std::move(args), opts);
}

std::future<CallResult> RemoteProc::call_async(uts::ValueList args,
                                               const CallOptions& opts) {
  if (owner_->line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  calls_.add();
  return owner_->call_core().invoke_async(name_, decl_, import_text_,
                                          std::move(args), cache_, opts);
}

uts::ValueList RemoteProc::call(uts::ValueList args) {
  return call(std::move(args), options_).values_or_raise();
}

std::future<uts::ValueList> RemoteProc::call_async(uts::ValueList args) {
  std::future<CallResult> inner = call_async(std::move(args), options_);
  return std::async(std::launch::deferred,
                    [inner = std::move(inner)]() mutable {
                      CallResult result = inner.get();
                      return std::move(result.values_or_raise());
                    });
}

util::SimTime RemoteProc::ping() {
  if (owner_->line_ == kNoLine) {
    throw util::ShutdownError("line already quit");
  }
  if (cache_.address.empty()) {
    CallCore core;
    core.io = &owner_->io_;
    core.manager = owner_->manager_;
    core.line = owner_->line_;
    core.bind(name_, import_text_, cache_);
  }
  return owner_->io_.ping(cache_.address);
}

}  // namespace npss::rpc
