// Real-socket transport.
//
// The virtual cluster reproduces the paper's *testbed*; this module is the
// transport the system would use on a real network today: Schooner wire
// Messages framed over TCP (4-byte big-endian length prefix + the standard
// frame). It provides a direct-connection subset of the protocol — a
// TcpProcedureHost serves kCall/kPing for a set of procedures, and a
// TcpRemoteProc is the matching client stub — enough to run the marshaling
// stack between genuinely separate processes (see examples/tcp_demo.cpp).
// Heterogeneity still applies: both ends declare the architecture whose
// native formats their values pass through.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch.hpp"
#include "rpc/calling.hpp"
#include "rpc/host.hpp"
#include "rpc/message.hpp"

namespace npss::obs {
class Counter;
}

namespace npss::rpc {

/// Blocking, length-prefixed Message stream over a connected socket.
class TcpConnection {
 public:
  /// Adopt an already-connected socket descriptor.
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to host:port. Throws util::CallError on failure.
  static std::unique_ptr<TcpConnection> connect(const std::string& host,
                                                int port);

  void send(const Message& msg);
  /// Blocking receive; returns false on orderly peer close.
  bool receive(Message& msg);
  /// Like receive(), but throws util::DeadlineError when no data is
  /// readable within `timeout_ms` of real time (0 = block forever).
  bool receive_within(Message& msg, int timeout_ms);

  void close();
  int fd() const { return fd_; }

 private:
  void write_all(const std::uint8_t* data, std::size_t size);
  bool read_all(std::uint8_t* data, std::size_t size);

  int fd_ = -1;
};

/// Serves a set of procedures over TCP. One thread per connection;
/// stateless dispatch identical to the in-cluster host runtime's kCall
/// handling (same subset-import semantics, same error mapping).
class TcpProcedureHost {
 public:
  /// Listen on `port` (0 = ephemeral; see port()). `arch_key` names the
  /// architecture whose native formats this host's values pass through.
  TcpProcedureHost(const std::string& spec_text,
                   std::vector<ProcedureDef> procs, const std::string& arch_key,
                   int port = 0);
  ~TcpProcedureHost();
  TcpProcedureHost(const TcpProcedureHost&) = delete;
  TcpProcedureHost& operator=(const TcpProcedureHost&) = delete;

  int port() const { return port_; }
  /// Calls served so far.
  long calls() const { return calls_.load(); }

  void stop();

 private:
  void accept_loop();
  void serve(std::unique_ptr<TcpConnection> conn);

  struct Entry {
    uts::ProcDecl decl;
    ProcHandler handler;
  };

  const arch::ArchDescriptor* arch_;
  std::map<std::string, Entry> handlers_;
  // Atomic: stop() (any thread) races the accept loop's reads otherwise.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<long> calls_{0};
  std::jthread acceptor_;
  std::mutex workers_mu_;
  std::vector<std::jthread> workers_;
};

/// Client stub calling one procedure on a TcpProcedureHost.
class TcpRemoteProc {
 public:
  /// `import_spec_text` holds the import declaration for `name`.
  TcpRemoteProc(const std::string& host, int port, const std::string& name,
                const std::string& import_spec_text,
                const std::string& arch_key);

  /// Fault-tolerant invoke, mirroring RemoteProc::call(args, opts) on the
  /// real transport: deadline_us counts *real* microseconds, retries
  /// reconnect the socket (there is no Manager to rebind through), and a
  /// timeout tears the connection down so a straggler reply can never be
  /// matched to a later seq. failover_machine is ignored.
  CallResult call(uts::ValueList args, const CallOptions& opts);

  /// Same contract as RemoteProc::call (legacy throwing surface: one
  /// attempt, no deadline).
  uts::ValueList call(uts::ValueList args);

  /// Measure a kPing/kPong round trip over the live connection, in real
  /// (wall-clock) microseconds. Recorded into the rpc.transport.rtt_us
  /// histogram so benches can split network time from marshal time.
  double ping_us();

  const uts::Signature& signature() const { return decl_.signature; }

 private:
  std::unique_ptr<TcpConnection> conn_;
  std::string host_;
  int port_ = 0;
  std::string name_;
  uts::ProcDecl decl_;
  std::string import_text_;
  const arch::ArchDescriptor* arch_;
  std::uint64_t seq_ = 0;
  // Cached observability handles: the span label and the per-procedure
  // call counter are fixed for this stub's lifetime.
  std::string span_label_;
  obs::Counter* calls_by_name_ = nullptr;
};

}  // namespace npss::rpc
