// Real-socket transport.
//
// The virtual cluster reproduces the paper's *testbed*; this module is the
// transport the system would use on a real network today: Schooner wire
// Messages framed over TCP (4-byte big-endian length prefix + the standard
// frame). It provides a direct-connection subset of the protocol — a
// TcpProcedureHost serves kCall/kPing for a set of procedures, and a
// TcpRemoteProc is the matching client stub — enough to run the marshaling
// stack between genuinely separate processes (see examples/tcp_demo.cpp).
// Heterogeneity still applies: both ends declare the architecture whose
// native formats their values pass through.
//
// Data plane: both ends ride the multiplexed bus (src/rpc/bus/) — a poll()
// event loop owning nonblocking sockets, persistent connections carrying
// many sequence-tagged in-flight calls, coalesced scatter-gather writes,
// and an incremental frame decoder. Every TcpRemoteProc aimed at one
// host:port shares a pooled connection; call_async() pipelines calls over
// it (DESIGN.md §14). The blocking TcpConnection remains for peers that
// want the simple one-frame-at-a-time surface.
#pragma once

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch.hpp"
#include "rpc/bus/channel.hpp"
#include "rpc/calling.hpp"
#include "rpc/host.hpp"
#include "rpc/message.hpp"
#include "util/fair_queue.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace npss::obs {
class Counter;
}

namespace npss::rpc {

/// Blocking, length-prefixed Message stream over a connected socket.
/// (The multiplexed paths use the bus; this surface stays for tools and
/// tests that want lock-step framing, and it now survives nonblocking
/// sockets: write_all handles EAGAIN/partial writes, receive_within
/// charges poll time against the *remaining* deadline across EINTR.)
class TcpConnection {
 public:
  /// Adopt an already-connected socket descriptor.
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to host:port. Throws util::CallError on failure.
  static std::unique_ptr<TcpConnection> connect(const std::string& host,
                                                int port);

  void send(const Message& msg);
  /// Blocking receive; returns false on orderly peer close.
  bool receive(Message& msg);
  /// Like receive(), but throws util::DeadlineError when no data is
  /// readable within `timeout_ms` of real time (0 = block forever).
  bool receive_within(Message& msg, int timeout_ms);

  void close();
  int fd() const { return fd_; }

 private:
  void write_all(const std::uint8_t* data, std::size_t size);
  bool read_all(std::uint8_t* data, std::size_t size);

  int fd_ = -1;
};

/// Serves a set of procedures over TCP: a bus dispatcher owns every
/// connection; decoded kCall frames are handed to a small worker pool
/// (kPing answered inline on the loop). Per-signature call plumbing —
/// parsed import declaration, compatibility check, slot mapping, compiled
/// marshal plans — is compiled once and cached, so steady-state calls
/// execute plans instead of re-parsing signature text.
class TcpProcedureHost {
 public:
  /// Listen on `port` (0 = ephemeral; see port()). `arch_key` names the
  /// architecture whose native formats this host's values pass through.
  TcpProcedureHost(const std::string& spec_text,
                   std::vector<ProcedureDef> procs, const std::string& arch_key,
                   int port = 0, bus::BusOptions bus_options = {});
  ~TcpProcedureHost();
  TcpProcedureHost(const TcpProcedureHost&) = delete;
  TcpProcedureHost& operator=(const TcpProcedureHost&) = delete;

  int port() const { return port_; }
  /// Calls served so far.
  long calls() const { return calls_.load(); }

  void stop();

 private:
  struct Entry {
    uts::ProcDecl decl;
    ProcHandler handler;
    uts::ValueList defaults;  ///< default_value per export param
  };
  /// Everything a (procedure, import signature) pair needs per call,
  /// compiled on first sight and reused: the per-call cost drops to
  /// cache lookup + plan execution.
  struct Prepared {
    const Entry* entry;
    uts::ProcDecl import_decl;
    std::vector<std::size_t> slot;  ///< import index -> export slot
    std::shared_ptr<const uts::MarshalPlan> request_plan;
    std::shared_ptr<const uts::MarshalPlan> reply_plan;
  };
  struct Work {
    std::shared_ptr<bus::BusConnection> conn;
    Message msg;
  };

  std::shared_ptr<const Prepared> prepared_for(const Message& msg);
  void on_frame(const std::shared_ptr<bus::BusConnection>& conn,
                Message&& msg);
  void handle(const std::shared_ptr<bus::BusConnection>& conn, Message& msg);

  const arch::ArchDescriptor* arch_;
  std::map<std::string, Entry> handlers_;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<long> calls_{0};

  /// Guards the prepared-call cache workers race to fill; leaf lock
  /// except for the uts.PlanCache taken while compiling an entry
  /// (lock_hierarchy.md). handlers_ / arch_ / port_ are set before the
  /// workers start and read-only afterward.
  util::Mutex prep_mu_{"rpc.TcpHost.prepared"};
  std::map<std::string, std::shared_ptr<const Prepared>> prepared_
      SCHOONER_GUARDED_BY(prep_mu_);

  std::unique_ptr<bus::BusDispatcher> dispatcher_;
  /// Per-line FIFO lanes drained round-robin: one line's call storm
  /// queues behind itself, not in front of every other line (§15).
  util::FairQueue<Work> work_;
  std::vector<std::jthread> workers_;
};

class TcpRemoteProc;

/// One pipelined in-flight call (see TcpRemoteProc::call_async). get()
/// blocks for the reply and yields the CallResult; the destructor of an
/// un-got pending call abandons its seq (the connection is unaffected).
class PendingTcpCall {
 public:
  PendingTcpCall(PendingTcpCall&&) = default;
  PendingTcpCall& operator=(PendingTcpCall&&) = default;
  ~PendingTcpCall();

  /// Wait for the reply (bounded by the deadline captured at issue time)
  /// and produce the call's result. Idempotent: later calls return the
  /// same result.
  CallResult& get();

 private:
  friend class TcpRemoteProc;
  PendingTcpCall() = default;

  TcpRemoteProc* owner_ = nullptr;
  std::shared_ptr<bus::BusChannel> channel_;
  std::future<Message> reply_;
  std::uint64_t seq_ = 0;
  util::SimTime deadline_us_ = 0;
  std::chrono::steady_clock::time_point issued_;
  uts::ValueList args_;
  CallResult result_;
  bool done_ = false;
};

/// Client stub calling one procedure on a TcpProcedureHost. All stubs
/// aimed at one host:port share a pooled bus channel, so their calls
/// multiplex (and, via call_async, pipeline) over a single socket.
class TcpRemoteProc {
 public:
  /// `import_spec_text` holds the import declaration for `name`.
  /// Throws util::CallError when the host is unreachable.
  TcpRemoteProc(const std::string& host, int port, const std::string& name,
                const std::string& import_spec_text,
                const std::string& arch_key);

  /// Fault-tolerant invoke, mirroring RemoteProc::call(args, opts) on the
  /// real transport: deadline_us counts *real* microseconds. A timed-out
  /// seq is abandoned — the healthy shared connection is kept and the late
  /// reply discarded by seq; only a dead connection forces a reconnect.
  /// failover_machine is ignored.
  CallResult call(uts::ValueList args, const CallOptions& opts);

  /// Same contract as RemoteProc::call (legacy throwing surface: one
  /// attempt, no deadline).
  [[deprecated(
      "use call(args, CallOptions) and branch on CallResult.status")]]
  uts::ValueList call(uts::ValueList args);

  /// Issue the call and return immediately; many pending calls pipeline
  /// over the shared connection and replies are matched by seq. One
  /// attempt, no retries; `deadline_us` of 0 waits forever in get().
  PendingTcpCall call_async(uts::ValueList args, util::SimTime deadline_us = 0);

  /// Measure a kPing/kPong round trip over the shared connection, in real
  /// (wall-clock) microseconds. Recorded into the rpc.transport.rtt_us
  /// histogram so benches can split network time from marshal time.
  double ping_us();

  const uts::Signature& signature() const { return decl_.signature; }

 private:
  friend class PendingTcpCall;

  /// The pooled channel, reconnecting if the previous one died.
  std::shared_ptr<bus::BusChannel>& live_channel();
  void finish(PendingTcpCall& pending);

  std::shared_ptr<bus::BusChannel> channel_;
  std::string host_;
  int port_ = 0;
  std::string name_;
  uts::ProcDecl decl_;
  std::string import_text_;
  const arch::ArchDescriptor* arch_;
  std::shared_ptr<const uts::MarshalPlan> request_plan_;
  std::shared_ptr<const uts::MarshalPlan> reply_plan_;
  // Cached observability handles: the span label and the per-procedure
  // call counter are fixed for this stub's lifetime.
  std::string span_label_;
  obs::Counter* calls_by_name_ = nullptr;
};

}  // namespace npss::rpc
