#include "rpc/calling.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace npss::rpc {

namespace {

// SplitMix64 — same generator family the sim-layer FaultInjector uses, so
// backoff jitter shares its statistical quality and, crucially, its
// determinism: the draw depends only on the virtual clock and the attempt
// number, never on host timing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Backoff before retry number `retry_index` (1-based over the retries,
/// not the attempts): exponential with deterministic +-jitter.
util::SimTime backoff_us(const BackoffPolicy& policy, int retry_index,
                         util::SimTime virtual_now) {
  if (policy.initial_us <= 0) return 0;
  double delay = static_cast<double>(policy.initial_us) *
                 std::pow(std::max(policy.multiplier, 1.0), retry_index - 1);
  delay = std::min(delay, static_cast<double>(policy.max_us));
  if (policy.jitter > 0.0) {
    const double u = uniform01(
        mix64(static_cast<std::uint64_t>(virtual_now) ^
              mix64(static_cast<std::uint64_t>(retry_index))));
    delay *= 1.0 + policy.jitter * (2.0 * u - 1.0);
  }
  return static_cast<util::SimTime>(std::max(delay, 0.0));
}

void count(const char* name) {
  if (obs::enabled()) obs::Registry::global().counter(name).add();
}

}  // namespace

std::string discover_manager_leader(MessageIo& io,
                                    const std::vector<std::string>& replicas,
                                    int rounds) {
  for (int round = 0; round < rounds; ++round) {
    for (const std::string& address : replicas) {
      Message who;
      who.kind = MessageKind::kMetaWhoIsLeader;
      try {
        Message ack = io.call_within(address, std::move(who),
                                     /*host_grace_ms=*/100,
                                     /*raise_errors=*/false);
        // Only a replica's claim about *itself* counts: a follower that
        // has not yet heard of the leader's death would keep naming the
        // corpse, and adopting it would burn the caller's retry budget
        // before the election even fires.
        if (ack.kind == MessageKind::kMetaLeaderAck && ack.a == address) {
          return ack.a;
        }
        // Anything else = election in progress or stale; keep polling.
      } catch (const util::Error&) {
        // Dead replica; try the next one.
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return {};
}

bool CallCore::rediscover_manager() const {
  if (manager_replicas.empty()) return false;
  std::string leader = discover_manager_leader(*io, manager_replicas);
  if (leader.empty()) return false;
  if (leader != manager) {
    NPSS_LOG_INFO("rpc.call", "manager leader moved: ", manager, " -> ",
                  leader);
    count("rpc.meta.rebinds_after_failover");
  }
  manager = leader;
  return true;
}

CallOptions CallOptions::legacy() {
  CallOptions opts;
  opts.deadline_us = 0;       // block forever, as the original runtime did
  opts.max_attempts = 2;      // the historical one-rebind retry loop
  opts.backoff.initial_us = 0;  // no backoff sleep: virtual time unchanged
  opts.idempotent = false;
  return opts;
}

void CallCore::bind(const std::string& name, const std::string& import_text,
                    BindingCache& cache, int host_grace_ms) const {
  obs::Span span("rpc.client", "bind " + name);
  for (int attempt = 0;; ++attempt) {
    Message lookup;
    lookup.kind = MessageKind::kLookup;
    lookup.line = line;
    lookup.a = name;
    lookup.b = import_text;
    lookup.trace = span.context();
    Message ack;
    try {
      ack = host_grace_ms > 0
                ? io->call_within(manager, std::move(lookup), host_grace_ms,
                                  /*raise_errors=*/false)
                : io->call(manager, std::move(lookup),
                           /*raise_errors=*/false);
    } catch (const util::NoRouteError&) {
      // The Manager we knew is dead. With a replica group, find the new
      // leader and re-ask; standalone, the bind fails as it always did.
      if (attempt >= 3 || !rediscover_manager()) throw;
      continue;
    } catch (const util::DeadlineError&) {
      if (attempt >= 3 || !rediscover_manager()) throw;
      continue;
    }
    if (ack.is_error() &&
        static_cast<util::ErrorCode>(ack.n) == util::ErrorCode::kNotLeader &&
        attempt < 3 && !manager_replicas.empty()) {
      // A follower answered: it names its best leader guess in .b; an
      // empty hint (election in progress) falls back to polling the group.
      if (!ack.b.empty() && ack.b != manager) {
        manager = ack.b;
        count("rpc.meta.rebinds_after_failover");
      } else if (!rediscover_manager()) {
        ack.raise_if_error();
      }
      continue;
    }
    ack.raise_if_error();
    cache.address = ack.a;
    cache.resolved_name = ack.b;
    cache.lookups.add();
    count("rpc.client.lookups");
    return;
  }
}

CallResult CallCore::invoke(const std::string& name,
                            const uts::ProcDecl& import_decl,
                            const std::string& import_text, uts::ValueList args,
                            BindingCache& cache,
                            const CallOptions& opts) const {
  CallResult result;
  const uts::Signature& sig = import_decl.signature;
  if (args.size() != sig.size()) {
    result.status = util::Status(
        util::ErrorCode::kTypeMismatch,
        "call to '" + name + "': " + std::to_string(args.size()) +
            " arguments for " + std::to_string(sig.size()) + " parameters");
    return result;
  }

  // One span covers the whole fault-tolerant call; each attempt opens a
  // child below so a trace shows retries as siblings, not fresh roots.
  // The line tag lets a multi-tenant run's traces be sliced per line.
  obs::Span span("rpc.client", "call " + name);
  span.set_line(line);
  const util::SimTime virtual_start = clock ? clock->now() : 0;

  // Line-budget gates: a line that has spent its virtual budget, or holds
  // its full outstanding-call quota, fails fast — its failure mode stays
  // its own instead of becoming queue depth for its neighbors.
  LineBudget* budget = opts.line_budget.get();
  if (budget) {
    if (budget->virtual_exhausted()) {
      count("rpc.line.budget_exhausted");
      result.status = util::Status(
          util::ErrorCode::kBudgetExhausted,
          "call to '" + name + "': line " + std::to_string(line) +
              " virtual budget of " +
              std::to_string(budget->limits().virtual_us) + "us is spent");
      return result;
    }
    if (!budget->try_begin_call()) {
      count("rpc.line.budget_exhausted");
      result.status = util::Status(
          util::ErrorCode::kBudgetExhausted,
          "call to '" + name + "': line " + std::to_string(line) +
              " outstanding-call quota of " +
              std::to_string(budget->limits().outstanding) + " is full");
      return result;
    }
  }
  // Release the in-flight slot and bill the line's virtual spend on every
  // exit path (success, failure, or a throw from marshal/bind).
  struct BudgetGuard {
    LineBudget* budget;
    const util::VirtualClock* clock;
    util::SimTime start;
    ~BudgetGuard() {
      if (!budget) return;
      budget->end_call();
      if (clock) budget->charge_virtual(clock->now() - start);
    }
  } budget_guard{budget, clock, virtual_start};
  const bool deadlined = opts.deadline_us > 0;
  const util::SimTime deadline_abs =
      deadlined && clock ? virtual_start + opts.deadline_us : 0;
  const int grace_ms = deadlined ? std::max(opts.host_grace_ms, 1) : 0;
  const int max_attempts = std::max(opts.max_attempts, 1);

  // Marshal exactly once; every attempt re-sends the same blob.
  util::Bytes request_blob;
  bool marshaled = false;

  int attempts_left = max_attempts;
  bool failover_tried = false;
  util::ErrorCode last_code = util::ErrorCode::kUnknown;

  while (attempts_left > 0) {
    CallAttempt attempt;
    attempt.number = static_cast<int>(result.attempts.size()) + 1;
    const util::SimTime attempt_start = clock ? clock->now() : 0;

    // Deadline gate: out of virtual budget means no more attempts, even
    // if the retry budget says otherwise.
    if (deadline_abs > 0 && clock && clock->now() >= deadline_abs) {
      result.status = util::Status(
          util::ErrorCode::kDeadlineExceeded,
          "call to '" + name + "': deadline of " +
              std::to_string(opts.deadline_us) + "us exhausted after " +
              std::to_string(result.attempts.size()) + " attempt(s)");
      break;
    }

    // Backoff before retries (never the first attempt, and never after a
    // stale-binding redirect — the Manager already told us where to go).
    if (attempt.number > 1 && last_code != util::ErrorCode::kStaleBinding) {
      attempt.backoff_us =
          backoff_us(opts.backoff, attempt.number - 1, attempt_start);
      if (attempt.backoff_us > 0 && sleep) sleep(attempt.backoff_us);
    }

    // Bind (or rebind after a failure cleared the cache).
    bool retryable = false;
    try {
      if (cache.address.empty()) bind(name, import_text, cache, grace_ms);
      if (!marshaled) {
        if (!cache.request_plan) {
          cache.request_plan = uts::compile_plan(sig, uts::Direction::kRequest);
          cache.reply_plan = uts::compile_plan(sig, uts::Direction::kReply);
        }
        request_blob = cache.request_plan->marshal(*arch, args);
        if (compute) {
          compute(static_cast<double>(request_blob.size()) *
                  kMarshalUsPerByte);
        }
        marshaled = true;
      }
      attempt.address = cache.address;

      obs::Span attempt_span(
          "rpc.client", "attempt " + std::to_string(attempt.number));
      Message call_msg;
      call_msg.kind = MessageKind::kCall;
      call_msg.line = line;
      call_msg.a = cache.resolved_name;
      call_msg.b = import_text;
      call_msg.blob = request_blob;
      call_msg.trace = attempt_span.context();
      Message reply = grace_ms > 0
                          ? io->call_within(cache.address, std::move(call_msg),
                                            grace_ms, /*raise_errors=*/false)
                          : io->call(cache.address, std::move(call_msg),
                                     /*raise_errors=*/false);

      if (reply.is_error()) {
        const auto code = static_cast<util::ErrorCode>(reply.n);
        attempt.status = util::Status(code, reply.a);
        if (code == util::ErrorCode::kStaleBinding) {
          // The peer exists but no longer hosts the proc: rebind and go
          // again immediately — the request never executed.
          retryable = true;
          cache.address.clear();
          cache.stale_retries.add();
          count("rpc.client.stale_retries");
        }
      } else {
        if (compute) {
          compute(static_cast<double>(reply.blob.size()) * kMarshalUsPerByte);
        }
        uts::ValueList merged = cache.reply_plan->unmarshal(*arch, reply.blob);
        for (std::size_t i = 0; i < sig.size(); ++i) {
          if (!uts::param_travels(sig[i].mode, uts::Direction::kReply)) {
            merged[i] = std::move(args[i]);
          }
        }
        attempt.status = util::Status::ok();
        attempt.virtual_us = clock ? clock->now() - attempt_start : 0;
        result.attempts.push_back(attempt);
        result.status = util::Status::ok();
        result.values = std::move(merged);
        result.virtual_us = clock ? clock->now() - virtual_start : 0;
        if (obs::enabled()) {
          obs::Registry& reg = obs::Registry::global();
          reg.counter("rpc.client.calls").add();
          reg.counter("rpc.client.calls." + name).add();
          reg.counter("rpc.client.bytes_marshaled")
              .add(request_blob.size() + reply.blob.size());
          reg.histogram("rpc.client.latency_us").record(span.elapsed_us());
          if (clock) {
            reg.histogram("rpc.client.virtual_latency_us")
                .record(static_cast<double>(result.virtual_us));
          }
          if (attempt.number > 1) {
            reg.counter("rpc.client.recovered_calls").add();
          }
        }
        return result;
      }
    } catch (const util::NoRouteError& e) {
      // Dead address: the send itself failed, so the request never ran —
      // always safe to rebind and retry.
      attempt.status = util::Status::from(e);
      retryable = true;
      cache.address.clear();
      cache.stale_retries.add();
      count("rpc.client.stale_retries");
      NPSS_LOG_DEBUG("rpc.call", "stale address for '", name,
                     "', re-binding via manager");
    } catch (const util::DeadlineError& e) {
      // The transport wait gave up: a frame was dropped or the peer died
      // mid-call. Charge the attempt's virtual budget (the caller *sat*
      // there for it) so elapsed virtual time stays deterministic, then
      // retry only when the request is idempotent — it may have executed.
      attempt.status = util::Status::from(e);
      count("rpc.client.timeouts");
      if (clock && deadline_abs > 0) {
        const util::SimTime budget =
            opts.attempt_timeout_us > 0
                ? opts.attempt_timeout_us
                : std::max<util::SimTime>(
                      (deadline_abs - attempt_start) /
                          std::max(attempts_left, 1),
                      1);
        if (sleep) sleep(budget);
      }
      retryable = opts.idempotent;
      cache.address.clear();  // the peer may be gone; rebind on retry
    } catch (const util::Error& e) {
      // Bind/lookup/marshal failures and endpoint shutdown are terminal.
      attempt.status = util::Status::from(e);
      retryable = false;
    }

    last_code = attempt.status.code();
    attempt.virtual_us = clock ? clock->now() - attempt_start : 0;
    result.attempts.push_back(attempt);
    result.status = attempt.status;
    --attempts_left;
    if (!retryable) break;
    // A retry spends the *line's* budget too: once it is gone the line
    // stops storming and surfaces kBudgetExhausted instead.
    if (attempts_left > 0 && budget && !budget->charge_retry()) {
      count("rpc.line.budget_exhausted");
      result.status = util::Status(
          util::ErrorCode::kBudgetExhausted,
          "call to '" + name + "': line " + std::to_string(line) +
              " retry budget of " + std::to_string(budget->limits().retries) +
              " is spent; last error: " + attempt.status.to_string());
      break;
    }
    if (attempts_left > 0) count("rpc.client.retries");

    // Migration-based failover: every retry found the process dead, so
    // ask the Manager to sch_move the procedure onto a healthy machine
    // and spend one final attempt on the new placement.
    if (attempts_left == 0 && !failover_tried &&
        !opts.failover_machine.empty() &&
        (last_code == util::ErrorCode::kNoRoute ||
         last_code == util::ErrorCode::kDeadlineExceeded)) {
      failover_tried = true;
      NPSS_LOG_WARN("rpc.call", "failing over '", name, "' to machine '",
                    opts.failover_machine, "' via sch_move");
      auto send_move = [&]() {
        Message mv;
        mv.kind = MessageKind::kMove;
        mv.line = line;
        mv.a = cache.resolved_name.empty() ? name : cache.resolved_name;
        mv.b = opts.failover_machine;
        mv.trace = span.context();
        return grace_ms > 0
                   ? io->call_within(manager, std::move(mv),
                                     std::max(grace_ms * 10, 500))
                   : io->call(manager, std::move(mv));
      };
      try {
        Message ack;
        try {
          ack = send_move();
        } catch (const util::NoRouteError&) {
          // The Manager died with the procedure's machine. Re-bind to the
          // new leader (which rebuilt the export table, spec hashes
          // included, from the replicated log) and retry the move there.
          if (!rediscover_manager()) throw;
          ack = send_move();
        } catch (const util::NotLeaderError&) {
          if (!rediscover_manager()) throw;
          ack = send_move();
        }
        cache.address = ack.a;
        result.failed_over = true;
        attempts_left = 1;  // the post-failover attempt
        count("rpc.client.failovers");
        continue;
      } catch (const util::Error& e) {
        NPSS_LOG_WARN("rpc.call", "failover of '", name,
                      "' failed: ", e.what());
        // Record the refused sch_move as its own attempt so the trace
        // shows *why* the failover died (e.g. the Manager's compat gate
        // rejecting an incompatible replacement replica).
        CallAttempt move_attempt;
        move_attempt.number = static_cast<int>(result.attempts.size()) + 1;
        move_attempt.address = "sch_move -> " + opts.failover_machine;
        move_attempt.status = util::Status::from(e);
        result.attempts.push_back(std::move(move_attempt));
        result.status = util::Status(
            util::ErrorCode::kUnavailable,
            "call to '" + name + "': " + result.status.message() +
                "; failover to '" + opts.failover_machine +
                "' failed: " + util::Status::from(e).message());
        break;
      }
    }
  }

  if (result.status.is_ok()) {
    // Retry budget exhausted without ever reaching the attempt loop body
    // (deadline gate fired before the first attempt).
    result.status = util::Status(
        util::ErrorCode::kDeadlineExceeded,
        "call to '" + name + "': no attempt possible within deadline");
  }
  result.virtual_us = clock ? clock->now() - virtual_start : 0;
  count("rpc.client.failed_calls");
  NPSS_LOG_DEBUG("rpc.call", "call to '", name,
                 "' failed: ", result.status.to_string(), " after ",
                 result.attempts.size(), " attempt(s)");
  return result;
}

std::future<CallResult> CallCore::invoke_async(
    const std::string& name, const uts::ProcDecl& import_decl,
    const std::string& import_text, uts::ValueList args, BindingCache& cache,
    const CallOptions& opts) const {
  // std::launch::async: the call must make progress without the caller
  // blocking on get() — that is the whole point of overlapping.
  return std::async(
      std::launch::async,
      [core = *this, name, import_decl, import_text, args = std::move(args),
       &cache, opts]() mutable {
        return core.invoke(name, import_decl, import_text, std::move(args),
                           cache, opts);
      });
}

uts::ValueList CallCore::invoke(const std::string& name,
                                const uts::ProcDecl& import_decl,
                                const std::string& import_text,
                                uts::ValueList args,
                                BindingCache& cache) const {
  CallResult result = invoke(name, import_decl, import_text, std::move(args),
                             cache, CallOptions::legacy());
  return std::move(result.values_or_raise());
}

std::future<uts::ValueList> CallCore::invoke_async(
    const std::string& name, const uts::ProcDecl& import_decl,
    const std::string& import_text, uts::ValueList args,
    BindingCache& cache) const {
  return std::async(
      std::launch::async,
      [core = *this, name, import_decl, import_text, args = std::move(args),
       &cache]() mutable {
        CallResult result =
            core.invoke(name, import_decl, import_text, std::move(args), cache,
                        CallOptions::legacy());
        return std::move(result.values_or_raise());
      });
}

}  // namespace npss::rpc
