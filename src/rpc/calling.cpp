#include "rpc/calling.hpp"

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace npss::rpc {

void CallCore::bind(const std::string& name, const std::string& import_text,
                    BindingCache& cache) const {
  obs::Span span("rpc.client", "bind " + name);
  Message lookup;
  lookup.kind = MessageKind::kLookup;
  lookup.line = line;
  lookup.a = name;
  lookup.b = import_text;
  lookup.trace = span.context();
  Message ack = io->call(manager, std::move(lookup));
  cache.address = ack.a;
  cache.resolved_name = ack.b;
  cache.lookups.add();
  if (obs::enabled()) {
    obs::Registry::global().counter("rpc.client.lookups").add();
  }
}

uts::ValueList CallCore::invoke(const std::string& name,
                                const uts::ProcDecl& import_decl,
                                const std::string& import_text,
                                uts::ValueList args,
                                BindingCache& cache) const {
  const uts::Signature& sig = import_decl.signature;
  if (args.size() != sig.size()) {
    throw util::TypeMismatchError(
        "call to '" + name + "': " + std::to_string(args.size()) +
        " arguments for " + std::to_string(sig.size()) + " parameters");
  }
  obs::Span span("rpc.client", "call " + name);
  const util::SimTime virtual_start = clock ? clock->now() : 0;
  if (cache.address.empty()) bind(name, import_text, cache);
  if (!cache.request_plan) {
    cache.request_plan = uts::compile_plan(sig, uts::Direction::kRequest);
    cache.reply_plan = uts::compile_plan(sig, uts::Direction::kReply);
  }

  util::Bytes request_blob = cache.request_plan->marshal(*arch, args);
  if (compute) {
    compute(static_cast<double>(request_blob.size()) * kMarshalUsPerByte);
  }

  for (int attempt = 0; attempt < 2; ++attempt) {
    Message call_msg;
    call_msg.kind = MessageKind::kCall;
    call_msg.line = line;
    call_msg.a = cache.resolved_name;
    call_msg.b = import_text;
    call_msg.blob = request_blob;
    call_msg.trace = span.context();
    Message reply;
    try {
      reply = io->call(cache.address, std::move(call_msg),
                       /*raise_errors=*/false);
    } catch (const util::NoRouteError&) {
      // The process is gone (moved, or its line shut down). Refresh the
      // binding from the Manager and retry once.
      if (attempt == 1) throw;
      cache.stale_retries.add();
      if (obs::enabled()) {
        obs::Registry::global().counter("rpc.client.stale_retries").add();
      }
      NPSS_LOG_DEBUG("rpc.call", "stale address for '", name,
                     "', re-binding via manager");
      bind(name, import_text, cache);
      continue;
    }
    if (reply.is_error()) {
      if (static_cast<util::ErrorCode>(reply.n) ==
              util::ErrorCode::kStaleBinding &&
          attempt == 0) {
        cache.stale_retries.add();
        if (obs::enabled()) {
          obs::Registry::global().counter("rpc.client.stale_retries").add();
        }
        bind(name, import_text, cache);
        continue;
      }
      reply.raise_if_error();
    }
    if (compute) {
      compute(static_cast<double>(reply.blob.size()) * kMarshalUsPerByte);
    }
    if (obs::enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("rpc.client.calls").add();
      reg.counter("rpc.client.calls." + name).add();
      reg.counter("rpc.client.bytes_marshaled")
          .add(request_blob.size() + reply.blob.size());
      reg.histogram("rpc.client.latency_us").record(span.elapsed_us());
      if (clock) {
        reg.histogram("rpc.client.virtual_latency_us")
            .record(static_cast<double>(clock->now() - virtual_start));
      }
    }
    uts::ValueList results = cache.reply_plan->unmarshal(*arch, reply.blob);
    // Merge: val slots keep the caller's arguments.
    for (std::size_t i = 0; i < sig.size(); ++i) {
      if (!uts::param_travels(sig[i].mode, uts::Direction::kReply)) {
        results[i] = std::move(args[i]);
      }
    }
    return results;
  }
  throw util::CallError("call to '" + name + "' failed after retry");
}

std::future<uts::ValueList> CallCore::invoke_async(
    const std::string& name, const uts::ProcDecl& import_decl,
    const std::string& import_text, uts::ValueList args,
    BindingCache& cache) const {
  // std::launch::async: the call must make progress without the caller
  // blocking on get() — that is the whole point of overlapping.
  return std::async(
      std::launch::async,
      [core = *this, name, import_decl, import_text, args = std::move(args),
       &cache]() mutable {
        return core.invoke(name, import_decl, import_text, std::move(args),
                           cache);
      });
}

}  // namespace npss::rpc
