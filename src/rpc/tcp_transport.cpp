#include "rpc/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/manager.hpp"
#include "util/log.hpp"

namespace npss::rpc {

using util::CallError;

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Metric handles resolved once: registry handles stay valid (and reset()
// zeroes without invalidating them), so the per-call cost is an atomic
// add, not a mutex-guarded map lookup.
struct TcpMetrics {
  obs::Counter& frames_sent;
  obs::Counter& bytes_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_received;
  obs::Counter& host_calls;
  obs::Counter& host_bytes_marshaled;
  obs::Histogram& host_handler_us;
  obs::Counter& host_errors;
  obs::Counter& client_calls;
  obs::Counter& client_bytes_marshaled;
  obs::Histogram& client_latency_us;
  obs::Histogram& rtt_us;
};

TcpMetrics& tcp_metrics() {
  static TcpMetrics m = [] {
    obs::Registry& reg = obs::Registry::global();
    return TcpMetrics{reg.counter("rpc.transport.frames_sent"),
                      reg.counter("rpc.transport.bytes_sent"),
                      reg.counter("rpc.transport.frames_received"),
                      reg.counter("rpc.transport.bytes_received"),
                      reg.counter("rpc.host.calls"),
                      reg.counter("rpc.host.bytes_marshaled"),
                      reg.histogram("rpc.host.handler_us"),
                      reg.counter("rpc.host.errors"),
                      reg.counter("rpc.client.calls"),
                      reg.counter("rpc.client.bytes_marshaled"),
                      reg.histogram("rpc.client.latency_us"),
                      reg.histogram("rpc.transport.rtt_us")};
  }();
  return m;
}

}  // namespace

// --- TcpConnection ----------------------------------------------------------------

TcpConnection::~TcpConnection() { close(); }

std::unique_ptr<TcpConnection> TcpConnection::connect(const std::string& host,
                                                      int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw CallError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw CallError("bad address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw CallError("connect to " + host + ":" + std::to_string(port) +
                    " failed: " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpConnection>(fd);
}

void TcpConnection::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) throw CallError("tcp send failed");
    sent += static_cast<std::size_t>(n);
  }
}

bool TcpConnection::read_all(std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n == 0) return false;  // orderly close
    if (n < 0) throw CallError("tcp recv failed");
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void TcpConnection::send(const Message& msg) {
  util::Bytes frame = encode_message(msg);
  if (obs::enabled()) {
    tcp_metrics().frames_sent.add();
    tcp_metrics().bytes_sent.add(frame.size());
  }
  std::uint8_t prefix[4];
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(len >> (8 * (3 - i)));
  }
  write_all(prefix, 4);
  write_all(frame.data(), frame.size());
}

bool TcpConnection::receive(Message& msg) {
  std::uint8_t prefix[4];
  if (!read_all(prefix, 4)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len = (len << 8) | prefix[i];
  if (len > (64u << 20)) {
    throw util::EncodingError("tcp frame length " + std::to_string(len) +
                              " exceeds the 64 MiB sanity cap");
  }
  util::Bytes frame(len);
  if (!read_all(frame.data(), len)) return false;
  if (obs::enabled()) {
    tcp_metrics().frames_received.add();
    tcp_metrics().bytes_received.add(frame.size());
  }
  msg = decode_message(frame);
  return true;
}

bool TcpConnection::receive_within(Message& msg, int timeout_ms) {
  if (timeout_ms > 0) {
    struct pollfd pfd{fd_, POLLIN, 0};
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      throw util::DeadlineError("no tcp reply within " +
                                std::to_string(timeout_ms) + "ms");
    }
    if (rc < 0) throw CallError("poll() failed on tcp connection");
  }
  return receive(msg);
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

// --- TcpProcedureHost --------------------------------------------------------------

TcpProcedureHost::TcpProcedureHost(const std::string& spec_text,
                                   std::vector<ProcedureDef> procs,
                                   const std::string& arch_key, int port)
    : arch_(&arch::arch_catalog(arch_key)) {
  uts::SpecFile spec = uts::parse_spec(spec_text);
  for (ProcedureDef& def : procs) {
    const uts::ProcDecl& decl = spec.find(def.name);
    handlers_[lower(def.name)] = Entry{decl, std::move(def.handler)};
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw CallError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw CallError("bind failed: " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) throw CallError("listen failed");
  acceptor_ = std::jthread([this] { accept_loop(); });
}

TcpProcedureHost::~TcpProcedureHost() { stop(); }

void TcpProcedureHost::stop() {
  if (stopping_.exchange(true)) return;
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  // Join the acceptor before draining workers_: it is the only writer of
  // the vector, and the jthread member would otherwise join *after* the
  // vector (declared later) has already been destroyed.
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::jthread> workers;
  {
    std::lock_guard lock(workers_mu_);
    workers.swap(workers_);
  }
  workers.clear();  // joins every connection thread
}

void TcpProcedureHost::accept_loop() {
  while (!stopping_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // listener closed
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_unique<TcpConnection>(fd);
    std::lock_guard lock(workers_mu_);
    workers_.emplace_back(
        [this, conn = std::move(conn)]() mutable { serve(std::move(conn)); });
  }
}

void TcpProcedureHost::serve(std::unique_ptr<TcpConnection> conn) {
  Message msg;
  try {
    while (conn->receive(msg)) {
      if (msg.kind == MessageKind::kPing) {
        Message pong;
        pong.kind = MessageKind::kPong;
        pong.seq = msg.seq;
        conn->send(pong);
        continue;
      }
      if (msg.kind != MessageKind::kCall) {
        conn->send(Message::error_reply(msg, util::ErrorCode::kProtocolError,
                                        "tcp host: unexpected message"));
        continue;
      }
      // Adopt the caller's trace: both ends of the socket log spans under
      // the same trace id.
      obs::Span span("rpc.host", "tcp serve " + msg.a, msg.trace);
      try {
        auto it = handlers_.find(lower(msg.a));
        if (it == handlers_.end()) {
          throw util::LookupError("no procedure '" + msg.a + "'");
        }
        const Entry& entry = it->second;
        uts::ProcDecl import_decl = parse_signature_text(msg.b);
        std::string why = uts::signature_compatibility_error(
            import_decl.signature, entry.decl.signature);
        if (!why.empty()) throw util::TypeMismatchError(why);
        uts::ValueList import_values = uts::unmarshal(
            *arch_, import_decl.signature, msg.blob, uts::Direction::kRequest);

        // Scatter import slots onto the export signature by name.
        uts::ValueList values;
        values.reserve(entry.decl.signature.size());
        for (const uts::Param& p : entry.decl.signature) {
          values.push_back(uts::default_value(p.type));
        }
        std::vector<std::size_t> slot(import_decl.signature.size());
        std::size_t epos = 0;
        for (std::size_t i = 0; i < import_decl.signature.size(); ++i) {
          while (entry.decl.signature[epos].name !=
                 import_decl.signature[i].name) {
            ++epos;
          }
          slot[i] = epos++;
        }
        for (std::size_t i = 0; i < import_decl.signature.size(); ++i) {
          if (uts::param_travels(import_decl.signature[i].mode,
                                 uts::Direction::kRequest)) {
            values[slot[i]] = std::move(import_values[i]);
          }
        }

        // No cluster runtime behind a TCP host: compute() is a no-op
        // and nested calls are unavailable.
        ProcCall call(entry.decl.signature, std::move(values), nullptr);
        entry.handler(call);

        uts::ValueList reply_values;
        reply_values.reserve(import_decl.signature.size());
        for (std::size_t i = 0; i < import_decl.signature.size(); ++i) {
          reply_values.push_back(call.values()[slot[i]]);
        }
        Message rep;
        rep.kind = MessageKind::kReply;
        rep.seq = msg.seq;
        rep.blob = uts::marshal(*arch_, import_decl.signature, reply_values,
                                uts::Direction::kReply);
        rep.trace = span.context();
        ++calls_;  // count before the reply leaves, so a client that has
                   // seen its reply also sees the updated counter
        if (obs::enabled()) {
          TcpMetrics& m = tcp_metrics();
          m.host_calls.add();
          m.host_bytes_marshaled.add(msg.blob.size() + rep.blob.size());
          m.host_handler_us.record(span.elapsed_us());
        }
        conn->send(rep);
      } catch (const util::Error& e) {
        if (obs::enabled()) tcp_metrics().host_errors.add();
        conn->send(Message::error_reply(msg, e.code(), e.what()));
      }
    }
  } catch (const util::Error& e) {
    NPSS_LOG_WARN("tcp-host", "connection dropped: ", e.what());
  }
}

// --- TcpRemoteProc ------------------------------------------------------------------

TcpRemoteProc::TcpRemoteProc(const std::string& host, int port,
                             const std::string& name,
                             const std::string& import_spec_text,
                             const std::string& arch_key)
    : conn_(TcpConnection::connect(host, port)),
      host_(host),
      port_(port),
      name_(name),
      arch_(&arch::arch_catalog(arch_key)) {
  uts::SpecFile spec = uts::parse_spec(import_spec_text);
  decl_ = spec.find(name);
  import_text_ = uts::decl_to_string(decl_);
  span_label_ = "tcp call " + name_;
  calls_by_name_ = &obs::Registry::global().counter("rpc.client.calls." + name_);
}

CallResult TcpRemoteProc::call(uts::ValueList args, const CallOptions& opts) {
  using clock_type = std::chrono::steady_clock;
  CallResult result;
  const uts::Signature& sig = decl_.signature;
  if (args.size() != sig.size()) {
    result.status = util::Status(util::ErrorCode::kTypeMismatch,
                                 "tcp call: argument count mismatch");
    return result;
  }
  obs::Span span("rpc.client", span_label_);
  const auto start = clock_type::now();
  const bool deadlined = opts.deadline_us > 0;
  const auto deadline =
      deadlined ? start + std::chrono::microseconds(opts.deadline_us)
                : clock_type::time_point::max();
  const int max_attempts = std::max(opts.max_attempts, 1);
  util::Bytes blob = uts::marshal(*arch_, sig, args, uts::Direction::kRequest);

  for (int n = 1; n <= max_attempts; ++n) {
    CallAttempt attempt;
    attempt.number = n;
    attempt.address = host_ + ":" + std::to_string(port_);
    if (clock_type::now() >= deadline) {
      result.status = util::Status(
          util::ErrorCode::kDeadlineExceeded,
          "tcp call to '" + name_ + "': deadline exhausted after " +
              std::to_string(result.attempts.size()) + " attempt(s)");
      break;
    }
    if (n > 1 && opts.backoff.initial_us > 0) {
      auto wait = std::chrono::microseconds(std::min<util::SimTime>(
          static_cast<util::SimTime>(
              static_cast<double>(opts.backoff.initial_us) *
              std::pow(std::max(opts.backoff.multiplier, 1.0), n - 2)),
          opts.backoff.max_us));
      attempt.backoff_us = wait.count();
      std::this_thread::sleep_for(wait);
    }
    bool retryable = false;
    try {
      if (!conn_) conn_ = TcpConnection::connect(host_, port_);
      obs::Span attempt_span("rpc.client", "attempt " + std::to_string(n));
      Message msg;
      msg.kind = MessageKind::kCall;
      msg.seq = ++seq_;
      msg.a = name_;
      msg.b = import_text_;
      msg.blob = blob;
      msg.trace = attempt_span.context();
      conn_->send(msg);
      int wait_ms = 0;
      if (deadlined) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - clock_type::now());
        wait_ms = std::max<int>(static_cast<int>(left.count()), 1);
      }
      Message reply;
      if (!conn_->receive_within(reply, wait_ms)) {
        throw CallError("tcp peer closed during call to '" + name_ + "'");
      }
      if (reply.is_error()) {
        attempt.status = util::Status(static_cast<util::ErrorCode>(reply.n),
                                      reply.a);
        result.attempts.push_back(attempt);
        result.status = attempt.status;
        break;  // the peer executed and refused: terminal
      }
      if (obs::enabled()) {
        TcpMetrics& m = tcp_metrics();
        m.client_calls.add();
        calls_by_name_->add();
        m.client_bytes_marshaled.add(blob.size() + reply.blob.size());
        m.client_latency_us.record(span.elapsed_us());
      }
      uts::ValueList results =
          uts::unmarshal(*arch_, sig, reply.blob, uts::Direction::kReply);
      for (std::size_t i = 0; i < sig.size(); ++i) {
        if (!uts::param_travels(sig[i].mode, uts::Direction::kReply)) {
          results[i] = std::move(args[i]);
        }
      }
      attempt.status = util::Status::ok();
      result.attempts.push_back(attempt);
      result.status = util::Status::ok();
      result.values = std::move(results);
      return result;
    } catch (const util::DeadlineError& e) {
      // The socket now holds an unconsumed (late) reply for this seq;
      // drop the connection so the next attempt starts clean.
      attempt.status = util::Status::from(e);
      conn_.reset();
      retryable = opts.idempotent;
    } catch (const CallError& e) {
      attempt.status = util::Status::from(e);
      conn_.reset();
      retryable = true;  // reconnect replaces the Manager rebind here
    } catch (const util::Error& e) {
      attempt.status = util::Status::from(e);
    }
    result.attempts.push_back(attempt);
    result.status = attempt.status;
    if (!retryable) break;
  }
  if (result.status.is_ok()) {
    result.status = util::Status(
        util::ErrorCode::kDeadlineExceeded,
        "tcp call to '" + name_ + "': no attempt possible within deadline");
  }
  return result;
}

uts::ValueList TcpRemoteProc::call(uts::ValueList args) {
  CallOptions opts = CallOptions::legacy();
  opts.max_attempts = 1;  // the original stub made exactly one attempt
  CallResult result = call(std::move(args), opts);
  return std::move(result.values_or_raise());
}

double TcpRemoteProc::ping_us() {
  const auto before = std::chrono::steady_clock::now();
  Message msg;
  msg.kind = MessageKind::kPing;
  msg.seq = ++seq_;
  conn_->send(msg);
  Message reply;
  if (!conn_->receive(reply)) {
    throw CallError("tcp peer closed during ping");
  }
  const double rtt_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - before)
          .count();
  if (obs::enabled()) tcp_metrics().rtt_us.record(rtt_us);
  return rtt_us;
}

}  // namespace npss::rpc
