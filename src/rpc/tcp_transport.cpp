#include "rpc/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rpc/bus/frame.hpp"
#include "rpc/manager.hpp"
#include "util/log.hpp"

namespace npss::rpc {

using util::CallError;

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Metric handles resolved once: registry handles stay valid (and reset()
// zeroes without invalidating them), so the per-call cost is an atomic
// add, not a mutex-guarded map lookup.
struct TcpMetrics {
  obs::Counter& frames_sent;
  obs::Counter& bytes_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_received;
  obs::Counter& host_calls;
  obs::Counter& host_bytes_marshaled;
  obs::Histogram& host_handler_us;
  obs::Counter& host_errors;
  obs::Counter& client_calls;
  obs::Counter& client_bytes_marshaled;
  obs::Histogram& client_latency_us;
  obs::Histogram& rtt_us;
};

TcpMetrics& tcp_metrics() {
  static TcpMetrics m = [] {
    obs::Registry& reg = obs::Registry::global();
    return TcpMetrics{reg.counter("rpc.transport.frames_sent"),
                      reg.counter("rpc.transport.bytes_sent"),
                      reg.counter("rpc.transport.frames_received"),
                      reg.counter("rpc.transport.bytes_received"),
                      reg.counter("rpc.host.calls"),
                      reg.counter("rpc.host.bytes_marshaled"),
                      reg.histogram("rpc.host.handler_us"),
                      reg.counter("rpc.host.errors"),
                      reg.counter("rpc.client.calls"),
                      reg.counter("rpc.client.bytes_marshaled"),
                      reg.histogram("rpc.client.latency_us"),
                      reg.histogram("rpc.transport.rtt_us")};
  }();
  return m;
}

/// Frame bytes that are not argument blob: prefix, fixed fields, string
/// lengths, empty table, optional trace extension. Lets the client count
/// blob bytes (the historical client_bytes_marshaled unit) without ever
/// materializing the blob.
std::size_t call_frame_overhead(const std::string& a, const std::string& b,
                                bool traced) {
  return 4 /*prefix*/ + 1 /*kind*/ + 8 /*seq*/ + 8 /*line*/ +
         (4 + a.size()) + (4 + b.size()) + 4 /*c*/ + 8 /*n*/ +
         4 /*blob len*/ + 4 /*table*/ + (traced ? 1 + 3 * 8 : 0);
}

}  // namespace

// --- TcpConnection ----------------------------------------------------------------

TcpConnection::~TcpConnection() { close(); }

std::unique_ptr<TcpConnection> TcpConnection::connect(const std::string& host,
                                                      int port) {
  return std::make_unique<TcpConnection>(bus::tcp_connect_fd(host, port));
}

void TcpConnection::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) throw CallError("tcp send failed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Nonblocking socket with a full send buffer: a partial write
      // already consumed a prefix of `data`; wait for writability and
      // resume where we left off.
      pollfd pfd{fd_, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, -1);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) throw CallError("poll() failed while writing");
      continue;
    }
    throw CallError("tcp send failed");
  }
}

bool TcpConnection::read_all(std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n == 0) return false;  // orderly close
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd_, POLLIN, 0};
        int rc;
        do {
          rc = ::poll(&pfd, 1, -1);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0) throw CallError("poll() failed while reading");
        continue;
      }
      throw CallError("tcp recv failed");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void TcpConnection::send(const Message& msg) {
  util::Bytes frame = encode_message(msg);
  if (obs::enabled()) {
    tcp_metrics().frames_sent.add();
    tcp_metrics().bytes_sent.add(frame.size());
  }
  std::uint8_t prefix[4];
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(len >> (8 * (3 - i)));
  }
  write_all(prefix, 4);
  write_all(frame.data(), frame.size());
}

bool TcpConnection::receive(Message& msg) {
  std::uint8_t prefix[4];
  if (!read_all(prefix, 4)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len = (len << 8) | prefix[i];
  if (len > (64u << 20)) {
    throw util::EncodingError("tcp frame length " + std::to_string(len) +
                              " exceeds the 64 MiB sanity cap");
  }
  util::Bytes frame(len);
  if (!read_all(frame.data(), len)) return false;
  if (obs::enabled()) {
    tcp_metrics().frames_received.add();
    tcp_metrics().bytes_received.add(frame.size());
  }
  msg = decode_message(frame);
  return true;
}

bool TcpConnection::receive_within(Message& msg, int timeout_ms) {
  if (timeout_ms > 0) {
    using clock_type = std::chrono::steady_clock;
    // Absolute deadline: an EINTR-interrupted poll resumes with the
    // *remaining* budget, instead of granting the full timeout again.
    const auto deadline =
        clock_type::now() + std::chrono::milliseconds(timeout_ms);
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock_type::now());
      if (left.count() <= 0) {
        throw util::DeadlineError("no tcp reply within " +
                                  std::to_string(timeout_ms) + "ms");
      }
      const int rc = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (rc > 0) break;
      if (rc == 0) {
        throw util::DeadlineError("no tcp reply within " +
                                  std::to_string(timeout_ms) + "ms");
      }
      if (errno != EINTR) throw CallError("poll() failed on tcp connection");
    }
  }
  return receive(msg);
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

// --- TcpProcedureHost --------------------------------------------------------------

TcpProcedureHost::TcpProcedureHost(const std::string& spec_text,
                                   std::vector<ProcedureDef> procs,
                                   const std::string& arch_key, int port,
                                   bus::BusOptions bus_options)
    : arch_(&arch::arch_catalog(arch_key)) {
  uts::SpecFile spec = uts::parse_spec(spec_text);
  for (ProcedureDef& def : procs) {
    const uts::ProcDecl& decl = spec.find(def.name);
    Entry entry{decl, std::move(def.handler), {}};
    entry.defaults.reserve(decl.signature.size());
    for (const uts::Param& p : decl.signature) {
      entry.defaults.push_back(uts::default_value(p.type));
    }
    handlers_[lower(def.name)] = std::move(entry);
  }

  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) throw CallError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(listen_fd);
    throw CallError("bind failed: " + std::string(std::strerror(err)));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd, 64) != 0) {
    ::close(listen_fd);
    throw CallError("listen failed");
  }

  dispatcher_ =
      std::make_unique<bus::BusDispatcher>("tcp-host", bus_options);
  const int workers = std::max(bus_options.workers, 0);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] {
      while (auto work = work_.pop()) {
        handle(work->conn, work->msg);
      }
    });
  }
  dispatcher_->listen(listen_fd, [this](int fd) {
    dispatcher_->adopt(
        fd,
        [this](const std::shared_ptr<bus::BusConnection>& conn,
               Message&& msg) { on_frame(conn, std::move(msg)); },
        bus::BusConnection::CloseFn{});
  });
}

TcpProcedureHost::~TcpProcedureHost() { stop(); }

void TcpProcedureHost::stop() {
  if (stopping_.exchange(true)) return;
  if (dispatcher_) dispatcher_->stop();
  work_.close();
  workers_.clear();  // joins the pool; pop() drains queued calls first
}

void TcpProcedureHost::on_frame(
    const std::shared_ptr<bus::BusConnection>& conn, Message&& msg) {
  // Pings answered inline on the loop thread: the RTT probe must not sit
  // behind queued calls.
  if (msg.kind == MessageKind::kPing) {
    Message pong;
    pong.kind = MessageKind::kPong;
    pong.seq = msg.seq;
    conn->send_message(pong);
    return;
  }
  if (workers_.empty()) {
    handle(conn, msg);
    return;
  }
  const LineId line = msg.line;
  work_.push(line, Work{conn, std::move(msg)});
}

std::shared_ptr<const TcpProcedureHost::Prepared>
TcpProcedureHost::prepared_for(const Message& msg) {
  const std::string key = msg.a + '\n' + msg.b;
  {
    util::MutexLock lock(prep_mu_);
    auto it = prepared_.find(key);
    if (it != prepared_.end()) return it->second;
  }
  auto hit = handlers_.find(lower(msg.a));
  if (hit == handlers_.end()) {
    throw util::LookupError("no procedure '" + msg.a + "'");
  }
  auto prep = std::make_shared<Prepared>();
  prep->entry = &hit->second;
  prep->import_decl = parse_signature_text(msg.b);
  const std::string why = uts::signature_compatibility_error(
      prep->import_decl.signature, prep->entry->decl.signature);
  if (!why.empty()) throw util::TypeMismatchError(why);
  // Map import slots onto the export signature by name (subset imports
  // keep the export's order).
  prep->slot.resize(prep->import_decl.signature.size());
  std::size_t epos = 0;
  for (std::size_t i = 0; i < prep->import_decl.signature.size(); ++i) {
    while (prep->entry->decl.signature[epos].name !=
           prep->import_decl.signature[i].name) {
      ++epos;
    }
    prep->slot[i] = epos++;
  }
  prep->request_plan =
      uts::compile_plan(prep->import_decl.signature, uts::Direction::kRequest);
  prep->reply_plan =
      uts::compile_plan(prep->import_decl.signature, uts::Direction::kReply);
  util::MutexLock lock(prep_mu_);
  prepared_[key] = prep;
  return prep;
}

void TcpProcedureHost::handle(const std::shared_ptr<bus::BusConnection>& conn,
                              Message& msg) {
  if (msg.kind != MessageKind::kCall) {
    conn->send_message(Message::error_reply(
        msg, util::ErrorCode::kProtocolError, "tcp host: unexpected message"));
    return;
  }
  // Adopt the caller's trace: both ends of the socket log spans under
  // the same trace id.
  obs::Span span("rpc.host", "tcp serve " + msg.a, msg.trace);
  try {
    std::shared_ptr<const Prepared> prep = prepared_for(msg);
    const uts::Signature& import_sig = prep->import_decl.signature;
    uts::ValueList import_values =
        prep->request_plan->unmarshal(*arch_, msg.blob);

    uts::ValueList values = prep->entry->defaults;
    for (std::size_t i = 0; i < import_sig.size(); ++i) {
      if (uts::param_travels(import_sig[i].mode, uts::Direction::kRequest)) {
        values[prep->slot[i]] = std::move(import_values[i]);
      }
    }

    // No cluster runtime behind a TCP host: compute() is a no-op and
    // nested calls are unavailable.
    ProcCall call(prep->entry->decl.signature, std::move(values), nullptr);
    prep->entry->handler(call);

    uts::ValueList reply_values;
    reply_values.reserve(import_sig.size());
    for (std::size_t i = 0; i < import_sig.size(); ++i) {
      reply_values.push_back(call.values()[prep->slot[i]]);
    }
    std::size_t reply_frame_bytes = 0;
    conn->send_frame([&](util::ByteWriter& out) {
      const std::size_t before = out.size();
      bus::append_reply_frame(out, msg.seq, *prep->reply_plan, *arch_,
                              reply_values, span.context(),
                              dispatcher_->options().max_frame_bytes);
      reply_frame_bytes = out.size() - before;
      ++calls_;  // committed: counted before the reply bytes can leave,
                 // so a client that saw its reply also sees the counter
    });
    if (obs::enabled()) {
      TcpMetrics& m = tcp_metrics();
      m.host_calls.add();
      m.host_bytes_marshaled.add(msg.blob.size() + reply_frame_bytes);
      m.host_handler_us.record(span.elapsed_us());
    }
  } catch (const util::Error& e) {
    if (obs::enabled()) tcp_metrics().host_errors.add();
    conn->send_message(Message::error_reply(msg, e.code(), e.what()));
  }
}

// --- PendingTcpCall -----------------------------------------------------------------

PendingTcpCall::~PendingTcpCall() {
  // An un-got pending call abandons its seq; the shared connection and
  // its other in-flight calls are unaffected.
  if (!done_ && channel_ && reply_.valid()) channel_->abandon(seq_);
}

CallResult& PendingTcpCall::get() {
  if (!done_) owner_->finish(*this);
  return result_;
}

// --- TcpRemoteProc ------------------------------------------------------------------

TcpRemoteProc::TcpRemoteProc(const std::string& host, int port,
                             const std::string& name,
                             const std::string& import_spec_text,
                             const std::string& arch_key)
    : channel_(bus::TcpBus::instance().channel(host, port)),
      host_(host),
      port_(port),
      name_(name),
      arch_(&arch::arch_catalog(arch_key)) {
  uts::SpecFile spec = uts::parse_spec(import_spec_text);
  decl_ = spec.find(name);
  import_text_ = uts::decl_to_string(decl_);
  request_plan_ = uts::compile_plan(decl_.signature, uts::Direction::kRequest);
  reply_plan_ = uts::compile_plan(decl_.signature, uts::Direction::kReply);
  span_label_ = "tcp call " + name_;
  calls_by_name_ = &obs::Registry::global().counter("rpc.client.calls." + name_);
}

std::shared_ptr<bus::BusChannel>& TcpRemoteProc::live_channel() {
  if (!channel_ || !channel_->alive()) {
    channel_ = bus::TcpBus::instance().channel(host_, port_);
  }
  return channel_;
}

CallResult TcpRemoteProc::call(uts::ValueList args, const CallOptions& opts) {
  using clock_type = std::chrono::steady_clock;
  CallResult result;
  const uts::Signature& sig = decl_.signature;
  if (args.size() != sig.size()) {
    result.status = util::Status(util::ErrorCode::kTypeMismatch,
                                 "tcp call: argument count mismatch");
    return result;
  }
  obs::Span span("rpc.client", span_label_);
  const auto start = clock_type::now();
  const bool deadlined = opts.deadline_us > 0;
  const auto deadline =
      deadlined ? start + std::chrono::microseconds(opts.deadline_us)
                : clock_type::time_point::max();
  const int max_attempts = std::max(opts.max_attempts, 1);

  for (int n = 1; n <= max_attempts; ++n) {
    CallAttempt attempt;
    attempt.number = n;
    attempt.address = host_ + ":" + std::to_string(port_);
    if (clock_type::now() >= deadline) {
      result.status = util::Status(
          util::ErrorCode::kDeadlineExceeded,
          "tcp call to '" + name_ + "': deadline exhausted after " +
              std::to_string(result.attempts.size()) + " attempt(s)");
      break;
    }
    if (n > 1 && opts.backoff.initial_us > 0) {
      auto wait = std::chrono::microseconds(std::min<util::SimTime>(
          static_cast<util::SimTime>(
              static_cast<double>(opts.backoff.initial_us) *
              std::pow(std::max(opts.backoff.multiplier, 1.0), n - 2)),
          opts.backoff.max_us));
      attempt.backoff_us = wait.count();
      std::this_thread::sleep_for(wait);
    }
    bool retryable = false;
    try {
      std::shared_ptr<bus::BusChannel> ch = live_channel();
      obs::Span attempt_span("rpc.client", "attempt " + std::to_string(n));
      const std::uint64_t seq = ch->next_seq();
      std::size_t request_blob_bytes = 0;
      std::future<Message> fut = ch->send(seq, [&](util::ByteWriter& out) {
        const std::size_t before = out.size();
        bus::append_call_frame(out, seq, name_, import_text_, *request_plan_,
                               *arch_, args, attempt_span.context(),
                               ch->max_frame_bytes());
        request_blob_bytes =
            out.size() - before -
            call_frame_overhead(name_, import_text_,
                                attempt_span.context().active());
      });
      if (deadlined) {
        const auto left = deadline - clock_type::now();
        if (left <= clock_type::duration::zero() ||
            fut.wait_for(left) != std::future_status::ready) {
          // Abandon only this seq — the connection stays up and keeps
          // serving every other in-flight call; the late reply is
          // discarded by seq when it lands.
          ch->abandon(seq);
          throw util::DeadlineError(
              "no tcp reply within " +
              std::to_string(opts.deadline_us / 1000) + "ms");
        }
      }
      Message reply = fut.get();
      if (reply.is_error()) {
        attempt.status = util::Status(static_cast<util::ErrorCode>(reply.n),
                                      reply.a);
        result.attempts.push_back(attempt);
        result.status = attempt.status;
        break;  // the peer executed and refused: terminal
      }
      if (obs::enabled()) {
        TcpMetrics& m = tcp_metrics();
        m.client_calls.add();
        calls_by_name_->add();
        m.client_bytes_marshaled.add(request_blob_bytes + reply.blob.size());
        m.client_latency_us.record(span.elapsed_us());
      }
      uts::ValueList results = reply_plan_->unmarshal(*arch_, reply.blob);
      for (std::size_t i = 0; i < sig.size(); ++i) {
        if (!uts::param_travels(sig[i].mode, uts::Direction::kReply)) {
          results[i] = std::move(args[i]);
        }
      }
      attempt.status = util::Status::ok();
      result.attempts.push_back(attempt);
      result.status = util::Status::ok();
      result.values = std::move(results);
      return result;
    } catch (const util::DeadlineError& e) {
      attempt.status = util::Status::from(e);
      retryable = opts.idempotent;  // the connection is kept either way
    } catch (const CallError& e) {
      attempt.status = util::Status::from(e);
      channel_.reset();  // dead connection: next attempt re-pools
      retryable = true;
    } catch (const util::Error& e) {
      attempt.status = util::Status::from(e);
    }
    result.attempts.push_back(attempt);
    result.status = attempt.status;
    if (!retryable) break;
  }
  if (result.status.is_ok()) {
    result.status = util::Status(
        util::ErrorCode::kDeadlineExceeded,
        "tcp call to '" + name_ + "': no attempt possible within deadline");
  }
  return result;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
uts::ValueList TcpRemoteProc::call(uts::ValueList args) {
  CallOptions opts = CallOptions::legacy();
  opts.max_attempts = 1;  // the original stub made exactly one attempt
  CallResult result = call(std::move(args), opts);
  return std::move(result.values_or_raise());
}
#pragma GCC diagnostic pop

PendingTcpCall TcpRemoteProc::call_async(uts::ValueList args,
                                         util::SimTime deadline_us) {
  PendingTcpCall pending;
  pending.owner_ = this;
  pending.deadline_us_ = deadline_us;
  pending.issued_ = std::chrono::steady_clock::now();
  pending.args_ = std::move(args);
  if (pending.args_.size() != decl_.signature.size()) {
    pending.done_ = true;
    pending.result_.status = util::Status(
        util::ErrorCode::kTypeMismatch, "tcp call: argument count mismatch");
    return pending;
  }
  try {
    std::shared_ptr<bus::BusChannel>& ch = live_channel();
    pending.channel_ = ch;
    pending.seq_ = ch->next_seq();
    const obs::TraceContext trace = obs::current_trace();
    pending.reply_ = ch->send(pending.seq_, [&](util::ByteWriter& out) {
      bus::append_call_frame(out, pending.seq_, name_, import_text_,
                             *request_plan_, *arch_, pending.args_, trace,
                             ch->max_frame_bytes());
    });
  } catch (const util::Error& e) {
    pending.done_ = true;
    pending.result_.status = util::Status::from(e);
  }
  return pending;
}

void TcpRemoteProc::finish(PendingTcpCall& pending) {
  CallAttempt attempt;
  attempt.number = 1;
  attempt.address = host_ + ":" + std::to_string(port_);
  pending.done_ = true;
  try {
    if (pending.deadline_us_ > 0) {
      const auto deadline =
          pending.issued_ + std::chrono::microseconds(pending.deadline_us_);
      const auto left = deadline - std::chrono::steady_clock::now();
      if (left <= std::chrono::steady_clock::duration::zero() ||
          pending.reply_.wait_for(left) != std::future_status::ready) {
        pending.channel_->abandon(pending.seq_);
        throw util::DeadlineError(
            "no tcp reply within " +
            std::to_string(pending.deadline_us_ / 1000) + "ms");
      }
    }
    Message reply = pending.reply_.get();
    if (reply.is_error()) {
      attempt.status =
          util::Status(static_cast<util::ErrorCode>(reply.n), reply.a);
      pending.result_.attempts.push_back(attempt);
      pending.result_.status = attempt.status;
      return;
    }
    if (obs::enabled()) {
      TcpMetrics& m = tcp_metrics();
      m.client_calls.add();
      calls_by_name_->add();
      m.client_bytes_marshaled.add(reply.blob.size());
      m.client_latency_us.record(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - pending.issued_)
              .count());
    }
    const uts::Signature& sig = decl_.signature;
    uts::ValueList results = reply_plan_->unmarshal(*arch_, reply.blob);
    for (std::size_t i = 0; i < sig.size(); ++i) {
      if (!uts::param_travels(sig[i].mode, uts::Direction::kReply)) {
        results[i] = std::move(pending.args_[i]);
      }
    }
    attempt.status = util::Status::ok();
    pending.result_.attempts.push_back(attempt);
    pending.result_.status = util::Status::ok();
    pending.result_.values = std::move(results);
  } catch (const util::Error& e) {
    attempt.status = util::Status::from(e);
    pending.result_.attempts.push_back(attempt);
    pending.result_.status = attempt.status;
  }
}

double TcpRemoteProc::ping_us() {
  std::shared_ptr<bus::BusChannel> ch = live_channel();
  const auto before = std::chrono::steady_clock::now();
  const std::uint64_t seq = ch->next_seq();
  Message msg;
  msg.kind = MessageKind::kPing;
  msg.seq = seq;
  std::future<Message> fut = ch->send(seq, [&](util::ByteWriter& out) {
    bus::append_frame(out, msg, ch->max_frame_bytes());
  });
  Message reply = fut.get();  // matched by seq; throws if the peer died
  if (reply.kind != MessageKind::kPong) {
    throw CallError("unexpected reply to ping");
  }
  const double rtt_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - before)
          .count();
  if (obs::enabled()) tcp_metrics().rtt_us.record(rtt_us);
  return rtt_us;
}

}  // namespace npss::rpc
