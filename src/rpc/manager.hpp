// The Schooner Manager.
//
// One Manager serves a whole (multi-line) Schooner program: it starts and
// stops remote processes through the per-machine Servers, keeps the
// exported-procedure mapping tables, and performs runtime type checking of
// imports against exports (§3.1). This is the *extended* Manager of §4.2:
//
//  * it is persistent — explicitly started and stopped, surviving any
//    number of simulation runs;
//  * it manages multiple lines, each a sequential thread of control with
//    its own procedure name database, so duplicate procedure names may
//    exist across lines (the F100 network needs this, Figure 2);
//  * shutdown is line-scoped: a quit (or error) tears down only the
//    procedures of the affected line;
//  * Fortran name-case synonyms (§4.1): each binding is reachable through
//    its exact, lower-, and upper-case names;
//  * procedures can be moved between machines during execution, with an
//    optional state transfer, and clients recover through the
//    stale-cache/lookup path;
//  * shared procedures live in a separate database consulted after the
//    caller's line.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rpc/io.hpp"
#include "rpc/message.hpp"
#include "uts/spec.hpp"

namespace npss::rpc {

/// Serialize a signature as a parseable declaration ("export name prog(...)").
std::string signature_text(uts::DeclKind kind, const std::string& name,
                           const uts::Signature& sig);

/// Parse the single declaration in `text`.
uts::ProcDecl parse_signature_text(const std::string& text);

/// One exported procedure as the Manager tracks it.
struct Binding {
  std::string canonical_name;   ///< name as registered by the exporter
  std::string signature_text;   ///< export declaration text
  uts::Signature signature;
  std::string address;          ///< current process address
  std::string machine;
  std::string path;
  LineId line = kNoLine;        ///< kNoLine for shared procedures
  bool shared = false;
};

struct ManagerConfig {
  /// machine name -> Server address (SchoonerSystem fills this in).
  std::map<std::string, std::string> servers;

  /// --- Admission control (multi-tenant session layer, DESIGN.md §15) --
  /// Most lines the Manager will carry at once; a kRegisterLine beyond it
  /// is answered with a kLineRejected error reply and the client backs
  /// off (Session::open_line). 0 = unlimited (the historical behavior).
  int max_lines = 0;
  /// Per-line outstanding-call quota granted at admission (kLineAck.n).
  /// Enforced client-side by the line's LineBudget — the Manager states
  /// the policy once instead of refereeing every call. 0 = unlimited.
  int line_call_quota = 0;

  /// Strict static-check mode: when set, every export a process registers
  /// is cross-checked against `static_manifest` (the "exports" table of a
  /// `uts_check --json` run over the configuration's spec files). An export
  /// that is absent from the manifest, or whose signature differs from the
  /// statically checked one, is rejected at registration — before any call
  /// is issued. Outcomes are recorded as the
  /// rpc.manager.static_check_{pass,fail} counters.
  bool strict = false;
  /// canonical procedure name -> export declaration text
  /// (check::load_manifest_json output).
  std::map<std::string, std::string> static_manifest;
  /// Per-spec-file content hashes from the manifest's "files" section.
  /// When non-empty, a strict-mode exporter whose spec hash (kExport
  /// msg.c) is not listed triggers a *stale manifest* warning — the spec
  /// text changed since uts_check ran — which is distinct from an
  /// incompatible drift: stale-but-compatible exports are admitted with a
  /// warning, incompatible ones are rejected.
  std::vector<std::string> manifest_spec_hashes;

  /// --- Replicated control plane (src/meta/) ---------------------------
  /// When true the process runs as one replica of a Manager group: it
  /// waits for the kMetaConfig handshake naming every replica, then enters
  /// the leader/follower protocol. False = the classic standalone Manager.
  bool replicated = false;
  /// Leader heartbeat period (host ms). Follower election timeouts are
  /// derived from election_base_ms via meta::election_timeout_ms.
  int heartbeat_ms = 15;
  int election_base_ms = 60;
  /// Seed for the deterministic election rank/timeout schedule; the fault
  /// suite's same-seed-same-recovery contract extends to elections.
  std::uint64_t election_seed = 1;
  /// Compact the changelog into a snapshot every N appends (0 = never).
  std::uint64_t snapshot_interval = 32;
};

/// Counters the benches read after a run (exposed through ManagerHandle).
struct ManagerStats {
  std::uint64_t lines_created = 0;
  /// kRegisterLine refusals from the max_lines admission gate.
  std::uint64_t lines_rejected = 0;
  std::uint64_t processes_started = 0;
  std::uint64_t lookups = 0;
  std::uint64_t type_check_failures = 0;
  std::uint64_t moves = 0;
  std::uint64_t lines_shut_down = 0;
  std::uint64_t static_check_failures = 0;
  /// Strict-mode exports admitted although their spec hash (or signature,
  /// compatibly) drifted from the manifest: the manifest is stale.
  std::uint64_t stale_manifest_warnings = 0;
  /// Rebinds/migrations refused because the offered export surface is
  /// incompatible with what the client (or the manifest) compiled against.
  std::uint64_t compat_rejects = 0;
  /// Replicated control plane (counted on the replica they happen on;
  /// SchoonerSystem::manager_stats sums across the group).
  std::uint64_t leader_elections = 0;   ///< times this replica won a term
  std::uint64_t log_appends = 0;        ///< changelog records appended here
  std::uint64_t snapshot_installs = 0;  ///< snapshots captured or received
};

/// The live counters a running replica increments. Atomic field by
/// field: each counter is bumped on its replica's own thread while
/// SchoonerSystem::stats() sums across the group from the test/bench
/// thread, so plain uint64 fields would be a data race. Relaxed order is
/// enough — each counter is an independent tally, not a synchronization
/// point.
struct ManagerCounters {
  std::atomic<std::uint64_t> lines_created{0};
  std::atomic<std::uint64_t> lines_rejected{0};
  std::atomic<std::uint64_t> processes_started{0};
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> type_check_failures{0};
  std::atomic<std::uint64_t> moves{0};
  std::atomic<std::uint64_t> lines_shut_down{0};
  std::atomic<std::uint64_t> static_check_failures{0};
  std::atomic<std::uint64_t> stale_manifest_warnings{0};
  std::atomic<std::uint64_t> compat_rejects{0};
  std::atomic<std::uint64_t> leader_elections{0};
  std::atomic<std::uint64_t> log_appends{0};
  std::atomic<std::uint64_t> snapshot_installs{0};

  /// The copyable view callers aggregate and compare.
  ManagerStats snapshot() const {
    ManagerStats s;
    s.lines_created = lines_created.load(std::memory_order_relaxed);
    s.lines_rejected = lines_rejected.load(std::memory_order_relaxed);
    s.processes_started = processes_started.load(std::memory_order_relaxed);
    s.lookups = lookups.load(std::memory_order_relaxed);
    s.type_check_failures =
        type_check_failures.load(std::memory_order_relaxed);
    s.moves = moves.load(std::memory_order_relaxed);
    s.lines_shut_down = lines_shut_down.load(std::memory_order_relaxed);
    s.static_check_failures =
        static_check_failures.load(std::memory_order_relaxed);
    s.stale_manifest_warnings =
        stale_manifest_warnings.load(std::memory_order_relaxed);
    s.compat_rejects = compat_rejects.load(std::memory_order_relaxed);
    s.leader_elections = leader_elections.load(std::memory_order_relaxed);
    s.log_appends = log_appends.load(std::memory_order_relaxed);
    s.snapshot_installs = snapshot_installs.load(std::memory_order_relaxed);
    return s;
  }
};

/// The Manager's process body; spawned by SchoonerSystem.
void manager_main(sim::ProcessContext& ctx, const ManagerConfig& config,
                  std::shared_ptr<ManagerCounters> stats);

}  // namespace npss::rpc
