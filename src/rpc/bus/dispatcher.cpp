#include "rpc/bus/dispatcher.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace npss::rpc::bus {

BusMetrics& bus_metrics() {
  static BusMetrics m = [] {
    obs::Registry& reg = obs::Registry::global();
    return BusMetrics{reg.counter("rpc.bus.bytes_sent"),
                      reg.counter("rpc.bus.frames_coalesced"),
                      reg.gauge("rpc.bus.inflight_calls"),
                      reg.counter("rpc.bus.partial_reads"),
                      reg.counter("rpc.bus.abandoned_replies")};
  }();
  return m;
}

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Per-frame transport counters shared with the legacy blocking path
// (test_obs and the run report read these names).
struct WireMetrics {
  obs::Counter& frames_sent;
  obs::Counter& bytes_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_received;
};

WireMetrics& wire_metrics() {
  static WireMetrics m = [] {
    obs::Registry& reg = obs::Registry::global();
    return WireMetrics{reg.counter("rpc.transport.frames_sent"),
                       reg.counter("rpc.transport.bytes_sent"),
                       reg.counter("rpc.transport.frames_received"),
                       reg.counter("rpc.transport.bytes_received")};
  }();
  return m;
}

}  // namespace

// --- BusConnection ----------------------------------------------------------

BusConnection::BusConnection(BusDispatcher* dispatcher, int fd,
                             FrameFn on_frame, CloseFn on_close)
    : dispatcher_(dispatcher),
      fd_(fd),
      decoder_(dispatcher->options().max_frame_bytes),
      on_frame_(std::move(on_frame)),
      on_close_(std::move(on_close)) {}

BusConnection::~BusConnection() = default;

bool BusConnection::send_frame(
    const std::function<void(util::ByteWriter&)>& framer) {
  {
    util::MutexLock lock(out_mu_);
    if (!alive_.load(std::memory_order_relaxed)) return false;
    const std::size_t mark = pending_.size();
    try {
      framer(pending_);
    } catch (...) {
      pending_.truncate(mark);
      throw;
    }
    ++pending_frames_;
    queued_bytes_.fetch_add(pending_.size() - mark,
                            std::memory_order_relaxed);
    if (obs::enabled()) {
      WireMetrics& m = wire_metrics();
      m.frames_sent.add();
      m.bytes_sent.add(pending_.size() - mark - 4);  // sans length prefix
    }
  }
  dispatcher_->wake();
  return true;
}

bool BusConnection::send_message(const Message& msg) {
  const std::size_t cap = dispatcher_->options().max_frame_bytes;
  return send_frame(
      [&](util::ByteWriter& out) { append_frame(out, msg, cap); });
}

void BusConnection::shutdown() {
  auto self = shared_from_this();
  BusDispatcher* d = dispatcher_;
  d->post([d, self] {
    // close_conn is loop-thread-only; it no-ops when already closed.
    d->stop_requested_close(self);
  });
  d->wake();
}

// --- BusDispatcher ----------------------------------------------------------

BusDispatcher::BusDispatcher(std::string name, BusOptions opts)
    : opts_(opts) {
  if (::pipe(wake_fds_) != 0) {
    throw util::CallError("bus dispatcher: pipe() failed");
  }
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
  read_chunk_.resize(opts_.read_chunk_bytes);
  thread_ = std::jthread([this, n = std::move(name)] { loop(n); });
}

BusDispatcher::~BusDispatcher() {
  stop();
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

std::shared_ptr<BusConnection> BusDispatcher::adopt(
    int fd, BusConnection::FrameFn on_frame,
    BusConnection::CloseFn on_close) {
  set_nonblocking(fd);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  auto conn = std::make_shared<BusConnection>(this, fd, std::move(on_frame),
                                              std::move(on_close));
  post([this, conn] {
    if (stopping_) {
      close_conn(conn, util::Status(util::ErrorCode::kShutdown,
                                    "bus dispatcher stopped"));
      return;
    }
    conns_.push_back(conn);
  });
  wake();
  return conn;
}

void BusDispatcher::listen(int listen_fd,
                           std::function<void(int)> on_accept) {
  set_nonblocking(listen_fd);
  post([this, listen_fd, cb = std::move(on_accept)]() mutable {
    listeners_.push_back(Listener{listen_fd, std::move(cb)});
  });
  wake();
}

void BusDispatcher::post(std::function<void()> op) {
  util::MutexLock lock(ctl_mu_);
  ctl_.push_back(std::move(op));
}

void BusDispatcher::wake() {
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  const std::uint8_t b = 1;
  // Nonblocking: a full pipe already guarantees a pending wake.
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &b, 1);
}

void BusDispatcher::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  // The loop is dead; drain its state on this thread.
  for (Listener& l : listeners_) ::close(l.fd);
  listeners_.clear();
  std::vector<std::shared_ptr<BusConnection>> conns;
  conns.swap(conns_);
  for (const auto& c : conns) {
    close_conn(c, util::Status(util::ErrorCode::kShutdown,
                               "bus dispatcher stopped"));
  }
  std::vector<std::function<void()>> ops;
  {
    util::MutexLock lock(ctl_mu_);
    ops.swap(ctl_);
  }
  for (auto& op : ops) op();
}

void BusDispatcher::stop_requested_close(
    const std::shared_ptr<BusConnection>& c) {
  close_conn(c, util::Status(util::ErrorCode::kShutdown,
                             "connection shut down"));
}

void BusDispatcher::close_conn(const std::shared_ptr<BusConnection>& c,
                               const util::Status& why) {
  bool was_alive;
  {
    util::MutexLock lock(c->out_mu_);
    was_alive = c->alive_.exchange(false, std::memory_order_acq_rel);
  }
  if (!was_alive) return;
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i] == c) {
      conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  ::close(c->fd_);
  c->fd_ = -1;
  if (c->on_close_) c->on_close_(c, why);
}

void BusDispatcher::pull_pending(BusConnection& c) {
  util::MutexLock lock(c.out_mu_);
  if (c.pending_.size() == 0) return;
  if (c.pending_frames_ > 1 && obs::enabled()) {
    bus_metrics().frames_coalesced.add(c.pending_frames_ - 1);
  }
  c.pending_frames_ = 0;
  c.segs_.push_back(std::move(c.pending_).take());
  c.pending_ = util::ByteWriter();
}

void BusDispatcher::flush(const std::shared_ptr<BusConnection>& c) {
  pull_pending(*c);
  while (!c->segs_.empty()) {
    // Scatter-gather: one writev covers the partially written front
    // segment plus whatever coalesced behind it.
    iovec iov[8];
    int cnt = 0;
    std::size_t off = c->seg_off_;
    for (const util::Bytes& seg : c->segs_) {
      iov[cnt].iov_base = const_cast<std::uint8_t*>(seg.data()) + off;
      iov[cnt].iov_len = seg.size() - off;
      off = 0;
      if (++cnt == 8) break;
    }
    const ssize_t n = ::writev(c->fd_, iov, cnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // poll POLLOUT
      close_conn(c, util::Status(util::ErrorCode::kCallFailure,
                                 std::string("tcp write failed: ") +
                                     std::strerror(errno)));
      return;
    }
    if (obs::enabled()) {
      bus_metrics().bytes_sent.add(static_cast<std::uint64_t>(n));
    }
    c->queued_bytes_.fetch_sub(static_cast<std::size_t>(n),
                               std::memory_order_relaxed);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      const std::size_t avail = c->segs_.front().size() - c->seg_off_;
      if (left >= avail) {
        left -= avail;
        c->segs_.pop_front();
        c->seg_off_ = 0;
      } else {
        c->seg_off_ += left;
        left = 0;
      }
    }
    if (c->segs_.empty()) pull_pending(*c);
  }
}

void BusDispatcher::read_ready(const std::shared_ptr<BusConnection>& c) {
  // Bounded rounds so one firehose connection cannot starve the rest;
  // poll() re-reports anything left unread.
  for (int round = 0; round < 16; ++round) {
    const ssize_t n =
        ::recv(c->fd_, read_chunk_.data(), read_chunk_.size(), 0);
    if (n == 0) {
      close_conn(c, util::Status(util::ErrorCode::kCallFailure,
                                 "connection closed by peer"));
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(c, util::Status(util::ErrorCode::kCallFailure,
                                 std::string("tcp read failed: ") +
                                     std::strerror(errno)));
      return;
    }
    try {
      c->decoder_.feed(
          std::span(read_chunk_.data(), static_cast<std::size_t>(n)));
      while (auto frame = c->decoder_.next()) {
        Message msg = decode_message(*frame);
        if (obs::enabled()) {
          WireMetrics& m = wire_metrics();
          m.frames_received.add();
          m.bytes_received.add(frame->size());
        }
        if (c->on_frame_) c->on_frame_(c, std::move(msg));
        if (!c->alive()) return;  // a handler closed us
      }
    } catch (const util::Error& e) {
      // Oversized or malformed frame: the stream cannot be re-synced.
      close_conn(c, util::Status(util::ErrorCode::kProtocolError, e.what()));
      return;
    }
    if (static_cast<std::size_t>(n) < read_chunk_.size()) break;
  }
  if (c->decoder_.partial() && obs::enabled()) {
    bus_metrics().partial_reads.add();
  }
}

void BusDispatcher::loop(std::string name) {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<BusConnection>> round;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Control ops first (registrations, requested closes).
    std::vector<std::function<void()>> ops;
    {
      util::MutexLock lock(ctl_mu_);
      ops.swap(ctl_);
    }
    for (auto& op : ops) op();

    // Opportunistic flush: frames appended since the last pass go out
    // now, without waiting for a poll cycle.
    round.assign(conns_.begin(), conns_.end());
    for (const auto& c : round) {
      if (c->alive() && c->queued_bytes() > 0) flush(c);
    }

    pfds.clear();
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    for (const Listener& l : listeners_) {
      pfds.push_back(pollfd{l.fd, POLLIN, 0});
    }
    const std::size_t conn_base = pfds.size();
    for (const auto& c : conns_) {
      short events = 0;
      // Backpressure: stop reading a connection whose replies the peer
      // is not draining.
      if (c->queued_bytes() < opts_.backpressure_bytes) events |= POLLIN;
      if (!c->segs_.empty() || c->queued_bytes() > 0) events |= POLLOUT;
      pfds.push_back(pollfd{c->fd_, events, 0});
    }
    round.assign(conns_.begin(), conns_.end());

    int rc = ::poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      NPSS_LOG_WARN("bus", name, ": poll failed: ", std::strerror(errno));
      break;
    }
    if (pfds[0].revents & POLLIN) {
      std::uint8_t buf[64];
      while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
      }
      wake_pending_.store(false, std::memory_order_release);
    }
    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      if (!(pfds[1 + i].revents & POLLIN)) continue;
      for (;;) {
        const int fd = ::accept(listeners_[i].fd, nullptr, nullptr);
        if (fd < 0) break;
        listeners_[i].on_accept(fd);
      }
    }
    for (std::size_t i = 0; i < round.size(); ++i) {
      const auto& c = round[i];
      if (!c->alive()) continue;
      const short re = pfds[conn_base + i].revents;
      if (re & (POLLIN | POLLHUP | POLLERR)) read_ready(c);
      if (c->alive() && (re & POLLOUT)) flush(c);
    }
  }
}

}  // namespace npss::rpc::bus
