#include "rpc/bus/channel.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.hpp"

namespace npss::rpc::bus {

namespace {

// The gauge is last-write-wins; the authoritative count lives here.
std::atomic<long> g_inflight{0};

void inflight_delta(long d) {
  const long now = g_inflight.fetch_add(d, std::memory_order_relaxed) + d;
  if (obs::enabled()) {
    bus_metrics().inflight_calls.set(static_cast<double>(now));
  }
}

}  // namespace

int tcp_connect_fd(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw util::CallError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw util::CallError("bad address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw util::CallError("connect to " + host + ":" + std::to_string(port) +
                          " failed: " + std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

// --- BusChannel -------------------------------------------------------------

std::shared_ptr<BusChannel> BusChannel::open(BusDispatcher& d,
                                             const std::string& host,
                                             int port) {
  const int fd = tcp_connect_fd(host, port);
  auto ch = std::shared_ptr<BusChannel>(new BusChannel());
  ch->max_frame_bytes_ = d.options().max_frame_bytes;
  std::weak_ptr<BusChannel> weak = ch;
  ch->conn_ = d.adopt(
      fd,
      [weak](const std::shared_ptr<BusConnection>&, Message&& msg) {
        if (auto self = weak.lock()) self->on_frame(std::move(msg));
      },
      [weak](const std::shared_ptr<BusConnection>&, const util::Status& why) {
        if (auto self = weak.lock()) self->on_close(why);
      });
  return ch;
}

BusChannel::~BusChannel() {
  if (conn_) conn_->shutdown();
}

std::future<Message> BusChannel::send(
    std::uint64_t seq, const std::function<void(util::ByteWriter&)>& framer) {
  std::future<Message> fut;
  {
    util::MutexLock lock(mu_);
    if (closed_) {
      throw util::CallError("bus channel closed: " + close_status_.message());
    }
    // Register before the frame can hit the wire: the reply may race in
    // on the loop thread before send_frame even returns.
    fut = waiting_[seq].get_future();
  }
  inflight_delta(+1);
  bool queued = false;
  try {
    queued = conn_->send_frame(framer);
  } catch (...) {
    abandon(seq);
    throw;
  }
  if (!queued) {
    // The connection died between the closed_ check and the send; the
    // on_close sweep may or may not have seen our waiter. The status is
    // re-read under the lock — on_close may still be mid-write on the
    // loop thread at this point.
    if (abandon(seq)) {
      throw util::CallError("bus channel closed: " + close_status().message());
    }
  }
  return fut;
}

bool BusChannel::abandon(std::uint64_t seq) {
  util::MutexLock lock(mu_);
  auto it = waiting_.find(seq);
  if (it == waiting_.end()) return false;
  waiting_.erase(it);
  inflight_delta(-1);
  return true;
}

void BusChannel::on_frame(Message&& msg) {
  std::promise<Message> waiter;
  {
    util::MutexLock lock(mu_);
    auto it = waiting_.find(msg.seq);
    if (it == waiting_.end()) {
      // The caller abandoned this seq (deadline) — the late reply is
      // dropped here instead of poisoning a future call.
      if (obs::enabled()) bus_metrics().abandoned_replies.add();
      return;
    }
    waiter = std::move(it->second);
    waiting_.erase(it);
  }
  inflight_delta(-1);
  waiter.set_value(std::move(msg));
}

void BusChannel::on_close(const util::Status& why) {
  std::map<std::uint64_t, std::promise<Message>> orphans;
  {
    util::MutexLock lock(mu_);
    if (closed_) return;
    closed_ = true;
    close_status_ = why;
    orphans.swap(waiting_);
  }
  if (!orphans.empty()) inflight_delta(-static_cast<long>(orphans.size()));
  for (auto& [seq, waiter] : orphans) {
    (void)seq;
    waiter.set_exception(std::make_exception_ptr(
        util::CallError("connection lost: " + why.message())));
  }
}

// --- TcpBus -----------------------------------------------------------------

TcpBus& TcpBus::instance() {
  static TcpBus bus;
  return bus;
}

std::shared_ptr<BusChannel> TcpBus::channel(const std::string& host,
                                            int port) {
  const std::string key = host + ":" + std::to_string(port);
  util::MutexLock lock(mu_);
  auto it = channels_.find(key);
  if (it != channels_.end() && it->second->alive()) return it->second;
  auto ch = BusChannel::open(dispatcher_, host, port);
  channels_[key] = ch;
  return ch;
}

}  // namespace npss::rpc::bus
