// The bus event loop: one thread, one poll() set, every connection
// nonblocking. Modeled on the classic tcp_dispatcher/tcp_connection
// split of high-throughput RPC buses: the dispatcher owns the sockets
// and moves bytes; connection users (client channels, the procedure
// host's workers) only append frames and receive decoded Messages.
//
// Threading contract:
//   * on_frame / on_close / on_accept callbacks run on the loop thread.
//     They must not block; hand heavy work to a worker pool.
//   * BusConnection::send_frame / send_message / shutdown are safe from
//     any thread. Frames appended while the loop is mid-flush coalesce
//     into the next writev.
//   * After on_close (or stop()), a connection never fires callbacks
//     again; late send_frame calls return false.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "rpc/bus/bus.hpp"
#include "rpc/bus/frame.hpp"
#include "rpc/message.hpp"
#include "util/bytes.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace npss::rpc::bus {

class BusDispatcher;

/// One nonblocking socket registered with a dispatcher. Outgoing frames
/// accumulate in a pending buffer (coalescing) that the loop drains with
/// scatter-gather writev; incoming bytes run through a FrameDecoder.
class BusConnection : public std::enable_shared_from_this<BusConnection> {
 public:
  using FrameFn =
      std::function<void(const std::shared_ptr<BusConnection>&, Message&&)>;
  using CloseFn = std::function<void(const std::shared_ptr<BusConnection>&,
                                     const util::Status&)>;

  BusConnection(BusDispatcher* dispatcher, int fd, FrameFn on_frame,
                CloseFn on_close);
  ~BusConnection();
  BusConnection(const BusConnection&) = delete;
  BusConnection& operator=(const BusConnection&) = delete;

  /// Append one complete frame via `framer` (which must write exactly
  /// one length-prefixed frame, e.g. through append_call_frame) and
  /// schedule a flush. Thread-safe. Returns false when the connection
  /// is closed — the frame is not queued. If `framer` throws, the
  /// buffer rolls back to the frame boundary and the exception
  /// propagates (a marshal error must not corrupt the stream).
  bool send_frame(const std::function<void(util::ByteWriter&)>& framer);

  /// Convenience: frame and queue an encoded Message.
  bool send_message(const Message& msg);

  /// Request an asynchronous close; on_close fires once on the loop
  /// thread with a kShutdown status.
  void shutdown();

  bool alive() const { return alive_.load(std::memory_order_acquire); }
  int fd() const { return fd_; }
  /// Output bytes queued but not yet written (backpressure signal).
  std::size_t queued_bytes() const {
    return queued_bytes_.load(std::memory_order_relaxed);
  }

 private:
  friend class BusDispatcher;

  BusDispatcher* dispatcher_;
  int fd_;
  std::atomic<bool> alive_{true};
  std::atomic<std::size_t> queued_bytes_{0};

  // Writer side: any thread appends under out_mu_; the loop moves the
  // pending buffer into its private segment queue.
  util::Mutex out_mu_{"bus.BusConnection.out"};
  util::ByteWriter pending_ SCHOONER_GUARDED_BY(out_mu_);
  std::size_t pending_frames_ SCHOONER_GUARDED_BY(out_mu_) = 0;

  // Loop-thread-only state: touched exclusively by the dispatcher's
  // loop thread (flush / read_ready / close_conn), so it needs no lock.
  // The annotations can't express thread confinement; the dispatcher's
  // loop() is the only code path that reaches these.
  std::deque<util::Bytes> segs_;  ///< buffers awaiting write
  std::size_t seg_off_ = 0;       ///< consumed prefix of segs_.front()
  FrameDecoder decoder_;
  FrameFn on_frame_;
  CloseFn on_close_;
};

/// The event loop. Owns a wake pipe, registered connections, and any
/// listening sockets; runs until stop().
class BusDispatcher {
 public:
  explicit BusDispatcher(std::string name, BusOptions opts = {});
  ~BusDispatcher();
  BusDispatcher(const BusDispatcher&) = delete;
  BusDispatcher& operator=(const BusDispatcher&) = delete;

  /// Adopt a connected socket: sets O_NONBLOCK + TCP_NODELAY and
  /// registers it with the loop. Callbacks fire on the loop thread.
  std::shared_ptr<BusConnection> adopt(int fd, BusConnection::FrameFn on_frame,
                                       BusConnection::CloseFn on_close);

  /// Register a listening socket; the loop accepts and hands each new
  /// fd to `on_accept` (loop thread). The dispatcher owns `listen_fd`.
  void listen(int listen_fd, std::function<void(int)> on_accept);

  /// Run `op` on the loop thread (connection registration, closes).
  void post(std::function<void()> op);

  /// Nudge the loop out of poll() (pending output, new control ops).
  void wake();

  /// Stop the loop, close every connection (on_close fires with a
  /// kShutdown status) and all listeners. Idempotent.
  void stop();

  const BusOptions& options() const { return opts_; }

 private:
  friend class BusConnection;

  void loop(std::string name);
  void flush(const std::shared_ptr<BusConnection>& c);
  void pull_pending(BusConnection& c);
  void read_ready(const std::shared_ptr<BusConnection>& c);
  void close_conn(const std::shared_ptr<BusConnection>& c,
                  const util::Status& why);
  /// Loop-thread entry for an externally requested shutdown().
  void stop_requested_close(const std::shared_ptr<BusConnection>& c);

  BusOptions opts_;
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> wake_pending_{false};
  std::atomic<bool> stopping_{false};

  util::Mutex ctl_mu_{"bus.BusDispatcher.ctl"};
  std::vector<std::function<void()>> ctl_ SCHOONER_GUARDED_BY(ctl_mu_);

  // Loop-thread-only (same confinement contract as BusConnection's
  // decoder state: only loop() and its helpers touch these).
  std::vector<std::shared_ptr<BusConnection>> conns_;
  struct Listener {
    int fd;
    std::function<void(int)> on_accept;
  };
  std::vector<Listener> listeners_;
  util::Bytes read_chunk_;

  std::jthread thread_;
};

}  // namespace npss::rpc::bus
