// Client side of the bus: a BusChannel multiplexes many in-flight calls
// over one persistent BusConnection, matching replies to waiters by the
// frame's sequence number. A timed-out caller abandons its seq — the
// connection stays up and keeps serving every other in-flight call; the
// late reply, when it lands, is discarded by seq.
//
// TcpBus is the process-wide connection pool: one event-loop dispatcher
// plus one channel per host:port, shared by every TcpRemoteProc stub, so
// N stubs talking to one host pipeline over a single socket.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>

#include "rpc/bus/dispatcher.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace npss::rpc::bus {

class BusChannel : public std::enable_shared_from_this<BusChannel> {
 public:
  /// Blocking-connect to host:port and register the socket with `d`.
  /// Throws util::CallError when the peer is unreachable.
  static std::shared_ptr<BusChannel> open(BusDispatcher& d,
                                          const std::string& host, int port);

  ~BusChannel();
  BusChannel(const BusChannel&) = delete;
  BusChannel& operator=(const BusChannel&) = delete;

  /// A fresh sequence number, unique within this channel.
  std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Register a waiter for `seq`, then append the frame via `framer`
  /// (see BusConnection::send_frame). The future resolves with the
  /// matching reply, or with util::CallError when the connection dies
  /// first. Throws util::CallError if the channel is already closed and
  /// re-throws whatever `framer` throws (waiter unregistered again).
  std::future<Message> send(std::uint64_t seq,
                            const std::function<void(util::ByteWriter&)>& framer);

  /// Give up on `seq` (deadline expired): drop the waiter but keep the
  /// connection — pipelined neighbors are unaffected. Returns false when
  /// the reply already arrived (the future is ready after all).
  bool abandon(std::uint64_t seq);

  bool alive() const { return conn_ && conn_->alive(); }
  /// By value: the status is written by the loop thread's on_close while
  /// callers may be mid-send, so a reference would be a torn read.
  util::Status close_status() const {
    util::MutexLock lock(mu_);
    return close_status_;
  }
  const std::shared_ptr<BusConnection>& connection() const { return conn_; }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  BusChannel() = default;

  void on_frame(Message&& msg);
  void on_close(const util::Status& why);

  std::shared_ptr<BusConnection> conn_;
  std::size_t max_frame_bytes_ = 0;
  std::atomic<std::uint64_t> seq_{0};

  mutable util::Mutex mu_{"bus.BusChannel"};
  std::map<std::uint64_t, std::promise<Message>> waiting_
      SCHOONER_GUARDED_BY(mu_);
  bool closed_ SCHOONER_GUARDED_BY(mu_) = false;
  util::Status close_status_ SCHOONER_GUARDED_BY(mu_);
};

/// The process-wide client bus: one dispatcher thread, one shared channel
/// per host:port. channel() reconnects transparently when a pooled
/// channel has died.
class TcpBus {
 public:
  static TcpBus& instance();

  std::shared_ptr<BusChannel> channel(const std::string& host, int port);

  BusDispatcher& dispatcher() { return dispatcher_; }

 private:
  TcpBus() = default;

  // Declared before channels_: members destroy in reverse order, so the
  // pooled channels go first and the dispatcher (whose loop fires their
  // on_close callbacks) outlives them.
  BusDispatcher dispatcher_{"tcp-bus-client"};
  util::Mutex mu_{"bus.TcpBus.pool"};
  std::map<std::string, std::shared_ptr<BusChannel>> channels_
      SCHOONER_GUARDED_BY(mu_);
};

/// Blocking TCP connect (IPv4 dotted quad), TCP_NODELAY set. Throws
/// util::CallError on failure. Shared by the channel pool and the legacy
/// blocking TcpConnection.
int tcp_connect_fd(const std::string& host, int port);

}  // namespace npss::rpc::bus
