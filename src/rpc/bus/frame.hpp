// Wire framing for the bus: the same 4-byte big-endian length prefix +
// Schooner Message frame the blocking transport used, but produced and
// consumed incrementally.
//
// Producing: frames are appended *in place* to a connection's pending
// output buffer — append_call_frame/append_reply_frame write the message
// fields directly and marshal the UTS value batch through a compiled
// MarshalPlan straight into the same buffer, so a small call reaches the
// socket with zero intermediate copies (no Message::blob, no
// encode_message temporary, no prefix copy).
//
// Consuming: FrameDecoder buffers whatever recv() produced and yields
// complete frames — it tolerates partial reads (a frame split across
// arbitrarily many reads) and coalesced back-to-back frames in one read,
// and rejects oversized length prefixes before allocating.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "arch/arch.hpp"
#include "rpc/message.hpp"
#include "util/bytes.hpp"
#include "uts/marshal_plan.hpp"

namespace npss::rpc::bus {

/// Begin a length-prefixed frame: writes a 4-byte placeholder and
/// returns its position for end_frame().
std::size_t begin_frame(util::ByteWriter& out);

/// Patch the length prefix opened at `mark` to cover everything
/// appended since. Throws util::EncodingError if the body exceeds
/// `max_frame_bytes` (the peer would drop the connection anyway).
void end_frame(util::ByteWriter& out, std::size_t mark,
               std::size_t max_frame_bytes);

/// Append a complete frame for an arbitrary Message (control traffic:
/// ping/pong, errors — paths where zero-copy does not matter).
void append_frame(util::ByteWriter& out, const Message& msg,
                  std::size_t max_frame_bytes);

/// Append a kCall frame, marshaling `args` through `plan` (the compiled
/// request plan for the import signature) directly into `out`.
void append_call_frame(util::ByteWriter& out, std::uint64_t seq,
                       const std::string& name,
                       const std::string& import_text,
                       const uts::MarshalPlan& plan,
                       const arch::ArchDescriptor& arch,
                       const uts::ValueList& args,
                       const obs::TraceContext& trace,
                       std::size_t max_frame_bytes);

/// Append a kReply frame, marshaling `values` through `plan` (the
/// compiled reply plan) directly into `out`.
void append_reply_frame(util::ByteWriter& out, std::uint64_t seq,
                        const uts::MarshalPlan& plan,
                        const arch::ArchDescriptor& arch,
                        const uts::ValueList& values,
                        const obs::TraceContext& trace,
                        std::size_t max_frame_bytes);

/// Incremental decoder for the length-prefixed stream. feed() appends a
/// read chunk; next() yields each complete frame payload (prefix
/// stripped) in arrival order. The returned span points into the
/// decoder's buffer and is valid until the next feed() — decode the
/// Message before feeding again.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = 64u << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::span<const std::uint8_t> data);

  /// The next complete frame, or nullopt when more bytes are needed.
  /// Throws util::EncodingError when a length prefix exceeds the cap —
  /// the connection is unrecoverable at that point.
  std::optional<std::span<const std::uint8_t>> next();

  /// True when bytes of an incomplete frame are buffered (a partial
  /// read: the tail arrives with a later chunk).
  bool partial() const { return buf_.size() > pos_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  util::Bytes buf_;
  std::size_t pos_ = 0;
  std::size_t max_frame_bytes_;
};

}  // namespace npss::rpc::bus
