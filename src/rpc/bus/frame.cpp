#include "rpc/bus/frame.hpp"

namespace npss::rpc::bus {

using util::ByteWriter;

std::size_t begin_frame(ByteWriter& out) {
  const std::size_t mark = out.size();
  out.u32(0);  // placeholder, patched by end_frame
  return mark;
}

void end_frame(ByteWriter& out, std::size_t mark,
               std::size_t max_frame_bytes) {
  const std::size_t body = out.size() - mark - 4;
  if (body > max_frame_bytes) {
    throw util::EncodingError("frame length " + std::to_string(body) +
                              " exceeds the " +
                              std::to_string(max_frame_bytes) + " byte cap");
  }
  out.patch_u32(mark, static_cast<std::uint32_t>(body));
}

void append_frame(ByteWriter& out, const Message& msg,
                  std::size_t max_frame_bytes) {
  const std::size_t mark = begin_frame(out);
  encode_message_into(out, msg);
  end_frame(out, mark, max_frame_bytes);
}

namespace {

/// The shared shape of kCall/kReply frames: the fixed Message fields,
/// then the blob encoded in place through the compiled plan (a nested
/// length placeholder patched once the batch is written), then an empty
/// table and the optional trace extension. Byte-identical to
/// encode_message over a Message whose blob is plan.marshal(...).
void append_rpc_frame(ByteWriter& out, MessageKind kind, std::uint64_t seq,
                      const std::string& a, const std::string& b,
                      const uts::MarshalPlan& plan,
                      const arch::ArchDescriptor& arch,
                      const uts::ValueList& values,
                      const obs::TraceContext& trace,
                      std::size_t max_frame_bytes) {
  const std::size_t mark = begin_frame(out);
  out.u8(static_cast<std::uint8_t>(kind));
  out.u64(seq);
  out.i64(kNoLine);
  out.str(a);
  out.str(b);
  out.str(std::string_view{});  // c
  out.i64(0);                   // n
  const std::size_t blob_mark = out.size();
  out.u32(0);  // blob length placeholder
  plan.marshal_into(arch, values, out);
  out.patch_u32(blob_mark,
                static_cast<std::uint32_t>(out.size() - blob_mark - 4));
  out.u32(0);  // empty table
  if (trace.active()) {
    out.u8(kTraceExtensionMarker);
    out.u64(trace.trace_id);
    out.u64(trace.span_id);
    out.u64(trace.parent_span_id);
  }
  end_frame(out, mark, max_frame_bytes);
}

}  // namespace

void append_call_frame(ByteWriter& out, std::uint64_t seq,
                       const std::string& name,
                       const std::string& import_text,
                       const uts::MarshalPlan& plan,
                       const arch::ArchDescriptor& arch,
                       const uts::ValueList& args,
                       const obs::TraceContext& trace,
                       std::size_t max_frame_bytes) {
  append_rpc_frame(out, MessageKind::kCall, seq, name, import_text, plan,
                   arch, args, trace, max_frame_bytes);
}

void append_reply_frame(ByteWriter& out, std::uint64_t seq,
                        const uts::MarshalPlan& plan,
                        const arch::ArchDescriptor& arch,
                        const uts::ValueList& values,
                        const obs::TraceContext& trace,
                        std::size_t max_frame_bytes) {
  append_rpc_frame(out, MessageKind::kReply, seq, std::string(),
                   std::string(), plan, arch, values, trace,
                   max_frame_bytes);
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  // Compact before growing: consumed frames at the front are dead weight
  // and the realloc below would copy them along.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= (64u << 10))) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<std::span<const std::uint8_t>> FrameDecoder::next() {
  const std::size_t have = buf_.size() - pos_;
  if (have < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len = (len << 8) | buf_[pos_ + static_cast<std::size_t>(i)];
  if (len > max_frame_bytes_) {
    throw util::EncodingError("frame length " + std::to_string(len) +
                              " exceeds the " +
                              std::to_string(max_frame_bytes_) +
                              " byte cap");
  }
  if (have < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  std::span<const std::uint8_t> frame(buf_.data() + pos_ + 4, len);
  pos_ += 4 + static_cast<std::size_t>(len);
  return frame;
}

}  // namespace npss::rpc::bus
