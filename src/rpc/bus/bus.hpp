// The connection-multiplexed RPC bus — knobs and counters shared by the
// dispatcher, the framing layer, and both transport ends.
//
// The original real-socket transport was lock-step: one blocking
// connection per client, one thread per connection on the host, one
// outstanding call per connection turn. The bus replaces that data plane
// with a poll() event loop owning nonblocking sockets, persistent
// connections carrying many sequence-tagged in-flight calls, coalesced
// scatter-gather writes, and an incremental frame decoder — see
// DESIGN.md §14 for the architecture and the pipelining model.
#pragma once

#include <cstddef>

namespace npss::obs {
class Counter;
class Gauge;
}  // namespace npss::obs

namespace npss::rpc::bus {

/// Tuning knobs for one dispatcher (README "bus_*" table). The defaults
/// favor small-call throughput over loopback; every field is a plain
/// value so call sites can brace-initialize a variant.
struct BusOptions {
  /// Bytes pulled per recv() in the read loop; frames coalesced by the
  /// peer arrive together in one chunk.
  std::size_t read_chunk_bytes = 64 * 1024;
  /// Frames whose length prefix exceeds this are a protocol violation:
  /// the connection is dropped before any allocation happens.
  std::size_t max_frame_bytes = 64u << 20;
  /// Backpressure: once a connection's unsent output exceeds this, the
  /// dispatcher stops reading new requests from it until the peer
  /// drains — slow consumers stall themselves, not the process.
  std::size_t backpressure_bytes = 4u << 20;
  /// Handler threads a TcpProcedureHost runs behind the dispatcher
  /// (0 = run handlers inline on the event-loop thread).
  int workers = 2;
};

/// Cached handles for the bus-level counters (registry lookups are
/// mutex-guarded; the hot path must be an atomic add):
///   rpc.bus.bytes_sent       bytes actually written to sockets
///   rpc.bus.frames_coalesced frames that shared a flush with a
///                            predecessor (syscalls saved)
///   rpc.bus.inflight_calls   gauge: calls currently awaiting a reply
///   rpc.bus.partial_reads    read batches that ended mid-frame (the
///                            incremental decoder carried state over)
///   rpc.bus.abandoned_replies late replies discarded by seq after the
///                            caller gave up on the call
struct BusMetrics {
  obs::Counter& bytes_sent;
  obs::Counter& frames_coalesced;
  obs::Gauge& inflight_calls;
  obs::Counter& partial_reads;
  obs::Counter& abandoned_replies;
};

BusMetrics& bus_metrics();

}  // namespace npss::rpc::bus
