// The client-side Schooner library, as the adapted AVS modules used it
// (§3.3): sch_contact_schx to register with the Manager and start remote
// processes, import stubs for calling, sch_i_quit for line teardown, and
// the §4.2 extension sch_move for migrating a running procedure.
//
// Multi-tenant surface (DESIGN.md §15): a Session owns one Manager
// connection — the cached leader identity, admission policy, and the
// per-line binding caches — and mints lightweight Line handles from it.
// Each Line is one of the paper's §4 "lines": a sequential thread of
// control with its own procedure name space, its own teardown
// (sch_i_quit), and — past the paper — its own fault budget (LineBudget)
// and Manager-granted call quota, so thousands of concurrent lines share
// one resident fleet without sharing failure modes. The historical
// `SchoonerClient` (one client == one line) remains as a thin
// compatibility wrapper over Session + one Line; new code should use
// Session/Line directly.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "rpc/calling.hpp"
#include "rpc/io.hpp"
#include "rpc/message.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "uts/spec.hpp"

namespace npss::rpc {

class Line;
class Session;

/// An imported remote procedure (the client stub the stub compiler would
/// have generated from the import specification). Stubs are minted by
/// Line::import_proc and must not outlive their Line.
class RemoteProc {
 public:
  /// Fault-tolerant invoke: `args` is parallel to the import signature
  /// (res-slot inputs are ignored), `opts` carries the deadline/retry/
  /// failover policy. Failure comes back typed in CallResult.status —
  /// this overload does not throw for transport or peer errors. The
  /// owning line's LineBudget is charged unless `opts` names another.
  CallResult call(uts::ValueList args, const CallOptions& opts);

  /// Overlapping fault-tolerant invoke: the call runs on a worker thread
  /// and the caller collects the CallResult from the future. The owning
  /// line's endpoint serves one call at a time, so overlap calls on
  /// *different* lines (as the flow executive does for independent remote
  /// components) — not two async calls on one line.
  std::future<CallResult> call_async(uts::ValueList args,
                                     const CallOptions& opts);

  /// Legacy throwing invoke: routes through the same engine with this
  /// stub's default options and raises the terminal status as its
  /// original Error subclass. Returns the full slot list with res/var
  /// slots holding the results.
  [[deprecated(
      "use call(args, CallOptions) and branch on CallResult.status "
      "(or .values_or_raise() where a throw is wanted)")]]
  uts::ValueList call(uts::ValueList args);

  /// Legacy throwing async variant.
  [[deprecated(
      "use call_async(args, CallOptions); get() yields a CallResult")]]
  std::future<uts::ValueList> call_async(uts::ValueList args);

  /// Default CallOptions used by the legacy throwing surface (initially
  /// CallOptions::legacy(), i.e. the historical one-rebind retry loop).
  void set_call_options(CallOptions opts) { options_ = std::move(opts); }
  const CallOptions& call_options() const { return options_; }

  const std::string& name() const { return name_; }
  const uts::Signature& signature() const { return decl_.signature; }

  /// The stub's compiled marshal programs (built at import time, the way
  /// the paper's stub compiler specialized conversion per signature).
  const uts::MarshalPlan& request_plan() const { return *cache_.request_plan; }
  const uts::MarshalPlan& reply_plan() const { return *cache_.reply_plan; }

  /// Per-stub call count; lookups/stale_retries read the line's shared
  /// binding cache for this procedure (two stubs importing the same name
  /// on one line share a cache, so the second import is born bound).
  int calls() const { return static_cast<int>(calls_.value()); }
  int lookups() const { return static_cast<int>(cache_.lookups.value()); }
  int stale_retries() const {
    return static_cast<int>(cache_.stale_retries.value());
  }

  /// Measure a transport round trip (kPing/kPong) to the process hosting
  /// this procedure, in simulated microseconds; binds first if needed.
  /// Recorded into the rpc.transport.rtt_us histogram.
  util::SimTime ping();

  /// Drop the cached binding (tests use this to force a fresh lookup).
  void invalidate() { cache_.address.clear(); }

 private:
  friend class Line;
  RemoteProc(Line& owner, std::string name, uts::ProcDecl decl,
             std::string import_text, BindingCache& cache);

  Line* owner_;
  std::string name_;
  uts::ProcDecl decl_;
  std::string import_text_;
  CallOptions options_ = CallOptions::legacy();
  BindingCache& cache_;  ///< owned by the Line, shared per (name, import)
  obs::Counter calls_;
};

struct StartResult {
  std::string address;  ///< the new process
  /// (procedure name, export signature text) pairs it registered.
  std::vector<std::pair<std::string, std::string>> exports;
};

/// Builder-style per-line options:
///   session.open_line(LineOptions{}
///                         .with_name("tenant-42")
///                         .with_budget({.virtual_us = 5'000'000,
///                                       .retries = 32}));
struct LineOptions {
  /// Human-readable line description, recorded in the Manager's (and the
  /// replicated changelog's) line table.
  std::string name = "line";
  /// The line's fault budget (all-zero = unlimited). The Manager's
  /// per-line outstanding-call quota is folded in at admission.
  LineBudget::Limits budget;
  /// Admission retries when the Manager answers kLineRejected (the
  /// max_lines gate): total registration attempts, and the host-time
  /// pause between them (virtual time advances in step so seeded runs
  /// stay deterministic). admission_attempts = 1 fails fast.
  int admission_attempts = 1;
  int admission_backoff_ms = 20;

  LineOptions& with_name(std::string n) {
    name = std::move(n);
    return *this;
  }
  LineOptions& with_budget(LineBudget::Limits limits) {
    budget = limits;
    return *this;
  }
  LineOptions& with_admission(int attempts, int backoff_ms = 20) {
    admission_attempts = attempts;
    admission_backoff_ms = backoff_ms;
    return *this;
  }
};

/// One §4 line: a sequential thread of control with its own procedure
/// name space under the Session's Manager. Duplicate procedure names
/// across lines are fine — each line binds through its own name space.
/// A Line is driven by one thread at a time (its endpoint's reply
/// matching is single-caller); run many Lines for concurrency. Must not
/// outlive its Session.
class Line {
 public:
  ~Line();
  Line(const Line&) = delete;
  Line& operator=(const Line&) = delete;

  LineId id() const { return line_; }
  const std::string& name() const { return name_; }
  MessageIo& io() { return io_; }
  const arch::ArchDescriptor& arch() const;
  Session& session() { return *session_; }

  /// The line's shared fault budget; every stub charges it. The Manager's
  /// outstanding-call quota (kLineAck.n) has been folded in.
  const std::shared_ptr<LineBudget>& budget() const { return budget_; }

  /// sch_contact_schx: ask the Manager to start the executable at `path`
  /// on `machine` as part of this line (or as a shared procedure).
  StartResult contact_schx(const std::string& machine,
                           const std::string& path, bool shared = false);

  /// Build a stub from an import declaration. `import_spec_text` must hold
  /// exactly one import declaration for `name` (or pass the whole text of
  /// a spec file plus the name to select). Stubs importing the same
  /// (name, declaration) pair share one binding cache on this line.
  std::unique_ptr<RemoteProc> import_proc(const std::string& name,
                                          const std::string& import_spec_text);

  /// sch_move: migrate the named procedure's process to another machine.
  /// Returns the new process address. When `transfer_state` is set the
  /// Manager captures and re-installs the procedure's declared state.
  std::string move_proc(const std::string& name, const std::string& machine,
                        const std::string& path = "",
                        bool transfer_state = false);

  /// sch_i_quit: tear down this line; the Manager shuts down exactly the
  /// remote procedures belonging to it. Idempotent.
  void quit();

  bool active() const { return line_ != kNoLine; }

 private:
  friend class Session;
  friend class RemoteProc;
  friend class SchoonerClient;

  /// Registers the line with the Manager (kRegisterLine), honoring the
  /// admission backoff in `opts`. `owns_endpoint` = the Session created
  /// the endpoint for this line and should retire it on teardown (false
  /// for the endpoint adopted by the SchoonerClient shim).
  Line(Session& session, sim::EndpointPtr endpoint, LineOptions opts,
       bool owns_endpoint);

  /// The one invoke path every RemoteProc surface (sync/async, throwing/
  /// status-returning) funnels through; stamps the line budget into opts.
  CallResult invoke(RemoteProc& proc, uts::ValueList args,
                    const CallOptions& opts);
  CallCore call_core();
  /// Find-or-create the binding cache for a (name, import) pair,
  /// compiling the marshal plans on first sight. References are stable
  /// (map nodes) for the life of the Line.
  BindingCache& cache_for(const std::string& name,
                          const uts::Signature& signature,
                          const std::string& import_text);
  CallOptions with_budget(const CallOptions& opts) const;

  Session* session_;
  sim::EndpointPtr endpoint_;
  MessageIo io_;
  std::string name_;
  LineId line_ = kNoLine;
  bool owns_endpoint_ = false;
  std::shared_ptr<LineBudget> budget_;
  /// Per-line binding caches, keyed "name\n<import text>" — the §4.2
  /// name cache, hoisted out of the stubs so re-imports share bindings.
  /// Thread-confined: a Line has one owning caller by contract
  /// (DESIGN.md §15/§16), so this needs no lock; cross-thread use of one
  /// Line is a caller bug, not a data structure this layer defends.
  std::map<std::string, BindingCache> caches_;
};

/// The Manager connection shared by many lines: the cached leader
/// identity (re-pointed after elections, under a mutex — lines race to
/// update it), and the factory for Line handles. One Session per client
/// process is the intended shape; it must outlive every Line it opened.
class Session {
 public:
  /// `machine` is the cluster machine this session's lines live on (their
  /// endpoints and native formats). `manager_replicas` is the full
  /// Manager replica group (empty for a classic standalone Manager):
  /// with it set, every Manager exchange survives a leader death by
  /// rediscovering the new leader and re-issuing the request.
  Session(sim::Cluster& cluster, std::string machine,
          std::string manager_address,
          std::vector<std::string> manager_replicas = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Register a new line with the Manager and hand back its handle.
  /// Throws util::LineRejectedError when the Manager's admission gate
  /// (SystemOptions::max_lines) still refuses after the admission backoff
  /// in `opts` is spent.
  std::unique_ptr<Line> open_line(LineOptions opts = {});

  /// Current Manager leader, as this session last saw it.
  std::string manager_address() const;
  const std::string& machine() const { return machine_; }
  sim::Cluster& cluster() { return *cluster_; }
  const std::vector<std::string>& manager_replicas() const {
    return replicas_;
  }
  /// Lines this session successfully opened (admission rejections and
  /// quits do not decrement; diagnostic).
  long lines_opened() const { return lines_opened_; }

 private:
  friend class Line;
  friend class SchoonerClient;

  /// Open a line over a caller-supplied endpoint (the SchoonerClient
  /// adoption path; the endpoint is not retired on teardown).
  std::unique_ptr<Line> adopt_line(sim::EndpointPtr endpoint,
                                   LineOptions opts);

  /// Manager request over `io` with leader re-bind: on a dead or deposed
  /// Manager (NoRoute / kNotLeader) rediscover the leader and re-issue.
  /// Raises error replies as exceptions, like MessageIo::call does.
  Message manager_call(MessageIo& io, Message msg);
  /// Poll the replica group for the current leader and adopt it; throws
  /// util::UnavailableError when none surfaces.
  void rebind_to_leader(MessageIo& io);
  std::string leader() const;
  void note_leader(const std::string& leader);

  sim::Cluster* cluster_;
  std::string machine_;
  /// Leader-cache lock: lines race to re-point manager_ after an
  /// election. note_leader logs under it, so Session.leader orders
  /// before util.Logger in the hierarchy (lock_hierarchy.md).
  mutable util::Mutex mu_{"rpc.Session.leader"};
  std::string manager_ SCHOONER_GUARDED_BY(mu_);
  std::vector<std::string> replicas_;
  std::atomic<long> lines_opened_{0};
  std::atomic<long> line_seq_{0};  ///< endpoint-label suffix for open_line
};

/// Compatibility wrapper: one SchoonerClient == one line, exactly the
/// pre-session API. Deprecated in favor of Session + Line (a Session
/// amortizes the Manager connection over many lines and carries the
/// admission/budget machinery); kept fully functional so existing tests
/// and adapted modules migrate incrementally.
class SchoonerClient {
 public:
  /// Registers a new line with the Manager at `manager_address`.
  /// `endpoint` is this participant's mailbox (typically on the AVS
  /// workstation machine).
  SchoonerClient(sim::Cluster& cluster, sim::EndpointPtr endpoint,
                 std::string manager_address, std::string description,
                 std::vector<std::string> manager_replicas = {});

  ~SchoonerClient() = default;
  SchoonerClient(const SchoonerClient&) = delete;
  SchoonerClient& operator=(const SchoonerClient&) = delete;

  LineId line() const { return line_->id(); }
  MessageIo& io() { return line_->io(); }
  std::string manager_address() const { return session_->manager_address(); }
  const arch::ArchDescriptor& arch() const { return line_->arch(); }

  StartResult contact_schx(const std::string& machine,
                           const std::string& path, bool shared = false) {
    return line_->contact_schx(machine, path, shared);
  }
  std::unique_ptr<RemoteProc> import_proc(
      const std::string& name, const std::string& import_spec_text) {
    return line_->import_proc(name, import_spec_text);
  }
  std::string move_proc(const std::string& name, const std::string& machine,
                        const std::string& path = "",
                        bool transfer_state = false) {
    return line_->move_proc(name, machine, path, transfer_state);
  }
  void quit() { line_->quit(); }
  bool active() const { return line_->active(); }

  /// The wrapped handles, for code mid-migration.
  Session& session() { return *session_; }
  Line& as_line() { return *line_; }

 private:
  std::unique_ptr<Session> session_;
  std::unique_ptr<Line> line_;
};

}  // namespace npss::rpc
