// The client-side Schooner library, as the adapted AVS modules used it
// (§3.3): sch_contact_schx to register with the Manager and start remote
// processes, import stubs for calling, sch_i_quit for line teardown, and
// the §4.2 extension sch_move for migrating a running procedure.
//
// One SchoonerClient == one *line*: a sequential thread of control with
// its own procedure name space under the shared, persistent Manager.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "rpc/calling.hpp"
#include "rpc/io.hpp"
#include "rpc/message.hpp"
#include "uts/spec.hpp"

namespace npss::rpc {

class SchoonerClient;

/// An imported remote procedure (the client stub the stub compiler would
/// have generated from the import specification).
class RemoteProc {
 public:
  /// Fault-tolerant invoke: `args` is parallel to the import signature
  /// (res-slot inputs are ignored), `opts` carries the deadline/retry/
  /// failover policy. Failure comes back typed in CallResult.status —
  /// this overload does not throw for transport or peer errors.
  CallResult call(uts::ValueList args, const CallOptions& opts);

  /// Overlapping fault-tolerant invoke: the call runs on a worker thread
  /// and the caller collects the CallResult from the future. The owning
  /// client's endpoint serves one call at a time, so overlap calls on
  /// *different* stubs of *different* clients (as the flow executive does
  /// for independent remote components) — not two async calls on one
  /// client.
  std::future<CallResult> call_async(uts::ValueList args,
                                     const CallOptions& opts);

  /// Legacy throwing invoke: routes through the same engine with this
  /// stub's default options and raises the terminal status as its
  /// original Error subclass. Returns the full slot list with res/var
  /// slots holding the results.
  uts::ValueList call(uts::ValueList args);

  /// Legacy throwing async variant.
  std::future<uts::ValueList> call_async(uts::ValueList args);

  /// Default CallOptions used by the legacy throwing surface (initially
  /// CallOptions::legacy(), i.e. the historical one-rebind retry loop).
  void set_call_options(CallOptions opts) { options_ = std::move(opts); }
  const CallOptions& call_options() const { return options_; }

  const std::string& name() const { return name_; }
  const uts::Signature& signature() const { return decl_.signature; }

  /// The stub's compiled marshal programs (built at import time, the way
  /// the paper's stub compiler specialized conversion per signature).
  const uts::MarshalPlan& request_plan() const { return *cache_.request_plan; }
  const uts::MarshalPlan& reply_plan() const { return *cache_.reply_plan; }

  /// Per-stub metrics for the benches (process-wide aggregates live in
  /// the global obs::Registry under rpc.client.*).
  int calls() const { return static_cast<int>(calls_.value()); }
  int lookups() const { return static_cast<int>(cache_.lookups.value()); }
  int stale_retries() const {
    return static_cast<int>(cache_.stale_retries.value());
  }

  /// Measure a transport round trip (kPing/kPong) to the process hosting
  /// this procedure, in simulated microseconds; binds first if needed.
  /// Recorded into the rpc.transport.rtt_us histogram.
  util::SimTime ping();

  /// Drop the cached binding (tests use this to force a fresh lookup).
  void invalidate() { cache_.address.clear(); }

 private:
  friend class SchoonerClient;
  RemoteProc(SchoonerClient& owner, std::string name, uts::ProcDecl decl,
             std::string import_text)
      : owner_(&owner),
        name_(std::move(name)),
        decl_(std::move(decl)),
        import_text_(std::move(import_text)) {
    cache_.request_plan =
        uts::compile_plan(decl_.signature, uts::Direction::kRequest);
    cache_.reply_plan =
        uts::compile_plan(decl_.signature, uts::Direction::kReply);
  }

  SchoonerClient* owner_;
  std::string name_;
  uts::ProcDecl decl_;
  std::string import_text_;
  CallOptions options_ = CallOptions::legacy();
  BindingCache cache_;
  obs::Counter calls_;
};

struct StartResult {
  std::string address;  ///< the new process
  /// (procedure name, export signature text) pairs it registered.
  std::vector<std::pair<std::string, std::string>> exports;
};

class SchoonerClient {
 public:
  /// Registers a new line with the Manager at `manager_address`.
  /// `endpoint` is this participant's mailbox (typically on the AVS
  /// workstation machine). `manager_replicas` is the full Manager replica
  /// group (empty for a classic standalone Manager): with it set, every
  /// Manager exchange survives a leader death by rediscovering the new
  /// leader through kMetaWhoIsLeader and re-issuing the request.
  SchoonerClient(sim::Cluster& cluster, sim::EndpointPtr endpoint,
                 std::string manager_address, std::string description,
                 std::vector<std::string> manager_replicas = {});

  ~SchoonerClient();
  SchoonerClient(const SchoonerClient&) = delete;
  SchoonerClient& operator=(const SchoonerClient&) = delete;

  LineId line() const { return line_; }
  MessageIo& io() { return io_; }
  const std::string& manager_address() const { return manager_; }
  const arch::ArchDescriptor& arch() const;

  /// sch_contact_schx: ask the Manager to start the executable at `path`
  /// on `machine` as part of this line (or as a shared procedure).
  StartResult contact_schx(const std::string& machine,
                           const std::string& path, bool shared = false);

  /// Build a stub from an import declaration. `import_spec_text` must hold
  /// exactly one import declaration for `name` (or pass the whole text of
  /// a spec file plus the name to select).
  std::unique_ptr<RemoteProc> import_proc(const std::string& name,
                                          const std::string& import_spec_text);

  /// sch_move: migrate the named procedure's process to another machine.
  /// Returns the new process address. When `transfer_state` is set the
  /// Manager captures and re-installs the procedure's declared state.
  std::string move_proc(const std::string& name, const std::string& machine,
                        const std::string& path = "",
                        bool transfer_state = false);

  /// sch_i_quit: tear down this line; the Manager shuts down exactly the
  /// remote procedures belonging to it. Idempotent.
  void quit();

  bool active() const { return line_ != kNoLine; }

 private:
  friend class RemoteProc;
  /// The one invoke path every RemoteProc surface (sync/async, throwing/
  /// status-returning) funnels through.
  CallResult invoke(RemoteProc& proc, uts::ValueList args,
                    const CallOptions& opts);
  CallCore call_core();
  /// Manager request with leader re-bind: on a dead or deposed Manager
  /// (NoRoute / kNotLeader) rediscover the leader and re-issue. Raises
  /// error replies as exceptions, like io().call does.
  Message manager_call(Message msg);
  /// Poll the replica group for the current leader and adopt it; throws
  /// util::UnavailableError when none surfaces.
  void rebind_to_leader();

  sim::Cluster* cluster_;
  sim::EndpointPtr endpoint_;
  MessageIo io_;
  std::string manager_;
  std::vector<std::string> replicas_;
  LineId line_ = kNoLine;
};

}  // namespace npss::rpc
