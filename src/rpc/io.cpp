#include "rpc/io.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace npss::rpc {

namespace {

// Shared transport tallies (the TCP transport records under the same
// names, so "transport" means whichever fabric carried the frame).
Message decode_counted(std::span<const std::uint8_t> payload) {
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("rpc.transport.frames_received").add();
    reg.counter("rpc.transport.bytes_received").add(payload.size());
  }
  return decode_message(payload);
}

/// Kinds only ever sent in response to one of *our* requests — their seq
/// lives in this endpoint's numbering space, so the abandoned-seq filter
/// applies. Requests and one-way orders carry the *sender's* seq and must
/// never be filtered.
bool is_reply_kind(MessageKind kind) {
  switch (kind) {
    case MessageKind::kLineAck:
    case MessageKind::kStartAck:
    case MessageKind::kSpawnAck:
    case MessageKind::kExportAck:
    case MessageKind::kLookupAck:
    case MessageKind::kReply:
    case MessageKind::kQuitAck:
    case MessageKind::kMoveAck:
    case MessageKind::kStateReply:
    case MessageKind::kStateAck:
    case MessageKind::kPong:
    case MessageKind::kError:
    case MessageKind::kMetaConfigAck:
    case MessageKind::kMetaLeaderAck:
      return true;
    default:
      return false;
  }
}

constexpr std::size_t kMaxAbandoned = 4096;

}  // namespace

bool MessageIo::abandoned_reply(const Message& msg) const {
  return is_reply_kind(msg.kind) && abandoned_.contains(msg.seq);
}

void MessageIo::mark_abandoned(std::uint64_t seq) {
  abandoned_.insert(seq);
  // Seqs are monotone, so the smallest entry is the oldest exchange; a
  // straggler for it would long since have arrived.
  while (abandoned_.size() > kMaxAbandoned) {
    abandoned_.erase(abandoned_.begin());
  }
}

void MessageIo::send(const std::string& to, Message msg) {
  NPSS_LOG_TRACE("rpc.io", address(), " send ", message_kind_name(msg.kind),
                 " seq=", msg.seq, " -> ", to);
  util::Bytes frame = encode_message(msg);
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("rpc.transport.frames_sent").add();
    reg.counter("rpc.transport.bytes_sent").add(frame.size());
  }
  cluster_->send(*endpoint_, to, std::move(frame));
}

std::optional<Incoming> MessageIo::receive() {
  while (true) {
    if (!stash_.empty()) {
      Incoming front = std::move(stash_.front());
      stash_.pop_front();
      return front;
    }
    auto env = endpoint_->receive();
    if (!env) return std::nullopt;
    Message msg = decode_counted(env->payload);
    if (abandoned_reply(msg)) continue;
    return Incoming{env->from, std::move(msg)};
  }
}

std::optional<Incoming> MessageIo::receive_for(int host_ms) {
  while (true) {
    if (!stash_.empty()) {
      Incoming front = std::move(stash_.front());
      stash_.pop_front();
      return front;
    }
    auto env =
        endpoint_->receive_for(std::chrono::milliseconds(std::max(host_ms, 1)));
    if (!env) return std::nullopt;
    Message msg = decode_counted(env->payload);
    if (abandoned_reply(msg)) continue;
    return Incoming{env->from, std::move(msg)};
  }
}

std::optional<Incoming> MessageIo::try_receive() {
  while (true) {
    if (!stash_.empty()) {
      Incoming front = std::move(stash_.front());
      stash_.pop_front();
      return front;
    }
    auto env = endpoint_->try_receive();
    if (!env) return std::nullopt;
    Message msg = decode_counted(env->payload);
    if (abandoned_reply(msg)) continue;
    return Incoming{env->from, std::move(msg)};
  }
}

Message MessageIo::call(const std::string& to, Message request,
                        bool raise_errors) {
  return call_impl(to, std::move(request), raise_errors, /*host_grace_ms=*/0);
}

Message MessageIo::call_within(const std::string& to, Message request,
                               int host_grace_ms, bool raise_errors) {
  return call_impl(to, std::move(request), raise_errors,
                   std::max(host_grace_ms, 1));
}

Message MessageIo::call_impl(const std::string& to, Message request,
                             bool raise_errors, int host_grace_ms) {
  request.seq = next_seq();
  const std::uint64_t want = request.seq;
  send(to, std::move(request));
  while (true) {
    auto env = host_grace_ms > 0
                   ? endpoint_->receive_for(
                         std::chrono::milliseconds(host_grace_ms))
                   : endpoint_->receive();
    if (!env) {
      if (host_grace_ms > 0 && !endpoint_->closed()) {
        // Nothing arrived inside the grace window: the request or its
        // reply was lost (or the peer died mid-call). Abandon the seq so
        // a straggler reply cannot be mistaken for later traffic.
        mark_abandoned(want);
        throw util::DeadlineError("no reply from '" + to + "' for seq " +
                                  std::to_string(want) + " within " +
                                  std::to_string(host_grace_ms) +
                                  "ms host grace");
      }
      throw util::ShutdownError("endpoint " + address() +
                                " closed while awaiting reply");
    }
    Message msg = decode_counted(env->payload);
    if (abandoned_reply(msg)) {
      NPSS_LOG_TRACE("rpc.io", address(), " discard late ",
                     message_kind_name(msg.kind), " seq=", msg.seq);
      continue;
    }
    if (msg.seq == want &&
        (msg.kind == MessageKind::kError || env->from == to ||
         msg.kind != MessageKind::kCall)) {
      // Replies echo the request seq. A concurrent *request* from a peer
      // could coincidentally carry the same seq, so requests that we could
      // be asked to serve (kCall and friends) are stashed, never consumed
      // as replies.
      if (is_reply_kind(msg.kind)) {
        // Mark the finished seq abandoned too: a *duplicated* reply frame
        // (fault injection) must not linger in the stash.
        mark_abandoned(want);
        if (raise_errors) msg.raise_if_error();
        return msg;
      }
    }
    NPSS_LOG_TRACE("rpc.io", address(), " stash ",
                   message_kind_name(msg.kind), " seq=", msg.seq, " from ",
                   env->from);
    stash_.push_back(Incoming{env->from, std::move(msg)});
  }
}

util::SimTime MessageIo::ping(const std::string& to) {
  const util::SimTime before = endpoint_->clock().now();
  Message msg;
  msg.kind = MessageKind::kPing;
  call(to, std::move(msg));
  const util::SimTime rtt = endpoint_->clock().now() - before;
  if (obs::enabled()) {
    obs::Registry::global()
        .histogram("rpc.transport.rtt_us")
        .record(static_cast<double>(rtt));
  }
  return rtt;
}

}  // namespace npss::rpc
