#include "rpc/io.hpp"

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace npss::rpc {

namespace {

// Shared transport tallies (the TCP transport records under the same
// names, so "transport" means whichever fabric carried the frame).
Message decode_counted(std::span<const std::uint8_t> payload) {
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("rpc.transport.frames_received").add();
    reg.counter("rpc.transport.bytes_received").add(payload.size());
  }
  return decode_message(payload);
}

}  // namespace

void MessageIo::send(const std::string& to, Message msg) {
  NPSS_LOG_TRACE("rpc.io", address(), " send ", message_kind_name(msg.kind),
                 " seq=", msg.seq, " -> ", to);
  util::Bytes frame = encode_message(msg);
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("rpc.transport.frames_sent").add();
    reg.counter("rpc.transport.bytes_sent").add(frame.size());
  }
  cluster_->send(*endpoint_, to, std::move(frame));
}

std::optional<Incoming> MessageIo::receive() {
  if (!stash_.empty()) {
    Incoming front = std::move(stash_.front());
    stash_.pop_front();
    return front;
  }
  auto env = endpoint_->receive();
  if (!env) return std::nullopt;
  return Incoming{env->from, decode_counted(env->payload)};
}

std::optional<Incoming> MessageIo::try_receive() {
  if (!stash_.empty()) {
    Incoming front = std::move(stash_.front());
    stash_.pop_front();
    return front;
  }
  auto env = endpoint_->try_receive();
  if (!env) return std::nullopt;
  return Incoming{env->from, decode_counted(env->payload)};
}

Message MessageIo::call(const std::string& to, Message request,
                        bool raise_errors) {
  request.seq = next_seq();
  const std::uint64_t want = request.seq;
  send(to, std::move(request));
  while (true) {
    auto env = endpoint_->receive();
    if (!env) {
      throw util::ShutdownError("endpoint " + address() +
                                " closed while awaiting reply");
    }
    Message msg = decode_counted(env->payload);
    if (msg.seq == want &&
        (msg.kind == MessageKind::kError || env->from == to ||
         msg.kind != MessageKind::kCall)) {
      // Replies echo the request seq. A concurrent *request* from a peer
      // could coincidentally carry the same seq, so requests that we could
      // be asked to serve (kCall and friends) are stashed, never consumed
      // as replies.
      switch (msg.kind) {
        case MessageKind::kCall:
        case MessageKind::kSpawn:
        case MessageKind::kLookup:
        case MessageKind::kStartRequest:
        case MessageKind::kRegisterLine:
        case MessageKind::kExport:
        case MessageKind::kQuit:
        case MessageKind::kMove:
        case MessageKind::kStateRequest:
        case MessageKind::kStateInstall:
        case MessageKind::kPing:
          break;  // a request; stash below
        default: {
          if (raise_errors) msg.raise_if_error();
          return msg;
        }
      }
    }
    NPSS_LOG_TRACE("rpc.io", address(), " stash ",
                   message_kind_name(msg.kind), " seq=", msg.seq, " from ",
                   env->from);
    stash_.push_back(Incoming{env->from, std::move(msg)});
  }
}

util::SimTime MessageIo::ping(const std::string& to) {
  const util::SimTime before = endpoint_->clock().now();
  Message msg;
  msg.kind = MessageKind::kPing;
  call(to, std::move(msg));
  const util::SimTime rtt = endpoint_->clock().now() - before;
  if (obs::enabled()) {
    obs::Registry::global()
        .histogram("rpc.transport.rtt_us")
        .record(static_cast<double>(rtt));
  }
  return rtt;
}

}  // namespace npss::rpc
