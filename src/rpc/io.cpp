#include "rpc/io.hpp"

#include "util/log.hpp"

namespace npss::rpc {

void MessageIo::send(const std::string& to, Message msg) {
  NPSS_LOG_TRACE("rpc.io", address(), " send ", message_kind_name(msg.kind),
                 " seq=", msg.seq, " -> ", to);
  cluster_->send(*endpoint_, to, encode_message(msg));
}

std::optional<Incoming> MessageIo::receive() {
  if (!stash_.empty()) {
    Incoming front = std::move(stash_.front());
    stash_.pop_front();
    return front;
  }
  auto env = endpoint_->receive();
  if (!env) return std::nullopt;
  return Incoming{env->from, decode_message(env->payload)};
}

std::optional<Incoming> MessageIo::try_receive() {
  if (!stash_.empty()) {
    Incoming front = std::move(stash_.front());
    stash_.pop_front();
    return front;
  }
  auto env = endpoint_->try_receive();
  if (!env) return std::nullopt;
  return Incoming{env->from, decode_message(env->payload)};
}

Message MessageIo::call(const std::string& to, Message request,
                        bool raise_errors) {
  request.seq = next_seq();
  const std::uint64_t want = request.seq;
  send(to, std::move(request));
  while (true) {
    auto env = endpoint_->receive();
    if (!env) {
      throw util::ShutdownError("endpoint " + address() +
                                " closed while awaiting reply");
    }
    Message msg = decode_message(env->payload);
    if (msg.seq == want &&
        (msg.kind == MessageKind::kError || env->from == to ||
         msg.kind != MessageKind::kCall)) {
      // Replies echo the request seq. A concurrent *request* from a peer
      // could coincidentally carry the same seq, so requests that we could
      // be asked to serve (kCall and friends) are stashed, never consumed
      // as replies.
      switch (msg.kind) {
        case MessageKind::kCall:
        case MessageKind::kSpawn:
        case MessageKind::kLookup:
        case MessageKind::kStartRequest:
        case MessageKind::kRegisterLine:
        case MessageKind::kExport:
        case MessageKind::kQuit:
        case MessageKind::kMove:
        case MessageKind::kStateRequest:
        case MessageKind::kStateInstall:
        case MessageKind::kPing:
          break;  // a request; stash below
        default: {
          if (raise_errors) msg.raise_if_error();
          return msg;
        }
      }
    }
    NPSS_LOG_TRACE("rpc.io", address(), " stash ",
                   message_kind_name(msg.kind), " seq=", msg.seq, " from ",
                   env->from);
    stash_.push_back(Incoming{env->from, std::move(msg)});
  }
}

}  // namespace npss::rpc
