#include "rpc/schooner.hpp"

#include "util/log.hpp"

namespace npss::rpc {

SchoonerSystem::SchoonerSystem(sim::Cluster& cluster,
                               const std::string& manager_machine,
                               SystemOptions options)
    : cluster_(&cluster) {
  ManagerConfig config;
  config.strict = options.strict_static_check;
  config.static_manifest = std::move(options.static_manifest);
  config.manifest_spec_hashes = std::move(options.manifest_spec_hashes);
  for (const std::string& machine : cluster.machine_names()) {
    sim::EndpointPtr ep = cluster.spawn(machine, "schx-server", server_main);
    config.servers[machine] = ep->address();
    server_addresses_[machine] = ep->address();
  }
  stats_ = std::make_shared<ManagerStats>();
  sim::EndpointPtr manager_ep = cluster.spawn(
      manager_machine, "schx-manager",
      [config = std::move(config), stats = stats_](sim::ProcessContext& ctx) {
        manager_main(ctx, config, stats);
      });
  manager_address_ = manager_ep->address();
  running_ = true;
}

SchoonerSystem::~SchoonerSystem() {
  try {
    stop();
  } catch (...) {
  }
}

std::unique_ptr<SchoonerClient> SchoonerSystem::make_client(
    const std::string& machine, const std::string& description) {
  sim::EndpointPtr ep = cluster_->create_endpoint(machine, "schx-client");
  return std::make_unique<SchoonerClient>(*cluster_, std::move(ep),
                                          manager_address_, description);
}

void SchoonerSystem::stop() {
  if (!running_) return;
  running_ = false;
  // Stop the Manager through a throwaway endpoint on its own machine.
  try {
    std::string machine = manager_address_.substr(0, manager_address_.find('/'));
    sim::EndpointPtr ep = cluster_->create_endpoint(machine, "schx-stopper");
    MessageIo io(*cluster_, ep);
    io.call(manager_address_, Message{.kind = MessageKind::kManagerStop});
    cluster_->retire_endpoint(ep->address());
  } catch (const util::Error& e) {
    NPSS_LOG_WARN("schooner", "manager stop failed: ", e.what());
  }
  for (const auto& [machine, address] : server_addresses_) {
    try {
      std::string mgr_machine = machine;
      sim::EndpointPtr ep =
          cluster_->create_endpoint(machine, "schx-stopper");
      MessageIo io(*cluster_, ep);
      Message stop;
      stop.kind = MessageKind::kShutdownProc;
      stop.seq = io.next_seq();
      stop.a = "system stop";
      io.send(address, std::move(stop));
      cluster_->retire_endpoint(ep->address());
    } catch (const util::Error&) {
      // Server already gone.
    }
  }
}

}  // namespace npss::rpc
