#include "rpc/schooner.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace npss::rpc {

SchoonerSystem::SchoonerSystem(sim::Cluster& cluster,
                               const std::string& manager_machine,
                               SystemOptions options)
    : cluster_(&cluster) {
  ManagerConfig config;
  config.strict = options.strict_static_check;
  config.static_manifest = std::move(options.static_manifest);
  config.manifest_spec_hashes = std::move(options.manifest_spec_hashes);
  for (const std::string& machine : cluster.machine_names()) {
    sim::EndpointPtr ep = cluster.spawn(machine, "schx-server", server_main);
    config.servers[machine] = ep->address();
    server_addresses_[machine] = ep->address();
  }

  config.max_lines = options.max_lines;
  config.line_call_quota = options.line_call_quota;

  const int replicas = std::max(options.manager_replicas, 1);
  config.replicated = replicas > 1;
  config.heartbeat_ms = options.heartbeat_ms;
  config.election_base_ms = options.election_base_ms;
  config.election_seed = options.election_seed;
  config.snapshot_interval = options.snapshot_interval;

  // Replica i's home: replica 0 on manager_machine, the rest on the
  // requested machines (round-robin over the cluster when unspecified).
  std::vector<std::string> homes{manager_machine};
  std::vector<std::string> pool = options.replica_machines.empty()
                                      ? cluster.machine_names()
                                      : options.replica_machines;
  for (int i = 1; i < replicas; ++i) {
    homes.push_back(pool[static_cast<std::size_t>(i - 1) % pool.size()]);
  }
  for (int i = 0; i < replicas; ++i) {
    auto stats = std::make_shared<ManagerCounters>();
    stats_.push_back(stats);
    sim::EndpointPtr ep = cluster.spawn(
        homes[static_cast<std::size_t>(i)], "schx-manager",
        [config, stats](sim::ProcessContext& ctx) {
          manager_main(ctx, config, stats);
        });
    replica_addresses_.push_back(ep->address());
  }
  manager_address_ = replica_addresses_.front();

  if (config.replicated) {
    // Membership handshake: addresses exist only now, so each replica
    // learns the group (and its own index) in one synchronous exchange.
    // Replica 0 wakes as the term-1 leader once its ack is in.
    sim::EndpointPtr ep =
        cluster.create_endpoint(manager_machine, "schx-boot");
    MessageIo io(cluster, ep);
    for (int i = 0; i < replicas; ++i) {
      Message cfg;
      cfg.kind = MessageKind::kMetaConfig;
      cfg.n = i;
      for (int j = 0; j < replicas; ++j) {
        cfg.table.emplace_back(std::to_string(j),
                               replica_addresses_[static_cast<std::size_t>(j)]);
      }
      io.call(replica_addresses_[static_cast<std::size_t>(i)], std::move(cfg));
    }
    cluster.retire_endpoint(ep->address());
  }
  running_ = true;
}

ManagerStats SchoonerSystem::stats() const {
  // Each replica thread is still bumping its counters while we read;
  // snapshot() loads every field atomically, so the sum is race-free
  // (if not a single consistent instant, which callers don't need).
  ManagerStats total;
  for (const auto& s : stats_) {
    const ManagerStats r = s->snapshot();
    total.lines_created += r.lines_created;
    total.lines_rejected += r.lines_rejected;
    total.processes_started += r.processes_started;
    total.lookups += r.lookups;
    total.type_check_failures += r.type_check_failures;
    total.moves += r.moves;
    total.lines_shut_down += r.lines_shut_down;
    total.static_check_failures += r.static_check_failures;
    total.stale_manifest_warnings += r.stale_manifest_warnings;
    total.compat_rejects += r.compat_rejects;
    total.leader_elections += r.leader_elections;
    total.log_appends += r.log_appends;
    total.snapshot_installs += r.snapshot_installs;
  }
  return total;
}

SchoonerSystem::~SchoonerSystem() {
  try {
    stop();
  } catch (...) {
  }
}

std::unique_ptr<SchoonerClient> SchoonerSystem::make_client(
    const std::string& machine, const std::string& description) {
  sim::EndpointPtr ep = cluster_->create_endpoint(machine, "schx-client");
  // Pass the replica list only for a real group, so standalone clients
  // keep the legacy block-forever Manager semantics.
  std::vector<std::string> replicas =
      replica_addresses_.size() > 1 ? replica_addresses_
                                    : std::vector<std::string>{};
  return std::make_unique<SchoonerClient>(*cluster_, std::move(ep),
                                          manager_address_, description,
                                          std::move(replicas));
}

std::unique_ptr<Session> SchoonerSystem::make_session(
    const std::string& machine) {
  std::vector<std::string> replicas =
      replica_addresses_.size() > 1 ? replica_addresses_
                                    : std::vector<std::string>{};
  return std::make_unique<Session>(*cluster_, machine, manager_address_,
                                   std::move(replicas));
}

void SchoonerSystem::stop() {
  if (!running_) return;
  running_ = false;
  // Stop every Manager replica through a throwaway endpoint on its own
  // machine. The leader (whichever replica holds the role by now) tears
  // down the remaining lines; followers and crashed replicas just exit.
  for (const std::string& address : replica_addresses_) {
    sim::EndpointPtr ep;
    try {
      std::string machine = address.substr(0, address.find('/'));
      ep = cluster_->create_endpoint(machine, "schx-stopper");
      MessageIo io(*cluster_, ep);
      io.call_within(address, Message{.kind = MessageKind::kManagerStop},
                     /*host_grace_ms=*/500);
    } catch (const util::Error& e) {
      NPSS_LOG_WARN("schooner", "manager stop (", address,
                    ") failed: ", e.what());
    }
    if (ep) cluster_->retire_endpoint(ep->address());
  }
  for (const auto& [machine, address] : server_addresses_) {
    try {
      std::string mgr_machine = machine;
      sim::EndpointPtr ep =
          cluster_->create_endpoint(machine, "schx-stopper");
      MessageIo io(*cluster_, ep);
      Message stop;
      stop.kind = MessageKind::kShutdownProc;
      stop.seq = io.next_seq();
      stop.a = "system stop";
      io.send(address, std::move(stop));
      cluster_->retire_endpoint(ep->address());
    } catch (const util::Error&) {
      // Server already gone.
    }
  }
}

}  // namespace npss::rpc
