// SchoonerSystem: boots the runtime onto a virtual cluster — one Server
// per machine, then the persistent Manager — and tears it down again. This
// is the umbrella header for the Schooner core; most applications need
// only this plus host.hpp (to define procedure images) and client.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rpc/client.hpp"
#include "rpc/host.hpp"
#include "rpc/manager.hpp"
#include "rpc/message.hpp"
#include "rpc/server.hpp"
#include "sim/cluster.hpp"

namespace npss::rpc {

/// Boot-time knobs beyond the machine layout. `strict_static_check` turns
/// on the Manager's manifest cross-check: every export registered at
/// runtime must match the `uts_check --json` manifest in `static_manifest`
/// (see check::load_manifest_json), or the exporting process is rejected
/// at startup — before any call is issued.
struct SystemOptions {
  bool strict_static_check = false;
  std::map<std::string, std::string> static_manifest;
  /// Per-spec-file sha256 hashes from the manifest (check::Manifest
  /// spec_hashes). Lets the Manager tell a *stale* manifest (spec text
  /// changed after uts_check ran) apart from an incompatible export.
  std::vector<std::string> manifest_spec_hashes;

  /// --- Replicated control plane (src/meta/) ---------------------------
  /// Number of Manager replicas. 1 (the default) runs the classic
  /// standalone Manager; >= 2 runs a replica group: replica 0 starts on
  /// `manager_machine` as the term-1 leader, the rest on
  /// `replica_machines` (round-robin over the cluster when empty).
  int manager_replicas = 1;
  std::vector<std::string> replica_machines;
  /// Leader heartbeat period and follower election-timeout base, in host
  /// milliseconds (see meta::election_timeout_ms for the stagger rule).
  int heartbeat_ms = 15;
  int election_base_ms = 60;
  /// Seed for the deterministic election schedule: same seed, same crash,
  /// same winner — the fault suite's reproducibility contract.
  std::uint64_t election_seed = 1;
  /// Compact the changelog into a snapshot every N appends (0 = never).
  std::uint64_t snapshot_interval = 32;

  /// --- Multi-tenant session layer (DESIGN.md §15) ---------------------
  /// Most concurrent lines the Manager admits; registration beyond it is
  /// refused with kLineRejected and Session::open_line backs off.
  /// 0 = unlimited.
  int max_lines = 0;
  /// Per-line outstanding-call quota granted at admission and enforced by
  /// the line's LineBudget. 0 = unlimited.
  int line_call_quota = 0;
};

class SchoonerSystem {
 public:
  /// Start one Server on every machine currently in `cluster`, then the
  /// Manager on `manager_machine`.
  SchoonerSystem(sim::Cluster& cluster, const std::string& manager_machine,
                 SystemOptions options = {});

  ~SchoonerSystem();
  SchoonerSystem(const SchoonerSystem&) = delete;
  SchoonerSystem& operator=(const SchoonerSystem&) = delete;

  sim::Cluster& cluster() { return *cluster_; }
  const std::string& manager_address() const { return manager_address_; }

  /// Addresses of every Manager replica, indexed by replica id. Size 1
  /// when running the classic standalone Manager. Clients use the full
  /// list to rediscover the leader after a failover.
  const std::vector<std::string>& manager_replica_addresses() const {
    return replica_addresses_;
  }

  /// Make a client (== open a new line) whose endpoint lives on `machine`.
  /// Compatibility surface; new code opens a Session and mints Lines.
  std::unique_ptr<SchoonerClient> make_client(const std::string& machine,
                                              const std::string& description);

  /// Open a Session on `machine`: one Manager connection from which many
  /// lightweight Line handles are created (session.open_line(...)). The
  /// Session must not outlive this system.
  std::unique_ptr<Session> make_session(const std::string& machine);

  /// Runtime counters accumulated by the Manager. With a replica group
  /// this is the sum over all replicas (each keeps its own tallies, so no
  /// replica thread ever writes another's counters); read it only after
  /// the group quiesces (e.g. post-stop) for an exact figure.
  ManagerStats stats() const;

  /// Stop the Manager (and through it every remaining line) and the
  /// Servers. Idempotent; also run by the destructor.
  void stop();

  bool running() const { return running_; }

 private:
  sim::Cluster* cluster_;
  std::string manager_address_;
  std::vector<std::string> replica_addresses_;
  std::map<std::string, std::string> server_addresses_;
  /// One live counter block per replica (index-aligned with
  /// replica_addresses_); stats() sums snapshots across the group.
  std::vector<std::shared_ptr<ManagerCounters>> stats_;
  bool running_ = false;
};

}  // namespace npss::rpc
