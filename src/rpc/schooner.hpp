// SchoonerSystem: boots the runtime onto a virtual cluster — one Server
// per machine, then the persistent Manager — and tears it down again. This
// is the umbrella header for the Schooner core; most applications need
// only this plus host.hpp (to define procedure images) and client.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rpc/client.hpp"
#include "rpc/host.hpp"
#include "rpc/manager.hpp"
#include "rpc/message.hpp"
#include "rpc/server.hpp"
#include "sim/cluster.hpp"

namespace npss::rpc {

/// Boot-time knobs beyond the machine layout. `strict_static_check` turns
/// on the Manager's manifest cross-check: every export registered at
/// runtime must match the `uts_check --json` manifest in `static_manifest`
/// (see check::load_manifest_json), or the exporting process is rejected
/// at startup — before any call is issued.
struct SystemOptions {
  bool strict_static_check = false;
  std::map<std::string, std::string> static_manifest;
  /// Per-spec-file sha256 hashes from the manifest (check::Manifest
  /// spec_hashes). Lets the Manager tell a *stale* manifest (spec text
  /// changed after uts_check ran) apart from an incompatible export.
  std::vector<std::string> manifest_spec_hashes;
};

class SchoonerSystem {
 public:
  /// Start one Server on every machine currently in `cluster`, then the
  /// Manager on `manager_machine`.
  SchoonerSystem(sim::Cluster& cluster, const std::string& manager_machine,
                 SystemOptions options = {});

  ~SchoonerSystem();
  SchoonerSystem(const SchoonerSystem&) = delete;
  SchoonerSystem& operator=(const SchoonerSystem&) = delete;

  sim::Cluster& cluster() { return *cluster_; }
  const std::string& manager_address() const { return manager_address_; }

  /// Make a client (== open a new line) whose endpoint lives on `machine`.
  std::unique_ptr<SchoonerClient> make_client(const std::string& machine,
                                              const std::string& description);

  /// Runtime counters accumulated by the Manager.
  ManagerStats stats() const { return *stats_; }

  /// Stop the Manager (and through it every remaining line) and the
  /// Servers. Idempotent; also run by the destructor.
  void stop();

  bool running() const { return running_; }

 private:
  sim::Cluster* cluster_;
  std::string manager_address_;
  std::map<std::string, std::string> server_addresses_;
  std::shared_ptr<ManagerStats> stats_;
  bool running_ = false;
};

}  // namespace npss::rpc
