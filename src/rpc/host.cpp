#include "rpc/host.hpp"

#include <algorithm>
#include <cctype>
#include <thread>

#include "obs/trace.hpp"
#include "rpc/calling.hpp"
#include "rpc/manager.hpp"
#include "util/fair_queue.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/sha256.hpp"
#include "util/thread_annotations.hpp"

namespace npss::rpc {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string table_get(const std::vector<std::string>& argv,
                      const std::string& key, const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < argv.size(); i += 2) {
    if (argv[i] == key) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

class HostRuntime {
 public:
  HostRuntime(sim::ProcessContext& ctx, const std::string& spec_text,
              const std::vector<ProcedureDef>& procs,
              const ProcedureImageOptions& options)
      : ctx_(ctx),
        io_(ctx.cluster(), ctx.self_ptr()),
        options_(options),
        exports_(uts::parse_spec(spec_text)),
        spec_hash_(util::sha256_hex(spec_text)) {
    manager_ = table_get(ctx.args(), "manager", "");
    line_ = std::stoll(table_get(ctx.args(), "line", "-1"));
    shared_ = table_get(ctx.args(), "shared", "0") == "1";
    path_ = table_get(ctx.args(), "path", "?");
    for (const ProcedureDef& def : procs) {
      const uts::ProcDecl& decl = exports_.find(def.name);
      if (decl.kind != uts::DeclKind::kExport) {
        throw util::ModelError("declaration for '" + def.name +
                               "' is not an export");
      }
      handlers_[lower(def.name)] = HandlerEntry{&decl, def.handler};
    }
  }

  void run() {
    register_exports();
    serve();
  }

  void compute(double microseconds) { ctx_.compute(microseconds); }

  uts::ValueList call_remote(const std::string& name,
                             const std::string& import_text,
                             uts::ValueList args) {
    if (options_.workers > 0) {
      // The dispatch loop owns io_.receive(); a nested call from a worker
      // would race it for the reply stream.
      throw util::ModelError(
          "nested call_remote is unavailable in a pooled host (workers > 0)");
    }
    auto decl_it = nested_decls_.find(import_text);
    if (decl_it == nested_decls_.end()) {
      decl_it = nested_decls_
                    .emplace(import_text, parse_signature_text(import_text))
                    .first;
    }
    const uts::ProcDecl& decl = decl_it->second;
    CallCore core;
    core.io = &io_;
    core.manager = manager_;
    core.line = line_;
    core.arch = &ctx_.self().arch();
    core.compute = [this](double us) { compute(us); };
    BindingCache& cache = nested_cache_[name];
    CallResult result = core.invoke(name, decl, import_text, std::move(args),
                                    cache, CallOptions::legacy());
    return std::move(result.values_or_raise());
  }

 private:
  struct HandlerEntry {
    const uts::ProcDecl* decl;
    ProcHandler handler;
  };

  /// Steady-state call state compiled from one caller's import text: the
  /// parsed import, its type-compat verdict against our export, the
  /// import->export slot map, and the marshal plans for both directions.
  /// Keyed per handler so repeated calls skip the whole parse/check path.
  struct ImportEntry {
    uts::ProcDecl decl;
    std::vector<std::size_t> slot_of_import;
    std::shared_ptr<const uts::MarshalPlan> request_plan;
    std::shared_ptr<const uts::MarshalPlan> reply_plan;
  };

  const ImportEntry& import_entry(const HandlerEntry& entry,
                                  const std::string& proc_name,
                                  const std::string& import_text) {
    const std::string key = lower(proc_name) + "\n" + import_text;
    // Pooled hosts reach here from several workers at once; map nodes are
    // reference-stable, so callers may keep the entry past the lock.
    util::MutexLock lock(import_mu_);
    auto it = import_cache_.find(key);
    if (it != import_cache_.end()) return it->second;

    // The wire layout follows the caller's import signature, which may
    // be a subsequence of the export (footnote 1): check compatibility,
    // then precompute the scatter map import slot -> export slot.
    ImportEntry ie;
    ie.decl = parse_signature_text(import_text);
    const uts::Signature& import_sig = ie.decl.signature;
    const uts::Signature& export_sig = entry.decl->signature;
    std::string why =
        uts::signature_compatibility_error(import_sig, export_sig);
    if (!why.empty()) {
      // Incompatible imports are not cached: they are a caller bug, not a
      // steady-state path.
      throw util::TypeMismatchError("call to '" + proc_name + "': " + why);
    }
    ie.slot_of_import.resize(import_sig.size());
    std::size_t epos = 0;
    for (std::size_t i = 0; i < import_sig.size(); ++i) {
      while (export_sig[epos].name != import_sig[i].name) ++epos;
      ie.slot_of_import[i] = epos;
      ++epos;
    }
    ie.request_plan =
        uts::compile_plan(import_sig, uts::Direction::kRequest);
    ie.reply_plan = uts::compile_plan(import_sig, uts::Direction::kReply);
    return import_cache_.emplace(key, std::move(ie)).first->second;
  }

  void register_exports() {
    const arch::ArchDescriptor& arch = ctx_.self().arch();
    Message msg;
    msg.kind = MessageKind::kExport;
    msg.line = line_;
    msg.a = path_;
    msg.b = ctx_.self().machine().name;
    // Content hash of the spec text this process was built against; lets
    // a strict-mode Manager detect a manifest that predates the spec.
    msg.c = spec_hash_;
    msg.n = shared_ ? 1 : 0;
    for (const auto& [key, entry] : handlers_) {
      // Export under the name the machine's compiler would emit: the
      // Cray's Fortran compiler upper-cases external names (§4.1).
      std::string external = entry.decl->name;
      if (options_.language == SourceLanguage::kFortran) {
        external = arch::fortran_external_name(arch, external);
      }
      msg.table.emplace_back(
          external, signature_text(uts::DeclKind::kExport, external,
                                   entry.decl->signature));
    }
    io_.call(manager_, std::move(msg));
    NPSS_LOG_DEBUG("host", io_.address(), " exported ", handlers_.size(),
                   " procedure(s) for line ", line_);
  }

  void serve() {
    // Pooled mode (§15 fairness): kCall work queues per line and the pool
    // drains lines round-robin, so one line's call storm waits behind its
    // own earlier calls instead of starving every other line. Control
    // messages stay on the dispatch thread, which also keeps sole
    // ownership of io_.receive().
    util::FairQueue<Incoming> queue;
    std::vector<std::jthread> pool;
    const int workers = std::max(options_.workers, 0);
    pool.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      pool.emplace_back([this, &queue] {
        while (auto work = queue.pop()) on_call(*work);
      });
    }
    while (auto in = io_.receive()) {
      const Message& msg = in->msg;
      switch (msg.kind) {
        case MessageKind::kCall:
          if (workers > 0) {
            queue.push(msg.line, std::move(*in));
          } else {
            on_call(*in);
          }
          break;
        case MessageKind::kStateRequest: {
          Message rep;
          rep.kind = MessageKind::kStateReply;
          rep.seq = msg.seq;
          if (options_.save_state) rep.blob = options_.save_state();
          io_.send(in->from, std::move(rep));
          break;
        }
        case MessageKind::kStateInstall: {
          Message rep;
          rep.kind = MessageKind::kStateAck;
          rep.seq = msg.seq;
          if (options_.restore_state) {
            options_.restore_state(msg.blob);
          }
          io_.send(in->from, std::move(rep));
          break;
        }
        case MessageKind::kPing:
          io_.send(in->from,
                   Message{.kind = MessageKind::kPong, .seq = msg.seq});
          break;
        case MessageKind::kShutdownProc:
          // Let the pool finish (and answer) everything already queued,
          // then error-answer whatever is still in the mailbox.
          queue.close();
          pool.clear();
          drain_and_exit(msg.a);
          return;
        default:
          io_.send(in->from,
                   Message::error_reply(msg, util::ErrorCode::kProtocolError,
                                        "procedure host: unexpected " +
                                            std::string(message_kind_name(
                                                msg.kind))));
      }
    }
    queue.close();
  }

  void on_call(const Incoming& in) {
    const Message& msg = in.msg;
    // Adopt the caller's trace so both hops share one trace id; nested
    // remote calls made by the handler become children of this span.
    obs::Span span("rpc.host", "serve " + msg.a, msg.trace);
    span.set_line(msg.line);
    try {
      auto it = handlers_.find(lower(msg.a));
      if (it == handlers_.end()) {
        throw util::LookupError("no procedure '" + msg.a +
                                "' in this process");
      }
      const HandlerEntry& entry = it->second;
      const uts::Signature& export_sig = entry.decl->signature;

      // Parse/type-check/plan-compile once per distinct import text; the
      // steady-state path below runs the compiled plans only.
      const ImportEntry& ie = import_entry(entry, msg.a, msg.b);
      const uts::Signature& import_sig = ie.decl.signature;
      const arch::ArchDescriptor& arch = ctx_.self().arch();
      compute(static_cast<double>(msg.blob.size()) * kMarshalUsPerByte);
      uts::ValueList import_values = ie.request_plan->unmarshal(arch, msg.blob);

      uts::ValueList values;
      values.reserve(export_sig.size());
      for (const uts::Param& p : export_sig) {
        values.push_back(uts::default_value(p.type));
      }
      for (std::size_t i = 0; i < import_sig.size(); ++i) {
        if (uts::param_travels(import_sig[i].mode, uts::Direction::kRequest)) {
          values[ie.slot_of_import[i]] = std::move(import_values[i]);
        }
      }

      ProcCall call(export_sig, std::move(values), this);
      if (options_.compute_us_per_call > 0) {
        compute(options_.compute_us_per_call);
      }
      entry.handler(call);

      // Gather reply values back into import order and marshal.
      uts::ValueList reply_values;
      reply_values.reserve(import_sig.size());
      for (std::size_t i = 0; i < import_sig.size(); ++i) {
        reply_values.push_back(call.values()[ie.slot_of_import[i]]);
      }
      util::Bytes blob = ie.reply_plan->marshal(arch, reply_values);
      compute(static_cast<double>(blob.size()) * kMarshalUsPerByte);
      Message rep;
      rep.kind = MessageKind::kReply;
      rep.seq = msg.seq;
      rep.blob = std::move(blob);
      rep.trace = span.context();
      if (obs::enabled()) {
        obs::Registry& reg = obs::Registry::global();
        reg.counter("rpc.host.calls").add();
        reg.counter("rpc.host.bytes_marshaled")
            .add(msg.blob.size() + rep.blob.size());
        reg.histogram("rpc.host.handler_us").record(span.elapsed_us());
      }
      io_.send(in.from, std::move(rep));
    } catch (const util::Error& e) {
      if (obs::enabled()) {
        obs::Registry::global().counter("rpc.host.errors").add();
      }
      io_.send(in.from, Message::error_reply(msg, e.code(), e.what()));
    }
  }

  /// On shutdown, close the mailbox, then answer any queued calls with a
  /// stale-binding error so blocked callers re-bind instead of hanging.
  void drain_and_exit(const std::string& reason) {
    ctx_.self().close();
    while (auto in = io_.try_receive()) {
      if (in->msg.kind == MessageKind::kCall ||
          in->msg.kind == MessageKind::kStateRequest) {
        try {
          io_.send(in->from,
                   Message::error_reply(in->msg,
                                        util::ErrorCode::kStaleBinding,
                                        "procedure shut down: " + reason));
        } catch (const util::NoRouteError&) {
        }
      }
    }
    NPSS_LOG_DEBUG("host", io_.address(), " exiting: ", reason);
  }

  sim::ProcessContext& ctx_;
  MessageIo io_;
  ProcedureImageOptions options_;
  uts::SpecFile exports_;
  std::string manager_;
  LineId line_ = kNoLine;
  bool shared_ = false;
  std::string path_;
  std::string spec_hash_;
  std::map<std::string, HandlerEntry> handlers_;
  std::map<std::string, BindingCache> nested_cache_;
  std::map<std::string, uts::ProcDecl> nested_decls_;
  /// Guards import_cache_ in pooled mode; a leaf lock — compiling an
  /// entry (parse + plan compile) runs under it but takes only the
  /// uts.PlanCache below it (lock_hierarchy.md). The rest of
  /// HostRuntime's state is dispatch-thread-only: handlers_ and the
  /// nested caches are built at serve() start and then read-only to
  /// workers, and io_.receive() is owned by the dispatch thread alone.
  util::Mutex import_mu_{"rpc.Host.import_cache"};
  std::map<std::string, ImportEntry> import_cache_
      SCHOONER_GUARDED_BY(import_mu_);
};

const uts::Value& ProcCall::arg(std::size_t index) const {
  if (index >= values_.size()) {
    throw util::TypeMismatchError("argument index out of range");
  }
  return values_[index];
}

std::size_t ProcCall::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < signature_->size(); ++i) {
    if ((*signature_)[i].name == name) return i;
  }
  throw util::TypeMismatchError("no parameter named '" + std::string(name) +
                                "'");
}

const uts::Value& ProcCall::arg(std::string_view name) const {
  return values_[index_of(name)];
}

void ProcCall::set(std::string_view name, uts::Value value) {
  values_[index_of(name)] = std::move(value);
}

void ProcCall::compute(double microseconds) {
  if (host_) host_->compute(microseconds);
}

uts::ValueList ProcCall::call_remote(const std::string& name,
                                     const std::string& import_spec_text,
                                     uts::ValueList args) {
  if (!host_) {
    throw util::ModelError(
        "nested remote calls need the Schooner cluster runtime");
  }
  return host_->call_remote(name, import_spec_text, std::move(args));
}

sim::ProgramImage make_procedure_image(std::string spec_text,
                                       std::vector<ProcedureDef> procs,
                                       ProcedureImageOptions options) {
  return [spec_text = std::move(spec_text), procs = std::move(procs),
          options = std::move(options)](sim::ProcessContext& ctx) {
    HostRuntime runtime(ctx, spec_text, procs, options);
    runtime.run();
  };
}

}  // namespace npss::rpc
