// MessageIo — the per-process communication layer linked "with every
// procedure to handle the sending and receiving of messages implicit in
// RPC" (§3.1). It frames Messages onto the virtual fabric, matches replies
// to outstanding requests by sequence number, and stashes unrelated
// traffic (e.g. a shutdown order arriving while a call is outstanding) for
// the owner's main loop.
#pragma once

#include <deque>
#include <optional>
#include <set>

#include "rpc/message.hpp"
#include "sim/cluster.hpp"

namespace npss::rpc {

struct Incoming {
  std::string from;
  Message msg;
};

class MessageIo {
 public:
  MessageIo(sim::Cluster& cluster, sim::EndpointPtr endpoint)
      : cluster_(&cluster), endpoint_(std::move(endpoint)) {}

  const std::string& address() const { return endpoint_->address(); }
  sim::Endpoint& endpoint() { return *endpoint_; }
  sim::Cluster& cluster() { return *cluster_; }

  std::uint64_t next_seq() { return ++seq_; }

  /// One-way send. Propagates util::NoRouteError from the fabric.
  void send(const std::string& to, Message msg);

  /// Blocking receive of the next message for the owner's main loop:
  /// drains the stash first. Returns nullopt once the endpoint closes.
  std::optional<Incoming> receive();

  /// Non-blocking variant.
  std::optional<Incoming> try_receive();

  /// Bounded-wait variant: blocks at most `host_ms` of *host* time for a
  /// frame (the stash is drained first). Returns nullopt on timeout or
  /// once the endpoint closes — a Manager replica's leader loop uses the
  /// gap to notice missed heartbeats and fire elections.
  std::optional<Incoming> receive_for(int host_ms);

  /// Request/response: sends `request` (stamping a fresh seq) and blocks
  /// until the matching reply arrives; any other traffic received while
  /// waiting is stashed for receive(). Throws util::ShutdownError if the
  /// endpoint closes first, and re-raises kError replies as exceptions
  /// unless `raise_errors` is false.
  Message call(const std::string& to, Message request,
               bool raise_errors = true);

  /// Deadline-enforcing variant: like call(), but gives up once no frame
  /// has arrived for `host_grace_ms` of *host* time — the only way a
  /// dropped request or reply frame is ever noticed. On timeout the seq
  /// is marked abandoned (a late or duplicated reply is discarded instead
  /// of corrupting a later exchange) and util::DeadlineError is thrown.
  Message call_within(const std::string& to, Message request,
                      int host_grace_ms, bool raise_errors = true);

  /// kPing round trip to `to`. Returns the virtual-time RTT in simulated
  /// microseconds and records it into the rpc.transport.rtt_us histogram,
  /// letting benches split network time from marshal time.
  util::SimTime ping(const std::string& to);

 private:
  Message call_impl(const std::string& to, Message request, bool raise_errors,
                    int host_grace_ms);
  /// True when `msg` is a late/duplicated reply to a seq this endpoint
  /// already finished with (timed out or served) — such frames are
  /// dropped, never stashed.
  bool abandoned_reply(const Message& msg) const;
  void mark_abandoned(std::uint64_t seq);

  sim::Cluster* cluster_;
  sim::EndpointPtr endpoint_;
  std::deque<Incoming> stash_;
  std::uint64_t seq_ = 0;
  std::set<std::uint64_t> abandoned_;
};

}  // namespace npss::rpc
