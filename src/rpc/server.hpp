// The Schooner Server: one per machine involved in a computation (§3.1).
// It receives kSpawn orders from the Manager and instantiates the named
// program image as a process on its machine.
#pragma once

#include "rpc/message.hpp"
#include "sim/cluster.hpp"

namespace npss::rpc {

/// The Server's process body; spawned by SchoonerSystem on each machine.
void server_main(sim::ProcessContext& ctx);

}  // namespace npss::rpc
